#include "src/exp/record.hpp"

#include "src/obs/metrics.hpp"

namespace eesmr::exp {

Json summary_json(const harness::RunSummary& s) {
  Json j = Json::object();
  j.set("nodes", s.nodes);
  j.set("safety_ok", Json(s.safety_ok));
  j.set("min_committed", s.min_committed);
  j.set("max_committed", s.max_committed);
  j.set("view_changes", s.view_changes);
  j.set("transmissions", s.transmissions);
  j.set("bytes_transmitted", s.bytes_transmitted);
  j.set("end_time_s", s.end_time_s);
  j.set("total_energy_mj", s.total_energy_mj);
  j.set("energy_per_block_mj", s.energy_per_block_mj);
  j.set("requests_submitted", s.requests_submitted);
  j.set("requests_accepted", s.requests_accepted);
  j.set("request_retransmissions", s.request_retransmissions);
  j.set("requests_dropped", s.requests_dropped);
  j.set("requests_rate_limited", s.requests_rate_limited);
  j.set("request_failovers", s.request_failovers);
  j.set("requests_forwarded", s.requests_forwarded);
  j.set("request_hints_applied", s.request_hints_applied);
  j.set("controller_dedup_saved", s.controller_dedup_saved);
  j.set("controller_dedup_bytes_saved", s.controller_dedup_bytes_saved);
  j.set("accepted_per_sec", s.accepted_per_sec);
  j.set("latency_samples", s.latency_samples);
  j.set("latency_p50_ms", s.latency_p50_ms);
  j.set("latency_p90_ms", s.latency_p90_ms);
  j.set("latency_p99_ms", s.latency_p99_ms);
  j.set("latency_mean_ms", s.latency_mean_ms);
  j.set("state_transfers", s.state_transfers);
  j.set("max_recovery_ms", s.max_recovery_ms);
  j.set("max_retained_log", s.max_retained_log);
  j.set("max_dedup_entries", s.max_dedup_entries);
  j.set("max_store_blocks", s.max_store_blocks);
  j.set("max_checkpoints_taken", s.max_checkpoints_taken);
  j.set("safety_violations", s.safety_violations);
  j.set("liveness_ok", Json(s.liveness_ok));
  j.set("max_commit_stall_ms", s.max_commit_stall_ms);
  j.set("faults_dropped", s.faults_dropped);
  j.set("faults_duplicated", s.faults_duplicated);
  j.set("faults_reordered", s.faults_reordered);
  j.set("msgs_withheld", s.msgs_withheld);
  j.set("byz_requests_sent", s.byz_requests_sent);
  j.set("adversary_energy_mj", s.adversary_energy_mj);
  // Membership / certificate-scheme keys only on runs that used them,
  // so legacy records round-trip byte-identically.
  if (s.membership_changes != 0) {
    j.set("membership_changes", s.membership_changes);
  }
  if (s.membership_generation != 0) {
    j.set("membership_generation", s.membership_generation);
  }
  if (s.acceptance_certs != 0) j.set("acceptance_certs", s.acceptance_certs);
  return j;
}

harness::RunSummary summary_from_json(const Json& doc) {
  const Json& j = doc.contains("summary") ? doc.at("summary") : doc;
  harness::RunSummary s;
  s.nodes = static_cast<std::size_t>(j.at("nodes").as_int());
  s.safety_ok = j.at("safety_ok").as_bool();
  s.min_committed = static_cast<std::uint64_t>(j.at("min_committed").as_int());
  s.max_committed = static_cast<std::uint64_t>(j.at("max_committed").as_int());
  s.view_changes = static_cast<std::uint64_t>(j.at("view_changes").as_int());
  s.transmissions = static_cast<std::uint64_t>(j.at("transmissions").as_int());
  s.bytes_transmitted =
      static_cast<std::uint64_t>(j.at("bytes_transmitted").as_int());
  s.end_time_s = j.at("end_time_s").as_double();
  s.total_energy_mj = j.at("total_energy_mj").as_double();
  s.energy_per_block_mj = j.at("energy_per_block_mj").as_double();
  s.requests_submitted =
      static_cast<std::uint64_t>(j.at("requests_submitted").as_int());
  s.requests_accepted =
      static_cast<std::uint64_t>(j.at("requests_accepted").as_int());
  s.request_retransmissions =
      static_cast<std::uint64_t>(j.at("request_retransmissions").as_int());
  s.requests_dropped =
      static_cast<std::uint64_t>(j.at("requests_dropped").as_int());
  s.requests_rate_limited =
      static_cast<std::uint64_t>(j.at("requests_rate_limited").as_int());
  s.request_failovers =
      static_cast<std::uint64_t>(j.at("request_failovers").as_int());
  s.requests_forwarded =
      static_cast<std::uint64_t>(j.at("requests_forwarded").as_int());
  s.request_hints_applied =
      static_cast<std::uint64_t>(j.at("request_hints_applied").as_int());
  s.controller_dedup_saved =
      static_cast<std::uint64_t>(j.at("controller_dedup_saved").as_int());
  s.controller_dedup_bytes_saved = static_cast<std::uint64_t>(
      j.at("controller_dedup_bytes_saved").as_int());
  s.accepted_per_sec = j.at("accepted_per_sec").as_double();
  s.latency_samples =
      static_cast<std::uint64_t>(j.at("latency_samples").as_int());
  s.latency_p50_ms = j.at("latency_p50_ms").as_double();
  s.latency_p90_ms = j.at("latency_p90_ms").as_double();
  s.latency_p99_ms = j.at("latency_p99_ms").as_double();
  s.latency_mean_ms = j.at("latency_mean_ms").as_double();
  s.state_transfers =
      static_cast<std::uint64_t>(j.at("state_transfers").as_int());
  s.max_recovery_ms = j.at("max_recovery_ms").as_double();
  s.max_retained_log =
      static_cast<std::size_t>(j.at("max_retained_log").as_int());
  s.max_dedup_entries =
      static_cast<std::size_t>(j.at("max_dedup_entries").as_int());
  s.max_store_blocks =
      static_cast<std::size_t>(j.at("max_store_blocks").as_int());
  s.max_checkpoints_taken =
      static_cast<std::uint64_t>(j.at("max_checkpoints_taken").as_int());
  s.safety_violations =
      static_cast<std::uint64_t>(j.at("safety_violations").as_int());
  s.liveness_ok = j.at("liveness_ok").as_bool();
  s.max_commit_stall_ms = j.at("max_commit_stall_ms").as_double();
  s.faults_dropped =
      static_cast<std::uint64_t>(j.at("faults_dropped").as_int());
  s.faults_duplicated =
      static_cast<std::uint64_t>(j.at("faults_duplicated").as_int());
  s.faults_reordered =
      static_cast<std::uint64_t>(j.at("faults_reordered").as_int());
  s.msgs_withheld = static_cast<std::uint64_t>(j.at("msgs_withheld").as_int());
  s.byz_requests_sent =
      static_cast<std::uint64_t>(j.at("byz_requests_sent").as_int());
  s.adversary_energy_mj = j.at("adversary_energy_mj").as_double();
  if (j.contains("membership_changes")) {
    s.membership_changes =
        static_cast<std::uint64_t>(j.at("membership_changes").as_int());
  }
  if (j.contains("membership_generation")) {
    s.membership_generation =
        static_cast<std::uint64_t>(j.at("membership_generation").as_int());
  }
  if (j.contains("acceptance_certs")) {
    s.acceptance_certs =
        static_cast<std::uint64_t>(j.at("acceptance_certs").as_int());
  }
  return s;
}

namespace {

// The BENCH_*.json sections below read a registry built by
// RunResult::to_registry with no base labels, so every stream sample
// carries exactly {stream, scope} and every per-node sample {node} —
// sample order inside a family is registration order, which to_registry
// fixes to stream-enum / node-id order.

/// Per-stream breakdown from the `eesmr_stream_*` families, scope="all"
/// (clients included). Streams with no traffic were never registered.
Json streams_from_registry(const obs::Registry& reg) {
  Json streams = Json::object();
  const obs::Family* send = reg.find("eesmr_stream_send_mj");
  if (send == nullptr) return streams;
  for (const obs::Sample& s : send->samples) {
    std::string name;
    bool all_scope = false;
    for (const auto& [k, v] : s.labels) {
      if (k == "stream") name = v;
      if (k == "scope") all_scope = v == "all";
    }
    if (!all_scope) continue;
    Json one = Json::object();
    one.set("send_mj", s.value);
    one.set("recv_mj", reg.value("eesmr_stream_recv_mj", s.labels));
    one.set("tx", reg.value("eesmr_stream_tx_total", s.labels));
    one.set("bytes_sent", reg.value("eesmr_stream_bytes_sent_total", s.labels));
    one.set("bytes_received",
            reg.value("eesmr_stream_bytes_received_total", s.labels));
    streams.set(name, std::move(one));
  }
  return streams;
}

/// node_energy_mj array from the per-node energy family, node order.
Json node_energy_from_registry(const obs::Registry& reg) {
  Json node_mj = Json::array();
  if (const obs::Family* fam = reg.find("eesmr_node_energy_mj")) {
    for (const obs::Sample& s : fam->samples) node_mj.push_back(s.value);
  }
  return node_mj;
}

/// footprints array from the `eesmr_footprint_*` families, node order.
/// (flood_dedup_tail stays registry-only: the JSON record predates it and
/// tooling round-trips the historical key set.)
Json footprints_from_registry(const obs::Registry& reg) {
  Json fps = Json::array();
  const obs::Family* retained = reg.find("eesmr_footprint_retained_log");
  if (retained == nullptr) return fps;
  for (const obs::Sample& s : retained->samples) {
    const auto fp = [&](const char* name) {
      return reg.value(name, s.labels);
    };
    Json one = Json::object();
    one.set("retained_log", s.value);
    one.set("store_blocks", fp("eesmr_footprint_store_blocks"));
    one.set("executed_entries", fp("eesmr_footprint_executed_entries"));
    one.set("mempool_pending", fp("eesmr_footprint_mempool_pending"));
    one.set("mempool_committed_keys",
            fp("eesmr_footprint_mempool_committed_keys"));
    one.set("committed_blocks", fp("eesmr_footprint_committed_blocks"));
    one.set("low_water_mark", fp("eesmr_footprint_low_water_mark"));
    one.set("checkpoints_taken", fp("eesmr_footprint_checkpoints_taken"));
    one.set("stable_height", fp("eesmr_footprint_stable_height"));
    one.set("state_transfers", fp("eesmr_footprint_state_transfers"));
    fps.push_back(std::move(one));
  }
  return fps;
}

}  // namespace

Json stream_json(const harness::RunResult& r) {
  obs::Registry reg;
  r.to_registry(reg);
  return streams_from_registry(reg);
}

Json run_result_json(const harness::RunResult& r) {
  obs::Registry reg;
  r.to_registry(reg);

  Json doc = Json::object();
  doc.set("summary", summary_json(harness::summary_from_registry(reg)));
  doc.set("streams", streams_from_registry(reg));
  doc.set("node_energy_mj", node_energy_from_registry(reg));
  Json fps = footprints_from_registry(reg);
  if (fps.size() > 0) doc.set("footprints", std::move(fps));
  return doc;
}

void add_run_metrics(MetricRow& row, const harness::RunResult& r,
                     bool detail) {
  row.set("blocks", r.min_committed());
  row.set("total_mj", r.total_energy_mj());
  row.set("energy_per_block_mj", r.energy_per_block_mj());
  row.set("view_changes", r.view_changes);
  row.set("safety", Json(r.safety_ok()));
  if (detail) row.set("run", run_result_json(r));
}

}  // namespace eesmr::exp
