// Figure 2b: energy of 99.99%-reliable k-casts vs the equivalent GATT
// unicast links, across payload sizes. UC = unicast, S = sender,
// R = receiver.
#include <vector>

#include "src/energy/cost_model.hpp"
#include "src/exp/experiment.hpp"

using namespace eesmr;
using namespace eesmr::energy;

int main(int argc, char** argv) {
  exp::Experiment ex("fig2b_unicast_vs_multicast",
                     "Fig. 2b (§5.4, 99.99% reliable k-casts, GATT unicasts)",
                     argc, argv);

  std::vector<std::size_t> payloads = {25, 50, 100, 200, 300, 400, 500};
  if (ex.smoke()) payloads = {25, 100, 500};

  exp::Grid grid;
  grid.axis_of("payload_bytes", payloads);

  exp::Report& rep = ex.run("energy_per_message", grid,
                            [&](const exp::RunContext& c) {
    const std::size_t payload = payloads[c.at("payload_bytes")];
    const std::size_t red = kcast_redundancy_for(payload, 7, 0.9999);
    exp::MetricRow row;
    row.set("uc_send_d1_mj", gatt_send_energy_mj(payload));
    row.set("uc_recv_d1_mj", gatt_recv_energy_mj(payload));
    row.set("uc_send_d7_mj", 7 * gatt_send_energy_mj(payload));
    // Each receiver pays once regardless of the sender's degree.
    row.set("uc_recv_d7_mj", gatt_recv_energy_mj(payload));
    row.set("kcast_send_k7_mj", kcast_send_energy_mj(payload, red));
    row.set("kcast_recv_k7_mj", kcast_recv_energy_mj(payload, red));
    row.set("redundancy", red);
    return row;
  });
  rep.print_table(1);

  // Locate the sender-side crossover payload for d_out = 7.
  std::size_t crossover = 0;
  for (std::size_t payload = 25; payload <= 8000; payload += 25) {
    const std::size_t red = kcast_redundancy_for(payload, 7, 0.9999);
    if (kcast_send_energy_mj(payload, red) >
        7 * gatt_send_energy_mj(payload)) {
      crossover = payload;
      break;
    }
  }
  exp::Report cx;
  cx.name = "sender_crossover_d7";
  exp::MetricRow crow;
  if (crossover > 0) {
    crow.set("crossover_bytes", crossover);
  } else {
    crow.skip("crossover_bytes");
  }
  cx.rows.push_back(std::move(crow));
  ex.add_section(std::move(cx)).print_table(0);

  ex.note("expected shape: one k-cast transmission beats d_out = 7 "
          "unicasts on the sender side across this payload range; a "
          "single unicast (d_out = 1) is always cheaper than a k-cast; "
          "per-byte slopes make unicasts win for very large payloads "
          "(paper: 'unicast link is more effective for bigger payloads, "
          "but this advantage is quickly negated as k increases')");
  return ex.finish();
}
