// Typed dissemination channels — the pluggable communication API.
//
// EESMR's protocol logic is agnostic to the dissemination primitive: the
// paper evaluates it over unicast, multicast and k-cast media (Table 1,
// Fig 2a/2b). A Channel makes that axis sweepable per traffic class:
// protocol and client code opens one channel per stream (proposal, vote,
// checkpoint, request, reply, state transfer, ...) and disseminates
// through a per-channel DisseminationPolicy instead of hardwired flood
// calls. Every transmission — including forwarded hops — is attributed
// to the channel's energy::Stream, so RunResult can report where each
// Joule went per policy choice.
//
// Policies:
//  * Flood          — the router's full flood (today's default): one
//                     origin transmission, re-broadcast once everywhere.
//  * LocalKcast     — one transmission to the direct neighborhood, no
//                     re-forwarding (generalizes the old broadcast_local
//                     "partial vote forwarding" primitive).
//  * RoutedUnicast  — a shortest-path point-to-point frame per target
//                     (the unicast medium of Table 1 / Fig 2b).
//  * TargetedSubset — send to a rotating subset of the targets; tracked
//                     submissions fail over to the next subset on a
//                     timeout with exponential backoff. This is the
//                     client submission policy: instead of flooding
//                     every request to all replicas, contact a few and
//                     rotate away from unresponsive ones.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/ids.hpp"
#include "src/energy/meter.hpp"
#include "src/net/flood.hpp"
#include "src/sim/scheduler.hpp"

namespace eesmr::net {

/// How a channel's disseminate() reaches its audience.
struct DisseminationPolicy {
  enum class Kind : std::uint8_t {
    /// Resolved by the opener: the protocol's default for that stream
    /// (Flood everywhere, except Sync HotStuff's LocalKcast votes).
    kDefault,
    kFlood,
    kLocalKcast,
    kRoutedUnicast,
    kTargetedSubset,
  };

  Kind kind = Kind::kDefault;
  /// TargetedSubset: targets contacted per attempt.
  std::size_t subset_size = 1;
  /// Tracked submissions: re-disseminate after this long without
  /// complete() (0 = never). TargetedSubset also rotates the subset.
  sim::Duration timeout = 0;
  /// Timeout multiplier per unanswered attempt (>= 1).
  double backoff = 1.0;
  /// Backoff ceiling (0 = uncapped).
  sim::Duration max_timeout = 0;

  static DisseminationPolicy flood() { return {Kind::kFlood, 1, 0, 1.0, 0}; }
  static DisseminationPolicy local_kcast() {
    return {Kind::kLocalKcast, 1, 0, 1.0, 0};
  }
  static DisseminationPolicy routed_unicast() {
    return {Kind::kRoutedUnicast, 1, 0, 1.0, 0};
  }
  /// Failover submission: contact `subset` targets, rotate + double the
  /// timeout on every unanswered attempt.
  static DisseminationPolicy targeted_subset(std::size_t subset,
                                             sim::Duration timeout,
                                             double backoff = 2.0) {
    return {Kind::kTargetedSubset, subset, timeout, backoff, 0};
  }
};

const char* policy_kind_name(DisseminationPolicy::Kind k);

/// Per-stream policy table. Entries default to Kind::kDefault, which the
/// channel opener resolves to its protocol default.
struct ChannelPolicies {
  std::array<DisseminationPolicy, energy::kNumStreams> table{};

  DisseminationPolicy& operator[](energy::Stream s) {
    return table[static_cast<std::size_t>(s)];
  }
  const DisseminationPolicy& operator[](energy::Stream s) const {
    return table[static_cast<std::size_t>(s)];
  }
};

/// A typed send handle over the flood router. Cheap to construct; owns
/// the failover timers of its tracked submissions.
class Channel {
 public:
  /// `targets` is the candidate audience for the unicast-style policies
  /// (typically every replica id except the owner's). Kind::kDefault
  /// resolves to Flood here.
  Channel(FloodRouter& router, energy::Stream stream,
          DisseminationPolicy policy, std::vector<NodeId> targets);
  ~Channel();
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&&) = delete;
  Channel& operator=(Channel&&) = delete;

  /// One-shot dissemination of `payload` per the policy.
  void disseminate(BytesView payload);

  /// Point-to-point send regardless of policy (replies, sync and state
  /// responses — traffic that is addressed by nature).
  void send_to(NodeId dest, BytesView payload);

  /// Tracked dissemination: like disseminate(), but while `id` has not
  /// been complete()d and the policy has a timeout, the payload is
  /// re-disseminated on every timeout with exponential backoff — and,
  /// for TargetedSubset, the target subset rotates first (failover).
  void submit(std::uint64_t id, Bytes payload);
  /// The submission succeeded (e.g. the request was accepted): cancel
  /// its failover timer and drop the tracked payload.
  void complete(std::uint64_t id);

  /// Steer the rotating subset so `target` is contacted first (leader
  /// hint learned from reply metadata). No-op unless the policy is
  /// TargetedSubset and `target` is one of this channel's targets;
  /// counted in hints_applied() only when it actually moved the cursor.
  void prefer(NodeId target);

  void set_policy(DisseminationPolicy policy);
  [[nodiscard]] const DisseminationPolicy& policy() const { return policy_; }
  [[nodiscard]] energy::Stream stream() const { return stream_; }
  [[nodiscard]] const std::vector<NodeId>& targets() const { return targets_; }

  // -- observability ---------------------------------------------------------
  /// Re-disseminations triggered by submission timeouts.
  [[nodiscard]] std::uint64_t resends() const { return resends_; }
  /// Subset rotations (TargetedSubset timeouts).
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  /// Leader hints that re-aimed the subset cursor (prefer() calls that
  /// changed the first contacted target).
  [[nodiscard]] std::uint64_t hints_applied() const { return hints_; }
  [[nodiscard]] std::size_t inflight() const { return inflight_.size(); }
  /// Current first target of the rotating subset (tests).
  [[nodiscard]] std::size_t cursor() const { return cursor_; }

 private:
  struct Tracked {
    Bytes wire;
    sim::Duration timeout = 0;
    sim::EventId event = sim::kInvalidEvent;
  };

  void on_timeout(std::uint64_t id);
  void arm(std::uint64_t id, Tracked& t);

  FloodRouter& router_;
  sim::Scheduler& sched_;
  energy::Stream stream_;
  DisseminationPolicy policy_;
  std::vector<NodeId> targets_;
  std::size_t cursor_ = 0;
  std::uint64_t resends_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t hints_ = 0;
  std::map<std::uint64_t, Tracked> inflight_;
};

}  // namespace eesmr::net
