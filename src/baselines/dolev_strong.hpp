// Authenticated Byzantine Broadcast/Agreement à la Dolev-Strong [33]:
// the classical f+1-round protocol behind Theorem 4.1's lower bound, and
// the comparison point for the paper's §3.5 "Extensions to BA and BB"
// discussion (EESMR-style implicit voting only saves certificates in the
// first iteration; the f+1 round structure is unavoidable in the worst
// case).
//
// Protocol (synchronous rounds of length Δ):
//   round 0: the designated sender signs its value and broadcasts it.
//   round r: a node that newly accepted a value with r distinct valid
//            signatures appends its own signature and broadcasts the
//            chain (only the first two distinct values are ever relayed).
//   round f+1: decide — exactly one accepted value -> output it;
//            zero or conflicting values -> output the default ⊥.
// All correct nodes provably output the same value; if the sender is
// correct they output its value.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "src/energy/meter.hpp"
#include "src/net/flood.hpp"
#include "src/sim/scheduler.hpp"

namespace eesmr::baselines {

struct DolevStrongConfig {
  NodeId id = 0;
  std::size_t n = 4;
  std::size_t f = 1;
  NodeId sender = 0;
  sim::Duration delta = sim::milliseconds(50);
  std::shared_ptr<crypto::Keyring> keyring;
};

class DolevStrongNode final : public net::FloodClient {
 public:
  DolevStrongNode(net::Network& net, DolevStrongConfig cfg,
                  energy::Meter* meter);

  /// Start the protocol; only the designated sender uses `value`.
  /// Byzantine sender behaviour: pass `equivocate_with` to sign and send
  /// a second, conflicting value — flooded to everyone by default, or
  /// (with `selective`) each conflicting value transmitted on a disjoint
  /// half of the out-edges so only honest re-broadcast surfaces the
  /// conflict.
  void start(const Bytes& value,
             const std::optional<Bytes>& equivocate_with = std::nullopt,
             bool selective = false);

  /// Byzantine junk flooding: broadcast a deterministic garbage frame
  /// (salted by `salt`) that honest nodes must reject without crashing
  /// or signing anything.
  void flood_junk(std::uint64_t salt);

  /// Decided output; empty optional before round f+1, ⊥ (empty bytes
  /// inside the optional) on conflict/silence.
  [[nodiscard]] const std::optional<Bytes>& decision() const {
    return decision_;
  }
  [[nodiscard]] static Bytes bottom() { return {}; }

  void on_deliver(NodeId origin, BytesView payload) override;

 private:
  void relay(const Bytes& value);
  void decide();
  [[nodiscard]] Bytes sign_value(const Bytes& value) const;

  sim::Scheduler& sched_;
  net::FloodRouter router_;
  DolevStrongConfig cfg_;
  energy::Meter* meter_;

  /// Values accepted with enough signatures (at most 2 tracked).
  std::vector<Bytes> extracted_;
  std::optional<Bytes> decision_;
};

/// Convenience driver: run one BA instance over a fresh network.
/// Returns the honest nodes' decisions in node-id order (faulty nodes —
/// Byzantine sender, crashed, junk flooders — are omitted, so indices
/// are NOT node ids whenever the run has faults).
struct DolevStrongResult {
  std::vector<Bytes> decisions;  ///< honest nodes only
  std::vector<energy::Meter> meters;
  std::uint64_t transmissions = 0;
  /// Honest nodes that reached a decision by round f+1 (termination).
  std::size_t decided = 0;
  bool agreement() const;
};

/// Adversarial run description for the fault-injection matrix
/// (src/adversary): Byzantine sender behaviours, silent (crashed)
/// nodes, junk flooders, and an optional network-level fault injector.
struct DolevStrongAttack {
  bool sender_equivocate = false;
  bool sender_selective = false;     ///< disjoint-edge-half equivocation
  std::vector<NodeId> crash;         ///< off the air from the start
  std::vector<NodeId> garbage;       ///< flood junk frames every Δ/2
  net::FaultInjector* injector = nullptr;  ///< installed on the network
};

DolevStrongResult run_dolev_strong(std::size_t n, std::size_t f,
                                   const Bytes& value,
                                   const DolevStrongAttack& attack,
                                   std::uint64_t seed = 1);

DolevStrongResult run_dolev_strong(std::size_t n, std::size_t f,
                                   const Bytes& value, bool byzantine_sender,
                                   std::uint64_t seed = 1);

}  // namespace eesmr::baselines
