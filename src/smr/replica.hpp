// Shared replica plumbing for every protocol implementation: signing and
// verification with energy metering, flood-router communication, the
// block store with chain synchronization, and the committed log.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/energy/cost_model.hpp"
#include "src/energy/meter.hpp"
#include "src/net/flood.hpp"
#include "src/sim/scheduler.hpp"
#include "src/smr/app.hpp"
#include "src/smr/chain.hpp"
#include "src/smr/mempool.hpp"
#include "src/smr/message.hpp"
#include "src/smr/request.hpp"

namespace eesmr::smr {

struct ReplicaConfig {
  NodeId id = 0;
  std::size_t n = 4;
  std::size_t f = 1;
  /// End-to-end Δ: upper bound on correct-sender message delivery,
  /// including flooding across the partially connected graph.
  sim::Duration delta = sim::milliseconds(50);
  /// Commands per proposed block and synthetic command size.
  std::size_t batch_size = 1;
  std::size_t cmd_bytes = 16;
  std::shared_ptr<crypto::Keyring> keyring;
  /// Charge sign/verify/hash energy to the meter (on by default).
  bool meter_crypto = true;
};

/// Base class for protocol replicas. Subclasses implement start() and
/// handle(); the base dispatches, chain-synchronizes, and meters.
class ReplicaBase : public net::FloodClient {
 public:
  ReplicaBase(net::Network& net, ReplicaConfig cfg, energy::Meter* meter);
  ~ReplicaBase() override = default;

  virtual void start() = 0;

  // -- observability -----------------------------------------------------------
  [[nodiscard]] NodeId id() const { return cfg_.id; }
  [[nodiscard]] const ReplicaConfig& config() const { return cfg_; }
  /// Committed log, in height order (excluding genesis).
  [[nodiscard]] const std::vector<Block>& log() const { return log_; }
  [[nodiscard]] std::uint64_t current_view() const { return v_cur_; }
  [[nodiscard]] std::uint64_t current_round() const { return r_cur_; }
  [[nodiscard]] const BlockStore& store() const { return store_; }
  [[nodiscard]] Mempool& mempool() { return mempool_; }
  [[nodiscard]] const BlockHash& committed_tip() const {
    return committed_tip_;
  }
  [[nodiscard]] std::uint64_t committed_height() const {
    return committed_height_;
  }

  /// Attach an execution-layer state machine: every committed command is
  /// applied in log order; results are the per-request acknowledgments a
  /// client matches f+1-fold (§3). The app must outlive the replica.
  void attach_app(StateMachine* app) { app_ = app; }
  [[nodiscard]] StateMachine* app() const { return app_; }
  /// Execution results in commit order (one per committed command).
  [[nodiscard]] const std::vector<Bytes>& execution_results() const {
    return results_;
  }

  /// Round-robin leader assignment (Leader(v) in the paper).
  [[nodiscard]] NodeId leader_of(std::uint64_t view) const {
    return static_cast<NodeId>(view % cfg_.n);
  }
  [[nodiscard]] bool is_leader() const {
    return leader_of(v_cur_) == cfg_.id;
  }

 protected:
  // -- crypto with energy metering ------------------------------------------------
  /// Build and sign a message in the current view.
  Msg make_msg(MsgType type, std::uint64_t round, Bytes data);
  /// Verify a message signature (drops author range errors too).
  [[nodiscard]] bool verify_msg(const Msg& m);
  [[nodiscard]] bool verify_qc(const QuorumCert& qc, std::size_t quorum_size);
  /// Hash a block, charging hash energy.
  [[nodiscard]] BlockHash hash_block(const Block& b);
  [[nodiscard]] std::size_t quorum() const { return cfg_.f + 1; }

  // -- communication ---------------------------------------------------------------
  void broadcast(const Msg& m);
  /// One transmission to the direct neighborhood, no re-forwarding (the
  /// "partial vote forwarding" primitive).
  void broadcast_local(const Msg& m);
  void send(NodeId to, const Msg& m);
  [[nodiscard]] net::FloodRouter& router() { return router_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  // -- chain handling --------------------------------------------------------------
  /// Add `block` to the store. If the parent is unknown, stash it as an
  /// orphan and request ancestors from `origin` (chain synchronization).
  /// Returns true when the block is connected.
  bool integrate_block(const Block& block, NodeId origin);
  /// Called when a previously-orphaned block becomes connected.
  virtual void on_chain_connected(const Block& block);

  /// Commit `h` and all its uncommitted ancestors (Algorithm 2 line 280).
  /// No-op if already committed. Throws std::logic_error if `h` conflicts
  /// with the committed tip — a correct replica must never do that.
  void commit_chain(const BlockHash& h);
  virtual void on_commit(const Block& block);

  // -- client request/reply path ----------------------------------------------------
  /// Verify and pool a client-submitted kRequest (authors live above the
  /// replica id range, so the normal verify_msg path does not apply).
  void handle_request(const Msg& msg);
  /// Send the signed execution acknowledgment for one committed request
  /// back to its client. Called once per tagged command on commit;
  /// override point for Byzantine reply behaviours in tests.
  virtual void reply_to_client(const ClientRequest& req, const Bytes& result);

  // -- dispatch ---------------------------------------------------------------------
  void on_deliver(NodeId origin, BytesView payload) final;
  /// Protocol logic; called only for messages that passed (or were
  /// excused from) signature verification.
  virtual void handle(NodeId from, const Msg& msg) = 0;
  /// Whether this message's signature must be verified before handling.
  /// Protocols may skip verification for optimistically pre-committed
  /// steady-state proposals (§3.5 "Batching optimization").
  [[nodiscard]] virtual bool requires_signature_check(const Msg& msg) const {
    (void)msg;
    return true;
  }

  sim::Scheduler& sched_;
  net::FloodRouter router_;
  ReplicaConfig cfg_;
  energy::Meter* meter_;  ///< may be nullptr

  BlockStore store_;
  Mempool mempool_;

  std::uint64_t v_cur_ = 1;
  std::uint64_t r_cur_ = 3;

 private:
  void handle_sync(NodeId from, const Msg& msg);
  void charge(energy::Category cat, double mj);

  std::vector<Block> log_;
  std::set<std::string> committed_;  // hashes as strings
  BlockHash committed_tip_;
  std::uint64_t committed_height_ = 0;
  std::set<std::string> sync_requested_;
  StateMachine* app_ = nullptr;
  std::vector<Bytes> results_;
  /// First execution result per (client, req_id): a request re-proposed
  /// across a view change can land in two committed blocks; replaying the
  /// stored result keeps execution exactly-once and replies consistent.
  std::map<std::pair<NodeId, std::uint64_t>, Bytes> executed_;
};

}  // namespace eesmr::smr
