#!/usr/bin/env bash
# Run every figure/table bench in smoke mode with a fixed thread count
# and collect the observability artifacts into one directory:
#
#   tools/run_bench_smoke.sh BUILD_DIR OUT_DIR [--json-only]
#
# Writes BENCH_<bench>.json (+ .prom Prometheus exposition and .trace
# Chrome trace unless --json-only) per bench. The smoke matrix is
# deterministic — per-bench default seeds, fixed grids — so the output
# is byte-identical run to run; that is what makes the committed
# bench/baselines/ tree and the bench_diff CI gate meaningful.
#
# Regenerate the committed baselines after an intentional metrics
# change:
#   cmake --build build -j && tools/run_bench_smoke.sh build bench/baselines --json-only
set -eu

build_dir=${1:?usage: run_bench_smoke.sh BUILD_DIR OUT_DIR [--json-only]}
out_dir=${2:?usage: run_bench_smoke.sh BUILD_DIR OUT_DIR [--json-only]}
json_only=${3:-}

repo_dir=$(cd "$(dirname "$0")/.." && pwd)
mkdir -p "$out_dir"

for src in "$repo_dir"/bench/*.cpp; do
  name=$(basename "$src" .cpp)
  extra=()
  if [ "$json_only" != "--json-only" ]; then
    extra=(--prom-out "$out_dir/BENCH_$name.prom"
           --trace-out "$out_dir/BENCH_$name.trace")
  fi
  # --workers 2 exercises the parallel crypto pipeline; its outputs are
  # byte-identical to --workers 0, so the baselines stay serial-valid.
  "$build_dir/bench_$name" --smoke --threads 2 --workers 2 \
    --json-out "$out_dir/BENCH_$name.json" "${extra[@]}" >/dev/null
  echo "ok: $name"
done
