#include "src/crypto/hmac.hpp"

#include <cstring>

namespace eesmr::crypto {

Sha256Digest hmac_sha256(BytesView key, BytesView msg) {
  std::uint8_t k[64] = {0};
  if (key.size() > 64) {
    const Sha256Digest kd = Sha256::hash(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  std::uint8_t ipad[64];
  std::uint8_t opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad, 64));
  inner.update(msg);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad, 64));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Bytes hmac(BytesView key, BytesView msg) {
  const Sha256Digest d = hmac_sha256(key, msg);
  return Bytes(d.begin(), d.end());
}

bool mac_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace eesmr::crypto
