#include "src/net/hypergraph.hpp"

#include <gtest/gtest.h>

namespace eesmr::net {
namespace {

TEST(Hypergraph, FullMeshDegrees) {
  const auto g = Hypergraph::full_mesh(5);
  EXPECT_EQ(g.edges().size(), 20u);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(g.d_out(i), 4u);
    EXPECT_EQ(g.d_in(i), 4u);
  }
  EXPECT_EQ(g.min_edge_degree(), 1u);
  EXPECT_EQ(g.diameter(), 1u);
}

TEST(Hypergraph, KcastRingStructure) {
  // §5.6: p_i transmits to p_{i+1..i+k}; D_out = 1, D_in = k.
  const auto g = Hypergraph::kcast_ring(10, 3);
  EXPECT_EQ(g.edges().size(), 10u);
  EXPECT_EQ(g.cap_d_out(), 1u);
  EXPECT_EQ(g.cap_d_in(), 3u);
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_EQ(g.d_out(i), 3u);  // k distinct nodes reachable
    EXPECT_EQ(g.d_in(i), 3u);   // k distinct senders heard
  }
  EXPECT_EQ(g.min_edge_degree(), 3u);
  // Flood diameter: ceil((n-1)/k) = 3 hops.
  EXPECT_EQ(g.diameter(), 3u);
}

TEST(Hypergraph, KcastRingRejectsBadK) {
  EXPECT_THROW(Hypergraph::kcast_ring(5, 0), std::invalid_argument);
  EXPECT_THROW(Hypergraph::kcast_ring(5, 5), std::invalid_argument);
}

TEST(Hypergraph, AddEdgeValidation) {
  Hypergraph g(3);
  EXPECT_THROW(g.add_edge({0, {0}}), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_edge({0, {7}}), std::invalid_argument);  // range
  EXPECT_THROW(g.add_edge({7, {0}}), std::invalid_argument);
  EXPECT_THROW(g.add_edge({0, {}}), std::invalid_argument);  // empty
  g.add_edge({0, {1, 2}});
  EXPECT_EQ(g.out_edges(0).size(), 1u);
  EXPECT_EQ(g.in_edges(1).size(), 1u);
}

TEST(Hypergraph, IndependenceCounterexampleFromAppendixA) {
  // The appendix example: e1 = {p0,{p1,p2}}, e2 = {p0,{p2,p3}},
  // e3 = {p0,{p1,p3}} — one edge is redundant; the union of any two
  // equals the union of all three.
  Hypergraph g(4);
  g.add_edge({0, {1, 2}});
  g.add_edge({0, {2, 3}});
  g.add_edge({0, {1, 3}});
  EXPECT_FALSE(g.edges_independent());
}

TEST(Hypergraph, IndependentEdgesAccepted) {
  Hypergraph g(5);
  g.add_edge({0, {1, 2}});
  g.add_edge({0, {3, 4}});
  g.add_edge({1, {0}});
  EXPECT_TRUE(g.edges_independent());
  EXPECT_TRUE(Hypergraph::kcast_ring(8, 3).edges_independent());
  EXPECT_TRUE(Hypergraph::full_mesh(5).edges_independent());
}

TEST(Hypergraph, FaultBoundLemmaA5) {
  // Ring with k = 3 has min(d_in, d_out) = 3 -> tolerates f < 3.
  const auto g = Hypergraph::kcast_ring(10, 3);
  EXPECT_TRUE(g.satisfies_fault_bound(0));
  EXPECT_TRUE(g.satisfies_fault_bound(2));
  EXPECT_FALSE(g.satisfies_fault_bound(3));
  EXPECT_FALSE(g.satisfies_fault_bound(9));
}

TEST(Hypergraph, KcastBoundLemmaA6) {
  // f < k * min(D_in, D_out): ring has D_out = 1, so f < k.
  const auto g = Hypergraph::kcast_ring(10, 3);
  EXPECT_TRUE(g.satisfies_kcast_bound(2, 3));
  EXPECT_FALSE(g.satisfies_kcast_bound(3, 3));
}

TEST(Hypergraph, StrongConnectivity) {
  const auto ring = Hypergraph::kcast_ring(6, 2);
  EXPECT_TRUE(ring.strongly_connected());
  // Removing 2 adjacent nodes from a k=2 ring disconnects the flow
  // around them only if they block every path; with k = 2 and n = 6,
  // removing nodes 1 and 2 still leaves 0 -> ... -> 5 paths? Node 0
  // reaches {1,2} only, both removed -> 0 is cut off.
  EXPECT_FALSE(ring.strongly_connected_without({1, 2}));
  EXPECT_TRUE(ring.strongly_connected_without({1}));
}

TEST(Hypergraph, PartitionResistance) {
  sim::Rng rng(5);
  // k = 3 ring survives any single fault...
  EXPECT_TRUE(Hypergraph::kcast_ring(8, 3).partition_resistant(1, rng));
  // ...and any two faults (no two removals can cover all 3 out-neighbors
  // of any node)...
  EXPECT_TRUE(Hypergraph::kcast_ring(8, 3).partition_resistant(2, rng));
  // ...but three adjacent faults cut a node off.
  EXPECT_FALSE(Hypergraph::kcast_ring(8, 3).partition_resistant(3, rng));
  // Full mesh of 6 survives up to 4 removals trivially.
  EXPECT_TRUE(Hypergraph::full_mesh(6).partition_resistant(4, rng));
}

TEST(Hypergraph, DisconnectedGraphDetected) {
  Hypergraph g(4);
  g.add_edge({0, {1}});
  g.add_edge({1, {0}});
  g.add_edge({2, {3}});
  g.add_edge({3, {2}});
  EXPECT_FALSE(g.strongly_connected());
}

TEST(Hypergraph, DiameterGrowsAsKShrinks) {
  EXPECT_GT(Hypergraph::kcast_ring(12, 1).diameter(),
            Hypergraph::kcast_ring(12, 4).diameter());
  EXPECT_EQ(Hypergraph::kcast_ring(12, 1).diameter(), 11u);
}

// Property sweep over ring parameters: structural invariants hold for
// every (n, k).
class RingSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RingSweep, StructuralInvariants) {
  const auto [n, k] = GetParam();
  const auto g = Hypergraph::kcast_ring(n, k);
  EXPECT_EQ(g.edges().size(), n);
  EXPECT_EQ(g.cap_d_in(), k);
  EXPECT_EQ(g.cap_d_out(), 1u);
  EXPECT_TRUE(g.strongly_connected());
  EXPECT_TRUE(g.satisfies_fault_bound(k - 1));
  EXPECT_FALSE(g.satisfies_fault_bound(k));
  // Diameter = ceil((n-1)/k).
  EXPECT_EQ(g.diameter(), (n - 2 + k) / k);
}

INSTANTIATE_TEST_SUITE_P(
    NKCombinations, RingSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 7, 10, 15),
                       ::testing::Values<std::size_t>(1, 2, 3)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace eesmr::net
