// Declarative parameter grids — the sweep vocabulary of the experiment
// engine. Every figure/table in the paper is a sweep over a small
// cartesian product (protocol x medium x n x block size x load); a Grid
// names each axis once and expands to the full run matrix in row-major
// order (last axis fastest), which is also the order results are
// committed and reported in, independent of how many worker threads
// executed the runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eesmr::exp {

/// One swept parameter: a name plus human-readable labels for each of
/// its values. The engine never interprets the values themselves — the
/// bench keeps its own typed vector and indexes it with the axis index
/// of each run — so axes over protocols, media, policies and sizes all
/// look the same here.
struct Axis {
  std::string name;
  std::vector<std::string> labels;

  Axis(std::string axis_name, std::vector<std::string> value_labels)
      : name(std::move(axis_name)), labels(std::move(value_labels)) {}

  /// Convenience: labels via std::to_string over a value vector.
  template <typename T>
  static Axis of(std::string axis_name, const std::vector<T>& values) {
    std::vector<std::string> labels;
    labels.reserve(values.size());
    for (const T& v : values) labels.push_back(std::to_string(v));
    return Axis(std::move(axis_name), std::move(labels));
  }

  [[nodiscard]] std::size_t size() const { return labels.size(); }
};

class Grid {
 public:
  Grid() = default;

  /// Append an axis; returns *this for chaining. Axis names must be
  /// unique within a grid.
  Grid& axis(Axis a);
  Grid& axis(std::string name, std::vector<std::string> labels) {
    return axis(Axis(std::move(name), std::move(labels)));
  }
  template <typename T>
  Grid& axis_of(std::string name, const std::vector<T>& values) {
    return axis(Axis::of(std::move(name), values));
  }

  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }

  /// Total number of runs (product of axis sizes; 1 for an empty grid —
  /// a single-point grid is how one-shot sections are expressed).
  [[nodiscard]] std::size_t size() const;

  /// Row-major expansion: per-axis value indices of flat run `i`.
  [[nodiscard]] std::vector<std::size_t> indices(std::size_t i) const;

  /// Position of `name` among the axes; throws std::out_of_range when
  /// the grid has no such axis.
  [[nodiscard]] std::size_t axis_pos(std::string_view name) const;

 private:
  std::vector<Axis> axes_;
};

}  // namespace eesmr::exp
