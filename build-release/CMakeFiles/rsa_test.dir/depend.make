# Empty dependencies file for rsa_test.
# This may be replaced when dependencies are built.
