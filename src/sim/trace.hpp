// Lightweight structured trace sink for debugging simulation runs.
// Disabled by default; tests and examples can attach a sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "src/sim/time.hpp"

namespace eesmr::sim {

/// Severity is deliberately coarse; traces are a debugging aid, not logs.
enum class TraceLevel { kDebug, kInfo, kWarn };

class Trace {
 public:
  using Sink = std::function<void(SimTime, TraceLevel, const std::string&)>;

  /// Attach a sink. Passing nullptr detaches (tracing becomes free).
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool enabled() const { return static_cast<bool>(sink_); }

  void emit(SimTime t, TraceLevel lvl, const std::string& msg) const {
    if (sink_) sink_(t, lvl, msg);
  }

  /// Sink that writes "t=<ms> <msg>" lines to stderr.
  static Sink stderr_sink();

 private:
  Sink sink_;
};

}  // namespace eesmr::sim
