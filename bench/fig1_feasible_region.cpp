// Figure 1: feasible region for EESMR vs the trusted-baseline protocol
// over message size m and node count n. RSA-1024 signatures; the CPS
// nodes talk WiFi among themselves, the trusted control node sits on 4G.
// z = ψ^EESMR − ψ^Baseline per consensus unit; negative cells are where
// EESMR is the energy-efficient choice.
#include "bench/bench_util.hpp"
#include "src/energy/analysis.hpp"

using namespace eesmr;
using namespace eesmr::energy;

int main() {
  bench::header("Figure 1 — EESMR vs trusted baseline feasible region",
                "Fig. 1 (§5.1, RSA-1024, WiFi nodes / 4G control link)");

  SystemParams base;
  base.comm = CommMode::kUnicastFullMesh;
  base.node_medium = Medium::kWifi;
  base.control_medium = Medium::k4gLte;
  base.scheme = crypto::SchemeId::kRsa1024;

  const std::vector<std::size_t> ns = {3, 4, 5, 6, 8, 10, 12, 16};
  const std::vector<std::size_t> ms = {256, 512, 1024, 2048, 4096, 8192};

  std::printf("z = (EESMR - baseline) steady-state mJ per consensus unit\n");
  std::printf("%6s |", "n \\ m");
  for (std::size_t m : ms) std::printf(" %8zuB", m);
  std::printf("\n-------+");
  for (std::size_t i = 0; i < ms.size(); ++i) std::printf("----------");
  std::printf("\n");

  const auto grid = feasible_region(ns, ms, base);
  std::size_t idx = 0;
  int favorable = 0;
  for (std::size_t n : ns) {
    std::printf("%6zu |", n);
    for (std::size_t j = 0; j < ms.size(); ++j) {
      const auto& pt = grid[idx++];
      favorable += pt.diff_mj < 0;
      std::printf(" %9.0f", pt.diff_mj);
    }
    std::printf("\n");
  }

  std::printf("\nfavorable cells (EESMR wins): %d / %zu\n", favorable,
              grid.size());
  bench::note("expected shape: EESMR is favorable at small n (the n-1 WiFi "
              "exchanges stay below one 4G round-trip) and loses as n "
              "grows; the boundary is the paper's feasibility frontier");

  // Section-4 decision metrics at one representative operating point.
  SystemParams x = base;
  x.n = 4;
  x.m = 1024;
  x.f = 1;
  const PsiBreakdown ee = psi_eesmr(x);
  const double bl = psi_trusted_baseline(x);
  std::printf("\nSection-4 decision metrics at n=4, m=1kB:\n");
  std::printf("  psi_B(EESMR) = %.0f mJ, psi_V(EESMR) = %.0f mJ, "
              "psi(Baseline) = %.0f mJ\n",
              ee.best, ee.view_change, bl);
  std::printf("  energy-fault bound f_e (EB) = %.3f\n",
              energy_fault_bound(bl, ee));
  return 0;
}
