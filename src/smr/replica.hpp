// Shared replica plumbing for every protocol implementation: signing and
// verification with energy metering, flood-router communication, the
// block store with chain synchronization, and the committed log.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/checkpoint/checkpoint.hpp"
#include "src/common/serde.hpp"
#include "src/crypto/sha256.hpp"
#include "src/crypto/workers.hpp"
#include "src/energy/cost_model.hpp"
#include "src/energy/meter.hpp"
#include "src/net/channel.hpp"
#include "src/net/flood.hpp"
#include "src/obs/prof.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/scheduler.hpp"
#include "src/smr/app.hpp"
#include "src/smr/chain.hpp"
#include "src/smr/mempool.hpp"
#include "src/smr/membership.hpp"
#include "src/smr/message.hpp"
#include "src/smr/request.hpp"

namespace eesmr::smr {

struct ReplicaConfig {
  NodeId id = 0;
  std::size_t n = 4;
  std::size_t f = 1;
  /// Vote/commit quorum size. 0 resolves to the synchronous-model default
  /// f+1; partially-synchronous backends (PBFT) set 2f+1, trusted-component
  /// backends (MinBFT) keep f+1 at n=2f+1. Checkpoint certificates always
  /// need f+1 signatures (one correct attester) regardless of this value.
  std::size_t quorum = 0;
  /// End-to-end Δ: upper bound on correct-sender message delivery,
  /// including flooding across the partially connected graph.
  sim::Duration delta = sim::milliseconds(50);
  /// Commands per proposed block and synthetic command size.
  std::size_t batch_size = 1;
  std::size_t cmd_bytes = 16;
  std::shared_ptr<crypto::Keyring> keyring;
  /// Charge sign/verify/hash energy to the meter (on by default).
  bool meter_crypto = true;

  /// Certificate wire scheme: individual (author, signature) pairs, or
  /// signer-bitset + one aggregate signature (O(1) certs). Under
  /// kAggregate, vote-class messages and checkpoint attestations are
  /// share-signed with `agg` so their signatures fold into certificates.
  CertScheme cert_scheme = CertScheme::kIndividual;
  /// Aggregate-scheme key directory (required iff cert_scheme is
  /// kAggregate); shared across the cluster like `keyring`.
  std::shared_ptr<crypto::AggKeyring> agg;
  /// Nodes in the genesis membership generation {0..initial_members-1}.
  /// 0 resolves to n. Replicas in [initial_members, n) are spares that
  /// only become signers when a committed policy block admits them.
  std::size_t initial_members = 0;

  /// Per-stream dissemination policies for this replica's typed
  /// channels. Entries left at Kind::kDefault resolve to the protocol's
  /// default for that stream (Flood everywhere; Sync HotStuff resolves
  /// its vote stream to LocalKcast). When the request stream runs a
  /// unicast-style policy (RoutedUnicast / TargetedSubset), replicas
  /// forward freshly pooled client requests to the current leader so a
  /// submission that missed the leader still gets ordered.
  net::ChannelPolicies channels;

  /// Remember request signatures verified at pool time and skip the
  /// commit-time re-verification (halves the honest-path kVerify cost).
  /// Entries are single-use and GC'd as the low-water mark advances.
  /// Also gates the verified-signature cache: vote and checkpoint
  /// signatures verified individually on arrival are never re-verified
  /// (or re-charged) when the same signature surfaces inside a quorum /
  /// checkpoint certificate tally on this node.
  bool verified_cache = true;

  /// Shared speculative verification pipeline (crypto::VerifyPipeline,
  /// one per cluster). Not owned; nullptr keeps every verification
  /// inline. Changes where signature checks physically execute, never
  /// their results or the energy accounting — outputs are byte-identical
  /// with or without it, at any worker count.
  crypto::VerifyPipeline* pipeline = nullptr;

  // -- checkpointing & admission control (src/checkpoint/) -------------------
  /// Committed commands per stable checkpoint (0 = checkpointing off).
  /// Distinct from EesmrOptions::checkpoint_interval, which is the §3.5
  /// signature-batching round interval.
  std::uint64_t checkpoint_interval = 0;
  /// Mempool pending-queue bound (0 = unbounded): open-loop overload is
  /// shed instead of queueing without limit.
  std::size_t mempool_capacity = 0;
  /// Max pooled-but-uncommitted requests per client (0 = unbounded): a
  /// Byzantine client flooding unique req_ids cannot exhaust the pool.
  std::size_t client_pending_cap = 0;

  /// Structured event tracer for the commit path, checkpoints and state
  /// transfers (src/obs/trace.hpp). Not owned; nullptr disables tracing.
  obs::Tracer* tracer = nullptr;

  /// Deterministic profiler (src/obs/prof.hpp): per-site crypto op
  /// counts, per-stream codec bytes, early-drop counting and
  /// request-scoped flow tracing. Not owned; nullptr disables profiling.
  prof::Profiler* profiler = nullptr;
};

/// Byzantine outbound interception (src/adversary): consulted for every
/// outgoing protocol message of a replica it is installed on. Returning
/// false withholds the message — it was built and signed (that energy is
/// already charged, as a real traitor would pay it) but never reaches
/// the radio. `dest` is kNoNode for broadcasts. This is the per-stream
/// selective-withholding / vote-suppression primitive.
class OutboundPolicy {
 public:
  virtual ~OutboundPolicy() = default;
  [[nodiscard]] virtual bool allow(const Msg& m, NodeId dest) = 0;
};

/// Base class for protocol replicas. Subclasses implement start() and
/// handle(); the base dispatches, chain-synchronizes, and meters.
class ReplicaBase : public net::FloodClient {
 public:
  ReplicaBase(net::Network& net, ReplicaConfig cfg, energy::Meter* meter);
  ~ReplicaBase() override = default;

  virtual void start() = 0;

  // -- observability -----------------------------------------------------------
  [[nodiscard]] NodeId id() const { return cfg_.id; }
  [[nodiscard]] const ReplicaConfig& config() const { return cfg_; }
  /// Retained committed log, in height order (excluding genesis).
  /// Checkpointing truncates the prefix at or below the low-water mark;
  /// committed_blocks() counts every block ever committed.
  [[nodiscard]] const std::vector<Block>& log() const { return log_; }
  [[nodiscard]] std::uint64_t committed_blocks() const {
    return committed_blocks_;
  }
  [[nodiscard]] std::uint64_t current_view() const { return v_cur_; }
  [[nodiscard]] std::uint64_t current_round() const { return r_cur_; }
  [[nodiscard]] const BlockStore& store() const { return store_; }
  [[nodiscard]] Mempool& mempool() { return mempool_; }
  [[nodiscard]] const Mempool& mempool() const { return mempool_; }
  [[nodiscard]] const BlockHash& committed_tip() const {
    return committed_tip_;
  }
  [[nodiscard]] std::uint64_t committed_height() const {
    return committed_height_;
  }

  // -- checkpoint / state-transfer observability -------------------------------
  [[nodiscard]] const checkpoint::CheckpointManager& checkpoints() const {
    return ckpt_;
  }
  /// Stable-checkpoint height below which log/state was truncated.
  [[nodiscard]] std::uint64_t low_water_mark() const { return lwm_height_; }
  /// Entries in the exactly-once reply cache (bounded by checkpoint GC).
  [[nodiscard]] std::size_t executed_entries() const {
    return executed_.size();
  }
  /// Completed snapshot catch-ups and the duration of the latest one.
  [[nodiscard]] std::uint64_t state_transfers() const {
    return state_transfers_;
  }
  [[nodiscard]] sim::Duration last_recovery_time() const {
    return last_recovery_;
  }
  /// Requests rejected by the per-client pending cap.
  [[nodiscard]] std::uint64_t requests_rejected() const {
    return client_cap_drops_;
  }
  /// Pool-time-verified request entries currently cached / commit-time
  /// re-verifications skipped thanks to the cache.
  [[nodiscard]] std::size_t verified_cache_entries() const {
    return verified_.size();
  }
  [[nodiscard]] std::uint64_t verified_cache_hits() const {
    return verified_hits_;
  }
  /// Verified-signature cache (votes / checkpoint attestations): live
  /// entries and metered re-verifications skipped at certificate tallies.
  [[nodiscard]] std::size_t sig_cache_entries() const {
    return sig_verified_.size();
  }
  [[nodiscard]] std::uint64_t sig_cache_hits() const {
    return sig_cache_hits_;
  }
  /// Client requests forwarded to the leader (unicast-style request
  /// streams only).
  [[nodiscard]] std::uint64_t requests_forwarded() const {
    return requests_forwarded_;
  }
  /// Known-bad flood frames rejected before the metered signature
  /// verification (the garbage-flood early-drop filter).
  [[nodiscard]] std::uint64_t early_drops() const { return early_drops_; }
  /// Sparse flood-router dedup entries currently held (seen-window
  /// tails; bounded even under adversarial duplication/reordering).
  [[nodiscard]] std::size_t flood_dedup_entries() const {
    return router_.dedup_tail_entries();
  }

  /// Harness hook: while offline every delivery is dropped (a crashed /
  /// not-yet-spawned replica). Going online again models recovery; the
  /// replica then catches up by chain sync or state transfer. The
  /// offline→online edge fires on_restart() so protocols re-arm timers
  /// that lapsed while down (a timeout that fires offline is swallowed
  /// and would otherwise never re-schedule itself).
  void set_online(bool online) {
    const bool was = online_;
    online_ = online;
    if (online && !was) on_restart();
  }
  [[nodiscard]] bool online() const { return online_; }

  /// Install (or clear) a Byzantine outbound filter. Not owned; must
  /// outlive the replica while installed.
  void set_outbound_policy(OutboundPolicy* policy) { outbound_ = policy; }

  /// Scripted-fault harness hook: a replica whose outgoing traffic is
  /// scripted away (withhold filter, lossy links) can legitimately
  /// commit a private fork nobody else saw — e.g. a withholding leader
  /// self-accepts the proposals it never sent, then observes the view
  /// change move past them. Such a node is excluded from correctness
  /// accounting, so commit_chain treats the conflict as a no-op instead
  /// of asserting (honest replicas keep the hard assertion).
  void set_tolerate_fork(bool tolerate) { tolerate_fork_ = tolerate; }

  /// Attach an execution-layer state machine: every committed command is
  /// applied in log order; results are the per-request acknowledgments a
  /// client matches f+1-fold (§3). The app must outlive the replica.
  void attach_app(StateMachine* app) { app_ = app; }
  [[nodiscard]] StateMachine* app() const { return app_; }
  /// Execution results in commit order (one per committed command).
  [[nodiscard]] const std::vector<Bytes>& execution_results() const {
    return results_;
  }

  /// Round-robin leader assignment over the active signer set
  /// (Leader(v) in the paper; identical to `view % n` until a committed
  /// policy block changes the membership).
  [[nodiscard]] NodeId leader_of(std::uint64_t view) const {
    return membership_.leader_at(view);
  }
  [[nodiscard]] bool is_leader() const {
    return leader_of(v_cur_) == cfg_.id;
  }

  // -- membership observability ------------------------------------------------
  [[nodiscard]] const MembershipState& membership() const {
    return membership_;
  }
  [[nodiscard]] std::uint64_t membership_generation() const {
    return membership_.generation();
  }
  /// Committed policy blocks applied by this replica.
  [[nodiscard]] std::uint64_t membership_changes() const {
    return membership_changes_;
  }

  // -- Byzantine checkpoint harness hooks (src/adversary) ----------------------
  /// Broadcast checkpoint attestations over a forged snapshot digest
  /// (the local tally keeps the honest one — a real attacker stays
  /// internally consistent). Honest nodes must never assemble a stable
  /// certificate from the forged digest.
  void set_forge_checkpoint_digest(bool v) { forge_ckpt_ = v; }
  /// Refuse to serve snapshots (state-transfer starvation): requesters
  /// must recover by rotating to another checkpoint signer.
  void set_withhold_snapshots(bool v) { withhold_snap_ = v; }

 protected:
  // -- crypto with energy metering ------------------------------------------------
  /// Build and sign a message in the current view.
  Msg make_msg(MsgType type, std::uint64_t round, Bytes data);
  /// Verify a message signature (drops author range errors too).
  [[nodiscard]] bool verify_msg(const Msg& m);
  [[nodiscard]] bool verify_qc(const QuorumCert& qc, std::size_t quorum_size);
  /// Running the aggregate certificate scheme?
  [[nodiscard]] bool aggregate_certs() const {
    return cfg_.cert_scheme == CertScheme::kAggregate;
  }
  /// Assemble a certificate from verified matching messages under the
  /// configured scheme: QuorumCert::combine, folded into the bitset +
  /// aggregate form (tagged with the current membership generation) when
  /// the aggregate scheme is on. Charges the combine cost and counts the
  /// certificate's wire bytes against the profiler's "cert" component.
  [[nodiscard]] QuorumCert make_cert(const std::vector<Msg>& msgs);
  /// Hash a block, charging hash energy.
  [[nodiscard]] BlockHash hash_block(const Block& b);
  [[nodiscard]] std::size_t quorum() const {
    return cfg_.quorum != 0 ? cfg_.quorum : cfg_.f + 1;
  }

  // -- communication ---------------------------------------------------------------
  // All protocol traffic goes through typed channels: one per
  // energy::Stream, each with its own dissemination policy
  // (ReplicaConfig::channels). broadcast() disseminates per the policy
  // of the message type's stream; send() is point-to-point on that
  // stream's channel regardless of policy.
  void broadcast(const Msg& m);
  void send(NodeId to, const Msg& m);
  /// The typed channel for one stream (open for the replica's lifetime).
  [[nodiscard]] net::Channel& channel(energy::Stream s) {
    return *channels_[static_cast<std::size_t>(s)];
  }
  /// Constructor-time override point for protocol-default policies
  /// (e.g. Sync HotStuff's LocalKcast votes). Call before start().
  void set_channel_policy(energy::Stream s, net::DisseminationPolicy p) {
    channel(s).set_policy(p);
  }
  [[nodiscard]] net::FloodRouter& router() { return router_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  // -- chain handling --------------------------------------------------------------
  /// Add `block` to the store. If the parent is unknown, stash it as an
  /// orphan and request ancestors from `origin` (chain synchronization).
  /// Returns true when the block is connected.
  bool integrate_block(const Block& block, NodeId origin);
  /// Called when a previously-orphaned block becomes connected.
  virtual void on_chain_connected(const Block& block);

  /// Commit `h` and all its uncommitted ancestors (Algorithm 2 line 280).
  /// No-op if already committed. Throws std::logic_error if `h` conflicts
  /// with the committed tip — a correct replica must never do that.
  void commit_chain(const BlockHash& h);
  virtual void on_commit(const Block& block);

  // -- checkpointing hooks ------------------------------------------------------
  /// Called as the low-water mark advances to `root` (the checkpoint
  /// block), just before the blocks below it leave the store. Protocols
  /// GC their per-block side state (vote tallies, equivocation records)
  /// here — the doomed blocks are still inspectable, so side state for
  /// a block that simply has not arrived yet can be told apart and kept.
  virtual void on_low_water(const Block& root);
  /// Called after a completed state transfer re-rooted the chain at
  /// `root`. Protocols re-anchor their locks / certified tips here.
  virtual void on_state_transfer(const Block& root);
  /// Called on the offline→online edge (crash recovery). Protocols
  /// re-arm their progress/blame timers here: a timeout that fired
  /// while offline was swallowed and never re-scheduled itself.
  virtual void on_restart();
  /// Called after a committed policy block flipped the active signer
  /// set to `policy` (at the commit boundary, after the block's commands
  /// executed). Protocols rebase per-sender state here — e.g. MinBFT
  /// drops AttestationTracker lanes for departed members.
  virtual void on_membership_change(const MembershipPolicy& policy);

  // -- client request/reply path ----------------------------------------------------
  /// Verify and pool a client-submitted kRequest (authors live above the
  /// replica id range, so the normal verify_msg path does not apply).
  void handle_request(const Msg& msg);
  /// Send the signed execution acknowledgment for one committed request
  /// back to its client. Called once per tagged command on commit;
  /// override point for Byzantine reply behaviours in tests.
  virtual void reply_to_client(const ClientRequest& req, const Bytes& result);

  // -- dispatch ---------------------------------------------------------------------
  void on_deliver(NodeId origin, BytesView payload) final;
  /// Protocol logic; called only for messages that passed (or were
  /// excused from) signature verification.
  virtual void handle(NodeId from, const Msg& msg) = 0;
  /// Whether this message's signature must be verified before handling.
  /// Protocols may skip verification for optimistically pre-committed
  /// steady-state proposals (§3.5 "Batching optimization").
  [[nodiscard]] virtual bool requires_signature_check(const Msg& msg) const {
    (void)msg;
    return true;
  }

  // -- event tracing ---------------------------------------------------------------
  // Thin forwarders to cfg_.tracer stamped with sched_.now() and this
  // replica's id; all no-ops when no tracer is attached.
  [[nodiscard]] bool tracing() const { return cfg_.tracer != nullptr; }
  void trace_instant(const char* cat, std::string name,
                     obs::Tracer::Args args = {});
  void trace_begin(const char* cat, std::string name, std::uint64_t id,
                   obs::Tracer::Args args = {});
  void trace_mark(const char* cat, std::string name, std::uint64_t id,
                  obs::Tracer::Args args = {});
  void trace_end(const char* cat, std::string name, std::uint64_t id,
                 obs::Tracer::Args args = {});

  // -- profiling -------------------------------------------------------------------
  // cfg_.profiler forwarders; all no-ops without a profiler attached.
  [[nodiscard]] prof::Profiler* profiler() const { return cfg_.profiler; }
  /// Count one crypto op against this replica at `site`.
  void prof_crypto(const char* op, const char* site);
  /// Emit a flow step (with its anchoring slice) for one sampled request.
  void prof_flow(const char* name, NodeId client, std::uint64_t req_id);
  /// Flow steps + frame-share energy attribution for every sampled
  /// request carried by `b`: each sampled command gets `1/|cmds|` of the
  /// `frame_bytes` frame on stream `s` (frame_bytes 0 = flow step only).
  void prof_flow_block(const char* name, const Block& b, energy::Stream s,
                       std::size_t frame_bytes);
  /// Same, for call sites that only hold the block hash (vote/certify);
  /// resolves through the store and is a no-op for unknown blocks.
  void prof_flow_hash(const char* name, const BlockHash& h, energy::Stream s,
                      std::size_t frame_bytes);

  sim::Scheduler& sched_;
  net::FloodRouter router_;
  ReplicaConfig cfg_;
  energy::Meter* meter_;  ///< may be nullptr

  BlockStore store_;
  Mempool mempool_;
  /// Policy-generation history (genesis = initial_members at weight 1).
  MembershipState membership_;

  std::uint64_t v_cur_ = 1;
  std::uint64_t r_cur_ = 3;

 private:
  void handle_sync(NodeId from, const Msg& msg);
  void charge(energy::Category cat, double mj);
  /// Is `id` a signer of the current or a recent (windowed) generation?
  /// Gates vote-class traffic once membership has changed: a departed
  /// member's votes stop counting, modulo certificates still in flight
  /// from just before the flip.
  [[nodiscard]] bool recent_signer(NodeId id) const;
  /// Whether the signer gate is live: after any policy flip, or from
  /// genesis when spares exist (initial_members < n — a spare's votes
  /// must not count before a policy admits it).
  [[nodiscard]] bool membership_enforced() const {
    return membership_.generation() > 0 ||
           membership_.active_count() < cfg_.n;
  }
  /// Latest known generation whose signer set contains every node in
  /// `signer_ids` (falls back to the current generation): the tag for an
  /// aggregate certificate folded from these signers' shares.
  [[nodiscard]] std::uint64_t generation_for_signers(
      const std::vector<NodeId>& signer_ids) const;
  /// Whole-certificate cache digest for an aggregate cert (covers
  /// preimage, signer bitset and aggregate signature).
  static crypto::Sha256Digest agg_cert_digest(
      BytesView preimage, const crypto::SignerBitset& signers,
      BytesView agg_sig);
  /// Aggregate-cert validity shared by verify_qc /
  /// verify_checkpoint_cert: quorum count, known generation, signers all
  /// members of it, then the cached-or-metered aggregate verification
  /// over `preimage`.
  [[nodiscard]] bool verify_agg_cert(BytesView preimage,
                                     const crypto::SignerBitset& signers,
                                     std::uint64_t gen, BytesView agg_sig,
                                     std::size_t quorum_size,
                                     const char* site);
  /// Check the signatures of `sigs` selected by `idx` over `preimage`,
  /// resolving through the pipeline's speculation cache first and
  /// batch-verifying the residue across the worker pool. Serial
  /// fallback without a pipeline. Pure of energy accounting — callers
  /// charge before deciding what still needs checking.
  [[nodiscard]] bool check_sigs(
      const Bytes& preimage,
      const std::vector<std::pair<NodeId, Bytes>>& sigs,
      const std::vector<std::size_t>& idx);
  /// Unicast-style request streams only: hand a freshly pooled request
  /// on to the current leader so it gets proposed.
  void maybe_forward_request(const Msg& m);

  /// One typed channel per stream, opened in the constructor with the
  /// configured (or protocol-default) policy.
  std::array<std::unique_ptr<net::Channel>, energy::kNumStreams> channels_;

  // -- checkpoint & state-transfer internals ------------------------------------
  /// Snapshot + sign + flood a checkpoint if one is due at block `b`.
  void maybe_checkpoint(const Block& b);
  void handle_checkpoint(const Msg& msg);
  /// Aggregate scheme: the replica that folds f+1 checkpoint shares for
  /// height `height` and floods the O(1) certificate. Rotates over the
  /// active signer set of the committed prefix (height-indexed), so a
  /// withholding collector only delays its own heights — the next
  /// checkpoint rotates to an honest one.
  [[nodiscard]] NodeId checkpoint_collector(std::uint64_t height) const;
  /// Collector side of the aggregate scheme: fold a freshly assembled
  /// share tally into the O(1) aggregate form and flood kCheckpointCert.
  void broadcast_checkpoint_cert(const checkpoint::CheckpointCert& cert);
  void handle_checkpoint_cert(const Msg& msg);
  void handle_state_request(NodeId from, const Msg& msg);
  /// Send the current stable checkpoint snapshot to `from` (once per
  /// stable checkpoint): the state-transfer reply, also used to answer
  /// sync requests for history truncated below the low-water mark.
  void serve_checkpoint(NodeId from);
  void handle_state_response(const Msg& msg);
  /// React to a newly-stable checkpoint: truncate if we hold the state,
  /// or start a state transfer if we are a full interval behind.
  void on_stable_checkpoint(const checkpoint::CheckpointCert& cert);
  /// Truncate log/store/dedup state below the stable checkpoint.
  void advance_low_water(const checkpoint::CheckpointCert& cert);
  void begin_state_transfer(const checkpoint::CheckpointCert& cert);
  void send_state_request();
  /// Verify a checkpoint certificate, charging one verification per
  /// contained signature (mirrors verify_qc).
  [[nodiscard]] bool verify_checkpoint_cert(
      const checkpoint::CheckpointCert& cert);

  std::vector<Block> log_;
  std::uint64_t committed_blocks_ = 0;  ///< total ever (incl. truncated)
  std::set<std::string> committed_;     // retained block hashes as strings
  BlockHash committed_tip_;
  std::uint64_t committed_height_ = 0;
  std::set<std::string> sync_requested_;
  /// When the current chain-sync episode began (0 = none outstanding);
  /// the recovery clock for snapshot pushes answering a sync request.
  sim::SimTime sync_started_ = 0;
  StateMachine* app_ = nullptr;
  OutboundPolicy* outbound_ = nullptr;
  bool tolerate_fork_ = false;
  std::vector<Bytes> results_;
  /// First execution result per (client, req_id): a request re-proposed
  /// across a view change can land in two committed blocks; the cache
  /// keeps execution exactly-once and lets retransmits replay replies.
  ///
  /// With checkpointing on, entries are garbage-collected one interval
  /// after recording — at checkpoint-TAKING points, which are a
  /// deterministic function of the committed log, so the cache contents
  /// (and hence every commit-time dedup decision) stay identical across
  /// replicas; snapshots carry the live entries so restored replicas
  /// agree too. A duplicate surfacing after its entry's GC re-executes —
  /// deterministically on every correct replica, so state stays
  /// consistent. Exactly-once is therefore guaranteed within the
  /// retention window and, beyond it, for every id at or below the
  /// contiguous frontier; an executed id ABOVE a frontier gap (a lower
  /// id shed by admission control) whose retransmits outlive the window
  /// can re-execute — consistently everywhere. See ROADMAP.
  struct Executed {
    Bytes result;
    std::uint64_t height = 0;  ///< block height the request executed at
  };
  std::map<std::pair<NodeId, std::uint64_t>, Executed> executed_;
  /// Per-client CONTIGUOUS executed frontier: the largest F such that
  /// req_ids 1..F have all executed. Advanced at execution time (a
  /// deterministic function of the log) and carried in snapshots.
  /// handle_request drops requests at or below it once their executed_
  /// entry is GC'd (the reply was already delivered; the stored result
  /// is gone). Deliberately NOT the max executed id: an id shed by
  /// admission control while its successors committed sits in a gap
  /// below the max, and a max-based floor would drop its retransmits
  /// forever. Pool-side only — never consulted on the commit path.
  /// Clients issue ascending ids starting at 1.
  std::map<NodeId, std::uint64_t> client_watermark_;
  /// Height of the previous taken checkpoint (the executed_ GC cut).
  std::uint64_t prev_ckpt_height_ = 0;
  std::uint64_t client_cap_drops_ = 0;
  /// Verified-bytes cache: SHA-256 digests of request encodings whose
  /// embedded client signature was verified at pool time
  /// (handle_request), mapped to the committed height current when
  /// recorded. The commit path consumes an entry instead of
  /// re-verifying — the digest covers the exact command bytes a block
  /// carries, so a Byzantine leader proposing altered bytes misses the
  /// cache and still pays (and fails) the re-check. Keyed by digest
  /// rather than the full encoding so an entry costs 32 bytes, not a
  /// payload copy; the index hashing is a data-structure detail (a real
  /// node would index by pointer) and is not charged to the meter.
  /// Entries are erased on use; never-committed leftovers are GC'd as
  /// the low-water mark advances (they then cost a re-verify if they
  /// surface later, which is correct, just not free).
  std::map<crypto::Sha256Digest, std::uint64_t> verified_;
  std::uint64_t verified_hits_ = 0;
  /// Verified-signature cache: digests of (author, preimage, signature)
  /// triples this node verified individually — vote-class messages and
  /// checkpoint attestations — mapped to the committed height current
  /// when recorded. Certificate tallies (verify_qc /
  /// verify_checkpoint_cert) consult it per contained signature: a hit
  /// means this exact signature already passed on this node, so the
  /// tally skips the metered re-verification. Unlike verified_, entries
  /// are multi-use (a commitQC and a status message may both carry the
  /// same vote) and GC'd by the same low-water-mark rule.
  std::map<crypto::Sha256Digest, std::uint64_t> sig_verified_;
  std::uint64_t sig_cache_hits_ = 0;
  std::uint64_t requests_forwarded_ = 0;
  /// Reused outbound encoder (broadcast/send): clear() keeps the
  /// allocation across encodes.
  Writer wire_writer_;

  // -- garbage-flood early drop --------------------------------------------------
  /// Consecutive failed request-signature verifications per client; at
  /// kBadSigThreshold the early-drop filter engages for that client.
  std::map<NodeId, std::uint32_t> bad_sigs_;
  /// Frames seen from a throttled client (drives the deterministic
  /// 1-in-kBadSigRecheck re-admission sampling).
  std::map<NodeId, std::uint64_t> flood_seen_;
  std::uint64_t early_drops_ = 0;

  /// Sampled requests per block (keyed by block hash), so vote/commit
  /// flow hooks do not re-decode every command on every call.
  std::map<std::string, std::vector<std::pair<NodeId, std::uint64_t>>>
      prof_block_cache_;

  checkpoint::CheckpointManager ckpt_;
  std::uint64_t executed_cmds_ = 0;  ///< cumulative committed commands
  std::uint64_t lwm_height_ = 0;
  /// Peers already served the current stable snapshot (rate limit).
  std::set<NodeId> st_served_;
  // In-flight state transfer (requester side).
  bool st_inflight_ = false;
  std::uint64_t st_height_ = 0;
  std::size_t st_signer_idx_ = 0;
  sim::SimTime st_started_ = 0;
  sim::Timer st_timer_;
  std::uint64_t state_transfers_ = 0;
  sim::Duration last_recovery_ = 0;

  // -- membership & Byzantine-checkpoint state ----------------------------------
  std::uint64_t membership_changes_ = 0;
  bool forge_ckpt_ = false;
  bool withhold_snap_ = false;

  bool online_ = true;
};

}  // namespace eesmr::smr
