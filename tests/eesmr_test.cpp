// EESMR protocol integration tests: steady-state commits, every
// view-change trigger, safety under faults, and the protocol options.
#include "src/eesmr/eesmr.hpp"

#include <gtest/gtest.h>

#include "src/harness/cluster.hpp"

namespace eesmr::harness {
namespace {

using protocol::ByzantineMode;

ClusterConfig base_config(std::size_t n, std::size_t f) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = n;
  cfg.f = f;
  cfg.hop_delay = sim::milliseconds(10);
  cfg.seed = 42;
  return cfg;
}

TEST(Eesmr, HappyPathCommitsBlocks) {
  Cluster cluster(base_config(4, 1));
  const RunResult r = cluster.run_until_commits(10, sim::seconds(60));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 10u);
  EXPECT_EQ(r.view_changes, 0u);
}

TEST(Eesmr, CommitsIdenticalLogsOnAllNodes) {
  Cluster cluster(base_config(5, 2));
  const RunResult r = cluster.run_until_commits(8, sim::seconds(60));
  ASSERT_GE(r.min_committed(), 8u);
  for (std::size_t i = 1; i < 5; ++i) {
    const std::size_t common =
        std::min(r.logs[0].size(), r.logs[i].size());
    for (std::size_t b = 0; b < common; ++b) {
      EXPECT_EQ(r.logs[0][b], r.logs[i][b]) << "node " << i << " pos " << b;
    }
  }
}

TEST(Eesmr, BlocksCarryCommands) {
  ClusterConfig cfg = base_config(4, 1);
  cfg.batch_size = 3;
  cfg.cmd_bytes = 16;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(5, sim::seconds(60));
  ASSERT_GE(r.min_committed(), 5u);
  for (const smr::Block& b : r.logs[0]) {
    EXPECT_EQ(b.cmds.size(), 3u);
    EXPECT_EQ(b.cmds[0].data.size(), 16u);
  }
}

TEST(Eesmr, SteadyStateUsesOneSignaturePerBlock) {
  // The headline mechanism: O(1) signing per block (only the leader
  // signs), n-1 verifications in total.
  Cluster cluster(base_config(4, 1));
  const RunResult r = cluster.run_until_commits(10, sim::seconds(60));
  ASSERT_GE(r.min_committed(), 10u);
  // Leader (node 1 for view 1 with round-robin v % n): sign count ≈
  // blocks (plus a tiny constant). Replicas sign nothing in steady state.
  const NodeId leader = 1;
  EXPECT_LE(r.meters[leader].ops(energy::Category::kSign),
            r.logs[leader].size() + 3);
  for (NodeId i = 0; i < 4; ++i) {
    if (i == leader) continue;
    EXPECT_EQ(r.meters[i].ops(energy::Category::kSign), 0u) << "node " << i;
    // Each replica verifies exactly one signature per proposal.
    EXPECT_LE(r.meters[i].ops(energy::Category::kVerify),
              r.logs[i].size() + 4);
  }
}

TEST(Eesmr, RunsOnKcastRingTopology) {
  ClusterConfig cfg = base_config(7, 2);
  cfg.k = 3;  // partially connected: flood diameter 2
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 6u);
}

TEST(Eesmr, CrashedLeaderTriggersViewChangeAndRecovers) {
  ClusterConfig cfg = base_config(4, 1);
  cfg.faults = {{1, ByzantineMode::kCrash, 5}};  // node 1 leads view 1
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(8, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.view_changes, 1u);
  EXPECT_GE(r.min_committed(), 8u);  // liveness restored in view 2
}

TEST(Eesmr, EquivocatingLeaderDetectedAndReplaced) {
  ClusterConfig cfg = base_config(4, 1);
  cfg.faults = {{1, ByzantineMode::kEquivocate, 5}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(8, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.view_changes, 1u);
  EXPECT_GE(r.min_committed(), 8u);
  // At least one correct node must have seen the conflict.
  std::uint64_t detections = 0;
  for (NodeId i : {0u, 2u, 3u}) {
    detections += cluster.eesmr(i).equivocations_detected();
  }
  EXPECT_GE(detections, 1u);
}

TEST(Eesmr, SelectiveEquivocationStillDetectedViaFlooding) {
  ClusterConfig cfg = base_config(5, 2);
  cfg.faults = {{1, ByzantineMode::kEquivocateSelective, 4}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.view_changes, 1u);
  EXPECT_GE(r.min_committed(), 6u);
}

TEST(Eesmr, SurvivesMultipleFaults) {
  // n = 7, f = 3: crash one leader, equivocate another.
  ClusterConfig cfg = base_config(7, 3);
  // Node 1 (view-1 leader) crashes; node 2 (view-2 leader) equivocates
  // once it reaches round 5 of its own view.
  cfg.faults = {{1, ByzantineMode::kCrash, 4},
                {2, ByzantineMode::kEquivocate, 5}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(600));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 6u);
  EXPECT_GE(r.view_changes, 2u);
}

TEST(Eesmr, SilentNonLeaderDoesNotStallProgress) {
  ClusterConfig cfg = base_config(5, 2);
  cfg.faults = {{3, ByzantineMode::kCrash, 3}};  // node 3 never leads early
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(8, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 8u);
  EXPECT_EQ(r.view_changes, 0u);
}

TEST(Eesmr, AdversarialMaxDelaysPreserveSafetyAndLiveness) {
  ClusterConfig cfg = base_config(4, 1);
  cfg.adversarial_delays = true;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 6u);
  EXPECT_EQ(r.view_changes, 0u);  // an honest leader is never blamed
}

TEST(Eesmr, CrashVariantHandlesCrashFaults) {
  ClusterConfig cfg = base_config(4, 1);
  cfg.eesmr.crash_fault_only = true;
  cfg.faults = {{1, ByzantineMode::kCrash, 4}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 6u);
  EXPECT_GE(r.view_changes, 1u);
}

TEST(Eesmr, FastPathEquivocationViewChangeIsQuicker) {
  auto run_vc = [&](bool fast) {
    ClusterConfig cfg = base_config(4, 1);
    cfg.eesmr.equivocation_fast_path = fast;
    cfg.faults = {{1, ByzantineMode::kEquivocate, 4}};
    Cluster cluster(cfg);
    RunResult r = cluster.run_until_commits(6, sim::seconds(240));
    EXPECT_TRUE(r.safety_ok());
    EXPECT_GE(r.min_committed(), 6u);
    return r.end_time;
  };
  // Both reach the target; the fast path should not be slower.
  EXPECT_LE(run_vc(true), run_vc(false) + sim::milliseconds(1));
}

TEST(Eesmr, NonBlockingPipelineCommitsFaster) {
  auto throughput = [&](std::size_t pipeline) {
    ClusterConfig cfg = base_config(4, 1);
    cfg.eesmr.pipeline = pipeline;
    Cluster cluster(cfg);
    const RunResult r = cluster.run_for(sim::seconds(20));
    EXPECT_TRUE(r.safety_ok());
    return r.min_committed();
  };
  const std::size_t blocking = throughput(1);
  const std::size_t pipelined = throughput(8);
  EXPECT_GT(blocking, 0u);
  EXPECT_GT(pipelined, 2 * blocking);
}

TEST(Eesmr, CheckpointBatchingSavesVerificationEnergy) {
  // §3.5 "Batching optimization": optimistic pre-commit without per-block
  // signature checks; one verification per checkpoint interval.
  auto verify_ops = [&](std::size_t interval) {
    ClusterConfig cfg = base_config(4, 1);
    cfg.eesmr.checkpoint_interval = interval;
    Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(12, sim::seconds(120));
    EXPECT_TRUE(r.safety_ok());
    EXPECT_GE(r.min_committed(), 12u);
    std::uint64_t total = 0;
    for (const auto& m : r.meters) total += m.ops(energy::Category::kVerify);
    return total;
  };
  const std::uint64_t baseline = verify_ops(0);
  const std::uint64_t batched = verify_ops(4);
  EXPECT_LT(batched, baseline / 2) << "baseline=" << baseline
                                   << " batched=" << batched;
}

TEST(Eesmr, CheckpointBatchingStillRecoversFromFaults) {
  ClusterConfig cfg = base_config(4, 1);
  cfg.eesmr.checkpoint_interval = 4;
  cfg.faults = {{1, ByzantineMode::kCrash, 5}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(8, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.view_changes, 1u);
  EXPECT_GE(r.min_committed(), 8u);
}

TEST(Eesmr, CommandsInBootstrapOptionKeepsSafety) {
  ClusterConfig cfg = base_config(4, 1);
  cfg.eesmr.cmds_in_bootstrap = true;
  cfg.faults = {{1, ByzantineMode::kCrash, 4}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 6u);
}

TEST(Eesmr, ConsecutiveByzantineLeaders) {
  // Leaders of views 1 and 2 both crash -> two back-to-back VCs.
  ClusterConfig cfg = base_config(7, 3);
  cfg.faults = {{1, ByzantineMode::kCrash, 3},
                {2, ByzantineMode::kCrash, 3}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(5, sim::seconds(600));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.view_changes, 2u);
  EXPECT_GE(r.min_committed(), 5u);
}

TEST(Eesmr, EnergyPerBlockIndependentOfNWithFixedK) {
  // §5.6 "energy cost of EESMR is independent of n in the best case".
  auto per_node_energy = [&](std::size_t n) {
    ClusterConfig cfg = base_config(n, 2);
    cfg.k = 3;
    Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(6, sim::seconds(600));
    EXPECT_GE(r.min_committed(), 6u);
    return r.energy_per_block_mj() / static_cast<double>(n);
  };
  const double e8 = per_node_energy(8);
  const double e12 = per_node_energy(12);
  EXPECT_NEAR(e8, e12, 0.15 * e8);
}

// Property sweep: safety and liveness hold across (n, f, seed) grid with
// a Byzantine leader.
class EesmrSweep : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::uint64_t, int>> {};

TEST_P(EesmrSweep, SafetyAndLivenessUnderByzantineLeader) {
  const auto [n, seed, mode] = GetParam();
  ClusterConfig cfg = base_config(n, (n - 1) / 2);
  cfg.seed = seed;
  cfg.faults = {{1,
                 mode == 0 ? ByzantineMode::kCrash
                           : ByzantineMode::kEquivocate,
                 4}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(5, sim::seconds(600));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 5u);
  EXPECT_GE(r.view_changes, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EesmrSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 5, 7),
                       ::testing::Values<std::uint64_t>(1, 99, 12345),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace eesmr::harness
