#include "src/obs/diff.hpp"

#include <algorithm>
#include <cmath>

namespace eesmr::obs {

const char* diff_kind_name(DiffKind k) {
  switch (k) {
    case DiffKind::kRegression: return "REGRESSION";
    case DiffKind::kTypeChanged: return "TYPE-CHANGED";
    case DiffKind::kRemoved: return "REMOVED";
    case DiffKind::kAdded: return "ADDED";
  }
  return "?";
}

bool DiffReport::ok() const { return failures() == 0; }

std::size_t DiffReport::failures() const {
  std::size_t n = 0;
  for (const DiffEntry& e : entries) {
    if (e.kind != DiffKind::kAdded) ++n;
  }
  return n;
}

std::string DiffReport::text() const {
  std::string out;
  for (const DiffEntry& e : entries) {
    out += diff_kind_name(e.kind);
    out += " ";
    out += e.path;
    if (e.kind == DiffKind::kRegression || e.kind == DiffKind::kTypeChanged) {
      out += ": " + e.baseline + " -> " + e.current;
      if (e.tol > 0) {
        out += " (|rel| " + exp::json_number(e.rel) + " > tol " +
               exp::json_number(e.tol) + ")";
      }
    } else if (e.kind == DiffKind::kRemoved) {
      out += ": was " + e.baseline;
    } else {
      out += ": now " + e.current;
    }
    out += "\n";
  }
  return out;
}

void DiffReport::merge(DiffReport other) {
  compared += other.compared;
  entries.insert(entries.end(),
                 std::make_move_iterator(other.entries.begin()),
                 std::make_move_iterator(other.entries.end()));
}

double rel_tol_for(const DiffOptions& opts, const std::string& key) {
  for (const auto& [name, tol] : opts.metric_rel_tol) {
    if (name == key) return tol;
  }
  return opts.rel_tol;
}

namespace {

/// Last path segment: the metric/column name tolerance overrides match.
std::string leaf_key(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  std::string leaf = dot == std::string::npos ? path : path.substr(dot + 1);
  const std::size_t bracket = leaf.find('[');
  if (bracket != std::string::npos) leaf.resize(bracket);
  return leaf;
}

std::string render(const exp::Json& v) { return v.dump(); }

void diff_value(const exp::Json& base, const exp::Json& cur,
                const DiffOptions& opts, const std::string& path,
                DiffReport& out);

void diff_object(const exp::Json& base, const exp::Json& cur,
                 const DiffOptions& opts, const std::string& path,
                 DiffReport& out) {
  const auto skipped = [&](const std::string& key) {
    return std::find(opts.ignore.begin(), opts.ignore.end(), key) !=
           opts.ignore.end();
  };
  const std::string prefix = path.empty() ? "" : path + ".";
  for (const auto& [key, bval] : base.members()) {
    if (skipped(key)) continue;
    if (!cur.contains(key)) {
      out.entries.push_back(
          {DiffKind::kRemoved, prefix + key, render(bval), "", 0, 0});
      continue;
    }
    diff_value(bval, cur.at(key), opts, prefix + key, out);
  }
  for (const auto& [key, cval] : cur.members()) {
    if (skipped(key) || base.contains(key)) continue;
    out.entries.push_back(
        {DiffKind::kAdded, prefix + key, "", render(cval), 0, 0});
  }
}

void diff_array(const exp::Json& base, const exp::Json& cur,
                const DiffOptions& opts, const std::string& path,
                DiffReport& out) {
  const std::size_t common = std::min(base.size(), cur.size());
  for (std::size_t i = 0; i < common; ++i) {
    diff_value(base.at(i), cur.at(i), opts,
               path + "[" + std::to_string(i) + "]", out);
  }
  for (std::size_t i = common; i < base.size(); ++i) {
    out.entries.push_back({DiffKind::kRemoved,
                           path + "[" + std::to_string(i) + "]",
                           render(base.at(i)), "", 0, 0});
  }
  for (std::size_t i = common; i < cur.size(); ++i) {
    out.entries.push_back({DiffKind::kAdded,
                           path + "[" + std::to_string(i) + "]", "",
                           render(cur.at(i)), 0, 0});
  }
}

void diff_value(const exp::Json& base, const exp::Json& cur,
                const DiffOptions& opts, const std::string& path,
                DiffReport& out) {
  if (base.type() != cur.type()) {
    out.entries.push_back(
        {DiffKind::kTypeChanged, path, render(base), render(cur), 0, 0});
    return;
  }
  switch (base.type()) {
    case exp::Json::Type::kObject:
      diff_object(base, cur, opts, path, out);
      return;
    case exp::Json::Type::kArray:
      diff_array(base, cur, opts, path, out);
      return;
    case exp::Json::Type::kNumber: {
      ++out.compared;
      const double b = base.as_double();
      const double c = cur.as_double();
      const double delta = std::fabs(c - b);
      const double scale = std::max(std::fabs(b), std::fabs(c));
      const double tol = rel_tol_for(opts, leaf_key(path));
      if (delta <= std::max(opts.abs_tol, tol * scale)) return;
      const double rel = scale == 0 ? 0 : delta / scale;
      out.entries.push_back(
          {DiffKind::kRegression, path, render(base), render(cur), rel, tol});
      return;
    }
    default: {  // null / bool / string: exact match
      ++out.compared;
      if (base == cur) return;
      out.entries.push_back(
          {DiffKind::kRegression, path, render(base), render(cur), 0, 0});
      return;
    }
  }
}

void enumerate_leaves(const exp::Json& v, const DiffOptions& opts,
                      const std::string& path, DiffReport& out) {
  const auto skipped = [&](const std::string& key) {
    return std::find(opts.ignore.begin(), opts.ignore.end(), key) !=
           opts.ignore.end();
  };
  switch (v.type()) {
    case exp::Json::Type::kObject: {
      const std::string prefix = path.empty() ? "" : path + ".";
      for (const auto& [key, val] : v.members()) {
        if (skipped(key)) continue;
        enumerate_leaves(val, opts, prefix + key, out);
      }
      return;
    }
    case exp::Json::Type::kArray:
      for (std::size_t i = 0; i < v.size(); ++i) {
        enumerate_leaves(v.at(i), opts, path + "[" + std::to_string(i) + "]",
                         out);
      }
      return;
    default:
      out.entries.push_back({DiffKind::kAdded, path, "", render(v), 0, 0});
      return;
  }
}

}  // namespace

DiffReport diff_json(const exp::Json& baseline, const exp::Json& current,
                     const DiffOptions& opts, const std::string& root) {
  DiffReport out;
  diff_value(baseline, current, opts, root, out);
  return out;
}

DiffReport enumerate_added(const exp::Json& current, const DiffOptions& opts,
                           const std::string& root) {
  DiffReport out;
  enumerate_leaves(current, opts, root, out);
  return out;
}

}  // namespace eesmr::obs
