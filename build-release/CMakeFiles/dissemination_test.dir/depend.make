# Empty dependencies file for dissemination_test.
# This may be replaced when dependencies are built.
