// bench_diff: trajectory regression gate over BENCH_*.json output.
//
//   bench_diff [options] BASELINE CURRENT
//
// BASELINE and CURRENT are either two BENCH_*.json files or two
// directories of them (matched by file name). Exit code: 0 when every
// compared metric is within tolerance, 1 on regressions (including
// metrics or whole files that disappeared), 2 on usage/IO errors.
//
//   --rel-tol X      default relative tolerance (default 0.02)
//   --abs-tol X      absolute floor for near-zero values (default 1e-9)
//   --tol KEY=X      per-metric relative tolerance (last path segment;
//                    repeatable), e.g. --tol mj_per_block=0.05
//   --ignore KEY     skip object key KEY everywhere (repeatable)
//   --report PATH    additionally write the findings to PATH (the CI
//                    job uploads this as the bench-smoke diff artifact)
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/json.hpp"
#include "src/obs/diff.hpp"

namespace fs = std::filesystem;
using eesmr::exp::Json;
using eesmr::obs::DiffKind;
using eesmr::obs::DiffOptions;
using eesmr::obs::DiffReport;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rel-tol X] [--abs-tol X] [--tol KEY=X]...\n"
               "          [--ignore KEY]... [--report PATH] BASELINE CURRENT\n"
               "BASELINE/CURRENT: two BENCH_*.json files or two directories "
               "of them.\n",
               argv0);
  return 2;
}

Json load(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

std::vector<std::string> json_names(const fs::path& dir) {
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".json") {
      names.push_back(e.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

DiffReport diff_trees(const fs::path& base_dir, const fs::path& cur_dir,
                      const DiffOptions& opts) {
  DiffReport all;
  const std::vector<std::string> base_names = json_names(base_dir);
  const std::vector<std::string> cur_names = json_names(cur_dir);
  for (const std::string& name : base_names) {
    if (!fs::exists(cur_dir / name)) {
      all.entries.push_back({DiffKind::kRemoved, name, "baseline file", "",
                             0, 0});
      continue;
    }
    all.merge(eesmr::obs::diff_json(load(base_dir / name),
                                    load(cur_dir / name), opts, name));
  }
  for (const std::string& name : cur_names) {
    if (!fs::exists(base_dir / name)) {
      // Enumerate the new file's leaves instead of one opaque "new
      // file" line: the additions are reviewable metric by metric.
      all.merge(eesmr::obs::enumerate_added(load(cur_dir / name), opts, name));
    }
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  DiffOptions opts;
  std::string report_path;
  std::vector<std::string> positional;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::runtime_error("missing value for " + arg);
        }
        return argv[++i];
      };
      if (arg == "--rel-tol") {
        opts.rel_tol = std::stod(value());
      } else if (arg == "--abs-tol") {
        opts.abs_tol = std::stod(value());
      } else if (arg == "--tol") {
        const std::string v = value();
        const std::size_t eq = v.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw std::runtime_error("--tol wants KEY=X, got '" + v + "'");
        }
        opts.metric_rel_tol.emplace_back(v.substr(0, eq),
                                         std::stod(v.substr(eq + 1)));
      } else if (arg == "--ignore") {
        opts.ignore.push_back(value());
      } else if (arg == "--report") {
        report_path = value();
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw std::runtime_error("unknown option " + arg);
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() != 2) return usage(argv[0]);

    const fs::path base = positional[0];
    const fs::path cur = positional[1];
    DiffReport report;
    if (fs::is_directory(base) && fs::is_directory(cur)) {
      report = diff_trees(base, cur, opts);
    } else if (fs::is_regular_file(base) && fs::is_regular_file(cur)) {
      report = eesmr::obs::diff_json(load(base), load(cur), opts,
                                     base.filename().string());
    } else {
      std::fprintf(stderr,
                   "bench_diff: '%s' and '%s' must both be files or both "
                   "directories\n",
                   base.string().c_str(), cur.string().c_str());
      return 2;
    }

    std::string summary = report.text();
    summary += "compared " + std::to_string(report.compared) + " values, " +
               std::to_string(report.failures()) + " regression(s), " +
               std::to_string(report.entries.size() - report.failures()) +
               " addition(s)\n";
    std::fputs(summary.c_str(), stdout);
    if (!report_path.empty()) {
      std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
      out << summary;
      if (!out) {
        std::fprintf(stderr, "bench_diff: FAILED to write %s\n",
                     report_path.c_str());
        return 2;
      }
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
