// Trusted-component tier invariants (src/trusted): the monotonic counter
// never reuses a value (not even across crash/recover), attestations bind
// node+counter+digest under a domain-separated signature, the receiver-side
// tracker tells replays from counter-reuse attacks, and every trusted op
// is charged to energy::Category::kAttest / profiled under "trusted".
#include "src/trusted/trusted.hpp"

#include <gtest/gtest.h>

#include "src/obs/prof.hpp"

namespace eesmr::trusted {
namespace {

std::shared_ptr<const crypto::Keyring> test_ring() {
  return crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, 4, 7);
}

Bytes digest(const std::string& s) { return to_bytes(s); }

TEST(TrustedCounter, CounterIsStrictlyMonotonic) {
  TrustedCounter tc(test_ring(), 0);
  EXPECT_EQ(tc.value(), 0u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    const Attestation a = tc.attest(digest("block-" + std::to_string(i)));
    EXPECT_EQ(a.counter, i);
    EXPECT_EQ(tc.value(), i);
  }
}

TEST(TrustedCounter, AttestationsVerifyAndBindTheirFields) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 2);
  const Attestation a = tc.attest(digest("payload"));
  EXPECT_TRUE(verify_attestation(*ring, a));

  Attestation wrong_digest = a;
  wrong_digest.digest = digest("other");
  EXPECT_FALSE(verify_attestation(*ring, wrong_digest));

  Attestation wrong_counter = a;
  wrong_counter.counter = a.counter + 1;
  EXPECT_FALSE(verify_attestation(*ring, wrong_counter));

  Attestation wrong_node = a;
  wrong_node.node = 3;
  EXPECT_FALSE(verify_attestation(*ring, wrong_node));

  Attestation zero = a;
  zero.counter = 0;  // value 0 never exists (first attest returns 1)
  EXPECT_FALSE(verify_attestation(*ring, zero));

  Attestation outside = a;
  outside.node = 99;
  EXPECT_FALSE(verify_attestation(*ring, outside));
}

TEST(TrustedCounter, SerdeRoundTrip) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 1);
  const Attestation a = tc.attest(digest("wire"));
  const Attestation b = Attestation::decode(a.encode());
  EXPECT_EQ(b.node, a.node);
  EXPECT_EQ(b.counter, a.counter);
  EXPECT_EQ(b.digest, a.digest);
  EXPECT_EQ(b.sig, a.sig);
  EXPECT_TRUE(verify_attestation(*ring, b));
}

// Crash/recover: counter state survives through seal/unseal and a stale
// sealed blob can never roll the counter back (rollback resistance) — so
// a crash cannot mint a second attestation for an already-used value.
TEST(TrustedCounter, SurvivesCrashRecoverWithoutReuse) {
  auto ring = test_ring();
  TrustedCounter before(ring, 0);
  for (int i = 0; i < 5; ++i) (void)before.attest(digest("pre-crash"));
  const SealedCounter sealed = before.seal();
  EXPECT_EQ(sealed.counter, 5u);

  // "Reboot": a fresh enclave instance adopting the sealed state resumes
  // strictly above every value used before the crash.
  TrustedCounter after(ring, 0);
  after.unseal(sealed);
  const Attestation a = after.attest(digest("post-crash"));
  EXPECT_EQ(a.counter, 6u);
}

TEST(TrustedCounter, StaleSealedBlobCannotRollBack) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  (void)tc.attest(digest("one"));
  const SealedCounter stale = tc.seal();  // counter = 1
  for (int i = 0; i < 4; ++i) (void)tc.attest(digest("more"));
  EXPECT_EQ(tc.value(), 5u);
  tc.unseal(stale);  // replayed old blob: must be a no-op
  EXPECT_EQ(tc.value(), 5u);
  EXPECT_EQ(tc.attest(digest("next")).counter, 6u);
}

TEST(TrustedCounter, UnsealRejectsWrongNode) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  SealedCounter other;
  other.node = 1;
  other.counter = 10;
  EXPECT_THROW(tc.unseal(other), std::invalid_argument);
}

TEST(TrustedCounter, ChargesAttestEnergyAndProfilerSites) {
  auto ring = test_ring();
  energy::Meter meter;
  prof::Profiler prof;
  TrustedCounter tc(ring, 0, &meter, &prof);
  const Attestation a = tc.attest(digest("metered"));
  EXPECT_GT(meter.millijoules(energy::Category::kAttest), 0.0);
  const double after_attest = meter.millijoules(energy::Category::kAttest);
  EXPECT_TRUE(verify_attestation(*ring, a, &meter, &prof, "vote"));
  EXPECT_GT(meter.millijoules(energy::Category::kAttest), after_attest);
  // The cost model prices one in-enclave signature plus call overhead.
  EXPECT_DOUBLE_EQ(after_attest,
                   energy::attest_energy_mj(ring->scheme()));
  const auto snap = prof.snapshot();
  std::uint64_t attests = 0;
  std::uint64_t verifies = 0;
  for (const auto& [key, count] : snap.crypto_ops) {
    if (key[0] != "trusted") continue;
    if (key[1] == "attest") attests += count;
    if (key[1] == "verify") verifies += count;
  }
  EXPECT_EQ(attests, 1u);
  EXPECT_EQ(verifies, 1u);
}

// ---------------------------------------------------------------------------
// AttestationTracker: contiguity, replay vs reuse, deep-lag jumps
// ---------------------------------------------------------------------------

TEST(AttestationTracker, AcceptsContiguousAndHoldsGaps) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  const Attestation a1 = tc.attest(digest("a"));
  const Attestation a2 = tc.attest(digest("b"));
  const Attestation a3 = tc.attest(digest("c"));

  AttestationTracker tr;
  EXPECT_EQ(tr.observe(a1), AttestationTracker::Verdict::kAccept);
  // Out of order: value 3 before 2 is held, not accepted and not lost.
  EXPECT_EQ(tr.observe(a3), AttestationTracker::Verdict::kHold);
  EXPECT_EQ(tr.last(0), 1u);
  EXPECT_EQ(tr.observe(a2), AttestationTracker::Verdict::kAccept);
  EXPECT_EQ(tr.observe(a3), AttestationTracker::Verdict::kAccept);
  EXPECT_EQ(tr.last(0), 3u);
}

TEST(AttestationTracker, ReplayOfAcceptedValueIsFlaggedNotFatal) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  const Attestation a = tc.attest(digest("x"));
  AttestationTracker tr;
  EXPECT_EQ(tr.observe(a), AttestationTracker::Verdict::kAccept);
  EXPECT_EQ(tr.observe(a), AttestationTracker::Verdict::kReplay);
  EXPECT_EQ(tr.replays(), 1u);
  EXPECT_EQ(tr.reuse_detected(), 0u);
}

// A Byzantine host that somehow signs a second payload under an
// already-used counter value (impossible through TrustedCounter — this
// forges the bytes directly) is caught as counter reuse: the equivocation
// the n=2f+1 design must make impossible.
TEST(AttestationTracker, CounterReuseIsDetected) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  const Attestation honest = tc.attest(digest("first"));
  Attestation forged = honest;
  forged.digest = digest("second");
  forged.sig = ring->signer(0).sign(forged.preimage());

  AttestationTracker tr;
  EXPECT_EQ(tr.observe(honest), AttestationTracker::Verdict::kAccept);
  EXPECT_EQ(tr.observe(forged), AttestationTracker::Verdict::kReuse);
  EXPECT_EQ(tr.reuse_detected(), 1u);
  // The accepted sequence is unchanged: the fork never happened.
  EXPECT_EQ(tr.last(0), 1u);
}

TEST(AttestationTracker, StructuralNoReuseThroughTheApi) {
  // The only attestation mint is attest(), and it increments first:
  // two calls can never share a counter value, whatever the digests.
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  const Attestation a = tc.attest(digest("same"));
  const Attestation b = tc.attest(digest("same"));
  EXPECT_NE(a.counter, b.counter);
}

TEST(AttestationTracker, MaxGapJumpRebaselinesDeepLag) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  Attestation first = tc.attest(digest("v1"));
  Attestation skipped;
  for (int i = 0; i < 99; ++i) skipped = tc.attest(digest("skipped"));
  const Attestation live = tc.attest(digest("live"));  // counter 101

  AttestationTracker tr;
  tr.set_max_gap(64);
  EXPECT_EQ(tr.observe(first), AttestationTracker::Verdict::kAccept);
  // 101 is more than max_gap ahead: adopt it as the new baseline instead
  // of holding forever (deep-lag escape hatch).
  EXPECT_EQ(tr.observe(live), AttestationTracker::Verdict::kAccept);
  EXPECT_EQ(tr.last(0), 101u);
  // The skipped values are now permanently unacceptable — a replay of
  // value 100 is a dupe at best, never a late acceptance.
  EXPECT_NE(tr.observe(skipped), AttestationTracker::Verdict::kAccept);
}

TEST(AttestationTracker, SkipToAbandonsGapWithoutReacceptingValues) {
  // Receiver-policy recovery for gaps that will never fill (the missing
  // frames were dropped, not delayed): skip_to moves the frontier so the
  // held value becomes acceptable, while the skipped values stay
  // permanently unacceptable.
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  const Attestation a1 = tc.attest(digest("a"));
  const Attestation a2 = tc.attest(digest("lost"));
  const Attestation a3 = tc.attest(digest("lost-too"));
  const Attestation a4 = tc.attest(digest("held"));

  AttestationTracker tr;
  EXPECT_EQ(tr.observe(a1), AttestationTracker::Verdict::kAccept);
  EXPECT_EQ(tr.observe(a4), AttestationTracker::Verdict::kHold);
  tr.skip_to(0, a4.counter);
  EXPECT_EQ(tr.gap_skips(), 1u);
  EXPECT_EQ(tr.observe(a4), AttestationTracker::Verdict::kAccept);
  // The skipped values can never be accepted after the fact.
  EXPECT_NE(tr.observe(a2), AttestationTracker::Verdict::kAccept);
  EXPECT_NE(tr.observe(a3), AttestationTracker::Verdict::kAccept);
  // skip_to never moves the frontier backwards.
  tr.skip_to(0, a2.counter);
  EXPECT_EQ(tr.last(0), a4.counter);
  EXPECT_EQ(tr.gap_skips(), 1u);
}

TEST(AttestationTracker, ForgetWindowKeepsReuseDetectionNearFrontier) {
  auto ring = test_ring();
  TrustedCounter tc(ring, 0);
  std::vector<Attestation> atts;
  for (int i = 0; i < 10; ++i) {
    atts.push_back(tc.attest(digest("v" + std::to_string(i))));
  }
  AttestationTracker tr;
  for (const Attestation& a : atts) {
    EXPECT_EQ(tr.observe(a), AttestationTracker::Verdict::kAccept);
  }
  tr.forget_window(2);  // keep digest memory for values 9 and 10 only
  Attestation forged = atts[9];  // counter 10, inside the window
  forged.digest = digest("forged");
  forged.sig = ring->signer(0).sign(forged.preimage());
  EXPECT_EQ(tr.observe(forged), AttestationTracker::Verdict::kReuse);
  // Below the window the digest memory is gone: an old value degrades to
  // a replay verdict (it can never be accepted, so safety holds).
  Attestation old_forged = atts[0];
  old_forged.digest = digest("forged-old");
  old_forged.sig = ring->signer(0).sign(old_forged.preimage());
  EXPECT_EQ(tr.observe(old_forged), AttestationTracker::Verdict::kReplay);
}

}  // namespace
}  // namespace eesmr::trusted
