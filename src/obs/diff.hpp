// Trajectory differ: structural comparison of two BENCH_*.json
// documents (or any two exp::Json values) with per-metric numeric
// tolerances. This is the library behind tools/bench_diff — the CI
// regression gate compares a fresh smoke run against the committed
// baselines under bench/baselines/ and fails the build when a metric
// moved beyond its tolerance.
//
// Semantics:
//  * numbers pass when |cur − base| <= max(abs_tol, rel_tol · scale)
//    with scale = max(|base|, |cur|); rel_tol is per-metric (last path
//    segment) with a global default;
//  * bools / strings / nulls must match exactly;
//  * a key present only in the baseline is a REMOVED finding (fails —
//    a metric silently disappearing is how regressions hide);
//  * a key present only in the current run is ADDED (reported, passes);
//  * object keys named in `ignore` are skipped entirely.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/exp/json.hpp"

namespace eesmr::obs {

struct DiffOptions {
  double rel_tol = 0.02;   ///< default relative tolerance (2%)
  double abs_tol = 1e-9;   ///< absolute floor (values near zero)
  /// Per-metric relative-tolerance overrides, matched against the last
  /// path segment (the metric/column name). First match wins.
  std::vector<std::pair<std::string, double>> metric_rel_tol;
  /// Object keys skipped entirely (and their subtrees).
  std::vector<std::string> ignore;
};

enum class DiffKind : int {
  kRegression,   ///< value moved beyond tolerance / scalar mismatch
  kTypeChanged,  ///< JSON type differs
  kRemoved,      ///< present in baseline only
  kAdded,        ///< present in current only (informational)
};

const char* diff_kind_name(DiffKind k);

struct DiffEntry {
  DiffKind kind = DiffKind::kRegression;
  std::string path;      ///< e.g. "sections[0].rows[2].mj_per_block"
  std::string baseline;  ///< rendered baseline value ("" when added)
  std::string current;   ///< rendered current value ("" when removed)
  double rel = 0;        ///< relative delta (numeric regressions)
  double tol = 0;        ///< the tolerance that was applied
};

struct DiffReport {
  std::vector<DiffEntry> entries;
  std::size_t compared = 0;  ///< leaf values compared

  /// True when nothing fails the gate: no regressions, type changes or
  /// removed metrics (ADDED entries are informational).
  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::size_t failures() const;
  /// Human-readable findings, one line per entry.
  [[nodiscard]] std::string text() const;
  void merge(DiffReport other);
};

/// Relative tolerance for a metric key under `opts`.
[[nodiscard]] double rel_tol_for(const DiffOptions& opts,
                                 const std::string& key);

/// Compare two JSON documents. `root` prefixes every reported path
/// (directory mode passes the file name).
[[nodiscard]] DiffReport diff_json(const exp::Json& baseline,
                                   const exp::Json& current,
                                   const DiffOptions& opts = {},
                                   const std::string& root = "");

/// Enumerate every leaf of `current` as an ADDED entry (honouring
/// DiffOptions::ignore). Directory mode uses this for files with no
/// baseline counterpart, so a new bench's metrics land in the report
/// individually — reviewable and ready to become the next baseline —
/// instead of one opaque "new file" line.
[[nodiscard]] DiffReport enumerate_added(const exp::Json& current,
                                         const DiffOptions& opts = {},
                                         const std::string& root = "");

}  // namespace eesmr::obs
