// Trusted-baseline protocol (§5.1 "Comparison with trusted-baseline").
//
// Every CPS node ships its pending commands to an externally-powered
// trusted control node over an expensive medium (4G in the paper's
// example) and receives the ordered, control-signed block back. The
// control node's energy is not counted (it is mains-powered); the CPS
// nodes pay the uplink/downlink and one signature verification per
// block. Tolerates f Byzantine CPS nodes trivially (the control node is
// trusted), but every consensus unit costs 2 expensive-medium messages
// per node.
#pragma once

#include <map>
#include <vector>

#include "src/smr/replica.hpp"

namespace eesmr::baselines {

/// The control node: collects kSubmit batches, orders them into a
/// hash-chained log, and unicasts the signed block to every CPS node.
/// Deployed as node id n in an (n+1)-node star topology.
class TrustedController final : public smr::ReplicaBase {
 public:
  /// `dedup`: order each flooded client request once, not once per
  /// submitting CPS node. Every node pools a flooded request and ships
  /// it up in its next kSubmit batch, so without dedup the controller
  /// orders up to n copies — each copy costing a downlink slot in an
  /// ordered block that every CPS node pays to receive (exactly-once
  /// execution absorbs the duplicates, but only after the radio energy
  /// is spent). Keyed by (client, req_id); untagged synthetic commands
  /// are never deduplicated (distinct operations by definition).
  TrustedController(net::Network& net, smr::ReplicaConfig cfg,
                    energy::Meter* meter, bool dedup = true);

  void start() override;

  [[nodiscard]] std::uint64_t blocks_ordered() const {
    return blocks_ordered_;
  }
  /// Duplicate request orderings skipped thanks to dedup, and the
  /// command bytes they would have re-shipped in ordered blocks.
  [[nodiscard]] std::uint64_t dedup_orderings_saved() const {
    return dedup_skipped_;
  }
  [[nodiscard]] std::uint64_t dedup_bytes_saved() const {
    return dedup_bytes_;
  }
  /// Live dedup-state size: one watermark per client plus the sparse
  /// tails. Bounded at O(clients · tail window), not O(requests) — the
  /// ROADMAP unbounded-seen-set fix.
  [[nodiscard]] std::size_t dedup_state_entries() const {
    std::size_t total = 0;
    for (const auto& [client, win] : seen_requests_) {
      total += 1 + win.tail_size();
    }
    return total;
  }

 protected:
  void handle(NodeId from, const smr::Msg& msg) override;

 private:
  void order_round();

  smr::BlockHash tip_;
  std::uint64_t tip_height_ = 0;
  std::vector<smr::Command> pending_;
  bool round_timer_armed_ = false;
  std::uint64_t blocks_ordered_ = 0;
  bool dedup_;
  /// Tagged requests already accepted for ordering (pending or ordered),
  /// compacted per client into a contiguous watermark + sparse tail over
  /// req_ids (clients issue ascending ids from 1, so the prefix folds
  /// as submissions arrive; a Byzantine client leaving persistent gaps
  /// is force-compacted past them at the tail bound, which can only
  /// over-dedup its own requests).
  std::map<NodeId, net::FloodRouter::SeenWindow> seen_requests_;
  std::uint64_t dedup_skipped_ = 0;
  std::uint64_t dedup_bytes_ = 0;
};

/// A CPS node in the baseline: submits commands every `submit interval`
/// and commits whatever ordered blocks the control node signs.
class TrustedBaselineReplica final : public smr::ReplicaBase {
 public:
  /// `controller` is the control node's id (= n by convention).
  TrustedBaselineReplica(net::Network& net, smr::ReplicaConfig cfg,
                         NodeId controller, energy::Meter* meter);

  void start() override;

 protected:
  void handle(NodeId from, const smr::Msg& msg) override;

 private:
  void submit_round();

  NodeId controller_;
};

}  // namespace eesmr::baselines
