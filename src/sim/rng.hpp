// Deterministic pseudo-random generator (xoshiro256**) for reproducible
// simulation runs. Every run is fully determined by its seed.
#pragma once

#include <cstdint>

namespace eesmr::sim {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded via splitmix64.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> too.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xE35Au) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next();
  result_type operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform();
  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// Derive an independent child generator (for per-node streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Derive an independent per-run seed from a base seed and a run index
/// (splitmix64 over the concatenation). Used by the experiment engine so
/// every grid point gets its own reproducible randomness regardless of
/// how runs are scheduled across worker threads: the derived seed is a
/// pure function of (base, stream), never of execution order.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace eesmr::sim
