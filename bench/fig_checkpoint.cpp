// Checkpoint-interval sweep: the memory-bound vs energy-overhead vs
// catch-up-latency trade-off of the checkpointing & state-transfer
// subsystem (src/checkpoint/), for EESMR and Sync HotStuff.
//
// Every `interval` committed commands each replica snapshots its app,
// signs (height, block, state digest), and floods a kCheckpoint; f+1
// matching signatures form a stable checkpoint that truncates the log
// and the dedup sets (low-water-mark GC) and certifies a snapshot for
// replica catch-up. Shorter intervals bound memory tighter and let a
// late joiner recover from a fresher snapshot, at the price of more
// checkpoint crypto and flooding — the axis this figure sweeps.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

namespace {

using namespace eesmr;
using harness::Cluster;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

constexpr sim::Duration kRunTime = sim::seconds(40);
constexpr sim::Duration kJoinAt = sim::seconds(10);

ClusterConfig base_cfg(Protocol protocol, std::uint64_t interval) {
  ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 42;
  cfg.batch_size = 8;
  cfg.clients = 2;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 4;
  cfg.checkpoint_interval = interval;
  return cfg;
}

void sweep_memory_energy(Protocol protocol) {
  std::printf("\n%s: steady state, closed-loop clients, %lds simulated\n",
              harness::protocol_name(protocol),
              static_cast<long>(kRunTime / 1'000'000));
  std::printf("  %-10s %9s %9s %9s %9s %10s %11s\n", "interval", "blocks",
              "log_max", "store_max", "dedup_max", "acc/s", "mJ/block");
  double baseline_mj_per_block = 0;
  for (std::uint64_t interval : {0, 32, 128, 512}) {
    Cluster cluster(base_cfg(protocol, interval));
    const RunResult r = cluster.run_for(kRunTime);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    std::size_t store_max = 0;
    for (std::size_t i = 0; i < r.footprints.size(); ++i) {
      if (r.correct[i] && r.counted[i]) {
        store_max = std::max(store_max, r.footprints[i].store_blocks);
      }
    }
    const double mj = r.energy_per_block_mj();
    if (interval == 0) baseline_mj_per_block = mj;
    char label[32];
    std::snprintf(label, sizeof label, "%u cmds",
                  static_cast<unsigned>(interval));
    if (interval == 0) std::snprintf(label, sizeof label, "off");
    std::printf("  %-10s %9zu %9zu %9zu %9zu %10.1f %9.1f", label,
                r.min_committed(), r.max_retained_log(), store_max,
                r.max_dedup_entries(), r.accepted_per_sec(), mj);
    if (interval != 0 && baseline_mj_per_block > 0) {
      std::printf("  (+%4.1f%%)",
                  100.0 * (mj - baseline_mj_per_block) /
                      baseline_mj_per_block);
    }
    std::printf("\n");
  }
}

void sweep_catchup(Protocol protocol) {
  std::printf(
      "\n%s: replica 3 joins at t=%lds (crash recovery / late spawn)\n",
      harness::protocol_name(protocol),
      static_cast<long>(kJoinAt / 1'000'000));
  std::printf("  %-10s %10s %12s %12s %12s %12s\n", "interval", "transfers",
              "recovery_ms", "joiner_blks", "cluster_blks", "joiner_mJ");
  for (std::uint64_t interval : {0, 32, 128, 512}) {
    ClusterConfig cfg = base_cfg(protocol, interval);
    cfg.workload.max_requests = 600;  // traffic persists past the join
    cfg.late_starts.push_back({3, kJoinAt});
    Cluster cluster(cfg);
    const RunResult r = cluster.run_for(kRunTime);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    char label[32];
    std::snprintf(label, sizeof label, "%u cmds",
                  static_cast<unsigned>(interval));
    if (interval == 0) std::snprintf(label, sizeof label, "off");
    std::printf("  %-10s %10llu %12.1f %12llu %12zu %12.1f\n", label,
                static_cast<unsigned long long>(r.state_transfers),
                sim::to_milliseconds(r.max_recovery_latency),
                static_cast<unsigned long long>(
                    r.footprints[3].committed_blocks),
                r.max_committed(), r.node_energy_mj(3));
  }
  std::printf(
      "  (interval off: no snapshot exists — recovery degrades to\n"
      "   block-by-block backward chain sync where the protocol's\n"
      "   acceptance rules permit it, or stalls where they do not)\n");
}

}  // namespace

int main() {
  eesmr::bench::header(
      "Checkpointing: memory bound vs energy overhead vs catch-up",
      "f+1 identical signed state digests — the Section 3 acceptance "
      "rule applied to state (NxBFT-style stable checkpoints)");
  eesmr::bench::note(
      "log/store/dedup sizes are per-replica maxima at run end; "
      "checkpoint crypto and transfer bytes are metered like all "
      "other traffic");
  sweep_memory_energy(Protocol::kEesmr);
  sweep_catchup(Protocol::kEesmr);
  sweep_memory_energy(Protocol::kSyncHotStuff);
  sweep_catchup(Protocol::kSyncHotStuff);
  return 0;
}
