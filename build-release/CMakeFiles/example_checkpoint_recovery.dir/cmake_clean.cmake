file(REMOVE_RECURSE
  "CMakeFiles/example_checkpoint_recovery.dir/examples/checkpoint_recovery.cpp.o"
  "CMakeFiles/example_checkpoint_recovery.dir/examples/checkpoint_recovery.cpp.o.d"
  "example_checkpoint_recovery"
  "example_checkpoint_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_checkpoint_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
