// Membership-reconfiguration conformance tier (`ctest -L certs`): the
// Savanna-style policy-generation machinery (src/smr/membership.hpp) and
// its cluster-level guarantees — committed policy blocks flip the active
// signer set at commit boundaries under every protocol, joiners bootstrap
// through checkpoints/state transfer (even mid-view-change), and a live
// join-then-leave run keeps the safety/liveness checkers green.
#include <gtest/gtest.h>

#include "src/adversary/spec.hpp"
#include "src/common/serde.hpp"
#include "src/harness/cluster.hpp"
#include "src/smr/membership.hpp"

namespace eesmr {
namespace {

using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;
using smr::MembershipPolicy;
using smr::MembershipState;
using smr::PolicyEntry;

MembershipPolicy make_policy(std::uint64_t gen, std::vector<NodeId> nodes) {
  MembershipPolicy p;
  p.generation = gen;
  for (NodeId id : nodes) p.signers.push_back({id, 1});
  return p;
}

// ---------------------------------------------------------------------------
// MembershipPolicy wire form
// ---------------------------------------------------------------------------

TEST(MembershipPolicy, EncodeDecodeRoundTrip) {
  const MembershipPolicy p = make_policy(3, {0, 2, 5, 9});
  const MembershipPolicy back = MembershipPolicy::decode(p.encode());
  EXPECT_EQ(back, p);
}

TEST(MembershipPolicy, DecodeRejectsTruncation) {
  const Bytes enc = make_policy(1, {0, 1, 2}).encode();
  for (std::size_t cut = 1; cut < enc.size(); ++cut) {
    EXPECT_THROW(MembershipPolicy::decode(
                     Bytes(enc.begin(), enc.begin() + cut)),
                 SerdeError)
        << "cut at " << cut;
  }
}

TEST(MembershipPolicy, CommandDispatchOnLeadingTag) {
  const MembershipPolicy p = make_policy(2, {1, 3});
  const auto hit = MembershipPolicy::decode_command(p.encode());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, p);
  // A non-policy command (no kPolicyTag lead) is simply not ours.
  EXPECT_FALSE(MembershipPolicy::decode_command(to_bytes("put k v")));
  // Tagged but malformed is an error, not a silent skip.
  Bytes enc = p.encode();
  enc.resize(enc.size() - 1);
  EXPECT_THROW(MembershipPolicy::decode_command(enc), SerdeError);
}

TEST(MembershipPolicy, WellFormedRules) {
  EXPECT_TRUE(make_policy(1, {0, 1, 2}).well_formed());
  EXPECT_FALSE(make_policy(1, {}).well_formed());       // empty
  EXPECT_FALSE(make_policy(1, {0, 2, 1}).well_formed());  // not ascending
  EXPECT_FALSE(make_policy(1, {0, 1, 1}).well_formed());  // duplicate
  MembershipPolicy zero_weight = make_policy(1, {0, 1});
  zero_weight.signers[1].weight = 0;
  EXPECT_FALSE(zero_weight.well_formed());
}

// ---------------------------------------------------------------------------
// MembershipState apply / history semantics
// ---------------------------------------------------------------------------

TEST(MembershipState, GenesisIsFullSetAtWeightOne) {
  const MembershipState st(4);
  EXPECT_EQ(st.generation(), 0u);
  EXPECT_EQ(st.active_count(), 4u);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_TRUE(st.is_signer(i, 0));
    EXPECT_EQ(st.weight(i, 0), 1u);
  }
  EXPECT_FALSE(st.is_signer(4, 0));
  EXPECT_EQ(st.leader_at(5), 1u);  // round-robin over {0,1,2,3}
}

TEST(MembershipState, ApplyOnlyDirectSuccessorAndWellFormed) {
  MembershipState st(4);
  EXPECT_FALSE(st.apply(make_policy(2, {0, 1, 2})));  // gap
  EXPECT_FALSE(st.apply(make_policy(0, {0, 1, 2})));  // replay of current
  EXPECT_FALSE(st.apply(make_policy(1, {})));         // malformed
  EXPECT_EQ(st.generation(), 0u);

  ASSERT_TRUE(st.apply(make_policy(1, {0, 1, 2, 3, 4})));
  EXPECT_EQ(st.generation(), 1u);
  EXPECT_EQ(st.active_count(), 5u);
  EXPECT_TRUE(st.is_signer(4, 1));
  EXPECT_FALSE(st.is_signer(4, 0));  // old generation still queryable
  // Re-applying the same generation is a no-op, so delivery of the same
  // policy block through different paths stays idempotent.
  EXPECT_FALSE(st.apply(make_policy(1, {0, 1, 2, 3, 4})));
  // Leader rotation now covers the joiner.
  EXPECT_EQ(st.leader_at(4), 4u);
}

TEST(MembershipState, HistoryWindowEvicts) {
  MembershipState st(3);
  for (std::uint64_t g = 1; g <= MembershipState::kHistoryWindow + 2; ++g) {
    ASSERT_TRUE(st.apply(make_policy(g, {0, 1, 2})));
  }
  const std::uint64_t cur = st.generation();
  EXPECT_TRUE(st.known(cur));
  EXPECT_TRUE(st.known(cur - MembershipState::kHistoryWindow));
  EXPECT_FALSE(st.known(cur - MembershipState::kHistoryWindow - 1));
  EXPECT_FALSE(st.known(0));
  EXPECT_FALSE(st.known(cur + 1));
}

// ---------------------------------------------------------------------------
// Cluster-level: policy-generation handoff under every protocol
// ---------------------------------------------------------------------------

// One spare rides along out of the genesis signer set; a committed policy
// block admits it mid-run. The handoff must be commit-boundary clean
// under every protocol: generation advances everywhere, the chain keeps
// growing, and safety holds across certificates formed on both sides of
// the flip.
TEST(MembershipHandoff, EveryProtocolFlipsGenerationAtCommitBoundary) {
  for (const Protocol p :
       {Protocol::kEesmr, Protocol::kSyncHotStuff, Protocol::kOptSync,
        Protocol::kPbft, Protocol::kMinBft}) {
    SCOPED_TRACE(harness::protocol_name(p));
    ClusterConfig cfg;
    cfg.protocol = p;
    // Genesis active set at each protocol's replication factor for f=1;
    // the trailing node is the spare that joins.
    cfg.n = (p == Protocol::kMinBft ? 3 : 4) + 1;
    cfg.f = 1;
    cfg.spares = 1;
    cfg.checkpoint_interval = 8;
    cfg.seed = 0x90e5;
    ClusterConfig::MembershipEvent join;
    // Early enough that every protocol — the baselines clear 25 blocks
    // within ~300ms of sim time — still has most of the run ahead of it
    // on the far side of the flip.
    join.at = sim::milliseconds(100);
    for (NodeId i = 0; i < cfg.n; ++i) join.policy.signers.push_back({i, 1});
    cfg.membership_events.push_back(join);

    harness::Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(25, sim::seconds(60));
    EXPECT_TRUE(r.safety_ok());
    EXPECT_GE(r.min_committed(), 25u);
    EXPECT_GE(r.membership_changes, 1u);
    EXPECT_EQ(r.membership_generation, 1u);
    // The joiner followed the chain as a relay and kept committing after
    // it became a signer.
    EXPECT_GT(cluster.replica(cfg.n - 1).committed_blocks(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Cluster-level: joiner arrives during a view change
// ---------------------------------------------------------------------------

// The nasty interleaving: the join policy commits while the joiner is
// still offline, the view-1 leader crashes right after, and the joiner
// then boots into a cluster that is mid-view-change — bootstrapping via
// checkpoint state transfer into a generation it never observed forming.
TEST(MembershipHandoff, JoinerArrivesDuringViewChange) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kSyncHotStuff;
  cfg.n = 5;
  cfg.f = 1;
  cfg.spares = 1;  // node 4
  cfg.checkpoint_interval = 8;
  cfg.seed = 0x7c1;
  ClusterConfig::MembershipEvent join;
  join.at = sim::milliseconds(200);
  for (NodeId i = 0; i < cfg.n; ++i) join.policy.signers.push_back({i, 1});
  cfg.membership_events.push_back(join);
  // Joiner offline until well after its admission committed.
  cfg.late_starts.push_back({4, sim::milliseconds(900)});
  // View-1 leader crashes for good just before the joiner boots: the
  // f=1 budget is spent on a view change the joiner lands inside.
  adversary::AdversarySpec::CrashRecover cr;
  cr.node = 1;
  cr.crash_at = sim::milliseconds(500);
  cfg.adversary.crashes.push_back(cr);

  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(150, sim::seconds(60));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 150u);
  EXPECT_GT(r.view_changes, 0u);
  EXPECT_EQ(r.membership_generation, 1u);
  // The joiner caught up across BOTH discontinuities (generation flip +
  // view change) and is committing on the live chain.
  EXPECT_GT(cluster.replica(4).committed_blocks(), 0u);
}

// ---------------------------------------------------------------------------
// Cluster-level: live join then leave, clients running throughout
// ---------------------------------------------------------------------------

TEST(MembershipHandoff, LiveJoinThenLeaveKeepsCheckersGreen) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 5;
  cfg.f = 1;
  cfg.spares = 1;  // node 4
  cfg.checkpoint_interval = 8;
  cfg.clients = 2;
  cfg.workload.max_requests = 30;
  cfg.seed = 0x10af;
  ClusterConfig::MembershipEvent join;   // gen 1: {0..4}
  join.at = sim::milliseconds(500);
  for (NodeId i = 0; i < 5; ++i) join.policy.signers.push_back({i, 1});
  ClusterConfig::MembershipEvent leave;  // gen 2: node 4 retired again
  leave.at = sim::milliseconds(1500);
  for (NodeId i = 0; i < 4; ++i) leave.policy.signers.push_back({i, 1});
  cfg.membership_events.push_back(join);
  cfg.membership_events.push_back(leave);

  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(40, sim::seconds(60));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_TRUE(r.liveness_ok());
  EXPECT_GE(r.min_committed(), 40u);
  EXPECT_GE(r.membership_changes, 2u);
  EXPECT_EQ(r.membership_generation, 2u);
  // Client service rode through both reconfigurations.
  EXPECT_GT(r.requests_accepted, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
}

// Determinism: the reconfiguration schedule is part of the seed-derived
// world — identical seeds reproduce identical handoffs, byte for byte.
TEST(MembershipHandoff, DeterministicAcrossRuns) {
  const auto run = [] {
    ClusterConfig cfg;
    cfg.protocol = Protocol::kEesmr;
    cfg.n = 5;
    cfg.f = 1;
    cfg.spares = 1;
    cfg.checkpoint_interval = 8;
    cfg.seed = 42;
    ClusterConfig::MembershipEvent join;
    join.at = sim::milliseconds(500);
    for (NodeId i = 0; i < 5; ++i) join.policy.signers.push_back({i, 1});
    cfg.membership_events.push_back(join);
    harness::Cluster cluster(cfg);
    return cluster.run_until_commits(20, sim::seconds(60));
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_EQ(a.bytes_transmitted, b.bytes_transmitted);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.membership_changes, b.membership_changes);
  ASSERT_EQ(a.logs.size(), b.logs.size());
  for (std::size_t i = 0; i < a.logs.size(); ++i) {
    ASSERT_EQ(a.logs[i].size(), b.logs[i].size());
    for (std::size_t blk = 0; blk < a.logs[i].size(); ++blk) {
      EXPECT_EQ(a.logs[i][blk].encode(), b.logs[i][blk].encode());
    }
  }
}

}  // namespace
}  // namespace eesmr
