// The Section-4 "easy-to-use template for comparing SMR protocols":
// given a deployment (n, f, payload, media), print each protocol's
// ψ decomposition, the ν_f view-change-ratio bound, the amortization
// bound, and the energy-fault bound (EB) — then recommend a protocol,
// exactly the decision an administrator would make from the paper.
#include <cmath>
#include <cstdio>

#include "src/energy/analysis.hpp"

using namespace eesmr;
using namespace eesmr::energy;

namespace {

void plan(const char* title, SystemParams x, double expected_vc_ratio) {
  std::printf("=== %s ===\n", title);
  std::printf("n=%zu f=%zu payload=%zuB k=%zu medium=%s scheme=%s\n", x.n,
              x.f, x.m, x.k, medium_name(x.node_medium),
              crypto::scheme_info(x.scheme).name);

  const PsiBreakdown ee = psi_eesmr(x);
  const PsiBreakdown shs = psi_sync_hotstuff(x);
  const PsiBreakdown opt = psi_optsync(x);
  const double bl = psi_trusted_baseline(x);

  std::printf("%-14s %12s %12s %12s\n", "protocol", "psi_B (mJ)",
              "psi_V (mJ)", "psi_W (mJ)");
  std::printf("%-14s %12.0f %12.0f %12.0f\n", "EESMR", ee.best,
              ee.view_change, ee.worst());
  std::printf("%-14s %12.0f %12.0f %12.0f\n", "SyncHotStuff", shs.best,
              shs.view_change, shs.worst());
  std::printf("%-14s %12.0f %12.0f %12.0f\n", "OptSync", opt.best,
              opt.view_change, opt.worst());
  std::printf("%-14s %12.0f %12s %12s\n", "TrustedBase", bl, "-", "-");

  const double nu = max_view_change_ratio(ee, shs);
  const double amortize = min_blocks_to_amortize(ee, shs, 1.0);
  const double fe = energy_fault_bound(bl, ee);
  std::printf("nu_f bound (EESMR vs SyncHS): view changes may be up to "
              "%.1f%% of blocks\n", nu * 100.0);
  std::printf("amortization: one view change repaid after %.1f steady "
              "blocks\n", amortize);
  std::printf("energy-fault bound vs baseline (EB): f_e <= %.2f\n", fe);

  const char* choice =
      (bl < ee.best && bl < shs.best) ? "TrustedBaseline"
      : (ee.best < shs.best && nu > expected_vc_ratio) ? "EESMR"
                                                       : "SyncHotStuff";
  std::printf("-> recommendation at ~%.0f%% expected view-change ratio: "
              "%s\n\n", expected_vc_ratio * 100.0, choice);
}

}  // namespace

int main() {
  std::printf("Section-4 energy planner — model protocols, then choose.\n\n");

  // Scenario 1: the paper's CPS testbed — BLE k-casts, RSA-1024.
  SystemParams cps;
  cps.n = 10;
  cps.f = 2;
  cps.m = 64;
  cps.k = 3;
  cps.comm = CommMode::kKcastRing;
  cps.node_medium = Medium::kBle;
  cps.control_medium = Medium::k4gLte;
  cps.scheme = crypto::SchemeId::kRsa1024;
  plan("farm sensor field (BLE k-cast ring)", cps, 0.01);

  // Scenario 2: small WiFi deployment near a 4G gateway (Fig 1 regime).
  SystemParams wifi;
  wifi.n = 4;
  wifi.f = 1;
  wifi.m = 1024;
  wifi.comm = CommMode::kUnicastFullMesh;
  wifi.node_medium = Medium::kWifi;
  wifi.control_medium = Medium::k4gLte;
  wifi.scheme = crypto::SchemeId::kRsa1024;
  plan("small WiFi cluster vs 4G control node", wifi, 0.01);

  // Scenario 3: what if we had picked ECDSA instead (the §5.5 lesson)?
  SystemParams ecdsa = cps;
  ecdsa.scheme = crypto::SchemeId::kEcdsaSecp256k1;
  plan("same field, ECDSA-SECP256K1 signatures", ecdsa, 0.01);

  std::printf("takeaways: (1) EESMR wins the steady state whenever the\n"
              "leader is usually correct; (2) the trusted baseline only\n"
              "wins when the system is large and its medium cheap; (3)\n"
              "scheme choice moves psi by the verify-cost multiple —\n"
              "RSA's cheap verification is the paper's §5.5 conclusion.\n");
  return 0;
}
