file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_kcast_reliability.dir/bench/fig2a_kcast_reliability.cpp.o"
  "CMakeFiles/bench_fig2a_kcast_reliability.dir/bench/fig2a_kcast_reliability.cpp.o.d"
  "bench_fig2a_kcast_reliability"
  "bench_fig2a_kcast_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_kcast_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
