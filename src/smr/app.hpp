// Execution layer: the state machine that committed commands are applied
// to, and the client-side acknowledgment rule.
//
// §3: "The clients wait to receive f+1 identical acknowledgments with
// execution results and accept the results." The SMR core orders
// commands; this layer executes them deterministically and lets a client
// accept a result once f+1 replicas report the same one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.hpp"
#include "src/smr/block.hpp"

namespace eesmr::smr {

/// Deterministic state machine: same command sequence -> same results and
/// same state digest on every correct replica.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  /// Apply one committed command; returns the execution result.
  virtual Bytes apply(const Command& cmd) = 0;
  /// Digest of the current state (for cross-replica comparison).
  [[nodiscard]] virtual Bytes state_digest() const = 0;

  // -- checkpointing (src/checkpoint/) ---------------------------------------
  /// Serialize the full state. restore() of a snapshot on a fresh
  /// instance must reproduce behaviour AND state_digest() exactly; the
  /// encoding must be deterministic (checkpoint certificates sign its
  /// hash). Defaults model a stateless machine (empty snapshot).
  [[nodiscard]] virtual Bytes snapshot() const { return {}; }
  /// Replace the current state with a previously-snapshotted one.
  /// Throws SerdeError on malformed input.
  virtual void restore(BytesView snap) { (void)snap; }
};

/// A small key-value store with a text command language:
///   "set <key> <value>" -> "ok"
///   "get <key>"         -> value or "(nil)"
///   "del <key>"         -> "ok" / "(nil)"
///   "inc <key>"         -> new integer value (missing keys start at 0)
/// Unknown commands return "err". Commands are deliberately forgiving:
/// the consensus layer leaves validity to the application (§6 "BA and
/// SMR" — validity lives at the semantic layer).
class KvStore final : public StateMachine {
 public:
  Bytes apply(const Command& cmd) override;
  [[nodiscard]] Bytes state_digest() const override;
  [[nodiscard]] Bytes snapshot() const override;
  void restore(BytesView snap) override;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::uint64_t applied() const { return applied_; }

 private:
  std::map<std::string, std::string> table_;
  std::uint64_t applied_ = 0;
};

/// Client-side acceptance: collect per-replica results for a request and
/// accept once f+1 identical results arrived (§3).
class AckCollector {
 public:
  explicit AckCollector(std::size_t f) : f_(f) {}

  /// Record one replica's result. Returns the accepted result once f+1
  /// identical results are known (and from then on).
  std::optional<Bytes> add(NodeId replica, const Bytes& result);

  [[nodiscard]] bool accepted() const { return accepted_.has_value(); }
  [[nodiscard]] const std::optional<Bytes>& result() const {
    return accepted_;
  }
  /// Distinct replicas whose reply has been recorded.
  [[nodiscard]] std::size_t replies() const { return seen_.size(); }

 private:
  std::size_t f_;
  std::map<std::string, std::vector<NodeId>> tallies_;
  std::map<NodeId, bool> seen_;
  std::optional<Bytes> accepted_;
};

}  // namespace eesmr::smr
