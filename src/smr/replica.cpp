#include "src/smr/replica.hpp"

#include <stdexcept>

#include "src/common/serde.hpp"
#include "src/crypto/sha256.hpp"

namespace eesmr::smr {

namespace {
std::string hkey(const BlockHash& h) {
  return std::string(h.begin(), h.end());
}
/// Cap on blocks per SyncResponse (a Byzantine peer can request often;
/// the per-response size must stay bounded).
constexpr std::size_t kMaxSyncBlocks = 64;
}  // namespace

ReplicaBase::ReplicaBase(net::Network& net, ReplicaConfig cfg,
                         energy::Meter* meter)
    : sched_(net.scheduler()),
      router_(net, cfg.id, this),
      cfg_(std::move(cfg)),
      meter_(meter),
      mempool_(cfg_.cmd_bytes),
      committed_tip_(genesis_hash()) {
  if (!cfg_.keyring) {
    throw std::invalid_argument("ReplicaBase: keyring required");
  }
  if (cfg_.keyring->size() < cfg_.n) {
    throw std::invalid_argument("ReplicaBase: keyring too small");
  }
}

void ReplicaBase::charge(energy::Category cat, double mj) {
  if (meter_ != nullptr && cfg_.meter_crypto) meter_->charge(cat, mj);
}

Msg ReplicaBase::make_msg(MsgType type, std::uint64_t round, Bytes data) {
  Msg m;
  m.type = type;
  m.view = v_cur_;
  m.round = round;
  m.author = cfg_.id;
  m.data = std::move(data);
  m.sig = cfg_.keyring->signer(cfg_.id).sign(m.preimage());
  charge(energy::Category::kSign,
         energy::sign_energy_mj(cfg_.keyring->scheme()));
  return m;
}

bool ReplicaBase::verify_msg(const Msg& m) {
  if (m.author >= cfg_.n) return false;
  charge(energy::Category::kVerify,
         energy::verify_energy_mj(cfg_.keyring->scheme()));
  return cfg_.keyring->verify(m.author, m.preimage(), m.sig);
}

bool ReplicaBase::verify_qc(const QuorumCert& qc, std::size_t quorum_size) {
  // Each contained signature costs one verification.
  for (std::size_t i = 0; i < qc.sigs.size(); ++i) {
    charge(energy::Category::kVerify,
           energy::verify_energy_mj(cfg_.keyring->scheme()));
  }
  return qc.verify(*cfg_.keyring, quorum_size);
}

BlockHash ReplicaBase::hash_block(const Block& b) {
  const Bytes enc = b.encode();
  charge(energy::Category::kHash, energy::hash_energy_mj(enc.size()));
  return crypto::sha256(enc);
}

void ReplicaBase::broadcast(const Msg& m) { router_.broadcast(m.encode()); }

void ReplicaBase::broadcast_local(const Msg& m) {
  router_.broadcast_local(m.encode());
}

void ReplicaBase::send(NodeId to, const Msg& m) {
  router_.send_to(to, m.encode());
}

bool ReplicaBase::integrate_block(const Block& block, NodeId origin) {
  if (store_.add(block)) return true;
  store_.add_orphan(block);
  // Request the missing ancestry once per parent hash.
  if (sync_requested_.insert(hkey(block.parent)).second) {
    Msg req = make_msg(MsgType::kSyncRequest, r_cur_, block.parent);
    send(origin, req);
  }
  return false;
}

void ReplicaBase::on_chain_connected(const Block&) {}

void ReplicaBase::commit_chain(const BlockHash& h) {
  if (committed_.count(hkey(h)) > 0 || h == genesis_hash()) return;
  const Block* target = store_.get(h);
  if (target == nullptr) {
    throw std::logic_error("commit_chain: unknown block");
  }
  if (!store_.extends(h, committed_tip_)) {
    if (store_.extends(committed_tip_, h)) return;  // already covered
    throw std::logic_error("commit_chain: conflicting commit (safety bug)");
  }
  for (const Block& b : store_.chain_between(h, committed_tip_)) {
    log_.push_back(b);
    committed_.insert(hkey(b.hash()));
    mempool_.remove_committed(b);
    for (const Command& cmd : b.cmds) {
      const auto req = ClientRequest::decode(cmd.data);
      Bytes result;
      if (req.has_value()) {
        // Tagged request: execute the unwrapped op exactly once, then
        // acknowledge the client (§3's f+1-identical-results rule is
        // applied on the client side). The executed_ lookup comes
        // first so duplicate copies of a request (re-proposed across a
        // view change, or the trusted baseline's one-copy-per-CPS-node
        // ordering) cost no additional signature verification.
        const auto key = std::make_pair(req->client, req->req_id);
        const auto it = executed_.find(key);
        if (it != executed_.end()) {
          // Duplicate copy (re-proposed across a view change, or the
          // baseline's one-copy-per-CPS-node ordering): replay the
          // stored result with no further verification and NO reply —
          // the first execution already acknowledged the client, and a
          // lost reply is recovered by the retransmit-replay path in
          // handle_request. Replying per copy would multiply signed
          // replies and distort the per-request energy comparison.
          result = it->second;
          if (app_ != nullptr) results_.push_back(result);
          continue;
        } else {
          // Re-verify the embedded client signature: a Byzantine
          // leader can propose arbitrary bytes, but it cannot forge a
          // request the client never signed. Invalid tagged commands
          // become deterministic no-ops on every correct replica. The
          // free id-range check runs before any energy is charged.
          bool valid =
              req->client >= cfg_.n && req->client < cfg_.keyring->size();
          if (valid) {
            charge(energy::Category::kVerify,
                   energy::verify_energy_mj(cfg_.keyring->scheme()));
            valid = req->verify(*cfg_.keyring);
          }
          if (!valid) {
            if (app_ != nullptr) results_.push_back({});
            continue;
          }
          if (app_ != nullptr) result = app_->apply(Command{req->op});
          executed_.emplace(key, result);
        }
      } else if (app_ != nullptr) {
        result = app_->apply(cmd);
      }
      if (app_ != nullptr) results_.push_back(result);
      if (req.has_value()) reply_to_client(*req, result);
    }
    on_commit(b);
  }
  committed_tip_ = h;
  committed_height_ = target->height;
}

void ReplicaBase::on_commit(const Block&) {}

void ReplicaBase::handle_request(const Msg& m) {
  // Clients sign with directory keys above the replica id range; the
  // signature checked here is the one embedded in the request itself
  // (it must survive into the block for commit-time re-verification).
  if (m.author < cfg_.n || m.author >= cfg_.keyring->size()) return;
  const auto req = ClientRequest::decode(m.data);
  if (!req.has_value() || req->client != m.author) return;
  charge(energy::Category::kVerify,
         energy::verify_energy_mj(cfg_.keyring->scheme()));
  if (!req->verify(*cfg_.keyring)) return;
  // Retransmit of an already-committed request: replay the stored
  // result instead of re-pooling (the original reply may have been
  // lost on a faulty routing path).
  const auto done = executed_.find(std::make_pair(req->client, req->req_id));
  if (done != executed_.end()) {
    reply_to_client(*req, done->second);
    return;
  }
  mempool_.submit(Command{m.data});
}

void ReplicaBase::reply_to_client(const ClientRequest& req,
                                  const Bytes& result) {
  ClientReply rep;
  rep.client = req.client;
  rep.req_id = req.req_id;
  rep.result = result;
  Msg m = make_msg(MsgType::kReply, r_cur_, rep.encode());
  send(req.client, m);
}

void ReplicaBase::on_deliver(NodeId origin, BytesView payload) {
  Msg m;
  try {
    m = Msg::decode(payload);
  } catch (const SerdeError&) {
    return;  // malformed: drop
  }
  if (m.type == MsgType::kSyncRequest || m.type == MsgType::kSyncResponse) {
    handle_sync(origin, m);
    return;
  }
  if (m.type == MsgType::kRequest) {
    handle_request(m);
    return;
  }
  if (m.type == MsgType::kReply) return;  // client-bound; not for replicas
  if (requires_signature_check(m) && !verify_msg(m)) return;
  handle(origin, m);
}

void ReplicaBase::handle_sync(NodeId from, const Msg& msg) {
  if (!verify_msg(msg)) return;
  if (msg.type == MsgType::kSyncRequest) {
    // data = hash of the block the peer is missing. Reply with that block
    // and up to kMaxSyncBlocks of its ancestors (deepest first).
    const BlockHash& want = msg.data;
    const Block* b = store_.get(want);
    if (b == nullptr) return;
    Writer w;
    std::vector<Bytes> chain;
    const Block* cur = b;
    while (cur != nullptr && chain.size() < kMaxSyncBlocks) {
      chain.push_back(cur->encode());
      if (cur->height == 0) break;
      cur = store_.get(cur->parent);
    }
    w.u32(static_cast<std::uint32_t>(chain.size()));
    // Deepest-first so the receiver can connect as it reads.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) w.bytes(*it);
    Msg resp = make_msg(MsgType::kSyncResponse, r_cur_, w.take());
    send(from, resp);
    return;
  }
  // SyncResponse: adopt blocks then retry orphans.
  try {
    Reader r(msg.data);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && i < kMaxSyncBlocks; ++i) {
      const Block b = Block::decode(r.bytes());
      if (!store_.add(b)) store_.add_orphan(b);
    }
  } catch (const SerdeError&) {
    return;
  }
  for (const Block& connected : store_.adopt_orphans()) {
    on_chain_connected(connected);
  }
}

}  // namespace eesmr::smr
