#include "src/adversary/adversary.hpp"

#include <stdexcept>

#include "src/energy/cost_model.hpp"
#include "src/smr/request.hpp"

namespace eesmr::adversary {

namespace {

bool window_active(sim::SimTime now, sim::SimTime from, sim::SimTime until) {
  return now >= from && (until == 0 || now < until);
}

bool stream_matches(int rule, energy::Stream s) {
  return rule == kAnyStream || rule == static_cast<int>(s);
}

}  // namespace

// ---------------------------------------------------------------------------
// NetAdversary
// ---------------------------------------------------------------------------

NetAdversary::NetAdversary(std::vector<AdversarySpec::LinkFault> rules,
                           sim::Scheduler& sched, std::uint64_t seed)
    : rules_(std::move(rules)), sched_(sched), rng_(seed) {}

void NetAdversary::trace_fault(const char* what, NodeId from, NodeId to) {
  if (tracer_ != nullptr) {
    tracer_->instant(sched_.now(), static_cast<std::int64_t>(to), "fault",
                     what, {{"from", exp::Json(from)}, {"to", exp::Json(to)}});
  }
}

net::FaultVerdict NetAdversary::on_delivery(NodeId from, NodeId to,
                                            energy::Stream stream,
                                            std::size_t /*bytes*/) {
  net::FaultVerdict v;
  for (const AdversarySpec::LinkFault& r : rules_) {
    if (r.from != kAnyNode && r.from != from) continue;
    if (r.to != kAnyNode && r.to != to) continue;
    if (!stream_matches(r.stream, stream)) continue;
    if (!window_active(sched_.now(), r.from_time, r.until_time)) continue;
    // First matching rule decides the delivery.
    if (r.drop > 0 && rng_.chance(r.drop)) {
      ++dropped_;
      trace_fault("drop", from, to);
      v.drop = true;
      return v;
    }
    if (r.duplicate > 0 && rng_.chance(r.duplicate)) {
      ++duplicated_;
      trace_fault("duplicate", from, to);
      v.duplicates = 1;
    }
    if (r.reorder > 0 && r.reorder_delay > 0 && rng_.chance(r.reorder)) {
      ++reordered_;
      trace_fault("reorder", from, to);
      v.extra_delay = r.reorder_delay;
    }
    return v;
  }
  return v;
}

// ---------------------------------------------------------------------------
// WithholdFilter
// ---------------------------------------------------------------------------

WithholdFilter::WithholdFilter(std::vector<AdversarySpec::Withhold> rules,
                               sim::Scheduler& sched, std::uint64_t seed)
    : rules_(std::move(rules)), sched_(sched), rng_(seed) {}

bool WithholdFilter::allow(const smr::Msg& m, NodeId /*dest*/) {
  const energy::Stream s = smr::stream_of(m.type);
  for (const AdversarySpec::Withhold& r : rules_) {
    if (!stream_matches(r.stream, s)) continue;
    if (!window_active(sched_.now(), r.from_time, r.until_time)) continue;
    if (r.prob >= 1.0 || rng_.chance(r.prob)) {
      ++withheld_;
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// ByzantineClient
// ---------------------------------------------------------------------------

ByzantineClient::ByzantineClient(net::Network& net, NodeId id,
                                 std::shared_ptr<crypto::Keyring> keyring,
                                 AdversarySpec::ByzClient spec,
                                 std::uint64_t seed, energy::Meter* meter)
    : router_(net, id, this),
      sched_(net.scheduler()),
      id_(id),
      keyring_(std::move(keyring)),
      spec_(spec),
      rng_(seed),
      meter_(meter) {
  if (!keyring_ || keyring_->size() <= id_) {
    throw std::invalid_argument("ByzantineClient: keyring must cover id");
  }
}

Bytes ByzantineClient::next_request() {
  smr::ClientRequest req;
  req.client = id_;
  req.op.resize(spec_.op_bytes);
  for (auto& b : req.op) b = static_cast<std::uint8_t>(rng_.next());
  if (spec_.kind == AdversarySpec::ByzClient::Kind::kReplayFlood) {
    // One genuinely signed request, replayed byte-identically forever:
    // the first copy orders and executes; every later copy probes the
    // pool dedup, reply-cache replay, and (after GC) the per-client
    // watermark's free drop.
    if (replay_wire_.empty()) {
      req.req_id = 1;
      req.sig = keyring_->signer(id_).sign(req.preimage());
      if (meter_ != nullptr) {
        meter_->charge(energy::Category::kSign,
                       energy::sign_energy_mj(keyring_->scheme()));
      }
      smr::Msg m;
      m.type = smr::MsgType::kRequest;
      m.view = 0;
      m.round = req.req_id;
      m.author = id_;
      m.data = req.encode();
      replay_wire_ = m.encode();
    }
    return replay_wire_;
  }
  // Garbage flood: fresh req_id, correctly sized but corrupted signature
  // — every replica pays one metered verification and must reject.
  req.req_id = next_req_id_++;
  req.sig = keyring_->signer(id_).sign(req.preimage());
  if (meter_ != nullptr) {
    meter_->charge(energy::Category::kSign,
                   energy::sign_energy_mj(keyring_->scheme()));
  }
  req.sig[rng_.below(req.sig.size())] ^=
      static_cast<std::uint8_t>(1 + rng_.below(255));
  smr::Msg m;
  m.type = smr::MsgType::kRequest;
  m.view = 0;
  m.round = req.req_id;
  m.author = id_;
  m.data = req.encode();
  return m.encode();
}

void ByzantineClient::start() { fire(); }

void ByzantineClient::fire() {
  if (spec_.max_requests > 0 && sent_ >= spec_.max_requests) return;
  router_.broadcast(next_request(), energy::Stream::kRequest);
  ++sent_;
  sched_.after(std::max<sim::Duration>(1, spec_.interval), "adversary",
               [this] { fire(); });
}

// ---------------------------------------------------------------------------
// Attack matrix
// ---------------------------------------------------------------------------

const char* attack_name(AttackKind a) {
  switch (a) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kCrash:
      return "crash";
    case AttackKind::kCrashRecover:
      return "crash_recover";
    case AttackKind::kOverBudgetCrash:
      return "over_budget_crash";
    case AttackKind::kEquivocate:
      return "equivocate";
    case AttackKind::kEquivocateSelective:
      return "equivocate_selective";
    case AttackKind::kWithholdProposals:
      return "withhold_proposals";
    case AttackKind::kVoteSuppression:
      return "vote_suppression";
    case AttackKind::kDupReorder:
      return "dup_reorder";
    case AttackKind::kFaultyLinkDrop:
      return "faulty_link_drop";
    case AttackKind::kGarbageClientFlood:
      return "garbage_client_flood";
    case AttackKind::kReplayClientFlood:
      return "replay_client_flood";
    case AttackKind::kChaseLeader:
      return "chase_leader";
    case AttackKind::kMembershipChurn:
      return "membership_churn";
  }
  return "?";
}

const std::vector<AttackKind>& all_attacks() {
  static const std::vector<AttackKind> kAll = {
      AttackKind::kNone,
      AttackKind::kCrash,
      AttackKind::kCrashRecover,
      AttackKind::kOverBudgetCrash,
      AttackKind::kEquivocate,
      AttackKind::kEquivocateSelective,
      AttackKind::kWithholdProposals,
      AttackKind::kVoteSuppression,
      AttackKind::kDupReorder,
      AttackKind::kFaultyLinkDrop,
      AttackKind::kGarbageClientFlood,
      AttackKind::kReplayClientFlood,
      AttackKind::kChaseLeader,
      AttackKind::kMembershipChurn,
  };
  return kAll;
}

void apply_attack(harness::ClusterConfig& cfg, AttackKind attack) {
  const std::size_t f = cfg.f;
  AdversarySpec& adv = cfg.adversary;
  // Faulty replicas are 1..f: leader_of(view) = view % n, so node 1
  // leads view 1 and leader-centric attacks bite immediately.
  switch (attack) {
    case AttackKind::kNone:
      return;
    case AttackKind::kCrash:
      for (NodeId i = 1; i <= f; ++i) {
        cfg.faults.push_back({i, protocol::ByzantineMode::kCrash, 5});
      }
      return;
    case AttackKind::kCrashRecover: {
      for (NodeId i = 1; i <= f; ++i) {
        AdversarySpec::CrashRecover cr;
        cr.node = i;
        cr.crash_at = sim::milliseconds(500);
        cr.recover_at = sim::milliseconds(1500);
        adv.crashes.push_back(cr);
      }
      return;
    }
    case AttackKind::kOverBudgetCrash: {
      // n-1 crashes, early enough that no protocol has finished a
      // meaningful run: a lone survivor can never assemble an f+1 blame
      // quorum, so no protocol claims liveness here.
      for (NodeId i = 1; i < cfg.n; ++i) {
        AdversarySpec::CrashRecover cr;
        cr.node = i;
        cr.crash_at = sim::milliseconds(100);
        adv.crashes.push_back(cr);
      }
      return;
    }
    case AttackKind::kEquivocate:
      for (NodeId i = 1; i <= f; ++i) {
        cfg.faults.push_back({i, protocol::ByzantineMode::kEquivocate, 5});
      }
      return;
    case AttackKind::kEquivocateSelective:
      for (NodeId i = 1; i <= f; ++i) {
        cfg.faults.push_back(
            {i, protocol::ByzantineMode::kEquivocateSelective, 5});
      }
      return;
    case AttackKind::kWithholdProposals:
    case AttackKind::kVoteSuppression: {
      const auto stream = attack == AttackKind::kWithholdProposals
                              ? energy::Stream::kProposal
                              : energy::Stream::kVote;
      for (NodeId i = 1; i <= f; ++i) {
        AdversarySpec::Withhold w;
        w.node = i;
        w.stream = static_cast<int>(stream);
        adv.withholds.push_back(w);
      }
      return;
    }
    case AttackKind::kDupReorder: {
      // Duplication + reordering on every link, with the extra delay at
      // the hop bound so end-to-end delivery stays within Δ (bounded
      // synchrony holds; every protocol must ride it out).
      AdversarySpec::LinkFault lf;
      lf.duplicate = 0.3;
      lf.reorder = 0.3;
      lf.reorder_delay = cfg.hop_delay;
      adv.link_faults.push_back(lf);
      return;
    }
    case AttackKind::kFaultyLinkDrop: {
      for (NodeId i = 1; i <= f; ++i) {
        AdversarySpec::LinkFault lf;
        lf.from = i;
        lf.drop = 0.5;
        adv.link_faults.push_back(lf);
        adv.mark_faulty.push_back(i);
      }
      return;
    }
    case AttackKind::kGarbageClientFlood:
    case AttackKind::kReplayClientFlood: {
      AdversarySpec::ByzClient bc;
      bc.kind = attack == AttackKind::kGarbageClientFlood
                    ? AdversarySpec::ByzClient::Kind::kGarbageFlood
                    : AdversarySpec::ByzClient::Kind::kReplayFlood;
      bc.interval = sim::milliseconds(40);
      adv.clients.push_back(bc);
      return;
    }
    case AttackKind::kChaseLeader: {
      // Adaptive crash following the leader: the harness re-targets the
      // current-view leader every period. One victim at a time (within
      // every protocol's f >= 1 crash budget); the period leaves room
      // for the view change plus a stretch of commits before the chase
      // catches up with the new leader.
      adv.chase_leader.period = sim::milliseconds(400);
      adv.chase_leader.from_time = sim::milliseconds(300);
      return;
    }
    case AttackKind::kMembershipChurn: {
      // Byzantine equivocation straddling a membership handoff: one
      // spare rides outside the genesis signer set and a committed
      // policy block swaps it in for the last genesis signer — a
      // one-for-one replacement, so the active set keeps the size the
      // f-derived quorums were provisioned for (growing it instead
      // would shrink quorum intersection under the very equivocators
      // this cell runs). The usual f equivocators fire around the
      // generation flip, and the joiner itself is crashed
      // mid-bootstrap, recovering later via state transfer. Safety
      // must hold across certificates formed on both sides of the
      // flip.
      cfg.n += 1;
      cfg.spares = 1;
      const NodeId joiner = static_cast<NodeId>(cfg.n - 1);
      const NodeId retired = static_cast<NodeId>(cfg.n - 2);
      harness::ClusterConfig::MembershipEvent swap;
      swap.at = sim::milliseconds(150);
      for (NodeId i = 0; i < cfg.n; ++i) {
        if (i == retired) continue;
        swap.policy.signers.push_back({i, 1});
      }
      cfg.membership_events.push_back(swap);
      for (NodeId i = 1; i <= f; ++i) {
        cfg.faults.push_back({i, protocol::ByzantineMode::kEquivocate, 5});
      }
      AdversarySpec::CrashRecover cr;
      cr.node = joiner;
      cr.crash_at = sim::milliseconds(250);
      cr.recover_at = sim::milliseconds(1250);
      adv.crashes.push_back(cr);
      return;
    }
  }
}

bool expect_liveness(harness::Protocol /*protocol*/, AttackKind attack) {
  // Every SMR protocol in the matrix — EESMR, Sync HotStuff, PBFT at
  // n=3f+1 and MinBFT at n=2f+1 — claims liveness at its f budget under
  // every attack, including the adaptive chase-the-leader crash (one
  // victim at a time; view changes route around it and victims catch up
  // by chain sync or state transfer). Only the deliberately over-budget
  // crash exceeds any documented tolerance. (Dolev-Strong cells assert
  // termination directly in run_dolev_strong_attack.)
  return attack != AttackKind::kOverBudgetCrash;
}

DolevStrongVerdict run_dolev_strong_attack(std::size_t n, std::size_t f,
                                           AttackKind attack,
                                           std::uint64_t seed) {
  baselines::DolevStrongAttack a;
  std::vector<AdversarySpec::LinkFault> rules;
  switch (attack) {
    case AttackKind::kNone:
      break;
    case AttackKind::kCrash:
    case AttackKind::kCrashRecover:    // one-shot BA: crash == no recovery
    case AttackKind::kWithholdProposals:  // a silent sender withholds all
    case AttackKind::kChaseLeader:  // one-shot BA: chasing == sender crash
      a.crash = {0};
      break;
    case AttackKind::kOverBudgetCrash:
      for (NodeId i = 0; i + 1 < n; ++i) a.crash.push_back(i);
      break;
    case AttackKind::kEquivocate:
      a.sender_equivocate = true;
      break;
    case AttackKind::kEquivocateSelective:
      a.sender_selective = true;
      break;
    case AttackKind::kVoteSuppression:
      // f silent relays: they neither sign nor forward chains.
      for (NodeId i = 1; i <= f && i < n; ++i) a.crash.push_back(i);
      break;
    case AttackKind::kDupReorder: {
      AdversarySpec::LinkFault lf;
      lf.duplicate = 0.3;
      lf.reorder = 0.3;
      lf.reorder_delay = sim::milliseconds(10);  // the driver's hop bound
      rules.push_back(lf);
      break;
    }
    case AttackKind::kFaultyLinkDrop: {
      AdversarySpec::LinkFault lf;
      lf.from = 0;
      lf.drop = 0.5;
      rules.push_back(lf);
      break;
    }
    case AttackKind::kGarbageClientFlood:
    case AttackKind::kReplayClientFlood:
      // BA has no clients; the closest analogue is a junk-flooding node.
      a.garbage = {static_cast<NodeId>(n - 1)};
      break;
    case AttackKind::kMembershipChurn:
      // One-shot BA has no membership; the closest analogue is a relay
      // lost mid-protocol (the "joiner" crashed during its bootstrap).
      a.crash = {static_cast<NodeId>(n - 1)};
      break;
  }

  sim::Scheduler fault_clock;  // rule windows only; rules here use none
  NetAdversary injector(rules, fault_clock, sim::derive_seed(seed, 0xfa));
  if (!rules.empty()) a.injector = &injector;

  const Bytes value = to_bytes(std::string("ds-conformance-value"));
  const baselines::DolevStrongResult r =
      baselines::run_dolev_strong(n, f, value, a, seed);

  DolevStrongVerdict v;
  v.agreement = r.agreement();
  v.terminated = r.decided == r.decisions.size() && !r.decisions.empty();
  v.transmissions = r.transmissions;
  v.faults_dropped = injector.dropped();
  v.faults_duplicated = injector.duplicated();
  v.faults_reordered = injector.reordered();
  return v;
}

}  // namespace eesmr::adversary
