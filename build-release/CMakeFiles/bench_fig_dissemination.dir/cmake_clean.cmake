file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_dissemination.dir/bench/fig_dissemination.cpp.o"
  "CMakeFiles/bench_fig_dissemination.dir/bench/fig_dissemination.cpp.o.d"
  "bench_fig_dissemination"
  "bench_fig_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
