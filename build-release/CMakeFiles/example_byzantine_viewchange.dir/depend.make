# Empty dependencies file for example_byzantine_viewchange.
# This may be replaced when dependencies are built.
