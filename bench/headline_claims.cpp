// Headline claims (§1, §5.7, conclusion):
//  * EESMR is ~2.8x more energy-efficient than Sync HotStuff in
//    failure-free runs;
//  * ~2x worse during leader changes;
//  * 33-64% total energy reduction in the steady state;
//  * 64% savings at n = 10 using BLE.
#include <algorithm>
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/sim/rng.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

int main(int argc, char** argv) {
  exp::Experiment ex("headline_claims", "§1 (abstract), §5.7, Conclusion",
                     argc, argv, /*default_seed=*/20);

  // Steady-state ratio across the evaluation's n = 10..13 with k = f+1.
  std::vector<std::size_t> ns = {10, 11, 12, 13};
  if (ex.smoke()) ns = {10, 13};
  const std::size_t blocks = ex.smoke() ? 4 : 8;

  // Per-n the sweep visits k = 3 and k = (n-1)/2; both protocols run
  // inside one grid point so the ratio needs no post-join.
  exp::Grid grid;
  grid.axis_of("n", ns);
  grid.axis("k_choice", {"k3", "half"});

  exp::Report& rep = ex.run("steady_state", grid,
                            [&](const exp::RunContext& c) {
    const std::size_t n = ns[c.at("n")];
    const std::size_t k = c.label("k_choice") == "k3" ? 3 : (n - 1) / 2;
    ClusterConfig cfg;
    cfg.n = n;
    cfg.f = std::min(k - 1, (n - 1) / 2);
    cfg.k = k;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    cfg.seed = c.seed;

    ClusterConfig ee = cfg;
    ee.protocol = Protocol::kEesmr;
    ClusterConfig shs = cfg;
    shs.protocol = Protocol::kSyncHotStuff;
    const double e = exp::run_steady(c, ee, blocks, {{"protocol", "eesmr"}})
                         .energy_per_block_mj();
    const double s =
        exp::run_steady(c, shs, blocks, {{"protocol", "sync_hotstuff"}})
            .energy_per_block_mj();

    exp::MetricRow row;
    row.set("f", cfg.f);
    row.set("k", k);
    row.set("eesmr_mj_per_block", e);
    row.set("synchs_mj_per_block", s);
    row.set("ratio", s / e);
    row.set("savings_pct", (1.0 - e / s) * 100.0);
    return row;
  });
  rep.print_table(1);

  double best = 0, worst = 1e9;
  for (const exp::MetricRow& row : rep.rows) {
    best = std::max(best, row.number("savings_pct"));
    worst = std::min(worst, row.number("savings_pct"));
  }

  // View-change ratio at n = 13, k = 7 (the paper's 2.05x setting) plus
  // the Section-4 amortization bound.
  exp::Grid vc_grid;  // single point: heavy, but one run matrix entry
  exp::Report& vc = ex.run("view_change_n13_k7", vc_grid,
                           [&](const exp::RunContext& c) {
    ClusterConfig cfg;
    cfg.n = 13;
    cfg.f = 6;
    cfg.k = 7;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    cfg.seed = sim::derive_seed(c.seed, 21);
    ClusterConfig ee = cfg;
    ee.protocol = Protocol::kEesmr;
    ClusterConfig shs = cfg;
    shs.protocol = Protocol::kSyncHotStuff;
    const std::size_t vc_blocks = ex.smoke() ? 4 : 6;
    const exp::ViewChangeCost ee_vc = exp::view_change_cost(
        c, ee, {1, protocol::ByzantineMode::kCrash, 4}, 2, vc_blocks,
        {{"protocol", "eesmr"}});
    const exp::ViewChangeCost shs_vc = exp::view_change_cost(
        c, shs, {1, protocol::ByzantineMode::kCrash, 4}, 2, vc_blocks,
        {{"protocol", "sync_hotstuff"}});
    const double per_block_gain =
        exp::run_steady(c, shs, blocks, {{"protocol", "sync_hotstuff"}})
            .energy_per_block_mj() -
        exp::run_steady(c, ee, blocks, {{"protocol", "eesmr"}})
            .energy_per_block_mj();

    exp::MetricRow row;
    row.set("eesmr_vc_total_mj", ee_vc.total_mj);
    row.set("synchs_vc_total_mj", shs_vc.total_mj);
    row.set("vc_ratio", ee_vc.total_mj / shs_vc.total_mj);
    row.set("paper_vc_ratio", 2.0);
    // N >= V*(psiV-psiV*)/(psiB*-psiB): blocks to amortize one VC.
    row.set("blocks_to_amortize_one_vc",
            (ee_vc.total_mj - shs_vc.total_mj) / per_block_gain);
    return row;
  });
  vc.print_table(2);

  exp::Report summary;
  summary.name = "summary";
  exp::MetricRow srow;
  srow.set("savings_pct_min", worst);
  srow.set("savings_pct_max", best);
  srow.set("paper_savings_range", "33-64%");
  summary.rows.push_back(std::move(srow));
  ex.add_section(std::move(summary)).print_table(0);

  ex.note("expected: ratio > 1 favors EESMR in the steady state; the "
          "bounded number of Byzantine leaders (<= f) makes the "
          "best-case-optimal trade worthwhile (Section 4)");
  return ex.finish();
}
