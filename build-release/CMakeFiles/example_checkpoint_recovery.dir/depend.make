# Empty dependencies file for example_checkpoint_recovery.
# This may be replaced when dependencies are built.
