#include "src/smr/chain.hpp"

#include <algorithm>
#include <stdexcept>

namespace eesmr::smr {

BlockStore::BlockStore() {
  const Block& g = genesis_block();
  blocks_.emplace(key(g.hash()), g);
}

bool BlockStore::add(const Block& block) {
  const std::string k = key(block.hash());
  if (blocks_.count(k) > 0) return true;
  const auto parent = blocks_.find(key(block.parent));
  if (parent == blocks_.end()) return false;
  if (block.height != parent->second.height + 1) {
    throw std::invalid_argument("BlockStore::add: height mismatch");
  }
  blocks_.emplace(k, block);
  return true;
}

void BlockStore::add_orphan(const Block& block) {
  orphans_.emplace(key(block.hash()), block);
}

void BlockStore::adopt_root(const Block& block) {
  blocks_.insert_or_assign(key(block.hash()), block);
}

void BlockStore::truncate_below(const BlockHash& root) {
  const Block* r = get(root);
  if (r == nullptr) {
    throw std::invalid_argument("BlockStore::truncate_below: unknown root");
  }
  const std::uint64_t floor = r->height;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->second.height < floor) {
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    if (it->second.height <= floor) {
      it = orphans_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Block> BlockStore::deepest_orphan() const {
  const Block* best = nullptr;
  for (const auto& [k, b] : orphans_) {
    if (best == nullptr || b.height < best->height) best = &b;
  }
  return best == nullptr ? std::nullopt : std::optional<Block>(*best);
}

std::vector<Block> BlockStore::adopt_orphans() {
  std::vector<Block> adopted;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (blocks_.count(key(it->second.parent)) > 0) {
        if (add(it->second)) adopted.push_back(it->second);
        it = orphans_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  return adopted;
}

bool BlockStore::contains(const BlockHash& h) const {
  return blocks_.count(key(h)) > 0;
}

const Block* BlockStore::get(const BlockHash& h) const {
  const auto it = blocks_.find(key(h));
  return it == blocks_.end() ? nullptr : &it->second;
}

bool BlockStore::extends(const BlockHash& descendant,
                         const BlockHash& ancestor) const {
  const Block* anc = get(ancestor);
  if (anc == nullptr) return false;
  const Block* cur = get(descendant);
  while (cur != nullptr) {
    if (cur->hash() == ancestor) return true;
    if (cur->height <= anc->height) return false;
    cur = get(cur->parent);
  }
  return false;
}

bool BlockStore::conflicts(const BlockHash& a, const BlockHash& b) const {
  return !extends(a, b) && !extends(b, a);
}

std::vector<Block> BlockStore::chain_between(const BlockHash& h,
                                             const BlockHash& until) const {
  std::vector<Block> out;
  const Block* cur = get(h);
  while (cur != nullptr && cur->hash() != until) {
    out.push_back(*cur);
    if (cur->height == 0) {
      throw std::invalid_argument("chain_between: `until` not an ancestor");
    }
    cur = get(cur->parent);
  }
  if (cur == nullptr) {
    throw std::invalid_argument("chain_between: broken chain");
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace eesmr::smr
