# Empty dependencies file for example_energy_planner.
# This may be replaced when dependencies are built.
