# Empty dependencies file for bench_table2_crypto.
# This may be replaced when dependencies are built.
