// End-to-end client demo: four replicas running EESMR serve two
// simulated clients issuing a skewed KV workload. Shows the §3 client
// interface — a result counts only once f+1 replicas sent identical
// signed acknowledgments — plus per-request latency and the replicated
// state agreeing across replicas.
#include <cstdio>

#include "src/harness/cluster.hpp"

using namespace eesmr;

int main() {
  harness::ClusterConfig cfg;
  cfg.protocol = harness::Protocol::kEesmr;
  cfg.n = 4;
  cfg.f = 1;
  cfg.clients = 2;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 2;
  cfg.workload.max_requests = 10;  // per client
  cfg.workload.gen.kind = client::GenSpec::Kind::kKv;
  cfg.workload.gen.kv_keys = 4;
  cfg.workload.gen.kv_read_fraction = 0.25;
  cfg.workload.gen.kv_zipf = 0.9;

  harness::Cluster cluster(cfg);
  const harness::RunResult r =
      cluster.run_until_accepted(20, sim::seconds(120));

  std::printf("accepted %llu/%llu requests in %.1f s of simulated time\n",
              static_cast<unsigned long long>(r.requests_accepted),
              static_cast<unsigned long long>(r.requests_submitted),
              sim::to_seconds(r.end_time));
  std::printf("latency p50 %.1f ms  p90 %.1f ms  p99 %.1f ms\n",
              sim::to_milliseconds(r.latency.p50()),
              sim::to_milliseconds(r.latency.p90()),
              sim::to_milliseconds(r.latency.p99()));

  for (std::size_t c = 0; c < cluster.client_count(); ++c) {
    const auto& cl = cluster.client(c);
    std::printf("client %zu: %llu accepted, every accept had >= %zu replies\n",
                c, static_cast<unsigned long long>(cl.accepted()),
                cl.min_replies_at_accept());
    // Show one accepted (req, result) pair.
    if (!cl.results().empty()) {
      const auto& [req_id, result] = *cl.results().begin();
      std::printf("  e.g. req %llu -> \"%s\"\n",
                  static_cast<unsigned long long>(req_id),
                  to_string(result).c_str());
    }
  }

  // The replicated KV state agrees on every replica.
  std::printf("state digests: ");
  for (NodeId i = 0; i < cfg.n; ++i) {
    const auto digest = cluster.replica(i).app()->state_digest();
    std::printf("%02x%02x%02x%02x ", digest[0], digest[1], digest[2],
                digest[3]);
  }
  std::printf("\n");
  return 0;
}
