// Sync HotStuff (Abraham, Malkhi, Nayak, Ren, Yin — S&P 2020): the
// state-of-the-art synchronous SMR protocol the paper compares against,
// reimplemented for the energy evaluation.
//
// Steady state: the leader's proposal carries a quorum certificate
// (f+1 signatures) for its parent; EVERY node signs and broadcasts a
// vote for every block; a block commits 2Δ after voting absent
// equivocation. This is the per-block certificate + explicit-vote cost
// that EESMR eliminates.
//
// Configured with `optimistic_fast_path`, this replica implements
// OptSync (Shrestha, Abraham, Ren, Nayak — CCS 2020): a responsive
// commit once ⌊3n/4⌋+1 votes arrive, at the price of verifying the
// larger optimistic quorum.
//
// The paper's measurement note ("we made simplifying assumptions in
// favor of Sync HotStuff, by partially implementing vote forwarding")
// corresponds to votes riding the same flood router as proposals.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/smr/replica.hpp"

namespace eesmr::baselines {

struct SyncHsOptions {
  /// OptSync mode: commit responsively on ⌊3n/4⌋+1 votes.
  bool optimistic_fast_path = false;
  /// Rotating-leader mode (Abraham-Nayak-Shrestha style, Table 3's
  /// "Rotating BFT SMR" row): the proposer of height h is node
  /// (h-1) mod n instead of a per-view leader. Equivocation detection
  /// and certificates work unchanged; the demotion path on a stalled
  /// proposer reuses the view-change machinery.
  bool rotating_leader = false;
};

/// Byzantine behaviours mirroring the EESMR fault experiments.
enum class SyncHsByzantineMode { kHonest, kCrash, kEquivocate };

struct SyncHsByzantineConfig {
  SyncHsByzantineMode mode = SyncHsByzantineMode::kHonest;
  std::uint64_t trigger_height = 0;
};

class SyncHsReplica final : public smr::ReplicaBase {
 public:
  SyncHsReplica(net::Network& net, smr::ReplicaConfig cfg, SyncHsOptions opts,
                SyncHsByzantineConfig byz, energy::Meter* meter);

  void start() override;

  [[nodiscard]] std::uint64_t view_changes() const { return v_cur_ - 1; }
  [[nodiscard]] std::size_t optimistic_quorum() const {
    return 3 * cfg_.n / 4 + 1;
  }
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Proposer of a given height (rotating mode) or the view leader.
  [[nodiscard]] NodeId proposer_for(std::uint64_t height) const {
    if (opts_.rotating_leader) {
      return static_cast<NodeId>((height - 1 + v_cur_ - 1) % cfg_.n);
    }
    return leader_of(v_cur_);
  }

 protected:
  void handle(NodeId from, const smr::Msg& msg) override;
  void on_chain_connected(const smr::Block& block) override;
  void on_low_water(const smr::Block& root) override;
  void on_state_transfer(const smr::Block& root) override;
  void on_restart() override;

 private:
  enum class Phase { kSteady, kQuitDelay, kNewView };

  void propose(std::uint64_t height);
  void handle_propose(NodeId from, const smr::Msg& msg);
  void vote_for(const smr::Block& block, const smr::BlockHash& h);
  void handle_vote(const smr::Msg& msg);
  void certify(const smr::BlockHash& h);
  void commit_timeout(const smr::BlockHash& h);

  void send_blame();
  void handle_blame(const smr::Msg& msg);
  void handle_blame_qc(const smr::Msg& msg);
  void on_blame_quorum();
  void quit_view();
  void handle_status(const smr::Msg& msg);
  void enter_new_view();
  void leader_propose_new_view();
  void handle_new_view_proposal(NodeId from, const smr::Msg& msg);

  void reset_blame_timer(sim::Duration d);
  void cancel_commit_timers();
  void buffer_future(const smr::Msg& msg);
  void drain_buffered();
  [[nodiscard]] bool cert_valid(const smr::QuorumCert& qc);
  [[nodiscard]] std::uint64_t qc_block_height(const smr::QuorumCert& qc) const;

  SyncHsOptions opts_;
  SyncHsByzantineConfig byz_;
  Phase phase_ = Phase::kSteady;
  bool started_ = false;
  bool crashed_ = false;
  bool commits_disabled_ = false;

  /// Highest certified block (the lock in Sync HotStuff).
  smr::BlockHash certified_tip_;
  std::uint64_t certified_height_ = 0;
  std::optional<smr::QuorumCert> tip_cert_;

  /// First proposal hash per height (equivocation detection).
  std::map<std::uint64_t, std::pair<smr::BlockHash, smr::Msg>> seen_;
  /// Votes per block hash.
  std::map<std::string, std::vector<smr::Msg>> votes_;
  std::set<std::string> voted_;  ///< block hashes we voted for
  /// First vote per height in the current view (cleared on view entry):
  /// an equivocating leader must not extract two votes — and two armed
  /// 2Δ commits — for conflicting same-height siblings from one node.
  std::map<std::uint64_t, smr::BlockHash> voted_height_;

  sim::Timer blame_timer_;
  std::map<std::string, sim::EventId> commit_timers_;

  std::vector<smr::Msg> blame_msgs_;
  std::set<NodeId> blamers_;
  bool blamed_ = false;

  std::map<NodeId, smr::QuorumCert> status_;
  bool nv_proposed_ = false;

  std::vector<smr::Msg> future_;
  std::vector<smr::Msg> retry_;
};

}  // namespace eesmr::baselines
