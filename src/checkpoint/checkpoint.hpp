// Checkpointing & state transfer.
//
// EESMR's §3 acceptance rule — f+1 identical signed execution results —
// extends naturally to state: every `interval` committed commands each
// replica snapshots its application, signs the (height, block, digest)
// triple, and floods a kCheckpoint message. f+1 matching signatures form
// a CheckpointCert: a *stable checkpoint* (the stability rule NxBFT and
// the Berger et al. BFT-IoT integration use). A stable checkpoint
//
//  * advances the low-water mark: blocks, dedup sets and reply caches
//    below it are garbage-collected, bounding replica memory under
//    sustained load;
//  * certifies a snapshot for state transfer: a replica that observes a
//    certificate beyond its own height (crash recovery, late joiner)
//    fetches the snapshot, verifies cert + digest, restores, and resumes
//    from the checkpoint instead of replaying the whole chain.
//
// This header holds the wire formats and the pure bookkeeping
// (signature tallies, pending/serving snapshots); the replica wires it
// to the network, the app, and the energy meter (src/smr/replica.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/ids.hpp"
#include "src/crypto/agg.hpp"
#include "src/crypto/signer.hpp"
#include "src/smr/block.hpp"
#include "src/smr/message.hpp"

namespace eesmr::checkpoint {

/// What a checkpoint signature covers: the committed height, the block
/// hash at that height (so a recovering replica can re-anchor its chain)
/// and the SHA-256 digest of the snapshot payload.
struct CheckpointId {
  std::uint64_t height = 0;
  smr::BlockHash block;  ///< hash of the committed block at `height`
  Bytes digest;          ///< sha256(SnapshotPayload::encode())

  /// Domain-separated signing preimage (tag + height + block + digest).
  [[nodiscard]] Bytes preimage() const;
  [[nodiscard]] Bytes encode() const;
  static CheckpointId decode(BytesView data);

  friend bool operator==(const CheckpointId&, const CheckpointId&) = default;
};

/// Payload of one kCheckpoint message: the id plus the author's dedicated
/// signature over CheckpointId::preimage(). The dedicated signature (not
/// the enclosing Msg signature) goes into the certificate, because Msg
/// signatures cover (view, round) and replicas checkpoint the same height
/// from different rounds/views.
struct CheckpointMsg {
  CheckpointId id;
  Bytes sig;

  [[nodiscard]] Bytes encode() const;
  static CheckpointMsg decode(BytesView data);
};

/// f+1 replica signatures over the same CheckpointId — a stable
/// checkpoint. Transferable: anyone can verify it against the directory.
/// Like QuorumCert it has two wire forms (smr::CertScheme): individual
/// (author, signature) pairs, or a generation-tagged {signer bitset, one
/// aggregate signature} that stays O(1) as n grows.
struct CheckpointCert {
  CheckpointId id;
  std::vector<std::pair<NodeId, Bytes>> sigs;  ///< (author, signature)

  smr::CertScheme scheme = smr::CertScheme::kIndividual;
  // Aggregate form only:
  std::uint64_t gen = 0;         ///< membership generation of the signers
  crypto::SignerBitset signers;  ///< who contributed shares
  Bytes agg_sig;                 ///< XOR-fold of the members' shares

  [[nodiscard]] Bytes encode() const;
  static CheckpointCert decode(BytesView data);

  /// Signer count / node-ids, across both forms.
  [[nodiscard]] std::size_t signer_count() const;
  [[nodiscard]] std::vector<NodeId> signer_list() const;

  /// Fold this (individual-form, share-signed) cert into the aggregate
  /// form over a `universe`-wide bitset tagged with `generation`.
  [[nodiscard]] CheckpointCert to_aggregate(std::size_t universe,
                                            std::uint64_t generation) const;

  /// Authors distinct, all replica-range (< n_replicas), all signatures
  /// valid over id.preimage(), and count >= quorum. Individual form only.
  [[nodiscard]] bool verify(const crypto::Keyring& keyring,
                            std::size_t quorum,
                            std::size_t n_replicas) const;

  /// Aggregate-form validity: count >= quorum, all signers replica-range,
  /// and the aggregate verifies over id.preimage(). (Signer membership in
  /// `gen` is the replica's check — it owns the policy history.)
  [[nodiscard]] bool verify_aggregate(const crypto::AggKeyring& agg,
                                      std::size_t quorum,
                                      std::size_t n_replicas) const;
};

/// One live entry of the exactly-once reply cache, carried inside a
/// snapshot so a restored replica deduplicates exactly like its peers.
struct ExecutedEntry {
  NodeId client = kNoNode;
  std::uint64_t req_id = 0;
  std::uint64_t height = 0;  ///< block height the request executed at
  Bytes result;

  friend bool operator==(const ExecutedEntry&, const ExecutedEntry&) =
      default;
};

/// Everything a snapshot carries beyond raw app state. All fields are
/// deterministic functions of the committed log prefix, so every correct
/// replica snapshotting the same height produces byte-identical payloads
/// (the certificate signs this encoding's hash):
///  * executed_cmds aligns the restored replica's checkpoint schedule;
///  * watermarks are the per-client contiguous-executed frontiers
///    (pool-side retransmit filtering once reply-cache entries are
///    garbage-collected);
///  * executed is the live reply cache (entries from the last interval),
///    so commit-time dedup stays identical across restored and
///    non-restored replicas.
struct SnapshotPayload {
  Bytes app_snapshot;
  std::uint64_t executed_cmds = 0;
  /// (client, contiguous executed frontier), ascending by client.
  std::vector<std::pair<NodeId, std::uint64_t>> watermarks;
  /// Reply-cache entries, ascending by (client, req_id).
  std::vector<ExecutedEntry> executed;

  [[nodiscard]] Bytes encode() const;
  static SnapshotPayload decode(BytesView data);
};

/// Per-replica checkpoint bookkeeping: the trigger schedule, pending
/// local snapshots awaiting stability, the signature tallies, and the
/// latest stable checkpoint (cert + snapshot served to lagging peers).
/// Pure logic — no I/O, no crypto; the replica charges the meter.
class CheckpointManager {
 public:
  /// `interval` = committed commands per checkpoint (0 disables);
  /// `quorum` = f+1.
  CheckpointManager(std::uint64_t interval, std::size_t quorum);

  [[nodiscard]] bool enabled() const { return interval_ > 0; }
  [[nodiscard]] std::uint64_t interval() const { return interval_; }

  // -- trigger schedule --------------------------------------------------------
  // A checkpoint is due every `interval` committed commands, or every
  // `interval` committed blocks since the previous checkpoint (the
  // replica tracks the block half), whichever comes first — so idle
  // chains of empty blocks stay truncatable and keep emitting the
  // certificates recovering replicas catch up from.
  /// Next cumulative command count at which a checkpoint is due.
  [[nodiscard]] std::uint64_t next_at() const { return next_at_; }
  [[nodiscard]] bool due(std::uint64_t executed_cmds) const {
    return enabled() && executed_cmds >= next_at_;
  }
  /// Advance past `executed_cmds` to the next interval multiple.
  void advance_schedule(std::uint64_t executed_cmds);

  // -- local snapshots ---------------------------------------------------------
  /// Remember a locally-taken snapshot until its checkpoint stabilizes.
  /// Keeps at most kMaxPending entries (oldest dropped).
  void record_local(const CheckpointId& id, Bytes payload, smr::Block block);

  // -- signature tallies -------------------------------------------------------
  /// Record one verified signature. Returns the certificate the first
  /// time a quorum assembles for a height above the current stable one
  /// (and installs it as stable, promoting a pending local snapshot to
  /// the serving slot when available). Heights at or below stable, and
  /// duplicate authors per height, are ignored.
  std::optional<CheckpointCert> add_signature(NodeId author,
                                              const CheckpointId& id,
                                              const Bytes& sig);

  /// Install an externally-obtained stable checkpoint (state transfer):
  /// becomes the serving snapshot.
  void install_stable(const CheckpointCert& cert, Bytes payload,
                      smr::Block block);

  /// Install an already-verified certificate without a payload (the
  /// aggregate scheme's collector-flooded kCheckpointCert). Promotes a
  /// matching pending local snapshot to the serving slot exactly like a
  /// quorum assembled by add_signature; returns false for heights at or
  /// below the current stable checkpoint.
  bool install_certified(const CheckpointCert& cert);

  // -- observability / serving -------------------------------------------------
  [[nodiscard]] std::uint64_t stable_height() const {
    return stable_ ? stable_->id.height : 0;
  }
  [[nodiscard]] const std::optional<CheckpointCert>& stable_cert() const {
    return stable_;
  }
  /// Serving snapshot bytes/block for `height`; nullptr unless `height`
  /// is the stable height and the snapshot is held locally.
  [[nodiscard]] const Bytes* payload_for(std::uint64_t height) const;
  [[nodiscard]] const smr::Block* block_for(std::uint64_t height) const;
  /// Local snapshots taken (observability).
  [[nodiscard]] std::uint64_t taken() const { return taken_; }
  [[nodiscard]] std::size_t tally_heights() const { return tallies_.size(); }

  /// Bound on local snapshots awaiting stability.
  static constexpr std::size_t kMaxPending = 4;

 private:
  struct Pending {
    CheckpointId id;
    Bytes payload;
    smr::Block block;
  };

  /// Remove `author`'s vote from the tally at `height` (it voted for a
  /// newer height; the old vote is obsolete).
  void drop_author_vote(NodeId author, std::uint64_t height);
  /// Drop tallies and author seats at or below `height`.
  void gc_tallies_below(std::uint64_t height);

  std::uint64_t interval_;
  std::size_t quorum_;
  std::uint64_t next_at_;
  std::uint64_t taken_ = 0;

  std::map<std::uint64_t, Pending> pending_;  ///< by height
  /// height -> encoded CheckpointId -> collected (author, sig) pairs.
  /// Bounded to one live vote per author (author_height_ tracks the
  /// seat), so Byzantine height floods cannot grow it past n entries.
  std::map<std::uint64_t, std::map<std::string,
                                   std::vector<std::pair<NodeId, Bytes>>>>
      tallies_;
  std::map<NodeId, std::uint64_t> author_height_;

  std::optional<CheckpointCert> stable_;
  Bytes serving_payload_;
  smr::Block serving_block_;
  bool serving_valid_ = false;
};

}  // namespace eesmr::checkpoint
