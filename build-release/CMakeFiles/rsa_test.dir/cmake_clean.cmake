file(REMOVE_RECURSE
  "CMakeFiles/rsa_test.dir/tests/rsa_test.cpp.o"
  "CMakeFiles/rsa_test.dir/tests/rsa_test.cpp.o.d"
  "rsa_test"
  "rsa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
