// Figure 2d: EESMR leader energy per SMR unit for block payloads of
// 16 / 128 / 256 bytes, as k varies. n = 15, BLE k-cast ring.
#include "bench/bench_util.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  bench::header("Figure 2d — EESMR leader energy vs k for block sizes",
                "Fig. 2d (§5.6, n = 15)");

  std::printf("%2s | %12s %12s %12s\n", "k", "16 B", "128 B", "256 B");
  std::printf("---+---------------------------------------\n");
  for (std::size_t k = 2; k <= 7; ++k) {
    std::printf("%2zu |", k);
    for (std::size_t bytes : {16u, 128u, 256u}) {
      ClusterConfig cfg;
      cfg.n = 15;
      cfg.f = k - 1;
      cfg.k = k;
      cfg.medium = energy::Medium::kBle;
      cfg.cmd_bytes = bytes;
      cfg.batch_size = 1;
      cfg.seed = 16;
      const RunResult r = bench::run_steady(cfg, 8);
      std::printf(" %12.1f", r.node_energy_per_block_mj(1));
    }
    std::printf("\n");
  }
  bench::note("expected shape: linear growth in k for every payload; "
              "larger blocks shift the curve up roughly proportionally to "
              "the BLE fragmentation count (paper: 'EESMR scales well "
              "with increasing message payloads')");
  return 0;
}
