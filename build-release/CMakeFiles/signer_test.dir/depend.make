# Empty dependencies file for signer_test.
# This may be replaced when dependencies are built.
