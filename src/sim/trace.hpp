// Lightweight structured trace sink for debugging simulation runs.
// Disabled by default; tests and examples can attach a sink, and the
// obs::Tracer event layer mirrors every typed event through one so a
// plain stderr sink shows the commit path in human-readable lines.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#include "src/sim/time.hpp"

namespace eesmr::sim {

/// Severity is deliberately coarse; traces are a debugging aid, not logs.
enum class TraceLevel { kDebug, kInfo, kWarn };

/// Where an event came from: the emitting node (replica/client id, -1
/// when not node-scoped) and an optional category tag (e.g. "commit",
/// "view", "fault").
struct TraceCtx {
  std::int64_t node = -1;
  const char* cat = nullptr;
};

class Trace {
 public:
  using Sink =
      std::function<void(SimTime, TraceLevel, const TraceCtx&,
                         const std::string&)>;

  /// Attach a sink. Passing nullptr detaches (tracing becomes free).
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool enabled() const { return static_cast<bool>(sink_); }

  void emit(SimTime t, TraceLevel lvl, const std::string& msg) const {
    if (sink_) sink_(t, lvl, TraceCtx{}, msg);
  }
  void emit(SimTime t, TraceLevel lvl, const TraceCtx& ctx,
            const std::string& msg) const {
    if (sink_) sink_(t, lvl, ctx, msg);
  }

  /// Sink that writes "[<ms>] LEVEL [n<node>/<cat>] <msg>" lines to stderr.
  static Sink stderr_sink();

 private:
  Sink sink_;
};

}  // namespace eesmr::sim
