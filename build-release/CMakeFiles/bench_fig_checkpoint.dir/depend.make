# Empty dependencies file for bench_fig_checkpoint.
# This may be replaced when dependencies are built.
