#include "src/crypto/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "src/common/hex.hpp"
#include "src/sim/rng.hpp"

namespace eesmr::crypto {
namespace {

using sim::Rng;

TEST(BigInt, ZeroBasics) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z.low_u64(), 0u);
}

TEST(BigInt, FromU64RoundTrip) {
  const BigInt v(0x0123456789abcdefull);
  EXPECT_EQ(v.low_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(v.to_hex(), "123456789abcdef");
  EXPECT_EQ(v.bit_length(), 57u);
}

TEST(BigInt, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef00ff";
  EXPECT_EQ(BigInt::from_hex(hex).to_hex(), hex);
  EXPECT_EQ(BigInt::from_hex("0").to_hex(), "0");
  EXPECT_EQ(BigInt::from_hex("00000001").to_hex(), "1");
}

TEST(BigInt, BytesRoundTrip) {
  const Bytes data = hex_decode("0102030405060708090a0b0c0d0e0f");
  const BigInt v = BigInt::from_bytes_be(data);
  EXPECT_EQ(v.to_bytes_be(data.size()), data);
  // Shorter canonical form drops the leading zero byte.
  const BigInt w = BigInt::from_bytes_be(hex_decode("0001ff"));
  EXPECT_EQ(hex_encode(w.to_bytes_be()), "01ff");
  // Padding extends on the left.
  EXPECT_EQ(hex_encode(w.to_bytes_be(4)), "000001ff");
}

TEST(BigInt, DecimalConversion) {
  EXPECT_EQ(BigInt(1234567890).to_decimal(), "1234567890");
  EXPECT_EQ(BigInt::from_hex("ffffffffffffffffffffffffffffffff").to_decimal(),
            "340282366920938463463374607431768211455");
}

TEST(BigInt, CompareOrdering) {
  const BigInt a(5), b(7), c = BigInt::from_hex("100000000");
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == BigInt(5));
  EXPECT_TRUE(c > b);
}

TEST(BigInt, AddSubRoundTrip64) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.next() >> 1, y = rng.next() >> 1;
    const BigInt a(x), b(y);
    EXPECT_EQ((a + b).low_u64(), x + y);
    const BigInt hi = a + b;
    EXPECT_EQ((hi - a).low_u64(), y);
  }
}

TEST(BigInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigInt(3) - BigInt(5), std::underflow_error);
}

TEST(BigInt, MulMatchesU128) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.next(), y = rng.next();
    const unsigned __int128 expect =
        static_cast<unsigned __int128>(x) * y;
    const BigInt prod = BigInt(x) * BigInt(y);
    EXPECT_EQ(prod.low_u64(), static_cast<std::uint64_t>(expect));
    EXPECT_EQ(prod.shr(64).low_u64(), static_cast<std::uint64_t>(expect >> 64));
  }
}

TEST(BigInt, DivModMatchesU64) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t x = rng.next();
    const std::uint64_t y = 1 + (rng.next() >> (rng.below(63)));
    auto [q, r] = BigInt::divmod(BigInt(x), BigInt(y));
    EXPECT_EQ(q.low_u64(), x / y);
    EXPECT_EQ(r.low_u64(), x % y);
  }
}

TEST(BigInt, DivByZeroThrows) {
  EXPECT_THROW(BigInt::divmod(BigInt(1), BigInt()), std::domain_error);
}

// Property sweep: a = q*b + r with 0 <= r < b, across many random widths.
// This exercises the Knuth-D normalization and add-back paths.
TEST(BigInt, DivModIdentityRandomWidths) {
  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const std::size_t abits = 1 + rng.below(700);
    const std::size_t bbits = 1 + rng.below(500);
    const BigInt a = BigInt::random_bits(rng, abits);
    const BigInt b = BigInt::random_bits(rng, bbits);
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a) << "abits=" << abits << " bbits=" << bbits;
  }
}

// Divisors chosen to trigger the q-hat correction / add-back branch:
// top limb of the divisor just above 2^31 with dense low limbs.
TEST(BigInt, DivModAddBackStress) {
  Rng rng(5);
  const BigInt b = BigInt::from_hex("80000000ffffffffffffffff");
  for (int i = 0; i < 200; ++i) {
    const BigInt a = BigInt::random_bits(rng, 96 + rng.below(160));
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigInt, ShiftsMatchMultiplication) {
  const BigInt v = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  EXPECT_EQ(v.shl(1), v + v);
  EXPECT_EQ(v.shl(32).shr(32), v);
  EXPECT_EQ(v.shl(67).shr(67), v);
  EXPECT_EQ(v.shr(200).to_hex(), "0");
  EXPECT_EQ(BigInt(1).shl(128).to_hex(), "100000000000000000000000000000000");
}

TEST(BigInt, BitAccess) {
  const BigInt v = BigInt::from_hex("5");  // 0b101
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(2));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigInt, ModExpMatchesU64) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t base = rng.below(1000);
    const std::uint64_t exp = rng.below(30);
    const std::uint64_t mod = 2 + rng.below(100000);
    std::uint64_t expect = 1 % mod;
    for (std::uint64_t j = 0; j < exp; ++j) expect = (expect * base) % mod;
    EXPECT_EQ(
        BigInt::mod_exp(BigInt(base), BigInt(exp), BigInt(mod)).low_u64(),
        expect);
  }
}

TEST(BigInt, ModExpFermat) {
  // 2^(p-1) = 1 mod p for prime p.
  const BigInt p = BigInt::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff");
  // This p is the secp192r1 prime.
  EXPECT_TRUE(BigInt::mod_exp(BigInt(2), p - BigInt(1), p).is_one());
}

TEST(BigInt, ModInverseSmall) {
  const auto inv = BigInt::mod_inverse(BigInt(3), BigInt(7));
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(inv->low_u64(), 5u);  // 3*5 = 15 = 1 mod 7
  EXPECT_FALSE(BigInt::mod_inverse(BigInt(6), BigInt(9)).has_value());
  EXPECT_FALSE(BigInt::mod_inverse(BigInt(0), BigInt(9)).has_value());
}

TEST(BigInt, ModInverseRandomProperty) {
  Rng rng(7);
  const BigInt m = BigInt::from_hex(
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_unit(rng, m);
    const auto inv = BigInt::mod_inverse(a, m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(BigInt::mod_mul(a, *inv, m).is_one());
  }
}

TEST(BigInt, ModInverseCompositeModulus) {
  // phi-style composite modulus as used in RSA keygen.
  const BigInt m = BigInt(65520);  // 2^4 * 3^2 * 5 * 7 * 13
  const BigInt a(65537 % 65520);
  const auto inv = BigInt::mod_inverse(BigInt(65537), m);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(BigInt::mod_mul(a, *inv, m).is_one());
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).low_u64(), 6u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(31)).low_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).low_u64(), 5u);
}

TEST(BigInt, ModAddSubStayReduced) {
  const BigInt m(1000);
  const BigInt a(999), b(999);
  const BigInt sum = BigInt::mod_add(a, b, m);
  EXPECT_TRUE(sum < m);
  EXPECT_EQ(sum.low_u64(), 998u);
  EXPECT_EQ(BigInt::mod_sub(BigInt(3), BigInt(7), m).low_u64(), 996u);
}

TEST(BigInt, RandomBitsExactLength) {
  Rng rng(8);
  for (std::size_t bits : {1u, 2u, 31u, 32u, 33u, 64u, 100u, 521u}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
    }
  }
}

TEST(BigInt, RandomBelowInRange) {
  Rng rng(9);
  const BigInt bound = BigInt::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(BigInt::random_below(rng, bound) < bound);
    EXPECT_FALSE(BigInt::random_unit(rng, bound).is_zero());
  }
}

}  // namespace
}  // namespace eesmr::crypto
