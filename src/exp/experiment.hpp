// Experiment facade: the shared CLI and lifecycle of every bench binary.
//
//   exp::Experiment ex("fig3_eesmr_vs_synchs", "Fig. 3 (§5.7)", argc, argv);
//   exp::Grid grid; grid.axis_of("f", fs);
//   exp::Report& rep = ex.run("main", grid, [&](const exp::RunContext& c) {
//     ...build a ClusterConfig from c, run it...
//     exp::MetricRow row; row.set("mJ_per_block", ...); return row;
//   });
//   rep.print_table();
//   return ex.finish();   // writes BENCH_<name>.json (+ optional CSV)
//
// Shared flags (every bench accepts them):
//   --threads N    worker threads for the run matrix (default: min(8, cores))
//   --workers N    crypto verification workers per cluster (default 0 =
//                  inline pipeline). Speculative signature checks run on
//                  N pool threads; results join in scheduler event
//                  order, so all outputs stay byte-identical to N=0.
//   --smoke        trimmed-down grids/durations for CI smoke runs
//   --seed S       base seed; each run derives its own via sim::derive_seed
//   --json-out P   metrics file path (default: BENCH_<name>.json in cwd)
//   --csv-out P    additionally write flat CSV
//   --no-json      skip the metrics file (stdout only)
//   --prom-out P   Prometheus text exposition of every run's registry,
//                  samples labeled {section, run}
//   --trace-out P  Chrome trace-event JSON of every run's commit-path
//                  event stream (open in Perfetto / chrome://tracing)
//   --trace-requests K
//                  sample K client requests per run and stitch their
//                  submit→commit→reply lifecycle into the trace as
//                  Chrome flow events (needs --trace-out to be visible)
//
// Determinism contract: with a fixed seed, stdout and the JSON/CSV/
// Prometheus/trace files are byte-identical at any --threads value.
// Everything thread- or wall-clock-dependent goes to stderr.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/exp/grid.hpp"
#include "src/exp/metrics.hpp"
#include "src/exp/runner.hpp"

namespace eesmr::exp {

struct Options {
  std::size_t threads = 0;  ///< 0 = default_threads()
  std::size_t workers = 0;  ///< crypto pipeline workers per cluster
  bool smoke = false;
  std::uint64_t seed = 1;
  std::string json_out;     ///< empty = BENCH_<name>.json
  std::string csv_out;      ///< empty = no CSV
  std::string prom_out;     ///< empty = no Prometheus exposition
  std::string trace_out;    ///< empty = no Chrome trace
  std::size_t trace_requests = 0;  ///< sampled requests per run (flows)
  bool write_json = true;
  std::vector<std::string> extra;  ///< unrecognized args (bench-specific)
};

/// Parse the shared CLI. Unknown arguments land in Options::extra.
/// Throws std::invalid_argument on a malformed value.
Options parse_cli(int argc, char** argv, std::uint64_t default_seed);

class Experiment {
 public:
  /// Parses the CLI, prints the header (name + paper reference) to
  /// stdout and the runner configuration to stderr. `default_seed` is
  /// the per-bench seed used when --seed is absent, so each figure
  /// keeps its historical default randomness.
  Experiment(std::string name, std::string paper_ref, int argc, char** argv,
             std::uint64_t default_seed = 1);

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] bool smoke() const { return opts_.smoke; }
  [[nodiscard]] std::uint64_t seed() const { return opts_.seed; }
  [[nodiscard]] std::size_t threads() const;
  /// Bench-specific flag passthrough (e.g. "--host-timing"). Querying a
  /// flag marks it as recognized; run()/finish() reject any leftover
  /// arguments nobody asked about, so a CLI typo (--smoek, --thread)
  /// fails the run instead of silently changing its configuration.
  [[nodiscard]] bool flag(std::string_view name) const;

  /// Clamp the runner to one worker thread (overriding --threads), for
  /// benches whose measurements would be skewed by concurrency — e.g.
  /// --host-timing wall-clock loops contending for cores. Logs the
  /// reason to stderr.
  void force_serial(const char* reason);

  /// Run one section's grid through the parallel runner; the returned
  /// Report lives until finish() and may be post-processed (derived
  /// columns, extra rows) before printing/serialization.
  Report& run(std::string section, const Grid& grid, const RunFn& fn);

  /// Add an already-assembled section (analytic post-passes).
  Report& add_section(Report report);

  /// Print `text` to stdout and record it in the current section's
  /// notes (it ends up in the JSON, so the expected-shape commentary
  /// travels with the data).
  void note(const std::string& text);

  /// Write BENCH_<name>.json (+ CSV when requested). Returns the
  /// process exit code: 0 on success, 1 when writing failed, 2 when
  /// the command line carried arguments no one recognized.
  int finish();

 private:
  std::string name_;
  std::string paper_ref_;
  Options opts_;
  /// True (after printing an ERROR per offender) when the command line
  /// carried arguments neither the shared CLI nor flag() recognized.
  [[nodiscard]] bool report_unknown_args() const;

  /// Extra args a bench queried via flag() (recognized bench-specific
  /// flags); the rest are typos run()/finish() report.
  mutable std::vector<std::string> recognized_extra_;
  bool serial_only_ = false;
  std::vector<std::unique_ptr<Report>> sections_;

  /// Per-section observability artifacts (one slot per grid point),
  /// collected only when --prom-out / --trace-out asked for them and
  /// assembled into the output files by finish().
  struct SectionArtifacts {
    std::string section;
    std::vector<RunArtifacts> slots;
  };
  std::vector<SectionArtifacts> artifacts_;
};

}  // namespace eesmr::exp
