// Checkpoint-interval sweep: the memory-bound vs energy-overhead vs
// catch-up-latency trade-off of the checkpointing & state-transfer
// subsystem (src/checkpoint/), for EESMR and Sync HotStuff.
//
// Every `interval` committed commands each replica snapshots its app,
// signs (height, block, state digest), and floods a kCheckpoint; f+1
// matching signatures form a stable checkpoint that truncates the log
// and the dedup sets (low-water-mark GC) and certifies a snapshot for
// replica catch-up. Shorter intervals bound memory tighter and let a
// late joiner recover from a fresher snapshot, at the price of more
// checkpoint crypto and flooding — the axis this figure sweeps.
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/harness/cluster.hpp"
#include "src/exp/record.hpp"

using namespace eesmr;
using harness::Cluster;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

namespace {

constexpr sim::Duration kJoinAt = sim::seconds(10);

ClusterConfig base_cfg(Protocol protocol, std::uint64_t interval,
                       std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = seed;
  cfg.batch_size = 8;
  cfg.clients = 2;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 4;
  cfg.checkpoint_interval = interval;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex(
      "fig_checkpoint",
      "f+1 identical signed state digests — the Section 3 acceptance rule "
      "applied to state (NxBFT-style stable checkpoints)",
      argc, argv, /*default_seed=*/42);

  const sim::Duration run_time =
      ex.smoke() ? sim::seconds(10) : sim::seconds(40);
  std::vector<std::uint64_t> intervals = {0, 32, 128, 512};
  if (ex.smoke()) intervals = {0, 32};
  const std::vector<Protocol> protocols = {Protocol::kEesmr,
                                           Protocol::kSyncHotStuff};

  // -- steady state: memory bound vs energy overhead -------------------------
  exp::Grid steady;
  steady.axis("protocol", {"EESMR", "SyncHS"});
  steady.axis_of("interval", intervals);

  exp::Report& mem = ex.run("memory_energy", steady,
                            [&](const exp::RunContext& c) {
    ClusterConfig cfg = base_cfg(protocols[c.at("protocol")],
                                 intervals[c.at("interval")], c.seed);
    exp::prepare(c, cfg);
    Cluster cluster(cfg);
    const RunResult r = cluster.run_for(run_time);
    exp::observe(c, r);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    const harness::RunSummary s = r.summarize();
    exp::MetricRow row;
    row.set("blocks", s.min_committed);
    row.set("log_max", s.max_retained_log);
    row.set("store_max", s.max_store_blocks);
    row.set("dedup_max", s.max_dedup_entries);
    row.set("accepted_per_sec", s.accepted_per_sec);
    row.set("mj_per_block", s.energy_per_block_mj);
    row.set("run", exp::run_result_json(r));
    return row;
  });
  // Energy overhead vs the interval=0 baseline of the same protocol —
  // a formatting pass over the committed rows.
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    const double baseline =
        mem.rows[p * intervals.size()].number("mj_per_block");
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      exp::MetricRow& row = mem.rows[p * intervals.size() + i];
      if (i == 0 || baseline <= 0) {
        row.skip("overhead_pct");
      } else {
        row.set("overhead_pct",
                100.0 * (row.number("mj_per_block") - baseline) / baseline);
      }
    }
  }
  ex.note("log/store/dedup sizes are per-replica maxima at run end; "
          "checkpoint crypto and transfer bytes are metered like all "
          "other traffic");
  mem.print_table(1);

  // -- catch-up: replica 3 joins late (crash recovery / late spawn) ----------
  exp::Grid catchup;
  catchup.axis("protocol", {"EESMR", "SyncHS"});
  catchup.axis_of("interval", intervals);

  exp::Report& rec = ex.run("catchup", catchup,
                            [&](const exp::RunContext& c) {
    ClusterConfig cfg = base_cfg(protocols[c.at("protocol")],
                                 intervals[c.at("interval")], c.seed);
    cfg.workload.max_requests = 600;  // traffic persists past the join
    cfg.late_starts.push_back({3, kJoinAt});
    exp::prepare(c, cfg);
    Cluster cluster(cfg);
    const RunResult r = cluster.run_for(run_time);
    exp::observe(c, r);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    exp::MetricRow row;
    row.set("state_transfers", r.state_transfers);
    row.set("recovery_ms", sim::to_milliseconds(r.max_recovery_latency));
    row.set("joiner_blocks", r.footprints[3].committed_blocks);
    row.set("cluster_blocks", r.max_committed());
    row.set("joiner_mj", r.node_energy_mj(3));
    row.set("run", exp::run_result_json(r));
    return row;
  });
  rec.print_table(1);
  ex.note("interval 0 = checkpointing off: no snapshot exists, so "
          "recovery degrades to block-by-block backward chain sync where "
          "the protocol's acceptance rules permit it, or stalls where "
          "they do not (join happens at t=10s)");
  return ex.finish();
}
