# Empty dependencies file for bench_fig3_eesmr_vs_synchs.
# This may be replaced when dependencies are built.
