file(REMOVE_RECURSE
  "CMakeFiles/ecdsa_test.dir/tests/ecdsa_test.cpp.o"
  "CMakeFiles/ecdsa_test.dir/tests/ecdsa_test.cpp.o.d"
  "ecdsa_test"
  "ecdsa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
