// Client-side measurement vocabulary: per-request latency samples with
// on-demand quantiles (the p50/p90/p99 columns of the latency figures).
//
// Backed by an obs::Histogram so the registry's bucketed exposition and
// the exact quantiles reported here are fed by the same observations and
// cannot drift apart; the raw samples are kept for exact nearest-rank
// quantiles (the bucket layout is export resolution, not measurement
// resolution).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/sim/time.hpp"

namespace eesmr::client {

class LatencyHistogram {
 public:
  void add(sim::Duration sample) {
    samples_.push_back(sample);
    hist_.observe(sim::to_milliseconds(sample));
    sorted_ = false;
  }

  void merge(const LatencyHistogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    hist_.merge(other.hist_);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// The same observations bucketed (milliseconds) for registry export.
  [[nodiscard]] const obs::Histogram& buckets() const { return hist_; }

  /// Nearest-rank quantile (index ceil(q*n) - 1), q in [0, 1]; 0 when
  /// no samples.
  [[nodiscard]] sim::Duration quantile(double q) const {
    if (samples_.empty()) return 0;
    sort_once();
    const double clamped = std::clamp(q, 0.0, 1.0);
    const double n = static_cast<double>(samples_.size());
    std::size_t rank =
        clamped <= 0.0
            ? 0
            : static_cast<std::size_t>(std::ceil(clamped * n)) - 1;
    if (rank >= samples_.size()) rank = samples_.size() - 1;
    return samples_[rank];
  }

  [[nodiscard]] sim::Duration p50() const { return quantile(0.50); }
  [[nodiscard]] sim::Duration p90() const { return quantile(0.90); }
  [[nodiscard]] sim::Duration p99() const { return quantile(0.99); }
  [[nodiscard]] sim::Duration max() const {
    if (samples_.empty()) return 0;
    sort_once();
    return samples_.back();
  }

  [[nodiscard]] double mean_ms() const {
    if (samples_.empty()) return 0.0;
    double total = 0;
    for (sim::Duration s : samples_) total += sim::to_milliseconds(s);
    return total / static_cast<double>(samples_.size());
  }

 private:
  void sort_once() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<sim::Duration> samples_;
  obs::Histogram hist_{obs::Histogram::default_latency_buckets_ms()};
  mutable bool sorted_ = true;
};

}  // namespace eesmr::client
