// CPS scenario from the paper's introduction: a field of battery-powered
// soil-nutrient sensors must agree on a shared state (e.g. aggregated
// readings reported at sporadic base-station contacts), with some sensors
// possibly compromised (the DHS precision-agriculture threat model).
//
// The sensors form a k-cast ring (each node's radio reaches its k ring
// successors), run EESMR over BLE advertisements, and we project battery
// life from the measured energy.
#include <cstdio>

#include "src/harness/cluster.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  const std::size_t n = 10;  // sensors
  const std::size_t k = 3;   // radio reach: 3 ring successors
  const std::size_t f = 2;   // tolerated compromised sensors (f < k)

  // Sanity-check the deployment against the hypergraph theory (App. A).
  const auto topology = net::Hypergraph::kcast_ring(n, k);
  sim::Rng rng(7);
  std::printf("topology: %zu-node ring of %zu-casts\n", n, k);
  std::printf("  d_in = d_out = %zu, D_in = %zu, D_out = %zu\n",
              topology.min_d_in(), topology.cap_d_in(), topology.cap_d_out());
  std::printf("  Lemma A.5  f < min(d_in, d_out):      f=%zu -> %s\n", f,
              topology.satisfies_fault_bound(f) ? "ok" : "VIOLATED");
  std::printf("  Lemma A.6  f < k*min(D_in, D_out):    f=%zu -> %s\n", f,
              topology.satisfies_kcast_bound(f, k) ? "ok" : "VIOLATED");
  std::printf("  partition resistance for f=%zu:        %s\n", f,
              topology.partition_resistant(f, rng) ? "ok" : "VIOLATED");
  std::printf("  flood diameter: %zu hops\n\n", topology.diameter());

  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = n;
  cfg.f = f;
  cfg.k = k;
  cfg.medium = energy::Medium::kBle;
  cfg.cmd_bytes = 16;  // one sensor reading
  cfg.scheme = crypto::SchemeId::kRsa1024;

  Cluster cluster(cfg);
  const std::size_t blocks = 10;
  const RunResult r = cluster.run_until_commits(blocks, sim::seconds(600));

  std::printf("agreed on %zu state updates, safety=%s, view changes=%llu\n",
              r.min_committed(), r.safety_ok() ? "ok" : "VIOLATED",
              static_cast<unsigned long long>(r.view_changes));

  const double per_block = r.energy_per_block_mj() / n;  // per sensor
  std::printf("energy per sensor per agreement: %.1f mJ\n", per_block);

  // Battery-life projection: a CR2477 coin cell holds ~3.4 kJ. The paper
  // notes ~0.3 mW sleep draw; one agreement per hour adds the SMR cost.
  const double battery_mj = 3.4e6;
  const double sleep_per_hour_mj = energy::kSleepPowerMw * 3600.0;
  const double hours =
      battery_mj / (sleep_per_hour_mj + per_block);
  std::printf("projected lifetime at 1 agreement/hour on a 3.4 kJ cell: "
              "%.0f hours (%.1f months)\n",
              hours, hours / (24 * 30));
  std::printf("(sleep draw alone would allow %.1f months — the SMR "
              "protocol's efficiency decides the gap)\n",
              battery_mj / sleep_per_hour_mj / (24 * 30));
  return 0;
}
