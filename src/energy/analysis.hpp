// Section-4 analysis framework: closed-form energy models ψ for each
// protocol, the best-case/worst-case decision machinery (ν_f bound,
// amortization bound, energy-fault bound (EB)) and the Fig-1 feasible
// region sweep against the trusted-baseline protocol.
//
// These are *analytical operation-count models* — the counterpart of the
// paper's MATLAB analysis. The discrete-event simulator (src/harness)
// measures the same quantities empirically; tests cross-check the two.
#pragma once

#include <cstddef>
#include <vector>

#include "src/crypto/signer.hpp"
#include "src/energy/cost_model.hpp"

namespace eesmr::energy {

/// How protocol-level broadcasts are realized.
enum class CommMode : std::uint8_t {
  kUnicastFullMesh,  ///< every broadcast = n-1 unicasts; flooding forwards
  kKcastRing,        ///< §5.6 topology: D_out = 1 k-cast, D_in = k
};

/// The parameter vector X = (n, f, m, S, R, σs, σv) from Section 4, plus
/// the communication-modality knobs the paper's CPS analysis adds.
struct SystemParams {
  std::size_t n = 4;                  ///< number of nodes
  std::size_t f = 1;                  ///< tolerated Byzantine faults
  std::size_t m = 256;                ///< payload (Cmds) bytes per block
  std::size_t k = 1;                  ///< k-cast degree (CommMode::kKcastRing)
  std::size_t header_bytes = 48;      ///< fixed per-message framing + hashes
  crypto::SchemeId scheme = crypto::SchemeId::kRsa1024;
  CommMode comm = CommMode::kUnicastFullMesh;
  Medium node_medium = Medium::kWifi;     ///< links among the CPS nodes
  Medium control_medium = Medium::k4gLte; ///< uplink to the trusted node
  double kcast_reliability = 0.9999;      ///< target for BLE k-casts
};

/// ψ decomposition (mJ per consensus unit, summed over all nodes):
/// best case ψ_B, view-change surcharge ψ_V, worst case ψ_W = ψ_B + ψ_V.
struct PsiBreakdown {
  double best = 0;
  double view_change = 0;
  [[nodiscard]] double worst() const { return best + view_change; }
};

/// EESMR (Algorithm 2): steady state uses a single leader signature and
/// proposal flooding; the view change pays blame/commit-cert/new-view.
PsiBreakdown psi_eesmr(const SystemParams& x);

/// Sync HotStuff: per-block quorum certificate (f+1 signatures) inside
/// proposals plus an explicit vote broadcast per node per block.
PsiBreakdown psi_sync_hotstuff(const SystemParams& x);

/// OptSync: optimistic fast path quorums of ⌊3n/4⌋+1 votes.
PsiBreakdown psi_optsync(const SystemParams& x);

/// Trusted-baseline protocol (§5.1): every node ships its requests to an
/// externally-powered control node over the expensive medium and receives
/// the ordered block back. Returns mJ per consensus unit over all nodes.
double psi_trusted_baseline(const SystemParams& x);

/// ν_f bound: the maximum ratio V/N of view changes to blocks for which
/// protocol ψ is still no worse than ψ*. +inf if ψ dominates everywhere,
/// 0 if ψ never wins (§4, "(Un)Favorable conditions").
double max_view_change_ratio(const PsiBreakdown& psi,
                             const PsiBreakdown& star);

/// N ≥ V (ψ_V − ψ*_V)/(ψ*_B − ψ_B): blocks needed to amortize V view
/// changes. Returns +inf when ψ_B ≥ ψ*_B (no best-case advantage).
double min_blocks_to_amortize(const PsiBreakdown& psi,
                              const PsiBreakdown& star, double view_changes);

/// Energy-fault bound (EB):
/// f_e ≤ (ψ^Baseline − ψ^EESMR_B) / (ψ^EESMR_B + ψ^EESMR_V).
double energy_fault_bound(double psi_baseline, const PsiBreakdown& eesmr);

/// One cell of the Fig-1 grid.
struct FeasiblePoint {
  std::size_t n;
  std::size_t m;
  double eesmr_mj;
  double baseline_mj;
  double diff_mj;  ///< EESMR − baseline; negative → EESMR preferable
};

/// Sweep ψ^EESMR_B − ψ^Baseline over (n, m), Fig-1 style.
std::vector<FeasiblePoint> feasible_region(const std::vector<std::size_t>& ns,
                                           const std::vector<std::size_t>& ms,
                                           SystemParams base);

}  // namespace eesmr::energy
