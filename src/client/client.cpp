#include "src/client/client.hpp"

#include <cmath>
#include <stdexcept>

#include "src/common/serde.hpp"
#include "src/energy/cost_model.hpp"
#include "src/smr/message.hpp"

namespace eesmr::client {

Client::Client(net::Network& net, ClientConfig cfg, energy::Meter* meter)
    : router_(net, cfg.id, this),
      cfg_(std::move(cfg)),
      meter_(meter),
      sched_(net.scheduler()),
      rng_(cfg_.seed ^ (0xC11E00ull + cfg_.id)) {
  if (!cfg_.keyring) throw std::invalid_argument("Client: keyring required");
  if (cfg_.cert_scheme == smr::CertScheme::kAggregate &&
      (!cfg_.agg || cfg_.agg->size() < cfg_.n)) {
    throw std::invalid_argument(
        "Client: aggregate scheme needs agg keys covering all replicas");
  }
  if (cfg_.id < cfg_.n) {
    throw std::invalid_argument("Client: id must be outside the replica range");
  }
  if (cfg_.keyring->size() <= cfg_.id) {
    throw std::invalid_argument("Client: keyring does not cover client id");
  }
  // Clients are leaves: they consume replies but never relay protocol
  // traffic (the network side is the `relay` vector passed to the
  // Network constructor).
  router_.set_forwarding(false);
  gen_ = make_generator(cfg_.workload.gen, rng_.next());

  // Open the typed request channel. The legacy retry_after knob folds in
  // as the submission timeout when the policy does not set one.
  net::DisseminationPolicy policy = cfg_.submit;
  if (policy.timeout <= 0 && cfg_.retry_after > 0) {
    policy.timeout = cfg_.retry_after;
  }
  std::vector<NodeId> replicas;
  replicas.reserve(cfg_.n);
  for (NodeId r = 0; r < cfg_.n; ++r) replicas.push_back(r);
  channel_ = std::make_unique<net::Channel>(
      router_, energy::Stream::kRequest, policy, std::move(replicas));
}

void Client::start() {
  if (started_) return;
  started_ = true;
  if (cfg_.workload.mode == WorkloadSpec::Mode::kClosedLoop) {
    fill_window();
  } else {
    schedule_next_arrival();
  }
}

void Client::fill_window() {
  while (budget_left() && pending_.size() < cfg_.workload.outstanding) {
    submit_one();
  }
}

void Client::schedule_next_arrival() {
  if (!budget_left()) return;
  // Poisson process: exponential inter-arrival at rate_per_sec.
  const double rate = std::max(cfg_.workload.rate_per_sec, 1e-9);
  const double gap_s = -std::log(1.0 - rng_.uniform()) / rate;
  const auto gap = std::max<sim::Duration>(
      1, static_cast<sim::Duration>(gap_s * 1e6));
  sched_.after(gap, "client_arrival", [this] {
    if (!budget_left()) return;
    submit_one();
    schedule_next_arrival();
  });
}

void Client::submit_one() {
  const std::uint64_t req_id = next_req_id_++;
  pending_.emplace(req_id, Pending(sched_.now(), cfg_.f));
  ++submitted_;
  Bytes wire = build_request(req_id, gen_->next());
  if (cfg_.profiler != nullptr) {
    cfg_.profiler->count_codec("client", "encode", energy::Stream::kRequest,
                               wire.size());
    // Request sampling claims slots in submission order; the flow
    // begins here and ends at the f+1 accept.
    if (cfg_.profiler->sample_request(cfg_.id, req_id)) {
      cfg_.profiler->attribute(cfg_.id, req_id, energy::Stream::kRequest,
                               wire.size());
      if (cfg_.tracer != nullptr) {
        const sim::SimTime ts = sched_.now();
        cfg_.tracer->complete(ts, cfg_.id, "request", "submit", 1,
                              {{"client", exp::Json(cfg_.id)},
                               {"req_id", exp::Json(req_id)}});
        cfg_.tracer->flow_begin(ts, cfg_.id, "request", "submit",
                                prof::Profiler::flow_id(cfg_.id, req_id));
      }
    }
  }
  // The channel disseminates per the submission policy and, when a
  // timeout is configured, re-sends (rotating the target subset under
  // TargetedSubset) until complete() on acceptance.
  channel_->submit(req_id, std::move(wire));
}

Bytes Client::build_request(std::uint64_t req_id, Bytes op) {
  smr::ClientRequest req;
  req.client = cfg_.id;
  req.req_id = req_id;
  req.op = std::move(op);
  // The signature lives inside the request so replicas can re-verify it
  // at commit time; the transport Msg needs no second signature.
  req.sig = cfg_.keyring->signer(cfg_.id).sign(req.preimage());
  if (meter_ != nullptr) {
    meter_->charge(energy::Category::kSign,
                   energy::sign_energy_mj(cfg_.keyring->scheme()));
  }
  if (cfg_.profiler != nullptr) {
    cfg_.profiler->count_crypto("client", "sign", "request");
  }

  smr::Msg m;
  m.type = smr::MsgType::kRequest;
  m.view = 0;
  m.round = req_id;
  m.author = cfg_.id;
  m.data = req.encode();
  return m.encode();
}

void Client::on_deliver(NodeId, BytesView payload) {
  smr::Msg m;
  try {
    m = smr::Msg::decode(payload);
  } catch (const SerdeError&) {
    return;
  }
  if (m.type != smr::MsgType::kReply) return;  // flooded protocol traffic
  if (cfg_.profiler != nullptr) {
    cfg_.profiler->count_codec("client", "decode", energy::Stream::kReply,
                               payload.size());
  }
  if (m.author >= cfg_.n) return;              // only replicas may reply
  const auto rep = smr::ClientReply::decode(m.data);
  if (!rep.has_value()) return;
  // The signed reply names its client: an acknowledgment for another
  // client's colliding req_id cannot be replayed to us.
  if (rep->client != cfg_.id) return;
  const auto it = pending_.find(rep->req_id);
  if (it == pending_.end()) return;  // unknown or already accepted
  // Only now pay for the signature check: late replies past acceptance
  // and other clients' acknowledgments cost nothing. Under the aggregate
  // scheme the reply carries a 48-byte share over the acceptance
  // preimage (client, req_id, result) instead of a directory signature
  // over the Msg — the same bytes that later fold into the cert.
  const bool aggregate = cfg_.cert_scheme == smr::CertScheme::kAggregate;
  if (meter_ != nullptr) {
    meter_->charge(energy::Category::kVerify,
                   aggregate
                       ? energy::agg_verify_energy_mj(1)
                       : energy::verify_energy_mj(cfg_.keyring->scheme()));
  }
  if (cfg_.profiler != nullptr) {
    cfg_.profiler->count_crypto("client", "verify", "reply");
  }
  // Join the speculative pipeline (kReply frames are speculated at
  // transmit time); the energy/profiler charge above is unconditional,
  // so accounting is identical whether the physical check ran here, on
  // a worker, or for an earlier receiver of the same frame.
  bool sig_ok;
  const Bytes preimage =
      aggregate
          ? smr::acceptance_preimage(rep->client, rep->req_id, rep->result)
          : m.preimage();
  const auto check = [&] {
    return aggregate ? cfg_.agg->verify_share(m.author, preimage, m.sig)
                     : cfg_.keyring->verify(m.author, preimage, m.sig);
  };
  if (cfg_.pipeline != nullptr) {
    sig_ok = cfg_.pipeline->join(
        crypto::verify_key(m.author, preimage, m.sig), check);
  } else {
    sig_ok = check();
  }
  if (!sig_ok) return;

  // The verified reply names the replier's current leader: steer the
  // next submissions there (TargetedSubset only; see Channel::prefer).
  if (cfg_.leader_hints && rep->leader != kNoNode) {
    channel_->prefer(rep->leader);
  }

  Pending& p = it->second;
  if (aggregate) p.shares[m.author] = {rep->result, m.sig};
  const auto result = p.acks.add(m.author, rep->result);
  if (!result.has_value()) return;

  // Fold the f+1 shares matching the accepted result into one O(1)
  // transferable acceptance certificate.
  if (aggregate) {
    smr::AcceptanceCert cert;
    cert.client = cfg_.id;
    cert.req_id = rep->req_id;
    cert.result = *result;
    cert.signers = crypto::SignerBitset(cfg_.n);
    cert.agg_sig = crypto::AggKeyring::empty_aggregate();
    for (const auto& [author, rs] : p.shares) {
      if (rs.first != *result) continue;
      if (cert.signers.count() > cfg_.f) break;  // f+1 shares suffice
      cert.signers.set(author);
      crypto::AggKeyring::fold_into(cert.agg_sig, rs.second);
    }
    if (meter_ != nullptr) {
      meter_->charge(energy::Category::kSign,
                     energy::agg_combine_energy_mj(cert.signers.count()));
    }
    if (cfg_.profiler != nullptr) {
      cfg_.profiler->count_codec("client", "encode", energy::Stream::kReply,
                                 cert.encode().size());
    }
    ++certs_folded_;
    if (acceptance_certs_.size() < kMaxStoredResults) {
      acceptance_certs_.emplace(rep->req_id, std::move(cert));
    }
  }

  // First time this request reaches f+1 identical results: accept.
  latency_.add(sched_.now() - p.submitted_at);
  const std::size_t replies = p.acks.replies();
  min_replies_at_accept_ = accepted_ == 0
                               ? replies
                               : std::min(min_replies_at_accept_, replies);
  ++accepted_;
  if (cfg_.profiler != nullptr && cfg_.tracer != nullptr &&
      cfg_.profiler->is_sampled(cfg_.id, rep->req_id)) {
    const sim::SimTime ts = sched_.now();
    cfg_.tracer->complete(ts, cfg_.id, "request", "accept", 1,
                          {{"client", exp::Json(cfg_.id)},
                           {"req_id", exp::Json(rep->req_id)},
                           {"replies", exp::Json(replies)}});
    cfg_.tracer->flow_end(ts, cfg_.id, "request", "accept",
                          prof::Profiler::flow_id(cfg_.id, rep->req_id));
  }
  if (results_.size() < kMaxStoredResults) results_[rep->req_id] = *result;
  channel_->complete(rep->req_id);
  pending_.erase(it);

  if (cfg_.workload.mode == WorkloadSpec::Mode::kClosedLoop) fill_window();
}

}  // namespace eesmr::client
