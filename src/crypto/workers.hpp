// Deterministic parallel crypto pipeline.
//
// The simulator is single-threaded and crypto-dominated: signature and
// attestation verifications run inline inside sim::Scheduler events. This
// module moves the *physical execution* of those verifications onto a
// fixed-size worker pool without moving any *decision* off the sim
// thread, so every output stays byte-identical to a serial run.
//
// The determinism contract, in one sentence: a verification result is a
// pure function of (author, preimage, signature), so WHERE and WHEN it
// physically executes cannot change WHAT the simulation observes.
//
// Mechanics:
//  * speculate(key, fn) — called on the sim thread when a frame is
//    transmitted. Registers a verification that receivers will likely
//    need. With workers > 0 the closure is enqueued immediately, so the
//    host-side verify overlaps the frame's simulated in-flight latency.
//    With workers == 0 the closure is parked and runs lazily at the
//    first join — same counters, same results, zero threads.
//  * join(key, fn) — called on the sim thread when a replica actually
//    verifies. A registered key is a hit (wait for / lazily run the
//    speculated closure — one physical verify serves every receiver of
//    the frame); an unknown key is a miss (run fn inline, then publish
//    the result so later receivers of the same frame still hit).
//  * verify_batch(fns) — fan a certificate tally's per-signature checks
//    across the pool and collect all results. Any failure is counted as
//    a fallback: the caller gets per-item verdicts and proceeds exactly
//    as the individual path would.
//
// Every counter in PipelineStats is updated only on the sim thread, in
// scheduler event order, as a function of sim events alone — never of
// pool size or thread timing. That is what makes the stats (and thus
// --prom-out / BENCH_*.json) identical at any --workers N. The number of
// closures that physically executed DOES depend on the mode (speculated
// work a serial run never pays for) and is deliberately not exported.
//
// Energy accounting is untouched by this module: replicas charge
// Category::kVerify per modeled verification exactly as before. The pool
// changes host wall-clock, not the simulation's energy model.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.hpp"

namespace eesmr::crypto {

/// Canonical cache key of one (author, preimage, signature) verification.
/// Used by both the transmit-time speculator and every join point, so a
/// frame speculated at the sender resolves the checks of all receivers.
/// Raw concatenation, not a hash: for simulated keys a SHA-256 over the
/// preimage costs as much as the verify it would save.
inline std::string verify_key(std::uint32_t author, BytesView preimage,
                              BytesView sig) {
  std::string k;
  k.reserve(8 + preimage.size() + sig.size());
  for (int i = 0; i < 4; ++i) {
    k.push_back(static_cast<char>(author >> (8 * i)));
  }
  const auto plen = static_cast<std::uint32_t>(preimage.size());
  for (int i = 0; i < 4; ++i) {
    k.push_back(static_cast<char>(plen >> (8 * i)));
  }
  k.append(preimage.begin(), preimage.end());
  k.append(sig.begin(), sig.end());
  return k;
}

/// A pure verification closure: must depend only on its captures and
/// touch no shared mutable state (Keyring/Verifier are const).
using VerifyFn = std::function<bool()>;

/// Deterministic pipeline counters. All fields are functions of the
/// sim-thread event sequence only, hence identical at any worker count.
struct PipelineStats {
  std::uint64_t speculated = 0;       ///< verifications registered at transmit
  std::uint64_t join_hits = 0;        ///< joins served by a registered entry
  std::uint64_t join_misses = 0;      ///< joins that ran inline and published
  std::uint64_t wasted = 0;           ///< entries evicted without any join
  std::uint64_t batches = 0;          ///< verify_batch calls
  std::uint64_t batch_items = 0;      ///< signatures across all batches
  std::uint64_t batch_fallbacks = 0;  ///< batches with >=1 failed signature
};

/// Fixed-size worker pool running opaque jobs. Plain FIFO queue; the
/// pipeline is its only client.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void submit(std::function<void()> job);
  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Speculative verification cache + batch fan-out. One instance per
/// Cluster, shared by all replicas. All public methods MUST be called
/// from the sim thread; only the worker pool touches entries
/// concurrently, through their internal mutex.
class VerifyPipeline {
 public:
  /// workers == 0: no threads are created and every closure runs
  /// inline on the sim thread at the deterministic join point.
  explicit VerifyPipeline(std::size_t workers);
  ~VerifyPipeline();
  VerifyPipeline(const VerifyPipeline&) = delete;
  VerifyPipeline& operator=(const VerifyPipeline&) = delete;

  /// Register a verification likely needed by upcoming deliveries.
  /// Duplicate keys (flood re-forwards of a seen frame) are ignored.
  void speculate(std::string key, VerifyFn fn);

  /// Resolve a verification at its deterministic decision point.
  /// Returns the same bool the closure would return inline.
  bool join(const std::string& key, const VerifyFn& fn);

  /// Resolve only if `key` is already registered (speculated earlier, or
  /// published by a previous join/batch); never inserts. Counts a join
  /// hit on success. Lets certificate tallies split their signatures
  /// into already-known checks and a residue worth batching.
  bool try_join(const std::string& key, bool* result);

  /// Publish a verdict the caller computed itself (one item of a batch)
  /// so later joins on the same key hit. Counted as a join miss — the
  /// physical work happened at this decision point.
  void publish(const std::string& key, bool result);

  /// Verify a certificate's signatures as one batch. Returns per-item
  /// verdicts (1 = valid). A batch containing any invalid signature is
  /// counted as a fallback; the caller handles items individually from
  /// the verdict vector, matching the serial path's behavior.
  std::vector<char> verify_batch(const std::vector<VerifyFn>& fns);

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t workers() const;

 private:
  struct Entry {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool result = false;
    VerifyFn lazy;  // workers == 0: deferred closure, run at first join
  };
  struct Rec {
    std::shared_ptr<Entry> entry;
    bool joined = false;  // sim-thread only
  };

 public:
  /// Speculation cache bound. Eviction is FIFO by insertion order —
  /// driven purely by sim-thread inserts, hence deterministic.
  static constexpr std::size_t kMaxEntries = 4096;

 private:

  bool resolve(Entry& e) const;
  void insert(std::string key, Rec rec);

  std::unique_ptr<WorkerPool> pool_;  // null when workers == 0
  std::unordered_map<std::string, Rec> entries_;
  std::deque<std::string> fifo_;
  PipelineStats stats_;
};

}  // namespace eesmr::crypto
