#include <gtest/gtest.h>

#include <vector>

#include "src/sim/rng.hpp"
#include "src/sim/scheduler.hpp"

namespace eesmr::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(30, [&] { order.push_back(3); });
  sched.at(10, [&] { order.push_back(1); });
  sched.at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30);
}

TEST(Scheduler, SameTimeIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.at(10, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, AfterSchedulesRelative) {
  Scheduler sched;
  sched.at(100, [] {});
  sched.run();
  SimTime fired = -1;
  sched.after(50, [&] { fired = sched.now(); });
  sched.run();
  EXPECT_EQ(fired, 150);
}

TEST(Scheduler, CancelPreventsFiring) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.at(10, [&] { fired = true; });
  EXPECT_TRUE(sched.cancel(id));
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sched.cancel(id));  // second cancel is a no-op
}

TEST(Scheduler, PastSchedulingThrows) {
  Scheduler sched;
  sched.at(100, [] {});
  sched.run();
  EXPECT_THROW(sched.at(50, [] {}), std::invalid_argument);
}

TEST(Scheduler, RunUntilAdvancesClock) {
  Scheduler sched;
  int fired = 0;
  sched.at(10, [&] { ++fired; });
  sched.at(1000, [&] { ++fired; });
  sched.run_until(500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 500);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, EventsScheduledDuringRunAreProcessed) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.after(10, recurse);
  };
  sched.after(10, recurse);
  sched.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.now(), 50);
}

TEST(Scheduler, RunLimitStopsEarly) {
  Scheduler sched;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sched.at(i + 1, [&] { ++fired; });
  EXPECT_EQ(sched.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Timer, StartCancelRestart) {
  Scheduler sched;
  Timer t(sched);
  int fired = 0;
  t.start(10, [&] { ++fired; });
  EXPECT_TRUE(t.armed());
  t.cancel();
  sched.run();
  EXPECT_EQ(fired, 0);

  t.start(10, [&] { ++fired; });
  t.start(20, [&] { fired += 10; });  // restart replaces the pending timer
  sched.run();
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, DeadlineReflectsArming) {
  Scheduler sched;
  sched.at(100, [] {});
  sched.run();
  Timer t(sched);
  t.start(40, [] {});
  EXPECT_EQ(t.deadline(), 140);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.fork();
  // The child stream should not simply replay the parent stream.
  Rng parent2(5);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next(), child2.next());
}

}  // namespace
}  // namespace eesmr::sim
