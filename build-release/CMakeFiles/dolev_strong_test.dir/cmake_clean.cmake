file(REMOVE_RECURSE
  "CMakeFiles/dolev_strong_test.dir/tests/dolev_strong_test.cpp.o"
  "CMakeFiles/dolev_strong_test.dir/tests/dolev_strong_test.cpp.o.d"
  "dolev_strong_test"
  "dolev_strong_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolev_strong_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
