// Table 3: best-case / worst-case comparison of SMR protocols —
// communication complexity, public-key operations and block period.
//
// The EESMR / Sync HotStuff / OptSync rows are *measured* from the
// simulator (operation counters over a steady-state window and over a
// view change); the Abraham et al. and Rotating-BFT rows are reported
// analytically (those protocols share Sync HotStuff's steady-state cost
// structure in the paper's table).
#include <cmath>

#include "bench/bench_util.hpp"

using namespace eesmr;
using namespace eesmr::harness;

namespace {

struct Counts {
  double msgs_per_block;     // transmissions per committed block
  double bytes_per_block;    // bytes on the air per committed block
  double signs_per_block;    // total signing ops per committed block
  double verifies_per_block; // total verification ops per committed block
};

Counts steady_counts(Protocol p, std::size_t n, bool rotating = false) {
  ClusterConfig cfg;
  cfg.protocol = p;
  cfg.synchs.rotating_leader = rotating;
  cfg.n = n;
  cfg.f = (n - 1) / 2;
  cfg.k = 0;  // full mesh, matching the table's d = n-1 setting
  cfg.seed = 5;
  const std::size_t blocks = 12;
  const RunResult r = bench::run_steady(cfg, blocks);
  Counts c{};
  const double b = static_cast<double>(r.min_committed());
  c.msgs_per_block = static_cast<double>(r.transmissions) / b;
  c.bytes_per_block = static_cast<double>(r.bytes_transmitted) / b;
  std::uint64_t signs = 0, verifies = 0;
  for (const auto& m : r.meters) {
    signs += m.ops(energy::Category::kSign);
    verifies += m.ops(energy::Category::kVerify);
  }
  c.signs_per_block = static_cast<double>(signs) / b;
  c.verifies_per_block = static_cast<double>(verifies) / b;
  return c;
}

/// Least-squares slope of log(y) over log(n): the measured growth
/// exponent ("O(n^slope)").
double growth_exponent(const std::vector<std::pair<std::size_t, double>>& pts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [n, y] : pts) {
    const double lx = std::log(static_cast<double>(n));
    const double ly = std::log(std::max(1e-9, y));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double m = static_cast<double>(pts.size());
  return (m * sxy - sx * sy) / (m * sxx - sx * sx);
}

}  // namespace

int main() {
  bench::header("Table 3 — best-case cost comparison (measured)",
                "Table 3 (related-work comparison)");

  const std::vector<std::size_t> ns = {5, 7, 9, 11, 13};
  std::printf("%-14s | %3s | %10s | %10s | %8s | %10s\n", "Protocol", "n",
              "msgs/blk", "bytes/blk", "sign/blk", "verify/blk");
  std::printf("---------------+-----+------------+------------+----------+"
              "------------\n");

  std::vector<std::pair<std::size_t, double>> ee_msgs, shs_msgs, ee_ver,
      shs_ver;
  for (int variant = 0; variant < 4; ++variant) {
    const Protocol p = variant == 0   ? Protocol::kEesmr
                       : variant == 1 ? Protocol::kSyncHotStuff
                       : variant == 2 ? Protocol::kOptSync
                                      : Protocol::kSyncHotStuff;
    const bool rotating = variant == 3;
    for (std::size_t n : ns) {
      const Counts c = steady_counts(p, n, rotating);
      std::printf("%-14s | %3zu | %10.1f | %10.0f | %8.2f | %10.1f\n",
                  rotating ? "RotatingBFT" : protocol_name(p), n,
                  c.msgs_per_block, c.bytes_per_block,
                  c.signs_per_block, c.verifies_per_block);
      if (p == Protocol::kEesmr) {
        ee_msgs.emplace_back(n, c.msgs_per_block);
        ee_ver.emplace_back(n, c.verifies_per_block);
      }
      if (p == Protocol::kSyncHotStuff) {
        shs_msgs.emplace_back(n, c.msgs_per_block);
        shs_ver.emplace_back(n, c.verifies_per_block);
      }
    }
  }

  std::printf("\nMeasured growth exponents over n (full mesh, d = n-1;\n"
              "transmissions are per-edge, so O(nd) appears as n^2):\n");
  std::printf("  EESMR   msgs/blk   ~ O(n^%.2f)   (paper: O(nd) -> n^2)\n",
              growth_exponent(ee_msgs));
  std::printf("  SyncHS  msgs/blk   ~ O(n^%.2f)   (paper: O(n^2 d) -> n^3 "
              "with full vote forwarding; our measurement applies the "
              "paper's\n      partial-vote-forwarding assumption in Sync "
              "HotStuff's favor, which removes the extra n)\n",
              growth_exponent(shs_msgs));
  std::printf("  EESMR   verify/blk ~ O(n^%.2f)   (paper: O(n))\n",
              growth_exponent(ee_ver));
  std::printf("  SyncHS  verify/blk ~ O(n^%.2f)   (paper: O(n^2))\n",
              growth_exponent(shs_ver));

  std::printf("\nAnalytic row (not separately implemented; identical\n"
              "steady-state structure to Sync HotStuff per the paper):\n");
  std::printf("  %-22s O(n^2 d) comm, O(n) sign, O(n^2) verify, period -\n",
              "Abraham et al. [4]:");
  bench::note("expected shape: EESMR needs ONE signature per block "
              "system-wide and one flood; Sync HotStuff adds n per-block "
              "votes (locally broadcast under the partial-forwarding "
              "assumption) and f+1-signature certificates inside every "
              "proposal - visible in the sign/blk, verify/blk and "
              "bytes/blk columns");
  return 0;
}
