// Trajectory-differ tests (the library behind tools/bench_diff): a
// golden baseline/current pair with an injected out-of-tolerance
// regression fails, in-tolerance jitter passes, and added / removed /
// type-changed metrics are reported with the right kinds.
#include <gtest/gtest.h>

#include <string>

#include "src/exp/json.hpp"
#include "src/obs/diff.hpp"

namespace eesmr {
namespace {

using exp::Json;
using obs::DiffKind;
using obs::DiffOptions;
using obs::DiffReport;

// A miniature BENCH_*.json: one section, two rows, mixed leaf types.
const char* kBaseline = R"({
  "bench": "fig_golden",
  "sections": [
    {
      "name": "main",
      "rows": [
        {
          "params": {"protocol": "EESMR", "n": 7},
          "metrics": {"mj_per_block": 100.0, "commits": 24, "safety_ok": true}
        },
        {
          "params": {"protocol": "SyncHS", "n": 7},
          "metrics": {"mj_per_block": 260.0, "commits": 24, "safety_ok": true}
        }
      ]
    }
  ]
})";

Json baseline() { return Json::parse(kBaseline); }

/// Return the golden document with one metric scaled by `factor`.
Json with_scaled_mj(std::size_t row, double factor) {
  // Rebuild rather than mutate: Json::at is const-only by design.
  Json doc = baseline();
  std::string text = doc.pretty();
  const double value = row == 0 ? 100.0 : 260.0;
  const std::string needle = exp::json_number(value);
  const std::size_t pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), exp::json_number(value * factor));
  return Json::parse(text);
}

TEST(BenchDiff, IdenticalDocumentsPass) {
  const DiffReport r = obs::diff_json(baseline(), baseline(), {}, "golden");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.entries.empty());
  // Every scalar leaf was actually compared (2 params + 3 metrics per
  // row, 2 rows, + bench + section name).
  EXPECT_EQ(r.compared, 12u);
}

TEST(BenchDiff, InjectedRegressionBeyondToleranceFails) {
  // +25% on mj_per_block against the default 2% gate (a factor exactly
  // representable in binary, so the rendered values stay integral).
  const DiffReport r =
      obs::diff_json(baseline(), with_scaled_mj(0, 1.25), {}, "golden");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.failures(), 1u);
  ASSERT_EQ(r.entries.size(), 1u);
  const obs::DiffEntry& e = r.entries[0];
  EXPECT_EQ(e.kind, DiffKind::kRegression);
  EXPECT_EQ(e.path, "golden.sections[0].rows[0].metrics.mj_per_block");
  EXPECT_EQ(e.baseline, "100");
  EXPECT_EQ(e.current, "125");
  EXPECT_NEAR(e.rel, 25.0 / 125.0, 1e-12);
  EXPECT_DOUBLE_EQ(e.tol, 0.02);
  // The findings line carries the path and both values.
  EXPECT_NE(r.text().find("REGRESSION golden.sections[0].rows[0].metrics"
                          ".mj_per_block: 100 -> 125"),
            std::string::npos)
      << r.text();
}

TEST(BenchDiff, InToleranceJitterPasses) {
  // +1% stays under the default 2% relative tolerance.
  const DiffReport r =
      obs::diff_json(baseline(), with_scaled_mj(1, 1.01), {}, "golden");
  EXPECT_TRUE(r.ok()) << r.text();
  EXPECT_TRUE(r.entries.empty());
}

TEST(BenchDiff, PerMetricToleranceOverride) {
  DiffOptions opts;
  opts.metric_rel_tol.emplace_back("mj_per_block", 0.15);
  // 10% regression passes under the widened per-metric gate...
  EXPECT_TRUE(
      obs::diff_json(baseline(), with_scaled_mj(0, 1.10), opts, "g").ok());
  // ...while other metrics keep the default.
  EXPECT_DOUBLE_EQ(obs::rel_tol_for(opts, "mj_per_block"), 0.15);
  EXPECT_DOUBLE_EQ(obs::rel_tol_for(opts, "commits"), 0.02);
}

TEST(BenchDiff, AbsoluteFloorAdmitsNearZeroNoise) {
  DiffOptions opts;
  opts.abs_tol = 1e-3;
  Json base = Json::parse(R"({"x": 0.0})");
  Json cur = Json::parse(R"({"x": 0.0005})");
  // Relative tolerance alone would fail (rel = 1.0); the floor admits it.
  EXPECT_TRUE(obs::diff_json(base, cur, opts).ok());
  EXPECT_FALSE(obs::diff_json(base, cur, DiffOptions{}).ok());
}

TEST(BenchDiff, RemovedMetricFailsAddedIsInformational) {
  Json base = Json::parse(R"({"metrics": {"a": 1, "b": 2}})");
  Json cur = Json::parse(R"({"metrics": {"a": 1, "c": 3}})");
  const DiffReport r = obs::diff_json(base, cur, {}, "golden");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.entries.size(), 2u);
  EXPECT_EQ(r.entries[0].kind, DiffKind::kRemoved);
  EXPECT_EQ(r.entries[0].path, "golden.metrics.b");
  EXPECT_EQ(r.entries[1].kind, DiffKind::kAdded);
  EXPECT_EQ(r.entries[1].path, "golden.metrics.c");
  // Only the removal gates; the addition is reported but passes.
  EXPECT_EQ(r.failures(), 1u);

  // Added alone keeps the gate green.
  const DiffReport add_only =
      obs::diff_json(Json::parse(R"({"a": 1})"), Json::parse(R"({"a": 1,
        "new_metric": 7})"));
  EXPECT_TRUE(add_only.ok());
  EXPECT_EQ(add_only.entries.size(), 1u);
}

TEST(BenchDiff, EnumerateAddedListsEveryLeafOfANewFile) {
  // Directory mode uses this for files with no baseline counterpart: the
  // report must enumerate the new file's metrics individually, not emit
  // one opaque "new file" line.
  const DiffReport r =
      obs::enumerate_added(baseline(), {}, "BENCH_new_bench.json");
  EXPECT_TRUE(r.ok());  // additions are informational
  // 1 bench name + per row (2 params + 3 metrics) * 2 rows + section name.
  EXPECT_EQ(r.entries.size(), 12u);
  for (const auto& e : r.entries) {
    EXPECT_EQ(e.kind, DiffKind::kAdded);
    EXPECT_TRUE(e.path.rfind("BENCH_new_bench.json.", 0) == 0) << e.path;
    EXPECT_FALSE(e.current.empty()) << e.path;
  }
  EXPECT_EQ(r.entries[0].path, "BENCH_new_bench.json.bench");
  EXPECT_EQ(r.entries[0].current, "\"fig_golden\"");
  // Leaf paths carry full section/row addressing, ready to be compared
  // once the file is promoted to a baseline.
  EXPECT_EQ(r.entries[2].path,
            "BENCH_new_bench.json.sections[0].rows[0].params.protocol");

  // The ignore list prunes subtrees here exactly as in diff_json.
  DiffOptions opts;
  opts.ignore.push_back("params");
  const DiffReport pruned = obs::enumerate_added(baseline(), opts, "f");
  for (const auto& e : pruned.entries) {
    EXPECT_EQ(e.path.find(".params."), std::string::npos) << e.path;
  }
  EXPECT_EQ(pruned.entries.size(), 8u);
}

TEST(BenchDiff, ArrayLengthChangesReported) {
  Json base = Json::parse(R"({"rows": [1, 2, 3]})");
  Json shorter = Json::parse(R"({"rows": [1, 2]})");
  const DiffReport removed = obs::diff_json(base, shorter);
  EXPECT_FALSE(removed.ok());
  ASSERT_EQ(removed.entries.size(), 1u);
  EXPECT_EQ(removed.entries[0].kind, DiffKind::kRemoved);
  EXPECT_EQ(removed.entries[0].path, "rows[2]");

  const DiffReport added = obs::diff_json(shorter, base);
  EXPECT_TRUE(added.ok());
  ASSERT_EQ(added.entries.size(), 1u);
  EXPECT_EQ(added.entries[0].kind, DiffKind::kAdded);
}

TEST(BenchDiff, TypeChangeFails) {
  Json base = Json::parse(R"({"safety_ok": true})");
  Json cur = Json::parse(R"({"safety_ok": "true"})");
  const DiffReport r = obs::diff_json(base, cur);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].kind, DiffKind::kTypeChanged);
}

TEST(BenchDiff, NonNumericLeavesCompareExactly) {
  Json base = Json::parse(R"({"protocol": "EESMR", "ok": true})");
  Json flipped = Json::parse(R"({"protocol": "EESMR", "ok": false})");
  EXPECT_TRUE(obs::diff_json(base, base).ok());
  const DiffReport r = obs::diff_json(base, flipped);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.entries[0].path, "ok");
}

TEST(BenchDiff, IgnoredKeysAreSkippedEverywhere) {
  DiffOptions opts;
  opts.ignore.push_back("timestamp");
  Json base = Json::parse(R"({"timestamp": 1, "nested": {"timestamp": 2,
    "x": 5}})");
  Json cur = Json::parse(R"({"timestamp": 99, "nested": {"x": 5}})");
  // The changed top-level value and the removed nested one both sit
  // under an ignored key.
  EXPECT_TRUE(obs::diff_json(base, cur, opts).ok());
  EXPECT_FALSE(obs::diff_json(base, cur, DiffOptions{}).ok());
}

TEST(BenchDiff, ToleranceKeyMatchesLastPathSegment) {
  // Array-indexed leaves strip the [i] suffix before the override match.
  DiffOptions opts;
  opts.metric_rel_tol.emplace_back("latencies", 0.5);
  Json base = Json::parse(R"({"latencies": [10.0, 20.0]})");
  Json cur = Json::parse(R"({"latencies": [13.0, 26.0]})");
  EXPECT_TRUE(obs::diff_json(base, cur, opts).ok());
  EXPECT_FALSE(obs::diff_json(base, cur, DiffOptions{}).ok());
}

TEST(BenchDiff, MergeAccumulatesAcrossFiles) {
  DiffReport all;
  all.merge(obs::diff_json(baseline(), with_scaled_mj(0, 1.10), {}, "a.json"));
  all.merge(obs::diff_json(baseline(), baseline(), {}, "b.json"));
  EXPECT_EQ(all.compared, 24u);
  EXPECT_EQ(all.failures(), 1u);
  EXPECT_FALSE(all.ok());
  EXPECT_NE(all.text().find("a.json.sections[0]"), std::string::npos);
}

}  // namespace
}  // namespace eesmr
