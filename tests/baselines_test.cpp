// Sync HotStuff / OptSync / trusted-baseline integration tests.
#include <gtest/gtest.h>

#include "src/harness/cluster.hpp"

namespace eesmr::harness {
namespace {

using protocol::ByzantineMode;

ClusterConfig shs_config(std::size_t n, std::size_t f) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kSyncHotStuff;
  cfg.n = n;
  cfg.f = f;
  cfg.hop_delay = sim::milliseconds(10);
  cfg.seed = 7;
  return cfg;
}

TEST(SyncHotStuff, HappyPathCommits) {
  Cluster cluster(shs_config(4, 1));
  const RunResult r = cluster.run_until_commits(10, sim::seconds(60));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 10u);
  EXPECT_EQ(r.view_changes, 0u);
}

TEST(SyncHotStuff, EveryNodeSignsEveryBlock) {
  // The energy-relevant contrast to EESMR: per-block votes from all.
  Cluster cluster(shs_config(4, 1));
  const RunResult r = cluster.run_until_commits(10, sim::seconds(60));
  ASSERT_GE(r.min_committed(), 10u);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_GE(r.meters[i].ops(energy::Category::kSign),
              r.logs[i].size() - 1)
        << "node " << i;
  }
}

TEST(SyncHotStuff, CrashedLeaderViewChange) {
  ClusterConfig cfg = shs_config(4, 1);
  cfg.faults = {{1, ByzantineMode::kCrash, 5}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(8, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.view_changes, 1u);
  EXPECT_GE(r.min_committed(), 8u);
}

TEST(SyncHotStuff, EquivocatingLeaderViewChange) {
  ClusterConfig cfg = shs_config(4, 1);
  cfg.faults = {{1, ByzantineMode::kEquivocate, 5}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(8, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.view_changes, 1u);
  EXPECT_GE(r.min_committed(), 8u);
}

TEST(SyncHotStuff, KcastRingTopology) {
  ClusterConfig cfg = shs_config(7, 2);
  cfg.k = 3;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 6u);
}

TEST(SyncHotStuff, MoreEnergyPerBlockThanEesmr) {
  // The paper's headline: EESMR's steady state is 2.8x cheaper than
  // Sync HotStuff's. Accept any ratio > 1.5 at this scale.
  auto energy_of = [&](Protocol p) {
    ClusterConfig cfg = shs_config(7, 3);
    cfg.protocol = p;
    cfg.k = 4;
    Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(8, sim::seconds(600));
    EXPECT_GE(r.min_committed(), 8u);
    return r.energy_per_block_mj();
  };
  const double shs = energy_of(Protocol::kSyncHotStuff);
  const double ee = energy_of(Protocol::kEesmr);
  EXPECT_GT(shs / ee, 1.5) << "shs=" << shs << " eesmr=" << ee;
}

TEST(OptSync, HappyPathCommits) {
  ClusterConfig cfg = shs_config(4, 1);
  cfg.protocol = Protocol::kOptSync;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(10, sim::seconds(60));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 10u);
}

TEST(OptSync, FastPathCommitsQuicklyWithAllHonest) {
  // Responsive commit: with every vote arriving, commits happen before
  // the 2Δ synchronous timer — OptSync reaches the target sooner.
  auto time_to = [&](Protocol p) {
    ClusterConfig cfg = shs_config(8, 3);
    cfg.protocol = p;
    Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(10, sim::seconds(120));
    EXPECT_GE(r.min_committed(), 10u);
    return r.end_time;
  };
  EXPECT_LE(time_to(Protocol::kOptSync), time_to(Protocol::kSyncHotStuff));
}

TEST(OptSync, SynchronousFallbackUnderAdversarialDelays) {
  // With every delivery stretched to the hop bound the responsive
  // quorum brings no speedup, but the 2Δ synchronous rule still commits.
  ClusterConfig cfg = shs_config(8, 3);
  cfg.protocol = Protocol::kOptSync;
  cfg.adversarial_delays = true;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 6u);
  EXPECT_EQ(r.view_changes, 0u);
}

TEST(OptSync, ViewChangeWithCrashedLeader) {
  ClusterConfig cfg = shs_config(5, 2);
  cfg.protocol = Protocol::kOptSync;
  cfg.faults = {{1, ByzantineMode::kCrash, 4}};
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(6, sim::seconds(240));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 6u);
  EXPECT_GE(r.view_changes, 1u);
}

TEST(RotatingLeader, EveryNodeTakesTurnsProposing) {
  ClusterConfig cfg = shs_config(5, 2);
  cfg.synchs.rotating_leader = true;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(10, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  ASSERT_GE(r.min_committed(), 10u);
  // Table 3's rotating row: the proposer changes every height.
  std::set<NodeId> proposers;
  for (const smr::Block& b : r.logs[0]) proposers.insert(b.proposer);
  EXPECT_EQ(proposers.size(), 5u);
  for (std::size_t i = 1; i < r.logs[0].size(); ++i) {
    EXPECT_NE(r.logs[0][i].proposer, r.logs[0][i - 1].proposer);
  }
}

TEST(RotatingLeader, SpreadsSigningLoadEvenly) {
  ClusterConfig cfg = shs_config(4, 1);
  cfg.synchs.rotating_leader = true;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(12, sim::seconds(120));
  ASSERT_GE(r.min_committed(), 12u);
  // In single-leader mode the leader signs proposals on top of votes; in
  // rotating mode that extra load spreads: max/min sign counts are close.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (NodeId i = 0; i < 4; ++i) {
    lo = std::min(lo, r.meters[i].ops(energy::Category::kSign));
    hi = std::max(hi, r.meters[i].ops(energy::Category::kSign));
  }
  EXPECT_LE(hi - lo, r.min_committed() / 2 + 2);
}

TEST(TrustedBaseline, OrdersAndCommits) {
  ClusterConfig cfg = shs_config(4, 1);
  cfg.protocol = Protocol::kTrustedBaseline;
  cfg.medium = energy::Medium::k4gLte;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(5, sim::seconds(60));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 5u);
}

TEST(TrustedBaseline, ControlNodeEnergyNotCounted) {
  ClusterConfig cfg = shs_config(4, 1);
  cfg.protocol = Protocol::kTrustedBaseline;
  cfg.medium = energy::Medium::k4gLte;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(5, sim::seconds(60));
  ASSERT_EQ(r.counted.size(), 5u);
  EXPECT_FALSE(r.counted[4]);
  // The controller did spend energy; it's just excluded from totals.
  EXPECT_GT(r.meters[4].total_millijoules(), 0.0);
  double counted_total = 0;
  for (NodeId i = 0; i < 4; ++i) counted_total += r.node_energy_mj(i);
  EXPECT_DOUBLE_EQ(r.total_energy_mj(), counted_total);
}

TEST(TrustedBaseline, ReplicasVerifyOnlyControllerSignature) {
  ClusterConfig cfg = shs_config(4, 1);
  cfg.protocol = Protocol::kTrustedBaseline;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(5, sim::seconds(60));
  ASSERT_GE(r.min_committed(), 5u);
  for (NodeId i = 0; i < 4; ++i) {
    // One verification per ordered block (plus none for votes: there are
    // no votes in the baseline).
    EXPECT_LE(r.meters[i].ops(energy::Category::kVerify),
              r.logs[i].size() + 2)
        << "node " << i;
  }
}

TEST(TrustedBaseline, ControllerDedupsFloodedRequests) {
  // With real clients, every CPS node pools each flooded request and
  // ships it up in its next kSubmit batch, so the controller sees up to
  // n copies per request. Dedup must order one copy and count the rest
  // as saved orderings; exactly-once execution keeps results identical
  // either way, but the deduped run burns measurably less radio energy
  // (fewer ordered slots unicast back to every CPS node).
  ClusterConfig base = shs_config(4, 1);
  base.protocol = Protocol::kTrustedBaseline;
  base.medium = energy::Medium::k4gLte;
  base.clients = 2;
  base.batch_size = 8;
  base.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  base.workload.outstanding = 2;
  base.workload.max_requests = 10;

  ClusterConfig with_dedup = base;  // default: trusted_dedup = true
  ClusterConfig without = base;
  without.trusted_dedup = false;

  Cluster cd(with_dedup);
  const RunResult rd = cd.run_until_accepted(20, sim::seconds(2000));
  Cluster cn(without);
  const RunResult rn = cn.run_until_accepted(20, sim::seconds(2000));

  ASSERT_EQ(rd.requests_accepted, 20u);
  ASSERT_EQ(rn.requests_accepted, 20u);
  EXPECT_TRUE(rd.safety_ok());
  EXPECT_TRUE(rn.safety_ok());

  // Duplicates were actually skipped, and the savings are reported.
  EXPECT_GT(rd.controller_dedup_saved, 0u);
  EXPECT_GT(rd.controller_dedup_bytes_saved, 0u);
  EXPECT_EQ(rn.controller_dedup_saved, 0u);

  // Fewer ordered copies -> fewer downlink bytes -> less CPS energy.
  EXPECT_LT(rd.bytes_transmitted, rn.bytes_transmitted);
  EXPECT_LT(rd.total_energy_mj(), rn.total_energy_mj());
}

TEST(TrustedBaseline, ControllerDedupStateStaysBoundedOverLongRuns) {
  // The controller's (client, req_id) seen-set is a per-client
  // watermark + sparse tail, not a per-request set: a long run with
  // ascending client req_ids must leave O(clients) live entries, not
  // O(requests ordered) — the ROADMAP unbounded-seen-set fix.
  ClusterConfig cfg = shs_config(4, 1);
  cfg.protocol = Protocol::kTrustedBaseline;
  cfg.clients = 2;
  cfg.batch_size = 8;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 4;
  cfg.workload.max_requests = 150;

  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(300, sim::seconds(5000));
  ASSERT_EQ(r.requests_accepted, 300u);
  EXPECT_GT(r.controller_dedup_saved, 0u);

  const auto* ctl = dynamic_cast<const baselines::TrustedController*>(
      &cluster.replica(static_cast<NodeId>(cfg.n)));
  ASSERT_NE(ctl, nullptr);
  // 300 requests ordered; live dedup state is the two client watermarks
  // plus whatever reordering tail is still open (flooded submissions
  // arrive near-ascending, so the tail is a handful of entries).
  EXPECT_LE(ctl->dedup_state_entries(), cfg.clients * 8);
}

}  // namespace
}  // namespace eesmr::harness
