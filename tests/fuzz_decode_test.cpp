// Robustness sweep: decoding arbitrary bytes (Byzantine wire data) must
// either succeed or throw SerdeError / std::invalid_argument — never
// crash, never leak unbounded memory. Mutated-valid inputs probe the
// interesting boundary cases.
#include <gtest/gtest.h>

#include "src/checkpoint/checkpoint.hpp"
#include "src/common/serde.hpp"
#include "src/crypto/agg.hpp"
#include "src/crypto/sha256.hpp"
#include "src/sim/rng.hpp"
#include "src/smr/block.hpp"
#include "src/smr/membership.hpp"
#include "src/smr/message.hpp"
#include "src/smr/request.hpp"

namespace eesmr {
namespace {

template <typename Fn>
void expect_no_crash(Fn&& decode, BytesView data) {
  try {
    decode(data);
  } catch (const SerdeError&) {
  } catch (const std::invalid_argument&) {
  }
  // Any other exception type (or a crash) fails the test by escaping.
}

TEST(FuzzDecode, RandomBytes) {
  sim::Rng rng(0xf22d);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); }, junk);
    expect_no_crash([](BytesView d) { (void)smr::Msg::decode(d); }, junk);
    expect_no_crash([](BytesView d) { (void)smr::QuorumCert::decode(d); },
                    junk);
    // Checkpoint / state-transfer wire formats (kCheckpoint payloads,
    // certificates, snapshot payloads).
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::CheckpointMsg::decode(d); },
        junk);
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::CheckpointCert::decode(d); },
        junk);
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::SnapshotPayload::decode(d); },
        junk);
    // PR 10 wire formats: membership policies and aggregate certificates.
    expect_no_crash(
        [](BytesView d) { (void)smr::MembershipPolicy::decode(d); }, junk);
    expect_no_crash(
        [](BytesView d) { (void)smr::MembershipPolicy::decode_command(d); },
        junk);
    expect_no_crash(
        [](BytesView d) { (void)smr::AcceptanceCert::decode(d); }, junk);
  }
}

TEST(FuzzDecode, MutatedValidCheckpointMessages) {
  // Round-trip a realistic kCheckpoint payload, certificate and
  // state-transfer snapshot, then flip/truncate: decode must never
  // crash, and a surviving certificate must never verify for a
  // tampered preimage.
  auto ring = crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, 6, 9);
  checkpoint::SnapshotPayload payload;
  payload.app_snapshot = Bytes(40, 0x77);
  payload.executed_cmds = 128;
  payload.watermarks = {{4, 9}, {5, 2}};
  payload.executed = {
      checkpoint::ExecutedEntry{4, 10, 30, to_bytes(std::string("ok"))}};
  const Bytes payload_bytes = payload.encode();

  checkpoint::CheckpointId id;
  id.height = 32;
  id.block = Bytes(32, 0x21);
  id.digest = crypto::sha256(payload_bytes);
  checkpoint::CheckpointCert cert;
  cert.id = id;
  for (NodeId i = 0; i < 2; ++i) {
    cert.sigs.emplace_back(i, ring->signer(i).sign(id.preimage()));
  }
  checkpoint::CheckpointMsg cp;
  cp.id = id;
  cp.sig = cert.sigs[0].second;

  const std::vector<Bytes> corpora = {cp.encode(), cert.encode(),
                                      payload_bytes};
  sim::Rng rng(0xc4e0);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes mutated = corpora[iter % corpora.size()];
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::CheckpointMsg::decode(d); },
        mutated);
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::SnapshotPayload::decode(d); },
        mutated);
    try {
      const auto qc = checkpoint::CheckpointCert::decode(mutated);
      if (qc.verify(*ring, 2, 6)) {
        // Only acceptable survivor: a mutation confined to signature
        // padding of the simulated scheme with the id intact.
        EXPECT_EQ(qc.id, id);
      }
    } catch (const SerdeError&) {
    }
  }
}

TEST(FuzzDecode, CheckpointLengthPrefixBombRejected) {
  // A kCheckpoint with a 4 GiB inner-length prefix must not allocate.
  Writer w;
  w.u32(0xffffffffu);
  expect_no_crash(
      [](BytesView d) { (void)checkpoint::CheckpointMsg::decode(d); },
      w.buffer());
  expect_no_crash(
      [](BytesView d) { (void)checkpoint::SnapshotPayload::decode(d); },
      w.buffer());
  // Hostile signature counts in certificates are clamped, not reserved.
  Writer c;
  c.bytes(checkpoint::CheckpointId{}.encode());
  c.u32(0xffffffffu);
  expect_no_crash(
      [](BytesView d) { (void)checkpoint::CheckpointCert::decode(d); },
      c.buffer());
}

TEST(FuzzDecode, MutatedValidBlock) {
  smr::Block b;
  b.parent = smr::genesis_hash();
  b.height = 1;
  b.view = 1;
  b.round = 3;
  b.cmds = {smr::Command{Bytes(20, 0x33)}};
  const Bytes valid = b.encode();

  sim::Rng rng(0xdead);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes mutated = valid;
    // Flip 1-4 random bytes and/or truncate.
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); },
                    mutated);
  }
}

TEST(FuzzDecode, MutatedValidQuorumCert) {
  auto ring = crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, 4, 1);
  std::vector<smr::Msg> msgs;
  for (NodeId i = 0; i < 3; ++i) {
    smr::Msg m;
    m.type = smr::MsgType::kBlame;
    m.view = 2;
    m.author = i;
    m.sig = ring->signer(i).sign(m.preimage());
    msgs.push_back(m);
  }
  const Bytes valid = smr::QuorumCert::combine(msgs).encode();

  sim::Rng rng(0xbeef);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes mutated = valid;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    // Decode may throw; if it succeeds, verification must not crash and
    // a mutated certificate must never verify as a forged quorum for a
    // different preimage... (same data -> may still verify: flipping
    // padding bytes inside a signature field of a *simulated* scheme can
    // be caught only by verify).
    try {
      const smr::QuorumCert qc = smr::QuorumCert::decode(mutated);
      (void)qc.verify(*ring, 3);
    } catch (const SerdeError&) {
    }
  }
}

// ---------------------------------------------------------------------------
// Frame-mutation fuzzer: flip/truncate/EXTEND bytes of *valid* encoded
// messages across every wire format a node accepts off the air, and
// assert decode+verify rejects cleanly — no crash, and no acceptance of
// semantically altered content (a mutation confined to signature padding
// of the simulated scheme may still verify, but then the covered
// preimage must be byte-identical to the original).
// ---------------------------------------------------------------------------

TEST(FuzzDecode, FrameMutationsAcrossAllWireFormatsRejectCleanly) {
  constexpr std::size_t kNodes = 6;  // replicas 0..3, clients 4..5
  auto ring = crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, kNodes,
                                         0xf00d);
  const auto signed_msg = [&](smr::MsgType type, std::uint64_t view,
                              std::uint64_t round, NodeId author,
                              Bytes data) {
    smr::Msg m;
    m.type = type;
    m.view = view;
    m.round = round;
    m.author = author;
    m.data = std::move(data);
    m.sig = ring->signer(author).sign(m.preimage());
    return m;
  };

  // One realistic specimen per wire format a replica or client decodes.
  smr::Block block;
  block.parent = smr::genesis_hash();
  block.height = 4;
  block.view = 1;
  block.round = 6;
  block.proposer = 1;
  block.cmds = {smr::Command{Bytes(24, 0x5a)}};

  smr::ClientRequest request;
  request.client = 4;
  request.req_id = 9;
  request.op = to_bytes(std::string("put k v"));
  request.sig = ring->signer(4).sign(request.preimage());

  smr::ClientReply reply;
  reply.client = 4;
  reply.req_id = 9;
  reply.result = to_bytes(std::string("ok"));
  reply.leader = 1;

  std::vector<smr::Msg> votes;
  for (NodeId i = 0; i < 2; ++i) {
    votes.push_back(signed_msg(smr::MsgType::kVote, 2, 0, i,
                               to_bytes(std::string("vote-target"))));
  }
  const smr::QuorumCert cert = smr::QuorumCert::combine(votes);

  const std::vector<smr::Msg> msgs = {
      signed_msg(smr::MsgType::kPropose, 1, 6, 1, block.encode()),
      signed_msg(smr::MsgType::kVote, 1, 0, 2,
                 to_bytes(std::string("voted-hash-bytes-32-aaaaaaaaaaaa"))),
      signed_msg(smr::MsgType::kBlame, 1, 0, 3, {}),
      signed_msg(smr::MsgType::kBlameQC, 1, 0, 0, cert.encode()),
      signed_msg(smr::MsgType::kRequest, 0, 9, 4, request.encode()),
      signed_msg(smr::MsgType::kReply, 1, 6, 2, reply.encode()),
      signed_msg(smr::MsgType::kSyncRequest, 1, 6, 3,
                 to_bytes(std::string("parent-hash-bytes-32-aaaaaaaaaaa"))),
  };
  std::vector<Bytes> corpora;
  for (const smr::Msg& m : msgs) corpora.push_back(m.encode());
  corpora.push_back(block.encode());
  corpora.push_back(request.encode());
  corpora.push_back(reply.encode());
  corpora.push_back(cert.encode());

  std::vector<Bytes> preimages;
  for (const smr::Msg& m : msgs) preimages.push_back(m.preimage());

  sim::Rng mutator(0x3217a7e);
  for (int iter = 0; iter < 6000; ++iter) {
    const std::size_t which = iter % corpora.size();
    Bytes mutated = corpora[which];
    switch (mutator.below(3)) {
      case 0: {  // flip 1-4 bytes
        const std::size_t flips = 1 + mutator.below(4);
        for (std::size_t i = 0; i < flips; ++i) {
          mutated[mutator.below(mutated.size())] ^=
              static_cast<std::uint8_t>(1 + mutator.below(255));
        }
        break;
      }
      case 1:  // truncate
        mutated.resize(mutator.below(mutated.size() + 1));
        break;
      default: {  // extend with junk
        const std::size_t extra = 1 + mutator.below(32);
        for (std::size_t i = 0; i < extra; ++i) {
          mutated.push_back(static_cast<std::uint8_t>(mutator.next()));
        }
        break;
      }
    }

    // The replica's off-the-air path: Msg::decode, then signature
    // verification gated on an in-range author.
    try {
      const smr::Msg m = smr::Msg::decode(mutated);
      if (m.author < kNodes &&
          ring->verify(m.author, m.preimage(), m.sig)) {
        // Only padding-confined mutations of a signed corpus entry may
        // survive: the covered content must be byte-identical.
        bool identical = false;
        for (std::size_t i = 0; i < msgs.size(); ++i) {
          if (m.author == msgs[i].author && m.preimage() == preimages[i]) {
            identical = true;
            break;
          }
        }
        EXPECT_TRUE(identical)
            << "mutated frame accepted with altered content (corpus "
            << which << ")";
      }
    } catch (const SerdeError&) {
    } catch (const std::invalid_argument&) {
    }

    // Inner formats: never crash; a surviving client request must not
    // verify unless its signed content is untouched.
    expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); },
                    mutated);
    expect_no_crash([](BytesView d) { (void)smr::ClientReply::decode(d); },
                    mutated);
    try {
      const auto req = smr::ClientRequest::decode(mutated);
      if (req.has_value() && req->client < kNodes && req->verify(*ring)) {
        EXPECT_EQ(req->preimage(), request.preimage());
      }
    } catch (const SerdeError&) {
    }
    try {
      const auto qc = smr::QuorumCert::decode(mutated);
      if (qc.verify(*ring, 2)) {
        smr::Msg probe;
        probe.type = qc.type;
        probe.view = qc.view;
        probe.round = qc.round;
        probe.data = qc.data;
        EXPECT_EQ(probe.preimage(), votes.front().preimage());
      }
    } catch (const SerdeError&) {
    }
  }
}

// ---------------------------------------------------------------------------
// PR 10 wire formats: bitset (aggregate) quorum certificates,
// membership-policy blocks, generation-tagged aggregate checkpoint
// certificates and client acceptance certificates. Same contract as the
// frame fuzzer above: flip/truncate/extend a valid encoding, and decode+
// verify must reject cleanly — surviving certificates may only cover
// byte-identical signed content. (The aggregate forms carry no malleable
// signature padding: the 48-byte fold either matches the recomputed MAC
// for the exact claimed signer set and preimage, or it doesn't.)
// ---------------------------------------------------------------------------

TEST(FuzzDecode, MutatedAggregateAndPolicyWireFormatsRejectCleanly) {
  constexpr std::size_t kN = 6;
  const auto agg = crypto::AggKeyring::simulated(kN, 0xa99);

  smr::QuorumCert qc;
  qc.type = smr::MsgType::kCertify;
  qc.view = 2;
  qc.round = 11;
  qc.data = Bytes(32, 0x44);
  const Bytes qc_preimage = qc.preimage();
  for (NodeId i = 0; i < 3; ++i) {
    qc.sigs.emplace_back(i, agg->share(i, qc_preimage));
  }
  const smr::QuorumCert aqc = qc.to_aggregate(kN, 3);

  smr::MembershipPolicy pol;
  pol.generation = 4;
  for (NodeId i = 0; i < 5; ++i) pol.signers.push_back({i, 1});

  checkpoint::CheckpointId id;
  id.height = 24;
  id.block = Bytes(32, 0x31);
  id.digest = Bytes(32, 0x13);
  checkpoint::CheckpointCert ckpt;
  ckpt.id = id;
  for (NodeId i = 2; i < 4; ++i) {
    ckpt.sigs.emplace_back(i, agg->share(i, id.preimage()));
  }
  const checkpoint::CheckpointCert ackpt = ckpt.to_aggregate(kN, 3);

  smr::AcceptanceCert acc;
  acc.client = 7;
  acc.req_id = 21;
  acc.result = to_bytes(std::string("accepted-result"));
  acc.signers = crypto::SignerBitset(kN);
  acc.agg_sig = crypto::AggKeyring::empty_aggregate();
  const Bytes acc_preimage =
      smr::acceptance_preimage(acc.client, acc.req_id, acc.result);
  for (NodeId i : {1, 5}) {
    acc.signers.set(i);
    crypto::AggKeyring::fold_into(acc.agg_sig, agg->share(i, acc_preimage));
  }

  const std::vector<Bytes> corpora = {aqc.encode(), pol.encode(),
                                      ackpt.encode(), acc.encode()};
  sim::Rng mutator(0xb17);
  for (int iter = 0; iter < 6000; ++iter) {
    const std::size_t which = iter % corpora.size();
    Bytes mutated = corpora[which];
    switch (mutator.below(3)) {
      case 0: {  // flip 1-4 bytes
        const std::size_t flips = 1 + mutator.below(4);
        for (std::size_t i = 0; i < flips; ++i) {
          mutated[mutator.below(mutated.size())] ^=
              static_cast<std::uint8_t>(1 + mutator.below(255));
        }
        break;
      }
      case 1:  // truncate
        mutated.resize(mutator.below(mutated.size() + 1));
        break;
      default: {  // extend with junk
        const std::size_t extra = 1 + mutator.below(32);
        for (std::size_t i = 0; i < extra; ++i) {
          mutated.push_back(static_cast<std::uint8_t>(mutator.next()));
        }
        break;
      }
    }

    try {
      const smr::QuorumCert m = smr::QuorumCert::decode(mutated);
      if (m.scheme == smr::CertScheme::kAggregate &&
          m.verify_aggregate(*agg, 3)) {
        EXPECT_EQ(m.preimage(), qc_preimage)
            << "mutated aggregate QC accepted with altered content";
        EXPECT_EQ(m.signers, aqc.signers);
      }
    } catch (const SerdeError&) {
    } catch (const std::invalid_argument&) {
    }

    // Policies carry no signature of their own (they are authenticated
    // by the chain that commits them): decode must stay total, and any
    // survivor is just structurally checked downstream by apply().
    expect_no_crash(
        [](BytesView d) { (void)smr::MembershipPolicy::decode(d); },
        mutated);
    expect_no_crash(
        [](BytesView d) { (void)smr::MembershipPolicy::decode_command(d); },
        mutated);

    try {
      const auto c = checkpoint::CheckpointCert::decode(mutated);
      if (c.verify_aggregate(*agg, 2, kN)) {
        EXPECT_EQ(c.id, id)
            << "mutated aggregate checkpoint cert accepted with altered id";
      }
    } catch (const SerdeError&) {
    } catch (const std::invalid_argument&) {
    }

    try {
      const auto c = smr::AcceptanceCert::decode(mutated);
      if (c.verify(*agg, 2)) {
        EXPECT_EQ(smr::acceptance_preimage(c.client, c.req_id, c.result),
                  acc_preimage)
            << "mutated acceptance cert accepted with altered content";
      }
    } catch (const SerdeError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(FuzzDecode, AggregateCertCountBombRejected) {
  // The aggregate branch is selected by the 0xFFFFFFFF count sentinel;
  // a hostile bitset universe (4 G nodes) must not allocate gigabytes.
  Writer w;
  w.u8(static_cast<std::uint8_t>(smr::MsgType::kCertify));
  w.u64(1);
  w.u64(1);
  w.bytes(Bytes(32, 0x01));
  w.u32(0xffffffffu);  // aggregate sentinel
  w.u64(0);            // generation
  w.u32(0xfffffff0u);  // bitset universe: ~4G signers
  expect_no_crash([](BytesView d) { (void)smr::QuorumCert::decode(d); },
                  w.buffer());
}

TEST(FuzzDecode, LengthPrefixBombsRejected) {
  // A 4 GiB length prefix must not allocate 4 GiB.
  Writer w;
  w.u32(0xffffffffu);
  expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); },
                  w.buffer());
  Reader r(w.buffer());
  EXPECT_THROW((void)r.bytes(), SerdeError);
}

}  // namespace
}  // namespace eesmr
