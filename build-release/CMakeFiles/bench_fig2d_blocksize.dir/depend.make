# Empty dependencies file for bench_fig2d_blocksize.
# This may be replaced when dependencies are built.
