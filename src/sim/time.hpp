// Simulated-time vocabulary for the discrete-event engine.
#pragma once

#include <cstdint>

namespace eesmr::sim {

/// Simulated time in microseconds since simulation start.
///
/// A strong-ish alias (plain integer arithmetic is intentional: protocol
/// code computes deadlines as now + k * Delta). 2^63 us ≈ 292k years, so
/// overflow is not a practical concern.
using SimTime = std::int64_t;

/// Durations share the representation of SimTime.
using Duration = std::int64_t;

constexpr Duration microseconds(std::int64_t n) { return n; }
constexpr Duration milliseconds(std::int64_t n) { return n * 1000; }
constexpr Duration seconds(std::int64_t n) { return n * 1'000'000; }

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / 1e6;
}
constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) / 1e3;
}

}  // namespace eesmr::sim
