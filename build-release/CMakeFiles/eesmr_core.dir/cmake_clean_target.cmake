file(REMOVE_RECURSE
  "libeesmr_core.a"
)
