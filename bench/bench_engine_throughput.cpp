// Engine-throughput trajectory bench: how much simulation the engine
// does per simulated second, measured with the deterministic profiler
// (src/obs/prof.hpp) across protocol × cluster size × offered load.
//
// The default columns are pure functions of the simulation — scheduler
// events fired, metered signature verifications, encoded wire bytes —
// so the committed baseline under bench/baselines/ gates them in CI via
// tools/bench_diff: a PR that silently doubles the events or bytes the
// engine burns per commit shows up as a trajectory regression, not as
// an unexplained wall-clock slowdown three PRs later.
//
// --host-timing additionally wall-clocks each run on this machine
// (sim-events per host second). Opt-in and serial-forced because host
// timing is nondeterministic; those columns never enter the baseline.
#include <chrono>
#include <string>
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/harness/cluster.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

namespace {

std::uint64_t sum_sched_events(const prof::Snapshot& s) {
  std::uint64_t total = 0;
  for (const auto& [kind, count] : s.sched_events) total += count;
  return total;
}

std::uint64_t sum_crypto(const prof::Snapshot& s, const std::string& op) {
  std::uint64_t total = 0;
  for (const auto& [key, count] : s.crypto_ops) {
    if (key[1] == op) total += count;
  }
  return total;
}

std::uint64_t sum_codec(const prof::Snapshot& s, const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& [key, bytes] : s.codec_bytes) {
    if (key[1] == dir) total += bytes;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("bench_engine_throughput",
                     "simulator engine throughput trajectory (profiler "
                     "counters per simulated second)",
                     argc, argv, /*default_seed=*/11);
  const bool host_timing = ex.flag("--host-timing");
  if (host_timing) {
    ex.force_serial("--host-timing wall-clocks runs; no core contention");
  }
  // Workers for the --host-timing comparison run (0 on the CLI = 4).
  const std::size_t cmp_workers =
      ex.options().workers > 0 ? ex.options().workers : 4;

  const sim::Duration run_time =
      ex.smoke() ? sim::seconds(5) : sim::seconds(30);
  const std::vector<Protocol> protocols = {Protocol::kEesmr,
                                           Protocol::kSyncHotStuff};
  const std::vector<std::size_t> sizes = {4, 7};

  exp::Grid grid;
  grid.axis("protocol", {"EESMR", "SyncHS"});
  grid.axis("n", {"n4", "n7"});
  grid.axis("load", {"closed_w4", "open_100rps"});

  exp::Report& rep = ex.run("engine_throughput", grid,
                            [&](const exp::RunContext& c) {
    ClusterConfig cfg;
    cfg.protocol = protocols[c.at("protocol")];
    cfg.n = sizes[c.at("n")];
    cfg.f = (cfg.n - 1) / 2;
    cfg.seed = c.seed;
    cfg.batch_size = 16;
    cfg.clients = 2;
    cfg.host_timing = host_timing;
    if (c.label("load") == "closed_w4") {
      cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
      cfg.workload.outstanding = 4;
    } else {
      cfg.workload.mode = client::WorkloadSpec::Mode::kOpenLoop;
      cfg.workload.rate_per_sec = 100.0;
    }
    exp::prepare(c, cfg);

    harness::Cluster cluster(cfg);
    const auto start = std::chrono::steady_clock::now();
    const RunResult r = cluster.run_for(run_time);
    const auto end = std::chrono::steady_clock::now();
    exp::observe(c, r);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");

    const double sim_s = sim::to_seconds(r.end_time);
    const std::uint64_t events = sum_sched_events(r.prof);
    const std::uint64_t verifies = sum_crypto(r.prof, "verify");
    const std::uint64_t encoded = sum_codec(r.prof, "encode");
    exp::MetricRow row;
    row.set("sim_events", events);
    row.set("crypto_verifies", verifies);
    row.set("bytes_encoded", encoded);
    row.set("sim_seconds", sim_s);
    row.set("events_per_sim_s", sim_s > 0 ? events / sim_s : 0);
    row.set("verifies_per_sim_s", sim_s > 0 ? verifies / sim_s : 0);
    row.set("bytes_enc_per_sim_s", sim_s > 0 ? encoded / sim_s : 0);
    row.set("commits", r.min_committed());
    row.set("accepted", r.requests_accepted);
    // Pipeline trajectory (deterministic, baseline-gated): speculation
    // cache hits at replica/client decision points, metered re-verifies
    // skipped by the verified-signature cache, and bytes the zero-copy
    // network path did not copy.
    row.set("spec_join_hits", r.prof.pipeline.join_hits);
    row.set("sig_cache_hits", r.prof.pipeline.sig_cache_hits);
    row.set("bytes_copy_saved", r.prof.pipeline.bytes_copy_saved);
    if (host_timing) {
      const double host_ms =
          std::chrono::duration<double, std::milli>(end - start).count();
      row.set("host_ms", host_ms);
      row.set("events_per_host_s",
              host_ms > 0 ? events / (host_ms / 1e3) : 0);
      // Workers-enabled re-run of the identical configuration: same
      // seed, same simulation — only where verifies physically execute
      // changes. Columns compare serial vs pooled wall-clock and double
      // as an in-bench determinism check.
      ClusterConfig wcfg = cfg;
      wcfg.tracer = nullptr;  // the slot already holds the serial run
      wcfg.crypto_workers = cmp_workers;
      harness::Cluster wcluster(wcfg);
      const auto wstart = std::chrono::steady_clock::now();
      const RunResult wr = wcluster.run_for(run_time);
      const auto wend = std::chrono::steady_clock::now();
      const double whost_ms =
          std::chrono::duration<double, std::milli>(wend - wstart).count();
      if (sum_sched_events(wr.prof) != events ||
          sum_crypto(wr.prof, "verify") != verifies ||
          wr.min_committed() != r.min_committed()) {
        std::fprintf(stderr,
                     "DETERMINISM MISMATCH: workers=%zu run diverged from "
                     "serial run\n",
                     cmp_workers);
      }
      row.set("host_ms_workers", whost_ms);
      row.set("workers_speedup", whost_ms > 0 ? host_ms / whost_ms : 0);
    }
    return row;
  });
  rep.print_table(1);

  ex.note("deterministic engine-throughput trajectory: scheduler events, "
          "metered verifies and encoded bytes per simulated second "
          "(baseline-gated); --host-timing adds this machine's "
          "sim-events per wall-clock second");
  return ex.finish();
}
