#include "src/energy/cost_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace eesmr::energy {

namespace {

// Table 1 sample points (message size in bytes -> mJ). The model
// interpolates linearly between points and extrapolates the last segment,
// so the bench reproduces Table 1 exactly at the measured sizes.
constexpr std::array<double, 4> kSizes = {256, 512, 1024, 2048};

struct MediumTable {
  std::array<double, 4> send;
  std::array<double, 4> recv;
  std::array<double, 4> multicast;
};

constexpr MediumTable kBleTable = {
    {0.73, 1.31, 2.93, 5.91},
    {0.55, 1.11, 2.64, 5.23},
    {0.58, 1.17, 2.35, 4.70},
};
constexpr MediumTable k4gTable = {
    {494.84, 989.68, 1979.36, 3958.72},
    {69.54, 139.08, 278.17, 556.35},
    {494.84, 989.68, 1979.36, 3958.72},  // no cellular multicast: = send
};
constexpr MediumTable kWifiTable = {
    {81.2, 153.98, 310.54, 610.55},
    {66.66, 123.23, 231.52, 423.58},
    {81.2, 153.98, 310.54, 610.55},  // treated as send
};

const MediumTable& table_for(Medium m) {
  switch (m) {
    case Medium::kBle:
      return kBleTable;
    case Medium::k4gLte:
      return k4gTable;
    case Medium::kWifi:
      return kWifiTable;
  }
  throw std::invalid_argument("unknown medium");
}

double interpolate(const std::array<double, 4>& y, double bytes) {
  if (bytes <= kSizes.front()) {
    // Scale down proportionally below the first sample (through origin).
    return y.front() * bytes / kSizes.front();
  }
  for (std::size_t i = 1; i < kSizes.size(); ++i) {
    if (bytes <= kSizes[i]) {
      const double t = (bytes - kSizes[i - 1]) / (kSizes[i] - kSizes[i - 1]);
      return y[i - 1] + t * (y[i] - y[i - 1]);
    }
  }
  // Extrapolate the final segment's slope.
  const double slope =
      (y[3] - y[2]) / (kSizes[3] - kSizes[2]);
  return y[3] + slope * (bytes - kSizes[3]);
}

// Table 2 (Joules). Indexed by SchemeId order in signer.hpp.
struct SigCost {
  double sign_j;
  double verify_j;
};
constexpr std::array<SigCost, 11> kSigCosts = {{
    {0.19, 0.19},    // HMAC-SHA256
    {5.80, 11.03},   // ECDSA BP160R1
    {13.88, 27.34},  // ECDSA BP256R1
    {0.84, 1.50},    // ECDSA SECP192R1
    {1.16, 2.24},    // ECDSA SECP192K1
    {1.10, 2.14},    // ECDSA SECP224R1
    {1.60, 3.04},    // ECDSA SECP256R1
    {1.72, 3.35},    // ECDSA SECP256K1
    {0.40, 0.02},    // RSA-1024
    {0.79, 0.03},    // RSA-1260
    {2.41, 0.06},    // RSA-2048
}};

// One SHA-256 compression on the Cortex-M4: Table 2's 0.19 J HMAC over a
// short message is ~4 compressions -> 47.5 mJ per 64-byte block.
constexpr double kHashBlockMj = 47.5;

std::size_t sha256_blocks(std::size_t bytes) {
  // Message + 9 padding/length bytes, rounded up to 64-byte blocks.
  return (bytes + 9 + 63) / 64;
}

}  // namespace

const char* medium_name(Medium m) {
  switch (m) {
    case Medium::kBle:
      return "BLE";
    case Medium::k4gLte:
      return "4G LTE";
    case Medium::kWifi:
      return "WiFi";
  }
  return "?";
}

double send_energy_mj(Medium m, std::size_t bytes) {
  return interpolate(table_for(m).send, static_cast<double>(bytes));
}

double recv_energy_mj(Medium m, std::size_t bytes) {
  return interpolate(table_for(m).recv, static_cast<double>(bytes));
}

double multicast_energy_mj(Medium m, std::size_t bytes) {
  return interpolate(table_for(m).multicast, static_cast<double>(bytes));
}

double sign_energy_mj(crypto::SchemeId scheme) {
  return kSigCosts[static_cast<std::size_t>(scheme)].sign_j * 1e3;
}

double verify_energy_mj(crypto::SchemeId scheme) {
  return kSigCosts[static_cast<std::size_t>(scheme)].verify_j * 1e3;
}

double batch_verify_energy_mj(crypto::SchemeId scheme, std::size_t k) {
  if (k == 0) return 0.0;
  // Marginal-cost fraction of the first verify. ECDSA batches well
  // (shared point arithmetic across the combined equation, as in
  // Bernstein et al.'s batch Ed25519 numbers, ~0.55 marginal); RSA's
  // cheap e=65537 exponentiation leaves little to share (~0.9); a MAC
  // check is a flat hash either way (1.0 — batching buys nothing).
  double marginal = 1.0;
  switch (scheme) {
    case crypto::SchemeId::kEcdsaBp160r1:
    case crypto::SchemeId::kEcdsaBp256r1:
    case crypto::SchemeId::kEcdsaSecp192r1:
    case crypto::SchemeId::kEcdsaSecp192k1:
    case crypto::SchemeId::kEcdsaSecp224r1:
    case crypto::SchemeId::kEcdsaSecp256r1:
    case crypto::SchemeId::kEcdsaSecp256k1:
      marginal = 0.55;
      break;
    case crypto::SchemeId::kRsa1024:
    case crypto::SchemeId::kRsa1260:
    case crypto::SchemeId::kRsa2048:
      marginal = 0.9;
      break;
    case crypto::SchemeId::kHmacSha256:
      marginal = 1.0;
      break;
  }
  const double first = verify_energy_mj(scheme);
  return first * (1.0 + marginal * static_cast<double>(k - 1));
}

// BLS12-381 on a Cortex-M-class device, scaled to the Table-2 envelope:
// one G1 scalar multiplication (share), one pairing, one G1/G2 addition.
constexpr double kAggShareMj = 2100.0;   // ~1.3x an ECDSA-P256 sign
constexpr double kAggPairingMj = 4300.0; // per pairing; verify needs two
constexpr double kAggPointAddMj = 2.1;   // pubkey / share aggregation step

double agg_sign_energy_mj() { return kAggShareMj; }

double agg_verify_energy_mj(std::size_t signers) {
  if (signers == 0) return 0.0;
  return 2.0 * kAggPairingMj +
         kAggPointAddMj * static_cast<double>(signers - 1);
}

double agg_combine_energy_mj(std::size_t shares) {
  if (shares <= 1) return 0.0;
  return kAggPointAddMj * static_cast<double>(shares - 1);
}

double hash_energy_mj(std::size_t bytes) {
  return kHashBlockMj * static_cast<double>(sha256_blocks(bytes));
}

double mac_energy_mj(std::size_t bytes) {
  // HMAC = 2 extra compressions (ipad/opad) + inner message blocks + the
  // outer 32-byte digest block.
  return kHashBlockMj *
         static_cast<double>(sha256_blocks(bytes) + 3);
}

double attest_energy_mj(crypto::SchemeId scheme) {
  // Counter increment + signature inside the enclave, plus the boundary
  // crossing. The signature dominates; the increment rides on the call
  // overhead constant.
  return sign_energy_mj(scheme) + kAttestCallOverheadMj;
}

double verify_attest_energy_mj(crypto::SchemeId scheme) {
  return verify_energy_mj(scheme) + kAttestCallOverheadMj;
}

std::size_t ble_adv_packets(std::size_t bytes) {
  return std::max<std::size_t>(1, (bytes + kBleAdvPayload - 1) / kBleAdvPayload);
}

double kcast_success_probability(std::size_t bytes, std::size_t k,
                                 std::size_t redundancy) {
  if (k == 0 || redundancy == 0) return 0.0;
  // Receiver misses a packet only if it misses all `redundancy` copies.
  const double miss = std::pow(kBleAdvLossProb, static_cast<double>(redundancy));
  const double per_packet_all_k = std::pow(1.0 - miss, static_cast<double>(k));
  return std::pow(per_packet_all_k,
                  static_cast<double>(ble_adv_packets(bytes)));
}

std::size_t kcast_redundancy_for(std::size_t bytes, std::size_t k,
                                 double reliability) {
  for (std::size_t r = 1; r <= 64; ++r) {
    if (kcast_success_probability(bytes, k, r) >= reliability) return r;
  }
  throw std::runtime_error("kcast_redundancy_for: unreachable reliability");
}

double kcast_send_energy_mj(std::size_t bytes, std::size_t redundancy) {
  return kBleAdvTxMj * static_cast<double>(ble_adv_packets(bytes)) *
         static_cast<double>(redundancy);
}

double kcast_recv_energy_mj(std::size_t bytes, std::size_t redundancy) {
  return kBleAdvRxMj * static_cast<double>(ble_adv_packets(bytes)) *
         static_cast<double>(redundancy);
}

double gatt_send_energy_mj(std::size_t bytes) {
  return kGattTxOverheadMj + kGattTxPerByteMj * static_cast<double>(bytes);
}

double gatt_recv_energy_mj(std::size_t bytes) {
  return kGattRxOverheadMj + kGattRxPerByteMj * static_cast<double>(bytes);
}

}  // namespace eesmr::energy
