// Run-level measurements: the quantities the paper's figures plot.
#pragma once

#include <cstdint>
#include <vector>

#include "src/client/stats.hpp"
#include "src/energy/meter.hpp"
#include "src/sim/time.hpp"
#include "src/smr/block.hpp"

namespace eesmr::harness {

struct RunResult {
  std::vector<energy::Meter> meters;            ///< per node
  std::vector<std::vector<smr::Block>> logs;    ///< committed, per node
  std::vector<bool> correct;                    ///< honest && counted
  std::vector<bool> counted;                    ///< counted in energy sums
  std::uint64_t view_changes = 0;               ///< max over correct nodes
  std::uint64_t transmissions = 0;
  std::uint64_t bytes_transmitted = 0;
  sim::SimTime end_time = 0;

  // Client/workload measurements (empty when no clients configured).
  client::LatencyHistogram latency;  ///< submit→accept, all clients
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_accepted = 0;
  std::uint64_t request_retransmissions = 0;

  /// Safety (Definition 2.1): for every height, all correct nodes that
  /// committed a block at that height committed the same block.
  [[nodiscard]] bool safety_ok() const;

  /// Minimum committed-log length over correct nodes.
  [[nodiscard]] std::size_t min_committed() const;
  [[nodiscard]] std::size_t max_committed() const;

  /// Accepted client requests per simulated second (goodput).
  [[nodiscard]] double accepted_per_sec() const;

  /// Total energy over counted correct nodes (mJ).
  [[nodiscard]] double total_energy_mj() const;
  /// Total energy / min committed blocks — the paper's "energy per SMR".
  [[nodiscard]] double energy_per_block_mj() const;
  [[nodiscard]] double node_energy_mj(NodeId id) const;
  /// Per-node energy / committed blocks of that node.
  [[nodiscard]] double node_energy_per_block_mj(NodeId id) const;
};

}  // namespace eesmr::harness
