// Mempool: dedup of re-submitted commands, committed-command removal,
// synthetic workload determinism.
#include <gtest/gtest.h>

#include "src/smr/mempool.hpp"
#include "src/smr/request.hpp"

namespace eesmr::smr {
namespace {

Command cmd(const std::string& s) { return Command{to_bytes(s)}; }

Block block_with(std::initializer_list<std::string> cmds) {
  Block b;
  b.parent = genesis_hash();
  b.height = 1;
  for (const auto& s : cmds) b.cmds.push_back(cmd(s));
  return b;
}

TEST(Mempool, ResubmitIsDeduplicated) {
  Mempool pool;
  EXPECT_TRUE(pool.submit(cmd("a")));
  EXPECT_FALSE(pool.submit(cmd("a")));  // client retransmit
  EXPECT_TRUE(pool.submit(cmd("b")));
  EXPECT_EQ(pool.pending(), 2u);

  const auto batch = pool.next_batch(4);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], cmd("a"));
  EXPECT_EQ(batch[1], cmd("b"));
}

TEST(Mempool, CommittedCommandsRemoved) {
  Mempool pool;
  pool.submit(cmd("a"));
  pool.submit(cmd("b"));
  pool.submit(cmd("c"));
  pool.remove_committed(block_with({"a", "c"}));
  EXPECT_EQ(pool.pending(), 1u);
  EXPECT_EQ(pool.next_batch(4).front(), cmd("b"));

  // Identical untagged bytes after commit are a NEW operation (think a
  // second "inc a") and stay orderable.
  EXPECT_TRUE(pool.submit(cmd("a")));
  EXPECT_EQ(pool.pending(), 2u);
}

Command tagged_cmd(NodeId client, std::uint64_t req_id) {
  ClientRequest req;
  req.client = client;
  req.req_id = req_id;
  req.op = to_bytes(std::string("inc a"));
  req.sig = to_bytes(std::string("sig"));
  return Command{req.encode()};
}

TEST(Mempool, CommittedClientRequestNeverReaccepted) {
  // A tagged request names one operation via (client, req_id): a late
  // retransmit after commit must not be ordered a second time.
  Mempool pool;
  const Command req = tagged_cmd(5, 1);
  EXPECT_TRUE(pool.submit(req));
  Block b;
  b.parent = genesis_hash();
  b.height = 1;
  b.cmds = {req};
  pool.remove_committed(b);
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_FALSE(pool.submit(req));

  // A different req_id from the same client is a different operation.
  EXPECT_TRUE(pool.submit(tagged_cmd(5, 2)));
}

TEST(Mempool, RemoveCommittedHandlesLargeQueueAndBlock) {
  // Regression for the O(queue x block) scan: 4k pending commands and a
  // 1k-command block should complete instantly in one pass.
  Mempool pool;
  for (int i = 0; i < 4096; ++i) pool.submit(cmd("cmd" + std::to_string(i)));
  Block b;
  b.parent = genesis_hash();
  b.height = 1;
  for (int i = 0; i < 1024; ++i) b.cmds.push_back(cmd("cmd" + std::to_string(i * 4)));
  pool.remove_committed(b);
  EXPECT_EQ(pool.pending(), 4096u - 1024u);
}

TEST(Mempool, SyntheticFillerIsDeterministicAndCounted) {
  Mempool pool(16);
  const auto a = pool.next_batch(3);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(pool.synthesized(), 3u);
  for (const auto& c : a) EXPECT_EQ(c.data.size(), 16u);
  EXPECT_NE(a[0], a[1]);

  Mempool pool2(16);
  EXPECT_EQ(pool2.next_batch(3), a);  // same counter sequence
}

TEST(Mempool, ExplicitCommandsPrecedeSyntheticFiller) {
  Mempool pool(8);
  pool.submit(cmd("real"));
  const auto batch = pool.next_batch(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], cmd("real"));
  EXPECT_EQ(batch[1].data.size(), 8u);
}

}  // namespace
}  // namespace eesmr::smr
