#include "src/net/hypergraph.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

namespace eesmr::net {

namespace {
constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();

/// Number of f-subsets of n elements, saturating.
std::size_t binom_saturating(std::size_t n, std::size_t f,
                             std::size_t limit) {
  if (f > n) return 0;
  std::size_t result = 1;
  for (std::size_t i = 0; i < f; ++i) {
    result = result * (n - i) / (i + 1);
    if (result > limit) return limit + 1;
  }
  return result;
}
}  // namespace

Hypergraph Hypergraph::full_mesh(std::size_t n) {
  Hypergraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i != j) g.add_edge({i, {j}});
    }
  }
  return g;
}

Hypergraph Hypergraph::kcast_ring(std::size_t n, std::size_t k) {
  if (k == 0 || k >= n) {
    throw std::invalid_argument("kcast_ring: need 1 <= k < n");
  }
  Hypergraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    HyperEdge e;
    e.sender = i;
    for (std::size_t j = 1; j <= k; ++j) {
      e.receivers.push_back(static_cast<NodeId>((i + j) % n));
    }
    g.add_edge(std::move(e));
  }
  return g;
}

Hypergraph Hypergraph::expanded(const Hypergraph& base, std::size_t n) {
  if (n < base.n()) {
    throw std::invalid_argument("expanded: n smaller than base graph");
  }
  Hypergraph g(n);
  for (const HyperEdge& e : base.edges()) g.add_edge(e);
  return g;
}

void Hypergraph::add_edge(HyperEdge edge) {
  if (edge.sender >= n_) {
    throw std::invalid_argument("add_edge: sender out of range");
  }
  if (edge.receivers.empty()) {
    throw std::invalid_argument("add_edge: empty receiver set");
  }
  for (NodeId r : edge.receivers) {
    if (r >= n_) throw std::invalid_argument("add_edge: receiver out of range");
    if (r == edge.sender) {
      throw std::invalid_argument("add_edge: self-loop not allowed (A.1)");
    }
  }
  const std::size_t idx = edges_.size();
  out_edges_[edge.sender].push_back(idx);
  for (NodeId r : edge.receivers) in_edges_[r].push_back(idx);
  edges_.push_back(std::move(edge));
}

const std::vector<std::size_t>& Hypergraph::out_edges(NodeId node) const {
  return out_edges_.at(node);
}

const std::vector<std::size_t>& Hypergraph::in_edges(NodeId node) const {
  return in_edges_.at(node);
}

std::size_t Hypergraph::d_out(NodeId node) const {
  std::set<NodeId> reach;
  for (std::size_t idx : out_edges_.at(node)) {
    reach.insert(edges_[idx].receivers.begin(), edges_[idx].receivers.end());
  }
  return reach.size();
}

std::size_t Hypergraph::d_in(NodeId node) const {
  std::set<NodeId> sources;
  for (std::size_t idx : in_edges_.at(node)) {
    sources.insert(edges_[idx].sender);
  }
  return sources.size();
}

std::size_t Hypergraph::min_d_out() const {
  std::size_t best = kUnreached;
  for (NodeId i = 0; i < n_; ++i) best = std::min(best, d_out(i));
  return best;
}

std::size_t Hypergraph::min_d_in() const {
  std::size_t best = kUnreached;
  for (NodeId i = 0; i < n_; ++i) best = std::min(best, d_in(i));
  return best;
}

std::size_t Hypergraph::cap_d_out() const {
  std::size_t best = kUnreached;
  for (NodeId i = 0; i < n_; ++i) {
    best = std::min(best, out_edges_[i].size());
  }
  return best;
}

std::size_t Hypergraph::cap_d_in() const {
  std::size_t best = kUnreached;
  for (NodeId i = 0; i < n_; ++i) {
    best = std::min(best, in_edges_[i].size());
  }
  return best;
}

std::size_t Hypergraph::min_edge_degree() const {
  std::size_t best = kUnreached;
  for (const HyperEdge& e : edges_) {
    best = std::min(best, e.receivers.size());
  }
  return best == kUnreached ? 0 : best;
}

bool Hypergraph::edges_independent() const {
  for (NodeId node = 0; node < n_; ++node) {
    const auto& out = out_edges_[node];
    if (out.size() > 20) {
      throw std::invalid_argument(
          "edges_independent: node has too many out-edges for the exact "
          "check");
    }
    // Distinct subsets must yield distinct receiver unions. Equivalent to
    // |{union(subset)}| == 2^|out|.
    std::set<std::set<NodeId>> unions;
    const std::size_t subsets = std::size_t{1} << out.size();
    for (std::size_t mask = 0; mask < subsets; ++mask) {
      std::set<NodeId> u;
      for (std::size_t b = 0; b < out.size(); ++b) {
        if (mask & (std::size_t{1} << b)) {
          const auto& r = edges_[out[b]].receivers;
          u.insert(r.begin(), r.end());
        }
      }
      if (!unions.insert(std::move(u)).second) return false;
    }
  }
  return true;
}

bool Hypergraph::satisfies_fault_bound(std::size_t f) const {
  for (NodeId i = 0; i < n_; ++i) {
    if (f >= d_out(i) || f >= d_in(i)) return false;
  }
  return true;
}

bool Hypergraph::satisfies_kcast_bound(std::size_t f, std::size_t k) const {
  return f < k * std::min(cap_d_in(), cap_d_out());
}

std::vector<std::size_t> Hypergraph::bfs_distances(
    NodeId origin, const std::vector<bool>& removed) const {
  std::vector<std::size_t> dist(n_, kUnreached);
  if (removed[origin]) return dist;
  dist[origin] = 0;
  std::queue<NodeId> frontier;
  frontier.push(origin);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (std::size_t idx : out_edges_[u]) {
      for (NodeId v : edges_[idx].receivers) {
        if (removed[v] || dist[v] != kUnreached) continue;
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

bool Hypergraph::strongly_connected_without(
    const std::vector<NodeId>& removed_list) const {
  std::vector<bool> removed(n_, false);
  for (NodeId r : removed_list) removed.at(r) = true;
  NodeId origin = kNoNode;
  std::size_t alive = 0;
  for (NodeId i = 0; i < n_; ++i) {
    if (!removed[i]) {
      if (origin == kNoNode) origin = i;
      ++alive;
    }
  }
  if (alive <= 1) return true;
  // Strong connectivity over the survivors: every survivor must reach
  // every other. BFS from each survivor (n is small in every use).
  for (NodeId s = 0; s < n_; ++s) {
    if (removed[s]) continue;
    const auto dist = bfs_distances(s, removed);
    for (NodeId t = 0; t < n_; ++t) {
      if (!removed[t] && dist[t] == kUnreached) return false;
    }
  }
  return true;
}

bool Hypergraph::partition_resistant(std::size_t f, sim::Rng& rng,
                                     std::size_t exact_limit,
                                     std::size_t samples) const {
  if (f == 0) return strongly_connected();
  if (f >= n_) return false;
  const std::size_t count = binom_saturating(n_, f, exact_limit);
  if (count <= exact_limit) {
    // Exhaustive: iterate all f-subsets with the classic odometer.
    std::vector<NodeId> subset(f);
    for (std::size_t i = 0; i < f; ++i) subset[i] = static_cast<NodeId>(i);
    for (;;) {
      if (!strongly_connected_without(subset)) return false;
      // Advance.
      std::size_t i = f;
      while (i-- > 0) {
        if (subset[i] + (f - i) < n_) {
          ++subset[i];
          for (std::size_t j = i + 1; j < f; ++j) {
            subset[j] = subset[j - 1] + 1;
          }
          break;
        }
        if (i == 0) return true;  // odometer exhausted
      }
      if (subset[0] + f > n_) return true;
    }
  }
  // Randomized fallback: any counterexample proves non-resistance.
  for (std::size_t s = 0; s < samples; ++s) {
    std::set<NodeId> pick;
    while (pick.size() < f) {
      pick.insert(static_cast<NodeId>(rng.below(n_)));
    }
    if (!strongly_connected_without(
            std::vector<NodeId>(pick.begin(), pick.end()))) {
      return false;
    }
  }
  return true;
}

std::size_t Hypergraph::diameter() const {
  const std::vector<bool> removed(n_, false);
  std::size_t best = 0;
  for (NodeId s = 0; s < n_; ++s) {
    const auto dist = bfs_distances(s, removed);
    for (NodeId t = 0; t < n_; ++t) {
      if (s != t && dist[t] != kUnreached) best = std::max(best, dist[t]);
    }
  }
  return best;
}

}  // namespace eesmr::net
