# Empty dependencies file for bench_fig1_feasible_region.
# This may be replaced when dependencies are built.
