// Dolev-Strong authenticated BA: validity, agreement under an
// equivocating sender, and the f+1-round cost structure (Theorem 4.1).
#include "src/baselines/dolev_strong.hpp"

#include <gtest/gtest.h>

namespace eesmr::baselines {
namespace {

const Bytes kValue = to_bytes(std::string("launch at dawn"));

TEST(DolevStrong, ValidityWithHonestSender) {
  const auto r = run_dolev_strong(4, 1, kValue, /*byzantine_sender=*/false);
  ASSERT_EQ(r.decisions.size(), 4u);
  for (const Bytes& d : r.decisions) EXPECT_EQ(d, kValue);
  EXPECT_TRUE(r.agreement());
}

TEST(DolevStrong, AgreementUnderEquivocatingSender) {
  const auto r = run_dolev_strong(5, 2, kValue, /*byzantine_sender=*/true);
  // Correct nodes agree; with two extracted values they output ⊥.
  EXPECT_TRUE(r.agreement());
  for (const Bytes& d : r.decisions) {
    EXPECT_EQ(d, DolevStrongNode::bottom());
  }
}

TEST(DolevStrong, AgreementAcrossSeedsAndSizes) {
  for (std::size_t n : {4u, 6u, 9u}) {
    for (std::uint64_t seed : {1u, 7u, 42u}) {
      const auto honest =
          run_dolev_strong(n, (n - 1) / 3, kValue, false, seed);
      EXPECT_TRUE(honest.agreement()) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(honest.decisions[0], kValue);
      const auto byz = run_dolev_strong(n, (n - 1) / 3, kValue, true, seed);
      EXPECT_TRUE(byz.agreement()) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(DolevStrong, SignatureCountGrowsWithRelaying) {
  // Every correct node relays each newly-extracted value once: the
  // per-run signature count is Θ(n) for the honest case, more when the
  // sender equivocates (two values relayed).
  const auto honest = run_dolev_strong(6, 2, kValue, false);
  const auto byz = run_dolev_strong(6, 2, kValue, true);
  auto signs = [](const DolevStrongResult& r) {
    std::uint64_t total = 0;
    for (const auto& m : r.meters) total += m.ops(energy::Category::kSign);
    return total;
  };
  EXPECT_GE(signs(honest), 6u - 1);
  EXPECT_GT(signs(byz), signs(honest));
}

TEST(DolevStrong, EnergyCostedPerPrimitive) {
  const auto r = run_dolev_strong(4, 1, kValue, false);
  for (std::size_t i = 0; i < r.meters.size(); ++i) {
    EXPECT_GT(r.meters[i].total_millijoules(), 0) << "node " << i;
  }
  EXPECT_GT(r.transmissions, 0u);
}

}  // namespace
}  // namespace eesmr::baselines
