file(REMOVE_RECURSE
  "CMakeFiles/example_cps_sensor_network.dir/examples/cps_sensor_network.cpp.o"
  "CMakeFiles/example_cps_sensor_network.dir/examples/cps_sensor_network.cpp.o.d"
  "example_cps_sensor_network"
  "example_cps_sensor_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cps_sensor_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
