// Table 3: best-case / worst-case comparison of SMR protocols —
// communication complexity, public-key operations and block period.
//
// The EESMR / Sync HotStuff / OptSync / Rotating-BFT rows are *measured*
// from the simulator (operation counters over a steady-state window);
// the Abraham et al. row is reported analytically (it shares Sync
// HotStuff's steady-state cost structure in the paper's table). The
// measured growth exponents over n are a formatting pass over the grid.
#include <cmath>
#include <string>
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

namespace {

/// Least-squares slope of log(y) over log(n): the measured growth
/// exponent ("O(n^slope)").
double growth_exponent(const std::vector<std::pair<std::size_t, double>>& pts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [n, y] : pts) {
    const double lx = std::log(static_cast<double>(n));
    const double ly = std::log(std::max(1e-9, y));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double m = static_cast<double>(pts.size());
  return (m * sxy - sx * sy) / (m * sxx - sx * sx);
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("table3_complexity",
                     "Table 3 (related-work comparison)", argc, argv,
                     /*default_seed=*/5);

  std::vector<std::size_t> ns = {5, 7, 9, 11, 13};
  if (ex.smoke()) ns = {5, 9, 13};
  const std::size_t blocks = ex.smoke() ? 6 : 12;
  const std::vector<std::string> variants = {"EESMR", "SyncHotStuff",
                                             "OptSync", "RotatingBFT"};

  exp::Grid grid;
  grid.axis("variant", variants);
  grid.axis_of("n", ns);

  exp::Report& rep = ex.run("per_block_costs", grid,
                            [&](const exp::RunContext& c) {
    const std::size_t variant = c.at("variant");
    ClusterConfig cfg;
    cfg.protocol = variant == 0   ? Protocol::kEesmr
                   : variant == 2 ? Protocol::kOptSync
                                  : Protocol::kSyncHotStuff;
    cfg.synchs.rotating_leader = variant == 3;
    cfg.n = ns[c.at("n")];
    cfg.f = (cfg.n - 1) / 2;
    cfg.k = 0;  // full mesh, matching the table's d = n-1 setting
    cfg.seed = c.seed;
    const RunResult r = exp::run_steady(c, cfg, blocks);
    const double b = static_cast<double>(r.min_committed());
    std::uint64_t signs = 0, verifies = 0;
    for (const auto& m : r.meters) {
      signs += m.ops(energy::Category::kSign);
      verifies += m.ops(energy::Category::kVerify);
    }
    exp::MetricRow row;
    row.set("msgs_per_block", static_cast<double>(r.transmissions) / b);
    row.set("bytes_per_block", static_cast<double>(r.bytes_transmitted) / b);
    row.set("signs_per_block", static_cast<double>(signs) / b);
    row.set("verifies_per_block", static_cast<double>(verifies) / b);
    return row;
  });
  rep.print_table(2);

  // Measured growth exponents over n (full mesh, d = n-1; transmissions
  // are per-edge, so O(nd) appears as n^2).
  const auto series = [&](std::size_t variant, const char* metric) {
    std::vector<std::pair<std::size_t, double>> pts;
    for (std::size_t i = 0; i < ns.size(); ++i) {
      pts.emplace_back(ns[i],
                       rep.rows[variant * ns.size() + i].number(metric));
    }
    return growth_exponent(pts);
  };
  exp::Report growth;
  growth.name = "growth_exponents";
  growth.grid.axis("variant", {"EESMR", "SyncHotStuff"});
  for (const std::size_t v : {std::size_t{0}, std::size_t{1}}) {
    exp::MetricRow row;
    row.set("msgs_exponent", series(v, "msgs_per_block"));
    row.set("verifies_exponent", series(v, "verifies_per_block"));
    row.set("paper_msgs", v == 0 ? "O(nd) -> n^2" : "O(n^2 d) -> n^3");
    row.set("paper_verifies", v == 0 ? "O(n)" : "O(n^2)");
    growth.rows.push_back(std::move(row));
  }
  ex.add_section(std::move(growth)).print_table(2);

  ex.note("Sync HotStuff's measured msgs/blk applies the paper's "
          "partial-vote-forwarding assumption in its favor, which removes "
          "the extra n vs the O(n^2 d) analytic bound");
  ex.note("analytic row (not separately implemented): Abraham et al. [4] "
          "O(n^2 d) comm, O(n) sign, O(n^2) verify, period — identical "
          "steady-state structure to Sync HotStuff per the paper");
  ex.note("expected shape: EESMR needs ONE signature per block system-wide "
          "and one flood; Sync HotStuff adds n per-block votes (locally "
          "broadcast under the partial-forwarding assumption) and "
          "f+1-signature certificates inside every proposal — visible in "
          "the sign/blk, verify/blk and bytes/blk columns");
  return ex.finish();
}
