// Typed-channel tests: dissemination policies, per-stream energy
// attribution, TargetedSubset failover, and the bounded flood-dedup
// window.
#include <gtest/gtest.h>

#include "src/net/channel.hpp"
#include "src/net/flood.hpp"

namespace eesmr::net {
namespace {

using energy::Stream;
using Kind = DisseminationPolicy::Kind;

struct Recorder final : public FloodClient {
  std::vector<std::pair<NodeId, Bytes>> delivered;
  void on_deliver(NodeId origin, BytesView payload) override {
    delivered.emplace_back(origin, to_bytes(payload));
  }
};

struct Fixture {
  sim::Scheduler sched;
  std::vector<energy::Meter> meters;
  std::unique_ptr<Network> net;
  std::vector<Recorder> recorders;
  std::vector<std::unique_ptr<FloodRouter>> routers;

  explicit Fixture(Hypergraph graph) {
    const std::size_t n = graph.n();
    meters.resize(n);
    net = std::make_unique<Network>(sched, std::move(graph),
                                    TransportConfig{}, &meters);
    recorders.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      routers.push_back(std::make_unique<FloodRouter>(*net, i, &recorders[i]));
    }
  }

  /// Open a channel at `owner` targeting every other node.
  std::unique_ptr<Channel> open(NodeId owner, Stream s,
                                DisseminationPolicy p) {
    std::vector<NodeId> targets;
    for (NodeId i = 0; i < net->graph().n(); ++i) {
      if (i != owner) targets.push_back(i);
    }
    return std::make_unique<Channel>(*routers[owner], s, p,
                                     std::move(targets));
  }
};

Bytes payload() { return to_bytes(std::string("payload")); }

// -- policies -----------------------------------------------------------------

TEST(Channel, DefaultResolvesToFloodAndReachesEveryone) {
  Fixture fx(Hypergraph::kcast_ring(8, 2));
  auto ch = fx.open(0, Stream::kProposal, DisseminationPolicy{});
  EXPECT_EQ(ch->policy().kind, Kind::kFlood);
  ch->disseminate(payload());
  fx.sched.run();
  for (NodeId i = 1; i < 8; ++i) {
    EXPECT_EQ(fx.recorders[i].delivered.size(), 1u) << "node " << i;
  }
}

TEST(Channel, LocalKcastStopsAtTheNeighborhood) {
  Fixture fx(Hypergraph::kcast_ring(8, 2));
  auto ch =
      fx.open(0, Stream::kVote, DisseminationPolicy::local_kcast());
  ch->disseminate(payload());
  fx.sched.run();
  EXPECT_EQ(fx.net->transmissions(), 1u);  // no re-forwarding
  EXPECT_EQ(fx.recorders[1].delivered.size(), 1u);
  EXPECT_EQ(fx.recorders[2].delivered.size(), 1u);
  for (NodeId i = 3; i < 8; ++i) {
    EXPECT_TRUE(fx.recorders[i].delivered.empty()) << "node " << i;
  }
}

TEST(Channel, RoutedUnicastDeliversToEveryTargetWithoutFlooding) {
  Fixture fx(Hypergraph::full_mesh(5));
  auto ch =
      fx.open(2, Stream::kVote, DisseminationPolicy::routed_unicast());
  ch->disseminate(payload());
  fx.sched.run();
  for (NodeId i = 0; i < 5; ++i) {
    if (i == 2) continue;
    ASSERT_EQ(fx.recorders[i].delivered.size(), 1u) << "node " << i;
  }
  // One direct edge per target; a flood would re-broadcast at every
  // receiver (4 + 4*4 transmissions in this mesh).
  EXPECT_EQ(fx.net->transmissions(), 4u);
}

TEST(Channel, TargetedSubsetContactsOnlyTheCurrentSubset) {
  Fixture fx(Hypergraph::full_mesh(5));
  auto ch = fx.open(4, Stream::kRequest,
                    DisseminationPolicy::targeted_subset(2, 0));
  ch->disseminate(payload());
  fx.sched.run();
  // Cursor starts at the first target: nodes 0 and 1.
  EXPECT_EQ(fx.recorders[0].delivered.size(), 1u);
  EXPECT_EQ(fx.recorders[1].delivered.size(), 1u);
  EXPECT_TRUE(fx.recorders[2].delivered.empty());
  EXPECT_TRUE(fx.recorders[3].delivered.empty());
}

// -- failover -----------------------------------------------------------------

TEST(Channel, TargetedSubsetFailsOverPastAnOfflineTarget) {
  Fixture fx(Hypergraph::full_mesh(4));
  fx.net->set_node_online(0, false);  // first target is dead
  auto ch = fx.open(3, Stream::kRequest,
                    DisseminationPolicy::targeted_subset(
                        1, sim::milliseconds(20)));
  ch->submit(7, payload());
  fx.sched.run_until(sim::milliseconds(35));
  EXPECT_TRUE(fx.recorders[0].delivered.empty());
  // After one timeout the subset rotated to node 1 and re-sent.
  ASSERT_EQ(fx.recorders[1].delivered.size(), 1u);
  EXPECT_GE(ch->failovers(), 1u);
  EXPECT_GE(ch->resends(), 1u);
  ch->complete(7);
  const std::uint64_t resends = ch->resends();
  fx.sched.run_until(sim::seconds(2));
  EXPECT_EQ(ch->resends(), resends);  // completion cancels the timer
  EXPECT_EQ(ch->inflight(), 0u);
}

TEST(Channel, TargetedSubsetBackoffGrowsTheRetryGap) {
  Fixture fx(Hypergraph::full_mesh(3));
  fx.net->set_node_online(0, false);
  fx.net->set_node_online(1, false);  // every target dead: retry forever
  auto ch = fx.open(2, Stream::kRequest,
                    DisseminationPolicy::targeted_subset(
                        2, sim::milliseconds(10), 2.0));
  ch->submit(1, payload());
  // Timeouts at 10, 30, 70, 150, 310 ms (gap doubles each time).
  fx.sched.run_until(sim::milliseconds(311));
  EXPECT_EQ(ch->resends(), 5u);
  fx.sched.run_until(sim::milliseconds(630));
  EXPECT_EQ(ch->resends(), 6u);  // next gap is 640 ms out
}

TEST(Channel, FloodSubmissionRetransmitsUntilComplete) {
  Fixture fx(Hypergraph::full_mesh(3));
  auto ch = fx.open(0, Stream::kRequest,
                    DisseminationPolicy{Kind::kFlood, 1,
                                        sim::milliseconds(10), 1.0, 0});
  ch->submit(1, payload());
  fx.sched.run_until(sim::milliseconds(35));
  EXPECT_EQ(ch->resends(), 3u);  // constant gap: 10, 20, 30 ms
  EXPECT_EQ(ch->failovers(), 0u);  // flood has no subset to rotate
  ch->complete(1);
  fx.sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(ch->resends(), 3u);
}

// -- per-stream energy attribution --------------------------------------------

TEST(Channel, StreamAttributionCoversOriginAndForwardedHops) {
  Fixture fx(Hypergraph::kcast_ring(6, 1));
  auto ch = fx.open(0, Stream::kVote, DisseminationPolicy::flood());
  ch->disseminate(payload());
  fx.sched.run();
  // Origin pays send energy on the vote stream and nothing elsewhere.
  EXPECT_GT(fx.meters[0].stream(Stream::kVote).send_mj, 0.0);
  EXPECT_EQ(fx.meters[0].stream(Stream::kProposal).send_mj, 0.0);
  EXPECT_EQ(fx.meters[0].stream(Stream::kOther).send_mj, 0.0);
  // A mid-ring relay's forwarding transmission keeps the origin's tag.
  EXPECT_GT(fx.meters[3].stream(Stream::kVote).send_mj, 0.0);
  EXPECT_GT(fx.meters[3].stream(Stream::kVote).recv_mj, 0.0);
  // Stream accounting ties out with the category totals.
  EXPECT_DOUBLE_EQ(fx.meters[3].stream(Stream::kVote).send_mj,
                   fx.meters[3].millijoules(energy::Category::kSend));
  EXPECT_EQ(fx.meters[3].stream(Stream::kVote).bytes_sent,
            fx.meters[3].bytes_sent());
}

TEST(Channel, DistinctStreamsAccumulateSeparately) {
  Fixture fx(Hypergraph::full_mesh(3));
  auto votes = fx.open(0, Stream::kVote, DisseminationPolicy::flood());
  auto props = fx.open(0, Stream::kProposal, DisseminationPolicy::flood());
  votes->disseminate(payload());
  props->disseminate(payload());
  props->disseminate(payload());
  fx.sched.run();
  const auto& m = fx.meters[0];
  EXPECT_EQ(m.stream(Stream::kVote).transmissions, 2u);      // 2 edges
  EXPECT_EQ(m.stream(Stream::kProposal).transmissions, 4u);  // 2 x 2 edges
  EXPECT_DOUBLE_EQ(
      m.stream(Stream::kVote).send_mj + m.stream(Stream::kProposal).send_mj,
      m.millijoules(energy::Category::kSend));
}

// -- bounded dedup window ------------------------------------------------------

TEST(SeenWindow, InOrderSequencesCompactToTheWatermark) {
  FloodRouter::SeenWindow w;
  for (std::uint64_t seq = 1; seq <= 10000; ++seq) {
    EXPECT_TRUE(w.insert(seq));
    EXPECT_FALSE(w.insert(seq));  // duplicate
  }
  EXPECT_EQ(w.watermark, 10000u);
  EXPECT_EQ(w.tail_size(), 0u);
}

TEST(SeenWindow, OutOfOrderArrivalsFoldInWhenTheGapFills) {
  FloodRouter::SeenWindow w;
  EXPECT_TRUE(w.insert(2));
  EXPECT_TRUE(w.insert(3));
  EXPECT_EQ(w.watermark, 0u);
  EXPECT_EQ(w.tail_size(), 2u);
  EXPECT_TRUE(w.insert(1));  // fills the gap: prefix 1..3 contiguous
  EXPECT_EQ(w.watermark, 3u);
  EXPECT_EQ(w.tail_size(), 0u);
  EXPECT_FALSE(w.insert(2));  // still deduplicated below the watermark
}

TEST(SeenWindow, PersistentGapsAreForceCompactedAtTheCap) {
  FloodRouter::SeenWindow w;
  // Every second seq (the origin "spent" the others on unicasts this
  // node never saw): gaps never fill, so the tail would grow forever.
  for (std::uint64_t seq = 2; seq <= 100000; seq += 2) w.insert(seq);
  EXPECT_LE(w.tail_size(), FloodRouter::SeenWindow::kMaxTail);
  // Recent seqs are still deduplicated.
  EXPECT_FALSE(w.insert(100000));
}

TEST(SeenWindow, AdversarialDuplicationAndReorderingStaysExactAndBounded) {
  // An adversarial link schedule re-delivers every seq several times and
  // reorders arrivals within a sliding window. The window must accept
  // each seq exactly once, reject every duplicate copy, and keep its
  // sparse tail bounded by the reordering horizon — dup-heavy schedules
  // must not grow dedup state past its bound.
  FloodRouter::SeenWindow w;
  sim::Rng rng(0xd0b1e);
  constexpr std::uint64_t kSeqs = 50000;
  constexpr std::uint64_t kHorizon = 64;  // reordering window
  std::uint64_t accepted = 0;
  std::vector<std::uint64_t> window;
  std::uint64_t next = 1;
  std::size_t max_tail = 0;
  while (accepted < kSeqs) {
    while (window.size() < kHorizon && next <= kSeqs) {
      window.push_back(next++);
      // Adversarial duplication: every seq queued as 1-3 copies.
      for (std::uint64_t c = rng.below(3); c > 0; --c) {
        window.push_back(window.back());
      }
    }
    // Deliver a random element of the in-flight window (reordering).
    const std::size_t pick = rng.below(window.size());
    if (w.insert(window[pick])) ++accepted;
    window.erase(window.begin() + static_cast<std::ptrdiff_t>(pick));
    max_tail = std::max(max_tail, w.tail_size());
  }
  for (const std::uint64_t leftover : window) {
    EXPECT_FALSE(w.insert(leftover));  // every remaining copy is a dup
  }
  EXPECT_EQ(accepted, kSeqs);  // exactly-once despite the duplication
  EXPECT_EQ(w.watermark, kSeqs);
  // A slow seq can hold the watermark while later arrivals pile into the
  // sparse tail, but never past the force-compaction cap — the bound is
  // O(window), independent of the 50k-seq load.
  EXPECT_LE(max_tail, FloodRouter::SeenWindow::kMaxTail);
}

TEST(Routing, DedupStateStaysBoundedUnderLongMixedTraffic) {
  // Long run of interleaved floods and routed unicasts: the unicast seqs
  // are gaps in the flood-observers' windows. Per-origin state must stay
  // within the window cap instead of accumulating every seq forever.
  Fixture fx(Hypergraph::kcast_ring(6, 2));
  for (int i = 0; i < 4000; ++i) {
    fx.routers[0]->send_to(1, payload());  // nodes 3..5 never see these
    fx.routers[0]->broadcast(payload());
    if (i % 16 == 0) fx.sched.run();
  }
  fx.sched.run();
  for (NodeId node = 1; node < 6; ++node) {
    EXPECT_LE(fx.routers[node]->dedup_tail_entries(),
              FloodRouter::SeenWindow::kMaxTail + 64)
        << "node " << node;
  }
}

}  // namespace
}  // namespace eesmr::net
