#include "src/baselines/trusted_baseline.hpp"

#include "src/common/serde.hpp"
#include "src/smr/request.hpp"

namespace eesmr::baselines {

using smr::Block;
using smr::Command;
using smr::Msg;
using smr::MsgType;

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

TrustedController::TrustedController(net::Network& net,
                                     smr::ReplicaConfig cfg,
                                     energy::Meter* meter, bool dedup)
    : ReplicaBase(net, std::move(cfg), meter), dedup_(dedup) {
  tip_ = smr::genesis_hash();
  // The control node answers point-to-point; it never floods.
  router().set_forwarding(false);
}

void TrustedController::start() {}

void TrustedController::handle(NodeId /*from*/, const Msg& msg) {
  if (msg.type != MsgType::kSubmit) return;
  try {
    Reader r(msg.data);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      Command cmd{r.bytes()};
      if (dedup_) {
        // A flooded client request reaches every CPS node and each one
        // ships it up: order the first copy only. (client, req_id)
        // names the operation; untagged commands pass through.
        const auto req = smr::ClientRequest::decode(cmd.data);
        if (req.has_value() && !seen_requests_[req->client].insert(req->req_id)) {
          ++dedup_skipped_;
          dedup_bytes_ += cmd.data.size();
          continue;
        }
      }
      pending_.push_back(std::move(cmd));
    }
  } catch (const SerdeError&) {
    return;
  }
  if (!round_timer_armed_) {
    // Collect submissions for Δ, then order one block.
    round_timer_armed_ = true;
    sched_.after(cfg_.delta, "round_timer", [this] { order_round(); });
  }
}

void TrustedController::order_round() {
  round_timer_armed_ = false;
  if (pending_.empty()) return;
  Block b;
  b.parent = tip_;
  b.height = ++tip_height_;
  b.view = 1;
  b.round = b.height;
  b.proposer = cfg_.id;
  const std::size_t take = std::min(pending_.size(), cfg_.batch_size);
  b.cmds.assign(pending_.begin(),
                pending_.begin() + static_cast<std::ptrdiff_t>(take));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(take));
  (void)hash_block(b);
  tip_ = b.hash();
  store_.add(b);
  ++blocks_ordered_;

  Msg ordered = make_msg(MsgType::kOrdered, b.height, b.encode());
  // Unicast to every CPS node (no cellular multicast exists).
  for (NodeId i = 0; i + 1 < cfg_.n; ++i) send(i, ordered);
  if (!pending_.empty()) {
    round_timer_armed_ = true;
    sched_.after(cfg_.delta, "round_timer", [this] { order_round(); });
  }
}

// ---------------------------------------------------------------------------
// CPS replica
// ---------------------------------------------------------------------------

TrustedBaselineReplica::TrustedBaselineReplica(net::Network& net,
                                               smr::ReplicaConfig cfg,
                                               NodeId controller,
                                               energy::Meter* meter)
    : ReplicaBase(net, std::move(cfg), meter), controller_(controller) {
  router().set_forwarding(false);  // star topology: single hop everywhere
}

void TrustedBaselineReplica::start() { submit_round(); }

void TrustedBaselineReplica::submit_round() {
  const std::vector<Command> batch = mempool_.next_batch(cfg_.batch_size);
  Writer w;
  w.u32(static_cast<std::uint32_t>(batch.size()));
  for (const Command& c : batch) w.bytes(c.data);
  Msg submit = make_msg(MsgType::kSubmit, 0, w.take());
  send(controller_, submit);
  // Next submission one ordering interval later (2Δ round trip).
  sched_.after(2 * cfg_.delta, "round_timer", [this] { submit_round(); });
}

void TrustedBaselineReplica::handle(NodeId from, const Msg& msg) {
  if (msg.type != MsgType::kOrdered || from != controller_ ||
      msg.author != controller_) {
    return;
  }
  Block b;
  try {
    b = Block::decode(msg.data);
  } catch (const SerdeError&) {
    return;
  }
  (void)hash_block(b);
  if (!integrate_block(b, controller_)) return;
  // The control node is trusted: commit immediately.
  commit_chain(b.hash());
}

}  // namespace eesmr::baselines
