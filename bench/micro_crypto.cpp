// google-benchmark micro-benchmarks for the from-scratch cryptographic
// primitives: the host-CPU counterpart of Table 2, confirming the
// relative ordering the paper exploits (RSA verify << RSA sign,
// RSA verify << ECDSA verify, HMAC cheapest).
#include <benchmark/benchmark.h>

#include "src/crypto/ecdsa.hpp"
#include "src/crypto/hmac.hpp"
#include "src/crypto/rsa.hpp"
#include "src/crypto/sha256.hpp"
#include "src/sim/rng.hpp"

namespace {

using namespace eesmr;
using namespace eesmr::crypto;

const Bytes& message() {
  static const Bytes msg = to_bytes(std::string(64, 'm'));
  return msg;
}

void BM_Sha256_64B(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(message()));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  const Bytes big(4096, 0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(big));
  }
}
BENCHMARK(BM_Sha256_4KiB);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(64, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac(key, message()));
  }
}
BENCHMARK(BM_HmacSha256);

const RsaKeyPair& rsa1024() {
  static const RsaKeyPair kp = [] {
    sim::Rng rng(1);
    return rsa_generate(1024, rng);
  }();
  return kp;
}

void BM_Rsa1024_Sign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(rsa1024().priv, message()));
  }
}
BENCHMARK(BM_Rsa1024_Sign)->MinTime(0.2);

void BM_Rsa1024_Verify(benchmark::State& state) {
  const Bytes sig = rsa_sign(rsa1024().priv, message());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify(rsa1024().pub, message(), sig));
  }
}
BENCHMARK(BM_Rsa1024_Verify)->MinTime(0.2);

const EcdsaKeyPair& p256_key() {
  static const EcdsaKeyPair kp = [] {
    sim::Rng rng(2);
    return ecdsa_generate(CurveId::kSecp256r1, rng);
  }();
  return kp;
}

void BM_EcdsaP256_Sign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_sign(p256_key().priv, message()));
  }
}
BENCHMARK(BM_EcdsaP256_Sign)->MinTime(0.2);

void BM_EcdsaP256_Verify(benchmark::State& state) {
  const Bytes sig = ecdsa_sign(p256_key().priv, message());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_verify(p256_key().pub, message(), sig));
  }
}
BENCHMARK(BM_EcdsaP256_Verify)->MinTime(0.2);

void BM_BigInt_ModExp_2048(benchmark::State& state) {
  sim::Rng rng(3);
  const BigInt m = BigInt::random_bits(rng, 2048);
  const BigInt b = BigInt::random_below(rng, m);
  const BigInt e(65537);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::mod_exp(b, e, m));
  }
}
BENCHMARK(BM_BigInt_ModExp_2048);

}  // namespace

BENCHMARK_MAIN();
