file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_eesmr_vs_synchs.dir/bench/fig3_eesmr_vs_synchs.cpp.o"
  "CMakeFiles/bench_fig3_eesmr_vs_synchs.dir/bench/fig3_eesmr_vs_synchs.cpp.o.d"
  "bench_fig3_eesmr_vs_synchs"
  "bench_fig3_eesmr_vs_synchs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_eesmr_vs_synchs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
