// Per-stream (channel-class) energy breakdown under different client
// submission policies: flood-all (every request reaches every replica)
// versus TargetedSubset (contact one replica, rotate on timeout; the
// contacted replica forwards to the leader). Reported per medium —
// the dissemination axis the paper sweeps in Table 1 / Fig 2a-2b —
// so the request-dissemination energy cost per medium is quantified.
#include <array>

#include "bench/bench_util.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;
using energy::Stream;

namespace {

constexpr std::uint64_t kRequests = 24;

ClusterConfig base_config(energy::Medium medium) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 7;
  cfg.f = 2;
  cfg.k = 3;  // the §5.6 k-cast ring
  cfg.medium = medium;
  cfg.seed = 42;
  cfg.clients = 3;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 1;
  cfg.workload.max_requests = kRequests / cfg.clients;
  return cfg;
}

RunResult run(ClusterConfig cfg) {
  harness::Cluster cluster(cfg);
  RunResult r = cluster.run_until_accepted(kRequests, sim::seconds(5000));
  if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
  if (r.requests_accepted < kRequests) {
    std::fprintf(stderr, "LIVENESS: only %llu/%llu accepted\n",
                 static_cast<unsigned long long>(r.requests_accepted),
                 static_cast<unsigned long long>(kRequests));
  }
  return r;
}

void print_breakdown(const char* label, const RunResult& r) {
  std::printf("\n  %s  (accepted=%llu  retransmits=%llu  failovers=%llu  "
              "forwards=%llu)\n",
              label, static_cast<unsigned long long>(r.requests_accepted),
              static_cast<unsigned long long>(r.request_retransmissions),
              static_cast<unsigned long long>(r.request_failovers),
              static_cast<unsigned long long>(r.requests_forwarded));
  std::printf("  %-11s | %10s %10s | %8s %10s\n", "stream", "send(mJ)",
              "recv(mJ)", "tx", "bytes");
  std::printf("  ------------+-----------------------+--------------------\n");
  double total = 0;
  for (std::size_t s = 0; s < energy::kNumStreams; ++s) {
    // Replica radios plus client submission energy: the full cost of
    // the stream, which is what the submission policies trade off.
    const auto st = r.stream_totals_all(static_cast<Stream>(s));
    if (st.transmissions == 0 && st.recv_mj == 0) continue;
    std::printf("  %-11s | %10.2f %10.2f | %8llu %10llu\n",
                energy::stream_name(static_cast<Stream>(s)), st.send_mj,
                st.recv_mj, static_cast<unsigned long long>(st.transmissions),
                static_cast<unsigned long long>(st.bytes_sent));
    total += st.total_mj();
  }
  std::printf("  %-11s | %21.2f mJ radio total\n", "", total);
}

}  // namespace

int main() {
  bench::header(
      "Fig D — per-stream energy: flood-all vs targeted-subset submission",
      "Table 1 media sweep applied per channel class (§5.4, §5.6); the "
      "ROADMAP client-failover follow-up");

  for (const energy::Medium medium :
       {energy::Medium::kBle, energy::Medium::kWifi}) {
    std::printf("\n== medium: %s ==\n", energy::medium_name(medium));

    ClusterConfig flood = base_config(medium);  // default submission
    const RunResult rf = run(flood);
    print_breakdown("flood-all submission", rf);

    ClusterConfig targeted = base_config(medium);
    targeted.client_submit = net::DisseminationPolicy::targeted_subset(1, 0);
    const RunResult rt = run(targeted);
    print_breakdown("targeted-subset submission", rt);

    const auto req_f = rf.stream_totals_all(Stream::kRequest);
    const auto req_t = rt.stream_totals_all(Stream::kRequest);
    std::printf("\n  request-stream energy: flood=%.2f mJ  targeted=%.2f mJ"
                "  (%.1fx less)\n",
                req_f.total_mj(), req_t.total_mj(),
                req_t.total_mj() > 0 ? req_f.total_mj() / req_t.total_mj()
                                     : 0.0);
    std::printf("  per accepted request: flood=%.2f mJ  targeted=%.2f mJ\n",
                req_f.total_mj() / static_cast<double>(rf.requests_accepted),
                req_t.total_mj() / static_cast<double>(rt.requests_accepted));
  }

  bench::note("expected shape: the request stream shrinks by roughly the "
              "flood fan-out (client reaches 1 replica + a leader forward "
              "instead of n floods); other streams are unchanged");
  bench::note("TargetedSubset pairs with a unicast replica request stream: "
              "contacted replicas forward to the leader, so progress does "
              "not depend on hitting the leader directly");
  return 0;
}
