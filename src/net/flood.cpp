#include "src/net/flood.hpp"

#include "src/common/serde.hpp"

namespace eesmr::net {

FloodRouter::FloodRouter(Network& net, NodeId self, FloodClient* client)
    : net_(net), self_(self), client_(client) {
  net_.attach(self, this);
}

Bytes FloodRouter::make_frame(NodeId dest, std::uint8_t flags,
                              BytesView payload) {
  Writer w;
  w.u32(self_);
  w.u64(next_seq_++);
  w.u32(dest);
  w.u8(flags);
  w.raw(payload);
  return w.take();
}

void FloodRouter::broadcast(BytesView payload) {
  const Bytes frame = make_frame(kNoNode, 0, payload);
  // Mark our own frame as seen so echoes are not re-forwarded.
  seen_[self_].insert(next_seq_ - 1);
  net_.transmit(self_, frame);
}

void FloodRouter::broadcast_local(BytesView payload) {
  const Bytes frame = make_frame(kNoNode, kNoForward, payload);
  seen_[self_].insert(next_seq_ - 1);
  net_.transmit(self_, frame);
}

void FloodRouter::send_to(NodeId dest, BytesView payload) {
  if (dest == self_) {
    // Local delivery shortcut (no radio energy).
    if (client_ != nullptr) client_->on_deliver(self_, payload);
    return;
  }
  const Bytes frame = make_frame(dest, 0, payload);
  seen_[self_].insert(next_seq_ - 1);
  net_.transmit_towards(self_, dest, frame);
}

void FloodRouter::broadcast_on_edges(const std::vector<std::size_t>& edge_sel,
                                     BytesView payload) {
  const Bytes frame = make_frame(kNoNode, 0, payload);
  seen_[self_].insert(next_seq_ - 1);
  net_.transmit_on(self_, edge_sel, frame);
}

void FloodRouter::on_packet(NodeId link_sender, BytesView frame) {
  NodeId origin;
  std::uint64_t seq;
  NodeId dest;
  std::uint8_t flags;
  Bytes payload;
  try {
    Reader r(frame);
    origin = r.u32();
    seq = r.u64();
    dest = r.u32();
    flags = r.u8();
    payload = r.raw(r.remaining());
  } catch (const SerdeError&) {
    return;  // malformed frame: drop
  }
  if (origin == self_) return;  // our own flood echoing back
  if (!seen_[origin].insert(seq).second) return;  // duplicate

  // Forward first (Line 213's "broadcast once"), then deliver.
  const bool forward = forwarding_ && (flags & kNoForward) == 0;
  if (forward && dest == kNoNode) {
    net_.transmit(self_, frame);
  } else if (forward && dest != self_) {
    // Addressed frame: route along shrinking shortest-path distance.
    constexpr std::size_t kInf = static_cast<std::size_t>(-1);
    const std::size_t mine = net_.hops(self_, dest);
    const std::size_t theirs = net_.hops(link_sender, dest);
    if (mine != kInf && mine < theirs) {
      net_.transmit_towards(self_, dest, frame);
    }
  }
  if (client_ != nullptr && (dest == kNoNode || dest == self_)) {
    client_->on_deliver(origin, payload);
  }
}

}  // namespace eesmr::net
