file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2e_viewchange.dir/bench/fig2e_viewchange.cpp.o"
  "CMakeFiles/bench_fig2e_viewchange.dir/bench/fig2e_viewchange.cpp.o.d"
  "bench_fig2e_viewchange"
  "bench_fig2e_viewchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2e_viewchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
