// Deterministic byte-oriented codec used for every wire message.
//
// All integers are little-endian fixed width. Variable-size payloads are
// length-prefixed with u32. The encoding is deterministic: encoding the
// same logical value always yields the same bytes, so hashes and
// signatures over encoded messages are stable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/common/bytes.hpp"

namespace eesmr {

/// Thrown by Reader on truncated or malformed input.
class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  /// Length-prefixed byte string.
  void bytes(BytesView v);
  /// Length-prefixed UTF-8 string.
  void str(const std::string& s);
  /// Raw bytes without a length prefix (caller knows the framing).
  void raw(BytesView v);

  /// Drop the contents but keep the allocation, so a long-lived Writer
  /// amortizes buffer growth across encodes on the hot path.
  void clear() { buf_.clear(); }

  [[nodiscard]] const Bytes& buffer() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked decoder over a view. Does not own the data.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  Bytes bytes();
  std::string str();
  /// Read exactly n raw bytes.
  Bytes raw(std::size_t n);

  /// Zero-copy variants: subspans into the underlying buffer instead of
  /// owned copies. Valid only while the backing storage outlives the
  /// view — deliver-path code that keeps the frame alive (SharedBytes)
  /// or consumes the view before returning should prefer these.
  BytesView bytes_view();
  BytesView raw_view(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }
  /// Throws SerdeError unless the whole input has been consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace eesmr
