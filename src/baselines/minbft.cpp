#include "src/baselines/minbft.hpp"

#include <algorithm>
#include <cassert>

#include "src/common/serde.hpp"

namespace eesmr::baselines {

using smr::Block;
using smr::BlockHash;
using smr::Msg;
using smr::MsgType;
using trusted::Attestation;
using trusted::AttestationTracker;

namespace {
std::string hkey(const BlockHash& h) {
  return std::string(h.begin(), h.end());
}

/// Counter gap beyond which a receiver stops holding back and re-baselines
/// (deep lag after a crash; see AttestationTracker::set_max_gap).
constexpr std::uint64_t kMaxCounterGap = 64;
/// Accepted-value digest memory per sender (replay-vs-reuse dedup window).
constexpr std::uint64_t kDigestWindow = 512;
/// Held-back attested messages across all senders (adversarial reordering
/// must not grow memory without bound).
constexpr std::size_t kMaxHoldback = 1024;
}  // namespace

MinBftReplica::MinBftReplica(net::Network& net, smr::ReplicaConfig cfg,
                             MinBftByzantineConfig byz, energy::Meter* meter)
    : ReplicaBase(net, std::move(cfg), meter),
      byz_(byz),
      counter_(cfg_.keyring, cfg_.id,
               cfg_.meter_crypto ? meter : nullptr, cfg_.profiler),
      progress_timer_(sched_),
      gap_timer_(sched_) {
  tracker_.set_max_gap(kMaxCounterGap);
  accepted_tip_ = smr::genesis_hash();
}

bool MinBftReplica::requires_signature_check(const Msg& msg) const {
  // kPropose / kCommit authenticate via the embedded attestation — the
  // UI *replaces* the protocol signature (MinBFT's core saving).
  return msg.type != MsgType::kPropose && msg.type != MsgType::kCommit;
}

void MinBftReplica::start() {
  if (started_) return;
  started_ = true;
  v_cur_ = 1;
  vc_target_ = 1;
  phase_ = Phase::kSteady;
  reset_progress_timer(10 * cfg_.delta);
  if (is_leader()) propose();
}

// ---------------------------------------------------------------------------
// Steady state: attested prepare (kPropose) -> attested commits
// ---------------------------------------------------------------------------

void MinBftReplica::propose() {
  if (crashed_ || phase_ != Phase::kSteady || !online() || !is_leader()) {
    return;
  }
  const BlockHash parent_hash =
      (accepted_height_ > committed_height() &&
       store_.extends(accepted_tip_, committed_tip()))
          ? accepted_tip_
          : committed_tip();
  const Block* parent = store_.get(parent_hash);
  if (parent == nullptr) return;
  const std::uint64_t height = parent->height + 1;
  if (byz_.mode == MinBftByzantineMode::kCrash && byz_.trigger_height != 0 &&
      height >= byz_.trigger_height) {
    crashed_ = true;
    progress_timer_.cancel();
    router().set_forwarding(false);
    return;
  }

  auto build = [&](const std::string& tag) {
    Block b;
    b.parent = parent_hash;
    b.height = height;
    b.view = v_cur_;
    b.round = height;
    b.proposer = cfg_.id;
    b.cmds = mempool_.next_batch(cfg_.batch_size);
    if (!tag.empty()) b.cmds.push_back({to_bytes(tag)});
    return b;
  };
  auto send_proposal = [&](const Block& b) {
    const BlockHash h = hash_block(b);
    const Attestation att = counter_.attest(h);
    Writer w;
    w.bytes(b.encode());
    w.bytes(att.encode());
    Msg prop;
    prop.type = MsgType::kPropose;
    prop.view = v_cur_;
    prop.round = b.height;
    prop.author = cfg_.id;
    prop.data = w.take();
    broadcast(prop);
    prof_flow_block("propose", b, energy::Stream::kProposal,
                    prop.encode().size());
    if (tracing()) {
      trace_instant("commit", "propose",
                    {{"height", exp::Json(b.height)},
                     {"view", exp::Json(v_cur_)},
                     {"counter", exp::Json(att.counter)}});
    }
    store_.add(b);
    handle_propose(cfg_.id, prop);
  };

  if (byz_.mode == MinBftByzantineMode::kEquivocate &&
      height == byz_.trigger_height) {
    // Counter reuse is structurally impossible: the two conflicting
    // blocks necessarily occupy successive counter values, so every
    // correct receiver sees them in the same order and rejects the
    // second on content.
    send_proposal(build("equivocation-A"));
    send_proposal(build("equivocation-B"));
    return;
  }
  send_proposal(build(""));
}

bool MinBftReplica::admit_attested(NodeId from, const Msg& msg,
                                   const Attestation& att) {
  switch (tracker_.observe(att)) {
    case AttestationTracker::Verdict::kAccept:
      // Draining is the CALLER's job, after it processed this message's
      // content: the held-back successor at counter+1 must not have its
      // content handled before this message's, or equivocation at
      // successive counters forks receivers on arrival order.
      return true;
    case AttestationTracker::Verdict::kReplay:
      // Same value, same digest: a redelivery (or a retry after chain
      // sync). Content handling below is idempotent, so process it.
      return true;
    case AttestationTracker::Verdict::kReuse:
      // Counter-reuse attempt: caught, never processed. The proof (two
      // digests under one value) would convict the sender in a real
      // deployment; here the conformance matrix asserts no fork forms.
      return false;
    case AttestationTracker::Verdict::kHold: {
      if (holdback_total_ >= kMaxHoldback) return false;
      auto& q = holdback_[att.node];
      if (q.emplace(att.counter, msg).second) ++holdback_total_;
      (void)from;
      arm_gap_timer();
      return false;
    }
  }
  return false;
}

void MinBftReplica::drain_holdback(NodeId /*node*/) {
  // handle() below can re-enter this function (a drained message's
  // acceptance advances another sender's frontier): the reentrancy guard
  // plus the restart-after-each-message scan keep the iteration safe
  // against the map mutations those nested calls make.
  if (draining_holdback_) return;
  draining_holdback_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = holdback_.begin(); it != holdback_.end(); ++it) {
      const auto next = it->second.begin();
      if (next == it->second.end() ||
          next->first != tracker_.last(it->first) + 1) {
        continue;
      }
      const NodeId from = it->first;
      const Msg msg = next->second;
      it->second.erase(next);
      --holdback_total_;
      if (it->second.empty()) holdback_.erase(it);
      handle(from, msg);
      progress = true;
      break;  // iterators may be stale after handle(): rescan
    }
  }
  draining_holdback_ = false;
}

void MinBftReplica::handle_propose(NodeId from, const Msg& msg) {
  Block b;
  Attestation att;
  try {
    Reader r(msg.data);
    b = Block::decode(r.bytes());
    att = Attestation::decode(r.bytes());
  } catch (const SerdeError&) {
    return;
  }
  // Validate against the view the MESSAGE claims, not v_cur_: the UI
  // stream must be consumed in counter order even when the content is
  // stale, otherwise a dropped old-view proposal leaves a permanent hole
  // in the sender's counter sequence and parks every later message from
  // it in the hold-back queue. View/phase gating happens after admission.
  if (att.node != leader_of(b.view) || b.proposer != att.node ||
      msg.view != b.view) {
    return;
  }
  const BlockHash h = hash_block(b);
  if (att.digest != h) return;  // UI must bind exactly this block
  if (!trusted::verify_attestation(
          *cfg_.keyring, att, cfg_.meter_crypto ? meter_ : nullptr,
          cfg_.profiler, "proposal")) {
    return;
  }
  if (!admit_attested(from, msg, att)) return;
  // Process this proposal's content BEFORE draining the hold-back queue:
  // the held successor at counter+1 may be the second half of an
  // equivocation pair, and handling it first would invert the counter
  // order at the content layer (receivers would fork on arrival order).
  if (msg.view == v_cur_ && phase_ == Phase::kSteady) {
    accept_proposal(from, msg, b, att);
  } else if (msg.view > v_cur_) {
    buffer_future(msg);
  }
  drain_holdback(att.node);
}

void MinBftReplica::accept_proposal(NodeId from, const Msg& msg,
                                    const Block& b, const Attestation& att) {
  const BlockHash h = b.hash();
  // Content equivocation at successive counters: every correct replica
  // processes proposals in counter order (admission + caller-side
  // holdback drain), so all accept the first block for this height and
  // demote the primary on the second.
  auto [it, inserted] = seen_.try_emplace(b.height, h);
  if (!inserted && it->second != h) {
    (void)integrate_block(b, from);
    send_view_change(v_cur_ + 1);
    return;
  }
  if (!integrate_block(b, from)) {
    retry_.push_back(msg);
    return;
  }
  if (!store_.extends(h, committed_tip())) return;
  if (b.height > accepted_height_) {
    accepted_tip_ = h;
    accepted_height_ = b.height;
  }
  // The primary's attested prepare counts as its commit.
  tally_commit(att.node, h);
  if (att.node == cfg_.id) return;  // the primary does not send kCommit
  if (!commit_sent_.insert(hkey(h)).second) return;
  if (tracing()) {
    trace_begin("block", "block", b.height,
                {{"round", exp::Json(b.round)}, {"view", exp::Json(b.view)}});
    trace_instant("commit", "vote", {{"height", exp::Json(b.height)}});
  }
  const Attestation own = counter_.attest(h);
  Writer w;
  w.bytes(h);
  w.bytes(own.encode());
  Msg commit;
  commit.type = MsgType::kCommit;
  commit.view = v_cur_;
  commit.round = b.height;
  commit.author = cfg_.id;
  commit.data = w.take();
  prof_flow_block("vote", b, energy::Stream::kVote, commit.encode().size());
  broadcast(commit);
  tally_commit(cfg_.id, h);
}

void MinBftReplica::handle_commit_msg(NodeId from, const Msg& msg) {
  BlockHash h;
  Attestation att;
  try {
    Reader r(msg.data);
    h = r.bytes();
    att = Attestation::decode(r.bytes());
  } catch (const SerdeError&) {
    return;
  }
  if (att.digest != h || att.node >= cfg_.n) return;
  if (!trusted::verify_attestation(
          *cfg_.keyring, att, cfg_.meter_crypto ? meter_ : nullptr,
          cfg_.profiler, "vote")) {
    return;
  }
  if (!admit_attested(from, msg, att)) return;
  // Tally regardless of msg.view: the commit is an attested acceptance
  // of block h, and the f+1 quorum is per block hash — acceptances that
  // crossed a view change still count (and must, for liveness under
  // leader churn).
  tally_commit(att.node, h);
  drain_holdback(att.node);
}

void MinBftReplica::tally_commit(NodeId author, const BlockHash& h) {
  auto& authors = commit_authors_[hkey(h)];
  if (!authors.insert(author).second) return;
  if (authors.size() >= quorum()) try_commit(h);
}

void MinBftReplica::try_commit(const BlockHash& h) {
  if (!store_.contains(h) || !store_.extends(h, committed_tip())) {
    pending_commit_.insert(hkey(h));
    return;
  }
  const Block* b = store_.get(h);
  if (b != nullptr) {
    trace_instant("commit", "certify", {{"height", exp::Json(b->height)}});
    prof_flow_block("certify", *b, energy::Stream::kVote, 0);
  }
  commit_chain(h);
  reset_progress_timer(10 * cfg_.delta);
}

void MinBftReplica::on_commit(const Block& block) {
  (void)block;
  if (!crashed_ && phase_ == Phase::kSteady && is_leader()) {
    sched_.after(0, "minbft_propose", [this, v = v_cur_] {
      if (v == v_cur_ && phase_ == Phase::kSteady) propose();
    });
  }
}

// ---------------------------------------------------------------------------
// View change (timeout-driven; ReqViewChange with f+1 quorum)
// ---------------------------------------------------------------------------

void MinBftReplica::reset_progress_timer(sim::Duration d) {
  if (crashed_) return;
  progress_timer_.start(d, "minbft_progress_timer",
                        [this] { on_progress_timeout(); });
}

void MinBftReplica::on_progress_timeout() {
  if (crashed_ || !online()) return;
  send_view_change(std::max(vc_target_ + 1, v_cur_ + 1));
}

void MinBftReplica::on_restart() {
  if (crashed_ || !started_) return;
  reset_progress_timer(10 * cfg_.delta);
  arm_gap_timer();
}

// Counters minted while this replica was offline are gone for good —
// attested messages are never retransmitted — so a hold-back gap that
// outlives the delay bound will never fill on its own. After 4Δ of no
// progress, abandon the gap: rebaseline the tracker to the lowest held
// counter and drain. Safe because skipped values become permanently
// unacceptable (AttestationTracker::skip_to), and block/chain recovery
// for the skipped content rides chain sync / state transfer, which carry
// their own certificates.
void MinBftReplica::arm_gap_timer() {
  if (crashed_ || gap_pending_ || holdback_.empty()) return;
  gap_pending_ = true;
  gap_timer_.start(4 * cfg_.delta, "minbft_gap_timer",
                   [this] { on_gap_timeout(); });
}

void MinBftReplica::on_gap_timeout() {
  gap_pending_ = false;
  if (crashed_) return;
  if (!online()) {
    arm_gap_timer();
    return;
  }
  std::vector<NodeId> gapped;
  for (const auto& [node, q] : holdback_) {
    if (!q.empty() && q.begin()->first > tracker_.last(node) + 1) {
      gapped.push_back(node);
    }
  }
  for (const NodeId node : gapped) {
    const auto it = holdback_.find(node);
    if (it == holdback_.end() || it->second.empty()) continue;
    const std::uint64_t head = it->second.begin()->first;
    if (head <= tracker_.last(node) + 1) continue;
    trace_instant("recovery", "counter_gap_skip",
                  {{"sender", exp::Json(node)},
                   {"from", exp::Json(tracker_.last(node))},
                   {"to", exp::Json(head)}});
    tracker_.skip_to(node, head);
    drain_holdback(node);
  }
  arm_gap_timer();
}

void MinBftReplica::send_view_change(std::uint64_t target) {
  if (crashed_ || target <= v_cur_) return;
  phase_ = Phase::kViewChange;
  vc_target_ = std::max(vc_target_, target);
  trace_instant("view", "blame", {{"view", exp::Json(v_cur_)},
                                  {"target", exp::Json(vc_target_)}});
  // Report the latest accepted block so the new primary re-proposes the
  // highest branch any correct replica accepted.
  Writer w;
  const Block* tip = store_.get(accepted_tip_);
  w.boolean(tip != nullptr);
  if (tip != nullptr) w.bytes(tip->encode());
  Msg vc;
  vc.type = MsgType::kViewChange;
  vc.view = vc_target_;
  vc.round = 0;
  vc.author = cfg_.id;
  vc.data = w.take();
  vc.sig = cfg_.keyring->signer(cfg_.id).sign(vc.preimage());
  if (meter_ != nullptr && cfg_.meter_crypto) {
    meter_->charge(energy::Category::kSign,
                   energy::sign_energy_mj(cfg_.keyring->scheme()));
  }
  prof_crypto("sign", "view_change");
  broadcast(vc);
  handle_view_change(vc);
  reset_progress_timer(10 * cfg_.delta);
}

void MinBftReplica::handle_view_change(const Msg& msg) {
  if (msg.view <= v_cur_) return;
  auto& bucket = vc_msgs_[msg.view];
  if (!bucket.emplace(msg.author, msg).second) return;
  // One correct replica is among any f+1 requesters: join them.
  if (bucket.size() >= cfg_.f + 1 && msg.view > vc_target_) {
    send_view_change(msg.view);
  }
  if (bucket.size() >= quorum()) maybe_announce_new_view(msg.view);
}

void MinBftReplica::maybe_announce_new_view(std::uint64_t target) {
  if (leader_of(target) != cfg_.id || crashed_ || !online()) return;
  if (target <= v_cur_ || !nv_sent_.insert(target).second) return;
  Block chosen;
  bool have_chosen = false;
  for (const auto& [author, vc] : vc_msgs_[target]) {
    (void)author;
    try {
      Reader r(vc.data);
      if (!r.boolean()) continue;
      const Block b = Block::decode(r.bytes());
      if (!have_chosen || b.height > chosen.height) {
        chosen = b;
        have_chosen = true;
      }
    } catch (const SerdeError&) {
      continue;
    }
  }
  Writer w;
  w.boolean(have_chosen);
  if (have_chosen) w.bytes(chosen.encode());
  Msg nv;
  nv.type = MsgType::kNewView;
  nv.view = target;
  nv.round = 0;
  nv.author = cfg_.id;
  nv.data = w.take();
  nv.sig = cfg_.keyring->signer(cfg_.id).sign(nv.preimage());
  if (meter_ != nullptr && cfg_.meter_crypto) {
    meter_->charge(energy::Category::kSign,
                   energy::sign_energy_mj(cfg_.keyring->scheme()));
  }
  prof_crypto("sign", "view_change");
  broadcast(nv);
  if (have_chosen) {
    store_.add(chosen);
    if (chosen.height > accepted_height_ &&
        store_.extends(chosen.hash(), committed_tip())) {
      accepted_tip_ = chosen.hash();
      accepted_height_ = chosen.height;
    }
  }
  enter_view(target);
  propose();
}

void MinBftReplica::handle_new_view(NodeId from, const Msg& msg) {
  if (msg.view <= v_cur_ || msg.author != leader_of(msg.view)) return;
  try {
    Reader r(msg.data);
    if (r.boolean()) {
      const Block b = Block::decode(r.bytes());
      (void)integrate_block(b, from);
      if (b.height > accepted_height_ &&
          store_.extends(b.hash(), committed_tip())) {
        accepted_tip_ = b.hash();
        accepted_height_ = b.height;
      }
    }
  } catch (const SerdeError&) {
    return;
  }
  enter_view(msg.view);
}

void MinBftReplica::enter_view(std::uint64_t view) {
  if (tracing()) {
    trace_instant("view", "new_view", {{"view", exp::Json(view)}});
  }
  v_cur_ = view;
  vc_target_ = view;
  phase_ = Phase::kSteady;
  seen_.clear();
  vc_msgs_.erase(vc_msgs_.begin(), vc_msgs_.upper_bound(view));
  reset_progress_timer(10 * cfg_.delta);
  drain_buffered();
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void MinBftReplica::buffer_future(const Msg& msg) {
  if (future_.size() > 4096) return;
  future_.push_back(msg);
}

void MinBftReplica::drain_buffered() {
  std::vector<Msg> retry;
  retry.swap(retry_);
  std::vector<Msg> pending;
  pending.swap(future_);
  for (const Msg& m : retry) handle(m.author, m);
  for (const Msg& m : pending) handle(m.author, m);
}

void MinBftReplica::on_chain_connected(const Block& block) {
  std::vector<Msg> retry;
  retry.swap(retry_);
  for (const Msg& m : retry) handle(m.author, m);
  const BlockHash h = block.hash();
  if (pending_commit_.erase(hkey(h)) > 0) try_commit(h);
}

void MinBftReplica::on_low_water(const Block& root) {
  seen_.erase(seen_.begin(), seen_.upper_bound(root.height));
  for (auto it = commit_authors_.begin(); it != commit_authors_.end();) {
    const BlockHash h(it->first.begin(), it->first.end());
    const Block* b = store_.get(h);
    if (b != nullptr && b->height <= root.height) {
      commit_sent_.erase(it->first);
      pending_commit_.erase(it->first);
      it = commit_authors_.erase(it);
    } else {
      ++it;
    }
  }
  tracker_.forget_window(kDigestWindow);
}

void MinBftReplica::on_membership_change(const smr::MembershipPolicy& policy) {
  // Arm a contiguity rebase for every signer that was NOT active in the
  // previous generation. Its counter kept attesting (view changes, past
  // stints) while no one here tracked it, so demanding last+1 would park
  // every future message in holdback forever. Stale holdback entries for
  // that sender are dropped too — they predate the new baseline.
  const std::uint64_t prev = policy.generation - 1;
  for (const smr::PolicyEntry& e : policy.signers) {
    if (membership().known(prev) && membership().is_signer(e.node, prev)) {
      continue;
    }
    tracker_.rebase(e.node);
    const auto q = holdback_.find(e.node);
    if (q != holdback_.end()) {
      holdback_total_ -= q->second.size();
      holdback_.erase(q);
    }
  }
}

void MinBftReplica::on_state_transfer(const Block& root) {
  accepted_tip_ = root.hash();
  accepted_height_ = root.height;
  if (root.view > v_cur_) v_cur_ = root.view;
  vc_target_ = std::max(vc_target_, v_cur_);
  phase_ = Phase::kSteady;
  seen_.clear();
  commit_authors_.clear();
  commit_sent_.clear();
  pending_commit_.clear();
  holdback_.clear();
  holdback_total_ = 0;
  reset_progress_timer(12 * cfg_.delta);
  drain_buffered();
}

void MinBftReplica::handle(NodeId from, const Msg& msg) {
  if (crashed_) return;
  switch (msg.type) {
    case MsgType::kPropose:
      handle_propose(from, msg);
      break;
    case MsgType::kCommit:
      handle_commit_msg(from, msg);
      break;
    case MsgType::kViewChange:
      handle_view_change(msg);
      break;
    case MsgType::kNewView:
      handle_new_view(from, msg);
      break;
    default:
      break;
  }
}

}  // namespace eesmr::baselines
