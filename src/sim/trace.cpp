#include "src/sim/trace.hpp"

#include <cstdio>

namespace eesmr::sim {

Trace::Sink Trace::stderr_sink() {
  return [](SimTime t, TraceLevel lvl, const std::string& msg) {
    const char* tag = lvl == TraceLevel::kWarn    ? "WARN "
                      : lvl == TraceLevel::kInfo  ? "INFO "
                                                  : "DEBUG";
    std::fprintf(stderr, "[%10.3fms] %s %s\n", to_milliseconds(t), tag,
                 msg.c_str());
  };
}

}  // namespace eesmr::sim
