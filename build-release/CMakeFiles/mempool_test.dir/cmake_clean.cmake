file(REMOVE_RECURSE
  "CMakeFiles/mempool_test.dir/tests/mempool_test.cpp.o"
  "CMakeFiles/mempool_test.dir/tests/mempool_test.cpp.o.d"
  "mempool_test"
  "mempool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
