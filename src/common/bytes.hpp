// Basic byte-buffer vocabulary types shared by every module.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace eesmr {

/// Owned byte buffer. All wire formats, hashes and signatures use this.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Build an owned buffer from a view.
inline Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }

/// Build an owned buffer from a UTF-8 string (no terminator).
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Interpret a buffer as a string (for tests / examples).
inline std::string to_string(BytesView v) {
  return std::string(v.begin(), v.end());
}

/// Stamp `v` little-endian into the first min(8, size) bytes of `buf`.
/// Shared by the synthetic workload generators to keep fixed-size
/// payloads distinct.
inline void stamp_counter_le(Bytes& buf, std::uint64_t v) {
  for (std::size_t b = 0; b < 8 && b < buf.size(); ++b) {
    buf[b] = static_cast<std::uint8_t>(v >> (8 * b));
  }
}

}  // namespace eesmr
