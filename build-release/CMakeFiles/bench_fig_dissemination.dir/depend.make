# Empty dependencies file for bench_fig_dissemination.
# This may be replaced when dependencies are built.
