// Client-perceived latency vs offered load, measured end-to-end through
// the client subsystem: clients flood signed requests, replicas order
// and execute them, and a request counts only when f+1 identical signed
// replies reached the client (§3). This is the latency/throughput
// counterpart of the Fig 2b–2d energy sweeps, run for EESMR and Sync
// HotStuff under three workload shapes:
//   * closed-loop (k outstanding requests per client),
//   * open-loop Poisson arrivals at a target rate,
//   * closed-loop KV with a Zipf-skewed read/write mix.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"

namespace {

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

constexpr std::size_t kClients = 4;
constexpr sim::Duration kRunTime = sim::seconds(60);

ClusterConfig base_cfg(Protocol protocol) {
  ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 42;
  cfg.batch_size = 32;
  cfg.clients = kClients;
  return cfg;
}

void row(const std::string& shape, const std::string& offered,
         const RunResult& r) {
  std::printf("  %-28s %-14s %8.1f %10.1f %8.1f %8.1f %8.1f\n", shape.c_str(),
              offered.c_str(), r.accepted_per_sec(),
              static_cast<double>(r.requests_accepted),
              sim::to_milliseconds(r.latency.p50()),
              sim::to_milliseconds(r.latency.p90()),
              sim::to_milliseconds(r.latency.p99()));
}

void sweep(Protocol protocol) {
  std::printf("\n%s (n=4, f=1, %zu clients, %lds simulated)\n",
              harness::protocol_name(protocol), kClients,
              static_cast<long>(kRunTime / 1'000'000));
  std::printf("  %-28s %-14s %8s %10s %8s %8s %8s\n", "workload", "offered",
              "acc/s", "accepted", "p50ms", "p90ms", "p99ms");

  // Closed loop: the window size sets the offered load.
  for (std::size_t window : {1, 4, 16}) {
    ClusterConfig cfg = base_cfg(protocol);
    cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
    cfg.workload.outstanding = window;
    harness::Cluster cluster(cfg);
    const RunResult r = cluster.run_for(kRunTime);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    row("closed-loop synthetic", std::to_string(window) + "/client", r);
  }

  // Open loop: Poisson arrivals, rate swept past saturation.
  for (double rate : {10.0, 50.0, 200.0}) {
    ClusterConfig cfg = base_cfg(protocol);
    cfg.workload.mode = client::WorkloadSpec::Mode::kOpenLoop;
    cfg.workload.rate_per_sec = rate;
    harness::Cluster cluster(cfg);
    const RunResult r = cluster.run_for(kRunTime);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    char offered[32];
    std::snprintf(offered, sizeof offered, "%.0f req/s/cl", rate);
    row("open-loop Poisson", offered, r);
  }

  // Skewed KV: 50/50 read-write over a hot Zipf(0.99) key set.
  {
    ClusterConfig cfg = base_cfg(protocol);
    cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
    cfg.workload.outstanding = 4;
    cfg.workload.gen.kind = client::GenSpec::Kind::kKv;
    cfg.workload.gen.kv_keys = 64;
    cfg.workload.gen.kv_read_fraction = 0.5;
    cfg.workload.gen.kv_zipf = 0.99;
    harness::Cluster cluster(cfg);
    const RunResult r = cluster.run_for(kRunTime);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    row("closed-loop KV zipf(0.99)", "4/client", r);
  }
}

}  // namespace

int main() {
  eesmr::bench::header(
      "Latency vs throughput under client load",
      "client-centric SMR interface of Section 3 (f+1 identical replies)");
  eesmr::bench::note(
      "end-to-end: submit -> order -> execute -> f+1 signed replies");
  sweep(Protocol::kEesmr);
  sweep(Protocol::kSyncHotStuff);
  return 0;
}
