// Routing-layer tests: directed (shortest-path) forwarding of addressed
// frames and the non-forwarded local broadcast.
#include <gtest/gtest.h>

#include "src/net/flood.hpp"

namespace eesmr::net {
namespace {

struct Recorder final : public FloodClient {
  std::vector<std::pair<NodeId, Bytes>> delivered;
  void on_deliver(NodeId origin, BytesView payload) override {
    delivered.emplace_back(origin, to_bytes(payload));
  }
};

struct Fixture {
  sim::Scheduler sched;
  std::vector<energy::Meter> meters;
  std::unique_ptr<Network> net;
  std::vector<Recorder> recorders;
  std::vector<std::unique_ptr<FloodRouter>> routers;

  explicit Fixture(Hypergraph graph) {
    const std::size_t n = graph.n();
    meters.resize(n);
    net = std::make_unique<Network>(sched, std::move(graph),
                                    TransportConfig{}, &meters);
    recorders.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      routers.push_back(std::make_unique<FloodRouter>(*net, i, &recorders[i]));
    }
  }
};

TEST(Routing, HopMatrix) {
  Fixture fx(Hypergraph::kcast_ring(8, 2));
  EXPECT_EQ(fx.net->hops(0, 0), 0u);
  EXPECT_EQ(fx.net->hops(0, 2), 1u);   // direct k-cast
  EXPECT_EQ(fx.net->hops(0, 3), 2u);
  EXPECT_EQ(fx.net->hops(0, 7), 4u);   // 7 is behind: ring wraps 0->..->7
}

TEST(Routing, DirectedFrameUsesShortestPathNotFlood) {
  // Ring of 2-casts, send 0 -> 4 (2 hops). A flood would cost ~n
  // transmissions; routing should cost about one per hop.
  Fixture fx(Hypergraph::kcast_ring(10, 2));
  fx.routers[0]->send_to(4, to_bytes(std::string("hi")));
  fx.sched.run();
  ASSERT_EQ(fx.recorders[4].delivered.size(), 1u);
  // 0 transmits once; forwarders along the DAG: nodes 1 and 2 at distance
  // 2 and 1... transmissions must be well below a 10-node flood.
  EXPECT_LE(fx.net->transmissions(), 5u);
  // Nodes past the destination never transmit.
  EXPECT_EQ(fx.meters[6].millijoules(energy::Category::kSend), 0.0);
  EXPECT_EQ(fx.meters[7].millijoules(energy::Category::kSend), 0.0);
}

TEST(Routing, DirectedFrameInStarCostsOneTransmission) {
  Hypergraph star(4);
  star.add_edge({3, {0}});
  star.add_edge({3, {1}});
  star.add_edge({3, {2}});
  star.add_edge({0, {3}});
  star.add_edge({1, {3}});
  star.add_edge({2, {3}});
  Fixture fx(std::move(star));
  fx.routers[3]->send_to(1, to_bytes(std::string("cmd")));
  fx.sched.run();
  EXPECT_EQ(fx.recorders[1].delivered.size(), 1u);
  EXPECT_EQ(fx.recorders[0].delivered.size(), 0u);
  EXPECT_EQ(fx.net->transmissions(), 1u);  // only the 3->1 edge fires
}

TEST(Routing, LocalBroadcastReachesNeighborsOnly) {
  Fixture fx(Hypergraph::kcast_ring(8, 2));
  fx.routers[0]->broadcast_local(to_bytes(std::string("vote")));
  fx.sched.run();
  EXPECT_EQ(fx.net->transmissions(), 1u);  // no re-forwarding
  EXPECT_EQ(fx.recorders[1].delivered.size(), 1u);
  EXPECT_EQ(fx.recorders[2].delivered.size(), 1u);
  for (NodeId i = 3; i < 8; ++i) {
    EXPECT_TRUE(fx.recorders[i].delivered.empty()) << "node " << i;
  }
}

TEST(Routing, LocalBroadcastInMeshReachesEveryone) {
  Fixture fx(Hypergraph::full_mesh(5));
  fx.routers[2]->broadcast_local(to_bytes(std::string("vote")));
  fx.sched.run();
  for (NodeId i = 0; i < 5; ++i) {
    if (i == 2) continue;
    EXPECT_EQ(fx.recorders[i].delivered.size(), 1u) << "node " << i;
  }
  EXPECT_EQ(fx.net->transmissions(), 4u);  // one per unicast edge, no echo
}

TEST(Routing, UnreachableDestinationDropsQuietly) {
  Hypergraph g(3);
  g.add_edge({0, {1}});
  g.add_edge({1, {0}});
  g.add_edge({2, {0}});  // nobody can reach node 2
  Fixture fx(std::move(g));
  fx.routers[0]->send_to(2, to_bytes(std::string("lost")));
  fx.sched.run();
  EXPECT_TRUE(fx.recorders[2].delivered.empty());
}

}  // namespace
}  // namespace eesmr::net
