#include "src/crypto/ecdsa.hpp"

#include <stdexcept>

#include "src/crypto/hmac.hpp"
#include "src/crypto/sha256.hpp"

namespace eesmr::crypto {

namespace {

/// Convert a message digest to an integer, truncating to the order's bit
/// length per SEC 1 §4.1.3 step 5.
BigInt digest_to_scalar(const Sha256Digest& digest, const BigInt& n) {
  BigInt e = BigInt::from_bytes_be(BytesView(digest.data(), digest.size()));
  const std::size_t digest_bits = digest.size() * 8;
  const std::size_t n_bits = n.bit_length();
  if (n_bits < digest_bits) e = e.shr(digest_bits - n_bits);
  return e;
}

/// Deterministic nonce: HMAC(d_be, digest || ctr) expanded and reduced.
BigInt derive_nonce(const BigInt& d, const Sha256Digest& digest,
                    const BigInt& n, std::uint32_t counter) {
  const Bytes key = d.to_bytes_be();
  Bytes msg(digest.begin(), digest.end());
  msg.push_back(static_cast<std::uint8_t>(counter >> 24));
  msg.push_back(static_cast<std::uint8_t>(counter >> 16));
  msg.push_back(static_cast<std::uint8_t>(counter >> 8));
  msg.push_back(static_cast<std::uint8_t>(counter));
  // Expand to enough bytes for the order size (two HMAC blocks cover all
  // Table-2 curves: up to 256-bit orders).
  Bytes stream = hmac(key, msg);
  msg.push_back(0x01);
  const Bytes more = hmac(key, msg);
  stream.insert(stream.end(), more.begin(), more.end());
  stream.resize((n.bit_length() + 7) / 8 + 8);
  return BigInt::from_bytes_be(stream) % n;
}

}  // namespace

EcdsaKeyPair ecdsa_generate(CurveId curve_id, sim::Rng& rng) {
  const CurveParams& params = curve_params(curve_id);
  const Curve curve(params);
  const BigInt d = BigInt::random_unit(rng, params.n);
  EcdsaKeyPair kp;
  kp.priv = {curve_id, d};
  kp.pub = {curve_id, curve.mul_base(d)};
  return kp;
}

Bytes ecdsa_sign(const EcdsaPrivateKey& key, BytesView msg) {
  const CurveParams& params = curve_params(key.curve);
  const Curve curve(params);
  const Sha256Digest digest = Sha256::hash(msg);
  const BigInt e = digest_to_scalar(digest, params.n);

  for (std::uint32_t ctr = 0;; ++ctr) {
    const BigInt k = derive_nonce(key.d, digest, params.n, ctr);
    if (k.is_zero()) continue;
    const AffinePoint kg = curve.mul_base(k);
    if (kg.infinity) continue;
    const BigInt r = kg.x % params.n;
    if (r.is_zero()) continue;
    const auto kinv = BigInt::mod_inverse(k, params.n);
    if (!kinv) continue;
    // s = k^-1 (e + r d) mod n
    const BigInt s = BigInt::mod_mul(
        *kinv, BigInt::mod_add(e, BigInt::mod_mul(r, key.d, params.n),
                               params.n),
        params.n);
    if (s.is_zero()) continue;

    const std::size_t fb = params.field_bytes();
    Bytes sig = r.to_bytes_be(fb);
    const Bytes s_bytes = s.to_bytes_be(fb);
    sig.insert(sig.end(), s_bytes.begin(), s_bytes.end());
    return sig;
  }
}

bool ecdsa_verify(const EcdsaPublicKey& key, BytesView msg, BytesView sig) {
  const CurveParams& params = curve_params(key.curve);
  const Curve curve(params);
  const std::size_t fb = params.field_bytes();
  if (sig.size() != 2 * fb) return false;
  const BigInt r = BigInt::from_bytes_be(sig.subspan(0, fb));
  const BigInt s = BigInt::from_bytes_be(sig.subspan(fb, fb));
  if (r.is_zero() || s.is_zero()) return false;
  if (r.compare(params.n) >= 0 || s.compare(params.n) >= 0) return false;
  if (key.q.infinity || !curve.on_curve(key.q)) return false;

  const Sha256Digest digest = Sha256::hash(msg);
  const BigInt e = digest_to_scalar(digest, params.n);
  const auto sinv = BigInt::mod_inverse(s, params.n);
  if (!sinv) return false;
  const BigInt u1 = BigInt::mod_mul(e, *sinv, params.n);
  const BigInt u2 = BigInt::mod_mul(r, *sinv, params.n);
  const AffinePoint point =
      curve.add(curve.mul_base(u1), curve.mul(u2, key.q));
  if (point.infinity) return false;
  return (point.x % params.n) == r;
}

}  // namespace eesmr::crypto
