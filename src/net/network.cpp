#include "src/net/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace eesmr::net {

Network::Network(sim::Scheduler& sched, Hypergraph graph,
                 TransportConfig config, std::vector<energy::Meter>* meters,
                 std::vector<bool> relay)
    : sched_(sched),
      graph_(std::move(graph)),
      config_(config),
      meters_(meters),
      sinks_(graph_.n(), nullptr) {
  if (meters_ != nullptr && meters_->size() != graph_.n()) {
    throw std::invalid_argument("Network: meters size mismatch");
  }
  if (!relay.empty() && relay.size() != graph_.n()) {
    throw std::invalid_argument("Network: relay size mismatch");
  }
  policy_ = std::make_unique<UniformDelay>(
      sim::Rng(0xbeef), std::max<sim::Duration>(1, config_.hop_bound / 5),
      config_.hop_bound);
  relay_ = relay.empty() ? std::vector<bool>(graph_.n(), true)
                         : std::move(relay);
  online_.assign(graph_.n(), true);
  recompute_hops();
}

void Network::set_node_online(NodeId node, bool online) {
  online_.at(node) = online;
}

void Network::recompute_hops() {
  // All-pairs BFS hop distances for directed-frame routing. Non-relay
  // nodes may start or end a path but never extend one.
  const std::size_t n = graph_.n();
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  hop_matrix_.assign(n, std::vector<std::size_t>(n, kInf));
  for (NodeId s = 0; s < n; ++s) {
    hop_matrix_[s][s] = 0;
    std::queue<NodeId> frontier;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      if (u != s && !relay_[u]) continue;
      for (std::size_t idx : graph_.out_edges(u)) {
        for (NodeId v : graph_.edges()[idx].receivers) {
          if (hop_matrix_[s][v] != kInf) continue;
          hop_matrix_[s][v] = hop_matrix_[s][u] + 1;
          frontier.push(v);
        }
      }
    }
  }
}

std::size_t Network::hops(NodeId from, NodeId to) const {
  return hop_matrix_.at(from).at(to);
}

void Network::attach(NodeId node, PacketSink* sink) {
  sinks_.at(node) = sink;
}

void Network::set_delay_policy(std::unique_ptr<DelayPolicy> policy) {
  policy_ = std::move(policy);
}

void Network::charge_energy(const HyperEdge& edge, std::size_t bytes,
                            energy::Stream stream) {
  if (meters_ == nullptr) return;
  // Offline receivers are not listening: no reception energy.
  const std::size_t k = edge.receivers.size();
  double send_mj, recv_mj;
  if (config_.medium == energy::Medium::kBle) {
    if (k > 1) {
      // Advertisement k-cast with redundancy for the reliability target.
      const std::size_t r =
          energy::kcast_redundancy_for(bytes, k, config_.kcast_reliability);
      send_mj = energy::kcast_send_energy_mj(bytes, r);
      recv_mj = energy::kcast_recv_energy_mj(bytes, r);
    } else {
      // Reliable connection-oriented GATT unicast.
      send_mj = energy::gatt_send_energy_mj(bytes);
      recv_mj = energy::gatt_recv_energy_mj(bytes);
    }
  } else {
    send_mj = (k > 1) ? energy::multicast_energy_mj(config_.medium, bytes)
                      : energy::send_energy_mj(config_.medium, bytes);
    recv_mj = energy::recv_energy_mj(config_.medium, bytes);
  }
  (*meters_)[edge.sender].charge_send(send_mj, bytes, stream);
  for (NodeId r : edge.receivers) {
    if (online_[r]) (*meters_)[r].charge_recv(recv_mj, bytes, stream);
  }
}

void Network::transmit_edge(const HyperEdge& edge, const SharedBytes& frame,
                            energy::Stream stream) {
  if (!online_[edge.sender]) return;  // a crashed radio sends nothing
  const std::size_t frame_size = frame ? frame->size() : 0;
  ++transmissions_;
  bytes_tx_ += frame_size;
  charge_energy(edge, frame_size, stream);
  for (NodeId to : edge.receivers) {
    PacketSink* sink = sinks_[to];
    if (sink == nullptr || !online_[to]) continue;
    FaultVerdict fv;
    if (injector_ != nullptr) {
      fv = injector_->on_delivery(edge.sender, to, stream, frame_size);
    }
    if (fv.drop) continue;  // corrupted past recovery; recv energy stays
    for (std::uint32_t copy = 0; copy <= fv.duplicates; ++copy) {
      // Each copy draws its own hop delay, so duplicates interleave with
      // (and reorder against) the surrounding traffic. extra_delay is
      // added unclamped: the injector may exceed the hop bound.
      sim::Duration d = policy_->delay(edge.sender, to, frame_size);
      d = std::clamp<sim::Duration>(d, 1, config_.hop_bound) + fv.extra_delay;
      ++deliveries_;
      // The delivery captures a refcount on the immutable frame instead
      // of the former per-delivery to_bytes copy.
      bytes_copy_saved_ += frame_size;
      // Re-check at delivery time: the receiver may have gone offline
      // while the frame was in flight.
      sched_.after(d, "net_deliver",
                   [this, sink, to, from = edge.sender, frame] {
        if (online_[to]) sink->on_packet(from, frame);
      });
    }
  }
}

void Network::transmit(NodeId from, const SharedBytes& frame,
                       energy::Stream stream) {
  if (transmit_hook_) transmit_hook_(view_of(frame));
  for (std::size_t idx : graph_.out_edges(from)) {
    const HyperEdge& edge = graph_.edges()[idx];
    // Skip edges whose receivers are all non-relay leaves: broadcasts
    // are the protocol's flood fabric, and leaves (clients) neither
    // need nor forward them. Leaf-only edges still carry directed
    // frames via transmit_towards. Without this, every flood would be
    // copied onto each access edge and charged to the sender's meter.
    bool any_relay = false;
    for (NodeId r : edge.receivers) {
      if (relay_[r]) {
        any_relay = true;
        break;
      }
    }
    if (any_relay) transmit_edge(edge, frame, stream);
  }
}

void Network::transmit_on(NodeId from,
                          const std::vector<std::size_t>& edge_sel,
                          const SharedBytes& frame, energy::Stream stream) {
  if (transmit_hook_) transmit_hook_(view_of(frame));
  const auto& out = graph_.out_edges(from);
  for (std::size_t pos : edge_sel) {
    transmit_edge(graph_.edges()[out.at(pos)], frame, stream);
  }
}

void Network::transmit_towards(NodeId from, NodeId dest,
                               const SharedBytes& frame,
                               energy::Stream stream) {
  if (transmit_hook_) transmit_hook_(view_of(frame));
  const std::size_t mine = hops(from, dest);
  for (std::size_t idx : graph_.out_edges(from)) {
    const HyperEdge& edge = graph_.edges()[idx];
    bool useful = false;
    for (NodeId r : edge.receivers) {
      // Only relay receivers (or the destination itself) count as
      // progress: a non-relay leaf would not forward the frame.
      if ((r == dest || relay_[r]) && hops(r, dest) < mine) {
        useful = true;
        break;
      }
    }
    if (useful) transmit_edge(edge, frame, stream);
  }
}

void Network::reset_stats() {
  transmissions_ = 0;
  deliveries_ = 0;
  bytes_tx_ = 0;
  bytes_copy_saved_ = 0;
}

}  // namespace eesmr::net
