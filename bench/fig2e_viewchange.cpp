// Figure 2e: energy consumed by the EESMR leader per view-change
// operation, for an equivocating leader and a stalling (no-progress)
// leader, vs the honest-SMR per-block cost. n = 15, k = f + 1.
//
// Methodology (ψ_V = ψ_W − ψ_B, §4): run a faulty cluster to B blocks,
// subtract the honest run's energy at the same block count, divide by
// the number of view changes. The "leader" is the incoming view-2
// leader, which pays the status collection and the two bootstrap rounds.
// Grid: f x scenario, with the honest baseline its own scenario so the
// three runs per f parallelize; the subtraction is a formatting pass.
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/sim/rng.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::RunResult;

int main(int argc, char** argv) {
  exp::Experiment ex("fig2e_viewchange",
                     "Fig. 2e (§5.6, n = 15, |b| = 16 bytes)", argc, argv,
                     /*default_seed=*/17);

  std::vector<std::size_t> fs = {1, 2, 3, 4, 5, 6};
  if (ex.smoke()) fs = {1, 4};
  const std::size_t blocks = ex.smoke() ? 4 : 6;
  const NodeId new_leader = 2;  // leader of view 2

  exp::Grid grid;
  grid.axis_of("f", fs);
  grid.axis("scenario", {"honest", "equivocate", "no_progress"});

  exp::Report& runs = ex.run("runs", grid, [&](const exp::RunContext& c) {
    ClusterConfig cfg;
    cfg.n = 15;
    cfg.f = fs[c.at("f")];
    cfg.k = cfg.f + 1;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    // Honest/faulty pairs share a seed so the ψ_W − ψ_B subtraction
    // compares like against like.
    cfg.seed = sim::derive_seed(ex.seed(), c.at("f"));
    if (c.label("scenario") == "equivocate") {
      cfg.faults.push_back({1, protocol::ByzantineMode::kEquivocate, 4});
    } else if (c.label("scenario") == "no_progress") {
      cfg.faults.push_back({1, protocol::ByzantineMode::kCrash, 4});
    }
    const RunResult r = exp::run_steady(c, cfg, blocks);
    exp::MetricRow row;
    row.set("k", cfg.k);
    row.set("new_leader_mj", r.node_energy_mj(new_leader));
    row.set("new_leader_mj_per_block",
            r.node_energy_per_block_mj(new_leader));
    row.set("view_changes", r.view_changes);
    row.set("run", exp::run_result_json(r));
    return row;
  });

  exp::Report table;
  table.name = "view_change_cost";
  table.grid.axis_of("f", fs);
  for (std::size_t fi = 0; fi < fs.size(); ++fi) {
    const exp::MetricRow& honest = runs.rows[fi * 3 + 0];
    const auto vc_cost = [&](std::size_t scen) {
      const exp::MetricRow& faulty = runs.rows[fi * 3 + scen];
      const double vcs = std::max(1.0, faulty.number("view_changes"));
      return (faulty.number("new_leader_mj") -
              honest.number("new_leader_mj")) /
             vcs;
    };
    exp::MetricRow row;
    row.set("k", fs[fi] + 1);
    row.set("equiv_vc_mj", vc_cost(1));
    row.set("noprog_vc_mj", vc_cost(2));
    row.set("honest_mj_per_block", honest.number("new_leader_mj_per_block"));
    table.rows.push_back(std::move(row));
  }
  ex.add_section(std::move(table)).print_table(1);

  ex.note("expected shape: the no-progress (stalling) view change is "
          "costlier than the equivocation one (equivocation proof "
          "short-circuits the blame quorum; stalling pays the blame "
          "collection and full certificate construction), and both sit "
          "above the honest per-block cost");
  return ex.finish();
}
