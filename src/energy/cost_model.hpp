// Calibrated energy-cost models for communication media and cryptographic
// primitives. Every constant is taken from (or fitted to) the paper's
// Tables 1 and 2 and the Fig. 2a/2b BLE characterization; see the .cpp
// for the calibration notes.
#pragma once

#include <cstddef>
#include <vector>

#include "src/crypto/signer.hpp"

namespace eesmr::energy {

/// Communication media evaluated in Table 1.
enum class Medium : std::uint8_t {
  kBle,     ///< Bluetooth Low Energy (GATT unicast / advertisements)
  k4gLte,   ///< cellular uplink to e.g. a trusted control node
  kWifi,    ///< 802.11 infrastructure
};

const char* medium_name(Medium m);

/// Energy (mJ) to *send* a `bytes`-byte message over medium `m`
/// (piecewise-linear through the Table-1 sample points).
double send_energy_mj(Medium m, std::size_t bytes);

/// Energy (mJ) to *receive* a `bytes`-byte message over medium `m`.
double recv_energy_mj(Medium m, std::size_t bytes);

/// Energy (mJ) for a link-layer multicast transmission of `bytes` over
/// medium `m` (Table 1's Multicast column; only BLE differs from send).
double multicast_energy_mj(Medium m, std::size_t bytes);

// -- Crypto costs (Table 2) --------------------------------------------------

/// Energy (mJ) to produce one signature under `scheme`.
double sign_energy_mj(crypto::SchemeId scheme);

/// Energy (mJ) to verify one signature under `scheme`.
double verify_energy_mj(crypto::SchemeId scheme);

/// Energy (mJ) to verify a batch of `k` signatures under `scheme` in one
/// pass. Analytic estimate layered on Table 2's per-verify cost: batch
/// verification amortizes the shared modular/point arithmetic, so the
/// marginal verify costs a scheme-dependent fraction of the first
/// (ECDSA-style curves batch well; RSA barely; symmetric schemes not at
/// all). k == 0 costs nothing; k == 1 equals verify_energy_mj.
double batch_verify_energy_mj(crypto::SchemeId scheme, std::size_t k);

// -- Aggregate (BLS-style) certificate costs (src/crypto/agg) ----------------
// Pairing-based aggregates trade CPU for radio: a G1 share costs about a
// scalar multiplication, verifying an aggregate costs two pairings plus a
// public-key aggregation linear in the signer count, and combining shares
// is a handful of point additions. The constants below are fitted to
// published BLS12-381 Cortex-M-class measurements, scaled onto the same
// device envelope as Table 2 (they sit roughly an order of magnitude
// above ECDSA-P256, as the literature reports).

/// Energy (mJ) to produce one 48-byte aggregate-scheme share.
double agg_sign_energy_mj();

/// Energy (mJ) to verify one aggregate covering `signers` shares (two
/// pairings + (signers-1) pubkey additions). signers == 0 costs nothing.
double agg_verify_energy_mj(std::size_t signers);

/// Energy (mJ) to fold `shares` shares into one aggregate (point adds).
double agg_combine_energy_mj(std::size_t shares);

/// Energy (mJ) to hash a `bytes`-byte message with SHA-256
/// (linear in the number of compression-function invocations, matching
/// the paper's "cost of hashing increased linearly with message size").
double hash_energy_mj(std::size_t bytes);

/// Energy (mJ) for HMAC-SHA256 over `bytes` with a 64-byte key
/// (Table 2 reports 0.19 J for short messages).
double mac_energy_mj(std::size_t bytes);

// -- Trusted-component costs (src/trusted) -----------------------------------
// A simulated enclave attestation (monotonic-counter UI, UNIQUE/USIG style)
// costs one counter increment plus one signature inside the trusted
// component; verifying one costs a signature verification plus the
// fixed-format counter check. The enclave boundary crossing adds a small
// constant on top of the raw crypto.

/// Fixed enclave-call overhead (mJ) added to every attestation / check.
constexpr double kAttestCallOverheadMj = 0.05;

/// Energy (mJ) to produce one attestation under `scheme`.
double attest_energy_mj(crypto::SchemeId scheme);

/// Energy (mJ) to verify one attestation under `scheme`.
double verify_attest_energy_mj(crypto::SchemeId scheme);

// -- BLE advertisement (k-cast) model (§5.4, Fig 2a/2b) ----------------------

/// BLE GAP advertisement payload limit the paper measured (25 bytes).
constexpr std::size_t kBleAdvPayload = 25;

/// Per-transmission energies and loss rate; calibrated so that
/// redundancy 10 yields the paper's 99.99 %-reliable k = 7 k-cast at
/// 5.3 mJ (sender) / 9.98 mJ (receiver) per 25-byte message.
constexpr double kBleAdvTxMj = 0.53;    ///< sender, per packet transmission
constexpr double kBleAdvRxMj = 0.998;   ///< receiver listen, per transmission
constexpr double kBleAdvLossProb = 0.32;  ///< per-packet per-receiver loss

/// Number of advertisement packets needed for a payload.
std::size_t ble_adv_packets(std::size_t bytes);

/// Probability that a k-cast of `bytes` with `redundancy` retransmissions
/// per packet reaches *all* k receivers (a k-cast succeeds only if every
/// receiver gets every fragment).
double kcast_success_probability(std::size_t bytes, std::size_t k,
                                 std::size_t redundancy);

/// Smallest redundancy achieving at least `reliability` for a k-cast.
std::size_t kcast_redundancy_for(std::size_t bytes, std::size_t k,
                                 double reliability);

/// Sender / per-receiver energy of one k-cast at a given redundancy.
double kcast_send_energy_mj(std::size_t bytes, std::size_t redundancy);
double kcast_recv_energy_mj(std::size_t bytes, std::size_t redundancy);

// -- BLE GATT unicast model (Fig 2b) -----------------------------------------
// GATT is connection-based and reliable; it pays a fixed connection /
// protocol overhead per message plus a per-byte cost. Constants fitted to
// reproduce Fig 2b's ordering: unicast wins for d_out = 1 and large
// payloads; k-casts win as k grows.
constexpr double kGattTxOverheadMj = 12.0;
constexpr double kGattTxPerByteMj = 0.020;
constexpr double kGattRxOverheadMj = 8.0;
constexpr double kGattRxPerByteMj = 0.015;

double gatt_send_energy_mj(std::size_t bytes);
double gatt_recv_energy_mj(std::size_t bytes);

// -- Device baseline (§5.6) ---------------------------------------------------
/// NUCLEO sleep and active power draw; used for idle-subtraction
/// discussions (protocol meters exclude idle, as the paper does).
constexpr double kSleepPowerMw = 0.3;
constexpr double kActivePowerMw = 1.0;

}  // namespace eesmr::energy
