// Figure 2d: EESMR leader energy per SMR unit for block payloads of
// 16 / 128 / 256 bytes, as k varies. n = 15, BLE k-cast ring.
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::RunResult;

int main(int argc, char** argv) {
  exp::Experiment ex("fig2d_blocksize", "Fig. 2d (§5.6, n = 15)", argc, argv,
                     /*default_seed=*/16);

  std::vector<std::size_t> ks = {2, 3, 4, 5, 6, 7};
  std::vector<std::size_t> sizes = {16, 128, 256};
  if (ex.smoke()) {
    ks = {2, 5};
    sizes = {16, 256};
  }
  const std::size_t blocks = ex.smoke() ? 4 : 8;

  exp::Grid grid;
  grid.axis_of("k", ks);
  grid.axis_of("block_bytes", sizes);

  exp::Report& rep = ex.run("leader_energy", grid,
                            [&](const exp::RunContext& c) {
    const std::size_t k = ks[c.at("k")];
    ClusterConfig cfg;
    cfg.n = 15;
    cfg.f = k - 1;
    cfg.k = k;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = sizes[c.at("block_bytes")];
    cfg.batch_size = 1;
    cfg.seed = c.seed;
    const RunResult r = exp::run_steady(c, cfg, blocks);
    exp::MetricRow row;
    row.set("leader_mj_per_block", r.node_energy_per_block_mj(1));
    row.set("run", exp::run_result_json(r));
    return row;
  });
  rep.print_table(1);

  ex.note("expected shape: linear growth in k for every payload; larger "
          "blocks shift the curve up roughly proportionally to the BLE "
          "fragmentation count (paper: 'EESMR scales well with increasing "
          "message payloads')");
  return ex.finish();
}
