#include "src/baselines/dolev_strong.hpp"

#include <algorithm>

#include "src/common/serde.hpp"
#include "src/energy/cost_model.hpp"

namespace eesmr::baselines {

namespace {

/// Wire format: value || count || (signer, signature)*.
struct Chain {
  Bytes value;
  std::vector<std::pair<NodeId, Bytes>> sigs;

  Bytes encode() const {
    Writer w;
    w.bytes(value);
    w.u32(static_cast<std::uint32_t>(sigs.size()));
    for (const auto& [node, sig] : sigs) {
      w.u32(node);
      w.bytes(sig);
    }
    return w.take();
  }

  static Chain decode(BytesView data) {
    Reader r(data);
    Chain c;
    c.value = r.bytes();
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeId node = r.u32();
      c.sigs.emplace_back(node, r.bytes());
    }
    r.expect_done();
    return c;
  }
};

}  // namespace

DolevStrongNode::DolevStrongNode(net::Network& net, DolevStrongConfig cfg,
                                 energy::Meter* meter)
    : sched_(net.scheduler()),
      router_(net, cfg.id, this),
      cfg_(std::move(cfg)),
      meter_(meter) {}

Bytes DolevStrongNode::sign_value(const Bytes& value) const {
  if (meter_ != nullptr) {
    meter_->charge(energy::Category::kSign,
                   energy::sign_energy_mj(cfg_.keyring->scheme()));
  }
  return cfg_.keyring->signer(cfg_.id).sign(value);
}

void DolevStrongNode::start(const Bytes& value,
                            const std::optional<Bytes>& equivocate_with,
                            bool selective) {
  // Decision fires at the end of round f+1.
  sched_.after(static_cast<sim::Duration>(cfg_.f + 2) * cfg_.delta,
               "round_timer",
               [this] { decide(); });
  if (cfg_.id != cfg_.sender) return;

  Chain c;
  c.value = value;
  c.sigs.emplace_back(cfg_.id, sign_value(value));
  extracted_.push_back(value);
  if (!equivocate_with.has_value()) {
    router_.broadcast(c.encode());
    return;
  }
  Chain c2;
  c2.value = *equivocate_with;
  c2.sigs.emplace_back(cfg_.id, sign_value(*equivocate_with));
  extracted_.push_back(*equivocate_with);
  if (!selective) {
    router_.broadcast(c.encode());
    router_.broadcast(c2.encode());
    return;
  }
  // Selective equivocation: each conflicting value leaves on a disjoint
  // half of the out-edges; only honest relaying surfaces the conflict.
  const std::size_t out = router_.network().graph().out_edges(cfg_.id).size();
  std::vector<std::size_t> even, odd;
  for (std::size_t e = 0; e < out; ++e) (e % 2 == 0 ? even : odd).push_back(e);
  router_.broadcast_on_edges(even, c.encode());
  router_.broadcast_on_edges(odd, c2.encode());
}

void DolevStrongNode::flood_junk(std::uint64_t salt) {
  // Deterministic garbage: decodes as no valid chain (or one without the
  // sender's signature) at every honest node.
  sim::Rng rng(salt ^ (0x6a2bull << 32) ^ cfg_.id);
  Bytes junk(24 + rng.below(48));
  for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
  router_.broadcast(junk);
}

void DolevStrongNode::on_deliver(NodeId /*origin*/, BytesView payload) {
  if (decision_.has_value()) return;
  Chain c;
  try {
    c = Chain::decode(payload);
  } catch (const SerdeError&) {
    return;
  }
  // Validate: distinct signers, sender's signature first-class, every
  // signature genuine.
  std::set<NodeId> signers;
  bool sender_signed = false;
  for (const auto& [node, sig] : c.sigs) {
    if (node >= cfg_.n || !signers.insert(node).second) return;
    if (meter_ != nullptr) {
      meter_->charge(energy::Category::kVerify,
                     energy::verify_energy_mj(cfg_.keyring->scheme()));
    }
    if (!cfg_.keyring->verify(node, c.value, sig)) return;
    sender_signed |= (node == cfg_.sender);
  }
  if (!sender_signed) return;

  // Round-r acceptance: by the end of round r a valid chain carries at
  // least r signatures (late chains with too few signatures are stale
  // Byzantine injections and are dropped).
  const auto round = static_cast<std::size_t>(
      sched_.now() / std::max<sim::Duration>(1, cfg_.delta));
  if (c.sigs.size() + 1 < round) return;

  // Track at most two distinct values — two already prove equivocation.
  if (std::find(extracted_.begin(), extracted_.end(), c.value) !=
      extracted_.end()) {
    return;
  }
  if (extracted_.size() >= 2) return;
  extracted_.push_back(c.value);

  // Relay with our signature appended (unless the chain is already
  // conclusive with f+1 signatures).
  if (c.sigs.size() <= cfg_.f && !signers.count(cfg_.id)) {
    c.sigs.emplace_back(cfg_.id, sign_value(c.value));
    router_.broadcast(c.encode());
  }
}

void DolevStrongNode::decide() {
  if (decision_.has_value()) return;
  decision_ = (extracted_.size() == 1) ? extracted_.front() : bottom();
}

bool DolevStrongResult::agreement() const {
  for (std::size_t i = 1; i < decisions.size(); ++i) {
    if (decisions[i] != decisions[0]) return false;
  }
  return true;
}

DolevStrongResult run_dolev_strong(std::size_t n, std::size_t f,
                                   const Bytes& value,
                                   const DolevStrongAttack& attack,
                                   std::uint64_t seed) {
  sim::Scheduler sched;
  std::vector<energy::Meter> meters(n);
  net::TransportConfig tc;
  tc.medium = energy::Medium::kBle;
  tc.hop_bound = sim::milliseconds(10);
  net::Network net(sched, net::Hypergraph::full_mesh(n), tc, &meters);
  net.set_delay_policy(std::make_unique<net::UniformDelay>(
      sim::Rng(seed), sim::milliseconds(2), sim::milliseconds(10)));
  if (attack.injector != nullptr) net.set_fault_injector(attack.injector);

  auto keyring = crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, n,
                                            seed);
  std::vector<std::unique_ptr<DolevStrongNode>> nodes;
  std::vector<bool> honest(n, true);
  for (NodeId i = 0; i < n; ++i) {
    DolevStrongConfig cfg;
    cfg.id = i;
    cfg.n = n;
    cfg.f = f;
    cfg.sender = 0;
    cfg.delta = sim::milliseconds(20);
    cfg.keyring = keyring;
    nodes.push_back(std::make_unique<DolevStrongNode>(net, cfg, &meters[i]));
  }
  if (attack.sender_equivocate || attack.sender_selective) honest[0] = false;
  for (NodeId c : attack.crash) {
    honest.at(c) = false;
    net.set_node_online(c, false);  // silent from the start
  }
  for (NodeId g : attack.garbage) honest.at(g) = false;

  const Bytes other = to_bytes(std::string("conflicting-value"));
  const bool equiv = attack.sender_equivocate || attack.sender_selective;
  const sim::Duration delta = sim::milliseconds(20);
  for (NodeId i = 0; i < n; ++i) {
    if (std::find(attack.crash.begin(), attack.crash.end(), i) !=
        attack.crash.end()) {
      continue;  // crashed before the protocol started
    }
    nodes[i]->start(value,
                    (i == 0 && equiv) ? std::optional<Bytes>(other)
                                      : std::nullopt,
                    attack.sender_selective);
  }
  for (NodeId g : attack.garbage) {
    // Junk every half-round through round f+1.
    for (std::size_t k = 0; k <= 2 * (f + 2); ++k) {
      sched.after(static_cast<sim::Duration>(k) * (delta / 2), "round_timer",
                  [node = nodes[g].get(), k] { node->flood_junk(k); });
    }
  }
  sched.run();

  DolevStrongResult out;
  out.meters = meters;
  out.transmissions = net.transmissions();
  for (NodeId i = 0; i < n; ++i) {
    if (!honest[i]) continue;
    out.decided += nodes[i]->decision().has_value() ? 1 : 0;
    out.decisions.push_back(nodes[i]->decision().value_or(Bytes{1, 1, 1}));
  }
  return out;
}

DolevStrongResult run_dolev_strong(std::size_t n, std::size_t f,
                                   const Bytes& value, bool byzantine_sender,
                                   std::uint64_t seed) {
  DolevStrongAttack attack;
  attack.sender_equivocate = byzantine_sender;
  return run_dolev_strong(n, f, value, attack, seed);
}

}  // namespace eesmr::baselines
