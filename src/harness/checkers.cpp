#include "src/harness/checkers.hpp"

#include <algorithm>

namespace eesmr::harness {

std::uint64_t SafetyChecker::observe(NodeId node,
                                     const std::vector<smr::Block>& log) {
  std::uint64_t fresh_violations = 0;
  std::uint64_t& frontier = frontier_[node];
  // The retained log is height-ascending: jump straight to the first
  // unabsorbed block so a tick costs O(new blocks), not O(log).
  auto it = std::partition_point(
      log.begin(), log.end(),
      [&](const smr::Block& b) { return b.height <= frontier; });
  for (; it != log.end(); ++it) {
    const auto [slot, fresh] = canon_.try_emplace(it->height, it->hash());
    if (!fresh && slot->second != it->hash()) {
      ++violations_;
      ++fresh_violations;
    }
  }
  if (!log.empty()) frontier = std::max(frontier, log.back().height);
  return fresh_violations;
}

void SafetyChecker::prune_below(std::uint64_t height) {
  canon_.erase(canon_.begin(), canon_.lower_bound(height));
}

void LivenessChecker::sample(sim::SimTime now, std::uint64_t frontier,
                             bool load_pending) {
  if (!seen_) {
    seen_ = true;
    frontier_ = frontier;
    last_advance_ = now;
    return;
  }
  if (frontier > frontier_) {
    max_closed_ = std::max(max_closed_, now - last_advance_);
    frontier_ = frontier;
    last_advance_ = now;
  } else if (!load_pending) {
    // Idle chain with nothing left to commit: whatever gap was open up
    // to here was a real wait (fold it in), but from now on the clock
    // restarts — an idle tail is not a stall.
    max_closed_ = std::max(max_closed_, now - last_advance_);
    last_advance_ = now;
  }
}

sim::Duration LivenessChecker::max_stall(sim::SimTime now) const {
  if (!seen_) return 0;
  return std::max(max_closed_, now - last_advance_);
}

}  // namespace eesmr::harness
