# Empty dependencies file for dolev_strong_test.
# This may be replaced when dependencies are built.
