#include "src/baselines/pbft.hpp"

#include <algorithm>
#include <cassert>

#include "src/common/serde.hpp"

namespace eesmr::baselines {

using smr::Block;
using smr::BlockHash;
using smr::Msg;
using smr::MsgType;
using smr::QuorumCert;

namespace {
std::string hkey(const BlockHash& h) {
  return std::string(h.begin(), h.end());
}

/// PBFT's vote quorum is 2f+1 (of n=3f+1); default it into the shared
/// config slot unless the harness overrode it.
smr::ReplicaConfig pbft_config(smr::ReplicaConfig cfg) {
  if (cfg.quorum == 0) cfg.quorum = 2 * cfg.f + 1;
  return cfg;
}

/// kViewChange / kNewView payload: the sender's highest prepared branch.
struct PreparedState {
  bool has_prepared = false;
  QuorumCert cert;
  Block block;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.boolean(has_prepared);
    if (has_prepared) {
      w.bytes(cert.encode());
      w.bytes(block.encode());
    }
    return w.take();
  }
  static PreparedState decode(BytesView bytes) {
    Reader r(bytes);
    PreparedState p;
    p.has_prepared = r.boolean();
    if (p.has_prepared) {
      p.cert = QuorumCert::decode(r.bytes());
      p.block = Block::decode(r.bytes());
    }
    r.expect_done();
    return p;
  }
};
}  // namespace

PbftReplica::PbftReplica(net::Network& net, smr::ReplicaConfig cfg,
                         PbftByzantineConfig byz, energy::Meter* meter)
    : ReplicaBase(net, pbft_config(std::move(cfg)), meter),
      byz_(byz),
      progress_timer_(sched_) {
  prepared_tip_ = smr::genesis_hash();
}

void PbftReplica::start() {
  if (started_) return;
  started_ = true;
  v_cur_ = 1;
  vc_target_ = 1;
  phase_ = Phase::kSteady;
  reset_progress_timer(10 * cfg_.delta);
  if (is_leader()) propose();
}

// ---------------------------------------------------------------------------
// Steady state: pre-prepare -> prepare -> commit
// ---------------------------------------------------------------------------

BlockHash PbftReplica::proposal_parent() const {
  if (prepared_height_ > committed_height() &&
      store_.extends(prepared_tip_, committed_tip())) {
    return prepared_tip_;
  }
  return committed_tip();
}

void PbftReplica::propose() {
  if (crashed_ || phase_ != Phase::kSteady || !online() || !is_leader()) {
    return;
  }
  const BlockHash parent_hash = proposal_parent();
  const Block* parent = store_.get(parent_hash);
  if (parent == nullptr) return;
  const std::uint64_t height = parent->height + 1;
  if (byz_.mode == PbftByzantineMode::kCrash && byz_.trigger_height != 0 &&
      height >= byz_.trigger_height) {
    crashed_ = true;
    progress_timer_.cancel();
    router().set_forwarding(false);
    return;
  }

  auto build = [&](const std::string& tag) {
    Block b;
    b.parent = parent_hash;
    b.height = height;
    b.view = v_cur_;
    b.round = height;
    b.proposer = cfg_.id;
    b.cmds = mempool_.next_batch(cfg_.batch_size);
    if (!tag.empty()) b.cmds.push_back({to_bytes(tag)});
    return b;
  };
  auto send_proposal = [&](const Block& b) {
    (void)hash_block(b);
    Msg prop = make_msg(MsgType::kPropose, b.height, b.encode());
    broadcast(prop);
    prof_flow_block("propose", b, energy::Stream::kProposal,
                    prop.encode().size());
    if (tracing()) {
      trace_instant("commit", "propose",
                    {{"height", exp::Json(b.height)},
                     {"view", exp::Json(v_cur_)}});
    }
    store_.add(b);
    handle_propose(cfg_.id, prop);
  };

  if (byz_.mode == PbftByzantineMode::kEquivocate &&
      height == byz_.trigger_height) {
    send_proposal(build("equivocation-A"));
    send_proposal(build("equivocation-B"));
    return;
  }
  send_proposal(build(""));
}

void PbftReplica::handle_propose(NodeId from, const Msg& msg) {
  if (msg.view != v_cur_) {
    if (msg.view > v_cur_) buffer_future(msg);
    return;
  }
  if (phase_ != Phase::kSteady) return;
  Block b;
  try {
    b = Block::decode(msg.data);
  } catch (const SerdeError&) {
    return;
  }
  const NodeId leader = leader_of(v_cur_);
  if (msg.author != leader || b.proposer != leader || b.view != v_cur_) {
    return;
  }
  const BlockHash h = hash_block(b);

  // Equivocation detection: conflicting pre-prepares for one height in
  // one view demote the primary.
  auto [it, inserted] = seen_.try_emplace(b.height, h);
  if (!inserted && it->second != h) {
    (void)integrate_block(b, from);
    send_view_change(v_cur_ + 1);
    return;
  }

  if (!integrate_block(b, from)) {
    retry_.push_back(msg);
    return;
  }
  // The pre-prepare must extend the committed branch.
  if (!store_.extends(h, committed_tip())) return;
  if (!prepare_sent_.insert(hkey(h)).second) return;
  if (tracing()) {
    trace_begin("block", "block", b.height,
                {{"round", exp::Json(b.round)}, {"view", exp::Json(b.view)}});
    trace_instant("commit", "vote", {{"height", exp::Json(b.height)}});
  }
  Msg prep = make_msg(MsgType::kPrepare, b.height, h);
  prof_flow_block("vote", b, energy::Stream::kVote, prep.encode().size());
  broadcast(prep);
  handle_prepare(prep);  // count own prepare
}

void PbftReplica::handle_prepare(const Msg& msg) {
  if (msg.view != v_cur_) {
    if (msg.view > v_cur_) buffer_future(msg);
    return;
  }
  auto& bucket = prepares_[hkey(msg.data)];
  for (const Msg& m : bucket) {
    if (m.author == msg.author) return;
  }
  bucket.push_back(msg);
  if (bucket.size() != quorum()) return;
  const Block* b = store_.get(msg.data);
  if (b == nullptr) return;  // tally kept; prepared once it connects
  on_prepared(msg.data, *b);
}

void PbftReplica::on_prepared(const BlockHash& h, const Block& b) {
  // Record the highest prepared branch (what a view change carries).
  if (b.height > prepared_height_) {
    prepared_tip_ = h;
    prepared_height_ = b.height;
    auto& bucket = prepares_[hkey(h)];
    prepared_cert_ = make_cert(std::vector<Msg>(
        bucket.begin(), bucket.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(bucket.size(),
                                                      quorum()))));
  }
  trace_instant("commit", "certify", {{"height", exp::Json(b.height)}});
  prof_flow_block("certify", b, energy::Stream::kVote, 0);
  if (!commit_sent_.insert(hkey(h)).second) return;
  Msg commit = make_msg(MsgType::kCommit, b.height, h);
  broadcast(commit);
  handle_commit(commit);  // count own commit
}

void PbftReplica::handle_commit(const Msg& msg) {
  if (msg.view != v_cur_) {
    if (msg.view > v_cur_) buffer_future(msg);
    return;
  }
  auto& bucket = commits_[hkey(msg.data)];
  for (const Msg& m : bucket) {
    if (m.author == msg.author) return;
  }
  bucket.push_back(msg);
  if (bucket.size() >= quorum()) try_commit(msg.data);
}

void PbftReplica::try_commit(const BlockHash& h) {
  if (!store_.contains(h) || !store_.extends(h, committed_tip())) {
    // Quorum reached before the chain connected (catch-up): finish when
    // sync delivers the ancestry.
    pending_commit_.insert(hkey(h));
    return;
  }
  commit_chain(h);
  reset_progress_timer(10 * cfg_.delta);
}

void PbftReplica::on_commit(const Block& block) {
  (void)block;
  // Chained self-clocking: the primary pipelines the next pre-prepare as
  // soon as the previous block commits locally.
  if (!crashed_ && phase_ == Phase::kSteady && is_leader()) {
    sched_.after(0, "pbft_propose", [this, v = v_cur_] {
      if (v == v_cur_ && phase_ == Phase::kSteady) propose();
    });
  }
}

// ---------------------------------------------------------------------------
// View change
// ---------------------------------------------------------------------------

void PbftReplica::reset_progress_timer(sim::Duration d) {
  if (crashed_) return;
  progress_timer_.start(d, "pbft_progress_timer",
                        [this] { on_progress_timeout(); });
}

void PbftReplica::on_progress_timeout() {
  if (crashed_ || !online()) return;
  // First timeout leaves steady state for v+1; every further timeout
  // targets the next view (the PBFT exponential-backoff ladder,
  // flattened — the simulator's Δ is exact).
  send_view_change(std::max(vc_target_ + 1, v_cur_ + 1));
}

void PbftReplica::on_restart() {
  if (crashed_ || !started_) return;
  reset_progress_timer(10 * cfg_.delta);
}

void PbftReplica::send_view_change(std::uint64_t target) {
  if (crashed_ || target <= v_cur_) return;
  phase_ = Phase::kViewChange;
  vc_target_ = std::max(vc_target_, target);
  trace_instant("view", "blame", {{"view", exp::Json(v_cur_)},
                                  {"target", exp::Json(vc_target_)}});
  PreparedState ps;
  if (prepared_cert_.has_value()) {
    const Block* b = store_.get(prepared_tip_);
    if (b != nullptr) {
      ps.has_prepared = true;
      ps.cert = *prepared_cert_;
      ps.block = *b;
    }
  }
  Msg vc;
  vc.type = MsgType::kViewChange;
  vc.view = vc_target_;
  vc.round = 0;
  vc.author = cfg_.id;
  vc.data = ps.encode();
  vc.sig = cfg_.keyring->signer(cfg_.id).sign(vc.preimage());
  if (meter_ != nullptr && cfg_.meter_crypto) {
    meter_->charge(energy::Category::kSign,
                   energy::sign_energy_mj(cfg_.keyring->scheme()));
  }
  prof_crypto("sign", "view_change");
  broadcast(vc);
  handle_view_change(vc);
  reset_progress_timer(10 * cfg_.delta);
}

void PbftReplica::handle_view_change(const Msg& msg) {
  if (msg.view <= v_cur_) return;
  auto& bucket = vc_msgs_[msg.view];
  if (!bucket.emplace(msg.author, msg).second) return;
  // f+1 replicas already gave up on a lower view than ours: join them
  // (PBFT's liveness rule — a correct replica is among the f+1).
  if (bucket.size() >= cfg_.f + 1 && msg.view > vc_target_) {
    send_view_change(msg.view);
  }
  if (bucket.size() >= quorum()) maybe_announce_new_view(msg.view);
}

void PbftReplica::maybe_announce_new_view(std::uint64_t target) {
  if (leader_of(target) != cfg_.id || crashed_ || !online()) return;
  if (target <= v_cur_ || !nv_sent_.insert(target).second) return;
  // Pick the highest valid prepared branch among the 2f+1 reports.
  PreparedState chosen;
  std::uint64_t best = 0;
  for (const auto& [author, vc] : vc_msgs_[target]) {
    (void)author;
    PreparedState ps;
    try {
      ps = PreparedState::decode(vc.data);
    } catch (const SerdeError&) {
      continue;
    }
    if (!ps.has_prepared || ps.block.height <= best) continue;
    if (ps.cert.type != MsgType::kPrepare ||
        ps.cert.data != ps.block.hash() || !verify_qc(ps.cert, quorum())) {
      continue;
    }
    best = ps.block.height;
    chosen = ps;
  }
  Msg nv;
  nv.type = MsgType::kNewView;
  nv.view = target;
  nv.round = 0;
  nv.author = cfg_.id;
  nv.data = chosen.encode();
  nv.sig = cfg_.keyring->signer(cfg_.id).sign(nv.preimage());
  if (meter_ != nullptr && cfg_.meter_crypto) {
    meter_->charge(energy::Category::kSign,
                   energy::sign_energy_mj(cfg_.keyring->scheme()));
  }
  prof_crypto("sign", "view_change");
  broadcast(nv);
  if (chosen.has_prepared) {
    store_.add(chosen.block);
    if (chosen.block.height > prepared_height_) {
      prepared_tip_ = chosen.block.hash();
      prepared_height_ = chosen.block.height;
      prepared_cert_ = chosen.cert;
    }
  }
  enter_view(target);
  propose();
}

void PbftReplica::handle_new_view(NodeId from, const Msg& msg) {
  if (msg.view <= v_cur_ || msg.author != leader_of(msg.view)) return;
  PreparedState ps;
  try {
    ps = PreparedState::decode(msg.data);
  } catch (const SerdeError&) {
    return;
  }
  if (ps.has_prepared) {
    if (ps.cert.type != MsgType::kPrepare ||
        ps.cert.data != ps.block.hash() || !verify_qc(ps.cert, quorum())) {
      return;
    }
    (void)integrate_block(ps.block, from);
    if (ps.block.height > prepared_height_) {
      prepared_tip_ = ps.block.hash();
      prepared_height_ = ps.block.height;
      prepared_cert_ = ps.cert;
    }
  }
  enter_view(msg.view);
}

void PbftReplica::enter_view(std::uint64_t view) {
  if (tracing()) {
    trace_instant("view", "new_view", {{"view", exp::Json(view)}});
  }
  v_cur_ = view;
  vc_target_ = view;
  phase_ = Phase::kSteady;
  seen_.clear();
  vc_msgs_.erase(vc_msgs_.begin(), vc_msgs_.upper_bound(view));
  reset_progress_timer(10 * cfg_.delta);
  drain_buffered();
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void PbftReplica::buffer_future(const Msg& msg) {
  if (future_.size() > 4096) return;
  future_.push_back(msg);
}

void PbftReplica::drain_buffered() {
  std::vector<Msg> retry;
  retry.swap(retry_);
  std::vector<Msg> pending;
  pending.swap(future_);
  for (const Msg& m : retry) handle(m.author, m);
  for (const Msg& m : pending) handle(m.author, m);
}

void PbftReplica::on_chain_connected(const Block& block) {
  std::vector<Msg> retry;
  retry.swap(retry_);
  for (const Msg& m : retry) handle(m.author, m);
  // A prepare quorum that was waiting for this block.
  const BlockHash h = block.hash();
  const auto pit = prepares_.find(hkey(h));
  if (pit != prepares_.end() && pit->second.size() >= quorum() &&
      commit_sent_.count(hkey(h)) == 0) {
    on_prepared(h, block);
  }
  if (pending_commit_.erase(hkey(h)) > 0) try_commit(h);
}

void PbftReplica::on_low_water(const Block& root) {
  seen_.erase(seen_.begin(), seen_.upper_bound(root.height));
  auto prune = [&](std::map<std::string, std::vector<Msg>>& tallies,
                   std::set<std::string>& sent) {
    for (auto it = tallies.begin(); it != tallies.end();) {
      const BlockHash h(it->first.begin(), it->first.end());
      const Block* b = store_.get(h);
      if (b != nullptr && b->height <= root.height) {
        sent.erase(it->first);
        pending_commit_.erase(it->first);
        it = tallies.erase(it);
      } else {
        ++it;
      }
    }
  };
  prune(prepares_, prepare_sent_);
  prune(commits_, commit_sent_);
}

void PbftReplica::on_state_transfer(const Block& root) {
  prepared_tip_ = root.hash();
  prepared_height_ = root.height;
  prepared_cert_.reset();
  if (root.view > v_cur_) v_cur_ = root.view;
  vc_target_ = std::max(vc_target_, v_cur_);
  phase_ = Phase::kSteady;
  seen_.clear();
  prepares_.clear();
  prepare_sent_.clear();
  commits_.clear();
  commit_sent_.clear();
  pending_commit_.clear();
  reset_progress_timer(12 * cfg_.delta);
  drain_buffered();
}

void PbftReplica::handle(NodeId from, const Msg& msg) {
  if (crashed_) return;
  switch (msg.type) {
    case MsgType::kPropose:
      handle_propose(from, msg);
      break;
    case MsgType::kPrepare:
      handle_prepare(msg);
      break;
    case MsgType::kCommit:
      handle_commit(msg);
      break;
    case MsgType::kViewChange:
      handle_view_change(msg);
      break;
    case MsgType::kNewView:
      handle_new_view(from, msg);
      break;
    default:
      break;
  }
}

}  // namespace eesmr::baselines
