#include "src/crypto/signer.hpp"

#include <gtest/gtest.h>

namespace eesmr::crypto {
namespace {

TEST(SchemeInfo, SignatureSizesMatchSchemes) {
  EXPECT_EQ(scheme_info(SchemeId::kHmacSha256).signature_bytes, 32u);
  EXPECT_EQ(scheme_info(SchemeId::kEcdsaBp160r1).signature_bytes, 40u);
  EXPECT_EQ(scheme_info(SchemeId::kEcdsaSecp256r1).signature_bytes, 64u);
  EXPECT_EQ(scheme_info(SchemeId::kRsa1024).signature_bytes, 128u);
  EXPECT_EQ(scheme_info(SchemeId::kRsa1260).signature_bytes, 158u);
  EXPECT_EQ(scheme_info(SchemeId::kRsa2048).signature_bytes, 256u);
  EXPECT_TRUE(scheme_info(SchemeId::kHmacSha256).symmetric);
  EXPECT_FALSE(scheme_info(SchemeId::kRsa1024).symmetric);
}

TEST(SchemeInfo, AllSchemesEnumerated) {
  EXPECT_EQ(all_schemes().size(), 11u);
}

TEST(Keyring, SimulatedSignVerify) {
  auto ring = Keyring::simulated(SchemeId::kRsa1024, 4, 1);
  const Bytes msg = to_bytes(std::string("hello"));
  const Bytes sig = ring->signer(0).sign(msg);
  EXPECT_EQ(sig.size(), 128u);  // emulates RSA-1024 wire size
  EXPECT_TRUE(ring->verify(0, msg, sig));
  EXPECT_TRUE(ring->is_simulated());
}

TEST(Keyring, SimulatedRejectsWrongSigner) {
  auto ring = Keyring::simulated(SchemeId::kEcdsaSecp256r1, 4, 1);
  const Bytes msg = to_bytes(std::string("hello"));
  const Bytes sig = ring->signer(0).sign(msg);
  EXPECT_FALSE(ring->verify(1, msg, sig));
  EXPECT_FALSE(ring->verify(99, msg, sig));  // unknown node
}

TEST(Keyring, SimulatedRejectsTamperedMessage) {
  auto ring = Keyring::simulated(SchemeId::kRsa1024, 2, 9);
  const Bytes sig = ring->signer(1).sign(to_bytes(std::string("a")));
  EXPECT_FALSE(ring->verify(1, to_bytes(std::string("b")), sig));
}

TEST(Keyring, SimulatedDeterministicAcrossInstances) {
  auto r1 = Keyring::simulated(SchemeId::kRsa1024, 3, 42);
  auto r2 = Keyring::simulated(SchemeId::kRsa1024, 3, 42);
  const Bytes msg = to_bytes(std::string("x"));
  EXPECT_EQ(r1->signer(2).sign(msg), r2->signer(2).sign(msg));
  // Different seed -> different keys.
  auto r3 = Keyring::simulated(SchemeId::kRsa1024, 3, 43);
  EXPECT_NE(r1->signer(2).sign(msg), r3->signer(2).sign(msg));
}

TEST(Keyring, RealHmacRing) {
  auto ring = Keyring::generate(SchemeId::kHmacSha256, 3, 5);
  const Bytes msg = to_bytes(std::string("mac me"));
  const Bytes sig = ring->signer(2).sign(msg);
  EXPECT_EQ(sig.size(), 32u);
  EXPECT_TRUE(ring->verify(2, msg, sig));
  EXPECT_FALSE(ring->verify(0, msg, sig));
  EXPECT_FALSE(ring->is_simulated());
}

TEST(Keyring, RealEcdsaRing) {
  auto ring = Keyring::generate(SchemeId::kEcdsaSecp192r1, 2, 5);
  const Bytes msg = to_bytes(std::string("sign me"));
  const Bytes sig = ring->signer(0).sign(msg);
  EXPECT_EQ(sig.size(), 48u);
  EXPECT_TRUE(ring->verify(0, msg, sig));
  EXPECT_FALSE(ring->verify(1, msg, sig));
}

TEST(Keyring, SignerOutOfRangeThrows) {
  auto ring = Keyring::simulated(SchemeId::kRsa1024, 2, 1);
  EXPECT_THROW((void)ring->signer(2), std::out_of_range);
}

}  // namespace
}  // namespace eesmr::crypto
