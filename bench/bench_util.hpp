// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/cluster.hpp"

namespace eesmr::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
}

/// Run an honest cluster until `blocks` commits; returns the result.
inline harness::RunResult run_steady(harness::ClusterConfig cfg,
                                     std::size_t blocks) {
  harness::Cluster cluster(cfg);
  harness::RunResult r =
      cluster.run_until_commits(blocks, sim::seconds(100000));
  if (!r.safety_ok()) {
    std::fprintf(stderr, "SAFETY VIOLATION in %s run\n",
                 harness::protocol_name(cfg.protocol));
  }
  return r;
}

/// Energy attributable to one view change for `node`:
/// E(faulty run to B blocks) − E(honest run to B blocks), i.e. the
/// ψ_V = ψ_W − ψ_B decomposition of Section 4 measured empirically.
struct ViewChangeCost {
  double node_mj = 0;    ///< surcharge at `node`
  double total_mj = 0;   ///< surcharge summed over correct nodes
  std::uint64_t view_changes = 0;
};

inline ViewChangeCost view_change_cost(harness::ClusterConfig cfg,
                                       const harness::FaultSpec& fault,
                                       NodeId node, std::size_t blocks) {
  harness::RunResult honest = run_steady(cfg, blocks);
  harness::ClusterConfig faulty_cfg = cfg;
  faulty_cfg.faults.push_back(fault);
  harness::RunResult faulty = run_steady(faulty_cfg, blocks);

  ViewChangeCost out;
  out.view_changes = faulty.view_changes;
  const double per_vc =
      faulty.view_changes == 0 ? 1.0 : static_cast<double>(faulty.view_changes);
  out.node_mj =
      (faulty.node_energy_mj(node) - honest.node_energy_mj(node)) / per_vc;
  out.total_mj =
      (faulty.total_energy_mj() - honest.total_energy_mj()) / per_vc;
  return out;
}

}  // namespace eesmr::bench
