#include "src/crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "src/common/hex.hpp"

namespace eesmr::crypto {
namespace {

std::string hash_hex(const std::string& msg) {
  return hex_encode(sha256(to_bytes(msg)));
}

// FIPS 180-4 / NIST example vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  const auto digest = ctx.finish();
  EXPECT_EQ(hex_encode(BytesView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes(std::string(517, 'x'));
  // Split at awkward offsets relative to the 64-byte block size.
  for (std::size_t split : {1u, 63u, 64u, 65u, 128u, 500u}) {
    Sha256 ctx;
    ctx.update(BytesView(msg).subspan(0, split));
    ctx.update(BytesView(msg).subspan(split));
    EXPECT_EQ(ctx.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, ExactBlockBoundaryPadding) {
  // 55, 56 and 64 byte messages exercise all padding branches.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const Bytes msg(len, 'q');
    Sha256 a;
    a.update(msg);
    EXPECT_EQ(a.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.update(to_bytes(std::string("garbage")));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(to_bytes(std::string("abc")));
  const auto digest = ctx.finish();
  EXPECT_EQ(hex_encode(BytesView(digest.data(), digest.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256(to_bytes(std::string("a"))),
            sha256(to_bytes(std::string("b"))));
}

}  // namespace
}  // namespace eesmr::crypto
