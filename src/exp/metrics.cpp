#include "src/exp/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace eesmr::exp {

namespace {

/// Union of scalar (non-object, non-array) metric names over all rows,
/// in first-seen order.
std::vector<std::string> scalar_columns(const std::vector<MetricRow>& rows) {
  std::vector<std::string> cols;
  for (const MetricRow& row : rows) {
    for (const JsonMember& m : row.values()) {
      if (m.second.is_object() || m.second.is_array()) continue;
      if (std::find(cols.begin(), cols.end(), m.first) == cols.end()) {
        cols.push_back(m.first);
      }
    }
  }
  return cols;
}

std::string cell_text(const Json& v, int precision) {
  switch (v.type()) {
    case Json::Type::kNull:
      return "-";
    case Json::Type::kBool:
      return v.as_bool() ? "true" : "false";
    case Json::Type::kNumber: {
      const double d = v.as_double();
      // Guard before as_int(): casting inf/nan to int64 is UB, and a
      // stalled run can legitimately produce x/0 metrics.
      if (!std::isfinite(d)) return d > 0 ? "inf" : (d < 0 ? "-inf" : "nan");
      if (d == static_cast<double>(v.as_int())) return json_number(d);
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.*f", precision, d);
      return buf;
    }
    case Json::Type::kString:
      return v.as_string();
    default:
      return "";  // nested detail: not a table cell
  }
}

std::string csv_cell(const Json& v) {
  if (v.is_object() || v.is_array() || v.is_null()) return "";
  std::string text = v.is_string() ? v.as_string() : cell_text(v, 6);
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (const char c : text) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::vector<std::string> Report::labels(std::size_t i) const {
  const std::vector<std::size_t> idx = grid.indices(i);
  std::vector<std::string> out;
  out.reserve(idx.size());
  for (std::size_t a = 0; a < idx.size(); ++a) {
    out.push_back(grid.axes()[a].labels[idx[a]]);
  }
  return out;
}

Json Report::to_json() const {
  Json section = Json::object();
  section.set("name", name);

  Json axes = Json::array();
  for (const Axis& a : grid.axes()) {
    Json axis = Json::object();
    axis.set("name", a.name);
    Json labels = Json::array();
    for (const std::string& l : a.labels) labels.push_back(l);
    axis.set("labels", std::move(labels));
    axes.push_back(std::move(axis));
  }
  section.set("axes", std::move(axes));

  Json out_rows = Json::array();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    Json row = Json::object();
    Json params = Json::object();
    const std::vector<std::string> ls = labels(i);
    for (std::size_t a = 0; a < ls.size(); ++a) {
      params.set(grid.axes()[a].name, ls[a]);
    }
    row.set("params", std::move(params));
    Json metrics = Json::object();
    for (const JsonMember& m : rows[i].values()) {
      metrics.set(m.first, m.second);
    }
    row.set("metrics", std::move(metrics));
    out_rows.push_back(std::move(row));
  }
  section.set("rows", std::move(out_rows));

  if (!notes.empty()) {
    Json ns = Json::array();
    for (const std::string& n : notes) ns.push_back(n);
    section.set("notes", std::move(ns));
  }
  return section;
}

std::string Report::to_csv() const {
  const std::vector<std::string> cols = scalar_columns(rows);
  std::string out;
  out += "section";
  for (const Axis& a : grid.axes()) {
    out += ',';
    out += a.name;
  }
  for (const std::string& c : cols) {
    out += ',';
    out += c;
  }
  out += '\n';
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += csv_cell(Json(name));
    for (const std::string& l : labels(i)) {
      out += ',';
      out += csv_cell(Json(l));
    }
    for (const std::string& c : cols) {
      out += ',';
      if (rows[i].contains(c)) out += csv_cell(rows[i].at(c));
    }
    out += '\n';
  }
  return out;
}

void Report::print_table(int precision) const {
  const std::vector<std::string> cols = scalar_columns(rows);

  // Assemble all cells first, then size the columns to fit.
  std::vector<std::vector<std::string>> table;
  std::vector<std::string> header;
  for (const Axis& a : grid.axes()) header.push_back(a.name);
  header.insert(header.end(), cols.begin(), cols.end());
  table.push_back(header);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> line = labels(i);
    for (const std::string& c : cols) {
      line.push_back(rows[i].contains(c) ? cell_text(rows[i].at(c), precision)
                                         : "-");
    }
    table.push_back(std::move(line));
  }

  std::vector<std::size_t> width(header.size(), 0);
  for (const auto& line : table) {
    for (std::size_t c = 0; c < line.size(); ++c) {
      width[c] = std::max(width[c], line[c].size());
    }
  }

  const std::size_t n_axes = grid.axes().size();
  for (std::size_t r = 0; r < table.size(); ++r) {
    std::string out = "  ";
    for (std::size_t c = 0; c < table[r].size(); ++c) {
      const std::string& cell = table[r][c];
      // Axis labels left-aligned, metrics right-aligned.
      if (c < n_axes) {
        out += cell + std::string(width[c] - cell.size(), ' ');
      } else {
        out += std::string(width[c] - cell.size(), ' ') + cell;
      }
      if (c + 1 < table[r].size()) out += (c + 1 == n_axes) ? " | " : "  ";
    }
    std::printf("%s\n", out.c_str());
    if (r == 0) {
      std::size_t total = 2;
      for (std::size_t c = 0; c < width.size(); ++c) {
        total += width[c] + (c + 1 < width.size() ? (c + 1 == n_axes ? 3 : 2) : 0);
      }
      std::printf("  %s\n", std::string(total - 2, '-').c_str());
    }
  }
}

}  // namespace eesmr::exp
