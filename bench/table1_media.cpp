// Table 1: energy consumption per message for BLE / 4G LTE / WiFi.
// Prints the same rows the paper reports (the cost model interpolates
// through exactly these measured points) plus the derived per-byte view.
#include "bench/bench_util.hpp"
#include "src/energy/cost_model.hpp"

using namespace eesmr;
using namespace eesmr::energy;

int main() {
  bench::header("Table 1 — per-message energy by medium (mJ)",
                "Table 1 (§5.4, communication primitives)");

  std::printf("%-8s | %8s %8s %10s | %9s %9s | %8s %8s\n", "Size",
              "BLE.Send", "BLE.Recv", "BLE.Mcast", "4G.Send", "4G.Recv",
              "WiFi.S", "WiFi.R");
  std::printf("---------+-----------------------------+"
              "---------------------+------------------\n");
  for (std::size_t size : {256u, 512u, 1024u, 2048u}) {
    std::printf("%5zu B  | %8.2f %8.2f %10.2f | %9.2f %9.2f | %8.2f %8.2f\n",
                size, send_energy_mj(Medium::kBle, size),
                recv_energy_mj(Medium::kBle, size),
                multicast_energy_mj(Medium::kBle, size),
                send_energy_mj(Medium::k4gLte, size),
                recv_energy_mj(Medium::k4gLte, size),
                send_energy_mj(Medium::kWifi, size),
                recv_energy_mj(Medium::kWifi, size));
  }

  std::printf("\nPer-byte send cost at 1 kB (mJ/B):\n");
  for (auto m : {Medium::kBle, Medium::kWifi, Medium::k4gLte}) {
    std::printf("  %-8s %.4f\n", medium_name(m),
                send_energy_mj(m, 1024) / 1024.0);
  }
  bench::note("expected shape: BLE ~2 orders of magnitude below WiFi, "
              "~3 below 4G (paper: 'two orders... three orders')");
  const double ble = send_energy_mj(Medium::kBle, 1024);
  const double wifi = send_energy_mj(Medium::kWifi, 1024);
  const double lte = send_energy_mj(Medium::k4gLte, 1024);
  std::printf("measured ratios at 1kB: WiFi/BLE = %.0fx, 4G/BLE = %.0fx\n",
              wifi / ble, lte / ble);
  return 0;
}
