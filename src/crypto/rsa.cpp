#include "src/crypto/rsa.hpp"

#include <array>
#include <stdexcept>

#include "src/crypto/sha256.hpp"

namespace eesmr::crypto {

namespace {

// Small primes for fast trial division before Miller-Rabin.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// DER DigestInfo prefix for SHA-256 (RFC 8017 section 9.2 note 1).
constexpr std::array<std::uint8_t, 19> kSha256DigestInfo = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

/// EMSA-PKCS1-v1_5 encoding of SHA-256(msg) into em_len bytes.
Bytes emsa_encode(BytesView msg, std::size_t em_len) {
  const Sha256Digest digest = Sha256::hash(msg);
  const std::size_t t_len = kSha256DigestInfo.size() + digest.size();
  if (em_len < t_len + 11) {
    throw std::invalid_argument("RSA modulus too small for SHA-256 PKCS#1");
  }
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(kSha256DigestInfo.begin(), kSha256DigestInfo.end(),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - t_len));
  std::copy(digest.begin(), digest.end(),
            em.begin() + static_cast<std::ptrdiff_t>(em_len - digest.size()));
  return em;
}

}  // namespace

bool is_probable_prime(const BigInt& n, sim::Rng& rng, int rounds) {
  if (n.compare(BigInt(2)) < 0) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // Write n - 1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  std::size_t r = 0;
  BigInt d = n_minus_1;
  while (!d.is_odd()) {
    d = d.shr(1);
    ++r;
  }
  for (int i = 0; i < rounds; ++i) {
    const BigInt a =
        BigInt(2) + BigInt::random_below(rng, n - BigInt(4));  // [2, n-2]
    BigInt x = BigInt::mod_exp(a, d, n);
    if (x.is_one() || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t j = 0; j + 1 < r; ++j) {
      x = BigInt::mod_mul(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, sim::Rng& rng) {
  if (bits < 16) throw std::invalid_argument("generate_prime: bits too small");
  for (;;) {
    BigInt candidate = BigInt::random_bits(rng, bits);
    // Force the second-highest bit (so products of two primes reach the
    // full modulus length) and oddness. Setting a currently-zero bit via
    // addition cannot carry, so the bit length stays exactly `bits`.
    if (!candidate.bit(bits - 2)) {
      candidate = candidate + BigInt(1).shl(bits - 2);
    }
    if (!candidate.is_odd()) candidate = candidate + BigInt(1);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

RsaKeyPair rsa_generate(std::size_t modulus_bits, sim::Rng& rng) {
  if (modulus_bits < 512 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("rsa_generate: modulus_bits must be even, >= 512");
  }
  const BigInt e(65537);
  const std::size_t prime_bits = modulus_bits / 2;
  for (;;) {
    const BigInt p = generate_prime(prime_bits, rng);
    const BigInt q = generate_prime(prime_bits, rng);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    const BigInt p1 = p - BigInt(1);
    const BigInt q1 = q - BigInt(1);
    const BigInt phi = p1 * q1;
    const auto d = BigInt::mod_inverse(e, phi);
    if (!d) continue;  // gcd(e, phi) != 1; pick new primes
    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = *d;
    priv.p = p;
    priv.q = q;
    priv.dp = *d % p1;
    priv.dq = *d % q1;
    const auto qinv = BigInt::mod_inverse(q, p);
    if (!qinv) continue;
    priv.qinv = *qinv;
    priv.modulus_bytes = (modulus_bits + 7) / 8;
    return RsaKeyPair{priv, priv.public_key()};
  }
}

Bytes rsa_sign(const RsaPrivateKey& key, BytesView msg) {
  const Bytes em = emsa_encode(msg, key.modulus_bytes);
  const BigInt m = BigInt::from_bytes_be(em);
  // CRT: s = sq + q * ((sp - sq) * qinv mod p).
  const BigInt sp = BigInt::mod_exp(m % key.p, key.dp, key.p);
  const BigInt sq = BigInt::mod_exp(m % key.q, key.dq, key.q);
  const BigInt h = BigInt::mod_mul(BigInt::mod_sub(sp, sq % key.p, key.p),
                                   key.qinv, key.p);
  const BigInt s = sq + key.q * h;
  return s.to_bytes_be(key.modulus_bytes);
}

bool rsa_verify(const RsaPublicKey& key, BytesView msg, BytesView sig) {
  if (sig.size() != key.modulus_bytes) return false;
  const BigInt s = BigInt::from_bytes_be(sig);
  if (s.compare(key.n) >= 0) return false;
  const BigInt m = BigInt::mod_exp(s, key.e, key.n);
  const Bytes em = m.to_bytes_be(key.modulus_bytes);
  const Bytes expected = emsa_encode(msg, key.modulus_bytes);
  return em == expected;
}

}  // namespace eesmr::crypto
