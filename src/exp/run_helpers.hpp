// Shared simulation-run recipes used across the figure benches: the
// steady-state run and the ψ_V = ψ_W − ψ_B view-change decomposition.
// Pure functions of their ClusterConfig (each call builds a fresh
// Cluster with its own scheduler), so they are safe to call from any
// worker thread of the experiment runner.
//
// The RunContext-taking overloads additionally wire the run's
// observability slots: the cluster traces into ctx.tracer and the
// result snapshots into ctx.registry (both no-ops when the matching
// --prom-out / --trace-out flag is absent). Benches that drive a
// Cluster by hand get the same wiring from prepare() + observe().
#pragma once

#include <cstdio>

#include "src/exp/runner.hpp"
#include "src/harness/cluster.hpp"

namespace eesmr::exp {

/// Wire this run's tracer slot into a cluster config (no-op without
/// --trace-out). Call before constructing the Cluster.
inline void prepare(const RunContext& ctx, harness::ClusterConfig& cfg) {
  cfg.tracer = ctx.tracer;
  cfg.trace_requests = ctx.trace_requests;
  cfg.crypto_workers = ctx.workers;
}

/// Snapshot a finished run into this run's registry slot (no-op without
/// --prom-out). `extra` labels distinguish multiple clusters run inside
/// one grid point — samples with identical labels overwrite.
inline void observe(const RunContext& ctx, const harness::RunResult& r,
                    const obs::Labels& extra = {}) {
  if (ctx.registry != nullptr) r.to_registry(*ctx.registry, extra);
}

/// Run an honest cluster until `blocks` commits; returns the result.
inline harness::RunResult run_steady(const harness::ClusterConfig& cfg,
                                     std::size_t blocks) {
  harness::Cluster cluster(cfg);
  harness::RunResult r =
      cluster.run_until_commits(blocks, sim::seconds(100000));
  if (!r.safety_ok()) {
    std::fprintf(stderr, "SAFETY VIOLATION in %s run\n",
                 harness::protocol_name(cfg.protocol));
  }
  return r;
}

/// run_steady with the run's observability slots wired through.
inline harness::RunResult run_steady(const RunContext& ctx,
                                     harness::ClusterConfig cfg,
                                     std::size_t blocks,
                                     const obs::Labels& extra = {}) {
  prepare(ctx, cfg);
  harness::RunResult r = run_steady(cfg, blocks);
  observe(ctx, r, extra);
  return r;
}

/// Energy attributable to one view change for `node`:
/// E(faulty run to B blocks) − E(honest run to B blocks), i.e. the
/// ψ_V = ψ_W − ψ_B decomposition of Section 4 measured empirically.
struct ViewChangeCost {
  double node_mj = 0;   ///< surcharge at `node`
  double total_mj = 0;  ///< surcharge summed over correct nodes
  std::uint64_t view_changes = 0;
};

inline ViewChangeCost view_change_cost(const harness::ClusterConfig& cfg,
                                       const harness::FaultSpec& fault,
                                       NodeId node, std::size_t blocks) {
  const harness::RunResult honest = run_steady(cfg, blocks);
  harness::ClusterConfig faulty_cfg = cfg;
  faulty_cfg.faults.push_back(fault);
  const harness::RunResult faulty = run_steady(faulty_cfg, blocks);

  ViewChangeCost out;
  out.view_changes = faulty.view_changes;
  const double per_vc =
      faulty.view_changes == 0 ? 1.0 : static_cast<double>(faulty.view_changes);
  out.node_mj =
      (faulty.node_energy_mj(node) - honest.node_energy_mj(node)) / per_vc;
  out.total_mj =
      (faulty.total_energy_mj() - honest.total_energy_mj()) / per_vc;
  return out;
}

/// view_change_cost with the observability slots wired through: both
/// runs trace (two epochs), and both snapshot into the registry under
/// a distinguishing `phase` label ("honest" / "faulty", prepended to
/// `extra`).
inline ViewChangeCost view_change_cost(const RunContext& ctx,
                                       const harness::ClusterConfig& cfg,
                                       const harness::FaultSpec& fault,
                                       NodeId node, std::size_t blocks,
                                       const obs::Labels& extra = {}) {
  const auto labeled = [&](const char* phase) {
    obs::Labels l{{"phase", phase}};
    l.insert(l.end(), extra.begin(), extra.end());
    return l;
  };
  const harness::RunResult honest =
      run_steady(ctx, cfg, blocks, labeled("honest"));
  harness::ClusterConfig faulty_cfg = cfg;
  faulty_cfg.faults.push_back(fault);
  const harness::RunResult faulty =
      run_steady(ctx, faulty_cfg, blocks, labeled("faulty"));

  ViewChangeCost out;
  out.view_changes = faulty.view_changes;
  const double per_vc =
      faulty.view_changes == 0 ? 1.0 : static_cast<double>(faulty.view_changes);
  out.node_mj =
      (faulty.node_energy_mj(node) - honest.node_energy_mj(node)) / per_vc;
  out.total_mj =
      (faulty.total_energy_mj() - honest.total_energy_mj()) / per_vc;
  return out;
}

}  // namespace eesmr::exp
