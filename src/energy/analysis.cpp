#include "src/energy/analysis.hpp"

#include <cmath>
#include <limits>

namespace eesmr::energy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Energy for ONE node transmitting a message of `bytes` to its
/// neighborhood, plus the energy of every node that hears it.
struct HopCost {
  double send_mj;      ///< paid by the transmitting node
  double per_recv_mj;  ///< paid by each receiving node
  std::size_t receivers;
};

HopCost hop_cost(const SystemParams& x, std::size_t bytes) {
  if (x.comm == CommMode::kKcastRing && x.node_medium == Medium::kBle) {
    const std::size_t r = kcast_redundancy_for(bytes, x.k, x.kcast_reliability);
    return {kcast_send_energy_mj(bytes, r), kcast_recv_energy_mj(bytes, r),
            x.k};
  }
  if (x.comm == CommMode::kKcastRing) {
    // Link-layer multicast on WiFi/4G: one transmission, k listeners.
    return {multicast_energy_mj(x.node_medium, bytes),
            recv_energy_mj(x.node_medium, bytes), x.k};
  }
  // Full mesh: a "transmission" is n-1 unicasts.
  const double send = send_energy_mj(x.node_medium, bytes) *
                      static_cast<double>(x.n - 1);
  return {send, recv_energy_mj(x.node_medium, bytes), x.n - 1};
}

/// Total system energy for one protocol-level broadcast *with flooding*:
/// every node transmits the message once to its neighborhood (this is the
/// EESMR Line-213 re-broadcast pattern; in Table 3 terms, O(nd) bits).
double flood_mj(const SystemParams& x, std::size_t bytes) {
  const HopCost hop = hop_cost(x, bytes);
  return static_cast<double>(x.n) *
         (hop.send_mj + hop.per_recv_mj * static_cast<double>(hop.receivers));
}

/// Energy for `senders` nodes each sending a point-to-point message of
/// `bytes` to one destination (e.g. status messages to the new leader).
double direct_mj(const SystemParams& x, std::size_t bytes,
                 std::size_t senders) {
  double send, recv;
  if (x.comm == CommMode::kKcastRing && x.node_medium == Medium::kBle) {
    // Point-to-point over BLE uses the reliable GATT unicast.
    send = gatt_send_energy_mj(bytes);
    recv = gatt_recv_energy_mj(bytes);
  } else {
    send = send_energy_mj(x.node_medium, bytes);
    recv = recv_energy_mj(x.node_medium, bytes);
  }
  return static_cast<double>(senders) * (send + recv);
}

struct Sizes {
  std::size_t sig;       ///< one signature
  std::size_t qc;        ///< f+1 signatures + framing
  std::size_t proposal;  ///< header + payload + leader signature
  std::size_t small;     ///< header + signature (blame, vote, ...)
};

Sizes sizes_of(const SystemParams& x) {
  Sizes s;
  s.sig = crypto::scheme_info(x.scheme).signature_bytes;
  s.qc = x.header_bytes + (x.f + 1) * s.sig;
  s.proposal = x.header_bytes + x.m + s.sig;
  s.small = x.header_bytes + s.sig;
  return s;
}

double sign_mj(const SystemParams& x, double count) {
  return count * sign_energy_mj(x.scheme);
}
double verify_mj(const SystemParams& x, double count) {
  return count * verify_energy_mj(x.scheme);
}

}  // namespace

PsiBreakdown psi_eesmr(const SystemParams& x) {
  const Sizes s = sizes_of(x);
  const double n = static_cast<double>(x.n);
  const double f = static_cast<double>(x.f);
  PsiBreakdown psi;

  // -- Steady state (§3.3): leader signs once, proposal floods, every
  //    node verifies the single leader signature and hashes the block.
  psi.best = flood_mj(x, s.proposal)           // proposal + re-broadcasts
             + sign_mj(x, 1)                   // "O(1) signing operations"
             + verify_mj(x, n - 1)             // each replica checks L's sig
             + n * hash_energy_mj(s.proposal); // chain hashing

  // -- View change (§3.4). Operation counts per Algorithm 2:
  //    blame broadcast, blame-QC broadcast, CommitUpdate broadcast,
  //    Certify replies (f+1 per node), commit-QC broadcast, status to the
  //    new leader, NewViewProposal flood, vote broadcast, round-2 flood.
  double vc = 0;
  vc += flood_mj(x, s.small) + sign_mj(x, n) + verify_mj(x, n * (f + 1));
  vc += flood_mj(x, s.qc) + verify_mj(x, n * (f + 1));      // blameQC
  vc += flood_mj(x, s.small);                               // CommitUpdate
  vc += direct_mj(x, s.small, x.n * (x.f + 1))              // Certify votes
        + sign_mj(x, n * (f + 1)) + verify_mj(x, n * (f + 1));
  vc += flood_mj(x, s.qc) + verify_mj(x, n * (f + 1));      // commitQC flood
  vc += direct_mj(x, s.qc, x.n);                            // status -> L
  // NewViewProposal carries f+1 commit certificates.
  const std::size_t nv_size = x.header_bytes + (x.f + 1) * s.qc + s.sig;
  vc += flood_mj(x, nv_size) + sign_mj(x, 1) +
        verify_mj(x, n * (f + 1 + 1));  // nodes check QCs + leader sig
  vc += flood_mj(x, s.small) + sign_mj(x, n) + verify_mj(x, f + 1);  // votes
  vc += flood_mj(x, s.qc) + verify_mj(x, n * (f + 1));  // round-2 proposal
  psi.view_change = vc;
  return psi;
}

PsiBreakdown psi_sync_hotstuff(const SystemParams& x) {
  const Sizes s = sizes_of(x);
  const double n = static_cast<double>(x.n);
  const double f = static_cast<double>(x.f);
  PsiBreakdown psi;

  // -- Steady state: the proposal carries the previous block's
  //    certificate (f+1 signatures); every node broadcasts a signed vote.
  const std::size_t proposal = s.proposal + (x.f + 1) * s.sig;
  psi.best = flood_mj(x, proposal)   // proposal + forwarding
             + flood_mj(x, s.small)  // per-node vote broadcast
             + sign_mj(x, n)        // every node signs its vote
             // verify: leader sig + certificate (f+1) + f+1 votes, per node
             + verify_mj(x, n * (1 + (f + 1) + (f + 1)))
             + n * hash_energy_mj(proposal);

  // -- View change: blame broadcast, blame certificate, status (highest
  //    certified block) broadcast, new-view proposal. One round shorter
  //    than EESMR (EESMR "performs slightly worse ... by adding an extra
  //    round"): no commit-certificate construction phase.
  double vc = 0;
  vc += flood_mj(x, s.small) + sign_mj(x, n) + verify_mj(x, n * (f + 1));
  vc += flood_mj(x, s.qc) + verify_mj(x, n * (f + 1));   // blame cert
  vc += flood_mj(x, s.qc);                               // status broadcast
  vc += flood_mj(x, s.qc + s.sig) + sign_mj(x, 1) +
        verify_mj(x, n * (f + 2));                       // new-view proposal
  vc += flood_mj(x, s.small) + sign_mj(x, n) + verify_mj(x, f + 1);  // votes
  psi.view_change = vc;
  return psi;
}

PsiBreakdown psi_optsync(const SystemParams& x) {
  const Sizes s = sizes_of(x);
  const double n = static_cast<double>(x.n);
  // Optimistic quorum of ⌊3n/4⌋+1.
  const double q = std::floor(3.0 * n / 4.0) + 1;
  PsiBreakdown psi;
  const std::size_t proposal =
      s.proposal + static_cast<std::size_t>(q) * s.sig;
  psi.best = flood_mj(x, proposal) + flood_mj(x, s.small) + sign_mj(x, n) +
             verify_mj(x, n * (1 + 2 * q)) + n * hash_energy_mj(proposal);
  // View change structurally matches Sync HotStuff's.
  psi.view_change = psi_sync_hotstuff(x).view_change;
  return psi;
}

double psi_trusted_baseline(const SystemParams& x) {
  const Sizes s = sizes_of(x);
  const double n = static_cast<double>(x.n);
  // Every node uploads its share of the block and downloads the ordered
  // block, both over the control medium. The control node is externally
  // powered (its energy is not counted), but CPS nodes still verify its
  // signature and hash the block.
  const double up = send_energy_mj(x.control_medium, x.m + x.header_bytes);
  const double down =
      recv_energy_mj(x.control_medium, s.proposal);
  return n * (up + down) + verify_mj(x, n) +
         n * hash_energy_mj(s.proposal);
}

double max_view_change_ratio(const PsiBreakdown& psi,
                             const PsiBreakdown& star) {
  // (N-V)ψ_B + Vψ_W <= (N-V)ψ*_B + Vψ*_W  =>  V/N <= (ψ*_B-ψ_B)/(ψ_V-ψ*_V).
  const double best_gain = star.best - psi.best;
  const double vc_loss = psi.view_change - star.view_change;
  if (vc_loss <= 0) {
    // View change is no worse: ψ wins for every ratio iff it also wins
    // the best case.
    return best_gain >= 0 ? kInf : 0.0;
  }
  if (best_gain <= 0) return 0.0;
  return std::min(1.0, best_gain / vc_loss);
}

double min_blocks_to_amortize(const PsiBreakdown& psi,
                              const PsiBreakdown& star, double view_changes) {
  const double best_gain = star.best - psi.best;
  const double vc_loss = psi.view_change - star.view_change;
  if (best_gain <= 0) return kInf;
  if (vc_loss <= 0) return view_changes;  // already ahead
  return view_changes * vc_loss / best_gain;
}

double energy_fault_bound(double psi_baseline, const PsiBreakdown& eesmr) {
  const double denom = eesmr.best + eesmr.view_change;
  if (denom <= 0) return kInf;
  return (psi_baseline - eesmr.best) / denom;
}

std::vector<FeasiblePoint> feasible_region(const std::vector<std::size_t>& ns,
                                           const std::vector<std::size_t>& ms,
                                           SystemParams base) {
  std::vector<FeasiblePoint> out;
  out.reserve(ns.size() * ms.size());
  for (std::size_t n : ns) {
    for (std::size_t m : ms) {
      SystemParams x = base;
      x.n = n;
      x.m = m;
      x.f = (n - 1) / 2;
      const double e = psi_eesmr(x).best;
      const double b = psi_trusted_baseline(x);
      out.push_back({n, m, e, b, e - b});
    }
  }
  return out;
}

}  // namespace eesmr::energy
