# Empty dependencies file for eesmr_core.
# This may be replaced when dependencies are built.
