// Figure 2f: total energy consumed by the correct nodes per SMR unit,
// EESMR vs Sync HotStuff, for k = 3 and k = 5, as n grows.
#include "bench/bench_util.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  bench::header("Figure 2f — total correct-node energy per SMR vs n",
                "Fig. 2f (§5.6/§5.7, BLE k-cast ring)");

  std::printf("%2s | %12s %12s | %12s %12s\n", "n", "EESMR k=3",
              "EESMR k=5", "SyncHS k=3", "SyncHS k=5");
  std::printf("---+---------------------------+---------------------------\n");

  for (std::size_t n = 4; n <= 9; ++n) {
    std::printf("%2zu |", n);
    for (Protocol p : {Protocol::kEesmr, Protocol::kSyncHotStuff}) {
      for (std::size_t k : {3u, 5u}) {
        if (k >= n) {
          std::printf(" %12s", "-");
          continue;
        }
        ClusterConfig cfg;
        cfg.protocol = p;
        cfg.n = n;
        cfg.f = std::min((n - 1) / 2, k - 1);
        cfg.k = k;
        cfg.medium = energy::Medium::kBle;
        cfg.cmd_bytes = 16;
        cfg.seed = 18;
        const RunResult r = bench::run_steady(cfg, 8);
        std::printf(" %12.0f", r.energy_per_block_mj());
      }
      if (p == Protocol::kEesmr) std::printf(" |");
    }
    std::printf("\n");
  }

  bench::note("expected shape: EESMR's total grows ~linearly in n (each "
              "correct node adds a constant k-dependent cost; per-node "
              "energy is independent of n), while Sync HotStuff grows "
              "faster (vote floods and f+1-signature certificates); "
              "larger k raises both");
  return 0;
}
