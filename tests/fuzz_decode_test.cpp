// Robustness sweep: decoding arbitrary bytes (Byzantine wire data) must
// either succeed or throw SerdeError / std::invalid_argument — never
// crash, never leak unbounded memory. Mutated-valid inputs probe the
// interesting boundary cases.
#include <gtest/gtest.h>

#include "src/checkpoint/checkpoint.hpp"
#include "src/common/serde.hpp"
#include "src/crypto/sha256.hpp"
#include "src/sim/rng.hpp"
#include "src/smr/block.hpp"
#include "src/smr/message.hpp"

namespace eesmr {
namespace {

template <typename Fn>
void expect_no_crash(Fn&& decode, BytesView data) {
  try {
    decode(data);
  } catch (const SerdeError&) {
  } catch (const std::invalid_argument&) {
  }
  // Any other exception type (or a crash) fails the test by escaping.
}

TEST(FuzzDecode, RandomBytes) {
  sim::Rng rng(0xf22d);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); }, junk);
    expect_no_crash([](BytesView d) { (void)smr::Msg::decode(d); }, junk);
    expect_no_crash([](BytesView d) { (void)smr::QuorumCert::decode(d); },
                    junk);
    // Checkpoint / state-transfer wire formats (kCheckpoint payloads,
    // certificates, snapshot payloads).
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::CheckpointMsg::decode(d); },
        junk);
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::CheckpointCert::decode(d); },
        junk);
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::SnapshotPayload::decode(d); },
        junk);
  }
}

TEST(FuzzDecode, MutatedValidCheckpointMessages) {
  // Round-trip a realistic kCheckpoint payload, certificate and
  // state-transfer snapshot, then flip/truncate: decode must never
  // crash, and a surviving certificate must never verify for a
  // tampered preimage.
  auto ring = crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, 6, 9);
  checkpoint::SnapshotPayload payload;
  payload.app_snapshot = Bytes(40, 0x77);
  payload.executed_cmds = 128;
  payload.watermarks = {{4, 9}, {5, 2}};
  payload.executed = {
      checkpoint::ExecutedEntry{4, 10, 30, to_bytes(std::string("ok"))}};
  const Bytes payload_bytes = payload.encode();

  checkpoint::CheckpointId id;
  id.height = 32;
  id.block = Bytes(32, 0x21);
  id.digest = crypto::sha256(payload_bytes);
  checkpoint::CheckpointCert cert;
  cert.id = id;
  for (NodeId i = 0; i < 2; ++i) {
    cert.sigs.emplace_back(i, ring->signer(i).sign(id.preimage()));
  }
  checkpoint::CheckpointMsg cp;
  cp.id = id;
  cp.sig = cert.sigs[0].second;

  const std::vector<Bytes> corpora = {cp.encode(), cert.encode(),
                                      payload_bytes};
  sim::Rng rng(0xc4e0);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes mutated = corpora[iter % corpora.size()];
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::CheckpointMsg::decode(d); },
        mutated);
    expect_no_crash(
        [](BytesView d) { (void)checkpoint::SnapshotPayload::decode(d); },
        mutated);
    try {
      const auto qc = checkpoint::CheckpointCert::decode(mutated);
      if (qc.verify(*ring, 2, 6)) {
        // Only acceptable survivor: a mutation confined to signature
        // padding of the simulated scheme with the id intact.
        EXPECT_EQ(qc.id, id);
      }
    } catch (const SerdeError&) {
    }
  }
}

TEST(FuzzDecode, CheckpointLengthPrefixBombRejected) {
  // A kCheckpoint with a 4 GiB inner-length prefix must not allocate.
  Writer w;
  w.u32(0xffffffffu);
  expect_no_crash(
      [](BytesView d) { (void)checkpoint::CheckpointMsg::decode(d); },
      w.buffer());
  expect_no_crash(
      [](BytesView d) { (void)checkpoint::SnapshotPayload::decode(d); },
      w.buffer());
  // Hostile signature counts in certificates are clamped, not reserved.
  Writer c;
  c.bytes(checkpoint::CheckpointId{}.encode());
  c.u32(0xffffffffu);
  expect_no_crash(
      [](BytesView d) { (void)checkpoint::CheckpointCert::decode(d); },
      c.buffer());
}

TEST(FuzzDecode, MutatedValidBlock) {
  smr::Block b;
  b.parent = smr::genesis_hash();
  b.height = 1;
  b.view = 1;
  b.round = 3;
  b.cmds = {smr::Command{Bytes(20, 0x33)}};
  const Bytes valid = b.encode();

  sim::Rng rng(0xdead);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes mutated = valid;
    // Flip 1-4 random bytes and/or truncate.
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); },
                    mutated);
  }
}

TEST(FuzzDecode, MutatedValidQuorumCert) {
  auto ring = crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, 4, 1);
  std::vector<smr::Msg> msgs;
  for (NodeId i = 0; i < 3; ++i) {
    smr::Msg m;
    m.type = smr::MsgType::kBlame;
    m.view = 2;
    m.author = i;
    m.sig = ring->signer(i).sign(m.preimage());
    msgs.push_back(m);
  }
  const Bytes valid = smr::QuorumCert::combine(msgs).encode();

  sim::Rng rng(0xbeef);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes mutated = valid;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    // Decode may throw; if it succeeds, verification must not crash and
    // a mutated certificate must never verify as a forged quorum for a
    // different preimage... (same data -> may still verify: flipping
    // padding bytes inside a signature field of a *simulated* scheme can
    // be caught only by verify).
    try {
      const smr::QuorumCert qc = smr::QuorumCert::decode(mutated);
      (void)qc.verify(*ring, 3);
    } catch (const SerdeError&) {
    }
  }
}

TEST(FuzzDecode, LengthPrefixBombsRejected) {
  // A 4 GiB length prefix must not allocate 4 GiB.
  Writer w;
  w.u32(0xffffffffu);
  expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); },
                  w.buffer());
  Reader r(w.buffer());
  EXPECT_THROW((void)r.bytes(), SerdeError);
}

}  // namespace
}  // namespace eesmr
