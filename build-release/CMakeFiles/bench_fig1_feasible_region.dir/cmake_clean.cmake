file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_feasible_region.dir/bench/fig1_feasible_region.cpp.o"
  "CMakeFiles/bench_fig1_feasible_region.dir/bench/fig1_feasible_region.cpp.o.d"
  "bench_fig1_feasible_region"
  "bench_fig1_feasible_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_feasible_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
