file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c_leader_vs_replica.dir/bench/fig2c_leader_vs_replica.cpp.o"
  "CMakeFiles/bench_fig2c_leader_vs_replica.dir/bench/fig2c_leader_vs_replica.cpp.o.d"
  "bench_fig2c_leader_vs_replica"
  "bench_fig2c_leader_vs_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_leader_vs_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
