// Protocol messages and quorum certificates (Algorithm 1).
//
// Every message carries (type, view, round, author, data, signature).
// The signature covers the preimage (type || view || round || data) under
// the author's key — one signature per message. (The paper splits this
// into viewSig/dataSig; a single signature over both is equivalent for
// our QC uses and matches what the evaluated implementation charges: one
// sign per message.) f+1 matching messages combine into a QuorumCert.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/ids.hpp"
#include "src/common/serde.hpp"
#include "src/crypto/agg.hpp"
#include "src/crypto/signer.hpp"
#include "src/energy/meter.hpp"

namespace eesmr::smr {

/// How certificates (vote QCs, checkpoint certs, reply acceptance) carry
/// their signatures on the wire.
enum class CertScheme : std::uint8_t {
  kIndividual = 0,  ///< f+1 (author, signature) pairs — O(n · siglen).
  kAggregate = 1,   ///< signer bitset + one 48-byte aggregate — O(1).
};

const char* cert_scheme_name(CertScheme s);

/// Sentinel in the QC signature-count slot marking the aggregate wire
/// form. Individual certificates can never carry this count (the decoder
/// clamp alone caps plausible counts orders of magnitude lower), so old
/// encodings remain valid and byte-identical.
constexpr std::uint32_t kAggCertSentinel = 0xFFFFFFFFu;

enum class MsgType : std::uint8_t {
  // Steady state.
  kPropose = 1,
  // View change (Algorithm 2, lines 216-277).
  kBlame = 2,
  kBlameQC = 3,
  kCommitUpdate = 4,
  kCertify = 5,
  kCommitQC = 6,
  kStatus = 7,           // commitQC sent to the new leader (line 265)
  kNewViewProposal = 8,
  kVoteMsg = 9,
  // Sync HotStuff / OptSync vocabulary.
  kVote = 10,
  // Chain synchronization (§3.2 "Note on chain synchronization").
  kSyncRequest = 11,
  kSyncResponse = 12,
  // Trusted-baseline protocol.
  kSubmit = 13,
  kOrdered = 14,
  /// Transferable equivocation proof: two conflicting leader-signed
  /// proposals for the same (view, round). Carried separately from kBlame
  /// so that blame messages stay aggregatable into one QC.
  kEquivProof = 15,
  // Client request/reply path (§3's client-centric SMR interface).
  kRequest = 16,
  kReply = 17,
  // Checkpointing & state transfer (src/checkpoint/): signed stable
  // checkpoints form f+1-identical state-digest certificates (the §3
  // stability rule applied to state, as in NxBFT), which gate log
  // truncation and let lagging replicas catch up from a snapshot.
  kCheckpoint = 18,
  kStateRequest = 19,
  kStateResponse = 20,
  // PBFT / MinBFT vocabulary (src/baselines/pbft, src/baselines/minbft).
  // kPropose doubles as pre-prepare / UI-attested prepare; these carry
  // the agreement rounds and the view-change protocol.
  kPrepare = 21,
  kCommit = 22,
  kViewChange = 23,
  kNewView = 24,
  /// Aggregate-scheme stable-checkpoint certificate: the rotating
  /// collector that folded f+1 share attestations floods the O(1)
  /// {bitset, aggregate} certificate instead of every replica flooding
  /// its own attestation (see ReplicaBase::checkpoint_collector).
  kCheckpointCert = 25,
};

const char* msg_type_name(MsgType t);

/// True for message types whose signatures later reappear inside
/// certificates (votes and view-change evidence): the types the
/// verified-signature cache remembers, and — under CertScheme::
/// kAggregate — the ones signed with 48-byte aggregate shares instead
/// of directory signatures.
[[nodiscard]] bool certificate_bound(MsgType t);

/// Channel class (energy attribution stream) a message type travels on.
/// The replica's typed channels are opened per stream; every message is
/// routed through the channel of its type's stream.
energy::Stream stream_of(MsgType t);

struct Msg {
  MsgType type = MsgType::kPropose;
  std::uint64_t view = 0;
  std::uint64_t round = 0;
  NodeId author = kNoNode;
  Bytes data;
  Bytes sig;

  /// Bytes the signature covers.
  [[nodiscard]] Bytes preimage() const;
  [[nodiscard]] Bytes encode() const;
  /// Append the wire encoding to `w` — the zero-allocation variant for
  /// hot paths that reuse a cleared Writer across encodes.
  void encode_into(Writer& w) const;
  static Msg decode(BytesView bytes);
  /// Exact wire size, computed arithmetically (no encode-and-discard).
  [[nodiscard]] std::size_t wire_size() const {
    return 1 + 8 + 8 + 4 + (4 + data.size()) + (4 + sig.size());
  }
};

/// f+1 signatures on the same (type, view, round, data) — the paper's QC
/// function (Algorithm 1, line 114). Two wire forms (CertScheme): the
/// individual form carries (author, signature) pairs; the aggregate form
/// carries {membership generation, signer bitset, one aggregate
/// signature} and is O(1)-size regardless of quorum.
struct QuorumCert {
  MsgType type = MsgType::kBlame;
  std::uint64_t view = 0;
  std::uint64_t round = 0;
  Bytes data;
  std::vector<std::pair<NodeId, Bytes>> sigs;  ///< (author, signature)

  CertScheme scheme = CertScheme::kIndividual;
  // Aggregate form only:
  std::uint64_t gen = 0;         ///< membership generation of the signers
  crypto::SignerBitset signers;  ///< who contributed shares
  Bytes agg_sig;                 ///< XOR-fold of the members' shares

  [[nodiscard]] Bytes encode() const;
  static QuorumCert decode(BytesView bytes);

  /// Signer count, across both forms.
  [[nodiscard]] std::size_t signer_count() const;
  /// Signer node-ids, across both forms.
  [[nodiscard]] std::vector<NodeId> signer_list() const;

  /// Fold this (individual-form, share-signed) cert into the aggregate
  /// form over a `universe`-wide bitset tagged with generation `gen`.
  /// Throws std::invalid_argument on out-of-range signers or non-share
  /// signature sizes.
  [[nodiscard]] QuorumCert to_aggregate(std::size_t universe,
                                        std::uint64_t generation) const;

  /// Aggregate-form validity: count >= quorum and the aggregate verifies
  /// against the claimed signers. (Membership of the signers in the
  /// cert's generation is the replica's job — it owns the policy
  /// history.)
  [[nodiscard]] bool verify_aggregate(const crypto::AggKeyring& agg,
                                      std::size_t quorum) const;

  /// The preimage each contained signature covers (a Msg preimage with
  /// this cert's type/view/round/data). Exposed so verifiers can check
  /// signatures individually — against a cache or as a batch — without
  /// rebuilding a probe Msg.
  [[nodiscard]] Bytes preimage() const;

  /// All signatures valid, authors distinct, and count >= quorum.
  [[nodiscard]] bool verify(const crypto::Keyring& keyring,
                            std::size_t quorum) const;

  /// Assemble from verified messages sharing (type, view, round, data).
  /// Throws std::invalid_argument if the messages do not match.
  static QuorumCert combine(const std::vector<Msg>& msgs);
};

/// MatchingMsg (Algorithm 1, line 112).
inline bool matching_msg(const Msg& m, MsgType type, std::uint64_t view) {
  return m.type == type && m.view == view;
}

/// MatchingQC (Algorithm 1, line 119).
inline bool matching_qc(const QuorumCert& qc, MsgType type,
                        std::uint64_t view) {
  return qc.type == type && qc.view == view;
}

}  // namespace eesmr::smr
