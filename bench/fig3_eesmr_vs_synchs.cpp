// Figure 3: leader energy, EESMR vs Sync HotStuff, for honest runs and
// view changes, as f grows. n = 13, k = f + 1.
#include "bench/bench_util.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  bench::header("Figure 3 — leader energy to tolerate f faults (n = 13)",
                "Fig. 3 (§5.7, k = f + 1, BLE)");

  std::printf("%2s %2s | %13s %13s | %13s %13s\n", "f", "k", "EESMR hon",
              "SyncHS hon", "EESMR VC", "SyncHS VC");
  std::printf("------+-----------------------------+----------------------"
              "--------\n");

  double sum_hon_ratio = 0, sum_vc_ratio = 0;
  int rows = 0;
  for (std::size_t f = 1; f <= 6; ++f) {
    ClusterConfig cfg;
    cfg.n = 13;
    cfg.f = f;
    cfg.k = f + 1;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    cfg.seed = 19;
    const std::size_t blocks = 6;
    const NodeId new_leader = 2;

    ClusterConfig ee = cfg;
    ee.protocol = Protocol::kEesmr;
    ClusterConfig shs = cfg;
    shs.protocol = Protocol::kSyncHotStuff;

    const RunResult ee_honest = bench::run_steady(ee, blocks);
    const RunResult shs_honest = bench::run_steady(shs, blocks);
    const double ee_hon = ee_honest.node_energy_per_block_mj(1);
    const double shs_hon = shs_honest.node_energy_per_block_mj(1);

    const bench::ViewChangeCost ee_vc = bench::view_change_cost(
        ee, {1, protocol::ByzantineMode::kCrash, 4}, new_leader, blocks);
    const bench::ViewChangeCost shs_vc = bench::view_change_cost(
        shs, {1, protocol::ByzantineMode::kCrash, 4}, new_leader, blocks);

    std::printf("%2zu %2zu | %13.1f %13.1f | %13.1f %13.1f\n", f, f + 1,
                ee_hon, shs_hon, ee_vc.node_mj, shs_vc.node_mj);
    sum_hon_ratio += shs_hon / ee_hon;
    if (ee_vc.node_mj > 0 && shs_vc.node_mj > 0) {
      sum_vc_ratio += ee_vc.node_mj / shs_vc.node_mj;
      ++rows;
    }
  }

  std::printf("\nmean honest-leader ratio SyncHS/EESMR: %.2fx "
              "(paper: 2.85x)\n", sum_hon_ratio / 6.0);
  if (rows > 0) {
    std::printf("mean view-change ratio EESMR/SyncHS:  %.2fx "
                "(paper: 2.05x)\n", sum_vc_ratio / rows);
  }
  bench::note("expected shape: EESMR honest-leader cost well below Sync "
              "HotStuff's (no certificates, no votes); EESMR's view "
              "change costlier (extra round + commit-certificate "
              "construction); all curves grow with k = f+1");
  return 0;
}
