// Headline claims (§1, §5.7, conclusion):
//  * EESMR is ~2.8x more energy-efficient than Sync HotStuff in
//    failure-free runs;
//  * ~2x worse during leader changes;
//  * 33-64% total energy reduction in the steady state;
//  * 64% savings at n = 10 using BLE.
#include "bench/bench_util.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  bench::header("Headline claims — EESMR vs Sync HotStuff",
                "§1 (abstract), §5.7, Conclusion");

  // Steady-state ratio across the evaluation's n = 10..13 with k = f+1.
  std::printf("%3s %2s %2s | %11s %11s | %7s | %9s\n", "n", "f", "k",
              "EESMR mJ/b", "SyncHS mJ/b", "ratio", "savings%");
  std::printf("----------+--------------------------+---------+----------\n");
  double best_savings = 0, worst_savings = 1e9;
  for (std::size_t n : {10u, 11u, 12u, 13u}) {
    for (std::size_t k : std::vector<std::size_t>{3, (n - 1) / 2}) {
      ClusterConfig cfg;
      cfg.n = n;
      cfg.f = k - 1 < (n - 1) / 2 ? k - 1 : (n - 1) / 2;
      cfg.k = k;
      cfg.medium = energy::Medium::kBle;
      cfg.cmd_bytes = 16;
      cfg.seed = 20;

      ClusterConfig ee = cfg;
      ee.protocol = Protocol::kEesmr;
      ClusterConfig shs = cfg;
      shs.protocol = Protocol::kSyncHotStuff;
      const double e = bench::run_steady(ee, 8).energy_per_block_mj();
      const double s = bench::run_steady(shs, 8).energy_per_block_mj();
      const double savings = (1.0 - e / s) * 100.0;
      best_savings = std::max(best_savings, savings);
      worst_savings = std::min(worst_savings, savings);
      std::printf("%3zu %2zu %2zu | %11.0f %11.0f | %6.2fx | %8.1f%%\n", n,
                  cfg.f, k, e, s, s / e, savings);
    }
  }
  std::printf("\nsteady-state savings range measured: %.0f%% .. %.0f%% "
              "(paper: 33-64%%)\n", worst_savings, best_savings);

  // View-change ratio at n = 13, k = 7 (the paper's 2.05x setting).
  ClusterConfig cfg;
  cfg.n = 13;
  cfg.f = 6;
  cfg.k = 7;
  cfg.medium = energy::Medium::kBle;
  cfg.cmd_bytes = 16;
  cfg.seed = 21;
  ClusterConfig ee = cfg;
  ee.protocol = Protocol::kEesmr;
  ClusterConfig shs = cfg;
  shs.protocol = Protocol::kSyncHotStuff;
  const bench::ViewChangeCost ee_vc = bench::view_change_cost(
      ee, {1, protocol::ByzantineMode::kCrash, 4}, 2, 6);
  const bench::ViewChangeCost shs_vc = bench::view_change_cost(
      shs, {1, protocol::ByzantineMode::kCrash, 4}, 2, 6);
  std::printf("view-change total surcharge: EESMR %.0f mJ vs SyncHS %.0f "
              "mJ -> ratio %.2fx (paper: ~2x)\n",
              ee_vc.total_mj, shs_vc.total_mj,
              ee_vc.total_mj / shs_vc.total_mj);

  // Section-4 amortization: how many steady blocks pay for one VC?
  const double per_block_gain =
      bench::run_steady(shs, 8).energy_per_block_mj() -
      bench::run_steady(ee, 8).energy_per_block_mj();
  const double vc_loss = ee_vc.total_mj - shs_vc.total_mj;
  std::printf("blocks to amortize one view change (N >= V*(psiV-psiV*)/"
              "(psiB*-psiB)): %.1f\n", vc_loss / per_block_gain);
  bench::note("expected: ratio > 1 favors EESMR in the steady state; the "
              "bounded number of Byzantine leaders (<= f) makes the "
              "best-case-optimal trade worthwhile (Section 4)");
  return 0;
}
