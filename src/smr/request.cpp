#include "src/smr/request.hpp"

#include "src/common/serde.hpp"

namespace eesmr::smr {

Bytes ClientRequest::preimage() const {
  Writer w;
  w.u16(kRequestTag);
  w.u32(client);
  w.u64(req_id);
  w.bytes(op);
  return w.take();
}

bool ClientRequest::verify(const crypto::Keyring& keyring) const {
  if (client >= keyring.size()) return false;
  return keyring.verify(client, preimage(), sig);
}

Bytes ClientRequest::encode() const {
  Writer w;
  w.raw(preimage());
  w.bytes(sig);
  return w.take();
}

std::optional<ClientRequest> ClientRequest::decode(BytesView data) {
  try {
    Reader r(data);
    if (r.u16() != kRequestTag) return std::nullopt;
    ClientRequest req;
    req.client = r.u32();
    req.req_id = r.u64();
    req.op = r.bytes();
    req.sig = r.bytes();
    r.expect_done();
    return req;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

Bytes ClientReply::encode() const {
  Writer w;
  w.u32(client);
  w.u64(req_id);
  w.bytes(result);
  w.u32(leader);
  return w.take();
}

std::optional<ClientReply> ClientReply::decode(BytesView data) {
  try {
    Reader r(data);
    ClientReply rep;
    rep.client = r.u32();
    rep.req_id = r.u64();
    rep.result = r.bytes();
    rep.leader = r.u32();
    r.expect_done();
    return rep;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

namespace {
/// Domain tag separating acceptance preimages from requests (0xC11E),
/// checkpoints (0xC4E0) and policy commands (0xEE57).
constexpr std::uint16_t kAcceptTag = 0xACC1;
}  // namespace

Bytes acceptance_preimage(NodeId client, std::uint64_t req_id,
                          const Bytes& result) {
  Writer w;
  w.u16(kAcceptTag);
  w.u32(client);
  w.u64(req_id);
  w.bytes(result);
  return w.take();
}

Bytes AcceptanceCert::encode() const {
  Writer w;
  w.u32(client);
  w.u64(req_id);
  w.bytes(result);
  w.u64(gen);
  signers.encode_into(w);
  w.bytes(agg_sig);
  return w.take();
}

AcceptanceCert AcceptanceCert::decode(BytesView data) {
  Reader r(data);
  AcceptanceCert c;
  c.client = r.u32();
  c.req_id = r.u64();
  c.result = r.bytes();
  c.gen = r.u64();
  c.signers = crypto::SignerBitset::decode_from(r);
  c.agg_sig = r.bytes();
  if (c.agg_sig.size() != crypto::kAggSignatureBytes) {
    throw SerdeError("AcceptanceCert: bad aggregate signature size");
  }
  r.expect_done();
  return c;
}

bool AcceptanceCert::verify(const crypto::AggKeyring& agg,
                            std::size_t quorum) const {
  if (signers.count() < quorum) return false;
  return agg.verify_aggregate(signers,
                              acceptance_preimage(client, req_id, result),
                              agg_sig);
}

}  // namespace eesmr::smr
