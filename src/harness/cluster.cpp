#include "src/harness/cluster.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "src/adversary/adversary.hpp"

namespace eesmr::harness {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kEesmr:
      return "EESMR";
    case Protocol::kSyncHotStuff:
      return "SyncHotStuff";
    case Protocol::kOptSync:
      return "OptSync";
    case Protocol::kTrustedBaseline:
      return "TrustedBaseline";
    case Protocol::kPbft:
      return "PBFT";
    case Protocol::kMinBft:
      return "MinBFT";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RunResult
// ---------------------------------------------------------------------------

bool RunResult::safety_ok() const {
  // Compare committed blocks per *height* across correct nodes: with
  // checkpoint truncation the retained logs are suffixes starting at
  // different offsets, so positional comparison would misalign.
  std::map<std::uint64_t, const smr::Block*> canon;
  for (std::size_t a = 0; a < logs.size(); ++a) {
    if (!correct[a]) continue;
    for (const smr::Block& b : logs[a]) {
      const auto [it, fresh] = canon.try_emplace(b.height, &b);
      if (!fresh && !(*it->second == b)) return false;
    }
  }
  return true;
}

std::uint64_t RunResult::committed_at(NodeId id) const {
  if (id < committed_blocks.size()) return committed_blocks[id];
  return logs.at(id).size();
}

std::size_t RunResult::min_committed() const {
  std::size_t best = SIZE_MAX;
  for (std::size_t i = 0; i < logs.size(); ++i) {
    if (correct[i] && counted[i]) {
      best = std::min<std::size_t>(
          best, committed_at(static_cast<NodeId>(i)));
    }
  }
  return best == SIZE_MAX ? 0 : best;
}

std::size_t RunResult::max_committed() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < logs.size(); ++i) {
    if (correct[i] && counted[i]) {
      best = std::max<std::size_t>(
          best, committed_at(static_cast<NodeId>(i)));
    }
  }
  return best;
}

std::size_t RunResult::max_retained_log() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < footprints.size(); ++i) {
    if (correct[i] && counted[i]) {
      best = std::max(best, footprints[i].retained_log);
    }
  }
  return best;
}

std::size_t RunResult::max_dedup_entries() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < footprints.size(); ++i) {
    if (correct[i] && counted[i]) {
      best = std::max(best, footprints[i].dedup_entries());
    }
  }
  return best;
}

double RunResult::accepted_per_sec() const {
  const double secs = sim::to_seconds(end_time);
  return secs <= 0 ? 0.0
                   : static_cast<double>(requests_accepted) / secs;
}

energy::StreamStats RunResult::stream_totals(energy::Stream s) const {
  energy::StreamStats out;
  for (std::size_t i = 0; i < meters.size(); ++i) {
    if (i < correct.size() && correct[i] && i < counted.size() && counted[i]) {
      out += meters[i].stream(s);
    }
  }
  return out;
}

energy::StreamStats RunResult::stream_totals_all(energy::Stream s) const {
  energy::StreamStats out;
  for (std::size_t i = 0; i < meters.size(); ++i) {
    if (i < correct.size() && correct[i]) out += meters[i].stream(s);
  }
  return out;
}

double RunResult::total_energy_mj() const {
  double total = 0;
  for (std::size_t i = 0; i < meters.size(); ++i) {
    if (correct[i] && counted[i]) total += meters[i].total_millijoules();
  }
  return total;
}

double RunResult::energy_per_block_mj() const {
  const std::size_t blocks = min_committed();
  return blocks == 0 ? 0.0 : total_energy_mj() / static_cast<double>(blocks);
}

double RunResult::node_energy_mj(NodeId id) const {
  return meters.at(id).total_millijoules();
}

double RunResult::node_energy_per_block_mj(NodeId id) const {
  const std::uint64_t blocks = committed_at(id);
  return blocks == 0 ? 0.0 : node_energy_mj(id) / static_cast<double>(blocks);
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

Cluster::~Cluster() = default;

Cluster::Cluster(const ClusterConfig& cfg) : cfg_(cfg) {
  if (cfg_.n < 2) throw std::invalid_argument("Cluster: n >= 2 required");
  if (cfg_.spares >= cfg_.n) {
    throw std::invalid_argument("Cluster: spares must leave members");
  }
  if (cfg_.spares > 0 && cfg_.protocol == Protocol::kTrustedBaseline) {
    throw std::invalid_argument(
        "Cluster: spares unsupported for the trusted baseline");
  }
  if (cfg_.tracer != nullptr) {
    cfg_.tracer->open_epoch(std::string(protocol_name(cfg_.protocol)) +
                            " n=" + std::to_string(cfg_.n) +
                            " f=" + std::to_string(cfg_.f));
  }
  const bool baseline = cfg_.protocol == Protocol::kTrustedBaseline;
  const std::size_t total = baseline ? cfg_.n + 1 : cfg_.n;
  // Clients are appended after the protocol nodes; Byzantine clients
  // (adversary script) after the honest ones.
  const std::size_t byz_clients = cfg_.adversary.clients.size();
  const std::size_t leaves = cfg_.clients + byz_clients;
  const std::size_t world = total + leaves;

  // Protocol-node topology.
  net::Hypergraph graph(total);
  if (baseline) {
    // Star: every CPS node <-> the control node (id n).
    const NodeId ctl = static_cast<NodeId>(cfg_.n);
    for (NodeId i = 0; i < cfg_.n; ++i) {
      graph.add_edge({i, {ctl}});
      graph.add_edge({ctl, {i}});
    }
  } else if (cfg_.k == 0) {
    graph = net::Hypergraph::full_mesh(total);
  } else {
    graph = net::Hypergraph::kcast_ring(total, cfg_.k);
  }
  // Δ derives from the protocol-node diameter: clients are non-relay
  // leaves and can never shorten replica-to-replica paths.
  const std::size_t diameter = std::max<std::size_t>(1, graph.diameter());
  delta_ = cfg_.hop_delay * static_cast<sim::Duration>(diameter + 1);

  if (leaves > 0) {
    graph = net::Hypergraph::expanded(graph, world);
    const std::size_t attach =
        cfg_.client_attach == 0 ? cfg_.n
                                : std::min(cfg_.client_attach, cfg_.n);
    for (std::size_t ci = 0; ci < cfg_.clients; ++ci) {
      const NodeId cid = static_cast<NodeId>(total + ci);
      for (std::size_t j = 0; j < attach; ++j) {
        // Spread partial attachments round-robin across replicas.
        const NodeId r = static_cast<NodeId>((ci + j) % cfg_.n);
        graph.add_edge({cid, {r}});
        graph.add_edge({r, {cid}});
      }
    }
    // Byzantine clients attach everywhere (a flooding attacker picks the
    // best-connected access it can get).
    for (std::size_t bi = 0; bi < byz_clients; ++bi) {
      const NodeId cid = static_cast<NodeId>(total + cfg_.clients + bi);
      for (NodeId r = 0; r < cfg_.n; ++r) {
        graph.add_edge({cid, {r}});
        graph.add_edge({r, {cid}});
      }
    }
  }

  meters_.resize(world);
  net::TransportConfig tc;
  tc.medium = cfg_.medium;
  tc.hop_bound = cfg_.hop_delay;
  // Clients (honest and Byzantine) are non-relay leaves from the start
  // (one hop computation).
  std::vector<bool> relay;
  if (leaves > 0) {
    relay.assign(world, true);
    for (std::size_t ci = 0; ci < leaves; ++ci) relay[total + ci] = false;
  }
  net_ = std::make_unique<net::Network>(sched_, std::move(graph), tc,
                                        &meters_, std::move(relay));
  if (cfg_.adversarial_delays) {
    net_->set_delay_policy(std::make_unique<net::MaxDelay>(cfg_.hop_delay));
  } else {
    net_->set_delay_policy(std::make_unique<net::UniformDelay>(
        sim::Rng(cfg_.seed ^ 0xde1a7), std::max<sim::Duration>(1, cfg_.hop_delay / 4),
        cfg_.hop_delay));
  }

  // Keys (the directory also covers client ids).
  keyring_ = cfg_.simulated_keys
                 ? crypto::Keyring::simulated(cfg_.scheme, world, cfg_.seed)
                 : crypto::Keyring::generate(cfg_.scheme, world, cfg_.seed);
  // Aggregate share directory: replicas only (clients hold it to verify
  // reply shares and fold acceptance certs, never to sign).
  if (cfg_.cert_scheme == smr::CertScheme::kAggregate) {
    agg_ = crypto::AggKeyring::simulated(total, cfg_.seed);
  }

  // Speculative crypto pipeline: workers verify transmitted signatures
  // off the sim thread; replicas/clients join results at their normal
  // (deterministic) decision points. Always present — at crypto_workers
  // == 0 it still memoizes each frame's verify across its n receivers.
  pipeline_ = std::make_unique<crypto::VerifyPipeline>(cfg_.crypto_workers);
  install_speculation_hook();

  correct_.assign(world, true);
  counted_.assign(world, true);
  // Clients are mains-powered workload generators: correct but never
  // part of the replica energy/commit accounting. Byzantine clients are
  // adversarial on top of that.
  for (std::size_t ci = 0; ci < leaves; ++ci) {
    counted_[total + ci] = false;
  }
  // Spares follow the chain but are outside the genesis signer set: they
  // stay out of the commit/energy accounting (min_committed_correct must
  // not wait on a node that cannot vote yet); the SafetyChecker-adjacent
  // final-log cross-check still covers them via RunResult::safety_ok.
  for (std::size_t s = 0; s < cfg_.spares; ++s) {
    counted_[cfg_.n - 1 - s] = false;
  }
  for (std::size_t bi = 0; bi < byz_clients; ++bi) {
    correct_[total + cfg_.clients + bi] = false;
  }
  for (const FaultSpec& fs : cfg_.faults) {
    if (fs.mode != protocol::ByzantineMode::kHonest) {
      correct_.at(fs.node) = false;
    }
  }
  // Every replica an adversary script touches consumes the fault budget:
  // withholders and crash/recover nodes behave abnormally themselves,
  // and mark_faulty covers nodes attacked indirectly (e.g. the senders a
  // LinkFault drop rule targets).
  const adversary::AdversarySpec& adv = cfg_.adversary;
  const auto consume_budget = [&](NodeId id) {
    if (id >= total) {
      throw std::invalid_argument("Cluster: adversary names a non-replica");
    }
    correct_.at(id) = false;
  };
  for (const auto& w : adv.withholds) consume_budget(w.node);
  for (const auto& cr : adv.crashes) consume_budget(cr.node);
  for (const auto& ca : adv.checkpoint_attacks) consume_budget(ca.node);
  for (NodeId id : adv.mark_faulty) consume_budget(id);
  if (!adv.link_faults.empty()) {
    injector_ = std::make_unique<adversary::NetAdversary>(
        adv.link_faults, sched_, sim::derive_seed(cfg_.seed, 0xfa01));
    injector_->set_tracer(cfg_.tracer);
    net_->set_fault_injector(injector_.get());
  }

  smr::ReplicaConfig base;
  base.n = total;
  base.f = cfg_.f;
  base.delta = delta_;
  base.batch_size = cfg_.batch_size;
  // With real clients attached, blocks carry client requests only — the
  // "clients always have pending requests" synthetic filler would bury
  // the measured workload.
  base.cmd_bytes = cfg_.clients > 0 ? 0 : cfg_.cmd_bytes;
  base.keyring = keyring_;
  base.cert_scheme = cfg_.cert_scheme;
  base.agg = agg_;
  base.initial_members = total - cfg_.spares;
  base.checkpoint_interval = cfg_.checkpoint_interval;
  base.mempool_capacity = cfg_.mempool_capacity;
  base.client_pending_cap = cfg_.client_pending_cap;
  base.channels = cfg_.channels;
  base.verified_cache = cfg_.verified_cache;
  base.tracer = cfg_.tracer;
  // The run's deterministic profiler: every replica and client reports
  // crypto/codec counts into it; sampled requests get flow events.
  prof_.set_medium(cfg_.medium);
  prof_.set_tracer(cfg_.tracer);
  prof_.set_request_samples(cfg_.trace_requests);
  prof_.set_host_timing(cfg_.host_timing);
  base.profiler = &prof_;
  base.pipeline = pipeline_.get();
  // Subset submission needs the replica request stream in unicast mode:
  // only the contacted replicas hear a request, so the first to pool it
  // forwards to the leader (otherwise a subset missing the leader would
  // stall until client failover happens to hit it).
  if (cfg_.client_submit.kind ==
          net::DisseminationPolicy::Kind::kTargetedSubset &&
      base.channels[energy::Stream::kRequest].kind ==
          net::DisseminationPolicy::Kind::kDefault) {
    base.channels[energy::Stream::kRequest] =
        net::DisseminationPolicy::routed_unicast();
  }

  auto fault_for = [&](NodeId id) {
    protocol::ByzantineConfig byz;
    for (const FaultSpec& fs : cfg_.faults) {
      if (fs.node == id) {
        byz.mode = fs.mode;
        byz.trigger_round = fs.trigger_round;
      }
    }
    return byz;
  };

  for (NodeId i = 0; i < total; ++i) {
    smr::ReplicaConfig rc = base;
    rc.id = i;
    switch (cfg_.protocol) {
      case Protocol::kEesmr: {
        replicas_.push_back(std::make_unique<protocol::EesmrReplica>(
            *net_, rc, cfg_.eesmr, fault_for(i), &meters_[i]));
        break;
      }
      case Protocol::kSyncHotStuff:
      case Protocol::kOptSync: {
        baselines::SyncHsOptions so = cfg_.synchs;
        so.optimistic_fast_path = cfg_.protocol == Protocol::kOptSync;
        baselines::SyncHsByzantineConfig sbyz;
        const protocol::ByzantineConfig byz = fault_for(i);
        switch (byz.mode) {
          case protocol::ByzantineMode::kHonest:
            sbyz.mode = baselines::SyncHsByzantineMode::kHonest;
            break;
          case protocol::ByzantineMode::kCrash:
            sbyz.mode = baselines::SyncHsByzantineMode::kCrash;
            break;
          default:
            sbyz.mode = baselines::SyncHsByzantineMode::kEquivocate;
            break;
        }
        sbyz.trigger_height = byz.trigger_round;
        replicas_.push_back(std::make_unique<baselines::SyncHsReplica>(
            *net_, rc, so, sbyz, &meters_[i]));
        break;
      }
      case Protocol::kPbft: {
        baselines::PbftByzantineConfig pbyz;
        const protocol::ByzantineConfig byz = fault_for(i);
        switch (byz.mode) {
          case protocol::ByzantineMode::kHonest:
            pbyz.mode = baselines::PbftByzantineMode::kHonest;
            break;
          case protocol::ByzantineMode::kCrash:
            pbyz.mode = baselines::PbftByzantineMode::kCrash;
            break;
          default:
            pbyz.mode = baselines::PbftByzantineMode::kEquivocate;
            break;
        }
        pbyz.trigger_height = byz.trigger_round;
        replicas_.push_back(std::make_unique<baselines::PbftReplica>(
            *net_, rc, pbyz, &meters_[i]));
        break;
      }
      case Protocol::kMinBft: {
        baselines::MinBftByzantineConfig mbyz;
        const protocol::ByzantineConfig byz = fault_for(i);
        switch (byz.mode) {
          case protocol::ByzantineMode::kHonest:
            mbyz.mode = baselines::MinBftByzantineMode::kHonest;
            break;
          case protocol::ByzantineMode::kCrash:
            mbyz.mode = baselines::MinBftByzantineMode::kCrash;
            break;
          default:
            mbyz.mode = baselines::MinBftByzantineMode::kEquivocate;
            break;
        }
        mbyz.trigger_height = byz.trigger_round;
        replicas_.push_back(std::make_unique<baselines::MinBftReplica>(
            *net_, rc, mbyz, &meters_[i]));
        break;
      }
      case Protocol::kTrustedBaseline: {
        if (i == cfg_.n) {
          // The control node's energy is not counted (mains-powered).
          counted_[i] = false;
          replicas_.push_back(std::make_unique<baselines::TrustedController>(
              *net_, rc, &meters_[i], cfg_.trusted_dedup));
        } else {
          replicas_.push_back(
              std::make_unique<baselines::TrustedBaselineReplica>(
                  *net_, rc, static_cast<NodeId>(cfg_.n), &meters_[i]));
        }
        break;
      }
    }
  }

  // Byzantine per-stream withholding: one outbound filter per scripted
  // replica (its rules evaluated against every outgoing message).
  {
    std::map<NodeId, std::vector<adversary::AdversarySpec::Withhold>> by_node;
    for (const auto& w : adv.withholds) by_node[w.node].push_back(w);
    for (auto& [node, rules] : by_node) {
      withhold_filters_.push_back(std::make_unique<adversary::WithholdFilter>(
          std::move(rules), sched_,
          sim::derive_seed(cfg_.seed, 0x3170000ull + node)));
      replicas_.at(node)->set_outbound_policy(withhold_filters_.back().get());
    }
  }
  // Byzantine checkpoint attacks: replica-level flags (forged broadcast
  // digests, withheld snapshot payloads).
  for (const auto& ca : adv.checkpoint_attacks) {
    replicas_.at(ca.node)->set_forge_checkpoint_digest(ca.forge_digest);
    replicas_.at(ca.node)->set_withhold_snapshots(ca.withhold_snapshots);
  }
  // Every faulted replica (Byzantine protocol mode, withhold filter,
  // crash schedule, or network-level script against it) may legitimately
  // commit a private fork nobody else saw — e.g. an equivocating or
  // withholding leader self-accepts proposals the cluster moved past.
  // It is excluded from correctness accounting, so it tolerates the
  // fork; honest replicas keep the hard conflicting-commit assertion.
  for (NodeId i = 0; i < total; ++i) {
    if (!correct_[i]) replicas_[i]->set_tolerate_fork(true);
  }

  // Execution apps + client nodes. Checkpointing snapshots the app, so
  // replicas get one whenever checkpoints are on, clients or not.
  if (cfg_.clients > 0 || cfg_.checkpoint_interval > 0) {
    for (auto& r : replicas_) {
      apps_.push_back(std::make_unique<smr::KvStore>());
      r->attach_app(apps_.back().get());
    }
  }
  if (cfg_.clients > 0) {
    for (std::size_t ci = 0; ci < cfg_.clients; ++ci) {
      client::ClientConfig cc;
      cc.id = static_cast<NodeId>(total + ci);
      cc.n = total;
      cc.f = cfg_.f;
      cc.keyring = keyring_;
      cc.cert_scheme = cfg_.cert_scheme;
      cc.agg = agg_;
      cc.workload = cfg_.workload;
      cc.seed = cfg_.seed + 7919 * (ci + 1);
      cc.retry_after = cfg_.client_retry;
      cc.submit = cfg_.client_submit;
      cc.leader_hints = cfg_.client_leader_hints;
      cc.profiler = &prof_;
      cc.pipeline = pipeline_.get();
      cc.tracer = cfg_.tracer;
      if (cc.submit.kind ==
              net::DisseminationPolicy::Kind::kTargetedSubset &&
          cc.submit.timeout <= 0) {
        // Submission round trip: request in, wait for the next round's
        // proposal, the 4Δ equivocation-free commit wait, reply out —
        // plus the client access hops. 10Δ covers it with slack, so a
        // failover indicates an unresponsive target rather than
        // ordinary ordering latency.
        cc.submit.timeout = 10 * (delta_ + 2 * cfg_.hop_delay);
      }
      clients_.push_back(
          std::make_unique<client::Client>(*net_, cc, &meters_[cc.id]));
    }
  }
  for (std::size_t bi = 0; bi < byz_clients; ++bi) {
    const NodeId cid = static_cast<NodeId>(total + cfg_.clients + bi);
    byz_clients_.push_back(std::make_unique<adversary::ByzantineClient>(
        *net_, cid, keyring_, adv.clients[bi],
        sim::derive_seed(cfg_.seed, 0xb120000ull + bi), &meters_[cid]));
  }

  // Late joiners: off the air (no reception, relay or energy) until
  // their delay elapses; started then (see start()).
  late_.assign(world, false);
  for (const ClusterConfig::LateStart& ls : cfg_.late_starts) {
    if (ls.node >= total) {
      throw std::invalid_argument("Cluster: late_starts names a non-replica");
    }
    late_.at(ls.node) = true;
    net_->set_node_online(ls.node, false);
    replicas_.at(ls.node)->set_online(false);
  }
}

void Cluster::install_speculation_hook() {
  net_->set_transmit_hook([this](BytesView frame) {
    // Runs on the sim thread, in scheduler event order, once per
    // transmit call (re-forwards included; the pipeline dedups by key).
    // Parse the flood frame header (origin u32, seq u64, dest u32,
    // flags u8, stream u8) and try the payload as an smr::Msg. Frames
    // that are not Msgs (or are malformed) are simply not speculated.
    smr::Msg m;
    try {
      Reader r(frame);
      r.u32();  // origin
      r.u64();  // seq
      r.u32();  // dest
      r.u8();   // flags
      r.u8();   // stream
      m = smr::Msg::decode(r.raw_view(r.remaining()));
    } catch (const SerdeError&) {
      return;
    }
    // Only outer-signature-verified types are worth speculating:
    // kRequest carries the client's inner ClientRequest signature (a
    // different preimage) and the outer kCheckpoint Msg is unsigned
    // (receivers verify the inner CheckpointMsg attestation instead).
    if (m.type == smr::MsgType::kRequest ||
        m.type == smr::MsgType::kCheckpoint || m.sig.empty()) {
      return;
    }
    // Under the aggregate scheme, certificate-bound types and kReply
    // carry 48-byte shares, not directory signatures — and a reply
    // share covers the acceptance preimage (client, req_id, result),
    // not the Msg preimage. Speculating the wrong check would poison
    // every receiver's pipeline join with a cached `false`.
    const bool aggregate =
        cfg_.cert_scheme == smr::CertScheme::kAggregate &&
        (smr::certificate_bound(m.type) ||
         m.type == smr::MsgType::kReply);
    Bytes preimage;
    if (aggregate && m.type == smr::MsgType::kReply) {
      const auto rep = smr::ClientReply::decode(m.data);
      if (!rep.has_value()) return;
      preimage = smr::acceptance_preimage(rep->client, rep->req_id,
                                          rep->result);
    } else {
      preimage = m.preimage();
    }
    std::string key = crypto::verify_key(m.author, preimage, m.sig);
    // The closure owns its inputs (it may run on a worker thread after
    // this frame is gone) and is pure: Keyring::verify and
    // AggKeyring::verify_share are const and charge nothing.
    // Energy/profiler accounting stays at the join.
    if (aggregate) {
      pipeline_->speculate(
          std::move(key),
          [agg = agg_, author = m.author, preimage = std::move(preimage),
           sig = std::move(m.sig)] {
            return agg->verify_share(author, preimage, sig);
          });
    } else {
      pipeline_->speculate(
          std::move(key),
          [kr = keyring_, author = m.author, preimage = std::move(preimage),
           sig = std::move(m.sig)] {
            return kr->verify(author, preimage, sig);
          });
    }
  });
}

protocol::EesmrReplica& Cluster::eesmr(NodeId id) {
  auto* r = dynamic_cast<protocol::EesmrReplica*>(replicas_.at(id).get());
  if (r == nullptr) throw std::logic_error("Cluster: not an EESMR replica");
  return *r;
}

void Cluster::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!late_[i]) replicas_[i]->start();
  }
  for (const ClusterConfig::LateStart& ls : cfg_.late_starts) {
    sched_.after(ls.delay, "control", [this, node = ls.node] {
      net_->set_node_online(node, true);
      replicas_[node]->set_online(true);
      replicas_[node]->start();
    });
  }
  // Crash/recover schedules (the late_starts generalization): the node
  // runs normally, drops off the air at crash_at, and — when scripted —
  // comes back at recover_at and catches up by chain sync or state
  // transfer.
  for (const adversary::AdversarySpec::CrashRecover& cr :
       cfg_.adversary.crashes) {
    sched_.at(std::max(cr.crash_at, sched_.now()), "control",
              [this, node = cr.node] {
      net_->set_node_online(node, false);
      replicas_[node]->set_online(false);
    });
    if (cr.recover_at > 0) {
      sched_.at(std::max(cr.recover_at, sched_.now()), "control",
                [this, node = cr.node] {
        net_->set_node_online(node, true);
        replicas_[node]->set_online(true);
      });
    }
  }
  // Membership reconfiguration schedule: at each event time the full
  // next-generation policy enters every ONLINE replica's mempool as a
  // tagged command; the leader proposes it like any request and the
  // flip happens at that block's commit boundary on every replica.
  {
    std::uint64_t next_gen = 0;
    for (ClusterConfig::MembershipEvent ev : cfg_.membership_events) {
      if (ev.policy.generation == 0) {
        ev.policy.generation = next_gen + 1;
      }
      next_gen = ev.policy.generation;
      sched_.at(std::max<sim::SimTime>(ev.at, sched_.now()), "control",
                [this, p = ev.policy] {
        const Bytes cmd = p.encode();
        for (auto& r : replicas_) {
          if (r->online()) r->mempool().submit({cmd});
        }
        if (cfg_.tracer != nullptr) {
          cfg_.tracer->instant(sched_.now(), -1, "membership",
                               "policy_injected",
                               {{"generation", exp::Json(p.generation)},
                                {"signers", exp::Json(p.signers.size())}});
        }
      });
    }
  }
  for (auto& c : clients_) c->start();
  for (auto& bc : byz_clients_) bc->start();
  // Adaptive chase-the-leader schedule: first victim at from_time (the
  // tick itself re-arms every period).
  if (cfg_.adversary.chase_leader.period > 0) {
    sched_.at(std::max(cfg_.adversary.chase_leader.from_time, sched_.now()),
              "adversary", [this] { chase_leader_tick(); });
  }
}

void Cluster::chase_leader_tick() {
  const adversary::AdversarySpec::ChaseLeader& cl = cfg_.adversary.chase_leader;
  const auto restore = [this] {
    if (chase_victim_ == kNoNode) return;
    net_->set_node_online(chase_victim_, true);
    replicas_[chase_victim_]->set_online(true);
    chase_victim_ = kNoNode;
  };
  if (cl.until_time != 0 && sched_.now() >= cl.until_time) {
    restore();
    return;
  }
  restore();
  // The leader the cluster is currently converging on: the highest view
  // any online replica reached, mapped through the shared rotation.
  std::uint64_t view = 0;
  for (const auto& r : replicas_) {
    if (r->online()) view = std::max(view, r->current_view());
  }
  const NodeId victim = static_cast<NodeId>(view % replicas_.size());
  net_->set_node_online(victim, false);
  replicas_[victim]->set_online(false);
  chase_victim_ = victim;
  if (cfg_.tracer != nullptr) {
    cfg_.tracer->instant(sched_.now(), static_cast<std::int64_t>(victim),
                         "fault", "chase_leader",
                         {{"view", exp::Json(view)}});
  }
  sched_.after(cl.period, "adversary", [this] { chase_leader_tick(); });
}

std::size_t Cluster::min_committed_correct() const {
  std::size_t best = SIZE_MAX;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (correct_[i] && counted_[i]) {
      best = std::min<std::size_t>(best, replicas_[i]->committed_blocks());
    }
  }
  return best == SIZE_MAX ? 0 : best;
}

void Cluster::tick_checkers() {
  std::uint64_t min_lwm = UINT64_MAX;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!correct_[i] || !counted_[i]) continue;
    safety_.observe(static_cast<NodeId>(i), replicas_[i]->log());
    min_lwm = std::min(min_lwm, replicas_[i]->low_water_mark());
  }
  if (min_lwm != UINT64_MAX && min_lwm > 0) safety_.prune_below(min_lwm);
  liveness_.sample(sched_.now(), min_committed_correct(), load_pending());
}

bool Cluster::load_pending() const {
  // Without a client layer the mempool's synthetic filler keeps every
  // block full — load is pending by construction, keeping the old
  // fixed-window stall semantics for protocol-only runs.
  if (clients_.empty() && byz_clients_.empty()) return true;
  for (const auto& c : clients_) {
    if (c->has_pending_load()) return true;
  }
  // A Byzantine client still inside its flood budget keeps the checker
  // armed: attack-conformance stall verdicts must cover the whole flood.
  for (const auto& bc : byz_clients_) {
    if (bc->budget_left()) return true;
  }
  return false;
}

RunResult Cluster::run_until_commits(std::size_t target_blocks,
                                     sim::Duration max_time) {
  start();
  const sim::SimTime deadline = sched_.now() + max_time;
  tick_checkers();
  while (sched_.now() < deadline &&
         min_committed_correct() < target_blocks && !sched_.empty()) {
    sched_.run_until(std::min<sim::SimTime>(
        deadline, sched_.now() + cfg_.hop_delay * 4));
    tick_checkers();
  }
  return snapshot();
}

RunResult Cluster::run_until_accepted(std::uint64_t target_requests,
                                      sim::Duration max_time) {
  start();
  const sim::SimTime deadline = sched_.now() + max_time;
  const auto accepted_total = [this] {
    std::uint64_t total = 0;
    for (const auto& c : clients_) total += c->accepted();
    return total;
  };
  tick_checkers();
  while (sched_.now() < deadline && accepted_total() < target_requests &&
         !sched_.empty()) {
    sched_.run_until(std::min<sim::SimTime>(
        deadline, sched_.now() + cfg_.hop_delay * 4));
    tick_checkers();
  }
  return snapshot();
}

RunResult Cluster::run_for(sim::Duration time) {
  start();
  const sim::SimTime deadline = sched_.now() + time;
  tick_checkers();
  while (sched_.now() < deadline) {
    sched_.run_until(std::min<sim::SimTime>(
        deadline, sched_.now() + cfg_.hop_delay * 4));
    tick_checkers();
  }
  return snapshot();
}

RunResult Cluster::snapshot() const {
  RunResult out;
  out.meters = meters_;
  out.correct = correct_;
  out.counted = counted_;
  for (const auto& r : replicas_) {
    out.logs.push_back(r->log());
    out.committed_blocks.push_back(r->committed_blocks());
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (correct_[i] && counted_[i]) {
      out.view_changes =
          std::max<std::uint64_t>(out.view_changes,
                                  replicas_[i]->current_view() - 1);
    }
  }
  for (const auto& rp : replicas_) {
    const smr::ReplicaBase& r = *rp;
    ReplicaFootprint fp;
    fp.retained_log = r.log().size();
    fp.store_blocks = r.store().size();
    fp.executed_entries = r.executed_entries();
    fp.mempool_pending = r.mempool().pending();
    fp.mempool_committed_keys = r.mempool().committed_keys();
    fp.flood_dedup_tail = r.flood_dedup_entries();
    fp.committed_blocks = r.committed_blocks();
    fp.low_water_mark = r.low_water_mark();
    fp.checkpoints_taken = r.checkpoints().taken();
    fp.stable_height = r.checkpoints().stable_height();
    fp.state_transfers = r.state_transfers();
    out.footprints.push_back(fp);
    out.requests_dropped += r.mempool().dropped();
    out.requests_rate_limited += r.requests_rejected();
    out.requests_forwarded += r.requests_forwarded();
    out.state_transfers += r.state_transfers();
    out.max_recovery_latency =
        std::max(out.max_recovery_latency, r.last_recovery_time());
  }
  out.transmissions = net_->transmissions();
  out.bytes_transmitted = net_->bytes_transmitted();
  out.end_time = sched_.now();
  for (const auto& c : clients_) {
    out.latency.merge(c->latencies());
    out.requests_submitted += c->submitted();
    out.requests_accepted += c->accepted();
    out.request_retransmissions += c->retransmissions();
    out.request_failovers += c->failovers();
    out.request_hints_applied += c->leader_hints_applied();
    out.acceptance_certs += c->acceptance_certs_folded();
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!correct_[i] || !counted_[i]) continue;
    out.membership_changes = std::max<std::uint64_t>(
        out.membership_changes, replicas_[i]->membership_changes());
    out.membership_generation = std::max<std::uint64_t>(
        out.membership_generation, replicas_[i]->membership_generation());
  }
  if (cfg_.protocol == Protocol::kTrustedBaseline) {
    const auto* ctl = dynamic_cast<const baselines::TrustedController*>(
        replicas_.at(cfg_.n).get());
    if (ctl != nullptr) {
      out.controller_dedup_saved = ctl->dedup_orderings_saved();
      out.controller_dedup_bytes_saved = ctl->dedup_bytes_saved();
    }
  }
  // Adversary verdicts & attack accounting (the checkers run on every
  // cluster; the fault counters only move when a spec scripted faults).
  out.safety_violations = safety_.violations();
  out.max_commit_stall = liveness_.max_stall(sched_.now());
  out.liveness_stall_bound = cfg_.adversary.stall_bound;
  if (injector_ != nullptr) {
    out.faults_dropped = injector_->dropped();
    out.faults_duplicated = injector_->duplicated();
    out.faults_reordered = injector_->reordered();
  }
  for (const auto& wf : withhold_filters_) {
    out.msgs_withheld += wf->withheld();
  }
  for (const auto& bc : byz_clients_) out.byz_requests_sent += bc->sent();
  // Profiler snapshot: replica/client counters accumulated in prof_,
  // plus the scheduler's per-kind fired-event counts gathered here (the
  // scheduler is the one component that does not hold a profiler ref).
  out.prof = prof_.snapshot();
  out.prof.sched_events = sched_.fired_by_kind();
  // Pipeline / zero-copy counters: gathered here like sched_events (the
  // pipeline and the network do not hold profiler refs). All fields are
  // functions of sim events only — identical at any --workers N.
  {
    prof::Snapshot::Pipeline pl;
    const crypto::PipelineStats& ps = pipeline_->stats();
    pl.speculated = ps.speculated;
    pl.join_hits = ps.join_hits;
    pl.join_misses = ps.join_misses;
    pl.wasted = ps.wasted;
    pl.batches = ps.batches;
    pl.batch_items = ps.batch_items;
    pl.batch_fallbacks = ps.batch_fallbacks;
    pl.bytes_copy_saved = net_->bytes_copy_saved();
    for (const auto& r : replicas_) pl.sig_cache_hits += r->sig_cache_hits();
    out.prof.pipeline = pl;
  }
  return out;
}

}  // namespace eesmr::harness
