# Empty dependencies file for bench_fig2a_kcast_reliability.
# This may be replaced when dependencies are built.
