#include "src/net/channel.hpp"

#include <algorithm>

namespace eesmr::net {

const char* policy_kind_name(DisseminationPolicy::Kind k) {
  switch (k) {
    case DisseminationPolicy::Kind::kDefault:
      return "default";
    case DisseminationPolicy::Kind::kFlood:
      return "flood";
    case DisseminationPolicy::Kind::kLocalKcast:
      return "local-kcast";
    case DisseminationPolicy::Kind::kRoutedUnicast:
      return "routed-unicast";
    case DisseminationPolicy::Kind::kTargetedSubset:
      return "targeted-subset";
  }
  return "?";
}

namespace {
/// Resolve kDefault and clamp the parameters into their valid ranges.
DisseminationPolicy normalized(DisseminationPolicy p) {
  if (p.kind == DisseminationPolicy::Kind::kDefault) {
    p.kind = DisseminationPolicy::Kind::kFlood;
  }
  if (p.subset_size == 0) p.subset_size = 1;
  if (p.backoff < 1.0) p.backoff = 1.0;
  return p;
}
}  // namespace

Channel::Channel(FloodRouter& router, energy::Stream stream,
                 DisseminationPolicy policy, std::vector<NodeId> targets)
    : router_(router),
      sched_(router.network().scheduler()),
      stream_(stream),
      policy_(normalized(policy)),
      targets_(std::move(targets)) {}

Channel::~Channel() {
  for (auto& [id, t] : inflight_) sched_.cancel(t.event);
}

void Channel::set_policy(DisseminationPolicy policy) {
  policy_ = normalized(policy);
}

void Channel::disseminate(BytesView payload) {
  switch (policy_.kind) {
    case DisseminationPolicy::Kind::kDefault:
    case DisseminationPolicy::Kind::kFlood:
      router_.broadcast(payload, stream_);
      return;
    case DisseminationPolicy::Kind::kLocalKcast:
      router_.broadcast_local(payload, stream_);
      return;
    case DisseminationPolicy::Kind::kRoutedUnicast:
      for (NodeId t : targets_) router_.send_to(t, payload, stream_);
      return;
    case DisseminationPolicy::Kind::kTargetedSubset: {
      if (targets_.empty()) return;
      const std::size_t k = std::min(policy_.subset_size, targets_.size());
      for (std::size_t i = 0; i < k; ++i) {
        router_.send_to(targets_[(cursor_ + i) % targets_.size()], payload,
                        stream_);
      }
      return;
    }
  }
}

void Channel::send_to(NodeId dest, BytesView payload) {
  router_.send_to(dest, payload, stream_);
}

void Channel::submit(std::uint64_t id, Bytes payload) {
  disseminate(payload);
  if (policy_.timeout <= 0) return;
  // Re-submission under the same id: cancel the pending timer BEFORE
  // the Tracked entry (and its event id) is overwritten.
  const auto prev = inflight_.find(id);
  if (prev != inflight_.end()) sched_.cancel(prev->second.event);
  auto [it, inserted] =
      inflight_.insert_or_assign(id, Tracked{std::move(payload),
                                             policy_.timeout,
                                             sim::kInvalidEvent});
  (void)inserted;
  arm(id, it->second);
}

void Channel::arm(std::uint64_t id, Tracked& t) {
  t.event =
      sched_.after(t.timeout, "channel_timeout", [this, id] { on_timeout(id); });
}

void Channel::on_timeout(std::uint64_t id) {
  const auto it = inflight_.find(id);
  if (it == inflight_.end()) return;  // completed meanwhile
  Tracked& t = it->second;
  if (policy_.kind == DisseminationPolicy::Kind::kTargetedSubset &&
      !targets_.empty()) {
    // Failover: rotate past the whole unanswered subset. The cursor is
    // shared across submissions, so later requests start at the targets
    // that last responded instead of re-probing a dead one.
    cursor_ = (cursor_ + std::min(policy_.subset_size, targets_.size())) %
              targets_.size();
    ++failovers_;
  }
  ++resends_;
  disseminate(t.wire);
  const double next =
      static_cast<double>(t.timeout) * std::max(1.0, policy_.backoff);
  t.timeout = static_cast<sim::Duration>(next);
  if (policy_.max_timeout > 0) {
    t.timeout = std::min(t.timeout, policy_.max_timeout);
  }
  arm(id, t);
}

void Channel::prefer(NodeId target) {
  if (policy_.kind != DisseminationPolicy::Kind::kTargetedSubset) return;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i] == target) {
      if (cursor_ != i) {
        cursor_ = i;
        ++hints_;
      }
      return;
    }
  }
}

void Channel::complete(std::uint64_t id) {
  const auto it = inflight_.find(id);
  if (it == inflight_.end()) return;
  sched_.cancel(it->second.event);
  inflight_.erase(it);
}

}  // namespace eesmr::net
