// Structured event/span layer over sim::Trace, exported as Chrome
// trace-event JSON (openable in Perfetto / chrome://tracing).
//
// The commit path (propose -> vote -> certify -> commit), view changes,
// checkpoints, state transfers and injected faults emit typed events
// here. Each Cluster opens one *epoch* (one Chrome "process"); nodes map
// to Chrome threads; block and view-change lifetimes are async spans
// keyed by height / view number. Every event is simultaneously mirrored
// through the owned sim::Trace as a human-readable line, so attaching
// Trace::stderr_sink() gives a live textual feed of the same stream.
//
// SimTime is already integer microseconds — exactly Chrome's `ts` unit —
// so timestamps pass through untouched.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/exp/json.hpp"
#include "src/sim/time.hpp"
#include "src/sim/trace.hpp"

namespace eesmr::obs {

/// One Chrome trace event. `ph` is the Chrome phase: 'i' instant,
/// 'b'/'n'/'e' async begin/instant/end, 'X' complete (with `dur`),
/// 'C' counter, 's'/'t'/'f' flow start/step/end.
struct TraceEvent {
  sim::SimTime ts = 0;
  std::int64_t node = -1;  ///< Chrome tid; -1 for epoch-scoped events
  std::uint32_t epoch = 0;
  char ph = 'i';
  std::uint64_t id = 0;  ///< async span / flow id (block height, view, request)
  sim::SimTime dur = 0;  ///< duration, 'X' events only
  std::string name;
  const char* cat = "sim";
  std::vector<std::pair<std::string, exp::Json>> args;
};

class Tracer {
 public:
  /// Start a new epoch (one Cluster run = one Chrome process). Returns
  /// the epoch index used for subsequent events. Epoch 0 exists by
  /// default with an empty label.
  std::uint32_t open_epoch(const std::string& label);

  using Args = std::vector<std::pair<std::string, exp::Json>>;

  void instant(sim::SimTime ts, std::int64_t node, const char* cat,
               std::string name, Args args = {});
  void async_begin(sim::SimTime ts, std::int64_t node, const char* cat,
                   std::string name, std::uint64_t id, Args args = {});
  void async_instant(sim::SimTime ts, std::int64_t node, const char* cat,
                     std::string name, std::uint64_t id, Args args = {});
  void async_end(sim::SimTime ts, std::int64_t node, const char* cat,
                 std::string name, std::uint64_t id, Args args = {});

  /// Complete event ('X'): a slice [ts, ts+dur) on one thread. Flow
  /// arrows need enclosing slices to attach to, so lifecycle points of a
  /// traced request emit a short complete event as the anchor.
  void complete(sim::SimTime ts, std::int64_t node, const char* cat,
                std::string name, sim::SimTime dur, Args args = {});

  /// Counter event ('C'): each arg becomes one series of a counter track
  /// named `name` (used for host-timing tracks next to the sim spans).
  void counter(sim::SimTime ts, std::int64_t node, const char* cat,
               std::string name, Args args);

  /// Flow events ('s'/'t'/'f'): arrows stitching one causal chain (one
  /// sampled client request) across threads. All three share {cat, id};
  /// each binds to the enclosing slice at (node, ts).
  void flow_begin(sim::SimTime ts, std::int64_t node, const char* cat,
                  std::string name, std::uint64_t id, Args args = {});
  void flow_step(sim::SimTime ts, std::int64_t node, const char* cat,
                 std::string name, std::uint64_t id, Args args = {});
  void flow_end(sim::SimTime ts, std::int64_t node, const char* cat,
                std::string name, std::uint64_t id, Args args = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear();

  /// The mirroring text trace; attach sim::Trace::stderr_sink() (or any
  /// sink) to see events as lines while they happen.
  [[nodiscard]] sim::Trace& text_trace() { return trace_; }

  /// Append this tracer's events to a Chrome traceEvents array. Each
  /// epoch becomes one Chrome process starting at pid `first_pid`, named
  /// "<prefix><epoch label>" via process_name metadata. Returns the next
  /// free pid.
  int append_chrome(exp::Json& trace_events, int first_pid,
                    const std::string& prefix = "") const;

  /// Wrap a traceEvents array into a full Chrome trace document.
  static exp::Json chrome_document(exp::Json trace_events);

 private:
  void push(TraceEvent ev);

  std::vector<TraceEvent> events_;
  std::vector<std::string> epoch_labels_{""};
  std::uint32_t epoch_ = 0;
  bool epoch0_claimed_ = false;
  sim::Trace trace_;
};

}  // namespace eesmr::obs
