// Run-level measurements: the quantities the paper's figures plot.
#pragma once

#include <cstdint>
#include <vector>

#include "src/client/stats.hpp"
#include "src/energy/meter.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/prof.hpp"
#include "src/sim/time.hpp"
#include "src/smr/block.hpp"

namespace eesmr::harness {

/// Per-replica memory/checkpoint footprint (the quantities the bounded-
/// memory acceptance criterion compares: with checkpointing at interval
/// k, retained_log and the dedup sets stay O(k); without, they grow with
/// the run).
struct ReplicaFootprint {
  std::size_t retained_log = 0;           ///< log() blocks kept
  std::size_t store_blocks = 0;           ///< BlockStore entries
  std::size_t executed_entries = 0;       ///< exactly-once reply cache
  std::size_t mempool_pending = 0;
  std::size_t mempool_committed_keys = 0;
  std::size_t flood_dedup_tail = 0;       ///< router seen-window tails
  std::uint64_t committed_blocks = 0;     ///< total ever committed
  std::uint64_t low_water_mark = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t stable_height = 0;
  std::uint64_t state_transfers = 0;

  [[nodiscard]] std::size_t dedup_entries() const {
    return executed_entries + mempool_committed_keys;
  }
};

struct RunResult {
  std::vector<energy::Meter> meters;            ///< per node
  std::vector<std::vector<smr::Block>> logs;    ///< retained, per node
  /// Total blocks ever committed per node (>= logs[i].size(); the
  /// difference is what checkpoint GC truncated). Empty when a RunResult
  /// is assembled by hand — accessors then fall back to logs sizes.
  std::vector<std::uint64_t> committed_blocks;
  std::vector<bool> correct;                    ///< honest && counted
  std::vector<bool> counted;                    ///< counted in energy sums
  std::uint64_t view_changes = 0;               ///< max over correct nodes
  std::uint64_t transmissions = 0;
  std::uint64_t bytes_transmitted = 0;
  sim::SimTime end_time = 0;

  // Client/workload measurements (empty when no clients configured).
  client::LatencyHistogram latency;  ///< submit→accept, all clients
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_accepted = 0;
  std::uint64_t request_retransmissions = 0;
  /// Admission-control sheds: mempool-capacity drops and per-client
  /// pending-cap rejections, summed over replicas.
  std::uint64_t requests_dropped = 0;
  std::uint64_t requests_rate_limited = 0;
  /// TargetedSubset submission: client-side subset rotations and
  /// replica-side request forwards to the leader.
  std::uint64_t request_failovers = 0;
  std::uint64_t requests_forwarded = 0;
  /// Reply-metadata leader hints that re-aimed a client's subset cursor.
  std::uint64_t request_hints_applied = 0;
  /// Trusted baseline: duplicate request orderings the controller dedup
  /// skipped, and the command bytes they would have re-shipped downlink.
  std::uint64_t controller_dedup_saved = 0;
  std::uint64_t controller_dedup_bytes_saved = 0;

  // Checkpoint / state-transfer measurements.
  std::vector<ReplicaFootprint> footprints;  ///< per protocol node
  std::uint64_t state_transfers = 0;         ///< completed catch-ups
  /// Slowest request→restore duration among completed state transfers.
  sim::Duration max_recovery_latency = 0;

  // Adversary / fault-injection measurements (src/adversary). The
  // always-on checkers fill the verdicts on every run, attacked or not.
  /// Conflicting honest commits detected by the in-run SafetyChecker.
  std::uint64_t safety_violations = 0;
  /// Longest stall of the honest commit frontier during the run.
  sim::Duration max_commit_stall = 0;
  /// Configured liveness bound (AdversarySpec::stall_bound; 0 = observe
  /// only, liveness_ok() then never fails).
  sim::Duration liveness_stall_bound = 0;
  /// Network-level fault injections actually applied.
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
  /// Outgoing messages suppressed by Byzantine withhold filters.
  std::uint64_t msgs_withheld = 0;
  /// Requests flooded by Byzantine clients.
  std::uint64_t byz_requests_sent = 0;

  // Membership / certificate-scheme measurements (all zero on runs
  // without policy events or the aggregate scheme; exported to the
  // registry and the JSON record only when nonzero, so legacy baselines
  // keep their historical key set).
  /// Committed policy blocks applied (max over counted correct nodes).
  std::uint64_t membership_changes = 0;
  /// Highest active membership generation over counted correct nodes.
  std::uint64_t membership_generation = 0;
  /// O(1) acceptance certificates folded by clients (aggregate scheme).
  std::uint64_t acceptance_certs = 0;

  /// Deterministic profiler snapshot (src/obs/prof.hpp): scheduler
  /// event-kind counts, per-site crypto op counts, codec byte counts,
  /// early drops, sampled-request energy attribution, and (opt-in,
  /// non-deterministic) host wall-clock scopes. Exported into the
  /// registry as the `eesmr_prof_*` families when non-empty.
  prof::Snapshot prof;

  /// Liveness verdict: the honest commit frontier never stalled past the
  /// configured bound (vacuously true when no bound was set).
  [[nodiscard]] bool liveness_ok() const {
    return liveness_stall_bound == 0 ||
           max_commit_stall <= liveness_stall_bound;
  }
  /// Energy spent by adversarial nodes (faulty replicas + Byzantine
  /// clients) — what the attack cost the attacker.
  [[nodiscard]] double adversary_energy_mj() const;

  /// Safety (Definition 2.1): for every height, all correct nodes that
  /// committed (and still retain) a block at that height committed the
  /// same block. Height-keyed, so logs truncated at different stable
  /// checkpoints compare correctly.
  [[nodiscard]] bool safety_ok() const;

  /// Blocks ever committed by node `id` (committed_blocks when recorded,
  /// otherwise the retained log length).
  [[nodiscard]] std::uint64_t committed_at(NodeId id) const;

  /// Minimum committed-block count over correct nodes.
  [[nodiscard]] std::size_t min_committed() const;
  [[nodiscard]] std::size_t max_committed() const;

  /// Largest retained log / dedup-set size over correct protocol nodes
  /// (the memory-bound headline numbers).
  [[nodiscard]] std::size_t max_retained_log() const;
  [[nodiscard]] std::size_t max_dedup_entries() const;

  /// Accepted client requests per simulated second (goodput).
  [[nodiscard]] double accepted_per_sec() const;

  /// Per-stream (channel-class) radio traffic/energy, summed over
  /// counted correct protocol nodes — where each replica Joule went.
  [[nodiscard]] energy::StreamStats stream_totals(energy::Stream s) const;
  /// Same, over every correct node including clients: the full cost of
  /// a stream (e.g. request submission energy paid at the client radio
  /// plus replica relaying).
  [[nodiscard]] energy::StreamStats stream_totals_all(energy::Stream s) const;

  /// Total energy over counted correct nodes (mJ).
  [[nodiscard]] double total_energy_mj() const;
  /// Total energy / min committed blocks — the paper's "energy per SMR".
  [[nodiscard]] double energy_per_block_mj() const;
  [[nodiscard]] double node_energy_mj(NodeId id) const;
  /// Per-node energy / committed blocks of that node.
  [[nodiscard]] double node_energy_per_block_mj(NodeId id) const;

  /// Register every measurement of this run into `reg` under the
  /// canonical `eesmr_*` metric families, `base` labels prepended to
  /// every sample: the flat `eesmr_run_*` families (one per RunSummary
  /// field), the request-latency histogram, per-node gauges (label
  /// `node`), per-stream radio stats (labels `stream`, `scope`), and
  /// per-category energy/ops totals (label `category`). This snapshot is
  /// the single source the summary and BENCH_*.json records derive from.
  void to_registry(obs::Registry& reg, const obs::Labels& base = {}) const;

  /// Flatten into the serializable summary record below — derived from a
  /// registry snapshot (to_registry + summary_from_registry), not
  /// plumbed field by field.
  [[nodiscard]] struct RunSummary summarize() const;
};

/// Read a RunSummary back out of a registry populated by
/// RunResult::to_registry with the same `base` labels. Throws
/// std::out_of_range when a run-level family is missing.
[[nodiscard]] struct RunSummary summary_from_registry(
    const obs::Registry& reg, const obs::Labels& base = {});

/// The flat, serialization-ready digest of a RunResult: every scalar the
/// paper's figures plot, with times in milliseconds/seconds. This is the
/// record the experiment engine writes into BENCH_*.json (alongside the
/// per-stream breakdown, which keeps its own structure).
struct RunSummary {
  std::size_t nodes = 0;  ///< meters (protocol nodes + clients)
  /// Final-log cross-check AND zero in-run SafetyChecker violations.
  bool safety_ok = true;
  std::uint64_t min_committed = 0;
  std::uint64_t max_committed = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t bytes_transmitted = 0;
  double end_time_s = 0;

  double total_energy_mj = 0;
  double energy_per_block_mj = 0;

  // Client / workload.
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_accepted = 0;
  std::uint64_t request_retransmissions = 0;
  std::uint64_t requests_dropped = 0;
  std::uint64_t requests_rate_limited = 0;
  std::uint64_t request_failovers = 0;
  std::uint64_t requests_forwarded = 0;
  std::uint64_t request_hints_applied = 0;
  std::uint64_t controller_dedup_saved = 0;
  std::uint64_t controller_dedup_bytes_saved = 0;
  double accepted_per_sec = 0;
  std::uint64_t latency_samples = 0;
  double latency_p50_ms = 0;
  double latency_p90_ms = 0;
  double latency_p99_ms = 0;
  double latency_mean_ms = 0;

  // Checkpoint / memory.
  std::uint64_t state_transfers = 0;
  double max_recovery_ms = 0;
  std::size_t max_retained_log = 0;
  std::size_t max_dedup_entries = 0;
  std::size_t max_store_blocks = 0;       ///< over counted correct nodes
  std::uint64_t max_checkpoints_taken = 0;

  // Adversary / fault injection.
  std::uint64_t safety_violations = 0;
  bool liveness_ok = true;
  double max_commit_stall_ms = 0;
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
  std::uint64_t msgs_withheld = 0;
  std::uint64_t byz_requests_sent = 0;
  double adversary_energy_mj = 0;

  // Membership / certificate scheme (see RunResult; zero when unused).
  std::uint64_t membership_changes = 0;
  std::uint64_t membership_generation = 0;
  std::uint64_t acceptance_certs = 0;
};

}  // namespace eesmr::harness
