file(REMOVE_RECURSE
  "CMakeFiles/bigint_test.dir/tests/bigint_test.cpp.o"
  "CMakeFiles/bigint_test.dir/tests/bigint_test.cpp.o.d"
  "bigint_test"
  "bigint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
