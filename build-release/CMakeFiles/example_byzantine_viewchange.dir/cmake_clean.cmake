file(REMOVE_RECURSE
  "CMakeFiles/example_byzantine_viewchange.dir/examples/byzantine_viewchange.cpp.o"
  "CMakeFiles/example_byzantine_viewchange.dir/examples/byzantine_viewchange.cpp.o.d"
  "example_byzantine_viewchange"
  "example_byzantine_viewchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_byzantine_viewchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
