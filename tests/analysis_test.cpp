#include "src/energy/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace eesmr::energy {
namespace {

SystemParams cps_params(std::size_t n, std::size_t f) {
  SystemParams x;
  x.n = n;
  x.f = f;
  x.m = 256;
  x.k = f + 1;
  x.comm = CommMode::kKcastRing;
  x.node_medium = Medium::kBle;
  x.scheme = crypto::SchemeId::kRsa1024;
  return x;
}

TEST(Psi, AllModelsPositive) {
  const SystemParams x = cps_params(10, 4);
  for (const PsiBreakdown psi :
       {psi_eesmr(x), psi_sync_hotstuff(x), psi_optsync(x)}) {
    EXPECT_GT(psi.best, 0);
    EXPECT_GT(psi.view_change, 0);
    EXPECT_GT(psi.worst(), psi.best);
  }
  EXPECT_GT(psi_trusted_baseline(x), 0);
}

TEST(Psi, EesmrBeatsSyncHotStuffInSteadyState) {
  // The headline claim: EESMR's steady state is cheaper for every CPS
  // configuration the paper evaluates (§5.7 reports 2.85x at n = 13).
  for (std::size_t n : {7u, 10u, 13u}) {
    const SystemParams x = cps_params(n, (n - 1) / 2);
    EXPECT_LT(psi_eesmr(x).best, psi_sync_hotstuff(x).best) << "n=" << n;
  }
}

TEST(Psi, EesmrViewChangeCostlierThanSyncHotStuff) {
  // The trade-off: EESMR pays more during view changes (extra round +
  // commit-certificate construction); paper reports ~2x at n = 13.
  const SystemParams x = cps_params(13, 6);
  EXPECT_GT(psi_eesmr(x).view_change, psi_sync_hotstuff(x).view_change);
}

TEST(Psi, SteadyStateRatioNearPaper) {
  // §5.7: Sync HotStuff is 2.85x more energy-hungry when the leader is
  // correct, and EESMR is ~2.05x costlier during a view change (n = 13,
  // k = f + 1 = 7). Accept the right ballpark, not the exact testbed
  // number: ratio in [1.5, 5] steady, [1.2, 4] for the VC.
  const SystemParams x = cps_params(13, 6);
  const double steady_ratio = psi_sync_hotstuff(x).best / psi_eesmr(x).best;
  EXPECT_GT(steady_ratio, 1.5);
  EXPECT_LT(steady_ratio, 5.0);
  const double vc_ratio =
      psi_eesmr(x).view_change / psi_sync_hotstuff(x).view_change;
  EXPECT_GT(vc_ratio, 1.2);
  EXPECT_LT(vc_ratio, 4.0);
}

TEST(Psi, OptSyncCostlierThanSyncHotStuff) {
  // OptSync's 3n/4+1 quorums verify more signatures (§6 related work).
  const SystemParams x = cps_params(12, 5);
  EXPECT_GT(psi_optsync(x).best, psi_sync_hotstuff(x).best);
}

TEST(Psi, EesmrBestCaseIndependentOfNWithFixedK) {
  // §5.6 "the energy cost of EESMR is independent of n in the best case
  // ... only depends on k" — per-node energy, with the k-cast transport.
  SystemParams x1 = cps_params(8, 2);
  SystemParams x2 = cps_params(14, 2);
  x1.k = x2.k = 3;
  const double per_node1 = psi_eesmr(x1).best / static_cast<double>(x1.n);
  const double per_node2 = psi_eesmr(x2).best / static_cast<double>(x2.n);
  EXPECT_NEAR(per_node1, per_node2, per_node1 * 0.05);
}

TEST(Psi, SyncHotStuffGrowsWithF) {
  // Certificates of size f+1 make Sync HotStuff's steady state grow
  // with f even at fixed k.
  SystemParams a = cps_params(13, 2);
  SystemParams b = cps_params(13, 6);
  a.k = b.k = 3;
  EXPECT_GT(psi_sync_hotstuff(b).best, psi_sync_hotstuff(a).best);
}

TEST(Psi, EesmrScalesLinearlyWithK) {
  // Fig 2c: node energy grows linearly in k (k incoming edges).
  SystemParams x = cps_params(15, 7);
  std::vector<double> per_k;
  for (std::size_t k = 2; k <= 7; ++k) {
    x.k = k;
    per_k.push_back(psi_eesmr(x).best);
  }
  // Increments should be roughly constant (linear growth).
  const double inc0 = per_k[1] - per_k[0];
  for (std::size_t i = 2; i < per_k.size(); ++i) {
    const double inc = per_k[i] - per_k[i - 1];
    EXPECT_GT(inc, 0);
    EXPECT_NEAR(inc, inc0, inc0 * 0.6) << "k step " << i;
  }
}

// -- Decision machinery ---------------------------------------------------------

TEST(Analysis, MaxViewChangeRatioBasics) {
  PsiBreakdown cheap_steady{100, 400};
  PsiBreakdown star{200, 300};
  // gain = 100, loss = 100 -> nu_f <= 1.
  EXPECT_DOUBLE_EQ(max_view_change_ratio(cheap_steady, star), 1.0);

  PsiBreakdown tiny_gain{190, 500};
  // gain = 10, loss = 200 -> 0.05.
  EXPECT_NEAR(max_view_change_ratio(tiny_gain, star), 0.05, 1e-12);

  PsiBreakdown dominated{300, 400};
  EXPECT_DOUBLE_EQ(max_view_change_ratio(dominated, star), 0.0);

  PsiBreakdown dominator{100, 200};
  EXPECT_TRUE(std::isinf(max_view_change_ratio(dominator, star)));
}

TEST(Analysis, MinBlocksToAmortize) {
  PsiBreakdown psi{100, 500};
  PsiBreakdown star{150, 300};
  // Each view change loses 200, each block gains 50: N >= 4V.
  EXPECT_DOUBLE_EQ(min_blocks_to_amortize(psi, star, 1), 4.0);
  EXPECT_DOUBLE_EQ(min_blocks_to_amortize(psi, star, 5), 20.0);
  PsiBreakdown no_gain{200, 100};
  EXPECT_TRUE(std::isinf(min_blocks_to_amortize(no_gain, star, 1)));
}

TEST(Analysis, EnergyFaultBoundEB) {
  // f_e <= (psi_BL - psi_B) / (psi_B + psi_V).
  PsiBreakdown eesmr{100, 300};
  EXPECT_DOUBLE_EQ(energy_fault_bound(900, eesmr), 2.0);
  EXPECT_LT(energy_fault_bound(50, eesmr), 0);  // baseline already cheaper
}

TEST(Analysis, EesmrToleratesEnergyFaultsAgainstBaseline) {
  // With a moderate k and a payload large enough to amortize the BLE
  // redundancy overhead, the k-cast steady state undercuts the 4G
  // baseline, so EESMR tolerates energy faults (f_e > 0). The margin
  // erodes as k grows (receive scanning scales with k, Fig 2c).
  SystemParams x = cps_params(10, 2);  // k = f + 1 = 3
  x.m = 1024;
  x.control_medium = Medium::k4gLte;
  const double fe =
      energy_fault_bound(psi_trusted_baseline(x), psi_eesmr(x));
  EXPECT_GT(fe, 0);
  // The bound shrinks as k grows.
  SystemParams x2 = cps_params(10, 4);  // k = 5
  x2.m = 1024;
  const double fe2 =
      energy_fault_bound(psi_trusted_baseline(x2), psi_eesmr(x2));
  EXPECT_LT(fe2, fe);
}

// -- Fig 1 feasible region -------------------------------------------------------

TEST(Analysis, FeasibleRegionShape) {
  SystemParams base;
  base.comm = CommMode::kUnicastFullMesh;
  base.node_medium = Medium::kWifi;
  base.control_medium = Medium::k4gLte;
  base.scheme = crypto::SchemeId::kRsa1024;
  const auto grid =
      feasible_region({4, 6, 8, 12, 16, 24, 32}, {256, 1024, 4096}, base);
  ASSERT_EQ(grid.size(), 7u * 3u);

  // EESMR (n-1 WiFi exchanges per node) loses to the 4G baseline once n
  // grows; it must win somewhere at small n and lose at large n.
  bool eesmr_wins_somewhere = false, baseline_wins_somewhere = false;
  for (const auto& pt : grid) {
    if (pt.diff_mj < 0) eesmr_wins_somewhere = true;
    if (pt.diff_mj > 0) baseline_wins_somewhere = true;
  }
  EXPECT_TRUE(eesmr_wins_somewhere);
  EXPECT_TRUE(baseline_wins_somewhere);

  // Monotone in n at fixed m: larger systems favor the baseline.
  for (std::size_t mi = 0; mi < 3; ++mi) {
    for (std::size_t ni = 1; ni < 7; ++ni) {
      const auto& prev = grid[(ni - 1) * 3 + mi];
      const auto& cur = grid[ni * 3 + mi];
      EXPECT_GT(cur.diff_mj, prev.diff_mj);
    }
  }
}

}  // namespace
}  // namespace eesmr::energy
