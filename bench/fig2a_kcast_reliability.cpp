// Figure 2a: failure rate of BLE k-casts vs energy spent (redundancy),
// for k = 1, 3, 7 — sender and receiver energies.
//
// Two columns per point: the closed-form model and a Monte-Carlo run of
// 10,000 transmitted packets (the paper's batch size) through the
// simulated lossy advertisement channel. Each grid point draws from its
// own derived-seed Rng, so the Monte-Carlo column is reproducible and
// independent of worker-thread scheduling.
#include <vector>

#include "src/energy/cost_model.hpp"
#include "src/exp/experiment.hpp"
#include "src/sim/rng.hpp"

using namespace eesmr;
using namespace eesmr::energy;

namespace {

/// Monte-Carlo failure fraction for `packets` single-packet k-casts.
double monte_carlo_failure(std::size_t k, std::size_t redundancy,
                           int packets, sim::Rng& rng) {
  int failures = 0;
  for (int p = 0; p < packets; ++p) {
    bool all_received = true;
    for (std::size_t r = 0; r < k; ++r) {
      bool got = false;
      for (std::size_t t = 0; t < redundancy; ++t) {
        if (!rng.chance(kBleAdvLossProb)) {
          got = true;
          break;
        }
      }
      if (!got) {
        all_received = false;
        break;
      }
    }
    failures += all_received ? 0 : 1;
  }
  return static_cast<double>(failures) / packets;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("fig2a_kcast_reliability",
                     "Fig. 2a (§5.4, 10,000-packet batches, 25-byte payload)",
                     argc, argv, /*default_seed=*/0xf2a);

  const std::vector<std::size_t> ks = {1, 3, 7};
  std::vector<std::size_t> reds = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  if (ex.smoke()) reds = {1, 2, 4, 8};
  const int packets = ex.smoke() ? 1000 : 10000;

  exp::Grid grid;
  grid.axis_of("k", ks);
  grid.axis_of("redundancy", reds);

  exp::Report& rep = ex.run("reliability", grid,
                            [&](const exp::RunContext& c) {
    const std::size_t k = ks[c.at("k")];
    const std::size_t red = reds[c.at("redundancy")];
    sim::Rng rng(c.seed);
    exp::MetricRow row;
    row.set("send_mj", kcast_send_energy_mj(25, red));
    row.set("recv_mj", kcast_recv_energy_mj(25, red));
    row.set("model_fail_pct",
            (1.0 - kcast_success_probability(25, k, red)) * 100.0);
    row.set("mc_fail_pct",
            monte_carlo_failure(k, red, packets, rng) * 100.0);
    return row;
  });
  rep.print_table(5);

  // The paper's calibration point: 99.99 % reliability at k = 7.
  const std::size_t r9999 = kcast_redundancy_for(25, 7, 0.9999);
  exp::Report calib;
  calib.name = "calibration_k7_9999";
  exp::MetricRow crow;
  crow.set("redundancy", r9999);
  crow.set("send_mj", kcast_send_energy_mj(25, r9999));
  crow.set("recv_mj", kcast_recv_energy_mj(25, r9999));
  calib.rows.push_back(std::move(crow));
  ex.add_section(std::move(calib)).print_table(2);

  ex.note("expected shape: failure decays exponentially with spent energy; "
          "larger k fails more at equal energy (paper: 'failure rates "
          "exponentially decrease... probability of a transmission failure "
          "increases with the value of k'). The paper's calibration point "
          "is 5.3 mJ / 9.98 mJ at k = 7.");
  return ex.finish();
}
