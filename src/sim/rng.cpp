#include "src/sim/rng.hpp"

namespace eesmr::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() {
  Rng child(0);
  for (auto& s : child.s_) s = next();
  return child;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Two splitmix64 steps over base, then mix the stream in and step
  // twice more: nearby (base, stream) pairs land far apart, and
  // derive_seed(b, 0) != b so a run never aliases its own base seed.
  std::uint64_t x = base;
  (void)splitmix64(x);
  std::uint64_t h = splitmix64(x);
  x = h ^ (stream + 0x9E3779B97f4A7C15ull);
  (void)splitmix64(x);
  return splitmix64(x);
}

}  // namespace eesmr::sim
