// Bounded-synchronous message fabric over a hypergraph.
//
// One transmit() by a node sends a frame on every outgoing hyper-edge.
// The adversary controls per-delivery delays through a DelayPolicy, but
// can never exceed the per-hop bound (the Δ assumption). Every
// transmission charges the sender's and receivers' energy meters using
// the calibrated medium cost models.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/ids.hpp"
#include "src/energy/cost_model.hpp"
#include "src/energy/meter.hpp"
#include "src/net/hypergraph.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/scheduler.hpp"

namespace eesmr::net {

/// Receiver interface implemented by the flood router (or any node shim).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  /// `link_sender` is the physical transmitter of the frame (not
  /// necessarily the originator of the protocol message). The frame is
  /// a refcounted immutable buffer: a sink that re-forwards keeps the
  /// refcount instead of copying.
  virtual void on_packet(NodeId link_sender, const SharedBytes& frame) = 0;
};

/// Chooses the delivery delay of each (edge, receiver, frame). A correct
/// implementation must return a value in [1, hop_bound]; the network
/// clamps to this range to preserve bounded synchrony.
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;
  virtual sim::Duration delay(NodeId from, NodeId to, std::size_t bytes) = 0;
};

/// Uniform random delay in [lo, hi] — the "honest" network.
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(sim::Rng rng, sim::Duration lo, sim::Duration hi)
      : rng_(rng), lo_(lo), hi_(hi) {}
  sim::Duration delay(NodeId, NodeId, std::size_t) override {
    return rng_.range(lo_, hi_);
  }

 private:
  sim::Rng rng_;
  sim::Duration lo_, hi_;
};

/// Every delivery takes exactly the hop bound — the worst adversary
/// permitted by bounded synchrony.
class MaxDelay final : public DelayPolicy {
 public:
  explicit MaxDelay(sim::Duration hop_bound) : bound_(hop_bound) {}
  sim::Duration delay(NodeId, NodeId, std::size_t) override { return bound_; }

 private:
  sim::Duration bound_;
};

/// Per-delivery fault verdict chosen by an installed FaultInjector. A
/// dropped frame is modeled as corrupted after reception (the receiver's
/// radio listened, so its reception energy is still charged); duplicates
/// are stack-level re-deliveries and charge no extra energy. extra_delay
/// is deliberately NOT clamped to the hop bound — a fault schedule may
/// exceed it to violate bounded synchrony and stress liveness.
struct FaultVerdict {
  bool drop = false;
  std::uint32_t duplicates = 0;   ///< extra copies delivered
  sim::Duration extra_delay = 0;  ///< added on top of the drawn hop delay
};

/// Scripted network-level fault injection (src/adversary): consulted once
/// per (transmission, receiver) before the delivery is scheduled.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultVerdict on_delivery(NodeId from, NodeId to,
                                   energy::Stream stream,
                                   std::size_t bytes) = 0;
};

struct TransportConfig {
  energy::Medium medium = energy::Medium::kBle;
  /// Max per-hop delivery delay (the edge-level Δ component).
  sim::Duration hop_bound = sim::milliseconds(10);
  /// Reliability target for BLE advertisement k-casts (sets redundancy).
  double kcast_reliability = 0.9999;
};

class Network {
 public:
  /// `meters` may be nullptr (no energy accounting); otherwise must hold
  /// one meter per node and outlive the network. `relay` marks which
  /// nodes forward routed frames (empty = all). A non-relay node is a
  /// leaf (e.g. a client): routed paths never traverse it as an
  /// intermediate hop, so attaching well-connected leaves cannot
  /// shortcut the core topology.
  Network(sim::Scheduler& sched, Hypergraph graph, TransportConfig config,
          std::vector<energy::Meter>* meters,
          std::vector<bool> relay = {});

  void attach(NodeId node, PacketSink* sink);
  void set_delay_policy(std::unique_ptr<DelayPolicy> policy);
  /// Install (or clear, with nullptr) a fault injector. Not owned; must
  /// outlive the network while installed.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Take a node off the air (crashed / not yet spawned) or bring it
  /// back. While offline the node neither transmits, receives, relays,
  /// nor pays radio energy; frames already in flight to it are dropped
  /// at delivery time. Routing distances are unchanged — an offline
  /// relay simply loses the frames it would have forwarded, exactly like
  /// a crashed node under the flood assumption.
  void set_node_online(NodeId node, bool online);
  [[nodiscard]] bool node_online(NodeId node) const {
    return online_.at(node);
  }

  /// Transmit `frame` on every outgoing hyper-edge of `from` that has
  /// at least one relay receiver (broadcast = flood fabric; edges to
  /// non-relay leaves only carry directed frames). `stream` attributes
  /// the radio energy of this transmission to a channel class.
  ///
  /// The SharedBytes overloads are the zero-copy path: every scheduled
  /// delivery captures a refcount on the one frame buffer instead of
  /// copying it. The BytesView overloads materialize the frame once and
  /// forward to them.
  void transmit(NodeId from, const SharedBytes& frame,
                energy::Stream stream = energy::Stream::kOther);
  void transmit(NodeId from, BytesView frame,
                energy::Stream stream = energy::Stream::kOther) {
    transmit(from, share_bytes(frame), stream);
  }
  /// Transmit only on the given subset of `from`'s out-edges (Byzantine
  /// selective sending). Indices are positions into out_edges(from).
  void transmit_on(NodeId from, const std::vector<std::size_t>& edge_sel,
                   const SharedBytes& frame,
                   energy::Stream stream = energy::Stream::kOther);
  void transmit_on(NodeId from, const std::vector<std::size_t>& edge_sel,
                   BytesView frame,
                   energy::Stream stream = energy::Stream::kOther) {
    transmit_on(from, edge_sel, share_bytes(frame), stream);
  }
  /// Transmit only on out-edges that make progress towards `dest`
  /// (at least one receiver strictly closer than `from`). The unicast-
  /// routing hop primitive.
  void transmit_towards(NodeId from, NodeId dest, const SharedBytes& frame,
                        energy::Stream stream = energy::Stream::kOther);
  void transmit_towards(NodeId from, NodeId dest, BytesView frame,
                        energy::Stream stream = energy::Stream::kOther) {
    transmit_towards(from, dest, share_bytes(frame), stream);
  }

  /// Observe every frame as it enters the fabric, on the sim thread, in
  /// event order, before any delivery of it is scheduled. Installed by
  /// the harness to speculate signature verifications while the frame is
  /// in simulated flight (crypto::VerifyPipeline). Re-forwarded frames
  /// fire the hook again; observers are expected to dedup.
  void set_transmit_hook(std::function<void(BytesView)> hook) {
    transmit_hook_ = std::move(hook);
  }

  [[nodiscard]] const Hypergraph& graph() const { return graph_; }
  [[nodiscard]] const TransportConfig& config() const { return config_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  /// Shortest-path hop distance (SIZE_MAX when unreachable). Used by the
  /// flood router to forward addressed frames only along shrinking-
  /// distance paths (point-to-point routing over the hypergraph).
  [[nodiscard]] std::size_t hops(NodeId from, NodeId to) const;

  // Run statistics (for Table-3 communication-complexity measurements).
  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t bytes_transmitted() const { return bytes_tx_; }
  /// Bytes the zero-copy path did NOT copy: one full frame per scheduled
  /// delivery (the old per-delivery to_bytes) plus whatever sinks report
  /// via note_copy_saved (the flood router's per-packet payload copy).
  /// Deterministic — a pure function of the delivery schedule.
  [[nodiscard]] std::uint64_t bytes_copy_saved() const {
    return bytes_copy_saved_;
  }
  void note_copy_saved(std::uint64_t bytes) { bytes_copy_saved_ += bytes; }
  void reset_stats();

 private:
  void transmit_edge(const HyperEdge& edge, const SharedBytes& frame,
                     energy::Stream stream);
  void charge_energy(const HyperEdge& edge, std::size_t bytes,
                     energy::Stream stream);
  void recompute_hops();

  sim::Scheduler& sched_;
  Hypergraph graph_;
  TransportConfig config_;
  std::vector<energy::Meter>* meters_;
  std::vector<PacketSink*> sinks_;
  std::unique_ptr<DelayPolicy> policy_;
  FaultInjector* injector_ = nullptr;
  std::vector<bool> relay_;
  std::vector<bool> online_;
  std::vector<std::vector<std::size_t>> hop_matrix_;

  std::function<void(BytesView)> transmit_hook_;

  std::uint64_t transmissions_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t bytes_copy_saved_ = 0;
};

}  // namespace eesmr::net
