// Hex encoding/decoding used by tests, traces and block-id printing.
#pragma once

#include <string>

#include "src/common/bytes.hpp"

namespace eesmr {

/// Lower-case hex encoding of a byte buffer.
std::string hex_encode(BytesView data);

/// Decode a hex string (case-insensitive). Throws std::invalid_argument on
/// malformed input (odd length or non-hex characters).
Bytes hex_decode(const std::string& hex);

}  // namespace eesmr
