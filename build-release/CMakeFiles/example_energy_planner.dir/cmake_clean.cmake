file(REMOVE_RECURSE
  "CMakeFiles/example_energy_planner.dir/examples/energy_planner.cpp.o"
  "CMakeFiles/example_energy_planner.dir/examples/energy_planner.cpp.o.d"
  "example_energy_planner"
  "example_energy_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_energy_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
