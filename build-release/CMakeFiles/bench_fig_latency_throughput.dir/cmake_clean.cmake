file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_latency_throughput.dir/bench/fig_latency_throughput.cpp.o"
  "CMakeFiles/bench_fig_latency_throughput.dir/bench/fig_latency_throughput.cpp.o.d"
  "bench_fig_latency_throughput"
  "bench_fig_latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
