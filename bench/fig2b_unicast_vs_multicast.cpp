// Figure 2b: energy of 99.99%-reliable k-casts vs the equivalent GATT
// unicast links, across payload sizes. UC = unicast, S = sender,
// R = receiver.
#include "bench/bench_util.hpp"
#include "src/energy/cost_model.hpp"

using namespace eesmr;
using namespace eesmr::energy;

int main() {
  bench::header("Figure 2b — unicast vs multicast energy on BLE",
                "Fig. 2b (§5.4, 99.99% reliable k-casts, GATT unicasts)");

  std::printf("%8s | %9s %9s | %9s %9s | %10s %10s\n", "payload",
              "UC.S d=1", "UC.R d=1", "UC.S d=7", "UC.R d=7", "kcast.S k7",
              "kcast.R k7");
  std::printf("---------+---------------------+---------------------+"
              "----------------------\n");
  for (std::size_t payload : {25u, 50u, 100u, 200u, 300u, 400u, 500u}) {
    const std::size_t red = kcast_redundancy_for(payload, 7, 0.9999);
    std::printf("%6zu B | %9.1f %9.1f | %9.1f %9.1f | %10.1f %10.1f\n",
                payload, gatt_send_energy_mj(payload),
                gatt_recv_energy_mj(payload),
                7 * gatt_send_energy_mj(payload),
                gatt_recv_energy_mj(payload),  // each receiver pays once
                kcast_send_energy_mj(payload, red),
                kcast_recv_energy_mj(payload, red));
  }

  bench::note("expected shape: one k-cast transmission beats d_out = 7 "
              "unicasts on the sender side across this payload range; a "
              "single unicast (d_out = 1) is always cheaper than a k-cast; "
              "per-byte slopes make unicasts win for very large payloads "
              "(paper: 'unicast link is more effective for bigger "
              "payloads, but this advantage is quickly negated as k "
              "increases')");

  // Locate the sender-side crossover payload for d_out = 7.
  std::size_t crossover = 0;
  for (std::size_t payload = 25; payload <= 8000; payload += 25) {
    const std::size_t red = kcast_redundancy_for(payload, 7, 0.9999);
    if (kcast_send_energy_mj(payload, red) >
        7 * gatt_send_energy_mj(payload)) {
      crossover = payload;
      break;
    }
  }
  if (crossover > 0) {
    std::printf("sender-side crossover (7 unicasts become cheaper): "
                "~%zu bytes\n", crossover);
  } else {
    std::printf("no sender-side crossover below 8 kB\n");
  }
  return 0;
}
