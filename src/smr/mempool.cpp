#include "src/smr/mempool.hpp"

#include <algorithm>

#include "src/smr/request.hpp"

namespace eesmr::smr {

bool Mempool::submit(Command cmd) {
  std::string key = to_string(cmd.data);
  if (committed_keys_.count(key) > 0) return false;
  if (pending_keys_.count(key) > 0) return false;  // duplicate, not a drop
  if (capacity_ > 0 && queue_.size() >= capacity_) {
    ++dropped_;  // admission control: shed fresh load when full
    return false;
  }
  const auto req = ClientRequest::decode(cmd.data);
  if (req.has_value()) ++client_pending_[req->client];
  pending_keys_.insert(std::move(key));
  queue_.push_back(std::move(cmd));
  return true;
}

std::vector<Command> Mempool::next_batch(std::size_t max_cmds) {
  std::vector<Command> batch;
  batch.reserve(max_cmds);
  for (std::size_t i = 0; i < std::min(max_cmds, queue_.size()); ++i) {
    batch.push_back(queue_[i]);
  }
  while (batch.size() < max_cmds && synthetic_bytes_ > 0) {
    // Deterministic filler: counter stamped into a fixed-size payload.
    Command c;
    c.data.assign(synthetic_bytes_, 0x5a);
    stamp_counter_le(c.data, synth_counter_++);
    batch.push_back(std::move(c));
  }
  return batch;
}

void Mempool::remove_committed(const Block& block) {
  // One pass over the queue against a set of the block's commands,
  // instead of one queue scan per command. committed_keys_ holds only
  // tagged client requests: their (client, req_id) makes each one a
  // distinct operation whose retransmit must not be ordered twice. An
  // untagged command resubmitted after commit is a NEW operation with
  // identical bytes (e.g. a second "inc a") and stays orderable; this
  // also keeps synthetic filler from growing the set forever.
  // Classification uses the same full decode as the replica commit path
  // (a prefix sniff would disagree on bytes that merely start with the
  // tag, e.g. filler whose stamped counter hits 0xC11E).
  std::set<std::string> block_keys;
  for (const Command& c : block.cmds) {
    auto [it, fresh] = block_keys.insert(to_string(c.data));
    if (fresh && ClientRequest::decode(c.data).has_value()) {
      committed_keys_.insert(*it);
    }
  }
  if (block_keys.empty()) return;
  const auto is_committed = [&](const Command& c) {
    const std::string key = to_string(c.data);
    if (block_keys.count(key) == 0) return false;
    pending_keys_.erase(key);
    const auto req = ClientRequest::decode(c.data);
    if (req.has_value()) {
      const auto it = client_pending_.find(req->client);
      if (it != client_pending_.end() && it->second > 0) --it->second;
    }
    return true;
  };
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(), is_committed),
               queue_.end());
}

}  // namespace eesmr::smr
