#include "src/common/serde.hpp"

#include <gtest/gtest.h>

#include "src/common/hex.hpp"

namespace eesmr {
namespace {

TEST(Serde, RoundTripScalars) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serde, RoundTripBytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes(Bytes{});
  w.str("");

  Reader r(w.buffer());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serde, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(hex_encode(w.buffer()), "04030201");
}

TEST(Serde, TruncatedInputThrows) {
  Writer w;
  w.u32(7);
  Reader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), SerdeError);
}

TEST(Serde, TruncatedLengthPrefixedBytesThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow but none do
  Reader r(w.buffer());
  EXPECT_THROW(r.bytes(), SerdeError);
}

TEST(Serde, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.buffer());
  r.u8();
  EXPECT_THROW(r.expect_done(), SerdeError);
}

TEST(Serde, BooleanRejectsOutOfRange) {
  Bytes data{2};
  Reader r(data);
  EXPECT_THROW(r.boolean(), SerdeError);
}

TEST(Serde, DeterministicEncoding) {
  auto encode = [] {
    Writer w;
    w.u64(99);
    w.str("abc");
    w.bytes(Bytes{9, 9});
    return w.take();
  };
  EXPECT_EQ(encode(), encode());
}

TEST(Serde, RawReadWritesExactCount) {
  Writer w;
  w.raw(Bytes{5, 6, 7, 8});
  Reader r(w.buffer());
  EXPECT_EQ(r.raw(2), (Bytes{5, 6}));
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_THROW(r.raw(3), SerdeError);
}

TEST(Hex, EncodeDecodeRoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(data), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), data);
  EXPECT_EQ(hex_decode("0001ABFF"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
}

}  // namespace
}  // namespace eesmr
