// Table 2: energy for signature generation and verification across the
// ECDSA curves, RSA moduli and HMAC the paper measured on the
// NUCLEO-F401RE. The calibrated model reproduces the table; pass
// --host-timing to add wall-clock columns cross-checking the *ordering*
// with this repository's from-scratch implementations (host timing is
// inherently nondeterministic, so it is opt-in and breaks the engine's
// byte-identical-output contract only when explicitly requested; see
// bench/micro_crypto for the loop-based micro version).
#include <chrono>
#include <functional>

#include "src/crypto/ecdsa.hpp"
#include "src/crypto/hmac.hpp"
#include "src/crypto/rsa.hpp"
#include "src/energy/cost_model.hpp"
#include "src/exp/experiment.hpp"
#include "src/sim/rng.hpp"

using namespace eesmr;
using namespace eesmr::crypto;

namespace {

double ms_of(const std::function<void()>& fn, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() /
         iters;
}

/// Wall-clock sign/verify of this repo's from-scratch implementation.
std::pair<double, double> impl_ms(SchemeId scheme, const Bytes& msg,
                                  sim::Rng& rng) {
  switch (scheme) {
    case SchemeId::kHmacSha256: {
      const Bytes key(64, 0x42);
      const double ms = ms_of([&] { (void)hmac(key, msg); }, 200);
      return {ms, ms};
    }
    case SchemeId::kRsa1024:
    case SchemeId::kRsa1260:
    case SchemeId::kRsa2048: {
      const std::size_t bits = scheme == SchemeId::kRsa1024   ? 1024
                               : scheme == SchemeId::kRsa1260 ? 1260
                                                              : 2048;
      const RsaKeyPair kp = rsa_generate(bits, rng);
      Bytes sig;
      const double sign_ms = ms_of([&] { sig = rsa_sign(kp.priv, msg); }, 3);
      const double verify_ms =
          ms_of([&] { (void)rsa_verify(kp.pub, msg, sig); }, 20);
      return {sign_ms, verify_ms};
    }
    default: {
      const CurveId curve =
          scheme == SchemeId::kEcdsaBp160r1     ? CurveId::kBrainpoolP160r1
          : scheme == SchemeId::kEcdsaBp256r1   ? CurveId::kBrainpoolP256r1
          : scheme == SchemeId::kEcdsaSecp192r1 ? CurveId::kSecp192r1
          : scheme == SchemeId::kEcdsaSecp192k1 ? CurveId::kSecp192k1
          : scheme == SchemeId::kEcdsaSecp224r1 ? CurveId::kSecp224r1
          : scheme == SchemeId::kEcdsaSecp256r1 ? CurveId::kSecp256r1
                                                : CurveId::kSecp256k1;
      const EcdsaKeyPair kp = ecdsa_generate(curve, rng);
      Bytes sig;
      const double sign_ms = ms_of([&] { sig = ecdsa_sign(kp.priv, msg); }, 3);
      const double verify_ms =
          ms_of([&] { (void)ecdsa_verify(kp.pub, msg, sig); }, 3);
      return {sign_ms, verify_ms};
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("table2_crypto",
                     "Table 2 (§5.5, public key primitives)", argc, argv,
                     /*default_seed=*/2024);
  const bool host_timing = ex.flag("--host-timing");
  if (host_timing) {
    ex.force_serial("--host-timing loops must not contend for cores");
  }

  const std::vector<SchemeId> schemes = all_schemes();
  std::vector<std::string> labels;
  labels.reserve(schemes.size());
  for (const SchemeId s : schemes) labels.emplace_back(scheme_info(s).name);

  exp::Grid grid;
  grid.axis("scheme", labels);

  exp::Report& rep = ex.run("sign_verify_energy", grid,
                            [&](const exp::RunContext& c) {
    const SchemeId scheme = schemes[c.at("scheme")];
    exp::MetricRow row;
    row.set("sign_j", energy::sign_energy_mj(scheme) / 1000.0);
    row.set("verify_j", energy::verify_energy_mj(scheme) / 1000.0);
    // Batch verification at a typical f+1 certificate tally (k = 8):
    // total and amortized per-signature cost under the analytic batch
    // model (ECDSA amortizes shared point arithmetic; RSA and HMAC
    // barely improve — the ordering argument the pipeline exploits).
    constexpr std::size_t kBatch = 8;
    const double batch_j = energy::batch_verify_energy_mj(scheme, kBatch) /
                           1000.0;
    row.set("batch8_verify_j", batch_j);
    row.set("batch8_per_sig_j", batch_j / static_cast<double>(kBatch));
    if (host_timing) {
      const Bytes msg = to_bytes(std::string("Table-2 measurement payload"));
      sim::Rng rng(c.seed);
      const auto [sign_ms, verify_ms] = impl_ms(scheme, msg, rng);
      row.set("impl_sign_ms", sign_ms);
      row.set("impl_verify_ms", verify_ms);
    }
    return row;
  });
  rep.print_table(3);

  ex.note("expected shape: RSA verification is orders of magnitude "
          "cheaper than any ECDSA verification (the paper's reason for "
          "choosing RSA-1024: leader signs once, n replicas verify)");
  if (host_timing) {
    ex.note("the wall-clock columns use this repo's from-scratch bigint/EC "
            "code on the host CPU; the J columns are the paper's Cortex-M4 "
            "calibration used by the simulator");
  } else {
    ex.note("pass --host-timing to cross-check the ordering against this "
            "repo's from-scratch implementations (nondeterministic output)");
  }
  return ex.finish();
}
