#include "src/smr/message.hpp"

#include <gtest/gtest.h>

namespace eesmr::smr {
namespace {

std::shared_ptr<crypto::Keyring> ring() {
  static auto r =
      crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, 5, 77);
  return r;
}

Msg signed_msg(NodeId author, MsgType type, std::uint64_t view, Bytes data) {
  Msg m;
  m.type = type;
  m.view = view;
  m.round = 0;
  m.author = author;
  m.data = std::move(data);
  m.sig = ring()->signer(author).sign(m.preimage());
  return m;
}

TEST(Msg, EncodeDecodeRoundTrip) {
  const Msg m = signed_msg(2, MsgType::kPropose, 7, Bytes{9, 9, 9});
  const Msg d = Msg::decode(m.encode());
  EXPECT_EQ(d.type, m.type);
  EXPECT_EQ(d.view, m.view);
  EXPECT_EQ(d.author, m.author);
  EXPECT_EQ(d.data, m.data);
  EXPECT_EQ(d.sig, m.sig);
}

TEST(Msg, PreimageExcludesSignatureAndAuthor) {
  Msg m = signed_msg(1, MsgType::kBlame, 3, {});
  const Bytes p1 = m.preimage();
  m.sig = Bytes{1, 2, 3};
  m.author = 4;
  EXPECT_EQ(m.preimage(), p1);
}

TEST(Msg, PreimageBindsTypeViewRoundData) {
  Msg m = signed_msg(1, MsgType::kBlame, 3, Bytes{1});
  Msg m2 = m;
  m2.type = MsgType::kCertify;
  Msg m3 = m;
  m3.view = 4;
  Msg m4 = m;
  m4.round = 9;
  Msg m5 = m;
  m5.data = Bytes{2};
  for (const Msg& other : {m2, m3, m4, m5}) {
    EXPECT_NE(other.preimage(), m.preimage());
  }
}

TEST(Msg, MatchingMsgPredicate) {
  const Msg m = signed_msg(0, MsgType::kBlame, 5, {});
  EXPECT_TRUE(matching_msg(m, MsgType::kBlame, 5));
  EXPECT_FALSE(matching_msg(m, MsgType::kBlame, 6));
  EXPECT_FALSE(matching_msg(m, MsgType::kCertify, 5));
}

TEST(QuorumCert, CombineAndVerify) {
  std::vector<Msg> blames;
  for (NodeId i = 0; i < 3; ++i) {
    blames.push_back(signed_msg(i, MsgType::kBlame, 2, {}));
  }
  const QuorumCert qc = QuorumCert::combine(blames);
  EXPECT_EQ(qc.sigs.size(), 3u);
  EXPECT_TRUE(qc.verify(*ring(), 3));
  EXPECT_TRUE(qc.verify(*ring(), 2));
  EXPECT_FALSE(qc.verify(*ring(), 4));  // not enough signatures
  EXPECT_TRUE(matching_qc(qc, MsgType::kBlame, 2));
}

TEST(QuorumCert, EncodeDecodeRoundTrip) {
  std::vector<Msg> msgs;
  for (NodeId i = 0; i < 2; ++i) {
    msgs.push_back(signed_msg(i, MsgType::kCertify, 4, Bytes{7, 7}));
  }
  const QuorumCert qc = QuorumCert::combine(msgs);
  const QuorumCert d = QuorumCert::decode(qc.encode());
  EXPECT_EQ(d.type, qc.type);
  EXPECT_EQ(d.view, qc.view);
  EXPECT_EQ(d.data, qc.data);
  ASSERT_EQ(d.sigs.size(), qc.sigs.size());
  EXPECT_TRUE(d.verify(*ring(), 2));
}

TEST(QuorumCert, CombineRejectsMismatchedMessages) {
  std::vector<Msg> msgs = {signed_msg(0, MsgType::kBlame, 2, {}),
                           signed_msg(1, MsgType::kBlame, 3, {})};
  EXPECT_THROW(QuorumCert::combine(msgs), std::invalid_argument);
  EXPECT_THROW(QuorumCert::combine({}), std::invalid_argument);
}

TEST(QuorumCert, CombineDeduplicatesAuthors) {
  std::vector<Msg> msgs = {signed_msg(0, MsgType::kBlame, 2, {}),
                           signed_msg(0, MsgType::kBlame, 2, {}),
                           signed_msg(1, MsgType::kBlame, 2, {})};
  const QuorumCert qc = QuorumCert::combine(msgs);
  EXPECT_EQ(qc.sigs.size(), 2u);
}

TEST(QuorumCert, VerifyRejectsDuplicateAuthors) {
  const Msg m = signed_msg(0, MsgType::kBlame, 2, {});
  QuorumCert qc;
  qc.type = MsgType::kBlame;
  qc.view = 2;
  qc.round = 0;
  qc.sigs = {{0, m.sig}, {0, m.sig}};
  EXPECT_FALSE(qc.verify(*ring(), 2));
}

TEST(QuorumCert, VerifyRejectsForgedSignature) {
  std::vector<Msg> msgs = {signed_msg(0, MsgType::kBlame, 2, {}),
                           signed_msg(1, MsgType::kBlame, 2, {})};
  QuorumCert qc = QuorumCert::combine(msgs);
  qc.sigs[1].second[0] ^= 0x01;
  EXPECT_FALSE(qc.verify(*ring(), 2));
}

TEST(QuorumCert, VerifyRejectsWrongAttribution) {
  // A signature by node 0 presented as node 2's.
  std::vector<Msg> msgs = {signed_msg(0, MsgType::kBlame, 2, {}),
                           signed_msg(1, MsgType::kBlame, 2, {})};
  QuorumCert qc = QuorumCert::combine(msgs);
  qc.sigs[0].first = 2;
  EXPECT_FALSE(qc.verify(*ring(), 2));
}

TEST(MsgTypeNames, AllNamed) {
  EXPECT_STREQ(msg_type_name(MsgType::kPropose), "Propose");
  EXPECT_STREQ(msg_type_name(MsgType::kBlame), "Blame");
  EXPECT_STREQ(msg_type_name(MsgType::kEquivProof), "EquivProof");
  EXPECT_STREQ(msg_type_name(MsgType::kOrdered), "Ordered");
}

}  // namespace
}  // namespace eesmr::smr
