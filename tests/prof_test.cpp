// Deterministic-profiler tests (src/obs/prof.hpp): kind-tagged
// scheduler accounting, byte-identical eesmr_prof_* exports and flow
// traces at any runner thread count, the zero-overhead contract of the
// opt-in host timing layer, per-request energy attribution staying a
// lower bound of the run's stream totals, and the garbage-flood early
// drop filter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/adversary/spec.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/exp/runner.hpp"
#include "src/harness/checkers.hpp"
#include "src/harness/cluster.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace eesmr {
namespace {

using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

ClusterConfig client_cfg(Protocol p, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.protocol = p;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = seed;
  cfg.clients = 2;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Scheduler kind accounting
// ---------------------------------------------------------------------------

TEST(Prof, SchedulerKindCountsSumToProcessed) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 5);
  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(10, sim::seconds(60));
  EXPECT_GE(r.requests_accepted, 10u);

  std::uint64_t by_kind = 0;
  for (const auto& [kind, count] : r.prof.sched_events) {
    EXPECT_FALSE(kind.empty());
    EXPECT_GT(count, 0u);
    by_kind += count;
  }
  EXPECT_EQ(by_kind, cluster.scheduler().processed());
  // The protocol paths are tagged, not lumped into "other": a client
  // run exercises at least delivery and commit timers.
  const auto has = [&](const char* kind) {
    for (const auto& [k, c] : r.prof.sched_events) {
      if (k == kind) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("net_deliver"));
  EXPECT_TRUE(has("commit_timer"));
}

// ---------------------------------------------------------------------------
// Byte-identical exports at any --threads N
// ---------------------------------------------------------------------------

/// Run a 2-protocol grid through the deterministic-parallel runner and
/// return {concatenated registry text, chrome trace json} — the exact
/// artifacts --prom-out / --trace-out serialize.
std::pair<std::string, std::string> run_profiled_grid(std::size_t threads) {
  exp::Grid grid;
  grid.axis("protocol", {"EESMR", "SyncHS"});
  exp::RunnerOptions ro;
  ro.threads = threads;
  ro.seed = 99;
  ro.trace_requests = 2;
  std::vector<exp::RunArtifacts> slots;
  ro.artifacts = &slots;
  ro.collect_registry = true;
  ro.collect_trace = true;
  (void)exp::run_matrix(grid, [&](const exp::RunContext& c) {
    ClusterConfig cfg = client_cfg(c.label("protocol") == "EESMR"
                                       ? Protocol::kEesmr
                                       : Protocol::kSyncHotStuff,
                                   c.seed);
    const RunResult r = exp::run_steady(c, cfg, 12);
    exp::MetricRow row;
    row.set("commits", r.min_committed());
    return row;
  }, ro);

  std::string prom;
  exp::Json events = exp::Json::array();
  int pid = 1;
  for (exp::RunArtifacts& s : slots) {
    prom += s.registry.text();
    pid = s.tracer.append_chrome(events, pid, "run ");
  }
  return {prom, obs::Tracer::chrome_document(std::move(events)).pretty()};
}

TEST(Prof, ExportsByteIdenticalAcrossRunnerThreads) {
  const auto [prom1, trace1] = run_profiled_grid(1);
  EXPECT_NE(prom1.find("eesmr_prof_sched_events_total"), std::string::npos);
  EXPECT_NE(prom1.find("eesmr_prof_crypto_ops_total"), std::string::npos);
  EXPECT_NE(prom1.find("eesmr_prof_codec_bytes_total"), std::string::npos);
  EXPECT_NE(prom1.find("eesmr_prof_request_stream_mj"), std::string::npos);
  EXPECT_NE(trace1.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(trace1.find("\"ph\": \"f\""), std::string::npos);
  for (const std::size_t threads : {4u, 8u}) {
    const auto [prom, trace] = run_profiled_grid(threads);
    EXPECT_EQ(prom, prom1) << "threads=" << threads;
    EXPECT_EQ(trace, trace1) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Request-scoped causal tracing
// ---------------------------------------------------------------------------

TEST(Prof, SampledRequestsFlowSubmitToAccept) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 21);
  cfg.trace_requests = 3;
  obs::Tracer tracer;
  cfg.tracer = &tracer;
  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(12, sim::seconds(60));
  EXPECT_GE(r.requests_accepted, 12u);

  ASSERT_EQ(r.prof.requests.size(), 3u);
  for (const auto& req : r.prof.requests) {
    // Every sampled request saw its request frame and its replies.
    EXPECT_TRUE(req.streams.count("request")) << req.req_id;
    EXPECT_TRUE(req.streams.count("reply")) << req.req_id;
    for (const auto& [stream, acc] : req.streams) {
      EXPECT_GT(acc.first, 0u) << stream;
      EXPECT_GT(acc.second, 0.0) << stream;
    }
  }

  // The trace carries one full flow per sampled request: begin at
  // submit, steps along the pipeline, end at accept; plus the 1us
  // anchor slices the arrows bind to.
  exp::Json events = exp::Json::array();
  tracer.append_chrome(events, 1, "t ");
  const std::string text = events.pretty();
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const exp::Json& e = events.at(i);
    if (!e.contains("ph")) continue;
    const std::string ph = e.at("ph").as_string();
    if (ph == "s") ++begins;
    if (ph == "f") ++ends;
    if (ph == "s" || ph == "t" || ph == "f") {
      EXPECT_TRUE(e.contains("id"));
      EXPECT_EQ(e.at("cat").as_string(), "request");
    }
  }
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, 3u);
  EXPECT_NE(text.find("\"pooled\""), std::string::npos);
  EXPECT_NE(text.find("\"commit\""), std::string::npos);
  EXPECT_NE(text.find("\"bp\""), std::string::npos);  // binding point
}

// Attribution is a per-frame share of one-hop send+recv energy, so the
// per-request totals are a lower bound of the run's per-stream radio
// energy (which also counts relaying and unsampled traffic).
TEST(Prof, RequestEnergyIsLowerBoundOfStreamTotals) {
  for (Protocol p : {Protocol::kEesmr, Protocol::kSyncHotStuff}) {
    ClusterConfig cfg = client_cfg(p, 77);
    cfg.trace_requests = 4;
    harness::Cluster cluster(cfg);
    const RunResult r = cluster.run_until_accepted(16, sim::seconds(60));
    ASSERT_EQ(r.prof.requests.size(), 4u);

    for (std::size_t s = 0; s < energy::kNumStreams; ++s) {
      const auto stream = static_cast<energy::Stream>(s);
      double attributed_mj = 0;
      for (const auto& req : r.prof.requests) {
        const auto it = req.streams.find(energy::stream_name(stream));
        if (it != req.streams.end()) attributed_mj += it->second.second;
      }
      const energy::StreamStats st = r.stream_totals_all(stream);
      EXPECT_LE(attributed_mj, st.send_mj + st.recv_mj + 1e-9)
          << harness::protocol_name(p) << " stream "
          << energy::stream_name(stream);
    }
  }
}

// ---------------------------------------------------------------------------
// Host timing: strictly opt-in
// ---------------------------------------------------------------------------

TEST(Prof, DisabledHostTimingExportsNoHostFamilies) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 13);
  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(8, sim::seconds(60));
  EXPECT_TRUE(r.prof.host_scopes.empty());
  obs::Registry reg;
  r.to_registry(reg);
  const std::string text = reg.text();
  EXPECT_EQ(text.find("eesmr_prof_host"), std::string::npos);
  // The deterministic families are there regardless.
  EXPECT_NE(text.find("eesmr_prof_sched_events_total"), std::string::npos);
  EXPECT_NE(text.find("eesmr_prof_early_drops_total"), std::string::npos);
}

TEST(Prof, EnabledHostTimingRecordsScopes) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 13);
  cfg.host_timing = true;
  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(8, sim::seconds(60));
  EXPECT_FALSE(r.prof.host_scopes.empty());
  const auto it = r.prof.host_scopes.find("replica.on_deliver");
  ASSERT_NE(it, r.prof.host_scopes.end());
  EXPECT_GT(it->second.count, 0u);
  EXPECT_GE(it->second.max_ms, it->second.min_ms);
  obs::Registry reg;
  r.to_registry(reg);
  EXPECT_NE(reg.text().find("eesmr_prof_host_scope_calls_total"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Garbage-signature flood: probabilistic early drop
// ---------------------------------------------------------------------------

TEST(Prof, GarbageFloodEngagesEarlyDropAfterThreshold) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 41);
  adversary::AdversarySpec::ByzClient bc;
  bc.kind = adversary::AdversarySpec::ByzClient::Kind::kGarbageFlood;
  bc.interval = sim::milliseconds(10);
  cfg.adversary.clients.push_back(bc);
  cfg.workload.max_requests = 20;

  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(40, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GT(r.byz_requests_sent, 50u);

  // After ~3 consecutive failures per replica the filter engages; the
  // bulk of the flood is then dropped before a metered verification
  // (only the deterministic 1-in-16 re-admissions still pay).
  EXPECT_GT(r.prof.early_drops, 0u);
  std::uint64_t replica_drops = 0;
  for (NodeId i = 0; i < 4; ++i) {
    replica_drops += cluster.replica(i).early_drops();
  }
  EXPECT_EQ(replica_drops, r.prof.early_drops);
  // The honest workload is unaffected.
  EXPECT_GE(r.requests_accepted, 40u);

  obs::Registry reg;
  r.to_registry(reg);
  EXPECT_EQ(reg.value("eesmr_prof_early_drops_total"),
            static_cast<double>(r.prof.early_drops));
}

// Without an attack the filter never arms (no false positives).
TEST(Prof, NoEarlyDropsOnHonestRuns) {
  ClusterConfig cfg = client_cfg(Protocol::kSyncHotStuff, 43);
  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(12, sim::seconds(60));
  EXPECT_GE(r.requests_accepted, 12u);
  EXPECT_EQ(r.prof.early_drops, 0u);
}

// ---------------------------------------------------------------------------
// Workload-aware liveness verdicts
// ---------------------------------------------------------------------------

TEST(Liveness, IdleTailAfterLoadDrainsDoesNotCountAsStall) {
  harness::LivenessChecker lc;
  lc.sample(0, 0);
  lc.sample(sim::milliseconds(10), 1);  // advance at 10ms
  // Load runs out; the chain idles for a long time.
  for (int t = 2; t <= 100; ++t) {
    lc.sample(sim::milliseconds(10) * t, 1, /*load_pending=*/false);
  }
  // The idle tail accrues at most one sampling interval, not 990ms.
  EXPECT_LE(lc.max_stall(sim::seconds(1)), sim::milliseconds(10));

  // A real stall WITH pending load still registers in full, even when
  // the load later drains.
  harness::LivenessChecker stalled;
  stalled.sample(0, 0);
  stalled.sample(sim::milliseconds(500), 0);          // stalled, loaded
  stalled.sample(sim::milliseconds(600), 1);          // finally advances
  stalled.sample(sim::milliseconds(610), 1, false);   // then drains
  EXPECT_GE(stalled.max_stall(sim::milliseconds(610)),
            sim::milliseconds(600));
}

// Cluster-level: a finite-budget client run left running long past the
// drain must not report the idle tail as a commit stall.
TEST(Liveness, ClusterIdleChainReportsNoSpuriousStall) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 17);
  cfg.workload.max_requests = 5;  // per client; drains almost instantly
  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_for(sim::seconds(30));
  EXPECT_EQ(r.requests_accepted, 10u);
  // The chain idled for ~30 simulated seconds after the last commit;
  // with workload-aware sampling the recorded stall stays at commit-
  // cadence scale instead of absorbing the idle tail.
  EXPECT_LT(r.max_commit_stall, sim::seconds(5));
}

}  // namespace
}  // namespace eesmr
