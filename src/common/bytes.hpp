// Basic byte-buffer vocabulary types shared by every module.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace eesmr {

/// Owned byte buffer. All wire formats, hashes and signatures use this.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Refcounted immutable byte buffer. The zero-copy currency of the
/// network layer: a frame is materialized once at the sender and every
/// scheduled delivery — including flood re-forwards — captures a
/// refcount instead of copying the payload. Immutability is what makes
/// sharing safe: no holder may mutate the buffer after publication.
using SharedBytes = std::shared_ptr<const Bytes>;

/// Take ownership of `b` as an immutable shared buffer.
inline SharedBytes share_bytes(Bytes&& b) {
  return std::make_shared<const Bytes>(std::move(b));
}

/// Copy a view into a fresh immutable shared buffer.
inline SharedBytes share_bytes(BytesView v) {
  return std::make_shared<const Bytes>(v.begin(), v.end());
}

/// View over a shared buffer (empty view for null).
inline BytesView view_of(const SharedBytes& s) {
  return s ? BytesView(*s) : BytesView{};
}

/// Build an owned buffer from a view.
inline Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }

/// Build an owned buffer from a UTF-8 string (no terminator).
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Interpret a buffer as a string (for tests / examples).
inline std::string to_string(BytesView v) {
  return std::string(v.begin(), v.end());
}

/// Stamp `v` little-endian into the first min(8, size) bytes of `buf`.
/// Shared by the synthetic workload generators to keep fixed-size
/// payloads distinct.
inline void stamp_counter_le(Bytes& buf, std::uint64_t v) {
  for (std::size_t b = 0; b < 8 && b < buf.size(); ++b) {
    buf[b] = static_cast<std::uint8_t>(v >> (8 * b));
  }
}

}  // namespace eesmr
