# Empty dependencies file for ecdsa_test.
# This may be replaced when dependencies are built.
