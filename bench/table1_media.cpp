// Table 1: energy consumption per message for BLE / 4G LTE / WiFi.
// Prints the same rows the paper reports (the cost model interpolates
// through exactly these measured points) plus the derived per-byte view,
// and — via the typed-channel instrumentation — a per-stream breakdown
// of where each Joule goes when EESMR actually runs on each medium.
#include "bench/bench_util.hpp"
#include "src/energy/cost_model.hpp"

using namespace eesmr;
using namespace eesmr::energy;

int main() {
  bench::header("Table 1 — per-message energy by medium (mJ)",
                "Table 1 (§5.4, communication primitives)");

  std::printf("%-8s | %8s %8s %10s | %9s %9s | %8s %8s\n", "Size",
              "BLE.Send", "BLE.Recv", "BLE.Mcast", "4G.Send", "4G.Recv",
              "WiFi.S", "WiFi.R");
  std::printf("---------+-----------------------------+"
              "---------------------+------------------\n");
  for (std::size_t size : {256u, 512u, 1024u, 2048u}) {
    std::printf("%5zu B  | %8.2f %8.2f %10.2f | %9.2f %9.2f | %8.2f %8.2f\n",
                size, send_energy_mj(Medium::kBle, size),
                recv_energy_mj(Medium::kBle, size),
                multicast_energy_mj(Medium::kBle, size),
                send_energy_mj(Medium::k4gLte, size),
                recv_energy_mj(Medium::k4gLte, size),
                send_energy_mj(Medium::kWifi, size),
                recv_energy_mj(Medium::kWifi, size));
  }

  std::printf("\nPer-byte send cost at 1 kB (mJ/B):\n");
  for (auto m : {Medium::kBle, Medium::kWifi, Medium::k4gLte}) {
    std::printf("  %-8s %.4f\n", medium_name(m),
                send_energy_mj(m, 1024) / 1024.0);
  }
  bench::note("expected shape: BLE ~2 orders of magnitude below WiFi, "
              "~3 below 4G (paper: 'two orders... three orders')");
  const double ble = send_energy_mj(Medium::kBle, 1024);
  const double wifi = send_energy_mj(Medium::kWifi, 1024);
  const double lte = send_energy_mj(Medium::k4gLte, 1024);
  std::printf("measured ratios at 1kB: WiFi/BLE = %.0fx, 4G/BLE = %.0fx\n",
              wifi / ble, lte / ble);

  // -- where each Joule went: per-stream breakdown per medium ----------------
  // A small EESMR cluster with clients on each medium; the typed
  // channels attribute every transmission (including forwarded hops) to
  // its channel class.
  std::printf("\nPer-stream replica energy, EESMR n=7 k=3 + 3 clients "
              "(%% of radio mJ):\n");
  std::printf("%-8s", "Medium");
  for (std::size_t s = 0; s < kNumStreams; ++s) {
    std::printf(" %9s", stream_name(static_cast<Stream>(s)));
  }
  std::printf(" | %10s\n", "radio mJ");
  for (auto m : {Medium::kBle, Medium::kWifi, Medium::k4gLte}) {
    harness::ClusterConfig cfg;
    cfg.protocol = harness::Protocol::kEesmr;
    cfg.n = 7;
    cfg.f = 2;
    cfg.k = 3;
    cfg.medium = m;
    cfg.seed = 42;
    cfg.clients = 3;
    cfg.workload.mode = eesmr::client::WorkloadSpec::Mode::kClosedLoop;
    cfg.workload.outstanding = 1;
    cfg.workload.max_requests = 6;
    harness::Cluster cluster(cfg);
    const harness::RunResult r =
        cluster.run_until_accepted(18, sim::seconds(5000));
    double radio = 0;
    for (std::size_t s = 0; s < kNumStreams; ++s) {
      radio += r.stream_totals(static_cast<Stream>(s)).total_mj();
    }
    std::printf("%-8s", medium_name(m));
    for (std::size_t s = 0; s < kNumStreams; ++s) {
      const auto st = r.stream_totals(static_cast<Stream>(s));
      std::printf(" %8.1f%%", radio > 0 ? 100.0 * st.total_mj() / radio : 0.0);
    }
    std::printf(" | %10.1f\n", radio);
  }
  bench::note("proposal + request streams dominate the flood fabric; the "
              "reply stream stays small (routed unicasts)");
  return 0;
}
