# Empty dependencies file for bench_fig2c_leader_vs_replica.
# This may be replaced when dependencies are built.
