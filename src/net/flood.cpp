#include "src/net/flood.hpp"

#include <algorithm>

#include "src/common/serde.hpp"

namespace eesmr::net {

bool FloodRouter::SeenWindow::insert(std::uint64_t seq) {
  if (seq <= watermark) return false;
  if (!tail.insert(seq).second) return false;
  // Fold the now-contiguous prefix into the watermark.
  while (!tail.empty() && *tail.begin() == watermark + 1) {
    tail.erase(tail.begin());
    ++watermark;
  }
  // Persistent gaps (seqs the origin spent on frames never routed through
  // this node) would pin the tail forever; force the window forward.
  while (tail.size() > kMaxTail) {
    watermark = *tail.begin();
    tail.erase(tail.begin());
    while (!tail.empty() && *tail.begin() <= watermark + 1) {
      watermark = std::max(watermark, *tail.begin());
      tail.erase(tail.begin());
    }
  }
  return true;
}

FloodRouter::FloodRouter(Network& net, NodeId self, FloodClient* client)
    : net_(net), self_(self), client_(client) {
  net_.attach(self, this);
}

std::size_t FloodRouter::dedup_tail_entries() const {
  std::size_t total = 0;
  for (const auto& [origin, window] : seen_) total += window.tail_size();
  return total;
}

SharedBytes FloodRouter::make_frame(NodeId dest, std::uint8_t flags,
                                    energy::Stream stream,
                                    BytesView payload) {
  frame_writer_.clear();
  Writer& w = frame_writer_;
  w.u32(self_);
  w.u64(next_seq_++);
  w.u32(dest);
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(stream));
  w.raw(payload);
  return share_bytes(BytesView(w.buffer()));
}

void FloodRouter::broadcast(BytesView payload, energy::Stream stream) {
  const SharedBytes frame = make_frame(kNoNode, 0, stream, payload);
  // Mark our own frame as seen so echoes are not re-forwarded.
  seen_[self_].insert(next_seq_ - 1);
  net_.transmit(self_, frame, stream);
}

void FloodRouter::broadcast_local(BytesView payload, energy::Stream stream) {
  const SharedBytes frame = make_frame(kNoNode, kNoForward, stream, payload);
  seen_[self_].insert(next_seq_ - 1);
  net_.transmit(self_, frame, stream);
}

void FloodRouter::send_to(NodeId dest, BytesView payload,
                          energy::Stream stream) {
  if (dest == self_) {
    // Local delivery shortcut (no radio energy).
    if (client_ != nullptr) client_->on_deliver(self_, payload);
    return;
  }
  const SharedBytes frame = make_frame(dest, 0, stream, payload);
  seen_[self_].insert(next_seq_ - 1);
  net_.transmit_towards(self_, dest, frame, stream);
}

void FloodRouter::broadcast_on_edges(const std::vector<std::size_t>& edge_sel,
                                     BytesView payload,
                                     energy::Stream stream) {
  const SharedBytes frame = make_frame(kNoNode, 0, stream, payload);
  seen_[self_].insert(next_seq_ - 1);
  net_.transmit_on(self_, edge_sel, frame, stream);
}

void FloodRouter::on_packet(NodeId link_sender, const SharedBytes& frame) {
  NodeId origin;
  std::uint64_t seq;
  NodeId dest;
  std::uint8_t flags;
  std::uint8_t stream_raw;
  BytesView payload;
  try {
    Reader r(view_of(frame));
    origin = r.u32();
    seq = r.u64();
    dest = r.u32();
    flags = r.u8();
    stream_raw = r.u8();
    // Zero-copy: the payload stays a view into the shared frame, which
    // is alive for the duration of this call. This replaces an owned
    // copy made for every received packet, duplicates included.
    payload = r.raw_view(r.remaining());
    net_.note_copy_saved(payload.size());
  } catch (const SerdeError&) {
    return;  // malformed frame: drop
  }
  if (origin == self_) return;  // our own flood echoing back
  if (!seen_[origin].insert(seq)) return;  // duplicate
  const auto stream =
      stream_raw < energy::kNumStreams ? static_cast<energy::Stream>(stream_raw)
                                       : energy::Stream::kOther;

  // Forward first (Line 213's "broadcast once"), then deliver. The
  // forwarded copy keeps the originator's stream tag, so relay energy is
  // attributed to the stream that caused it.
  const bool forward = forwarding_ && (flags & kNoForward) == 0;
  if (forward && dest == kNoNode) {
    net_.transmit(self_, frame, stream);
  } else if (forward && dest != self_) {
    // Addressed frame: route along shrinking shortest-path distance.
    constexpr std::size_t kInf = static_cast<std::size_t>(-1);
    const std::size_t mine = net_.hops(self_, dest);
    const std::size_t theirs = net_.hops(link_sender, dest);
    if (mine != kInf && mine < theirs) {
      net_.transmit_towards(self_, dest, frame, stream);
    }
  }
  if (client_ != nullptr && (dest == kNoNode || dest == self_)) {
    client_->on_deliver(origin, payload);
  }
}

}  // namespace eesmr::net
