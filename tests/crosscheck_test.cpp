// Cross-validation: the Section-4 analytical ψ models against the
// discrete-event simulator's measured energies. The two were built
// independently (operation counting vs. event-by-event metering), so
// agreement on trends is strong evidence both are right.
#include <gtest/gtest.h>

#include "src/energy/analysis.hpp"
#include "src/harness/cluster.hpp"

namespace eesmr {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

double simulated_best_mj(Protocol p, std::size_t n, std::size_t f,
                         std::size_t k, std::size_t m) {
  ClusterConfig cfg;
  cfg.protocol = p;
  cfg.n = n;
  cfg.f = f;
  cfg.k = k;
  cfg.medium = energy::Medium::kBle;
  cfg.cmd_bytes = m;
  cfg.seed = 99;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(8, sim::seconds(600));
  EXPECT_GE(r.min_committed(), 8u);
  return r.energy_per_block_mj();
}

energy::SystemParams analysis_params(std::size_t n, std::size_t f,
                                     std::size_t k, std::size_t m) {
  energy::SystemParams x;
  x.n = n;
  x.f = f;
  x.k = k;
  x.m = m;
  x.comm = energy::CommMode::kKcastRing;
  x.node_medium = energy::Medium::kBle;
  x.scheme = crypto::SchemeId::kRsa1024;
  return x;
}

TEST(CrossCheck, EesmrSteadyStateWithinFactorTwoOfModel) {
  for (std::size_t k : {3u, 5u}) {
    const double sim = simulated_best_mj(Protocol::kEesmr, 10, k - 1, k, 64);
    const double model = energy::psi_eesmr(analysis_params(10, k - 1, k, 64)).best;
    EXPECT_GT(sim, model * 0.5) << "k=" << k;
    EXPECT_LT(sim, model * 2.0) << "k=" << k;
  }
}

TEST(CrossCheck, BothAgreeEesmrBeatsSyncHotStuff) {
  const std::size_t n = 9, f = 2, k = 3, m = 16;
  const double sim_ee = simulated_best_mj(Protocol::kEesmr, n, f, k, m);
  const double sim_shs = simulated_best_mj(Protocol::kSyncHotStuff, n, f, k, m);
  const auto x = analysis_params(n, f, k, m);
  const double model_ee = energy::psi_eesmr(x).best;
  const double model_shs = energy::psi_sync_hotstuff(x).best;
  EXPECT_LT(sim_ee, sim_shs);
  EXPECT_LT(model_ee, model_shs);
  // The winning margin should at least agree in "factor >= 2" terms.
  EXPECT_GT(sim_shs / sim_ee, 2.0);
  EXPECT_GT(model_shs / model_ee, 2.0);
}

TEST(CrossCheck, BothScaleLinearlyInK) {
  // Increments of per-block energy as k grows must be roughly constant
  // in both worlds.
  std::vector<double> sim, model;
  for (std::size_t k = 2; k <= 5; ++k) {
    sim.push_back(simulated_best_mj(Protocol::kEesmr, 12, k - 1, k, 16));
    model.push_back(energy::psi_eesmr(analysis_params(12, k - 1, k, 16)).best);
  }
  for (std::size_t i = 2; i < sim.size(); ++i) {
    const double sim_inc1 = sim[i - 1] - sim[i - 2];
    const double sim_inc2 = sim[i] - sim[i - 1];
    EXPECT_GT(sim_inc2, 0);
    EXPECT_NEAR(sim_inc2, sim_inc1, 0.8 * sim_inc1) << "sim step " << i;
    const double model_inc1 = model[i - 1] - model[i - 2];
    const double model_inc2 = model[i] - model[i - 1];
    EXPECT_NEAR(model_inc2, model_inc1, 0.8 * model_inc1)
        << "model step " << i;
  }
}

TEST(CrossCheck, ViewChangeSurchargeMatchesPsiVDirection) {
  // Both worlds: EESMR's view change costs more than Sync HotStuff's.
  ClusterConfig base;
  base.n = 9;
  base.f = 2;
  base.k = 3;
  base.medium = energy::Medium::kBle;
  base.cmd_bytes = 16;
  base.seed = 7;

  auto vc_cost = [&](Protocol p) {
    ClusterConfig honest_cfg = base;
    honest_cfg.protocol = p;
    Cluster honest(honest_cfg);
    const double honest_mj =
        honest.run_until_commits(6, sim::seconds(600)).total_energy_mj();
    ClusterConfig faulty_cfg = honest_cfg;
    faulty_cfg.faults = {{1, protocol::ByzantineMode::kCrash, 4}};
    Cluster faulty(faulty_cfg);
    const double faulty_mj =
        faulty.run_until_commits(6, sim::seconds(600)).total_energy_mj();
    return faulty_mj - honest_mj;
  };
  const double sim_ee = vc_cost(Protocol::kEesmr);
  const double sim_shs = vc_cost(Protocol::kSyncHotStuff);
  EXPECT_GT(sim_ee, sim_shs);

  const auto x = analysis_params(9, 2, 3, 16);
  EXPECT_GT(energy::psi_eesmr(x).view_change,
            energy::psi_sync_hotstuff(x).view_change);
}

}  // namespace
}  // namespace eesmr
