file(REMOVE_RECURSE
  "CMakeFiles/example_client_kv.dir/examples/client_kv.cpp.o"
  "CMakeFiles/example_client_kv.dir/examples/client_kv.cpp.o.d"
  "example_client_kv"
  "example_client_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_client_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
