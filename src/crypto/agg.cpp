#include "src/crypto/agg.hpp"

#include <stdexcept>

#include "src/common/serde.hpp"
#include "src/crypto/hmac.hpp"
#include "src/crypto/sha256.hpp"

namespace eesmr::crypto {

SignerBitset::SignerBitset(std::size_t n) : n_(n), bits_((n + 7) / 8, 0) {}

void SignerBitset::set(NodeId id) {
  if (id >= n_) throw std::out_of_range("SignerBitset::set: id out of range");
  bits_[id / 8] |= static_cast<std::uint8_t>(1u << (id % 8));
}

bool SignerBitset::test(NodeId id) const {
  if (id >= n_) return false;
  return (bits_[id / 8] >> (id % 8)) & 1u;
}

std::size_t SignerBitset::count() const {
  std::size_t c = 0;
  for (std::uint8_t b : bits_) {
    while (b != 0) {
      c += b & 1u;
      b >>= 1;
    }
  }
  return c;
}

std::vector<NodeId> SignerBitset::members() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < n_; ++id) {
    if (test(id)) out.push_back(id);
  }
  return out;
}

void SignerBitset::encode_into(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(n_));
  w.raw(bits_);
}

SignerBitset SignerBitset::decode_from(Reader& r) {
  const std::uint32_t n = r.u32();
  // Bound the universe by the bytes actually present before allocating:
  // a hostile 4G-node count must throw, not reserve half a gigabyte.
  const std::size_t nbytes = (static_cast<std::size_t>(n) + 7) / 8;
  if (nbytes > r.remaining()) {
    throw SerdeError("SignerBitset: truncated bit array");
  }
  SignerBitset s(n);
  Bytes raw = r.raw(nbytes);
  // Reject set bits at or beyond n so every logical set has exactly one
  // byte representation (signed content must be byte-identical).
  if (s.n_ % 8 != 0) {
    const std::uint8_t tail_mask =
        static_cast<std::uint8_t>(0xFFu << (s.n_ % 8));
    if (!raw.empty() && (raw.back() & tail_mask) != 0) {
      throw SerdeError("SignerBitset: bits beyond universe");
    }
  }
  s.bits_ = std::move(raw);
  return s;
}

namespace {

Bytes agg_node_secret(std::uint64_t seed, NodeId id) {
  Writer w;
  w.str("eesmr/agg-keyring/v1");
  w.u64(seed);
  w.u32(id);
  return sha256(w.buffer());
}

}  // namespace

std::shared_ptr<AggKeyring> AggKeyring::simulated(std::size_t n,
                                                  std::uint64_t seed) {
  auto kr = std::shared_ptr<AggKeyring>(new AggKeyring());
  kr->secrets_.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    kr->secrets_.push_back(agg_node_secret(seed, id));
  }
  return kr;
}

Bytes AggKeyring::share(NodeId id, BytesView msg) const {
  if (id >= secrets_.size()) {
    throw std::out_of_range("AggKeyring::share: id out of range");
  }
  // 48-byte share: HMAC(secret, msg) followed by the first 16 bytes of
  // its re-hash. Deterministic, bound to (node, msg), full wire width.
  const Sha256Digest mac = hmac_sha256(secrets_[id], msg);
  const Sha256Digest ext = Sha256::hash(mac);
  Bytes out(kAggSignatureBytes);
  std::copy(mac.begin(), mac.end(), out.begin());
  std::copy(ext.begin(), ext.begin() + 16, out.begin() + 32);
  return out;
}

bool AggKeyring::verify_share(NodeId id, BytesView msg, BytesView sig) const {
  if (id >= secrets_.size() || sig.size() != kAggSignatureBytes) return false;
  return mac_equal(share(id, msg), sig);
}

bool AggKeyring::verify_aggregate(const SignerBitset& signers, BytesView msg,
                                  BytesView agg) const {
  if (agg.size() != kAggSignatureBytes) return false;
  if (signers.count() == 0) return false;
  Bytes expect = empty_aggregate();
  for (NodeId id = 0; id < signers.size(); ++id) {
    if (!signers.test(id)) continue;
    if (id >= secrets_.size()) return false;
    fold_into(expect, share(id, msg));
  }
  return mac_equal(expect, agg);
}

Bytes AggKeyring::empty_aggregate() { return Bytes(kAggSignatureBytes, 0); }

void AggKeyring::fold_into(Bytes& acc, BytesView share) {
  if (acc.size() != kAggSignatureBytes || share.size() != kAggSignatureBytes) {
    throw std::invalid_argument("AggKeyring::fold_into: bad share size");
  }
  for (std::size_t i = 0; i < kAggSignatureBytes; ++i) acc[i] ^= share[i];
}

}  // namespace eesmr::crypto
