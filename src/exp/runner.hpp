// Deterministic-parallel run matrix executor.
//
// Independent simulations are embarrassingly parallel: each grid point
// builds its own harness::Cluster with its own single-threaded
// sim::Scheduler and its own seed (derived as a pure function of the
// base seed and the point's grid index, never of scheduling order).
// Workers pull point indices from an atomic counter and write each
// result into its own pre-allocated slot, so results always land in
// grid order and the assembled Report is byte-identical at any
// --threads N, including N=1 (which runs inline on the calling thread).
#pragma once

#include <cstdint>
#include <functional>

#include "src/exp/grid.hpp"
#include "src/exp/metrics.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace eesmr::exp {

/// Per-run observability artifacts: one slot per grid point, allocated
/// by the runner so writes land in grid order regardless of which
/// worker thread ran the point (the same slot trick the rows use — the
/// assembled exposition stays byte-identical at any --threads N).
struct RunArtifacts {
  obs::Registry registry;  ///< metric snapshot (--prom-out)
  obs::Tracer tracer;      ///< commit-path event trace (--trace-out)
};

/// Context handed to the run function of one grid point.
struct RunContext {
  std::size_t index = 0;            ///< flat grid-order index
  std::uint64_t seed = 0;           ///< sim::derive_seed(base_seed, index)
  bool smoke = false;               ///< --smoke: trimmed-down parameters
  const Grid* grid = nullptr;
  std::vector<std::size_t> axis;    ///< per-axis value indices
  /// This run's registry slot; null unless --prom-out was requested.
  /// Benches snapshot results here (exp::observe / run_steady(ctx,...)).
  obs::Registry* registry = nullptr;
  /// This run's tracer slot; null unless --trace-out was requested. Wire
  /// into ClusterConfig::tracer (exp::prepare does) to record the
  /// commit-path event stream.
  obs::Tracer* tracer = nullptr;
  /// --trace-requests: client requests to sample per run for flow-event
  /// causal tracing (exp::prepare wires it into the ClusterConfig).
  std::size_t trace_requests = 0;
  /// --workers: crypto pipeline workers per cluster (exp::prepare wires
  /// it into ClusterConfig::crypto_workers). Outputs are byte-identical
  /// at any value; only host wall-clock changes.
  std::size_t workers = 0;

  /// Value index of the named axis for this run.
  [[nodiscard]] std::size_t at(std::string_view axis_name) const {
    return axis.at(grid->axis_pos(axis_name));
  }
  [[nodiscard]] const std::string& label(std::string_view axis_name) const {
    const std::size_t a = grid->axis_pos(axis_name);
    return grid->axes()[a].labels[axis.at(a)];
  }
};

using RunFn = std::function<MetricRow(const RunContext&)>;

struct RunnerOptions {
  std::size_t threads = 1;    ///< worker threads (clamped to >= 1)
  std::uint64_t seed = 1;     ///< base seed; each run derives its own
  bool smoke = false;
  std::size_t trace_requests = 0;  ///< per-run sampled requests (flows)
  std::size_t workers = 0;    ///< crypto pipeline workers per cluster
  /// When non-null, resized to grid.size(); RunContext::registry /
  /// ::tracer point into slot i for run i (gated by the two flags). The
  /// runner also auto-registers every scalar metric column of each
  /// returned row into its slot registry (family eesmr_row_metric,
  /// label `column`), so even benches that never touch a Cluster expose
  /// their measurements.
  std::vector<RunArtifacts>* artifacts = nullptr;
  bool collect_registry = false;
  bool collect_trace = false;
};

/// Execute `fn` over every point of `grid` and return the rows in grid
/// order. Exceptions thrown by `fn` are captured and rethrown on the
/// calling thread after all workers drain.
std::vector<MetricRow> run_matrix(const Grid& grid, const RunFn& fn,
                                  const RunnerOptions& opts);

/// Default worker count for --threads when the flag is absent: the
/// hardware concurrency clamped to [1, 8].
std::size_t default_threads();

}  // namespace eesmr::exp
