// Figure 2f: total energy consumed by the correct nodes per SMR unit,
// EESMR vs Sync HotStuff, for k = 3 and k = 5, as n grows.
#include <algorithm>
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

int main(int argc, char** argv) {
  exp::Experiment ex("fig2f_total_energy",
                     "Fig. 2f (§5.6/§5.7, BLE k-cast ring)", argc, argv,
                     /*default_seed=*/18);

  std::vector<std::size_t> ns = {4, 5, 6, 7, 8, 9};
  if (ex.smoke()) ns = {4, 7};
  const std::vector<std::size_t> ks = {3, 5};
  const std::vector<Protocol> protocols = {Protocol::kEesmr,
                                           Protocol::kSyncHotStuff};
  const std::size_t blocks = ex.smoke() ? 4 : 8;

  exp::Grid grid;
  grid.axis_of("n", ns);
  grid.axis("protocol", {"EESMR", "SyncHS"});
  grid.axis_of("k", ks);

  exp::Report& rep = ex.run("total_energy", grid,
                            [&](const exp::RunContext& c) {
    const std::size_t n = ns[c.at("n")];
    const std::size_t k = ks[c.at("k")];
    exp::MetricRow row;
    if (k >= n) {
      // The §5.6 ring needs k < n; the cell is not applicable.
      row.skip("mj_per_block");
      return row;
    }
    ClusterConfig cfg;
    cfg.protocol = protocols[c.at("protocol")];
    cfg.n = n;
    cfg.f = std::min((n - 1) / 2, k - 1);
    cfg.k = k;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    cfg.seed = c.seed;
    const RunResult r = exp::run_steady(c, cfg, blocks);
    row.set("mj_per_block", r.energy_per_block_mj());
    row.set("run", exp::run_result_json(r));
    return row;
  });
  rep.print_table(0);

  ex.note("expected shape: EESMR's total grows ~linearly in n (each "
          "correct node adds a constant k-dependent cost; per-node energy "
          "is independent of n), while Sync HotStuff grows faster (vote "
          "floods and f+1-signature certificates); larger k raises both");
  return ex.finish();
}
