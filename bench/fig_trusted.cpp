// The trusted-component design point: what does a trusted monotonic
// counter buy at equal fault tolerance? MinBFT runs n = 2f+1 replicas
// (attested counters from src/trusted replace vote signatures and a
// third of the replicas), classic PBFT needs n = 3f+1, and EESMR —
// the paper's protocol — needs n = 2f+1 signature-free steady-state
// rounds under synchrony. All three run the same harness, clients and
// energy model at f = 1 across the Table-1 media; the kAttest energy
// category prices the enclave operations the MinBFT column depends on.
#include <cstdio>
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

namespace {

/// Sum one energy category over the correct, energy-counted replicas
/// (same accounting rule as RunResult::total_energy_mj).
double category_mj(const RunResult& r, energy::Category cat) {
  double total = 0;
  for (std::size_t i = 0; i < r.meters.size(); ++i) {
    if (i < r.correct.size() && r.correct[i] && i < r.counted.size() &&
        r.counted[i]) {
      total += r.meters[i].millijoules(cat);
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("fig_trusted",
                     "Trusted tier: MinBFT (n=2f+1, attested counters) vs "
                     "PBFT (n=3f+1) vs EESMR at equal f",
                     argc, argv, /*default_seed=*/29);

  const std::vector<energy::Medium> media = {
      energy::Medium::kBle, energy::Medium::k4gLte, energy::Medium::kWifi};
  const std::vector<Protocol> protocols = {Protocol::kEesmr, Protocol::kPbft,
                                           Protocol::kMinBft};
  const std::size_t blocks = ex.smoke() ? 6 : 24;

  exp::Grid grid;
  grid.axis("medium", {"BLE", "LTE", "WiFi"});
  grid.axis("protocol", {"EESMR", "PBFT", "MinBFT"});

  exp::Report& runs = ex.run("runs", grid, [&](const exp::RunContext& c) {
    const Protocol proto = protocols[c.at("protocol")];
    ClusterConfig cfg;
    cfg.protocol = proto;
    cfg.f = 1;
    cfg.n = proto == Protocol::kMinBft ? 3 : 4;  // 2f+1 vs 3f+1
    cfg.medium = media[c.at("medium")];
    cfg.cmd_bytes = 16;
    cfg.batch_size = 4;
    cfg.clients = 2;
    cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
    cfg.workload.outstanding = 4;
    cfg.seed = c.seed;
    const RunResult r = exp::run_steady(c, cfg, blocks);

    exp::MetricRow row;
    row.set("n", cfg.n);
    row.set("total_mj", r.total_energy_mj());
    row.set("mj_per_block", r.energy_per_block_mj());
    // The crypto trade: attestations replace protocol signatures.
    row.set("attest_mj", category_mj(r, energy::Category::kAttest));
    row.set("sign_mj", category_mj(r, energy::Category::kSign));
    row.set("verify_mj", category_mj(r, energy::Category::kVerify));
    // Per-stream radio energy: where each protocol spends its airtime.
    row.set("proposal_mj",
            r.stream_totals(energy::Stream::kProposal).total_mj());
    row.set("vote_mj", r.stream_totals(energy::Stream::kVote).total_mj());
    row.set("control_mj",
            r.stream_totals(energy::Stream::kControl).total_mj());
    row.set("bytes", r.bytes_transmitted);
    row.set("p50_ms", sim::to_milliseconds(r.latency.p50()));
    row.set("p99_ms", sim::to_milliseconds(r.latency.p99()));
    row.set("run", exp::run_result_json(r));
    return row;
  });
  runs.print_table(0);

  // Headline: at equal f, does dropping from 3f+1 to 2f+1 replicas pay
  // for the attestation energy? (It must: one replica's entire radio +
  // crypto budget vastly exceeds the per-message enclave surcharge.)
  const auto row_at = [&](std::size_t mi, std::size_t pi)
      -> const exp::MetricRow& { return runs.rows[mi * 3 + pi]; };
  exp::Report summary;
  summary.name = "summary";
  summary.grid.axis("medium", {"BLE", "LTE", "WiFi"});
  for (std::size_t mi = 0; mi < media.size(); ++mi) {
    const double eesmr = row_at(mi, 0).number("total_mj");
    const double pbft = row_at(mi, 1).number("total_mj");
    const double minbft = row_at(mi, 2).number("total_mj");
    exp::MetricRow row;
    row.set("pbft_over_minbft", minbft > 0 ? pbft / minbft : 0.0);
    row.set("pbft_over_eesmr", eesmr > 0 ? pbft / eesmr : 0.0);
    row.set("minbft_beats_pbft", minbft < pbft ? 1 : 0);
    summary.rows.push_back(std::move(row));
  }
  exp::Report& sm = ex.add_section(std::move(summary));
  sm.print_table(1);

  for (const exp::MetricRow& row : sm.rows) {
    if (row.number("minbft_beats_pbft") != 1) {
      std::fprintf(stderr,
                   "UNEXPECTED: MinBFT (n=2f+1) not cheaper than PBFT "
                   "(n=3f+1) on total energy\n");
    }
  }

  ex.note("expected shape: MinBFT's total energy sits below PBFT's at "
          "every medium (one replica fewer and f+1 instead of 2f+1 "
          "commit messages buy far more than the attestations cost); "
          "EESMR's signature-free steady state undercuts both; the "
          "attest_mj column is nonzero only for MinBFT");
  return ex.finish();
}
