file(REMOVE_RECURSE
  "CMakeFiles/dissemination_test.dir/tests/dissemination_test.cpp.o"
  "CMakeFiles/dissemination_test.dir/tests/dissemination_test.cpp.o.d"
  "dissemination_test"
  "dissemination_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dissemination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
