// Table 2: energy for signature generation and verification across the
// ECDSA curves, RSA moduli and HMAC the paper measured on the
// NUCLEO-F401RE. The calibrated model reproduces the table; the
// wall-clock column cross-checks the *ordering* with this repository's
// from-scratch implementations (see bench/micro_crypto for the full
// google-benchmark version).
#include <chrono>

#include "bench/bench_util.hpp"
#include "src/crypto/ecdsa.hpp"
#include "src/crypto/hmac.hpp"
#include "src/crypto/rsa.hpp"
#include "src/energy/cost_model.hpp"

using namespace eesmr;
using namespace eesmr::crypto;

namespace {

double ms_of(const std::function<void()>& fn, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() /
         iters;
}

}  // namespace

int main() {
  bench::header("Table 2 — signature scheme energy (J) + local wall-clock",
                "Table 2 (§5.5, public key primitives)");

  const Bytes msg = to_bytes(std::string("Table-2 measurement payload"));
  sim::Rng rng(2024);

  std::printf("%-18s | %9s %9s | %12s %12s\n", "Scheme", "Sign(J)",
              "Verify(J)", "impl sign ms", "impl vrfy ms");
  std::printf("-------------------+---------------------+--------------------------\n");

  for (SchemeId scheme : all_schemes()) {
    const SchemeInfo& info = scheme_info(scheme);
    double sign_ms = 0, verify_ms = 0;
    switch (scheme) {
      case SchemeId::kHmacSha256: {
        const Bytes key(64, 0x42);
        sign_ms = ms_of([&] { (void)hmac(key, msg); }, 200);
        verify_ms = sign_ms;
        break;
      }
      case SchemeId::kRsa1024:
      case SchemeId::kRsa1260:
      case SchemeId::kRsa2048: {
        const std::size_t bits = scheme == SchemeId::kRsa1024   ? 1024
                                 : scheme == SchemeId::kRsa1260 ? 1260
                                                                : 2048;
        const RsaKeyPair kp = rsa_generate(bits, rng);
        Bytes sig;
        sign_ms = ms_of([&] { sig = rsa_sign(kp.priv, msg); }, 3);
        verify_ms = ms_of([&] { (void)rsa_verify(kp.pub, msg, sig); }, 20);
        break;
      }
      default: {
        const CurveId curve =
            scheme == SchemeId::kEcdsaBp160r1     ? CurveId::kBrainpoolP160r1
            : scheme == SchemeId::kEcdsaBp256r1   ? CurveId::kBrainpoolP256r1
            : scheme == SchemeId::kEcdsaSecp192r1 ? CurveId::kSecp192r1
            : scheme == SchemeId::kEcdsaSecp192k1 ? CurveId::kSecp192k1
            : scheme == SchemeId::kEcdsaSecp224r1 ? CurveId::kSecp224r1
            : scheme == SchemeId::kEcdsaSecp256r1 ? CurveId::kSecp256r1
                                                  : CurveId::kSecp256k1;
        const EcdsaKeyPair kp = ecdsa_generate(curve, rng);
        Bytes sig;
        sign_ms = ms_of([&] { sig = ecdsa_sign(kp.priv, msg); }, 3);
        verify_ms = ms_of([&] { (void)ecdsa_verify(kp.pub, msg, sig); }, 3);
        break;
      }
    }
    std::printf("%-18s | %9.2f %9.2f | %12.3f %12.3f\n", info.name,
                energy::sign_energy_mj(scheme) / 1000.0,
                energy::verify_energy_mj(scheme) / 1000.0, sign_ms,
                verify_ms);
  }

  bench::note("expected shape: RSA verification is orders of magnitude "
              "cheaper than any ECDSA verification (the paper's reason for "
              "choosing RSA-1024: leader signs once, n replicas verify)");
  bench::note("the wall-clock columns use this repo's from-scratch bigint/"
              "EC code on the host CPU; the J columns are the paper's "
              "Cortex-M4 calibration used by the simulator");
  return 0;
}
