file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_media.dir/bench/table1_media.cpp.o"
  "CMakeFiles/bench_table1_media.dir/bench/table1_media.cpp.o.d"
  "bench_table1_media"
  "bench_table1_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
