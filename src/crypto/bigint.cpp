#include "src/crypto/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace eesmr::crypto {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
constexpr std::uint64_t kMask = 0xffffffffull;
}  // namespace

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v & kMask));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

BigInt BigInt::from_bytes_be(BytesView data) {
  BigInt out;
  out.limbs_.assign((data.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Byte i (from the most significant end) lands at bit offset
    // 8*(data.size()-1-i) from the least significant end.
    const std::size_t shift = 8 * (data.size() - 1 - i);
    out.limbs_[shift / 32] |= static_cast<std::uint32_t>(data[i])
                              << (shift % 32);
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  const std::size_t n_bytes = (bit_length() + 7) / 8;
  const std::size_t len = std::max(n_bytes, std::max<std::size_t>(min_len, 1));
  Bytes out(len, 0);
  for (std::size_t i = 0; i < n_bytes; ++i) {
    const std::size_t shift = 8 * i;
    out[len - 1 - i] =
        static_cast<std::uint8_t>(limbs_[shift / 32] >> (shift % 32));
  }
  return out;
}

BigInt BigInt::from_hex(const std::string& hex) {
  BigInt out;
  if (hex.empty()) return out;
  out.limbs_.assign((hex.size() * 4 + 31) / 32, 0);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const char c = hex[hex.size() - 1 - i];
    std::uint32_t v;
    if (c >= '0' && c <= '9') {
      v = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("BigInt::from_hex: bad character");
    }
    out.limbs_[i / 8] |= v << (4 * (i % 8));
  }
  out.trim();
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      s.push_back(kDigits[(limbs_[i] >> (4 * nib)) & 0xf]);
    }
  }
  const std::size_t first = s.find_first_not_of('0');
  return s.substr(first);
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  BigInt v = *this;
  const BigInt ten(10);
  std::string s;
  while (!v.is_zero()) {
    auto [q, r] = divmod(v, ten);
    s.push_back(static_cast<char>('0' + r.low_u64()));
    v = std::move(q);
  }
  std::reverse(s.begin(), s.end());
  return s;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigInt::low_u64() const {
  std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum & kMask);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  if (a.compare(b) < 0) {
    throw std::underflow_error("BigInt: subtraction underflow");
  }
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  assert(borrow == 0);
  out.trim();
  return out;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.is_zero() || b.is_zero()) return out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + ai * b.limbs_[j] +
          carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur & kMask);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<std::uint32_t>(carry);
  }
  out.trim();
  return out;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& u, const BigInt& v) {
  if (v.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (u.compare(v) < 0) return {BigInt{}, u};

  // Fast path: single-limb divisor.
  if (v.limbs_.size() == 1) {
    const std::uint64_t d = v.limbs_[0];
    BigInt q;
    q.limbs_.resize(u.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = u.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | u.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {std::move(q), BigInt(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D, with 32-bit digits.
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;
  const int shift = std::countl_zero(v.limbs_.back());

  // Normalized copies: vn has top bit of top limb set; un gains one limb.
  std::vector<std::uint32_t> vn(n);
  for (std::size_t i = n; i-- > 1;) {
    vn[i] = (shift == 0)
                ? v.limbs_[i]
                : (v.limbs_[i] << shift) | (v.limbs_[i - 1] >> (32 - shift));
  }
  vn[0] = v.limbs_[0] << shift;

  std::vector<std::uint32_t> un(u.limbs_.size() + 1);
  un[u.limbs_.size()] =
      (shift == 0) ? 0 : (u.limbs_.back() >> (32 - shift));
  for (std::size_t i = u.limbs_.size(); i-- > 1;) {
    un[i] = (shift == 0)
                ? u.limbs_[i]
                : (u.limbs_[i] << shift) | (u.limbs_[i - 1] >> (32 - shift));
  }
  un[0] = u.limbs_[0] << shift;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q̂ from the top two dividend digits and top divisor digit.
    const std::uint64_t num =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = num / vn[n - 1];
    std::uint64_t rhat = num % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply and subtract: un[j..j+n] -= qhat * vn.
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i];
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) - borrow -
                             static_cast<std::int64_t>(p & kMask);
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = static_cast<std::int64_t>(p >> 32) - (t >> 32);
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // q̂ was one too large: add the divisor back.
      --qhat;
      std::uint64_t carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry;
        un[i + j] = static_cast<std::uint32_t>(sum & kMask);
        carry = sum >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + carry);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  // Denormalize the remainder.
  BigInt r;
  r.limbs_.resize(n, 0);
  for (std::size_t i = 0; i < n - 1; ++i) {
    r.limbs_[i] = (shift == 0)
                      ? un[i]
                      : (un[i] >> shift) | (un[i + 1] << (32 - shift));
  }
  r.limbs_[n - 1] = un[n - 1] >> shift;
  r.trim();
  return {std::move(q), std::move(r)};
}

BigInt BigInt::shl(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v & kMask);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::shr(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt{};
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v & kMask);
  }
  out.trim();
  return out;
}

BigInt BigInt::mod_add(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = a + b;
  if (s.compare(m) >= 0) s = s % m;
  return s;
}

BigInt BigInt::mod_sub(const BigInt& a, const BigInt& b, const BigInt& m) {
  if (a.compare(b) >= 0) return a - b;
  return (a + m) - b;
}

BigInt BigInt::mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b) % m;
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp,
                       const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("BigInt::mod_exp: zero modulus");
  if (m.is_one()) return BigInt{};
  BigInt result(1);
  BigInt b = base % m;
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = 0; i < nbits; ++i) {
    if (exp.bit(i)) result = mod_mul(result, b, m);
    if (i + 1 < nbits) b = mod_mul(b, b, m);
  }
  return result;
}

std::optional<BigInt> BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  if (m.is_zero() || m.is_one()) return std::nullopt;
  // Extended Euclid with sign-tracked Bezout coefficient for a.
  BigInt r0 = m;
  BigInt r1 = a % m;
  if (r1.is_zero()) return std::nullopt;
  BigInt t0;          // coefficient of a for r0
  bool t0_neg = false;
  BigInt t1(1);       // coefficient of a for r1
  bool t1_neg = false;

  while (!r1.is_zero()) {
    auto [q, r2] = divmod(r0, r1);
    // t2 = t0 - q * t1 in signed arithmetic.
    const BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0.compare(qt1) >= 0) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      // Opposite signs: magnitudes add, sign of t0 wins.
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!r0.is_one()) return std::nullopt;  // not coprime
  BigInt inv = t0 % m;
  if (t0_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::random_bits(sim::Rng& rng, std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("random_bits: bits must be >= 1");
  BigInt out;
  out.limbs_.assign((bits + 31) / 32, 0);
  for (auto& l : out.limbs_) l = static_cast<std::uint32_t>(rng.next());
  // Clear excess high bits, then force the top bit so the bit length is
  // exactly `bits`.
  const std::size_t top = (bits - 1) % 32;
  out.limbs_.back() &= (top == 31) ? 0xffffffffu : ((1u << (top + 1)) - 1);
  out.limbs_.back() |= 1u << top;
  out.trim();
  return out;
}

BigInt BigInt::random_below(sim::Rng& rng, const BigInt& bound) {
  if (bound.is_zero()) {
    throw std::invalid_argument("random_below: zero bound");
  }
  const std::size_t bits = bound.bit_length();
  // Rejection sampling over the enclosing power of two.
  for (;;) {
    BigInt candidate;
    candidate.limbs_.assign((bits + 31) / 32, 0);
    for (auto& l : candidate.limbs_) {
      l = static_cast<std::uint32_t>(rng.next());
    }
    const std::size_t top = (bits - 1) % 32;
    candidate.limbs_.back() &=
        (top == 31) ? 0xffffffffu : ((1u << (top + 1)) - 1);
    candidate.trim();
    if (candidate.compare(bound) < 0) return candidate;
  }
}

BigInt BigInt::random_unit(sim::Rng& rng, const BigInt& bound) {
  for (;;) {
    BigInt v = random_below(rng, bound);
    if (!v.is_zero()) return v;
  }
}

}  // namespace eesmr::crypto
