// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for block hashing, HMAC, PKCS#1 v1.5 digests and ECDSA message
// digests. Verified against the NIST example vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.hpp"

namespace eesmr::crypto {

/// 32-byte digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalizes and returns the digest. The context must be reset() before
  /// reuse.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

/// Digest as an owned byte buffer (for serde and signatures).
Bytes sha256(BytesView data);

}  // namespace eesmr::crypto
