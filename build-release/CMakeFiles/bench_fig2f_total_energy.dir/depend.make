# Empty dependencies file for bench_fig2f_total_energy.
# This may be replaced when dependencies are built.
