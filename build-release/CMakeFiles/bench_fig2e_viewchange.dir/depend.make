# Empty dependencies file for bench_fig2e_viewchange.
# This may be replaced when dependencies are built.
