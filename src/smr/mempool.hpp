// Pending-command pool (the paper's txpool).
//
// Two modes:
//  * explicit: tests/examples submit concrete commands;
//  * synthetic workload: under the standard throughput assumption
//    ("clients always have pending requests"), next_batch() fabricates
//    deterministic commands of a configured size when the queue is empty.
//
// Duplicate suppression: a re-submit of a command still in the queue is
// dropped, and a tagged client request that already committed is
// dropped forever — its (client, req_id) names one operation, so a
// retransmit must not be ordered twice. Identical untagged bytes
// re-submitted after commit are a new operation and stay orderable.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/smr/block.hpp"

namespace eesmr::smr {

class Mempool {
 public:
  /// `synthetic_cmd_bytes` > 0 enables the synthetic workload; each
  /// fabricated command has exactly that many bytes. `capacity` bounds
  /// the pending queue (0 = unbounded): admission control so open-loop
  /// overload sheds load instead of queueing without limit.
  explicit Mempool(std::size_t synthetic_cmd_bytes = 0,
                   std::size_t capacity = 0)
      : synthetic_bytes_(synthetic_cmd_bytes), capacity_(capacity) {}

  /// Queue a command. Returns false (and drops it) when the identical
  /// command is already pending, is a tagged client request that already
  /// committed, or the queue is at capacity (counted in dropped()).
  bool submit(Command cmd);
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Fresh commands rejected because the queue was full (duplicates are
  /// not drops — the command is already queued or committed).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Up to `max_cmds` commands for the next proposal. Commands are not
  /// removed until committed (a failed view may need to re-propose them),
  /// but repeated calls rotate through the queue.
  std::vector<Command> next_batch(std::size_t max_cmds);

  /// Drop commands that appear in a committed block (§3 "on committing a
  /// block, remove the commands in the block from the txpool").
  void remove_committed(const Block& block);

  /// Low-water-mark GC (checkpoint subsystem): forget one committed
  /// tagged-request key. Requests below the checkpoint stay deduplicated
  /// via the replica's per-client watermarks, so the key set no longer
  /// needs to remember them.
  void forget_committed(const Bytes& cmd_bytes) {
    committed_keys_.erase(to_string(cmd_bytes));
  }
  [[nodiscard]] std::size_t committed_keys() const {
    return committed_keys_.size();
  }

  [[nodiscard]] std::uint64_t synthesized() const { return synth_counter_; }

  /// Queued-but-uncommitted tagged requests of one client. The replica's
  /// per-client admission cap checks this BEFORE paying for signature
  /// verification: it reflects actual pool contents, so commits of
  /// copies this replica never pooled cannot skew it.
  [[nodiscard]] std::size_t client_pending(NodeId client) const {
    const auto it = client_pending_.find(client);
    return it == client_pending_.end() ? 0 : it->second;
  }

 private:
  std::size_t synthetic_bytes_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::map<NodeId, std::size_t> client_pending_;
  std::deque<Command> queue_;
  /// Commands currently in queue_ (dedup on submit).
  std::set<std::string> pending_keys_;
  /// Committed tagged client requests (rejects late retransmits).
  std::set<std::string> committed_keys_;
  std::uint64_t synth_counter_ = 0;
};

}  // namespace eesmr::smr
