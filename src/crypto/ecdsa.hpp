// ECDSA over the Table-2 curves, with deterministic nonces.
//
// The nonce k is derived with HMAC-SHA256(d, digest || counter) reduced
// mod n (an RFC 6979-inspired construction: deterministic, so signing is
// reproducible in simulation and never reuses k across distinct digests).
#pragma once

#include "src/common/bytes.hpp"
#include "src/crypto/ec.hpp"
#include "src/sim/rng.hpp"

namespace eesmr::crypto {

struct EcdsaPublicKey {
  CurveId curve;
  AffinePoint q;  ///< Q = d·G
};

struct EcdsaPrivateKey {
  CurveId curve;
  BigInt d;  ///< in [1, n-1]
};

struct EcdsaKeyPair {
  EcdsaPrivateKey priv;
  EcdsaPublicKey pub;
};

/// Generate a key pair on the given curve (deterministic given the RNG).
EcdsaKeyPair ecdsa_generate(CurveId curve, sim::Rng& rng);

/// Sign SHA-256(msg). Signature is r || s, each padded to the field size.
Bytes ecdsa_sign(const EcdsaPrivateKey& key, BytesView msg);

/// Verify an r || s signature over SHA-256(msg).
bool ecdsa_verify(const EcdsaPublicKey& key, BytesView msg, BytesView sig);

}  // namespace eesmr::crypto
