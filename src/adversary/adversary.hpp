// Scripted, composable fault injection between replicas/clients and the
// channel/network stack (the subsystem the conformance matrix and
// bench/fig_byzantine drive):
//
//  * NetAdversary    — AdversarySpec::LinkFault rules installed on
//                      net::Network: per-link/per-stream drop, delay,
//                      duplication and reordering with a deterministic
//                      schedule derived from the run seed.
//  * WithholdFilter  — Byzantine per-stream withholding installed as a
//                      smr::OutboundPolicy (selective dissemination per
//                      traffic class; vote suppression is the kVote
//                      instance).
//  * ByzantineClient — garbage-signature floods and req_id replay
//                      against the replica dedup/admission path.
//  * AttackKind      — the named protocol×attack conformance cells:
//                      apply_attack() turns a kind into the FaultSpec /
//                      AdversarySpec edits for an SMR ClusterConfig, and
//                      run_dolev_strong_attack() maps the same kinds
//                      onto the Dolev-Strong BA driver.
//
// Crash/recover schedules (AdversarySpec::crashes) need no class here:
// the Cluster turns them into scheduler events over the existing
// set_online machinery, generalizing late_starts.
#pragma once

#include <memory>
#include <vector>

#include "src/adversary/spec.hpp"
#include "src/baselines/dolev_strong.hpp"
#include "src/harness/cluster.hpp"
#include "src/net/flood.hpp"
#include "src/net/network.hpp"
#include "src/sim/rng.hpp"
#include "src/smr/replica.hpp"

namespace eesmr::adversary {

/// Network-level fault injection: evaluates the first matching LinkFault
/// rule per delivery. All randomness comes from one Rng seeded from the
/// run seed; within a run the scheduler is deterministic, so the fault
/// schedule is a pure function of (spec, seed, traffic).
class NetAdversary final : public net::FaultInjector {
 public:
  NetAdversary(std::vector<AdversarySpec::LinkFault> rules,
               sim::Scheduler& sched, std::uint64_t seed);

  net::FaultVerdict on_delivery(NodeId from, NodeId to,
                                energy::Stream stream,
                                std::size_t bytes) override;

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }

  /// Emit an instant event per injected fault (not owned; nullptr off).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void trace_fault(const char* what, NodeId from, NodeId to);

  std::vector<AdversarySpec::LinkFault> rules_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

/// Byzantine outbound filter for one replica: suppresses outgoing
/// messages whose type's stream matches a Withhold rule.
class WithholdFilter final : public smr::OutboundPolicy {
 public:
  WithholdFilter(std::vector<AdversarySpec::Withhold> rules,
                 sim::Scheduler& sched, std::uint64_t seed);

  [[nodiscard]] bool allow(const smr::Msg& m, NodeId dest) override;

  [[nodiscard]] std::uint64_t withheld() const { return withheld_; }

 private:
  std::vector<AdversarySpec::Withhold> rules_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  std::uint64_t withheld_ = 0;
};

/// Byzantine client node (a non-relay leaf like honest clients): floods
/// kRequest messages per its AdversarySpec::ByzClient script and ignores
/// every reply.
class ByzantineClient final : public net::FloodClient {
 public:
  ByzantineClient(net::Network& net, NodeId id,
                  std::shared_ptr<crypto::Keyring> keyring,
                  AdversarySpec::ByzClient spec, std::uint64_t seed,
                  energy::Meter* meter);

  void start();
  void on_deliver(NodeId, BytesView) override {}  // replies are ignored

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  /// Still inside the scripted flood budget (0 = floods forever).
  [[nodiscard]] bool budget_left() const {
    return spec_.max_requests == 0 || sent_ < spec_.max_requests;
  }

 private:
  void fire();
  [[nodiscard]] Bytes next_request();

  net::FloodRouter router_;
  sim::Scheduler& sched_;
  NodeId id_;
  std::shared_ptr<crypto::Keyring> keyring_;
  AdversarySpec::ByzClient spec_;
  sim::Rng rng_;
  energy::Meter* meter_;
  Bytes replay_wire_;  ///< kReplayFlood: the one signed request
  std::uint64_t next_req_id_ = 1;
  std::uint64_t sent_ = 0;
};

// ---------------------------------------------------------------------------
// The protocol × attack conformance matrix
// ---------------------------------------------------------------------------

/// Named attack scenarios, each applied at the protocol's fault budget
/// (f Byzantine nodes — except kOverBudgetCrash, which deliberately
/// crashes n-1 replicas to pin the tolerance boundary).
enum class AttackKind {
  kNone,
  kCrash,                ///< f replicas stop mid-run (no-progress VC)
  kCrashRecover,         ///< f replicas crash, then recover and catch up
  kOverBudgetCrash,      ///< n-1 replicas crash: liveness MUST fail
  kEquivocate,           ///< divergent proposals flooded to everyone
  kEquivocateSelective,  ///< divergent proposals to disjoint peer subsets
  kWithholdProposals,    ///< f replicas suppress their proposal stream
  kVoteSuppression,      ///< f replicas suppress their vote stream
  kDupReorder,           ///< every link duplicates + reorders (within Δ)
  kFaultyLinkDrop,       ///< 50% loss on everything f faulty nodes send
  kGarbageClientFlood,   ///< invalid-signature request flood
  kReplayClientFlood,    ///< (client, req_id) replay flood
  kChaseLeader,          ///< adaptive crash following the current leader
  kMembershipChurn,      ///< Byzantine equivocation straddling a policy
                         ///< handoff + a joiner crashed mid-bootstrap
};

const char* attack_name(AttackKind a);
const std::vector<AttackKind>& all_attacks();

/// Edit `cfg` so one run executes `attack` at cfg.f Byzantine nodes.
/// Faulty replicas are 1..f: leader_of(view) = view % n makes node 1
/// the view-1 leader, so leader-centric attacks bite immediately.
void apply_attack(harness::ClusterConfig& cfg, AttackKind attack);

/// Documented tolerance: whether `protocol` claims liveness under
/// `attack` at its fault budget. Safety is claimed by every protocol
/// under every attack here — that column is asserted unconditionally.
bool expect_liveness(harness::Protocol protocol, AttackKind attack);

/// One Dolev-Strong BA cell of the matrix: maps `attack` onto the
/// sender/relay/network faults meaningful for broadcast agreement.
struct DolevStrongVerdict {
  bool agreement = false;   ///< all honest decisions identical (safety)
  bool terminated = false;  ///< every honest node decided by round f+1
  std::uint64_t transmissions = 0;
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
};
DolevStrongVerdict run_dolev_strong_attack(std::size_t n, std::size_t f,
                                           AttackKind attack,
                                           std::uint64_t seed);

}  // namespace eesmr::adversary
