#include "src/crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "src/common/hex.hpp"

namespace eesmr::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes(std::string("Hi There"));
  EXPECT_EQ(hex_encode(hmac(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes key = to_bytes(std::string("Jefe"));
  const Bytes data = to_bytes(std::string("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(hmac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_encode(hmac(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Bytes data = to_bytes(
      std::string("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_encode(hmac(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes msg = to_bytes(std::string("message"));
  EXPECT_NE(hmac(to_bytes(std::string("k1")), msg),
            hmac(to_bytes(std::string("k2")), msg));
}

TEST(Hmac, MacEqualRejectsLengthMismatch) {
  EXPECT_FALSE(mac_equal(Bytes{1, 2, 3}, Bytes{1, 2}));
  EXPECT_TRUE(mac_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(mac_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
}

}  // namespace
}  // namespace eesmr::crypto
