#include <gtest/gtest.h>

#include "src/energy/cost_model.hpp"
#include "src/energy/meter.hpp"
#include "src/harness/cluster.hpp"

namespace eesmr::energy {
namespace {

// -- Meter --------------------------------------------------------------------

TEST(Meter, AccumulatesPerCategory) {
  Meter m;
  m.charge(Category::kSign, 400.0);
  m.charge(Category::kSign, 400.0);
  m.charge(Category::kVerify, 20.0);
  EXPECT_DOUBLE_EQ(m.millijoules(Category::kSign), 800.0);
  EXPECT_DOUBLE_EQ(m.millijoules(Category::kVerify), 20.0);
  EXPECT_DOUBLE_EQ(m.total_millijoules(), 820.0);
  EXPECT_EQ(m.ops(Category::kSign), 2u);
}

TEST(Meter, TracksBytes) {
  Meter m;
  m.charge_send(1.0, 100);
  m.charge_recv(2.0, 300);
  EXPECT_EQ(m.bytes_sent(), 100u);
  EXPECT_EQ(m.bytes_received(), 300u);
  EXPECT_EQ(m.messages_sent(), 1u);
}

TEST(Meter, RejectsNegativeCharge) {
  Meter m;
  EXPECT_THROW(m.charge(Category::kHash, -1.0), std::invalid_argument);
}

TEST(Meter, SumAndReset) {
  Meter a, b;
  a.charge(Category::kSend, 5);
  b.charge(Category::kSend, 7);
  b.charge(Category::kHash, 1);
  a += b;
  EXPECT_DOUBLE_EQ(a.total_millijoules(), 13.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.total_millijoules(), 0.0);
  EXPECT_EQ(a.ops(Category::kSend), 0u);
}

TEST(Meter, PerStreamAttribution) {
  Meter m;
  m.charge_send(1.5, 100, Stream::kProposal);
  m.charge_send(2.0, 50, Stream::kProposal);
  m.charge_recv(0.5, 80, Stream::kVote);
  m.charge_send(4.0, 10);  // untagged -> kOther
  EXPECT_DOUBLE_EQ(m.stream(Stream::kProposal).send_mj, 3.5);
  EXPECT_EQ(m.stream(Stream::kProposal).transmissions, 2u);
  EXPECT_EQ(m.stream(Stream::kProposal).bytes_sent, 150u);
  EXPECT_DOUBLE_EQ(m.stream(Stream::kVote).recv_mj, 0.5);
  EXPECT_EQ(m.stream(Stream::kVote).bytes_received, 80u);
  EXPECT_DOUBLE_EQ(m.stream(Stream::kOther).send_mj, 4.0);
  // Category totals are the sum over streams.
  EXPECT_DOUBLE_EQ(m.millijoules(Category::kSend), 7.5);
  EXPECT_EQ(m.bytes_sent(), 160u);
}

TEST(Meter, StreamsSumAndReset) {
  Meter a, b;
  a.charge_send(1.0, 10, Stream::kRequest);
  b.charge_send(2.0, 20, Stream::kRequest);
  b.charge_recv(3.0, 30, Stream::kReply);
  a += b;
  EXPECT_DOUBLE_EQ(a.stream(Stream::kRequest).send_mj, 3.0);
  EXPECT_EQ(a.stream(Stream::kRequest).bytes_sent, 30u);
  EXPECT_DOUBLE_EQ(a.stream(Stream::kReply).recv_mj, 3.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.stream(Stream::kRequest).send_mj, 0.0);
  EXPECT_EQ(a.stream(Stream::kRequest).transmissions, 0u);
}

// -- Table 1 ------------------------------------------------------------------

TEST(CostModel, Table1ExactAtSamplePoints) {
  // The bench must reproduce Table 1 exactly at the measured sizes.
  EXPECT_DOUBLE_EQ(send_energy_mj(Medium::kBle, 256), 0.73);
  EXPECT_DOUBLE_EQ(recv_energy_mj(Medium::kBle, 512), 1.11);
  EXPECT_DOUBLE_EQ(multicast_energy_mj(Medium::kBle, 2048), 4.70);
  EXPECT_DOUBLE_EQ(send_energy_mj(Medium::k4gLte, 1024), 1979.36);
  EXPECT_DOUBLE_EQ(recv_energy_mj(Medium::k4gLte, 256), 69.54);
  EXPECT_DOUBLE_EQ(send_energy_mj(Medium::kWifi, 2048), 610.55);
  EXPECT_DOUBLE_EQ(recv_energy_mj(Medium::kWifi, 1024), 231.52);
}

TEST(CostModel, MediaOrderingMatchesPaper) {
  // BLE is ~2 orders below WiFi, ~3 below 4G (paper §5.4).
  for (std::size_t sz : {256u, 512u, 1024u, 2048u}) {
    EXPECT_LT(send_energy_mj(Medium::kBle, sz) * 50,
              send_energy_mj(Medium::kWifi, sz));
    EXPECT_LT(send_energy_mj(Medium::kWifi, sz),
              send_energy_mj(Medium::k4gLte, sz));
  }
}

TEST(CostModel, InterpolationMonotonic) {
  for (auto m : {Medium::kBle, Medium::k4gLte, Medium::kWifi}) {
    double prev = 0;
    for (std::size_t sz = 64; sz <= 8192; sz += 64) {
      const double cur = send_energy_mj(m, sz);
      EXPECT_GT(cur, prev) << medium_name(m) << " at " << sz;
      prev = cur;
    }
  }
}

TEST(CostModel, ExtrapolationBeyondTable) {
  // 4 kB extrapolates the last segment: about double the 2 kB cost.
  const double e4k = send_energy_mj(Medium::kBle, 4096);
  EXPECT_NEAR(e4k, 2 * send_energy_mj(Medium::kBle, 2048), 0.7);
}

// -- Table 2 ------------------------------------------------------------------

TEST(CostModel, Table2Values) {
  using crypto::SchemeId;
  EXPECT_DOUBLE_EQ(sign_energy_mj(SchemeId::kRsa1024), 400.0);
  EXPECT_DOUBLE_EQ(verify_energy_mj(SchemeId::kRsa1024), 20.0);
  EXPECT_DOUBLE_EQ(sign_energy_mj(SchemeId::kEcdsaBp160r1), 5800.0);
  EXPECT_DOUBLE_EQ(verify_energy_mj(SchemeId::kEcdsaBp160r1), 11030.0);
  EXPECT_DOUBLE_EQ(sign_energy_mj(SchemeId::kHmacSha256), 190.0);
}

TEST(CostModel, RsaVerifyCheapestAsymmetric) {
  using crypto::SchemeId;
  // §5.5: verification-efficient RSA beats every ECDSA curve on verify.
  for (auto s : {SchemeId::kEcdsaSecp192r1, SchemeId::kEcdsaSecp256r1,
                 SchemeId::kEcdsaBp160r1, SchemeId::kEcdsaSecp256k1}) {
    EXPECT_LT(verify_energy_mj(SchemeId::kRsa1024), verify_energy_mj(s));
  }
}

TEST(CostModel, HashEnergyLinearInSize) {
  const double h1 = hash_energy_mj(64);
  const double h2 = hash_energy_mj(64 * 100);
  EXPECT_GT(h2, h1 * 50);
  EXPECT_LT(h2, h1 * 110);
  // Paper: HMAC over short input costs 0.19 J.
  EXPECT_NEAR(mac_energy_mj(32), 190.0, 1.0);
}

// -- BLE k-cast model (Fig 2a calibration) -------------------------------------

TEST(BleModel, PacketFragmentation) {
  EXPECT_EQ(ble_adv_packets(0), 1u);
  EXPECT_EQ(ble_adv_packets(1), 1u);
  EXPECT_EQ(ble_adv_packets(25), 1u);
  EXPECT_EQ(ble_adv_packets(26), 2u);
  EXPECT_EQ(ble_adv_packets(500), 20u);
}

TEST(BleModel, PaperCalibrationPoint) {
  // §5.4: 99.99 % reliable k = 7 k-cast of a 25-byte message costs
  // 5.3 mJ at the sender and 9.98 mJ at the receiver.
  const std::size_t r = kcast_redundancy_for(25, 7, 0.9999);
  EXPECT_EQ(r, 10u);
  EXPECT_NEAR(kcast_send_energy_mj(25, r), 5.3, 1e-9);
  EXPECT_NEAR(kcast_recv_energy_mj(25, r), 9.98, 1e-9);
}

TEST(BleModel, FailureDecaysExponentiallyWithRedundancy) {
  double prev_fail = 1.0;
  for (std::size_t r = 1; r <= 10; ++r) {
    const double fail = 1.0 - kcast_success_probability(25, 3, r);
    EXPECT_LT(fail, prev_fail);
    // Roughly geometric decay with ratio ~ loss probability.
    if (r > 1) {
      EXPECT_LT(fail, prev_fail * 0.6);
    }
    prev_fail = fail;
  }
}

TEST(BleModel, FailureGrowsWithK) {
  for (std::size_t r = 2; r <= 6; ++r) {
    const double f1 = 1.0 - kcast_success_probability(25, 1, r);
    const double f3 = 1.0 - kcast_success_probability(25, 3, r);
    const double f7 = 1.0 - kcast_success_probability(25, 7, r);
    EXPECT_LT(f1, f3);
    EXPECT_LT(f3, f7);
  }
}

TEST(BleModel, ReliabilityTargetNeedsMoreRedundancyForLargerK) {
  EXPECT_LE(kcast_redundancy_for(25, 1, 0.9999),
            kcast_redundancy_for(25, 7, 0.9999));
}

TEST(BleModel, ZeroRedundancyNeverSucceeds) {
  EXPECT_DOUBLE_EQ(kcast_success_probability(25, 3, 0), 0.0);
}

// -- GATT unicast vs k-cast (Fig 2b shape) -------------------------------------

TEST(BleModel, UnicastBeatsKcastForSingleDestination) {
  const std::size_t r = kcast_redundancy_for(100, 7, 0.9999);
  EXPECT_LT(gatt_send_energy_mj(100), kcast_send_energy_mj(100, r));
}

TEST(BleModel, KcastBeatsSevenUnicastsAtModeratePayloads) {
  for (std::size_t bytes : {50u, 100u, 200u, 500u}) {
    const std::size_t r = kcast_redundancy_for(bytes, 7, 0.9999);
    EXPECT_LT(kcast_send_energy_mj(bytes, r), 7 * gatt_send_energy_mj(bytes))
        << bytes;
  }
}

TEST(BleModel, UnicastWinsEventuallyForHugePayloads) {
  // The per-byte slope of 7 GATT links is smaller than the k-cast's, so
  // unicasts overtake for large payloads (Fig 2b discussion).
  const std::size_t big = 4000;
  const std::size_t r = kcast_redundancy_for(big, 7, 0.9999);
  EXPECT_GT(kcast_send_energy_mj(big, r), 7 * gatt_send_energy_mj(big));
}

// -- verified-bytes cache -------------------------------------------------------

TEST(VerifiedCache, HalvesHonestPathRequestVerifications) {
  // Honest-path requests used to pay two metered signature checks per
  // replica: pool time (handle_request) and commit time. The
  // verified-bytes cache skips the commit-time re-check for bytes the
  // replica already verified at pool time. The cache changes no message
  // traffic, so the two runs are event-identical and the kVerify op
  // delta isolates exactly the skipped re-verifications: one per
  // request per replica (i.e. the request share of kVerify halves).
  harness::ClusterConfig base;
  base.protocol = harness::Protocol::kEesmr;
  base.n = 4;
  base.f = 1;
  base.seed = 17;
  base.clients = 2;
  base.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  base.workload.outstanding = 1;
  base.workload.max_requests = 10;

  const auto run = [](harness::ClusterConfig cfg) {
    harness::Cluster cluster(cfg);
    harness::RunResult r =
        cluster.run_until_accepted(20, sim::seconds(1000));
    // Quiesce so every replica finishes committing the tail requests.
    return cluster.run_for(sim::seconds(2));
  };
  harness::ClusterConfig with = base;
  with.verified_cache = true;
  harness::ClusterConfig without = base;
  without.verified_cache = false;
  const harness::RunResult a = run(with);
  const harness::RunResult b = run(without);
  ASSERT_EQ(a.requests_accepted, 20u);
  ASSERT_EQ(b.requests_accepted, 20u);

  const auto verify_ops = [&](const harness::RunResult& r) {
    std::uint64_t ops = 0;
    for (std::size_t i = 0; i < base.n; ++i) {
      ops += r.meters[i].ops(Category::kVerify);
    }
    return ops;
  };
  const std::uint64_t cached = verify_ops(a);
  const std::uint64_t uncached = verify_ops(b);
  // One skipped re-verification per request per replica.
  EXPECT_EQ(uncached - cached, 20u * base.n);
  // And the cache must not change what gets committed.
  EXPECT_TRUE(a.safety_ok());
  EXPECT_TRUE(b.safety_ok());
  EXPECT_EQ(a.min_committed(), b.min_committed());
}

}  // namespace
}  // namespace eesmr::energy
