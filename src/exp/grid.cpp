#include "src/exp/grid.hpp"

#include <stdexcept>

namespace eesmr::exp {

Grid& Grid::axis(Axis a) {
  if (a.labels.empty()) {
    throw std::invalid_argument("Grid: axis '" + a.name + "' has no values");
  }
  for (const Axis& existing : axes_) {
    if (existing.name == a.name) {
      throw std::invalid_argument("Grid: duplicate axis '" + a.name + "'");
    }
  }
  axes_.push_back(std::move(a));
  return *this;
}

std::size_t Grid::size() const {
  std::size_t total = 1;
  for (const Axis& a : axes_) total *= a.size();
  return total;
}

std::vector<std::size_t> Grid::indices(std::size_t i) const {
  std::vector<std::size_t> out(axes_.size(), 0);
  // Row-major: the LAST axis varies fastest.
  for (std::size_t a = axes_.size(); a-- > 0;) {
    out[a] = i % axes_[a].size();
    i /= axes_[a].size();
  }
  return out;
}

std::size_t Grid::axis_pos(std::string_view name) const {
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    if (axes_[a].name == name) return a;
  }
  throw std::out_of_range("Grid: no axis named '" + std::string(name) + "'");
}

}  // namespace eesmr::exp
