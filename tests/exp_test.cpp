// Experiment-engine tests: deterministic-parallel execution (same seed
// => byte-identical Report JSON at --threads 1/4/8), grid expansion
// order, per-run seed derivation, the ordered-JSON layer, and the
// RunResult serialization round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <iterator>
#include <string>
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/json.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/harness/cluster.hpp"
#include "src/sim/rng.hpp"

namespace eesmr {
namespace {

using exp::Grid;
using exp::Json;
using exp::MetricRow;
using exp::Report;
using exp::RunContext;
using exp::RunnerOptions;
using harness::ClusterConfig;
using harness::RunResult;

// ---------------------------------------------------------------------------
// JSON layer
// ---------------------------------------------------------------------------

TEST(Json, ObjectKeepsInsertionOrder) {
  Json obj = Json::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), R"({"zeta":1,"alpha":2,"mid":3})");
  // Re-setting a key keeps its position.
  obj.set("alpha", 9);
  EXPECT_EQ(obj.dump(), R"({"zeta":1,"alpha":9,"mid":3})");
}

TEST(Json, NumberFormattingIsDeterministic) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7.0).dump(), "-7");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json(1e300).dump(), Json(1e300).dump());
  // Round-trip of a messy double through text preserves the value.
  const double v = 1234.5678901234567;
  const Json parsed = Json::parse(Json(v).dump());
  EXPECT_EQ(parsed.as_double(), v);
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"name":"x","vals":[1,2.5,-3],"nested":{"ok":true,"none":null},)"
      R"("s":"a\"b\nc"})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("name").as_string(), "x");
  EXPECT_EQ(doc.at("vals").size(), 3u);
  EXPECT_EQ(doc.at("vals").at(1).as_double(), 2.5);
  EXPECT_TRUE(doc.at("nested").at("ok").as_bool());
  EXPECT_TRUE(doc.at("nested").at("none").is_null());
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\nc");
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
  EXPECT_EQ(Json::parse(doc.pretty()), doc);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), exp::JsonError);
  EXPECT_THROW(Json::parse("[1,]"), exp::JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), exp::JsonError);
  EXPECT_THROW(Json::parse("nul"), exp::JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), exp::JsonError);
}

// ---------------------------------------------------------------------------
// Seeds and grids
// ---------------------------------------------------------------------------

TEST(DeriveSeed, StableDistinctAndNonAliasing) {
  // Pure function: same inputs, same output.
  EXPECT_EQ(sim::derive_seed(1, 0), sim::derive_seed(1, 0));
  // Different runs / bases decorrelate.
  EXPECT_NE(sim::derive_seed(1, 0), sim::derive_seed(1, 1));
  EXPECT_NE(sim::derive_seed(1, 0), sim::derive_seed(2, 0));
  // A run never aliases its own base seed.
  for (std::uint64_t base : {0ull, 1ull, 42ull, ~0ull}) {
    EXPECT_NE(sim::derive_seed(base, 0), base);
  }
  // No collisions across a realistic grid of runs.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.push_back(sim::derive_seed(7, i));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Grid, RowMajorExpansionLastAxisFastest) {
  Grid g;
  g.axis("a", {"a0", "a1"});
  g.axis("b", {"b0", "b1", "b2"});
  ASSERT_EQ(g.size(), 6u);
  EXPECT_EQ(g.indices(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(g.indices(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(g.indices(3), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(g.indices(5), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(g.axis_pos("b"), 1u);
  EXPECT_THROW((void)g.axis_pos("missing"), std::out_of_range);
  EXPECT_THROW(g.axis(exp::Axis("a", {"dup"})), std::invalid_argument);
}

TEST(Grid, EmptyGridIsOneRun) {
  Grid g;
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.indices(0).empty());
}

// ---------------------------------------------------------------------------
// Runner determinism
// ---------------------------------------------------------------------------

/// A real simulation workload per grid point; heavy enough that worker
/// interleaving would surface any order dependence.
Report run_cluster_grid(std::size_t threads) {
  const std::vector<std::size_t> ns = {4, 5, 6};
  Grid grid;
  grid.axis(exp::Axis::of("n", ns));
  grid.axis("protocol", {"EESMR", "SyncHS"});
  RunnerOptions ro;
  ro.threads = threads;
  ro.seed = 77;
  Report rep;
  rep.name = "determinism";
  rep.grid = grid;
  rep.rows = exp::run_matrix(grid, [&](const RunContext& c) {
    ClusterConfig cfg;
    cfg.protocol = c.label("protocol") == "EESMR"
                       ? harness::Protocol::kEesmr
                       : harness::Protocol::kSyncHotStuff;
    cfg.n = ns[c.at("n")];
    cfg.f = 1;
    cfg.seed = c.seed;
    const RunResult r = exp::run_steady(cfg, 4);
    MetricRow row;
    exp::add_run_metrics(row, r);
    return row;
  }, ro);
  return rep;
}

TEST(Runner, ByteIdenticalReportAcrossThreadCounts) {
  const std::string baseline = run_cluster_grid(1).to_json().pretty();
  EXPECT_GT(baseline.size(), 100u);
  for (const std::size_t threads : {4u, 8u}) {
    EXPECT_EQ(run_cluster_grid(threads).to_json().pretty(), baseline)
        << "threads=" << threads;
  }
  // And the CSV view too.
  EXPECT_EQ(run_cluster_grid(4).to_csv(), run_cluster_grid(1).to_csv());
}

TEST(Runner, ResultsCommitInGridOrderRegardlessOfFinishOrder) {
  Grid grid;
  grid.axis(exp::Axis::of("i", std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  RunnerOptions ro;
  ro.threads = 4;
  ro.seed = 1;
  std::atomic<int> started{0};
  const auto rows = exp::run_matrix(grid, [&](const RunContext& c) {
    started.fetch_add(1);
    MetricRow row;
    row.set("index", c.index);
    row.set("seed", Json(static_cast<double>(c.seed)));
    return row;
  }, ro);
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(started.load(), 8);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].number("index"), static_cast<double>(i));
    EXPECT_EQ(rows[i].number("seed"),
              static_cast<double>(sim::derive_seed(1, i)));
  }
}

TEST(Runner, ExceptionsPropagateToCaller) {
  Grid grid;
  grid.axis(exp::Axis::of("i", std::vector<int>{0, 1, 2, 3}));
  RunnerOptions ro;
  ro.threads = 2;
  EXPECT_THROW(
      exp::run_matrix(grid, [](const RunContext& c) -> MetricRow {
        if (c.index == 2) throw std::runtime_error("boom");
        return MetricRow{};
      }, ro),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// RunResult serialization round-trip
// ---------------------------------------------------------------------------

TEST(Record, RunResultJsonRoundTrip) {
  // A run exercising the client, checkpoint and stream machinery so the
  // record has non-trivial content everywhere.
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 99;
  cfg.clients = 2;
  cfg.checkpoint_interval = 8;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 2;
  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_for(sim::seconds(8));
  ASSERT_GT(r.requests_accepted, 0u);

  const Json doc = exp::run_result_json(r);
  const std::string text = doc.pretty();
  const Json parsed = Json::parse(text);
  // Parse is lossless: identical tree, identical re-dump.
  EXPECT_EQ(parsed, doc);
  EXPECT_EQ(parsed.pretty(), text);

  // The flat summary survives the trip field-for-field.
  const harness::RunSummary orig = r.summarize();
  const harness::RunSummary back = exp::summary_from_json(parsed);
  EXPECT_EQ(back.nodes, orig.nodes);
  EXPECT_EQ(back.safety_ok, orig.safety_ok);
  EXPECT_EQ(back.min_committed, orig.min_committed);
  EXPECT_EQ(back.max_committed, orig.max_committed);
  EXPECT_EQ(back.transmissions, orig.transmissions);
  EXPECT_EQ(back.bytes_transmitted, orig.bytes_transmitted);
  EXPECT_DOUBLE_EQ(back.total_energy_mj, orig.total_energy_mj);
  EXPECT_DOUBLE_EQ(back.energy_per_block_mj, orig.energy_per_block_mj);
  EXPECT_EQ(back.requests_accepted, orig.requests_accepted);
  EXPECT_DOUBLE_EQ(back.latency_p99_ms, orig.latency_p99_ms);
  EXPECT_EQ(back.max_retained_log, orig.max_retained_log);
  EXPECT_EQ(back.max_dedup_entries, orig.max_dedup_entries);
  EXPECT_EQ(back.max_checkpoints_taken, orig.max_checkpoints_taken);

  // Streams carry the radio accounting: at least proposal + request
  // traffic must be present in a client run.
  EXPECT_TRUE(doc.at("streams").contains("proposal"));
  EXPECT_TRUE(doc.at("streams").contains("request"));
}

TEST(Record, SummaryJsonIsStableUnderRerun) {
  // The same config run twice serializes identically (full determinism
  // of the simulation + the serialization layer).
  const auto run_once = [] {
    ClusterConfig cfg;
    cfg.n = 5;
    cfg.f = 1;
    cfg.seed = 1234;
    harness::Cluster cluster(cfg);
    return exp::run_result_json(cluster.run_until_commits(5, sim::seconds(600)))
        .pretty();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

TEST(Cli, ParsesSharedFlags) {
  const char* argv[] = {"bench",      "--threads", "3",          "--smoke",
                        "--seed",     "99",        "--json-out", "x.json",
                        "--host-timing"};
  const exp::Options o =
      exp::parse_cli(static_cast<int>(std::size(argv)),
                     const_cast<char**>(argv), /*default_seed=*/7);
  EXPECT_EQ(o.threads, 3u);
  EXPECT_TRUE(o.smoke);
  EXPECT_EQ(o.seed, 99u);
  EXPECT_EQ(o.json_out, "x.json");
  ASSERT_EQ(o.extra.size(), 1u);
  EXPECT_EQ(o.extra[0], "--host-timing");
}

TEST(Cli, DefaultSeedAppliesWhenFlagAbsent) {
  const char* argv[] = {"bench"};
  const exp::Options o = exp::parse_cli(1, const_cast<char**>(argv), 42);
  EXPECT_EQ(o.seed, 42u);
  EXPECT_FALSE(o.smoke);
  EXPECT_TRUE(o.write_json);
}

TEST(Cli, RejectsMalformedValues) {
  const char* argv[] = {"bench", "--threads", "abc"};
  EXPECT_THROW(exp::parse_cli(3, const_cast<char**>(argv), 1),
               std::invalid_argument);
  const char* argv2[] = {"bench", "--seed"};
  EXPECT_THROW(exp::parse_cli(2, const_cast<char**>(argv2), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace eesmr
