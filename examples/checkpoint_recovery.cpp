// Walk-through of the checkpointing & state-transfer subsystem:
//
//   1. four EESMR replicas serve two KV clients; every 32 committed
//      commands each replica snapshots its KvStore, signs the
//      (height, block, state-digest) triple and floods a kCheckpoint;
//   2. f+1 matching signatures make the checkpoint *stable* — the
//      low-water mark advances and everything below it (blocks, reply
//      caches, mempool keys) is garbage-collected;
//   3. replica 3 is offline for the first 8 seconds. When it joins, it
//      observes a stable checkpoint far beyond its height, fetches the
//      certified snapshot (kStateRequest/kStateResponse), verifies
//      certificate + digest, restores, and rejoins the steady state —
//      without replaying the chain.
#include <cstdio>

#include "src/harness/cluster.hpp"

using namespace eesmr;

int main() {
  harness::ClusterConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.batch_size = 4;
  cfg.clients = 2;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 4;
  cfg.workload.max_requests = 300;
  cfg.workload.gen.kind = client::GenSpec::Kind::kKv;
  cfg.workload.gen.kv_keys = 16;
  cfg.checkpoint_interval = 32;
  cfg.client_retry = sim::milliseconds(500);
  cfg.late_starts.push_back({3, sim::seconds(8)});
  cfg.seed = 7;

  harness::Cluster cluster(cfg);
  const harness::RunResult r = cluster.run_for(sim::seconds(45));

  std::printf("checkpoint & recovery example (EESMR, n=4, f=1)\n");
  std::printf("  requests accepted ....... %llu\n",
              static_cast<unsigned long long>(r.requests_accepted));
  std::printf("  safety .................. %s\n",
              r.safety_ok() ? "ok" : "VIOLATED");
  std::printf("\nper-replica footprint (memory bounded by the low-water "
              "mark):\n");
  std::printf("  %-6s %10s %10s %9s %10s %10s %9s\n", "node", "committed",
              "retained", "store", "stable_h", "ckpts", "transfers");
  for (NodeId i = 0; i < 4; ++i) {
    const harness::ReplicaFootprint& fp = r.footprints[i];
    std::printf("  %-6u %10llu %10zu %9zu %10llu %10llu %9llu\n", i,
                static_cast<unsigned long long>(fp.committed_blocks),
                fp.retained_log, fp.store_blocks,
                static_cast<unsigned long long>(fp.stable_height),
                static_cast<unsigned long long>(fp.checkpoints_taken),
                static_cast<unsigned long long>(fp.state_transfers));
  }
  std::printf("\nreplica 3 joined at t=8s and recovered in %.1f ms "
              "(%llu snapshot transfer%s)\n",
              sim::to_milliseconds(r.max_recovery_latency),
              static_cast<unsigned long long>(r.state_transfers),
              r.state_transfers == 1 ? "" : "s");

  // The acid test: identical application state everywhere.
  const Bytes digest = cluster.replica(0).app()->state_digest();
  bool all_equal = true;
  for (NodeId i = 1; i < 4; ++i) {
    all_equal =
        all_equal && cluster.replica(i).app()->state_digest() == digest;
  }
  std::printf("state digests identical on all replicas: %s\n",
              all_equal ? "yes" : "NO");
  return all_equal ? 0 : 1;
}
