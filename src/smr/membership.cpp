#include "src/smr/membership.hpp"

#include <stdexcept>

#include "src/common/serde.hpp"

namespace eesmr::smr {

Bytes MembershipPolicy::encode() const {
  Writer w;
  w.u16(kPolicyTag);
  w.u64(generation);
  w.u32(static_cast<std::uint32_t>(signers.size()));
  for (const PolicyEntry& e : signers) {
    w.u32(e.node);
    w.u32(e.weight);
  }
  return w.take();
}

MembershipPolicy MembershipPolicy::decode(BytesView bytes) {
  Reader r(bytes);
  if (r.u16() != kPolicyTag) {
    throw SerdeError("MembershipPolicy: bad tag");
  }
  MembershipPolicy p;
  p.generation = r.u64();
  const std::uint32_t n = r.u32();
  p.signers.reserve(std::min<std::size_t>(n, r.remaining() / 8 + 1));
  for (std::uint32_t i = 0; i < n; ++i) {
    PolicyEntry e;
    e.node = r.u32();
    e.weight = r.u32();
    p.signers.push_back(e);
  }
  r.expect_done();
  if (!p.well_formed()) {
    throw SerdeError("MembershipPolicy: not well-formed");
  }
  return p;
}

std::optional<MembershipPolicy> MembershipPolicy::decode_command(
    BytesView bytes) {
  if (bytes.size() < 2 ||
      (static_cast<std::uint16_t>(bytes[0]) |
       (static_cast<std::uint16_t>(bytes[1]) << 8)) != kPolicyTag) {
    return std::nullopt;
  }
  return decode(bytes);
}

bool MembershipPolicy::well_formed() const {
  if (signers.empty()) return false;
  NodeId prev = kNoNode;
  for (const PolicyEntry& e : signers) {
    if (e.weight == 0) return false;
    if (prev != kNoNode && e.node <= prev) return false;
    prev = e.node;
  }
  return true;
}

MembershipState::MembershipState(std::size_t initial_n) {
  std::vector<PolicyEntry> genesis;
  genesis.reserve(initial_n);
  for (NodeId id = 0; id < initial_n; ++id) {
    genesis.push_back(PolicyEntry{id, 1});
  }
  history_.push_back(std::move(genesis));
}

bool MembershipState::apply(const MembershipPolicy& p) {
  if (!p.well_formed()) return false;
  if (p.generation != generation_ + 1) return false;
  history_.push_back(p.signers);
  generation_ = p.generation;
  while (history_.size() > kHistoryWindow + 1) {
    history_.pop_front();
    ++oldest_;
  }
  return true;
}

bool MembershipState::known(std::uint64_t gen) const {
  return gen >= oldest_ && gen <= generation_;
}

const std::vector<PolicyEntry>& MembershipState::signers(
    std::uint64_t gen) const {
  if (!known(gen)) {
    throw std::out_of_range("MembershipState::signers: unknown generation");
  }
  return history_[gen - oldest_];
}

bool MembershipState::is_signer(NodeId id, std::uint64_t gen) const {
  if (!known(gen)) return false;
  for (const PolicyEntry& e : history_[gen - oldest_]) {
    if (e.node == id) return true;
  }
  return false;
}

std::uint32_t MembershipState::weight(NodeId id, std::uint64_t gen) const {
  if (!known(gen)) return 0;
  for (const PolicyEntry& e : history_[gen - oldest_]) {
    if (e.node == id) return e.weight;
  }
  return 0;
}

std::size_t MembershipState::active_count() const {
  return history_.back().size();
}

NodeId MembershipState::leader_at(std::uint64_t view) const {
  const auto& cur = history_.back();
  return cur[view % cur.size()].node;
}

}  // namespace eesmr::smr
