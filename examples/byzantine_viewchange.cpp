// Byzantine leader demo: the view-1 leader equivocates (proposes two
// conflicting blocks for one round). Watch the correct nodes detect the
// conflict via re-broadcast, prove it with the leader's own signatures,
// change the view, and keep committing — with identical logs everywhere.
#include <cstdio>

#include "src/harness/cluster.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 5;
  cfg.f = 2;
  cfg.medium = energy::Medium::kBle;
  // Node 1 leads view 1 and will propose two blocks in round 5.
  cfg.faults = {{1, protocol::ByzantineMode::kEquivocate, 5}};

  Cluster cluster(cfg);
  cluster.start();

  // Step the simulation and narrate protocol state.
  std::uint64_t last_view = 1;
  for (int step = 0; step < 60; ++step) {
    cluster.scheduler().run_until(cluster.scheduler().now() +
                                  sim::milliseconds(50));
    const auto& honest = cluster.eesmr(0);
    if (honest.current_view() != last_view) {
      std::printf("[%6.2fs] node 0 entered view %llu (leader is now node "
                  "%u)\n",
                  sim::to_seconds(cluster.scheduler().now()),
                  static_cast<unsigned long long>(honest.current_view()),
                  honest.leader_of(honest.current_view()));
      last_view = honest.current_view();
    }
    if (cluster.eesmr(0).log().size() >= 8) break;
  }

  const RunResult r = cluster.snapshot();
  std::printf("\nafter the dust settles:\n");
  std::printf("  view changes: %llu\n",
              static_cast<unsigned long long>(r.view_changes));
  std::uint64_t detections = 0;
  for (NodeId i : {0u, 2u, 3u, 4u}) {
    detections += cluster.eesmr(i).equivocations_detected();
  }
  std::printf("  equivocation detections at correct nodes: %llu\n",
              static_cast<unsigned long long>(detections));
  std::printf("  committed blocks (min over correct nodes): %zu\n",
              r.min_committed());
  std::printf("  safety: %s\n", r.safety_ok() ? "ok" : "VIOLATED");

  std::printf("\ncommitted log (node 0) — note the view column jumping "
              "after the fault:\n");
  for (const smr::Block& b : r.logs[0]) {
    std::printf("  height %2llu  view %llu  round %llu  proposer %u\n",
                static_cast<unsigned long long>(b.height),
                static_cast<unsigned long long>(b.view),
                static_cast<unsigned long long>(b.round), b.proposer);
  }
  return 0;
}
