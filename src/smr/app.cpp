#include "src/smr/app.hpp"

#include <limits>
#include <sstream>

#include "src/common/serde.hpp"
#include "src/crypto/sha256.hpp"

namespace eesmr::smr {

namespace {
std::vector<std::string> tokenize(const Bytes& data) {
  std::istringstream in(to_string(data));
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}
}  // namespace

Bytes KvStore::apply(const Command& cmd) {
  ++applied_;
  const auto tokens = tokenize(cmd.data);
  if (tokens.empty()) return to_bytes(std::string("err"));
  const std::string& op = tokens[0];
  if (op == "set" && tokens.size() >= 3) {
    table_[tokens[1]] = tokens[2];
    return to_bytes(std::string("ok"));
  }
  if (op == "get" && tokens.size() >= 2) {
    const auto it = table_.find(tokens[1]);
    return to_bytes(it == table_.end() ? std::string("(nil)") : it->second);
  }
  if (op == "del" && tokens.size() >= 2) {
    return to_bytes(table_.erase(tokens[1]) > 0 ? std::string("ok")
                                                : std::string("(nil)"));
  }
  if (op == "inc" && tokens.size() >= 2) {
    long long v = 0;
    const auto it = table_.find(tokens[1]);
    if (it != table_.end()) {
      // Non-numeric values restart the counter at 0 (a thrown exception
      // here would escape the commit path; any deterministic rule works,
      // it just has to be the same on every correct replica).
      try {
        v = std::stoll(it->second);
      } catch (const std::exception&) {
        v = 0;
      }
    }
    // Saturate instead of v + 1: signed overflow would be UB, i.e. not
    // guaranteed deterministic across replicas.
    if (v < std::numeric_limits<long long>::max()) ++v;
    table_[tokens[1]] = std::to_string(v);
    return to_bytes(table_[tokens[1]]);
  }
  return to_bytes(std::string("err"));
}

Bytes KvStore::state_digest() const {
  crypto::Sha256 h;
  for (const auto& [k, v] : table_) {
    h.update(to_bytes(k));
    h.update(Bytes{0});
    h.update(to_bytes(v));
    h.update(Bytes{1});
  }
  const auto digest = h.finish();
  return Bytes(digest.begin(), digest.end());
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  const auto it = table_.find(key);
  return it == table_.end() ? std::nullopt
                            : std::optional<std::string>(it->second);
}

Bytes KvStore::snapshot() const {
  // std::map iteration is key-ordered, so the encoding is deterministic:
  // every replica with the same state produces byte-identical snapshots
  // (checkpoint certificates sign the snapshot hash). The applied_
  // counter rides along so a restored replica's op count — and any
  // future behaviour derived from it — matches the snapshot source.
  Writer w;
  w.u64(applied_);
  w.u32(static_cast<std::uint32_t>(table_.size()));
  for (const auto& [k, v] : table_) {
    w.str(k);
    w.str(v);
  }
  return w.take();
}

void KvStore::restore(BytesView snap) {
  Reader r(snap);
  const std::uint64_t applied = r.u64();
  const std::uint32_t n = r.u32();
  std::map<std::string, std::string> table;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = r.str();
    table.emplace(std::move(k), r.str());
  }
  r.expect_done();
  // Commit only after the whole snapshot decoded (strong exception
  // safety: a SerdeError above leaves the store untouched).
  applied_ = applied;
  table_ = std::move(table);
}

std::optional<Bytes> AckCollector::add(NodeId replica, const Bytes& result) {
  if (accepted_) return accepted_;
  if (seen_[replica]) return std::nullopt;  // one ack per replica
  seen_[replica] = true;
  auto& voters = tallies_[std::string(result.begin(), result.end())];
  voters.push_back(replica);
  if (voters.size() >= f_ + 1) accepted_ = result;
  return accepted_;
}

}  // namespace eesmr::smr
