// Figure 3: leader energy, EESMR vs Sync HotStuff, for honest runs and
// view changes, as f grows. n = 13, k = f + 1.
//
// The grid is deliberately fine-grained (f x protocol x scenario): the
// f = 6 runs are an order of magnitude heavier than f = 1, so folding
// the whole comparison into one run per f would serialize on the
// heaviest point. The ψ_V = ψ_W − ψ_B view-change decomposition is a
// formatting pass over the Report (faulty-run energy minus the honest
// run's at equal block count, per view change).
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/sim/rng.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

int main(int argc, char** argv) {
  exp::Experiment ex("fig3_eesmr_vs_synchs",
                     "Fig. 3 (§5.7, k = f + 1, BLE)", argc, argv,
                     /*default_seed=*/19);

  std::vector<std::size_t> fs = {1, 2, 3, 4, 5, 6};
  if (ex.smoke()) fs = {1, 3};
  const std::size_t blocks = ex.smoke() ? 4 : 6;
  const std::vector<Protocol> protocols = {Protocol::kEesmr,
                                           Protocol::kSyncHotStuff};
  const NodeId new_leader = 2;

  exp::Grid grid;
  grid.axis_of("f", fs);
  grid.axis("protocol", {"EESMR", "SyncHS"});
  grid.axis("scenario", {"honest", "crash_vc"});

  exp::Report& runs = ex.run("runs", grid, [&](const exp::RunContext& c) {
    const std::size_t f = fs[c.at("f")];
    ClusterConfig cfg;
    cfg.protocol = protocols[c.at("protocol")];
    cfg.n = 13;
    cfg.f = f;
    cfg.k = f + 1;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    // The ψ_V = ψ_W − ψ_B subtraction compares the faulty run against
    // the honest one, so the pair shares a seed (derived from the f
    // axis, not the flat run index).
    cfg.seed = sim::derive_seed(ex.seed(), c.at("f"));
    if (c.label("scenario") == "crash_vc") {
      cfg.faults.push_back({1, protocol::ByzantineMode::kCrash, 4});
    }
    const RunResult r = exp::run_steady(c, cfg, blocks);
    exp::MetricRow row;
    row.set("k", f + 1);
    row.set("leader1_mj_per_block", r.node_energy_per_block_mj(1));
    row.set("new_leader_mj", r.node_energy_mj(new_leader));
    row.set("total_mj", r.total_energy_mj());
    row.set("view_changes", r.view_changes);
    row.set("run", exp::run_result_json(r));
    return row;
  });

  // Formatting pass: per-f comparison table + headline ratios.
  const auto row_at = [&](std::size_t fi, std::size_t proto,
                          std::size_t scen) -> const exp::MetricRow& {
    return runs.rows[(fi * 2 + proto) * 2 + scen];
  };
  exp::Report table;
  table.name = "leader_energy";
  table.grid.axis_of("f", fs);
  double sum_hon_ratio = 0, sum_vc_ratio = 0;
  int vc_rows = 0;
  for (std::size_t fi = 0; fi < fs.size(); ++fi) {
    exp::MetricRow row;
    row.set("k", fs[fi] + 1);
    double vc_mj[2] = {0, 0};
    for (std::size_t p = 0; p < 2; ++p) {
      const exp::MetricRow& honest = row_at(fi, p, 0);
      const exp::MetricRow& faulty = row_at(fi, p, 1);
      const double vcs = std::max(1.0, faulty.number("view_changes"));
      vc_mj[p] = (faulty.number("new_leader_mj") -
                  honest.number("new_leader_mj")) /
                 vcs;
    }
    row.set("eesmr_honest_mj", row_at(fi, 0, 0).number("leader1_mj_per_block"));
    row.set("synchs_honest_mj", row_at(fi, 1, 0).number("leader1_mj_per_block"));
    row.set("eesmr_vc_mj", vc_mj[0]);
    row.set("synchs_vc_mj", vc_mj[1]);
    sum_hon_ratio +=
        row.number("synchs_honest_mj") / row.number("eesmr_honest_mj");
    if (vc_mj[0] > 0 && vc_mj[1] > 0) {
      sum_vc_ratio += vc_mj[0] / vc_mj[1];
      ++vc_rows;
    }
    table.rows.push_back(std::move(row));
  }
  exp::Report& tbl = ex.add_section(std::move(table));
  tbl.print_table(1);

  exp::Report summary;
  summary.name = "summary";
  exp::MetricRow srow;
  srow.set("mean_honest_ratio_synchs_over_eesmr",
           sum_hon_ratio / static_cast<double>(fs.size()));
  srow.set("paper_honest_ratio", 2.85);
  if (vc_rows > 0) {
    srow.set("mean_vc_ratio_eesmr_over_synchs",
             sum_vc_ratio / static_cast<double>(vc_rows));
    srow.set("paper_vc_ratio", 2.05);
  }
  summary.rows.push_back(srow);
  ex.add_section(std::move(summary)).print_table(2);

  ex.note("expected shape: EESMR honest-leader cost well below Sync "
          "HotStuff's (no certificates, no votes); EESMR's view change "
          "costlier (extra round + commit-certificate construction); all "
          "curves grow with k = f+1");
  return ex.finish();
}
