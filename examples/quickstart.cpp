// Quickstart: run a 4-node EESMR cluster in the simulator, submit client
// commands, watch them commit, and read the energy bill.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/harness/cluster.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  // 1. Describe the system: 4 nodes tolerating 1 Byzantine fault,
  //    fully-connected BLE, RSA-1024 signatures (the paper's choice).
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 4;
  cfg.f = 1;
  cfg.medium = energy::Medium::kBle;
  cfg.scheme = crypto::SchemeId::kRsa1024;
  cfg.batch_size = 2;  // commands per block

  Cluster cluster(cfg);

  // 2. Submit client requests. (Replicas also synthesize filler traffic,
  //    modelling the standard "clients always have requests" assumption.)
  for (int i = 0; i < 6; ++i) {
    const std::string request = "set temperature_" + std::to_string(i);
    cluster.replica(1).mempool().submit({to_bytes(request)});
  }

  // 3. Run until 5 blocks commit everywhere (simulated time).
  const RunResult result = cluster.run_until_commits(5, sim::seconds(60));

  // 4. Inspect the replicated log.
  std::printf("committed %zu blocks on every node; safety=%s\n",
              result.min_committed(), result.safety_ok() ? "ok" : "VIOLATED");
  for (const smr::Block& b : result.logs[0]) {
    std::printf("  height %llu (round %llu): %zu cmds, first: %.24s\n",
                static_cast<unsigned long long>(b.height),
                static_cast<unsigned long long>(b.round), b.cmds.size(),
                b.cmds.empty() ? "-" : to_string(b.cmds[0].data).c_str());
  }

  // 5. The energy bill — the paper's central metric.
  std::printf("\nenergy per node (leader is node 1):\n");
  for (NodeId i = 0; i < 4; ++i) {
    std::printf("  node %u: %s\n", i, result.meters[i].summary().c_str());
  }
  std::printf("\ntotal %.1f mJ for %zu blocks -> %.1f mJ per SMR unit\n",
              result.total_energy_mj(), result.min_committed(),
              result.energy_per_block_mj());
  return 0;
}
