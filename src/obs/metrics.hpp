// Prometheus-style metric registry: labeled Counter / Gauge / Histogram
// families with deterministic text exposition and a JSON snapshot form.
//
// This is the uniform metric surface over the simulator's existing
// meters: harness::RunResult registers everything it measures here
// (RunResult::to_registry), RunSummary is *derived from* the registry
// (harness::summary_from_registry) instead of hand-plumbed field by
// field, and any bench run can expose the whole registry as Prometheus
// text (`--prom-out`) or a JSON snapshot.
//
// Determinism contract (the same one the experiment engine holds):
// families expose in registration order, samples in registration order,
// labels in declaration order, and all numbers print through
// exp::json_number — so two registries built by the same deterministic
// run render byte-identical text at any --threads N.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/exp/json.hpp"

namespace eesmr::obs {

/// Ordered label set: {key, value} pairs in declaration order.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
const char* kind_name(MetricKind k);

/// Prometheus metric-name rule: [a-zA-Z_:][a-zA-Z0-9_:]*.
[[nodiscard]] bool valid_metric_name(const std::string& name);
/// Prometheus label-name rule: [a-zA-Z_][a-zA-Z0-9_]*.
[[nodiscard]] bool valid_label_name(const std::string& name);
/// Escape a label value for text exposition (backslash, quote, newline).
[[nodiscard]] std::string escape_label_value(const std::string& v);
/// Escape a HELP string (backslash, newline).
[[nodiscard]] std::string escape_help(const std::string& v);

/// Fixed-bucket histogram with an implicit +Inf overflow bucket. Value
/// type: usable standalone (client::LatencyHistogram is backed by one)
/// and as the sample payload of a histogram family.
class Histogram {
 public:
  Histogram() = default;
  /// `bounds` are the inclusive bucket upper bounds (`le`), strictly
  /// ascending; the +Inf bucket is implicit. Throws std::invalid_argument
  /// on unsorted bounds.
  explicit Histogram(std::vector<double> bounds);

  /// The bucket layout the client latency histogram uses (milliseconds).
  static const std::vector<double>& default_latency_buckets_ms();

  void observe(double v);
  /// Elementwise merge; throws std::invalid_argument on a bucket-layout
  /// mismatch (merging histograms of different shape is always a bug).
  void merge(const Histogram& other);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1, the
  /// last entry being the +Inf overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  /// Cumulative count of observations <= bounds()[i] (the `le` series).
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

  friend bool operator==(const Histogram& a, const Histogram& b);

 private:
  friend class Registry;  // from_json reconstitutes counts_/sum_/count_
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (+Inf last)
  double sum_ = 0;
  std::uint64_t count_ = 0;
};

/// One (labels -> value) child of a family.
struct Sample {
  Labels labels;
  double value = 0;  ///< counter / gauge payload
  Histogram hist;    ///< histogram payload
};

/// A named metric family: all samples share the name, help and kind.
struct Family {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  std::vector<Sample> samples;

  /// Find-or-create the child with exactly these labels (order-sensitive,
  /// matching the deterministic-registration contract).
  Sample& with(const Labels& labels);
  [[nodiscard]] const Sample* find(const Labels& labels) const;
};

class Registry;

/// Lightweight handle to a counter sample. inc() rejects negative
/// increments (counters are monotonic by definition).
class Counter {
 public:
  void inc(double d = 1);
  [[nodiscard]] double value() const;

 private:
  friend class Registry;
  Counter(Registry* reg, std::size_t fam, std::size_t idx)
      : reg_(reg), fam_(fam), idx_(idx) {}
  Registry* reg_;
  std::size_t fam_, idx_;
};

class Gauge {
 public:
  void set(double v);
  void add(double d);
  [[nodiscard]] double value() const;

 private:
  friend class Registry;
  Gauge(Registry* reg, std::size_t fam, std::size_t idx)
      : reg_(reg), fam_(fam), idx_(idx) {}
  Registry* reg_;
  std::size_t fam_, idx_;
};

class Registry {
 public:
  // -- live instruments --------------------------------------------------------
  /// Register (or re-acquire) a sample. Throws std::invalid_argument on
  /// an invalid metric/label name or when `name` is already registered
  /// with a different kind or help string.
  Counter counter(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Gauge gauge(const std::string& name, const std::string& help,
              const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const Labels& labels = {});

  // -- collect-style registration (snapshot an already-measured value) ---------
  void set_counter(const std::string& name, const std::string& help,
                   const Labels& labels, double total);
  void set_gauge(const std::string& name, const std::string& help,
                 const Labels& labels, double v);
  void set_histogram(const std::string& name, const std::string& help,
                     const Labels& labels, const Histogram& h);

  [[nodiscard]] const std::vector<Family>& families() const {
    return families_;
  }
  [[nodiscard]] bool empty() const { return families_.empty(); }
  [[nodiscard]] const Family* find(const std::string& name) const;
  /// Value of a counter/gauge sample; throws std::out_of_range when the
  /// family or the exact label set is absent.
  [[nodiscard]] double value(const std::string& name,
                             const Labels& labels = {}) const;

  /// Append every family/sample of `other`, prepending `extra` labels to
  /// each sample (how per-run registries merge into one bench-level
  /// exposition, labeled {section, run}).
  void merge(const Registry& other, const Labels& extra = {});
  void clear() { families_.clear(); }

  // -- exposition --------------------------------------------------------------
  /// Prometheus text exposition format (# HELP / # TYPE / samples, the
  /// `le`-cumulative histogram series with the +Inf bucket, _sum and
  /// _count). Deterministic: a pure function of registration order.
  [[nodiscard]] std::string text() const;
  /// JSON snapshot: {"families":[{name, kind, help, samples:[...]}]}.
  [[nodiscard]] exp::Json to_json() const;
  /// Inverse of to_json (snapshot round-trip). Throws exp::JsonError /
  /// std::out_of_range on malformed input.
  static Registry from_json(const exp::Json& doc);

  friend bool operator==(const Registry& a, const Registry& b);

 private:
  friend class Counter;
  friend class Gauge;
  Family& family(const std::string& name, const std::string& help,
                 MetricKind kind);
  std::vector<Family> families_;
};

}  // namespace eesmr::obs
