// Signature-scheme abstraction and the per-system key directory (the
// paper's "PKI is used to set up keys before starting the protocol").
//
// Three families are provided:
//  * real digital signatures (RSA PKCS#1 v1.5, ECDSA on all Table-2
//    curves),
//  * HMAC-SHA256 "MAC signatures" (the paper's symmetric-key comparison
//    point),
//  * a keyed-hash *simulated* signature scheme for large simulation runs:
//    functionally a signature inside one trusted process (sign/verify/
//    unforgeability-by-honest-code), sized and energy-accounted as the
//    scheme it emulates. DESIGN.md documents this substitution.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/ids.hpp"

namespace eesmr::crypto {

/// Every signature scheme whose energy Table 2 reports, plus HMAC.
enum class SchemeId : std::uint8_t {
  kHmacSha256,
  kEcdsaBp160r1,
  kEcdsaBp256r1,
  kEcdsaSecp192r1,
  kEcdsaSecp192k1,
  kEcdsaSecp224r1,
  kEcdsaSecp256r1,
  kEcdsaSecp256k1,
  kRsa1024,
  kRsa1260,
  kRsa2048,
};

struct SchemeInfo {
  const char* name;
  std::size_t signature_bytes;
  bool symmetric;
};

/// Static metadata for a scheme (name, wire size of one signature).
const SchemeInfo& scheme_info(SchemeId id);

/// All schemes, in Table-2 order (for sweeps).
std::vector<SchemeId> all_schemes();

/// Private signing half, bound to one node.
class Signer {
 public:
  virtual ~Signer() = default;
  [[nodiscard]] virtual Bytes sign(BytesView msg) const = 0;
  [[nodiscard]] virtual SchemeId scheme() const = 0;
};

/// Public verifying half, bound to one node's key.
class Verifier {
 public:
  virtual ~Verifier() = default;
  [[nodiscard]] virtual bool verify(BytesView msg, BytesView sig) const = 0;
  [[nodiscard]] virtual SchemeId scheme() const = 0;
};

/// Key directory for an n-node system: node i signs with signer(i); anyone
/// verifies node i's signatures with verify(i, ...). Immutable once built.
class Keyring {
 public:
  /// Generate real keys for every node. Deterministic in `seed`.
  /// RSA/ECDSA key generation is comparatively slow; callers that only
  /// need protocol-level behaviour should prefer `simulated`.
  static std::shared_ptr<Keyring> generate(SchemeId scheme, std::size_t n,
                                           std::uint64_t seed);

  /// Keyed-hash signature simulation emulating `scheme`'s wire size.
  static std::shared_ptr<Keyring> simulated(SchemeId scheme, std::size_t n,
                                            std::uint64_t seed);

  [[nodiscard]] const Signer& signer(NodeId id) const;
  [[nodiscard]] bool verify(NodeId claimed, BytesView msg,
                            BytesView sig) const;

  [[nodiscard]] SchemeId scheme() const { return scheme_; }
  [[nodiscard]] bool is_simulated() const { return simulated_; }
  [[nodiscard]] std::size_t signature_bytes() const {
    return scheme_info(scheme_).signature_bytes;
  }
  [[nodiscard]] std::size_t size() const { return signers_.size(); }

 private:
  Keyring() = default;

  SchemeId scheme_ = SchemeId::kHmacSha256;
  bool simulated_ = false;
  std::vector<std::unique_ptr<Signer>> signers_;
  std::vector<std::unique_ptr<Verifier>> verifiers_;
};

}  // namespace eesmr::crypto
