#include "src/obs/prof.hpp"

#include <algorithm>

namespace eesmr::prof {

bool Snapshot::empty() const {
  return sched_events.empty() && crypto_ops.empty() && codec_bytes.empty() &&
         early_drops == 0 && !pipeline.any() && host_scopes.empty() &&
         requests.empty();
}

void Snapshot::to_registry(obs::Registry& reg, const obs::Labels& base) const {
  const auto with = [&](std::initializer_list<std::pair<std::string, std::string>>
                            extra) {
    obs::Labels l = base;
    for (const auto& kv : extra) l.push_back(kv);
    return l;
  };

  for (const auto& [kind, count] : sched_events) {
    reg.set_counter("eesmr_prof_sched_events_total",
                    "Scheduler events fired, by event kind",
                    with({{"kind", kind}}), static_cast<double>(count));
  }
  for (const auto& [key, count] : crypto_ops) {
    reg.set_counter("eesmr_prof_crypto_ops_total",
                    "Crypto operations by component, op and call site",
                    with({{"component", key[0]}, {"op", key[1]},
                          {"site", key[2]}}),
                    static_cast<double>(count));
  }
  for (const auto& [key, bytes] : codec_bytes) {
    reg.set_counter("eesmr_prof_codec_bytes_total",
                    "Message bytes encoded/decoded by component and stream",
                    with({{"component", key[0]}, {"dir", key[1]},
                          {"stream", key[2]}}),
                    static_cast<double>(bytes));
  }
  reg.set_counter("eesmr_prof_early_drops_total",
                  "Known-bad flood frames rejected before a metered verify",
                  base, static_cast<double>(early_drops));
  // Pipeline families only when a cluster run recorded them, so
  // hand-built snapshots keep their exposition unchanged. Deterministic
  // at any --workers N by construction.
  if (pipeline.any()) {
    const std::pair<const char*, std::uint64_t> spec[] = {
        {"speculated", pipeline.speculated},
        {"join_hit", pipeline.join_hits},
        {"join_miss", pipeline.join_misses},
        {"wasted", pipeline.wasted}};
    for (const auto& [event, v] : spec) {
      reg.set_counter("eesmr_prof_spec_verify_total",
                      "Speculative verification pipeline events "
                      "(identical at any --workers N)",
                      with({{"event", event}}), static_cast<double>(v));
    }
    const std::pair<const char*, std::uint64_t> batch[] = {
        {"batches", pipeline.batches},
        {"items", pipeline.batch_items},
        {"fallbacks", pipeline.batch_fallbacks}};
    for (const auto& [event, v] : batch) {
      reg.set_counter("eesmr_prof_batch_verify_total",
                      "Certificate-tally batch verification events",
                      with({{"event", event}}), static_cast<double>(v));
    }
    reg.set_counter("eesmr_prof_sig_cache_hits_total",
                    "Metered tally re-verifications skipped by the "
                    "verified-signature cache",
                    base, static_cast<double>(pipeline.sig_cache_hits));
    reg.set_counter("eesmr_prof_bytes_copy_saved_total",
                    "Frame and payload bytes the zero-copy network path "
                    "did not copy",
                    base, static_cast<double>(pipeline.bytes_copy_saved));
  }
  // Host families only when host timing actually ran: their absence is
  // the zero-overhead guarantee the tests pin.
  for (const auto& [label, s] : host_scopes) {
    reg.set_counter("eesmr_prof_host_scope_calls_total",
                    "Host wall-clock scope invocations (only with "
                    "--host-timing)",
                    with({{"label", label}}), static_cast<double>(s.count));
    const double mean = s.count == 0 ? 0.0 : s.total_ms / static_cast<double>(
                                                              s.count);
    const std::pair<const char*, double> stats[] = {
        {"min", s.min_ms}, {"mean", mean}, {"max", s.max_ms}};
    for (const auto& [stat, v] : stats) {
      reg.set_gauge("eesmr_prof_host_scope_ms",
                    "Host wall-clock per scope label (only with "
                    "--host-timing)",
                    with({{"label", label}, {"stat", stat}}), v);
    }
  }
  for (const auto& r : requests) {
    const std::string client = std::to_string(r.client);
    const std::string req = std::to_string(r.req_id);
    for (const auto& [stream, bm] : r.streams) {
      reg.set_counter("eesmr_prof_request_stream_bytes",
                      "Frame bytes attributed to one sampled request, "
                      "per stream",
                      with({{"client", client}, {"req_id", req},
                            {"stream", stream}}),
                      static_cast<double>(bm.first));
      reg.set_gauge("eesmr_prof_request_stream_mj",
                    "One-hop send+recv energy attributed to one sampled "
                    "request, per stream (mJ)",
                    with({{"client", client}, {"req_id", req},
                          {"stream", stream}}),
                    bm.second);
    }
  }
}

void Profiler::count_crypto(const char* component, const char* op,
                            const char* site) {
  ++snap_.crypto_ops[{component, op, site}];
}

void Profiler::count_codec(const char* component, const char* dir,
                           energy::Stream s, std::size_t bytes) {
  snap_.codec_bytes[{component, dir, energy::stream_name(s)}] += bytes;
}

void Profiler::record_scope(const char* label, double ms) {
  HostScopeStats& s = snap_.host_scopes[label];
  if (s.count == 0 || ms < s.min_ms) s.min_ms = ms;
  if (s.count == 0 || ms > s.max_ms) s.max_ms = ms;
  s.total_ms += ms;
  ++s.count;
}

bool Profiler::sample_request(std::uint64_t client, std::uint64_t req_id) {
  if (sample_order_.size() >= samples_target_) {
    return is_sampled(client, req_id);
  }
  const auto key = std::make_pair(client, req_id);
  if (sampled_.count(key) != 0) return true;
  sampled_[key];  // claim the slot with an empty stream table
  sample_order_.push_back(key);
  return true;
}

bool Profiler::is_sampled(std::uint64_t client, std::uint64_t req_id) const {
  return sampled_.count(std::make_pair(client, req_id)) != 0;
}

void Profiler::attribute(std::uint64_t client, std::uint64_t req_id,
                         energy::Stream s, std::size_t frame_bytes,
                         std::uint64_t weight, std::uint64_t total_weight) {
  const auto it = sampled_.find(std::make_pair(client, req_id));
  if (it == sampled_.end() || total_weight == 0) return;
  const double share =
      static_cast<double>(weight) / static_cast<double>(total_weight);
  const double frame_mj = energy::send_energy_mj(medium_, frame_bytes) +
                          energy::recv_energy_mj(medium_, frame_bytes);
  auto& [bytes, mj] = it->second[energy::stream_name(s)];
  bytes += frame_bytes * weight / total_weight;
  mj += frame_mj * share;
}

Snapshot Profiler::snapshot() const {
  Snapshot out = snap_;
  out.requests.reserve(sample_order_.size());
  for (const auto& key : sample_order_) {
    Snapshot::RequestEnergy r;
    r.client = key.first;
    r.req_id = key.second;
    r.streams = sampled_.at(key);
    out.requests.push_back(std::move(r));
  }
  return out;
}

}  // namespace eesmr::prof
