#include "src/crypto/ec.hpp"

#include <gtest/gtest.h>

#include "src/sim/rng.hpp"

namespace eesmr::crypto {
namespace {

const std::vector<CurveId> kAllCurves = {
    CurveId::kSecp192r1,       CurveId::kSecp192k1, CurveId::kSecp224r1,
    CurveId::kSecp256r1,       CurveId::kSecp256k1, CurveId::kBrainpoolP160r1,
    CurveId::kBrainpoolP256r1,
};

class CurveTest : public ::testing::TestWithParam<CurveId> {};

TEST_P(CurveTest, GeneratorOnCurve) {
  const CurveParams& p = curve_params(GetParam());
  const Curve curve(p);
  EXPECT_TRUE(curve.on_curve(curve.generator())) << p.name;
}

TEST_P(CurveTest, OrderTimesGeneratorIsInfinity) {
  const CurveParams& p = curve_params(GetParam());
  const Curve curve(p);
  EXPECT_TRUE(curve.mul_base(p.n).infinity) << p.name;
}

TEST_P(CurveTest, DoubleMatchesAdd) {
  const Curve curve(curve_params(GetParam()));
  const AffinePoint g = curve.generator();
  EXPECT_EQ(curve.dbl(g), curve.add(g, g));
}

TEST_P(CurveTest, ScalarMulDistributes) {
  const CurveParams& p = curve_params(GetParam());
  const Curve curve(p);
  sim::Rng rng(99);
  for (int i = 0; i < 3; ++i) {
    const BigInt a = BigInt::random_unit(rng, p.n);
    const BigInt b = BigInt::random_unit(rng, p.n);
    const AffinePoint lhs = curve.mul_base(BigInt::mod_add(a, b, p.n));
    const AffinePoint rhs = curve.add(curve.mul_base(a), curve.mul_base(b));
    EXPECT_EQ(lhs, rhs) << p.name;
  }
}

TEST_P(CurveTest, ScalarMulResultsOnCurve) {
  const CurveParams& p = curve_params(GetParam());
  const Curve curve(p);
  sim::Rng rng(7);
  for (int i = 0; i < 3; ++i) {
    const BigInt k = BigInt::random_unit(rng, p.n);
    EXPECT_TRUE(curve.on_curve(curve.mul_base(k))) << p.name;
  }
}

TEST_P(CurveTest, AddInverseGivesInfinity) {
  const CurveParams& p = curve_params(GetParam());
  const Curve curve(p);
  const AffinePoint g = curve.generator();
  const AffinePoint neg = AffinePoint::make(g.x, p.p - g.y);
  EXPECT_TRUE(curve.on_curve(neg));
  EXPECT_TRUE(curve.add(g, neg).infinity);
}

TEST_P(CurveTest, IdentityLaws) {
  const Curve curve(curve_params(GetParam()));
  const AffinePoint g = curve.generator();
  const AffinePoint o = AffinePoint::identity();
  EXPECT_EQ(curve.add(g, o), g);
  EXPECT_EQ(curve.add(o, g), g);
  EXPECT_TRUE(curve.add(o, o).infinity);
  EXPECT_TRUE(curve.mul(BigInt(0), g).infinity);
  EXPECT_EQ(curve.mul(BigInt(1), g), g);
}

TEST_P(CurveTest, SmallMultiplesConsistent) {
  const Curve curve(curve_params(GetParam()));
  const AffinePoint g = curve.generator();
  AffinePoint acc = AffinePoint::identity();
  for (std::uint64_t k = 1; k <= 8; ++k) {
    acc = curve.add(acc, g);
    EXPECT_EQ(curve.mul(BigInt(k), g), acc) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTable2Curves, CurveTest,
                         ::testing::ValuesIn(kAllCurves),
                         [](const auto& info) {
                           return std::string(curve_name(info.param));
                         });

TEST(Curve, OffCurvePointDetected) {
  const CurveParams& p = curve_params(CurveId::kSecp256r1);
  const Curve curve(p);
  const AffinePoint bogus = AffinePoint::make(p.gx, p.gx);
  EXPECT_FALSE(curve.on_curve(bogus));
}

TEST(Curve, FieldSizesMatchNames) {
  EXPECT_EQ(curve_params(CurveId::kBrainpoolP160r1).bits, 160u);
  EXPECT_EQ(curve_params(CurveId::kSecp192r1).bits, 192u);
  EXPECT_EQ(curve_params(CurveId::kSecp224r1).bits, 224u);
  EXPECT_EQ(curve_params(CurveId::kSecp256k1).bits, 256u);
  EXPECT_EQ(curve_params(CurveId::kBrainpoolP256r1).bits, 256u);
}

}  // namespace
}  // namespace eesmr::crypto
