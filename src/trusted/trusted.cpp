#include "src/trusted/trusted.hpp"

#include <stdexcept>
#include <utility>

#include "src/common/serde.hpp"

namespace eesmr::trusted {

Bytes Attestation::preimage() const {
  Writer w;
  w.u8('U');
  w.u8('I');
  w.u32(node);
  w.u64(counter);
  w.bytes(digest);
  return w.take();
}

Bytes Attestation::encode() const {
  Writer w;
  w.u32(node);
  w.u64(counter);
  w.bytes(digest);
  w.bytes(sig);
  return w.take();
}

Attestation Attestation::decode(BytesView bytes) {
  Reader r(bytes);
  Attestation a;
  a.node = r.u32();
  a.counter = r.u64();
  a.digest = r.bytes();
  a.sig = r.bytes();
  r.expect_done();
  return a;
}

TrustedCounter::TrustedCounter(std::shared_ptr<const crypto::Keyring> keyring,
                               NodeId node, energy::Meter* meter,
                               prof::Profiler* profiler)
    : keyring_(std::move(keyring)), node_(node), meter_(meter),
      prof_(profiler) {
  if (!keyring_) {
    throw std::invalid_argument("TrustedCounter: keyring required");
  }
  if (node_ >= keyring_->size()) {
    throw std::invalid_argument("TrustedCounter: node outside keyring");
  }
}

Attestation TrustedCounter::attest(BytesView digest) {
  Attestation a;
  a.node = node_;
  a.counter = ++counter_;  // increment-then-sign: no value signs twice
  a.digest = Bytes(digest.begin(), digest.end());
  a.sig = keyring_->signer(node_).sign(a.preimage());
  if (meter_ != nullptr) {
    meter_->charge(energy::Category::kAttest,
                   energy::attest_energy_mj(keyring_->scheme()));
  }
  if (prof_ != nullptr) prof_->count_crypto("trusted", "attest", "attest");
  return a;
}

SealedCounter TrustedCounter::seal() const {
  return SealedCounter{node_, counter_};
}

void TrustedCounter::unseal(const SealedCounter& sealed) {
  if (sealed.node != node_) {
    throw std::invalid_argument("TrustedCounter::unseal: wrong node");
  }
  // Monotonic adoption: a stale sealed blob can never roll the counter
  // back and free already-used values.
  if (sealed.counter > counter_) counter_ = sealed.counter;
}

bool verify_attestation(const crypto::Keyring& keyring, const Attestation& att,
                        energy::Meter* meter, prof::Profiler* profiler,
                        const char* site) {
  if (att.node >= keyring.size() || att.counter == 0) return false;
  if (meter != nullptr) {
    meter->charge(energy::Category::kAttest,
                  energy::verify_attest_energy_mj(keyring.scheme()));
  }
  if (profiler != nullptr) profiler->count_crypto("trusted", "verify", site);
  return keyring.verify(att.node, att.preimage(), att.sig);
}

AttestationTracker::Verdict AttestationTracker::observe(
    const Attestation& att) {
  PerSender& s = senders_[att.node];
  if (att.counter > s.last && s.rebase_pending) {
    s.rebase_pending = false;
    ++rebased_;
    s.last = att.counter;
    s.digests.emplace(att.counter, att.digest);
    return Verdict::kAccept;
  }
  if (att.counter == s.last + 1 ||
      (max_gap_ != 0 && att.counter > s.last + max_gap_)) {
    s.last = att.counter;
    s.digests.emplace(att.counter, att.digest);
    return Verdict::kAccept;
  }
  if (att.counter > s.last) return Verdict::kHold;
  const auto it = s.digests.find(att.counter);
  if (it != s.digests.end() && it->second != att.digest) {
    ++reuse_;
    return Verdict::kReuse;
  }
  // Either a byte-identical redelivery or a value whose digest memory was
  // already GC'd (at that point the value is final and below every
  // correct receiver's frontier — safe to treat as a dupe).
  ++replays_;
  return Verdict::kReplay;
}

void AttestationTracker::rebase(NodeId node) {
  senders_[node].rebase_pending = true;
}

std::uint64_t AttestationTracker::rebases_pending() const {
  std::uint64_t n = 0;
  for (const auto& [node, s] : senders_) {
    (void)node;
    if (s.rebase_pending) ++n;
  }
  return n;
}

void AttestationTracker::skip_to(NodeId node, std::uint64_t counter) {
  if (counter == 0) return;
  PerSender& s = senders_[node];
  if (counter - 1 <= s.last) return;  // never move the frontier backwards
  s.last = counter - 1;
  ++gap_skips_;
}

std::uint64_t AttestationTracker::last(NodeId node) const {
  const auto it = senders_.find(node);
  return it == senders_.end() ? 0 : it->second.last;
}

void AttestationTracker::forget_window(std::uint64_t keep) {
  for (auto& [node, s] : senders_) {
    (void)node;
    if (s.last <= keep) continue;
    s.digests.erase(s.digests.begin(), s.digests.upper_bound(s.last - keep));
  }
}

}  // namespace eesmr::trusted
