// Latency-knee sweep (ROADMAP follow-up to the client subsystem): an
// open-loop Poisson rate ladder pushed past saturation, locating the
// offered load where p99 latency departs the service floor — the knee —
// and how the bounded mempool sheds the overload past it. EESMR vs Sync
// HotStuff, n = 4, bounded admission (mempool_capacity) so open-loop
// overload degrades by shedding instead of unbounded queueing.
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/harness/cluster.hpp"
#include "src/exp/record.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

int main(int argc, char** argv) {
  exp::Experiment ex("fig_latency_knee",
                     "open-loop saturation ladder (§3 client interface; "
                     "admission control of the bounded mempool)",
                     argc, argv, /*default_seed=*/23);

  std::vector<std::size_t> rates = {5, 10, 20, 40, 80, 160, 320, 640};
  if (ex.smoke()) rates = {10, 80, 640};
  const std::vector<Protocol> protocols = {Protocol::kEesmr,
                                           Protocol::kSyncHotStuff};
  const sim::Duration run_time =
      ex.smoke() ? sim::seconds(10) : sim::seconds(30);

  exp::Grid grid;
  grid.axis("protocol", {"EESMR", "SyncHS"});
  grid.axis_of("rate_rps", rates);

  exp::Report& rep = ex.run("knee", grid, [&](const exp::RunContext& c) {
    ClusterConfig cfg;
    cfg.protocol = protocols[c.at("protocol")];
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = c.seed;
    cfg.batch_size = 32;
    cfg.clients = 4;
    cfg.mempool_capacity = 256;  // shed overload instead of queueing
    cfg.workload.mode = client::WorkloadSpec::Mode::kOpenLoop;
    cfg.workload.rate_per_sec = static_cast<double>(rates[c.at("rate_rps")]);
    exp::prepare(c, cfg);
    harness::Cluster cluster(cfg);
    const RunResult r = cluster.run_for(run_time);
    exp::observe(c, r);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    const harness::RunSummary s = r.summarize();
    exp::MetricRow row;
    row.set("offered_rps", rates[c.at("rate_rps")] * cfg.clients);
    row.set("goodput_rps", s.accepted_per_sec);
    row.set("accepted", s.requests_accepted);
    row.set("dropped", s.requests_dropped);
    row.set("p50_ms", s.latency_p50_ms);
    row.set("p99_ms", s.latency_p99_ms);
    row.set("mj_per_block", s.energy_per_block_mj);
    row.set("run", exp::run_result_json(r));
    return row;
  });
  rep.print_table(1);

  // Knee per protocol: first rate where p99 exceeds 3x the lowest-rate
  // p99 — a formatting pass over the committed rows.
  exp::Report knees;
  knees.name = "knee_location";
  knees.grid.axis("protocol", {"EESMR", "SyncHS"});
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    const double floor_p99 = rep.rows[p * rates.size()].number("p99_ms");
    exp::MetricRow row;
    row.set("service_floor_p99_ms", floor_p99);
    bool found = false;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const exp::MetricRow& r = rep.rows[p * rates.size() + i];
      // A zero floor (no samples at the lowest rate) makes every row
      // "past the knee"; report no knee instead of a degenerate one.
      if (floor_p99 > 0 && r.number("p99_ms") > 3.0 * floor_p99) {
        row.set("knee_offered_rps", r.number("offered_rps"));
        row.set("knee_p99_ms", r.number("p99_ms"));
        found = true;
        break;
      }
    }
    if (!found) {
      row.skip("knee_offered_rps");
      row.skip("knee_p99_ms");
    }
    knees.rows.push_back(std::move(row));
  }
  ex.add_section(std::move(knees)).print_table(1);

  ex.note("expected shape: goodput tracks offered load until the block "
          "pipeline saturates, then flattens while p99 climbs and the "
          "bounded mempool starts shedding (dropped > 0); the knee "
          "tracks the protocol's block period, so EESMR's 4Δ "
          "equivocation-free commit wait caps goodput before Sync "
          "HotStuff's 2Δ-pipelined heights do — the flip side of the "
          "energy advantage, which EESMR keeps at every load");
  return ex.finish();
}
