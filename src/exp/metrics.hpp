// Structured run metrics: MetricRow (the measurements of one grid
// point, in declaration order) and Report (one section of a bench run:
// the grid, its rows, and notes), with JSON/CSV serialization and a
// generic aligned table printer. This is the layer that turns a bench
// from printf soup into data the perf trajectory can accumulate.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/exp/grid.hpp"
#include "src/exp/json.hpp"

namespace eesmr::exp {

/// Metrics of one run. Values are JSON values so a row can carry plain
/// scalars (printed in tables / CSV) alongside nested detail objects
/// such as the full serialized RunResult (JSON output only).
class MetricRow {
 public:
  /// Set (or overwrite) a metric; insertion order is the column order.
  MetricRow& set(const std::string& name, Json value) {
    values_.set(name, std::move(value));
    return *this;
  }
  /// Shorthand for a missing / not-applicable cell (prints as "-").
  MetricRow& skip(const std::string& name) { return set(name, Json()); }

  [[nodiscard]] bool contains(const std::string& name) const {
    return values_.contains(name);
  }
  [[nodiscard]] const Json& at(const std::string& name) const {
    return values_.at(name);
  }
  [[nodiscard]] double number(const std::string& name) const {
    return values_.at(name).as_double();
  }
  [[nodiscard]] const std::vector<JsonMember>& values() const {
    return values_.members();
  }

 private:
  Json values_ = Json::object();
};

/// One section of a bench: the grid it swept, one row per grid point
/// (in grid order), plus per-row axis labels.
struct Report {
  std::string name;        ///< section name ("main" for single-section benches)
  Grid grid;
  std::vector<MetricRow> rows;  ///< size() == grid.size()
  std::vector<std::string> notes;

  /// Axis labels of row `i`, in axis order.
  [[nodiscard]] std::vector<std::string> labels(std::size_t i) const;

  [[nodiscard]] Json to_json() const;

  /// Flat CSV: axis columns then the union of scalar metric columns
  /// (first-seen order). Nested values and nulls render empty.
  [[nodiscard]] std::string to_csv() const;

  /// Aligned human-readable table to stdout: axis columns then every
  /// scalar metric column. Doubles print with `precision` decimals.
  void print_table(int precision = 2) const;
};

}  // namespace eesmr::exp
