#include "src/baselines/sync_hotstuff.hpp"

#include <algorithm>
#include <cassert>

#include "src/common/serde.hpp"

namespace eesmr::baselines {

using smr::Block;
using smr::BlockHash;
using smr::Msg;
using smr::MsgType;
using smr::QuorumCert;

namespace {
std::string hkey(const BlockHash& h) {
  return std::string(h.begin(), h.end());
}
}  // namespace

SyncHsReplica::SyncHsReplica(net::Network& net, smr::ReplicaConfig cfg,
                             SyncHsOptions opts, SyncHsByzantineConfig byz,
                             energy::Meter* meter)
    : ReplicaBase(net, std::move(cfg), meter),
      opts_(opts),
      byz_(byz),
      blame_timer_(sched_) {
  // Protocol default for the vote stream: "partially implementing vote
  // forwarding" (§5.7, in Sync HotStuff's favor) — one transmission to
  // the direct neighborhood, no re-forwarding. With k >= f the k
  // in-neighbors plus the node itself already form an f+1 quorum. An
  // explicit policy in ReplicaConfig::channels overrides this.
  if (config().channels[energy::Stream::kVote].kind ==
      net::DisseminationPolicy::Kind::kDefault) {
    set_channel_policy(energy::Stream::kVote,
                       net::DisseminationPolicy::local_kcast());
  }
  certified_tip_ = smr::genesis_hash();
  certified_height_ = 0;
  QuorumCert g;
  g.type = MsgType::kVote;
  g.view = 0;
  g.round = 0;
  g.data = smr::genesis_hash();
  tip_cert_ = g;
}

void SyncHsReplica::start() {
  if (started_) return;
  started_ = true;
  v_cur_ = 1;
  phase_ = Phase::kSteady;
  reset_blame_timer(4 * cfg_.delta);
  if (proposer_for(1) == cfg_.id) propose(1);
}

// ---------------------------------------------------------------------------
// Steady state
// ---------------------------------------------------------------------------

void SyncHsReplica::propose(std::uint64_t height) {
  if (crashed_ || phase_ != Phase::kSteady) return;
  if (byz_.mode == SyncHsByzantineMode::kCrash &&
      byz_.trigger_height != 0 && height >= byz_.trigger_height) {
    crashed_ = true;
    blame_timer_.cancel();
    cancel_commit_timers();
    router().set_forwarding(false);
    return;
  }

  const Block* parent = store_.get(certified_tip_);
  assert(parent != nullptr);
  auto build = [&](const std::string& tag) {
    Block b;
    b.parent = certified_tip_;
    b.height = parent->height + 1;
    b.view = v_cur_;
    b.round = height;
    b.proposer = cfg_.id;
    b.cmds = mempool_.next_batch(cfg_.batch_size);
    if (!tag.empty()) b.cmds.push_back({to_bytes(tag)});
    return b;
  };
  auto send_proposal = [&](const Block& b) {
    (void)hash_block(b);
    Writer w;
    w.bytes(b.encode());
    w.bytes(tip_cert_->encode());
    Msg prop = make_msg(MsgType::kPropose, height, w.take());
    broadcast(prop);
    prof_flow_block("propose", b, energy::Stream::kProposal,
                    prop.encode().size());
    if (tracing()) {
      trace_instant("commit", "propose",
                    {{"round", exp::Json(height)},
                     {"height", exp::Json(b.height)},
                     {"view", exp::Json(v_cur_)}});
    }
    store_.add(b);
    handle_propose(cfg_.id, prop);
  };

  if (byz_.mode == SyncHsByzantineMode::kEquivocate &&
      height == byz_.trigger_height) {
    send_proposal(build("equivocation-A"));
    send_proposal(build("equivocation-B"));
    return;
  }
  send_proposal(build(""));
}

void SyncHsReplica::handle_propose(NodeId from, const Msg& msg) {
  if (msg.view != v_cur_) {
    if (msg.view > v_cur_) buffer_future(msg);
    return;
  }
  if (phase_ != Phase::kSteady) return;
  Block b;
  QuorumCert parent_cert;
  try {
    Reader r(msg.data);
    b = Block::decode(r.bytes());
    parent_cert = QuorumCert::decode(r.bytes());
  } catch (const SerdeError&) {
    return;
  }
  const NodeId leader = proposer_for(msg.round);
  if (msg.author != leader || b.proposer != leader || b.view != v_cur_ ||
      b.round != msg.round) {
    return;
  }
  const BlockHash h = hash_block(b);

  // Equivocation detection: conflicting leader proposals for one height.
  auto [it, inserted] = seen_.try_emplace(b.height, h, msg);
  if (!inserted && it->second.first != h) {
    // Keep the conflicting block: other nodes may have certified it
    // before detecting the equivocation, and the view change's status
    // exchange can legitimately hand us its certificate.
    (void)integrate_block(b, from);
    cancel_commit_timers();
    commits_disabled_ = true;
    send_blame();
    return;
  }

  // The certificate must certify the parent.
  if (parent_cert.data != b.parent || !cert_valid(parent_cert)) return;
  if (!integrate_block(b, from)) {
    retry_.push_back(msg);
    return;
  }
  // Vote for proposals whose certified parent is at least as high as the
  // highest certified block we know (Sync HotStuff's vote rule). The
  // strict earlier form — extends OUR certified tip — loses safety after
  // an equivocation splits the votes: both conflicting blocks can
  // certify on disjoint node subsets, each node locks its own branch,
  // and the next view's leader can then commit alone on a branch the
  // rest abandoned (found by the adversary conformance matrix). Voting
  // re-locks us onto the proposal's certified branch, so every honest
  // node follows the new leader and the 2Δ commit argument closes again.
  if (!store_.extends(h, certified_tip_)) {
    const Block* parent = store_.get(b.parent);
    if (parent == nullptr || parent->height < certified_height_) return;
    certified_tip_ = b.parent;
    certified_height_ = parent->height;
    tip_cert_ = parent_cert;
  }
  // At most one vote per height per view: an equivocation window must
  // not arm 2Δ commits for two conflicting siblings.
  if (!voted_height_.try_emplace(b.height, h).second) return;
  if (!voted_.insert(hkey(h)).second) return;
  vote_for(b, h);
}

void SyncHsReplica::vote_for(const Block& block, const BlockHash& h) {
  if (tracing()) {
    // Voting opens the 2Δ per-height block span; commit_chain's
    // async_end closes it.
    trace_begin("block", "block", block.height,
                {{"round", exp::Json(block.round)},
                 {"view", exp::Json(block.view)}});
    trace_instant("commit", "vote", {{"height", exp::Json(block.height)}});
  }
  Msg vote = make_msg(MsgType::kVote, 0, h);
  prof_flow_block("vote", block, energy::Stream::kVote, vote.encode().size());
  // Disseminated per the vote channel's policy (LocalKcast by default;
  // a Flood or RoutedUnicast sweep plugs in via ReplicaConfig::channels).
  broadcast(vote);
  handle_vote(vote);  // count own vote
  reset_blame_timer(4 * cfg_.delta);
  // 2Δ commit wait (Sync HotStuff's synchronous commit rule).
  if (!commits_disabled_) {
    const auto id =
        sched_.after(2 * cfg_.delta, "commit_timer",
                     [this, h] { commit_timeout(h); });
    commit_timers_[hkey(h)] = id;
  }
}

void SyncHsReplica::handle_vote(const Msg& msg) {
  if (msg.view != v_cur_) {
    if (msg.view > v_cur_) buffer_future(msg);
    return;
  }
  auto& bucket = votes_[hkey(msg.data)];
  for (const Msg& m : bucket) {
    if (m.author == msg.author) return;
  }
  bucket.push_back(msg);
  if (bucket.size() == quorum()) certify(msg.data);
  if (opts_.optimistic_fast_path && bucket.size() == optimistic_quorum() &&
      !commits_disabled_ && store_.contains(msg.data)) {
    // OptSync responsive commit: ⌊3n/4⌋+1 votes commit immediately.
    const auto timer = commit_timers_.find(hkey(msg.data));
    if (timer != commit_timers_.end()) {
      sched_.cancel(timer->second);
      commit_timers_.erase(timer);
    }
    commit_chain(msg.data);
  }
}

void SyncHsReplica::certify(const BlockHash& h) {
  const Block* b = store_.get(h);
  if (b == nullptr) return;
  if (b->height <= certified_height_) return;
  trace_instant("commit", "certify", {{"height", exp::Json(b->height)}});
  prof_flow_block("certify", *b, energy::Stream::kVote, 0);
  certified_tip_ = h;
  certified_height_ = b->height;
  tip_cert_ = make_cert(std::vector<Msg>(
      votes_[hkey(h)].begin(),
      votes_[hkey(h)].begin() + static_cast<std::ptrdiff_t>(quorum())));
  if (proposer_for(b->round + 1) == cfg_.id && phase_ == Phase::kSteady &&
      !crashed_) {
    propose(b->round + 1);
  }
}

void SyncHsReplica::commit_timeout(const BlockHash& h) {
  commit_timers_.erase(hkey(h));
  if (commits_disabled_) return;
  // An offline replica (crash/recover, chase-the-leader) must not commit
  // on a timer armed before it went down: equivocation evidence or a view
  // change may have passed it by, so the commit could be a private fork.
  if (!online()) return;
  commit_chain(h);
}

void SyncHsReplica::cancel_commit_timers() {
  for (const auto& [h, id] : commit_timers_) sched_.cancel(id);
  commit_timers_.clear();
}

// ---------------------------------------------------------------------------
// Blame and view change
// ---------------------------------------------------------------------------

void SyncHsReplica::reset_blame_timer(sim::Duration d) {
  if (crashed_) return;
  blame_timer_.start(d, "blame_timer", [this] { send_blame(); });
}

void SyncHsReplica::on_restart() {
  if (crashed_ || !started_) return;
  reset_blame_timer(6 * cfg_.delta);
}

void SyncHsReplica::send_blame() {
  if (blamed_ || crashed_) return;
  blamed_ = true;
  trace_instant("view", "blame", {{"view", exp::Json(v_cur_)}});
  Msg blame = make_msg(MsgType::kBlame, 0, {});
  broadcast(blame);
  handle_blame(blame);
}

void SyncHsReplica::handle_blame(const Msg& msg) {
  if (msg.view != v_cur_ || msg.round != 0 || !msg.data.empty()) return;
  if (!blamers_.insert(msg.author).second) return;
  blame_msgs_.push_back(msg);
  if (blamers_.size() >= quorum() && phase_ == Phase::kSteady) {
    const QuorumCert qc = make_cert(std::vector<Msg>(
        blame_msgs_.begin(),
        blame_msgs_.begin() + static_cast<std::ptrdiff_t>(quorum())));
    Msg qc_msg = make_msg(MsgType::kBlameQC, 0, qc.encode());
    broadcast(qc_msg);
    on_blame_quorum();
  }
}

void SyncHsReplica::handle_blame_qc(const Msg& msg) {
  if (msg.view != v_cur_) {
    if (msg.view > v_cur_) buffer_future(msg);
    return;
  }
  if (phase_ != Phase::kSteady) return;
  QuorumCert qc;
  try {
    qc = QuorumCert::decode(msg.data);
  } catch (const SerdeError&) {
    return;
  }
  if (qc.type != MsgType::kBlame || qc.view != v_cur_) return;
  if (!verify_qc(qc, quorum())) return;
  on_blame_quorum();
}

void SyncHsReplica::on_blame_quorum() {
  if (phase_ != Phase::kSteady) return;
  cancel_commit_timers();
  commits_disabled_ = true;
  blame_timer_.cancel();
  phase_ = Phase::kQuitDelay;
  sched_.after(cfg_.delta, "view_change", [this] { quit_view(); });
}

void SyncHsReplica::quit_view() {
  trace_begin("view", "view_change", v_cur_, {{"view", exp::Json(v_cur_)}});
  // Broadcast the highest certified block (status) and move to the next
  // view after 2Δ — Sync HotStuff's one-round view change.
  Msg status = make_msg(MsgType::kStatus, 0, tip_cert_->encode());
  broadcast(status);
  phase_ = Phase::kNewView;
  sched_.after(2 * cfg_.delta, "view_change", [this] { enter_new_view(); });
}

void SyncHsReplica::handle_status(const Msg& msg) {
  if (msg.view != v_cur_ && msg.view + 1 != v_cur_) return;
  QuorumCert qc;
  try {
    qc = QuorumCert::decode(msg.data);
  } catch (const SerdeError&) {
    return;
  }
  if (!cert_valid(qc)) return;
  const std::uint64_t h = qc_block_height(qc);
  if (h > certified_height_ && store_.contains(qc.data)) {
    certified_tip_ = qc.data;
    certified_height_ = h;
    tip_cert_ = qc;
  }
  status_.emplace(msg.author, qc);
}

void SyncHsReplica::enter_new_view() {
  if (tracing()) {
    trace_end("view", "view_change", v_cur_,
              {{"new_view", exp::Json(v_cur_ + 1)}});
  }
  v_cur_ += 1;
  blamers_.clear();
  blame_msgs_.clear();
  blamed_ = false;
  commits_disabled_ = false;
  nv_proposed_ = false;
  seen_.clear();
  status_.clear();
  voted_height_.clear();  // one vote per height per VIEW
  phase_ = Phase::kSteady;
  if (crashed_) return;
  reset_blame_timer(6 * cfg_.delta);
  const bool proposes_next =
      opts_.rotating_leader
          ? proposer_for(certified_height_ + 1) == cfg_.id
          : is_leader();
  if (proposes_next) {
    // Give straggler status messages a moment, then propose from the
    // highest certified block.
    sched_.after(2 * cfg_.delta, "view_change", [this, v = v_cur_] {
      if (v == v_cur_ && !nv_proposed_) leader_propose_new_view();
    });
  }
  drain_buffered();
}

void SyncHsReplica::leader_propose_new_view() {
  if (byz_.mode == SyncHsByzantineMode::kCrash && byz_.trigger_height == 0) {
    crashed_ = true;
    router().set_forwarding(false);
    return;
  }
  nv_proposed_ = true;
  const Block* parent = store_.get(certified_tip_);
  if (parent == nullptr) return;
  if (proposer_for(parent->round + 1) == cfg_.id) propose(parent->round + 1);
}

void SyncHsReplica::handle_new_view_proposal(NodeId, const Msg&) {}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

bool SyncHsReplica::cert_valid(const QuorumCert& qc) {
  if (qc.data == smr::genesis_hash() && qc.sigs.empty()) return true;
  if (qc.type != MsgType::kVote) return false;
  return verify_qc(qc, quorum());
}

std::uint64_t SyncHsReplica::qc_block_height(const QuorumCert& qc) const {
  const Block* b = store_.get(qc.data);
  return b == nullptr ? 0 : b->height;
}

void SyncHsReplica::buffer_future(const Msg& msg) {
  if (future_.size() > 4096) return;
  future_.push_back(msg);
}

void SyncHsReplica::drain_buffered() {
  std::vector<Msg> retry;
  retry.swap(retry_);
  std::vector<Msg> pending;
  pending.swap(future_);
  for (const Msg& m : retry) handle(m.author, m);
  for (const Msg& m : pending) handle(m.author, m);
}

void SyncHsReplica::on_chain_connected(const Block&) {
  std::vector<Msg> retry;
  retry.swap(retry_);
  for (const Msg& m : retry) handle(m.author, m);
}

void SyncHsReplica::on_low_water(const Block& root) {
  // Per-block side state for heights at or below the stable checkpoint
  // is final on f+1 replicas: reclaim the equivocation records and the
  // vote tallies of the about-to-be-truncated blocks. Buckets whose
  // block is NOT in the store are kept — votes routinely arrive before
  // their proposal, and peers never retransmit them, so wiping an
  // in-flight bucket could cost the block its quorum.
  seen_.erase(seen_.begin(), seen_.upper_bound(root.height));
  voted_height_.erase(voted_height_.begin(),
                      voted_height_.upper_bound(root.height));
  for (auto it = votes_.begin(); it != votes_.end();) {
    const BlockHash h(it->first.begin(), it->first.end());
    const Block* b = store_.get(h);
    if (b != nullptr && b->height <= root.height) {
      voted_.erase(it->first);
      it = votes_.erase(it);
    } else {
      ++it;
    }
  }
}

void SyncHsReplica::on_state_transfer(const Block& root) {
  certified_tip_ = root.hash();
  certified_height_ = root.height;
  // Placeholder certificate: the checkpoint certificate attests the tip,
  // but it is not a vote QC, so peers reject proposals carrying this
  // stand-in. Harmless — a freshly-recovered replica re-certifies the
  // next block from live votes before it could ever need to propose, and
  // a stalled recovered leader is demoted by the normal blame path.
  QuorumCert q;
  q.type = MsgType::kVote;
  q.view = root.view;
  q.data = certified_tip_;
  tip_cert_ = q;
  if (root.view > v_cur_) v_cur_ = root.view;
  phase_ = Phase::kSteady;
  commits_disabled_ = false;
  cancel_commit_timers();
  seen_.clear();
  votes_.clear();
  voted_.clear();
  voted_height_.clear();
  reset_blame_timer(8 * cfg_.delta);
  drain_buffered();
}

void SyncHsReplica::handle(NodeId from, const Msg& msg) {
  if (crashed_) return;
  switch (msg.type) {
    case MsgType::kPropose:
      handle_propose(from, msg);
      break;
    case MsgType::kVote:
      handle_vote(msg);
      break;
    case MsgType::kBlame:
      handle_blame(msg);
      break;
    case MsgType::kBlameQC:
      handle_blame_qc(msg);
      break;
    case MsgType::kStatus:
      handle_status(msg);
      break;
    default:
      break;
  }
}

}  // namespace eesmr::baselines
