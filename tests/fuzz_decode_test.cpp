// Robustness sweep: decoding arbitrary bytes (Byzantine wire data) must
// either succeed or throw SerdeError / std::invalid_argument — never
// crash, never leak unbounded memory. Mutated-valid inputs probe the
// interesting boundary cases.
#include <gtest/gtest.h>

#include "src/common/serde.hpp"
#include "src/sim/rng.hpp"
#include "src/smr/block.hpp"
#include "src/smr/message.hpp"

namespace eesmr {
namespace {

template <typename Fn>
void expect_no_crash(Fn&& decode, BytesView data) {
  try {
    decode(data);
  } catch (const SerdeError&) {
  } catch (const std::invalid_argument&) {
  }
  // Any other exception type (or a crash) fails the test by escaping.
}

TEST(FuzzDecode, RandomBytes) {
  sim::Rng rng(0xf22d);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); }, junk);
    expect_no_crash([](BytesView d) { (void)smr::Msg::decode(d); }, junk);
    expect_no_crash([](BytesView d) { (void)smr::QuorumCert::decode(d); },
                    junk);
  }
}

TEST(FuzzDecode, MutatedValidBlock) {
  smr::Block b;
  b.parent = smr::genesis_hash();
  b.height = 1;
  b.view = 1;
  b.round = 3;
  b.cmds = {smr::Command{Bytes(20, 0x33)}};
  const Bytes valid = b.encode();

  sim::Rng rng(0xdead);
  for (int iter = 0; iter < 3000; ++iter) {
    Bytes mutated = valid;
    // Flip 1-4 random bytes and/or truncate.
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); },
                    mutated);
  }
}

TEST(FuzzDecode, MutatedValidQuorumCert) {
  auto ring = crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, 4, 1);
  std::vector<smr::Msg> msgs;
  for (NodeId i = 0; i < 3; ++i) {
    smr::Msg m;
    m.type = smr::MsgType::kBlame;
    m.view = 2;
    m.author = i;
    m.sig = ring->signer(i).sign(m.preimage());
    msgs.push_back(m);
  }
  const Bytes valid = smr::QuorumCert::combine(msgs).encode();

  sim::Rng rng(0xbeef);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes mutated = valid;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    if (rng.chance(0.3)) mutated.resize(rng.below(mutated.size() + 1));
    // Decode may throw; if it succeeds, verification must not crash and
    // a mutated certificate must never verify as a forged quorum for a
    // different preimage... (same data -> may still verify: flipping
    // padding bytes inside a signature field of a *simulated* scheme can
    // be caught only by verify).
    try {
      const smr::QuorumCert qc = smr::QuorumCert::decode(mutated);
      (void)qc.verify(*ring, 3);
    } catch (const SerdeError&) {
    }
  }
}

TEST(FuzzDecode, LengthPrefixBombsRejected) {
  // A 4 GiB length prefix must not allocate 4 GiB.
  Writer w;
  w.u32(0xffffffffu);
  expect_no_crash([](BytesView d) { (void)smr::Block::decode(d); },
                  w.buffer());
  Reader r(w.buffer());
  EXPECT_THROW((void)r.bytes(), SerdeError);
}

}  // namespace
}  // namespace eesmr
