# Empty dependencies file for eesmr_test.
# This may be replaced when dependencies are built.
