// RSA signatures (PKCS#1 v1.5 with SHA-256), built on BigInt.
//
// The paper (Table 2, §5.5) identifies verification-efficient RSA as the
// energy-optimal signature scheme for the leader-signs/replicas-verify
// pattern. We implement key generation (Miller-Rabin), signing with the
// CRT speed-up, and verification with e = 65537.
#pragma once

#include <cstddef>

#include "src/common/bytes.hpp"
#include "src/crypto/bigint.hpp"
#include "src/sim/rng.hpp"

namespace eesmr::crypto {

struct RsaPublicKey {
  BigInt n;  ///< modulus
  BigInt e;  ///< public exponent (65537)
  std::size_t modulus_bytes = 0;
};

struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  // CRT components.
  BigInt p, q, dp, dq, qinv;
  std::size_t modulus_bytes = 0;

  [[nodiscard]] RsaPublicKey public_key() const { return {n, e, modulus_bytes}; }
};

struct RsaKeyPair {
  RsaPrivateKey priv;
  RsaPublicKey pub;
};

/// Miller-Rabin probabilistic primality test with `rounds` random bases.
bool is_probable_prime(const BigInt& n, sim::Rng& rng, int rounds = 20);

/// Generate a random prime with exactly `bits` bits (top two bits set so
/// products of two primes reach full modulus length).
BigInt generate_prime(std::size_t bits, sim::Rng& rng);

/// Generate an RSA key with the given modulus size (e.g. 1024, 1260, 2048).
/// Deterministic given the RNG state.
RsaKeyPair rsa_generate(std::size_t modulus_bits, sim::Rng& rng);

/// Sign SHA-256(msg) with EMSA-PKCS1-v1_5. Returns modulus_bytes bytes.
Bytes rsa_sign(const RsaPrivateKey& key, BytesView msg);

/// Verify a PKCS#1 v1.5 SHA-256 signature.
bool rsa_verify(const RsaPublicKey& key, BytesView msg, BytesView sig);

}  // namespace eesmr::crypto
