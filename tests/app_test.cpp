// Execution layer tests: key-value state machine, f+1 client acks, and
// the end-to-end replica integration (identical state digests).
#include "src/smr/app.hpp"

#include <gtest/gtest.h>

#include "src/common/serde.hpp"
#include "src/harness/cluster.hpp"

namespace eesmr::smr {
namespace {

Command cmd(const std::string& text) { return Command{to_bytes(text)}; }

TEST(KvStore, SetGetDel) {
  KvStore kv;
  EXPECT_EQ(to_string(kv.apply(cmd("set soil_ph 6.5"))), "ok");
  EXPECT_EQ(to_string(kv.apply(cmd("get soil_ph"))), "6.5");
  EXPECT_EQ(to_string(kv.apply(cmd("del soil_ph"))), "ok");
  EXPECT_EQ(to_string(kv.apply(cmd("get soil_ph"))), "(nil)");
  EXPECT_EQ(to_string(kv.apply(cmd("del soil_ph"))), "(nil)");
  EXPECT_EQ(kv.applied(), 5u);
}

TEST(KvStore, IncrementCounter) {
  KvStore kv;
  EXPECT_EQ(to_string(kv.apply(cmd("inc visits"))), "1");
  EXPECT_EQ(to_string(kv.apply(cmd("inc visits"))), "2");
  EXPECT_EQ(to_string(kv.apply(cmd("get visits"))), "2");
}

TEST(KvStore, MalformedCommandsReturnErr) {
  KvStore kv;
  EXPECT_EQ(to_string(kv.apply(cmd(""))), "err");
  EXPECT_EQ(to_string(kv.apply(cmd("frobnicate"))), "err");
  EXPECT_EQ(to_string(kv.apply(cmd("set only_key"))), "err");
}

TEST(KvStore, StateDigestDeterministic) {
  KvStore a, b;
  a.apply(cmd("set x 1"));
  a.apply(cmd("set y 2"));
  b.apply(cmd("set y 2"));
  b.apply(cmd("set x 1"));
  // Same final state (different order of independent keys) -> same digest.
  EXPECT_EQ(a.state_digest(), b.state_digest());
  b.apply(cmd("set z 3"));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(KvStore, SnapshotRestoreReproducesDigestExactly) {
  KvStore a;
  // Keys and values that stress the text codec: the command language
  // tokenizes on whitespace, so "values with spaces" can only enter the
  // table as separate tokens — but restore() must handle ANY table the
  // apply path can produce, including empty-string values via direct
  // snapshot transport.
  a.apply(cmd("set plot_a 6.5"));
  a.apply(cmd("set plot_b "));  // tokenizes short: err, no table change
  a.apply(cmd("inc visits"));
  a.apply(cmd("set unicode_key ☃"));
  a.apply(cmd("del plot_a"));
  a.apply(cmd("get visits"));

  KvStore b;
  b.restore(a.snapshot());
  EXPECT_EQ(b.state_digest(), a.state_digest());
  EXPECT_EQ(b.applied(), a.applied());  // counter rides the snapshot
  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.get("visits"), a.get("visits"));

  // The restored store behaves identically going forward.
  EXPECT_EQ(a.apply(cmd("inc visits")), b.apply(cmd("inc visits")));
  EXPECT_EQ(b.state_digest(), a.state_digest());
}

TEST(KvStore, SnapshotIsDeterministicAcrossInsertionOrders) {
  KvStore a, b;
  a.apply(cmd("set x 1"));
  a.apply(cmd("set y 2"));
  b.apply(cmd("set y 2"));
  b.apply(cmd("set x 1"));
  // Same table, same op count -> byte-identical snapshots (checkpoint
  // certificates sign the snapshot hash, so this must hold).
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(KvStore, RestoreOverwritesExistingStateAtomically) {
  KvStore src;
  src.apply(cmd("set keep 1"));
  const Bytes snap = src.snapshot();

  KvStore dst;
  dst.apply(cmd("set stale 9"));
  dst.restore(snap);
  EXPECT_EQ(dst.state_digest(), src.state_digest());
  EXPECT_FALSE(dst.get("stale").has_value());

  // Malformed snapshots throw and leave the store untouched.
  KvStore guard;
  guard.apply(cmd("set survivor 1"));
  const Bytes before = guard.state_digest();
  Bytes truncated = snap;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(guard.restore(truncated), SerdeError);
  EXPECT_EQ(guard.state_digest(), before);
}

TEST(AckCollector, AcceptsAtFPlusOne) {
  AckCollector acks(2);  // f = 2 -> need 3 identical
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("ok"))).has_value());
  EXPECT_FALSE(acks.add(1, to_bytes(std::string("ok"))).has_value());
  const auto r = acks.add(2, to_bytes(std::string("ok")));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(to_string(*r), "ok");
  EXPECT_TRUE(acks.accepted());
}

TEST(AckCollector, ByzantineMinorityCannotForgeResult) {
  AckCollector acks(1);  // f = 1 -> need 2 identical
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("FORGED"))).has_value());
  EXPECT_FALSE(acks.add(1, to_bytes(std::string("ok"))).has_value());
  const auto r = acks.add(2, to_bytes(std::string("ok")));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(to_string(*r), "ok");
}

TEST(AckCollector, DuplicateReplicaIgnored) {
  AckCollector acks(1);
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("ok"))).has_value());
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("ok"))).has_value());
  EXPECT_TRUE(acks.add(1, to_bytes(std::string("ok"))).has_value());
}

TEST(Execution, ReplicasConvergeOnIdenticalState) {
  harness::ClusterConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.batch_size = 1;
  harness::Cluster cluster(cfg);
  std::vector<KvStore> stores(4);
  for (NodeId i = 0; i < 4; ++i) {
    cluster.replica(i).attach_app(&stores[i]);
  }
  // Feed every replica's pool the same client commands (the leader's
  // pool actually drives proposals).
  for (NodeId i = 0; i < 4; ++i) {
    cluster.replica(i).mempool().submit(cmd("set a 1"));
    cluster.replica(i).mempool().submit(cmd("inc a"));
  }
  const auto r = cluster.run_until_commits(4, sim::seconds(60));
  ASSERT_GE(r.min_committed(), 4u);
  // All replicas applied the same commands in the same order.
  const auto& results0 = cluster.replica(0).execution_results();
  ASSERT_FALSE(results0.empty());
  for (NodeId i = 1; i < 4; ++i) {
    const auto& ri = cluster.replica(i).execution_results();
    const std::size_t common = std::min(results0.size(), ri.size());
    for (std::size_t j = 0; j < common; ++j) {
      EXPECT_EQ(results0[j], ri[j]) << "node " << i << " result " << j;
    }
  }
  // And a client collecting acks for the first command accepts it.
  AckCollector acks(1);
  std::optional<Bytes> accepted;
  for (NodeId i = 0; i < 4; ++i) {
    if (!cluster.replica(i).execution_results().empty()) {
      accepted = acks.add(i, cluster.replica(i).execution_results()[0]);
    }
  }
  ASSERT_TRUE(accepted.has_value());
}

}  // namespace
}  // namespace eesmr::smr
