// MinBFT (Veronese, Correia, Bessani, Lung, Verissimo — IEEE TC 2013):
// BFT SMR with n=2f+1 replicas using a trusted monotonic counter
// (src/trusted) — the "half the replicas at the same f" design point the
// energy matrix prices against EESMR and PBFT.
//
// Agreement messages carry a TrustedCounter attestation (USIG-style UI)
// instead of an ordinary protocol signature:
//  * the primary's kPropose (MinBFT's PREPARE) binds the proposed block's
//    hash to its next counter value;
//  * every backup's kCommit binds the same block hash to ITS next value.
// Receivers verify the attestation and enforce strict per-sender counter
// contiguity (AttestationTracker): the only acceptable next message from
// a sender is last+1, so even a Byzantine primary cannot make two correct
// replicas accept different blocks for the same slot — both proposals
// carry distinct counter values, every receiver processes them in the
// same (counter) order, and the content check rejects the second.
// A block commits on f+1 attested acceptances (the primary's prepare
// counting as its commit).
//
// View change is timeout-driven: ordinarily-signed kViewChange for v+1
// carries the sender's latest accepted block; f+1 of them let the new
// primary announce kNewView and re-propose from the highest reported
// block. Checkpoints, state transfer, chain sync and the client path are
// the shared ReplicaBase machinery, unchanged (checkpoint quorum f+1).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/smr/replica.hpp"
#include "src/trusted/trusted.hpp"

namespace eesmr::baselines {

/// Byzantine behaviours mirroring the EESMR fault experiments. Note that
/// equivocation here is "two blocks at successive counter values" — the
/// TrustedCounter API makes counter reuse structurally impossible.
enum class MinBftByzantineMode { kHonest, kCrash, kEquivocate };

struct MinBftByzantineConfig {
  MinBftByzantineMode mode = MinBftByzantineMode::kHonest;
  std::uint64_t trigger_height = 0;
};

class MinBftReplica final : public smr::ReplicaBase {
 public:
  MinBftReplica(net::Network& net, smr::ReplicaConfig cfg,
                MinBftByzantineConfig byz, energy::Meter* meter);

  void start() override;

  [[nodiscard]] std::uint64_t view_changes() const { return v_cur_ - 1; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Trusted-component observability.
  [[nodiscard]] const trusted::TrustedCounter& counter() const {
    return counter_;
  }
  [[nodiscard]] const trusted::AttestationTracker& tracker() const {
    return tracker_;
  }

 protected:
  void handle(NodeId from, const smr::Msg& msg) override;
  void on_commit(const smr::Block& block) override;
  void on_chain_connected(const smr::Block& block) override;
  void on_low_water(const smr::Block& root) override;
  void on_state_transfer(const smr::Block& root) override;
  void on_restart() override;
  /// Rebase attested-counter tracking at the generation boundary: a
  /// (re)joining signer's counter kept advancing while it was outside
  /// the active set, so its next attestation is adopted as the new
  /// contiguity baseline instead of holding forever on missed values.
  void on_membership_change(const smr::MembershipPolicy& policy) override;
  /// Attested messages authenticate via their UI, not the outer Msg
  /// signature (MinBFT replaces the signature with the counter UI).
  [[nodiscard]] bool requires_signature_check(
      const smr::Msg& msg) const override;

 private:
  enum class Phase { kSteady, kViewChange };

  void propose();
  void handle_propose(NodeId from, const smr::Msg& msg);
  void handle_commit_msg(NodeId from, const smr::Msg& msg);
  /// Contiguity-gate an attested message; true = process now. kHold
  /// parks it in the per-sender queue, replay/reuse drops it.
  bool admit_attested(NodeId from, const smr::Msg& msg,
                      const trusted::Attestation& att);
  void drain_holdback(NodeId from);
  /// Hold-back gaps that outlive the delay bound were dropped (attested
  /// messages are never retransmitted): rebaseline past them.
  void arm_gap_timer();
  void on_gap_timeout();
  void accept_proposal(NodeId from, const smr::Msg& msg, const smr::Block& b,
                       const trusted::Attestation& att);
  void tally_commit(NodeId author, const smr::BlockHash& h);
  void try_commit(const smr::BlockHash& h);

  void on_progress_timeout();
  void send_view_change(std::uint64_t target);
  void handle_view_change(const smr::Msg& msg);
  void handle_new_view(NodeId from, const smr::Msg& msg);
  void maybe_announce_new_view(std::uint64_t target);
  void enter_view(std::uint64_t view);

  void reset_progress_timer(sim::Duration d);
  void buffer_future(const smr::Msg& msg);
  void drain_buffered();

  MinBftByzantineConfig byz_;
  Phase phase_ = Phase::kSteady;
  bool started_ = false;
  bool crashed_ = false;

  trusted::TrustedCounter counter_;
  trusted::AttestationTracker tracker_;
  /// Held-back attested messages per sender, ordered by counter value.
  std::map<NodeId, std::map<std::uint64_t, smr::Msg>> holdback_;
  std::size_t holdback_total_ = 0;
  bool draining_holdback_ = false;

  /// First accepted proposal hash per height in the current view.
  std::map<std::uint64_t, smr::BlockHash> seen_;
  /// Attested acceptances per block hash (distinct authors; the
  /// primary's prepare counts as its commit).
  std::map<std::string, std::set<NodeId>> commit_authors_;
  std::set<std::string> commit_sent_;
  std::set<std::string> pending_commit_;

  /// Latest accepted primary block (what view changes report).
  smr::BlockHash accepted_tip_;
  std::uint64_t accepted_height_ = 0;

  sim::Timer progress_timer_;
  sim::Timer gap_timer_;
  bool gap_pending_ = false;
  std::uint64_t vc_target_ = 0;
  std::map<std::uint64_t, std::map<NodeId, smr::Msg>> vc_msgs_;
  std::set<std::uint64_t> nv_sent_;

  std::vector<smr::Msg> future_;
  std::vector<smr::Msg> retry_;
};

}  // namespace eesmr::baselines
