// Per-node energy accounting, mirroring the paper's measurement
// methodology (§5.6): the meter accumulates protocol-attributable energy
// by category; idle/sleep energy is excluded (the paper subtracts it).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace eesmr::energy {

/// Where a Joule went. Categories match the paper's cost drivers.
enum class Category : std::uint8_t {
  kSend,    ///< radio transmit
  kRecv,    ///< radio receive / scanning
  kSign,    ///< digital-signature generation
  kVerify,  ///< digital-signature verification
  kHash,    ///< hashing (block ids, chaining)
  kMac,     ///< HMAC computations
};
constexpr std::size_t kNumCategories = 6;

const char* category_name(Category c);

/// Accumulates milliJoules and operation counts per category.
class Meter {
 public:
  void charge(Category c, double millijoules);
  void charge_send(double millijoules, std::size_t bytes);
  void charge_recv(double millijoules, std::size_t bytes);

  [[nodiscard]] double millijoules(Category c) const;
  [[nodiscard]] double total_millijoules() const;
  [[nodiscard]] std::uint64_t ops(Category c) const;
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_recv_; }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return ops(Category::kSend);
  }

  void reset();
  /// Elementwise sum (for cluster-wide totals).
  Meter& operator+=(const Meter& other);

  /// One-line human-readable summary (mJ per category).
  [[nodiscard]] std::string summary() const;

 private:
  std::array<double, kNumCategories> mj_{};
  std::array<std::uint64_t, kNumCategories> ops_{};
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_recv_ = 0;
};

}  // namespace eesmr::energy
