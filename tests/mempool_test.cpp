// Mempool: dedup of re-submitted commands, committed-command removal,
// synthetic workload determinism.
#include <gtest/gtest.h>

#include "src/smr/mempool.hpp"
#include "src/smr/request.hpp"

namespace eesmr::smr {
namespace {

Command cmd(const std::string& s) { return Command{to_bytes(s)}; }

Block block_with(std::initializer_list<std::string> cmds) {
  Block b;
  b.parent = genesis_hash();
  b.height = 1;
  for (const auto& s : cmds) b.cmds.push_back(cmd(s));
  return b;
}

TEST(Mempool, ResubmitIsDeduplicated) {
  Mempool pool;
  EXPECT_TRUE(pool.submit(cmd("a")));
  EXPECT_FALSE(pool.submit(cmd("a")));  // client retransmit
  EXPECT_TRUE(pool.submit(cmd("b")));
  EXPECT_EQ(pool.pending(), 2u);

  const auto batch = pool.next_batch(4);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], cmd("a"));
  EXPECT_EQ(batch[1], cmd("b"));
}

TEST(Mempool, CommittedCommandsRemoved) {
  Mempool pool;
  pool.submit(cmd("a"));
  pool.submit(cmd("b"));
  pool.submit(cmd("c"));
  pool.remove_committed(block_with({"a", "c"}));
  EXPECT_EQ(pool.pending(), 1u);
  EXPECT_EQ(pool.next_batch(4).front(), cmd("b"));

  // Identical untagged bytes after commit are a NEW operation (think a
  // second "inc a") and stay orderable.
  EXPECT_TRUE(pool.submit(cmd("a")));
  EXPECT_EQ(pool.pending(), 2u);
}

Command tagged_cmd(NodeId client, std::uint64_t req_id) {
  ClientRequest req;
  req.client = client;
  req.req_id = req_id;
  req.op = to_bytes(std::string("inc a"));
  req.sig = to_bytes(std::string("sig"));
  return Command{req.encode()};
}

TEST(Mempool, CommittedClientRequestNeverReaccepted) {
  // A tagged request names one operation via (client, req_id): a late
  // retransmit after commit must not be ordered a second time.
  Mempool pool;
  const Command req = tagged_cmd(5, 1);
  EXPECT_TRUE(pool.submit(req));
  Block b;
  b.parent = genesis_hash();
  b.height = 1;
  b.cmds = {req};
  pool.remove_committed(b);
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_FALSE(pool.submit(req));

  // A different req_id from the same client is a different operation.
  EXPECT_TRUE(pool.submit(tagged_cmd(5, 2)));
}

TEST(Mempool, RemoveCommittedHandlesLargeQueueAndBlock) {
  // Regression for the O(queue x block) scan: 4k pending commands and a
  // 1k-command block should complete instantly in one pass.
  Mempool pool;
  for (int i = 0; i < 4096; ++i) pool.submit(cmd("cmd" + std::to_string(i)));
  Block b;
  b.parent = genesis_hash();
  b.height = 1;
  for (int i = 0; i < 1024; ++i) b.cmds.push_back(cmd("cmd" + std::to_string(i * 4)));
  pool.remove_committed(b);
  EXPECT_EQ(pool.pending(), 4096u - 1024u);
}

TEST(Mempool, CapacityShedsFreshLoadButNotDuplicates) {
  Mempool pool(0, /*capacity=*/2);
  EXPECT_TRUE(pool.submit(cmd("a")));
  EXPECT_TRUE(pool.submit(cmd("b")));
  EXPECT_FALSE(pool.submit(cmd("c")));  // full: dropped
  EXPECT_EQ(pool.dropped(), 1u);
  EXPECT_FALSE(pool.submit(cmd("a")));  // duplicate, not a drop
  EXPECT_EQ(pool.dropped(), 1u);
  EXPECT_EQ(pool.pending(), 2u);

  // Committing frees capacity for new admissions.
  pool.remove_committed(block_with({"a"}));
  EXPECT_TRUE(pool.submit(cmd("c")));
  EXPECT_EQ(pool.pending(), 2u);
}

TEST(Mempool, PerClientPendingTracksPoolContents) {
  Mempool pool;
  EXPECT_EQ(pool.client_pending(5), 0u);
  pool.submit(tagged_cmd(5, 1));
  pool.submit(tagged_cmd(5, 2));
  pool.submit(tagged_cmd(6, 1));
  pool.submit(cmd("untagged"));  // not client-attributed
  EXPECT_EQ(pool.client_pending(5), 2u);
  EXPECT_EQ(pool.client_pending(6), 1u);

  Block b;
  b.parent = genesis_hash();
  b.height = 1;
  b.cmds = {tagged_cmd(5, 1)};
  pool.remove_committed(b);
  EXPECT_EQ(pool.client_pending(5), 1u);
  // Committing a copy we never pooled does not underflow the count.
  Block other;
  other.parent = genesis_hash();
  other.height = 1;
  other.cmds = {tagged_cmd(5, 99)};
  pool.remove_committed(other);
  EXPECT_EQ(pool.client_pending(5), 1u);
}

TEST(Mempool, ForgetCommittedShrinksDedupSet) {
  Mempool pool;
  const Command req = tagged_cmd(7, 1);
  pool.submit(req);
  Block b;
  b.parent = genesis_hash();
  b.height = 1;
  b.cmds = {req};
  pool.remove_committed(b);
  EXPECT_EQ(pool.committed_keys(), 1u);
  EXPECT_FALSE(pool.submit(req));
  // Low-water-mark GC: the key is forgotten; dedup of the retransmit is
  // now the replica's job (reply cache / per-client watermark).
  pool.forget_committed(req.data);
  EXPECT_EQ(pool.committed_keys(), 0u);
  EXPECT_TRUE(pool.submit(req));
}

TEST(Mempool, SyntheticFillerIsDeterministicAndCounted) {
  Mempool pool(16);
  const auto a = pool.next_batch(3);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(pool.synthesized(), 3u);
  for (const auto& c : a) EXPECT_EQ(c.data.size(), 16u);
  EXPECT_NE(a[0], a[1]);

  Mempool pool2(16);
  EXPECT_EQ(pool2.next_batch(3), a);  // same counter sequence
}

TEST(Mempool, ExplicitCommandsPrecedeSyntheticFiller) {
  Mempool pool(8);
  pool.submit(cmd("real"));
  const auto batch = pool.next_batch(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], cmd("real"));
  EXPECT_EQ(batch[1].data.size(), 8u);
}

}  // namespace
}  // namespace eesmr::smr
