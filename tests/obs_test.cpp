// Observability-layer tests: Prometheus text-exposition conformance
// (label escaping, stable ordering, the +Inf bucket, counter
// monotonicity), registry snapshot <-> JSON round-trip, the
// RunSummary-matches-registry cross-check, Chrome trace validity, and
// the byte-identical --prom-out/--trace-out contract across thread
// counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exp/json.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/exp/runner.hpp"
#include "src/harness/cluster.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace eesmr {
namespace {

using exp::Json;
using obs::Histogram;
using obs::Labels;
using obs::Registry;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

TEST(Metrics, CounterIsMonotonic) {
  Registry reg;
  obs::Counter c = reg.counter("eesmr_test_total", "help");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.inc(-1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Collect-style registration enforces the same rule.
  EXPECT_THROW(reg.set_counter("eesmr_other_total", "h", {}, -4),
               std::invalid_argument);
}

TEST(Metrics, GaugeSetsAndAdds) {
  Registry reg;
  obs::Gauge g = reg.gauge("eesmr_temp", "help", {{"node", "0"}});
  g.set(5);
  g.add(-2);
  EXPECT_DOUBLE_EQ(g.value(), 3);
  EXPECT_DOUBLE_EQ(reg.value("eesmr_temp", {{"node", "0"}}), 3);
}

TEST(Metrics, HistogramBucketsAndInfOverflow) {
  Histogram h({1.0, 5.0, 10.0});
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (inclusive upper bound)
  h.observe(7.0);   // le=10
  h.observe(99.0);  // +Inf overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + implicit +Inf
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.cumulative(2), 3u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.5);

  EXPECT_THROW(Histogram({5.0, 1.0}), std::invalid_argument);
  Histogram other({1.0, 2.0});
  EXPECT_THROW(h.merge(other), std::invalid_argument);
  Histogram same({1.0, 5.0, 10.0});
  same.observe(3.0);
  h.merge(same);
  EXPECT_EQ(h.count(), 5u);
}

TEST(Metrics, NameAndLabelValidation) {
  Registry reg;
  EXPECT_THROW(reg.gauge("2bad", "h"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("has space", "h"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("ok_name", "h", {{"0bad", "v"}}),
               std::invalid_argument);
  // "le" is reserved for histogram bucket series.
  EXPECT_THROW(reg.gauge("ok_name", "h", {{"le", "1"}}),
               std::invalid_argument);
  // Re-registering a name with a different kind or help is a bug.
  reg.gauge("eesmr_x", "first help");
  EXPECT_THROW(reg.counter("eesmr_x", "first help"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("eesmr_x", "second help"), std::invalid_argument);
}

TEST(Metrics, ValueThrowsOnMissingSample) {
  Registry reg;
  reg.set_gauge("eesmr_x", "h", {{"node", "0"}}, 1);
  EXPECT_THROW((void)reg.value("eesmr_missing"), std::out_of_range);
  EXPECT_THROW((void)reg.value("eesmr_x", {{"node", "7"}}), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Text exposition
// ---------------------------------------------------------------------------

TEST(Metrics, TextExpositionFormat) {
  Registry reg;
  reg.set_counter("eesmr_msgs_total", "Messages sent", {{"node", "0"}}, 7);
  reg.set_counter("eesmr_msgs_total", "Messages sent", {{"node", "1"}}, 9);
  reg.set_gauge("eesmr_energy_mj", "Energy", {}, 1.5);
  const std::string text = reg.text();
  EXPECT_NE(text.find("# HELP eesmr_msgs_total Messages sent\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE eesmr_msgs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("eesmr_msgs_total{node=\"0\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("eesmr_msgs_total{node=\"1\"} 9\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE eesmr_energy_mj gauge\n"), std::string::npos);
  EXPECT_NE(text.find("eesmr_energy_mj 1.5\n"), std::string::npos);
}

TEST(Metrics, TextExpositionEscapesLabelValues) {
  Registry reg;
  reg.set_gauge("eesmr_g", "h", {{"path", "a\\b\"c\nd"}}, 1);
  const std::string text = reg.text();
  EXPECT_NE(text.find("eesmr_g{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos)
      << text;
  // HELP strings escape backslash and newline.
  Registry reg2;
  reg2.set_gauge("eesmr_h", "line1\nline2\\tail", {}, 1);
  EXPECT_NE(reg2.text().find("# HELP eesmr_h line1\\nline2\\\\tail\n"),
            std::string::npos)
      << reg2.text();
}

TEST(Metrics, TextExpositionOrderIsRegistrationOrder) {
  // Families expose in registration order (not sorted), samples in
  // registration order — the determinism contract.
  Registry reg;
  reg.set_gauge("eesmr_zzz", "h", {}, 1);
  reg.set_gauge("eesmr_aaa", "h", {{"b", "1"}}, 2);
  reg.set_gauge("eesmr_aaa", "h", {{"a", "1"}}, 3);
  const std::string text = reg.text();
  EXPECT_LT(text.find("eesmr_zzz"), text.find("eesmr_aaa"));
  EXPECT_LT(text.find("eesmr_aaa{b=\"1\"}"), text.find("eesmr_aaa{a=\"1\"}"));
  // Two registries fed identically render byte-identical text.
  Registry twin;
  twin.set_gauge("eesmr_zzz", "h", {}, 1);
  twin.set_gauge("eesmr_aaa", "h", {{"b", "1"}}, 2);
  twin.set_gauge("eesmr_aaa", "h", {{"a", "1"}}, 3);
  EXPECT_EQ(twin.text(), text);
  EXPECT_TRUE(twin == reg);
}

TEST(Metrics, HistogramExpositionHasCumulativeBucketsAndInf) {
  Registry reg;
  Histogram& h = reg.histogram("eesmr_lat_ms", "Latency", {1.0, 10.0},
                               {{"node", "0"}});
  h.observe(0.5);
  h.observe(4.0);
  h.observe(50.0);
  const std::string text = reg.text();
  EXPECT_NE(text.find("# TYPE eesmr_lat_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("eesmr_lat_ms_bucket{node=\"0\",le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("eesmr_lat_ms_bucket{node=\"0\",le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("eesmr_lat_ms_bucket{node=\"0\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("eesmr_lat_ms_sum{node=\"0\"} 54.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("eesmr_lat_ms_count{node=\"0\"} 3\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON snapshot round-trip / merge
// ---------------------------------------------------------------------------

TEST(Metrics, JsonSnapshotRoundTrip) {
  Registry reg;
  reg.set_counter("eesmr_c_total", "counter help", {{"node", "0"}}, 5);
  reg.set_gauge("eesmr_g", "gauge help", {}, -2.25);
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(9.0);
  reg.set_histogram("eesmr_h_ms", "hist help", {{"s", "x"}}, h);

  const Json doc = reg.to_json();
  const Registry back = Registry::from_json(Json::parse(doc.dump()));
  EXPECT_TRUE(back == reg);
  EXPECT_EQ(back.text(), reg.text());
}

TEST(Metrics, MergePrependsLabels) {
  Registry run0;
  run0.set_gauge("eesmr_g", "h", {{"node", "0"}}, 1);
  Registry run1;
  run1.set_gauge("eesmr_g", "h", {{"node", "0"}}, 2);
  Registry merged;
  merged.merge(run0, {{"run", "0"}});
  merged.merge(run1, {{"run", "1"}});
  EXPECT_DOUBLE_EQ(merged.value("eesmr_g", {{"run", "0"}, {"node", "0"}}), 1);
  EXPECT_DOUBLE_EQ(merged.value("eesmr_g", {{"run", "1"}, {"node", "0"}}), 2);
}

// ---------------------------------------------------------------------------
// RunResult -> registry cross-check
// ---------------------------------------------------------------------------

harness::RunResult client_run(std::uint64_t seed) {
  harness::ClusterConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = seed;
  cfg.clients = 2;
  cfg.checkpoint_interval = 8;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 2;
  harness::Cluster cluster(cfg);
  return cluster.run_for(sim::seconds(8));
}

TEST(Obs, SummaryMatchesRegistryExactly) {
  const harness::RunResult r = client_run(42);
  ASSERT_GT(r.requests_accepted, 0u);

  Registry reg;
  r.to_registry(reg);
  // Registry values equal the direct accessors bit-for-bit (same
  // computation snapshotted, not a parallel plumbing path).
  EXPECT_EQ(reg.value("eesmr_run_total_energy_mj"), r.total_energy_mj());
  EXPECT_EQ(reg.value("eesmr_run_energy_per_block_mj"),
            r.energy_per_block_mj());
  EXPECT_EQ(reg.value("eesmr_run_min_committed"),
            static_cast<double>(r.min_committed()));
  EXPECT_EQ(reg.value("eesmr_run_view_changes_total"),
            static_cast<double>(r.view_changes));
  EXPECT_EQ(reg.value("eesmr_run_requests_accepted_total"),
            static_cast<double>(r.requests_accepted));
  EXPECT_EQ(reg.value("eesmr_run_accepted_per_sec"), r.accepted_per_sec());

  // And the flat summary is exactly the registry read back.
  const harness::RunSummary s = r.summarize();
  const harness::RunSummary derived = harness::summary_from_registry(reg);
  EXPECT_EQ(s.nodes, derived.nodes);
  EXPECT_EQ(s.safety_ok, derived.safety_ok);
  EXPECT_EQ(s.min_committed, derived.min_committed);
  EXPECT_EQ(s.max_committed, derived.max_committed);
  EXPECT_EQ(s.transmissions, derived.transmissions);
  EXPECT_EQ(s.total_energy_mj, derived.total_energy_mj);
  EXPECT_EQ(s.energy_per_block_mj, derived.energy_per_block_mj);
  EXPECT_EQ(s.requests_accepted, derived.requests_accepted);
  EXPECT_EQ(s.latency_p50_ms, derived.latency_p50_ms);
  EXPECT_EQ(s.latency_p99_ms, derived.latency_p99_ms);
  EXPECT_EQ(s.max_retained_log, derived.max_retained_log);
  EXPECT_EQ(s.max_store_blocks, derived.max_store_blocks);
  EXPECT_EQ(s.adversary_energy_mj, derived.adversary_energy_mj);

  // Per-node and per-stream families carry the same numbers as the
  // RunResult accessors.
  for (std::size_t i = 0; i < r.meters.size(); ++i) {
    EXPECT_EQ(reg.value("eesmr_node_energy_mj", {{"node", std::to_string(i)}}),
              r.meters[i].total_millijoules());
  }
  const energy::StreamStats prop =
      r.stream_totals_all(energy::Stream::kProposal);
  EXPECT_EQ(reg.value("eesmr_stream_send_mj",
                      {{"stream", "proposal"}, {"scope", "all"}}),
            prop.send_mj);
}

TEST(Obs, LatencyHistogramBucketsTrackSamples) {
  const harness::RunResult r = client_run(7);
  ASSERT_GT(r.latency.count(), 0u);
  // Same observations: bucketed count equals the raw-sample count, the
  // bucketed sum equals the sum of the per-sample milliseconds.
  EXPECT_EQ(r.latency.buckets().count(), r.latency.count());
  double sum = 0;
  for (std::uint64_t c : r.latency.buckets().bucket_counts()) {
    sum += static_cast<double>(c);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(sum), r.latency.count());
}

// ---------------------------------------------------------------------------
// Trace layer
// ---------------------------------------------------------------------------

harness::RunResult traced_run(obs::Tracer& tracer, std::uint64_t seed,
                              harness::Protocol protocol) {
  harness::ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = seed;
  cfg.checkpoint_interval = 4;
  cfg.tracer = &tracer;
  harness::Cluster cluster(cfg);
  return cluster.run_until_commits(6, sim::seconds(600));
}

TEST(Trace, CommitPathEventsAreEmitted) {
  for (const harness::Protocol protocol :
       {harness::Protocol::kEesmr, harness::Protocol::kSyncHotStuff}) {
    obs::Tracer tracer;
    const harness::RunResult r = traced_run(tracer, 11, protocol);
    ASSERT_GE(r.min_committed(), 6u);
    ASSERT_FALSE(tracer.empty());
    std::size_t proposes = 0, votes = 0, certifies = 0, commits = 0,
                spans = 0, ends = 0, checkpoints = 0;
    for (const obs::TraceEvent& ev : tracer.events()) {
      if (ev.name == "propose") ++proposes;
      if (ev.name == "vote") ++votes;
      if (ev.name == "certify") ++certifies;
      if (ev.name == "commit") ++commits;
      if (ev.name == "block" && ev.ph == 'b') ++spans;
      if (ev.name == "block" && ev.ph == 'e') ++ends;
      if (ev.name == "checkpoint_taken") ++checkpoints;
    }
    EXPECT_GT(proposes, 0u);
    if (protocol == harness::Protocol::kSyncHotStuff) {
      // Sync HotStuff votes and certifies on the steady path; EESMR's
      // steady state is vote-free by design (the paper's headline), so
      // its vote/certify events only appear during a view change, which
      // an honest run never triggers.
      EXPECT_GT(votes, 0u);
      EXPECT_GT(certifies, 0u);
    }
    EXPECT_GE(commits, 6u);
    EXPECT_GT(spans, 0u);
    EXPECT_GE(spans, ends);  // every closed block span was opened
    EXPECT_GT(ends, 0u);
    EXPECT_GT(checkpoints, 0u);
  }
}

TEST(Trace, ChromeDocumentIsValid) {
  obs::Tracer tracer;
  traced_run(tracer, 3, harness::Protocol::kEesmr);
  Json events = Json::array();
  const int next_pid = tracer.append_chrome(events, 1, "test ");
  EXPECT_GE(next_pid, 2);
  const Json doc = obs::Tracer::chrome_document(std::move(events));
  // Valid JSON document with the Chrome trace shape.
  const Json parsed = Json::parse(doc.pretty());
  ASSERT_TRUE(parsed.contains("traceEvents"));
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");
  const auto& evs = parsed.at("traceEvents").items();
  ASSERT_FALSE(evs.empty());
  // First event names the process (epoch label prefixed).
  EXPECT_EQ(evs[0].at("ph").as_string(), "M");
  EXPECT_EQ(evs[0].at("name").as_string(), "process_name");
  EXPECT_EQ(evs[0].at("args").at("name").as_string().rfind("test ", 0), 0u);
  for (const Json& ev : evs) {
    ASSERT_TRUE(ev.contains("name"));
    ASSERT_TRUE(ev.contains("ph"));
    ASSERT_TRUE(ev.contains("pid"));
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") continue;
    ASSERT_TRUE(ev.contains("ts"));
    ASSERT_TRUE(ev.contains("tid"));
    if (ph == "i") {
      EXPECT_TRUE(ev.contains("s"));  // instant scope
    } else {
      EXPECT_TRUE(ev.contains("id"));  // async span id
    }
  }
}

TEST(Trace, TextMirrorFeedsSink) {
  obs::Tracer tracer;
  std::vector<std::string> lines;
  tracer.text_trace().set_sink([&](sim::SimTime, sim::TraceLevel,
                                   const sim::TraceCtx& ctx,
                                   const std::string& msg) {
    lines.push_back(std::string(ctx.cat ? ctx.cat : "?") + ": " + msg);
  });
  traced_run(tracer, 5, harness::Protocol::kEesmr);
  ASSERT_FALSE(lines.empty());
  bool saw_commit = false;
  for (const std::string& l : lines) {
    if (l.rfind("commit: commit", 0) == 0) saw_commit = true;
  }
  EXPECT_TRUE(saw_commit);
}

TEST(Trace, EpochZeroIsClaimedByFirstOpen) {
  obs::Tracer tracer;
  EXPECT_EQ(tracer.open_epoch("first"), 0u);   // claims the implicit epoch
  EXPECT_EQ(tracer.open_epoch("second"), 1u);  // appends after that
}

// ---------------------------------------------------------------------------
// Byte-identical artifacts across thread counts
// ---------------------------------------------------------------------------

struct MergedArtifacts {
  std::string prom;
  std::string trace;
};

MergedArtifacts run_observed_grid(std::size_t threads) {
  exp::Grid grid;
  grid.axis("protocol", {"EESMR", "SyncHS"});
  grid.axis(exp::Axis::of("n", std::vector<int>{4, 5}));
  exp::RunnerOptions ro;
  ro.threads = threads;
  ro.seed = 9;
  std::vector<exp::RunArtifacts> slots;
  ro.artifacts = &slots;
  ro.collect_registry = true;
  ro.collect_trace = true;
  exp::run_matrix(grid, [&](const exp::RunContext& c) {
    harness::ClusterConfig cfg;
    cfg.protocol = c.label("protocol") == "EESMR"
                       ? harness::Protocol::kEesmr
                       : harness::Protocol::kSyncHotStuff;
    cfg.n = c.label("n") == "4" ? 4 : 5;
    cfg.f = 1;
    cfg.seed = c.seed;
    const harness::RunResult r = exp::run_steady(c, cfg, 4);
    exp::MetricRow row;
    row.set("mj_per_block", r.energy_per_block_mj());
    return row;
  }, ro);

  // The same assembly Experiment::finish() performs.
  MergedArtifacts out;
  Registry merged;
  Json events = Json::array();
  int pid = 1;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    merged.merge(slots[i].registry,
                 {{"section", "main"}, {"run", std::to_string(i)}});
    pid = slots[i].tracer.append_chrome(events, pid,
                                        "main/run" + std::to_string(i) + " ");
  }
  out.prom = merged.text();
  out.trace = obs::Tracer::chrome_document(std::move(events)).pretty();
  return out;
}

TEST(Obs, ArtifactsByteIdenticalAcrossThreadCounts) {
  const MergedArtifacts baseline = run_observed_grid(1);
  EXPECT_GT(baseline.prom.size(), 1000u);
  EXPECT_GT(baseline.trace.size(), 1000u);
  for (const std::size_t threads : {4u, 8u}) {
    const MergedArtifacts other = run_observed_grid(threads);
    EXPECT_EQ(other.prom, baseline.prom) << "threads=" << threads;
    EXPECT_EQ(other.trace, baseline.trace) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace eesmr
