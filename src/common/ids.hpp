// Node identifiers shared across network, crypto directory and protocols.
#pragma once

#include <cstdint>

namespace eesmr {

/// Index of a node in the system N = {p_1 ... p_n}; 0-based internally.
using NodeId = std::uint32_t;

constexpr NodeId kNoNode = static_cast<NodeId>(-1);

}  // namespace eesmr
