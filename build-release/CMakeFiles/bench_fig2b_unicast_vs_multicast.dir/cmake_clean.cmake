file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_unicast_vs_multicast.dir/bench/fig2b_unicast_vs_multicast.cpp.o"
  "CMakeFiles/bench_fig2b_unicast_vs_multicast.dir/bench/fig2b_unicast_vs_multicast.cpp.o.d"
  "bench_fig2b_unicast_vs_multicast"
  "bench_fig2b_unicast_vs_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_unicast_vs_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
