// Minimal JSON value for the experiment engine's structured output.
//
// Design constraints that rule out an off-the-shelf library:
//  * object keys keep INSERTION order, so a Report dumps its columns in
//    the order the bench declared them and two dumps of the same value
//    are byte-identical — the engine's determinism contract ("same seed
//    => byte-identical BENCH_*.json at any --threads N") leans on this;
//  * doubles print through a fixed shortest-round-trip format so the
//    bytes are a pure function of the value;
//  * a parser is included for the RunResult round-trip tests and for
//    tooling that re-reads BENCH_*.json.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace eesmr::exp {

class Json;
using JsonArray = std::vector<Json>;
/// Insertion-ordered object member: objects are vectors of these, and
/// set/contains/at scan linearly — fine for the few-dozen-key records
/// the engine emits, not for large maps.
using JsonMember = std::pair<std::string, Json>;

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,  ///< always held as double; integral values print as integers
    kString,
    kArray,
    kObject,
  };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(unsigned v) : type_(Type::kNumber), num_(v) {}
  Json(long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(unsigned long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(long long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(unsigned long long v)
      : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return num_; }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(num_);
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  // -- array -----------------------------------------------------------------
  void push_back(Json v) { arr_.push_back(std::move(v)); }
  [[nodiscard]] const JsonArray& items() const { return arr_; }
  [[nodiscard]] std::size_t size() const {
    return type_ == Type::kArray ? arr_.size() : obj_.size();
  }
  [[nodiscard]] const Json& at(std::size_t i) const { return arr_.at(i); }

  // -- object ----------------------------------------------------------------
  /// Insert or overwrite a member; insertion order is preserved, a
  /// re-set key keeps its original position.
  void set(const std::string& key, Json v);
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Member lookup; throws std::out_of_range when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::vector<JsonMember>& members() const { return obj_; }

  // -- text ------------------------------------------------------------------
  /// Compact single-line form (no whitespace).
  [[nodiscard]] std::string dump() const;
  /// Pretty-printed with 2-space indentation and a trailing newline.
  [[nodiscard]] std::string pretty() const;

  /// Parse a JSON document. Throws JsonError on malformed input.
  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  JsonArray arr_;
  std::vector<JsonMember> obj_;
};

struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Deterministic number formatting used by dump(): integral values in
/// (-2^53, 2^53) print without a decimal point, everything else through
/// shortest-round-trip scientific/fixed notation.
std::string json_number(double v);

}  // namespace eesmr::exp
