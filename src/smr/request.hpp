// Client request/reply wire format — the client-facing half of the §3
// SMR definition ("clients submit commands ... wait to receive f+1
// identical acknowledgments with execution results").
//
// A client request travels inside an ordinary Command payload: a 2-byte
// tag marks it, (client, req_id) names it globally, `op` is the
// application command, and `sig` is the client's signature over the
// request itself. The signature rides INSIDE the command so replicas can
// re-verify at commit time: a Byzantine leader can put arbitrary bytes
// in a block, but it cannot forge a request a client never signed.
// Untagged commands (synthetic workload, tests) are unaffected. Replies
// ride Msg::data of a kReply message authored and signed by the replica;
// the answered client's id sits under that signature so acknowledgments
// cannot be replayed to a different client with a colliding req_id.
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/bytes.hpp"
#include "src/common/ids.hpp"
#include "src/crypto/agg.hpp"
#include "src/crypto/signer.hpp"

namespace eesmr::smr {

/// Leading u16 of a Command payload that marks a tagged client request.
constexpr std::uint16_t kRequestTag = 0xC11E;

struct ClientRequest {
  NodeId client = kNoNode;   ///< hypergraph node id of the submitter
  std::uint64_t req_id = 0;  ///< client-local sequence number
  Bytes op;                  ///< application payload (KvStore text, ...)
  Bytes sig;                 ///< client signature over preimage()

  /// Bytes the client signature covers (tag + ids + op).
  [[nodiscard]] Bytes preimage() const;
  /// True when `sig` is `client`'s signature over preimage().
  [[nodiscard]] bool verify(const crypto::Keyring& keyring) const;

  /// Encode as a Command payload (preimage fields + sig).
  [[nodiscard]] Bytes encode() const;
  /// Decode a Command payload; nullopt when it is not a tagged request.
  static std::optional<ClientRequest> decode(BytesView data);
};

/// One replica's execution acknowledgment; the author and signature live
/// on the enclosing kReply Msg, whose signed data includes `client`.
struct ClientReply {
  NodeId client = kNoNode;  ///< the client this acknowledgment answers
  std::uint64_t req_id = 0;
  Bytes result;
  /// Leader hint: the replying replica's current leader. Clients under a
  /// TargetedSubset submission policy steer their next submissions there
  /// instead of blindly rotating (the hint rides under the reply
  /// signature, so only f Byzantine repliers can lie — and a stale or
  /// false hint costs one failover, never safety). kNoNode when the
  /// replier does not expose one.
  NodeId leader = kNoNode;

  [[nodiscard]] Bytes encode() const;
  static std::optional<ClientReply> decode(BytesView data);
};

/// Domain-tagged preimage an aggregate-scheme reply signature covers:
/// (tag, client, req_id, result) — deliberately excluding view/round so
/// any f+1 repliers' shares over the same result fold into one
/// transferable acceptance certificate.
Bytes acceptance_preimage(NodeId client, std::uint64_t req_id,
                          const Bytes& result);

/// O(1) transferable proof of acceptance under the aggregate scheme:
/// f+1 replicas executed (client, req_id) with `result`. The client
/// folds it from the matching repliers' shares; anyone holding the agg
/// directory can re-verify it later (audit, cross-shard hand-off).
struct AcceptanceCert {
  NodeId client = kNoNode;
  std::uint64_t req_id = 0;
  Bytes result;
  std::uint64_t gen = 0;         ///< membership generation of the signers
  crypto::SignerBitset signers;  ///< replicas whose shares were folded
  Bytes agg_sig;

  [[nodiscard]] Bytes encode() const;
  static AcceptanceCert decode(BytesView data);

  /// Aggregate verifies over acceptance_preimage() and count >= quorum.
  [[nodiscard]] bool verify(const crypto::AggKeyring& agg,
                            std::size_t quorum) const;
};

}  // namespace eesmr::smr
