#include "src/crypto/signer.hpp"

#include <array>
#include <stdexcept>

#include "src/crypto/ecdsa.hpp"
#include "src/crypto/hmac.hpp"
#include "src/crypto/rsa.hpp"
#include "src/sim/rng.hpp"

namespace eesmr::crypto {

namespace {

constexpr std::array<SchemeInfo, 11> kSchemeInfo = {{
    {"HMAC-SHA256", 32, true},
    {"ECDSA-BP160R1", 40, false},
    {"ECDSA-BP256R1", 64, false},
    {"ECDSA-SECP192R1", 48, false},
    {"ECDSA-SECP192K1", 48, false},
    {"ECDSA-SECP224R1", 56, false},
    {"ECDSA-SECP256R1", 64, false},
    {"ECDSA-SECP256K1", 64, false},
    {"RSA-1024", 128, false},
    {"RSA-1260", 158, false},
    {"RSA-2048", 256, false},
}};

CurveId curve_of(SchemeId id) {
  switch (id) {
    case SchemeId::kEcdsaBp160r1:
      return CurveId::kBrainpoolP160r1;
    case SchemeId::kEcdsaBp256r1:
      return CurveId::kBrainpoolP256r1;
    case SchemeId::kEcdsaSecp192r1:
      return CurveId::kSecp192r1;
    case SchemeId::kEcdsaSecp192k1:
      return CurveId::kSecp192k1;
    case SchemeId::kEcdsaSecp224r1:
      return CurveId::kSecp224r1;
    case SchemeId::kEcdsaSecp256r1:
      return CurveId::kSecp256r1;
    case SchemeId::kEcdsaSecp256k1:
      return CurveId::kSecp256k1;
    default:
      throw std::invalid_argument("not an ECDSA scheme");
  }
}

std::size_t rsa_bits_of(SchemeId id) {
  switch (id) {
    case SchemeId::kRsa1024:
      return 1024;
    case SchemeId::kRsa1260:
      return 1260;
    case SchemeId::kRsa2048:
      return 2048;
    default:
      throw std::invalid_argument("not an RSA scheme");
  }
}

// ---------------------------------------------------------------------------

class HmacSigner final : public Signer {
 public:
  explicit HmacSigner(Bytes key) : key_(std::move(key)) {}
  Bytes sign(BytesView msg) const override { return hmac(key_, msg); }
  SchemeId scheme() const override { return SchemeId::kHmacSha256; }

 private:
  Bytes key_;
};

class HmacVerifier final : public Verifier {
 public:
  explicit HmacVerifier(Bytes key) : key_(std::move(key)) {}
  bool verify(BytesView msg, BytesView sig) const override {
    return mac_equal(hmac(key_, msg), sig);
  }
  SchemeId scheme() const override { return SchemeId::kHmacSha256; }

 private:
  Bytes key_;
};

class RsaSignerImpl final : public Signer {
 public:
  RsaSignerImpl(SchemeId id, RsaPrivateKey key)
      : id_(id), key_(std::move(key)) {}
  Bytes sign(BytesView msg) const override { return rsa_sign(key_, msg); }
  SchemeId scheme() const override { return id_; }

 private:
  SchemeId id_;
  RsaPrivateKey key_;
};

class RsaVerifierImpl final : public Verifier {
 public:
  RsaVerifierImpl(SchemeId id, RsaPublicKey key)
      : id_(id), key_(std::move(key)) {}
  bool verify(BytesView msg, BytesView sig) const override {
    return rsa_verify(key_, msg, sig);
  }
  SchemeId scheme() const override { return id_; }

 private:
  SchemeId id_;
  RsaPublicKey key_;
};

class EcdsaSignerImpl final : public Signer {
 public:
  EcdsaSignerImpl(SchemeId id, EcdsaPrivateKey key)
      : id_(id), key_(std::move(key)) {}
  Bytes sign(BytesView msg) const override { return ecdsa_sign(key_, msg); }
  SchemeId scheme() const override { return id_; }

 private:
  SchemeId id_;
  EcdsaPrivateKey key_;
};

class EcdsaVerifierImpl final : public Verifier {
 public:
  EcdsaVerifierImpl(SchemeId id, EcdsaPublicKey key)
      : id_(id), key_(std::move(key)) {}
  bool verify(BytesView msg, BytesView sig) const override {
    return ecdsa_verify(key_, msg, sig);
  }
  SchemeId scheme() const override { return id_; }

 private:
  SchemeId id_;
  EcdsaPublicKey key_;
};

// Keyed-hash stand-in: sign = HMAC(secret, msg) truncated/padded to the
// emulated scheme's wire size. Secure inside one trusted process because
// only honest simulation code can reach another node's secret.
class SimSigner final : public Signer {
 public:
  SimSigner(SchemeId emulated, Bytes secret)
      : emulated_(emulated), secret_(std::move(secret)) {}
  Bytes sign(BytesView msg) const override {
    Bytes tag = hmac(secret_, msg);
    tag.resize(scheme_info(emulated_).signature_bytes, 0xee);
    return tag;
  }
  SchemeId scheme() const override { return emulated_; }

 private:
  SchemeId emulated_;
  Bytes secret_;
};

class SimVerifier final : public Verifier {
 public:
  SimVerifier(SchemeId emulated, Bytes secret)
      : emulated_(emulated), secret_(std::move(secret)) {}
  bool verify(BytesView msg, BytesView sig) const override {
    if (sig.size() != scheme_info(emulated_).signature_bytes) return false;
    Bytes tag = hmac(secret_, msg);
    tag.resize(sig.size(), 0xee);
    return mac_equal(tag, sig);
  }
  SchemeId scheme() const override { return emulated_; }

 private:
  SchemeId emulated_;
  Bytes secret_;
};

Bytes node_secret(std::uint64_t seed, NodeId id) {
  Bytes material(16, 0);
  for (int i = 0; i < 8; ++i) {
    material[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
    material[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(id) >> (8 * i));
  }
  return sha256(material);
}

}  // namespace

const SchemeInfo& scheme_info(SchemeId id) {
  return kSchemeInfo[static_cast<std::size_t>(id)];
}

std::vector<SchemeId> all_schemes() {
  std::vector<SchemeId> out;
  for (std::size_t i = 0; i < kSchemeInfo.size(); ++i) {
    out.push_back(static_cast<SchemeId>(i));
  }
  return out;
}

std::shared_ptr<Keyring> Keyring::generate(SchemeId scheme, std::size_t n,
                                           std::uint64_t seed) {
  auto ring = std::shared_ptr<Keyring>(new Keyring());
  ring->scheme_ = scheme;
  sim::Rng rng(seed ^ 0x4b455952494e47ull);  // "KEYRING"
  for (NodeId i = 0; i < n; ++i) {
    switch (scheme) {
      case SchemeId::kHmacSha256: {
        // One shared MAC key per node pair is the faithful model; the
        // paper's energy analysis only needs per-op costs, so a single
        // per-node key (verifiable by all) keeps the directory small.
        Bytes key = node_secret(seed, i);
        ring->signers_.push_back(std::make_unique<HmacSigner>(key));
        ring->verifiers_.push_back(std::make_unique<HmacVerifier>(key));
        break;
      }
      case SchemeId::kRsa1024:
      case SchemeId::kRsa1260:
      case SchemeId::kRsa2048: {
        RsaKeyPair kp = rsa_generate(rsa_bits_of(scheme), rng);
        ring->signers_.push_back(
            std::make_unique<RsaSignerImpl>(scheme, kp.priv));
        ring->verifiers_.push_back(
            std::make_unique<RsaVerifierImpl>(scheme, kp.pub));
        break;
      }
      default: {
        EcdsaKeyPair kp = ecdsa_generate(curve_of(scheme), rng);
        ring->signers_.push_back(
            std::make_unique<EcdsaSignerImpl>(scheme, kp.priv));
        ring->verifiers_.push_back(
            std::make_unique<EcdsaVerifierImpl>(scheme, kp.pub));
        break;
      }
    }
  }
  return ring;
}

std::shared_ptr<Keyring> Keyring::simulated(SchemeId scheme, std::size_t n,
                                            std::uint64_t seed) {
  auto ring = std::shared_ptr<Keyring>(new Keyring());
  ring->scheme_ = scheme;
  ring->simulated_ = true;
  for (NodeId i = 0; i < n; ++i) {
    Bytes secret = node_secret(seed, i);
    ring->signers_.push_back(std::make_unique<SimSigner>(scheme, secret));
    ring->verifiers_.push_back(std::make_unique<SimVerifier>(scheme, secret));
  }
  return ring;
}

const Signer& Keyring::signer(NodeId id) const {
  if (id >= signers_.size()) throw std::out_of_range("Keyring::signer");
  return *signers_[id];
}

bool Keyring::verify(NodeId claimed, BytesView msg, BytesView sig) const {
  if (claimed >= verifiers_.size()) return false;
  return verifiers_[claimed]->verify(msg, sig);
}

}  // namespace eesmr::crypto
