// Simulated BLS-style aggregate signatures for O(1)-size certificates.
//
// Real BLS (e.g. BLS12-381 as used by AntelopeIO/Savanna quorum
// certificates) gives each node a share sig_i = H(m)^{sk_i}; shares over
// the *same* message combine by group addition into one 48-byte G1 point,
// verified against the sum of the signers' public keys with two pairings.
// The properties certificates rely on are:
//   * a share is bound to (node, message) and unforgeable,
//   * aggregation is order-independent and O(1) in output size,
//   * an aggregate verifies iff it is exactly the fold of one share from
//     every claimed signer — extra, missing, or duplicated signers fail.
//
// This module reproduces those properties with keyed hashes, in the same
// "simulated signature" trust model as crypto::Keyring::simulated (see
// signer.hpp): each node's share is a per-node keyed hash of the message
// extended to the BLS G1 wire size, and aggregation is a byte-wise XOR
// fold. Inside one honest process nobody can produce another node's
// share without its secret, XOR is commutative/associative like group
// addition, and a duplicated share cancels itself out — so duplicate
// signers are rejected *structurally*, exactly as a doubled term shifts
// the group sum in real BLS. Energy is accounted with the dedicated
// agg_* entries of the cost model (energy/cost_model.hpp), not the cost
// of the hashes actually computed.
#pragma once

#include <memory>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/ids.hpp"

namespace eesmr {
class Writer;
class Reader;
}  // namespace eesmr

namespace eesmr::crypto {

/// Wire size of one share and of one aggregate: a compressed BLS12-381
/// G1 point.
constexpr std::size_t kAggSignatureBytes = 48;

/// Set of signer node-ids backing one aggregate signature. Fixed logical
/// width `n` (the certificate's signer universe); bits beyond `n` are
/// rejected on decode so every logical value has exactly one encoding.
class SignerBitset {
 public:
  SignerBitset() = default;
  explicit SignerBitset(std::size_t n);

  void set(NodeId id);
  [[nodiscard]] bool test(NodeId id) const;
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::vector<NodeId> members() const;

  void encode_into(Writer& w) const;
  static SignerBitset decode_from(Reader& r);

  [[nodiscard]] bool operator==(const SignerBitset& o) const {
    return n_ == o.n_ && bits_ == o.bits_;
  }

 private:
  std::size_t n_ = 0;
  Bytes bits_;  ///< ceil(n/8) bytes, little bit-endian, tail bits zero.
};

/// Key directory for the aggregate scheme: node i produces shares with
/// share(i, m); anyone verifies a share or a folded aggregate against
/// the public directory. Immutable once built, shared across a cluster.
class AggKeyring {
 public:
  /// Deterministic in `seed`; independent of the base Keyring's secrets.
  static std::shared_ptr<AggKeyring> simulated(std::size_t n,
                                               std::uint64_t seed);

  /// Node `id`'s 48-byte share over `msg`.
  [[nodiscard]] Bytes share(NodeId id, BytesView msg) const;

  /// True iff `sig` is exactly node `id`'s share over `msg`.
  [[nodiscard]] bool verify_share(NodeId id, BytesView msg,
                                  BytesView sig) const;

  /// True iff `agg` is the XOR-fold of exactly one share over `msg` from
  /// every member of `signers` (and `signers` is non-empty).
  [[nodiscard]] bool verify_aggregate(const SignerBitset& signers,
                                      BytesView msg, BytesView agg) const;

  /// Identity element of aggregation (48 zero bytes).
  static Bytes empty_aggregate();

  /// acc ^= share. Order-independent; folding the same share twice
  /// cancels it (the structural duplicate-signer defence).
  static void fold_into(Bytes& acc, BytesView share);

  [[nodiscard]] std::size_t size() const { return secrets_.size(); }

 private:
  AggKeyring() = default;
  std::vector<Bytes> secrets_;
};

}  // namespace eesmr::crypto
