// Figure 2a: failure rate of BLE k-casts vs energy spent (redundancy),
// for k = 1, 3, 7 — sender and receiver energies.
//
// Two columns per point: the closed-form model and a Monte-Carlo run of
// 10,000 transmitted packets (the paper's batch size) through the
// simulated lossy advertisement channel.
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/energy/cost_model.hpp"
#include "src/sim/rng.hpp"

using namespace eesmr;
using namespace eesmr::energy;

namespace {

/// Monte-Carlo failure fraction for 10,000 single-packet k-casts.
double monte_carlo_failure(std::size_t k, std::size_t redundancy,
                           sim::Rng& rng) {
  const int kPackets = 10000;
  int failures = 0;
  for (int p = 0; p < kPackets; ++p) {
    bool all_received = true;
    for (std::size_t r = 0; r < k; ++r) {
      bool got = false;
      for (std::size_t t = 0; t < redundancy; ++t) {
        if (!rng.chance(kBleAdvLossProb)) {
          got = true;
          break;
        }
      }
      if (!got) {
        all_received = false;
        break;
      }
    }
    failures += all_received ? 0 : 1;
  }
  return static_cast<double>(failures) / kPackets;
}

}  // namespace

int main() {
  bench::header("Figure 2a — k-cast failure % vs energy (redundancy sweep)",
                "Fig. 2a (§5.4, 10,000-packet batches, 25-byte payload)");

  sim::Rng rng(0xf2a);
  std::printf("%2s %4s | %10s %10s | %12s %12s\n", "k", "red",
              "sendE(mJ)", "recvE(mJ)", "model fail%", "mc fail%");
  std::printf("--------+-----------------------+---------------------------\n");
  for (std::size_t k : {1u, 3u, 7u}) {
    for (std::size_t red = 1; red <= 12; ++red) {
      const double fail_model =
          (1.0 - kcast_success_probability(25, k, red)) * 100.0;
      const double fail_mc = monte_carlo_failure(k, red, rng) * 100.0;
      std::printf("%2zu %4zu | %10.2f %10.2f | %12.5f %12.5f\n", k, red,
                  kcast_send_energy_mj(25, red),
                  kcast_recv_energy_mj(25, red), fail_model, fail_mc);
    }
    std::printf("--------+-----------------------+---------------------------\n");
  }

  const std::size_t r9999 = kcast_redundancy_for(25, 7, 0.9999);
  std::printf("\n99.99%% reliability for k=7 requires redundancy %zu:\n"
              "  sender %.2f mJ / receiver %.2f mJ per 25-byte message\n",
              r9999, kcast_send_energy_mj(25, r9999),
              kcast_recv_energy_mj(25, r9999));
  bench::note("expected shape: failure decays exponentially with spent "
              "energy; larger k fails more at equal energy (paper: "
              "'failure rates exponentially decrease... probability of a "
              "transmission failure increases with the value of k'). The "
              "paper's calibration point is 5.3 mJ / 9.98 mJ at k = 7.");
  return 0;
}
