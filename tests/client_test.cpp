// Client subsystem: request/reply wire format, the f+1-identical-replies
// acceptance rule (including Byzantine replies), and the end-to-end
// submit→order→execute→reply→accept path over real clusters.
#include <gtest/gtest.h>

#include "src/harness/cluster.hpp"
#include "src/smr/request.hpp"

namespace eesmr::client {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(ClientRequestWire, RoundTrips) {
  smr::ClientRequest req;
  req.client = 7;
  req.req_id = 42;
  req.op = to_bytes(std::string("set k1 v1"));
  req.sig = to_bytes(std::string("sig"));
  const auto back = smr::ClientRequest::decode(req.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->client, 7u);
  EXPECT_EQ(back->req_id, 42u);
  EXPECT_EQ(back->op, req.op);
  EXPECT_EQ(back->sig, req.sig);
}

TEST(ClientRequestWire, ForgedSignatureRejected) {
  // A Byzantine leader can place arbitrary bytes in a block, but a
  // request the client never signed must fail commit-time verification.
  const auto keyring =
      crypto::Keyring::simulated(crypto::SchemeId::kRsa1024, 6, 1);
  smr::ClientRequest req;
  req.client = 5;
  req.req_id = 1;
  req.op = to_bytes(std::string("set a evil"));
  req.sig = to_bytes(std::string("not a real signature"));
  EXPECT_FALSE(req.verify(*keyring));

  req.sig = keyring->signer(5).sign(req.preimage());
  EXPECT_TRUE(req.verify(*keyring));
  // Tampering with the op after signing invalidates it.
  req.op = to_bytes(std::string("set a good"));
  EXPECT_FALSE(req.verify(*keyring));
  // A signature from a different key does not transfer.
  req.client = 4;
  req.sig = keyring->signer(5).sign(req.preimage());
  EXPECT_FALSE(req.verify(*keyring));
}

TEST(ClientRequestWire, UntaggedCommandIsNotARequest) {
  EXPECT_FALSE(smr::ClientRequest::decode(to_bytes(std::string("set a b")))
                   .has_value());
  EXPECT_FALSE(smr::ClientRequest::decode(Bytes{}).has_value());
}

TEST(ClientReplyWire, RoundTripsAndNamesItsClient) {
  smr::ClientReply rep;
  rep.client = 6;
  rep.req_id = 9;
  rep.result = to_bytes(std::string("ok"));
  const auto back = smr::ClientReply::decode(rep.encode());
  ASSERT_TRUE(back.has_value());
  // The client id sits under the replica's signature (it is part of the
  // signed Msg::data), so replies cannot be replayed to another client
  // with a colliding req_id.
  EXPECT_EQ(back->client, 6u);
  EXPECT_EQ(back->req_id, 9u);
  EXPECT_EQ(back->result, rep.result);
}

TEST(LatencyHistogram, NearestRankQuantiles) {
  LatencyHistogram h;
  h.add(20);
  h.add(10);  // unsorted on purpose
  EXPECT_EQ(h.quantile(0.5), 10);   // ceil(0.5*2)-1 = index 0
  EXPECT_EQ(h.quantile(1.0), 20);
  EXPECT_EQ(h.quantile(0.0), 10);
  for (int i = 3; i <= 100; ++i) h.add(i * 10);
  // 100 samples 10..1000: p99 is the 99th value, not the max.
  EXPECT_EQ(h.quantile(0.99), 990);
  EXPECT_EQ(h.quantile(0.50), 500);
  EXPECT_EQ(h.max(), 1000);
}

// ---------------------------------------------------------------------------
// AckCollector under Byzantine replies (§3's f+1 rule)
// ---------------------------------------------------------------------------

TEST(AckCollector, ConflictingResultsFromFReplicasNeverAccepted) {
  const std::size_t f = 2;
  smr::AckCollector acks(f);
  // f Byzantine replicas agree on a wrong result: still below f+1.
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("evil"))).has_value());
  EXPECT_FALSE(acks.add(1, to_bytes(std::string("evil"))).has_value());
  EXPECT_FALSE(acks.accepted());
  // Two honest replies are not enough either (f+1 = 3)...
  EXPECT_FALSE(acks.add(2, to_bytes(std::string("good"))).has_value());
  EXPECT_FALSE(acks.add(3, to_bytes(std::string("good"))).has_value());
  // ...but the third honest reply crosses the threshold with the honest
  // result, never the Byzantine one.
  const auto result = acks.add(4, to_bytes(std::string("good")));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(to_string(*result), "good");
}

TEST(AckCollector, DuplicateRepliesFromOneReplicaDoNotDoubleCount) {
  smr::AckCollector acks(1);  // f = 1: need 2 identical results
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("x"))).has_value());
  // Replica 0 repeating itself must not reach acceptance alone.
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("x"))).has_value());
  EXPECT_FALSE(acks.accepted());
  // A second distinct replica does.
  EXPECT_TRUE(acks.add(1, to_bytes(std::string("x"))).has_value());
}

TEST(AckCollector, EquivocatingReplicaCountsOnlyOnce) {
  smr::AckCollector acks(1);
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("a"))).has_value());
  // The same replica "changing its mind" is ignored entirely.
  EXPECT_FALSE(acks.add(0, to_bytes(std::string("b"))).has_value());
  EXPECT_FALSE(acks.add(1, to_bytes(std::string("b"))).has_value());
  EXPECT_FALSE(acks.accepted());
  const auto result = acks.add(2, to_bytes(std::string("b")));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(to_string(*result), "b");
}

// ---------------------------------------------------------------------------
// End-to-end clusters
// ---------------------------------------------------------------------------

ClusterConfig client_cfg(Protocol protocol, std::size_t clients) {
  ClusterConfig cfg;
  cfg.protocol = protocol;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 11;
  cfg.clients = clients;
  cfg.workload.mode = WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 2;
  cfg.workload.max_requests = 6;
  cfg.workload.gen.kind = GenSpec::Kind::kKv;
  cfg.workload.gen.kv_keys = 8;
  cfg.workload.gen.kv_read_fraction = 0.3;
  return cfg;
}

TEST(ClusterClients, EesmrClosedLoopAcceptsAllRequests) {
  Cluster cluster(client_cfg(Protocol::kEesmr, 2));
  const RunResult r = cluster.run_until_accepted(12, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.requests_submitted, 12u);
  EXPECT_EQ(r.requests_accepted, 12u);
  EXPECT_EQ(r.latency.count(), 12u);
  EXPECT_GT(r.latency.p50(), 0);
  EXPECT_LE(r.latency.p50(), r.latency.p99());
  // Acceptance requires f+1 identical signed replies.
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    EXPECT_GE(cluster.client(i).min_replies_at_accept(), cluster.config().f + 1);
  }
}

TEST(ClusterClients, SyncHotStuffServesClientsToo) {
  Cluster cluster(client_cfg(Protocol::kSyncHotStuff, 2));
  const RunResult r = cluster.run_until_accepted(12, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.requests_accepted, 12u);
  EXPECT_EQ(r.latency.count(), 12u);
}

TEST(ClusterClients, OpenLoopPoissonDeliversAndIsDeterministic) {
  auto run = [] {
    ClusterConfig cfg = client_cfg(Protocol::kEesmr, 3);
    cfg.workload.mode = WorkloadSpec::Mode::kOpenLoop;
    cfg.workload.rate_per_sec = 40;
    cfg.workload.max_requests = 0;
    Cluster cluster(cfg);
    return cluster.run_for(sim::seconds(10));
  };
  const RunResult a = run(), b = run();
  EXPECT_TRUE(a.safety_ok());
  EXPECT_GT(a.requests_accepted, 50u);
  // Full determinism from (config, seed), clients included.
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_accepted, b.requests_accepted);
  EXPECT_EQ(a.latency.p99(), b.latency.p99());
  EXPECT_EQ(a.transmissions, b.transmissions);
}

TEST(ClusterClients, CrashedReplicaDoesNotBlockAcceptance) {
  // With one crashed replica (<= f), f+1 honest replies still arrive.
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 1);
  cfg.workload.max_requests = 4;
  harness::FaultSpec fault;
  fault.node = 3;  // not the initial leader
  fault.mode = protocol::ByzantineMode::kCrash;
  fault.trigger_round = 3;
  cfg.faults.push_back(fault);
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(4, sim::seconds(300));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.requests_accepted, 4u);
}

/// State machine that always lies: models a Byzantine replica's
/// execution layer sending wrong acknowledgments.
class LyingApp final : public smr::StateMachine {
 public:
  Bytes apply(const smr::Command&) override {
    return to_bytes(std::string("LIE"));
  }
  [[nodiscard]] Bytes state_digest() const override {
    return to_bytes(std::string("lies"));
  }
};

TEST(ClusterClients, LyingReplicaCannotCorruptAcceptedResults) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 2);
  cfg.workload.max_requests = 5;
  Cluster cluster(cfg);
  LyingApp liar;
  cluster.replica(0).attach_app(&liar);  // one Byzantine executor (<= f)
  const RunResult r = cluster.run_until_accepted(10, sim::seconds(120));
  EXPECT_EQ(r.requests_accepted, 10u);
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    for (const auto& [req_id, result] : cluster.client(i).results()) {
      EXPECT_NE(to_string(result), "LIE") << "req " << req_id;
    }
  }
}

TEST(ClusterClients, RetransmissionsAreExecutedExactlyOnce) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 1);
  cfg.workload.max_requests = 5;
  cfg.workload.gen.kv_read_fraction = 0.0;  // writes only: double-apply visible
  cfg.client_retry = sim::milliseconds(40);  // aggressive retransmits
  Cluster cluster(cfg);
  RunResult r = cluster.run_until_accepted(5, sim::seconds(120));
  EXPECT_EQ(r.requests_accepted, 5u);
  EXPECT_GT(r.request_retransmissions, 0u);
  // Let stragglers commit everywhere, then check exactly-once execution.
  cluster.run_for(cluster.delta() * 10);
  for (NodeId i = 0; i < 4; ++i) {
    auto* kv = dynamic_cast<smr::KvStore*>(cluster.replica(i).app());
    ASSERT_NE(kv, nullptr);
    EXPECT_EQ(kv->applied(), 5u) << "replica " << i;
  }
}

TEST(ClusterClients, KcastRingTopologyServesClients) {
  // Clients must not shortcut the ring: Δ stays derived from the replica
  // diameter and requests/replies still flow.
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 2);
  cfg.n = 6;
  cfg.f = 2;
  cfg.k = 3;
  cfg.workload.max_requests = 3;
  Cluster cluster(cfg);
  ClusterConfig plain = cfg;
  plain.clients = 0;
  Cluster reference(plain);
  EXPECT_EQ(cluster.delta(), reference.delta());
  const RunResult r = cluster.run_until_accepted(6, sim::seconds(300));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.requests_accepted, 6u);
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    EXPECT_GE(cluster.client(i).min_replies_at_accept(), cfg.f + 1);
  }
}

TEST(ClusterClients, TrustedBaselineServesClients) {
  // The controller protocol also flows through ReplicaBase's commit
  // path, so the same request/reply plumbing applies. Every CPS node
  // pools the flooded request; exactly-once execution absorbs the
  // duplicate submissions.
  ClusterConfig cfg = client_cfg(Protocol::kTrustedBaseline, 1);
  cfg.medium = energy::Medium::k4gLte;
  cfg.workload.max_requests = 3;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(3, sim::seconds(300));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.requests_accepted, 3u);
}

TEST(ClusterClients, PartialAttachmentStillServes) {
  ClusterConfig cfg = client_cfg(Protocol::kEesmr, 2);
  cfg.client_attach = 2;  // f+1 access points per client
  cfg.workload.max_requests = 3;
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(6, sim::seconds(300));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.requests_accepted, 6u);
}

}  // namespace
}  // namespace eesmr::client
