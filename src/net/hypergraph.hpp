// Hypergraph network model from Appendix A.
//
// A hyper-edge e = (S(e), R(e)) models one multicast: sender S(e) reaches
// every receiver in R(e) with a single transmission. Definitions A.1–A.4
// (k-casts, d_in/d_out, D_in/D_out, independence of edges) and the
// fault-tolerance necessary conditions of Lemmas A.5/A.6 are implemented
// here, together with the partition-resistance check the paper assumes.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/ids.hpp"
#include "src/sim/rng.hpp"

namespace eesmr::net {

/// One multicast channel: S(e) = sender, R(e) = receivers (no self-loop).
struct HyperEdge {
  NodeId sender = kNoNode;
  std::vector<NodeId> receivers;
};

class Hypergraph {
 public:
  explicit Hypergraph(std::size_t n) : n_(n), out_edges_(n), in_edges_(n) {}

  /// Fully-connected unicast topology: an edge i -> {j} for every i != j.
  static Hypergraph full_mesh(std::size_t n);

  /// The §5.6 evaluation topology: every node p_i transmits one k-cast to
  /// p_{i+1 mod n} ... p_{i+k mod n}; hence D_out = 1 and D_in = k.
  static Hypergraph kcast_ring(std::size_t n, std::size_t k);

  /// Copy of `base` with capacity for `n` >= base.n() nodes; the extra
  /// nodes start with no edges. Used to append client nodes to a replica
  /// topology before wiring their access edges.
  static Hypergraph expanded(const Hypergraph& base, std::size_t n);

  /// Throws std::invalid_argument on self-loops or out-of-range nodes.
  void add_edge(HyperEdge edge);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] const std::vector<HyperEdge>& edges() const { return edges_; }
  /// Indices into edges() where `node` is the sender / a receiver.
  [[nodiscard]] const std::vector<std::size_t>& out_edges(NodeId node) const;
  [[nodiscard]] const std::vector<std::size_t>& in_edges(NodeId node) const;

  // -- Definitions A.3 / A.4 -------------------------------------------------
  /// Number of distinct nodes reachable by node's outgoing edges.
  [[nodiscard]] std::size_t d_out(NodeId node) const;
  /// Number of distinct nodes with an edge delivering to `node`.
  [[nodiscard]] std::size_t d_in(NodeId node) const;
  [[nodiscard]] std::size_t min_d_out() const;
  [[nodiscard]] std::size_t min_d_in() const;

  /// D_out / D_in: minimum number of outgoing / incoming *edges* over all
  /// nodes (the k-cast counts used in Lemma A.6).
  [[nodiscard]] std::size_t cap_d_out() const;
  [[nodiscard]] std::size_t cap_d_in() const;

  /// Minimum receiver-set size over all edges ("the hypergraph has
  /// k-casts" for k = min_edge_degree()).
  [[nodiscard]] std::size_t min_edge_degree() const;

  // -- Definition A.2 ----------------------------------------------------------
  /// Exact check that no node has two distinct subsets of its out-edges
  /// covering the same receiver set. Exponential in the per-node edge
  /// count; throws std::invalid_argument when a node has > 20 out-edges.
  [[nodiscard]] bool edges_independent() const;

  // -- Lemma A.5 / A.6 ---------------------------------------------------------
  /// Necessary condition f < min over nodes of (d_out, d_in).
  [[nodiscard]] bool satisfies_fault_bound(std::size_t f) const;
  /// Necessary condition f < k * min(D_in, D_out) for k-cast graphs.
  [[nodiscard]] bool satisfies_kcast_bound(std::size_t f,
                                           std::size_t k) const;

  // -- Connectivity -------------------------------------------------------------
  /// Can every remaining node reach every other after removing `removed`?
  [[nodiscard]] bool strongly_connected_without(
      const std::vector<NodeId>& removed) const;
  [[nodiscard]] bool strongly_connected() const {
    return strongly_connected_without({});
  }

  /// Partition resistance: strongly connected after removing *any* f
  /// nodes. Exact when C(n, f) <= exact_limit; otherwise falls back to
  /// `samples` random subsets (returns false on any counterexample).
  [[nodiscard]] bool partition_resistant(std::size_t f, sim::Rng& rng,
                                         std::size_t exact_limit = 200000,
                                         std::size_t samples = 2000) const;

  /// Longest shortest-path hop count between any connected ordered pair
  /// (edges count one hop from sender to each receiver). Used to derive
  /// the end-to-end Delta for flooding.
  [[nodiscard]] std::size_t diameter() const;

 private:
  [[nodiscard]] std::vector<std::size_t> bfs_distances(
      NodeId origin, const std::vector<bool>& removed) const;

  std::size_t n_;
  std::vector<HyperEdge> edges_;
  std::vector<std::vector<std::size_t>> out_edges_;
  std::vector<std::vector<std::size_t>> in_edges_;
};

}  // namespace eesmr::net
