// Generic short-Weierstrass elliptic curve arithmetic (y² = x³ + ax + b
// over GF(p)) with Jacobian-coordinate point operations.
//
// Parameter sets cover every curve in the paper's Table 2: the NIST/SEC
// curves secp192r1/k1, secp224r1, secp256r1/k1 and the Brainpool curves
// brainpoolP160r1 / brainpoolP256r1 (RFC 5639).
#pragma once

#include <optional>
#include <string>

#include "src/crypto/bigint.hpp"

namespace eesmr::crypto {

/// Identifiers for the curves evaluated in Table 2.
enum class CurveId {
  kSecp192r1,
  kSecp192k1,
  kSecp224r1,
  kSecp256r1,
  kSecp256k1,
  kBrainpoolP160r1,
  kBrainpoolP256r1,
};

/// Domain parameters for y² = x³ + ax + b mod p with base point G of
/// prime order n.
struct CurveParams {
  std::string name;
  BigInt p;   ///< field prime
  BigInt a;   ///< curve coefficient a
  BigInt b;   ///< curve coefficient b
  BigInt gx;  ///< base point x
  BigInt gy;  ///< base point y
  BigInt n;   ///< order of G (prime)
  std::size_t bits = 0;  ///< field size in bits

  [[nodiscard]] std::size_t field_bytes() const { return (bits + 7) / 8; }
};

/// Registry lookup (parameters are constructed once, lazily).
const CurveParams& curve_params(CurveId id);
const char* curve_name(CurveId id);

/// Affine point; infinity is represented by `infinity = true`.
struct AffinePoint {
  BigInt x;
  BigInt y;
  bool infinity = true;

  static AffinePoint identity() { return {}; }
  static AffinePoint make(BigInt x, BigInt y) {
    return {std::move(x), std::move(y), false};
  }
  friend bool operator==(const AffinePoint& p, const AffinePoint& q) {
    if (p.infinity || q.infinity) return p.infinity == q.infinity;
    return p.x == q.x && p.y == q.y;
  }
};

/// Stateless curve-arithmetic engine bound to one parameter set.
class Curve {
 public:
  explicit Curve(const CurveParams& params) : P_(params) {}

  [[nodiscard]] const CurveParams& params() const { return P_; }
  [[nodiscard]] AffinePoint generator() const {
    return AffinePoint::make(P_.gx, P_.gy);
  }

  /// Check y² = x³ + ax + b mod p (identity is on the curve).
  [[nodiscard]] bool on_curve(const AffinePoint& pt) const;

  [[nodiscard]] AffinePoint add(const AffinePoint& p,
                                const AffinePoint& q) const;
  [[nodiscard]] AffinePoint dbl(const AffinePoint& p) const;
  /// Scalar multiplication k·P (Jacobian double-and-add).
  [[nodiscard]] AffinePoint mul(const BigInt& k, const AffinePoint& p) const;
  /// k·G
  [[nodiscard]] AffinePoint mul_base(const BigInt& k) const {
    return mul(k, generator());
  }

 private:
  // Jacobian coordinates (X, Y, Z): x = X/Z², y = Y/Z³.
  struct Jac {
    BigInt x, y, z;
    bool infinity = true;
  };
  [[nodiscard]] Jac to_jac(const AffinePoint& p) const;
  [[nodiscard]] AffinePoint to_affine(const Jac& p) const;
  [[nodiscard]] Jac jac_dbl(const Jac& p) const;
  [[nodiscard]] Jac jac_add(const Jac& p, const Jac& q) const;

  // Field helpers.
  [[nodiscard]] BigInt fadd(const BigInt& a, const BigInt& b) const {
    return BigInt::mod_add(a, b, P_.p);
  }
  [[nodiscard]] BigInt fsub(const BigInt& a, const BigInt& b) const {
    return BigInt::mod_sub(a, b, P_.p);
  }
  [[nodiscard]] BigInt fmul(const BigInt& a, const BigInt& b) const {
    return BigInt::mod_mul(a, b, P_.p);
  }
  [[nodiscard]] BigInt finv(const BigInt& a) const;

  const CurveParams& P_;
};

}  // namespace eesmr::crypto
