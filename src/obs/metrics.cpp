#include "src/obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace eesmr::obs {

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "gauge";
}

namespace {

bool name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool name_rest(char c) { return name_start(c) || (c >= '0' && c <= '9'); }

MetricKind kind_from_name(const std::string& s) {
  if (s == "counter") return MetricKind::kCounter;
  if (s == "gauge") return MetricKind::kGauge;
  if (s == "histogram") return MetricKind::kHistogram;
  throw std::invalid_argument("obs: unknown metric kind '" + s + "'");
}

}  // namespace

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!name_start(name[0]) && name[0] != ':') return false;
  for (char c : name)
    if (!name_rest(c) && c != ':') return false;
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty() || !name_start(name[0])) return false;
  return std::all_of(name.begin(), name.end(), name_rest);
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument("obs: histogram bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

const std::vector<double>& Histogram::default_latency_buckets_ms() {
  // Roughly-exponential layout spanning one hop delay to a stalled view:
  // fine-grained below 100ms where the commit-latency benches live.
  static const std::vector<double> kBuckets = {
      0.5,  1,    2,    5,    10,    20,    50,    100,    200,
      500,  1000, 2000, 5000, 10000, 30000, 60000, 120000,
  };
  return kBuckets;
}

void Histogram::observe(double v) {
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  // First bucket whose upper bound admits v; the +Inf bucket otherwise.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  sum_ += v;
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0 && other.bounds_.empty()) return;
  if (count_ == 0 && bounds_.empty() && counts_.empty()) {
    *this = other;
    return;
  }
  if (bounds_ != other.bounds_)
    throw std::invalid_argument("obs: merging histograms of different shape");
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  for (std::size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  sum_ += other.sum_;
  count_ += other.count_;
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  std::uint64_t c = 0;
  for (std::size_t j = 0; j <= i && j < counts_.size(); ++j) c += counts_[j];
  return c;
}

bool operator==(const Histogram& a, const Histogram& b) {
  return a.bounds_ == b.bounds_ && a.counts_ == b.counts_ && a.sum_ == b.sum_ &&
         a.count_ == b.count_;
}

// ---------------------------------------------------------------------------
// Family

Sample& Family::with(const Labels& labels) {
  for (auto& s : samples)
    if (s.labels == labels) return s;
  samples.push_back(Sample{labels, 0, Histogram{}});
  return samples.back();
}

const Sample* Family::find(const Labels& labels) const {
  for (const auto& s : samples)
    if (s.labels == labels) return &s;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Counter / Gauge handles

void Counter::inc(double d) {
  if (d < 0)
    throw std::invalid_argument("obs: counter increment must be >= 0");
  reg_->families_[fam_].samples[idx_].value += d;
}
double Counter::value() const {
  return reg_->families_[fam_].samples[idx_].value;
}

void Gauge::set(double v) { reg_->families_[fam_].samples[idx_].value = v; }
void Gauge::add(double d) { reg_->families_[fam_].samples[idx_].value += d; }
double Gauge::value() const {
  return reg_->families_[fam_].samples[idx_].value;
}

// ---------------------------------------------------------------------------
// Registry

Family& Registry::family(const std::string& name, const std::string& help,
                         MetricKind kind) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("obs: invalid metric name '" + name + "'");
  for (auto& f : families_) {
    if (f.name != name) continue;
    if (f.kind != kind)
      throw std::invalid_argument("obs: metric '" + name +
                                  "' re-registered with a different kind");
    if (f.help != help)
      throw std::invalid_argument("obs: metric '" + name +
                                  "' re-registered with different help");
    return f;
  }
  families_.push_back(Family{name, help, kind, {}});
  return families_.back();
}

namespace {
void check_labels(const Labels& labels) {
  for (const auto& [k, v] : labels) {
    (void)v;
    if (!valid_label_name(k))
      throw std::invalid_argument("obs: invalid label name '" + k + "'");
    if (k == "le")
      throw std::invalid_argument("obs: label 'le' is reserved for buckets");
  }
}
}  // namespace

Counter Registry::counter(const std::string& name, const std::string& help,
                          const Labels& labels) {
  check_labels(labels);
  Family& f = family(name, help, MetricKind::kCounter);
  f.with(labels);
  std::size_t fam = static_cast<std::size_t>(&f - families_.data());
  std::size_t idx = f.samples.size();
  for (std::size_t i = 0; i < f.samples.size(); ++i)
    if (f.samples[i].labels == labels) idx = i;
  return Counter(this, fam, idx);
}

Gauge Registry::gauge(const std::string& name, const std::string& help,
                      const Labels& labels) {
  check_labels(labels);
  Family& f = family(name, help, MetricKind::kGauge);
  f.with(labels);
  std::size_t fam = static_cast<std::size_t>(&f - families_.data());
  std::size_t idx = f.samples.size();
  for (std::size_t i = 0; i < f.samples.size(); ++i)
    if (f.samples[i].labels == labels) idx = i;
  return Gauge(this, fam, idx);
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> bounds,
                               const Labels& labels) {
  check_labels(labels);
  Family& f = family(name, help, MetricKind::kHistogram);
  Sample& s = f.with(labels);
  if (s.hist.bounds().empty() && s.hist.count() == 0)
    s.hist = Histogram(std::move(bounds));
  return s.hist;
}

void Registry::set_counter(const std::string& name, const std::string& help,
                           const Labels& labels, double total) {
  if (total < 0)
    throw std::invalid_argument("obs: counter '" + name + "' must be >= 0");
  check_labels(labels);
  family(name, help, MetricKind::kCounter).with(labels).value = total;
}

void Registry::set_gauge(const std::string& name, const std::string& help,
                         const Labels& labels, double v) {
  check_labels(labels);
  family(name, help, MetricKind::kGauge).with(labels).value = v;
}

void Registry::set_histogram(const std::string& name, const std::string& help,
                             const Labels& labels, const Histogram& h) {
  check_labels(labels);
  family(name, help, MetricKind::kHistogram).with(labels).hist = h;
}

const Family* Registry::find(const std::string& name) const {
  for (const auto& f : families_)
    if (f.name == name) return &f;
  return nullptr;
}

double Registry::value(const std::string& name, const Labels& labels) const {
  const Family* f = find(name);
  if (!f) throw std::out_of_range("obs: no metric family '" + name + "'");
  const Sample* s = f->find(labels);
  if (!s)
    throw std::out_of_range("obs: no sample with given labels in '" + name +
                            "'");
  return s->value;
}

void Registry::merge(const Registry& other, const Labels& extra) {
  check_labels(extra);
  for (const auto& of : other.families_) {
    Family& f = family(of.name, of.help, of.kind);
    for (const auto& os : of.samples) {
      Labels labels = extra;
      labels.insert(labels.end(), os.labels.begin(), os.labels.end());
      Sample& s = f.with(labels);
      s.value = os.value;
      s.hist = os.hist;
    }
  }
}

// ---------------------------------------------------------------------------
// Text exposition

namespace {

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string render_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return render_labels(all);
}

}  // namespace

std::string Registry::text() const {
  std::string out;
  for (const auto& f : families_) {
    out += "# HELP " + f.name + " " + escape_help(f.help) + "\n";
    out += "# TYPE " + f.name + " ";
    out += kind_name(f.kind);
    out += "\n";
    for (const auto& s : f.samples) {
      if (f.kind == MetricKind::kHistogram) {
        const Histogram& h = s.hist;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          out += f.name + "_bucket" +
                 render_labels_with(s.labels, "le",
                                    exp::json_number(h.bounds()[i])) +
                 " " + std::to_string(h.cumulative(i)) + "\n";
        }
        out += f.name + "_bucket" +
               render_labels_with(s.labels, "le", "+Inf") + " " +
               std::to_string(h.count()) + "\n";
        out += f.name + "_sum" + render_labels(s.labels) + " " +
               exp::json_number(h.sum()) + "\n";
        out += f.name + "_count" + render_labels(s.labels) + " " +
               std::to_string(h.count()) + "\n";
      } else {
        out += f.name + render_labels(s.labels) + " " +
               exp::json_number(s.value) + "\n";
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON snapshot

exp::Json Registry::to_json() const {
  exp::Json fams = exp::Json::array();
  for (const auto& f : families_) {
    exp::Json jf = exp::Json::object();
    jf.set("name", f.name);
    jf.set("kind", kind_name(f.kind));
    jf.set("help", f.help);
    exp::Json samples = exp::Json::array();
    for (const auto& s : f.samples) {
      exp::Json js = exp::Json::object();
      exp::Json labels = exp::Json::object();
      for (const auto& [k, v] : s.labels) labels.set(k, v);
      js.set("labels", std::move(labels));
      if (f.kind == MetricKind::kHistogram) {
        exp::Json bounds = exp::Json::array();
        for (double b : s.hist.bounds()) bounds.push_back(b);
        exp::Json counts = exp::Json::array();
        for (std::uint64_t c : s.hist.bucket_counts()) counts.push_back(c);
        js.set("bounds", std::move(bounds));
        js.set("counts", std::move(counts));
        js.set("sum", s.hist.sum());
        js.set("count", s.hist.count());
      } else {
        js.set("value", s.value);
      }
      samples.push_back(std::move(js));
    }
    jf.set("samples", std::move(samples));
    fams.push_back(std::move(jf));
  }
  exp::Json doc = exp::Json::object();
  doc.set("families", std::move(fams));
  return doc;
}

Registry Registry::from_json(const exp::Json& doc) {
  Registry reg;
  for (const auto& jf : doc.at("families").items()) {
    MetricKind kind = kind_from_name(jf.at("kind").as_string());
    Family& f =
        reg.family(jf.at("name").as_string(), jf.at("help").as_string(), kind);
    for (const auto& js : jf.at("samples").items()) {
      Labels labels;
      for (const auto& [k, v] : js.at("labels").members())
        labels.emplace_back(k, v.as_string());
      Sample& s = f.with(labels);
      if (kind == MetricKind::kHistogram) {
        std::vector<double> bounds;
        for (const auto& b : js.at("bounds").items())
          bounds.push_back(b.as_double());
        Histogram h(std::move(bounds));
        // Reconstitute counts/sum directly: observations are gone.
        std::vector<std::uint64_t> counts;
        for (const auto& c : js.at("counts").items())
          counts.push_back(static_cast<std::uint64_t>(c.as_int()));
        h.counts_ = std::move(counts);
        h.sum_ = js.at("sum").as_double();
        h.count_ = static_cast<std::uint64_t>(js.at("count").as_int());
        s.hist = std::move(h);
      } else {
        s.value = js.at("value").as_double();
      }
    }
  }
  return reg;
}

bool operator==(const Registry& a, const Registry& b) {
  if (a.families_.size() != b.families_.size()) return false;
  for (std::size_t i = 0; i < a.families_.size(); ++i) {
    const Family& fa = a.families_[i];
    const Family& fb = b.families_[i];
    if (fa.name != fb.name || fa.help != fb.help || fa.kind != fb.kind)
      return false;
    if (fa.samples.size() != fb.samples.size()) return false;
    for (std::size_t j = 0; j < fa.samples.size(); ++j) {
      const Sample& sa = fa.samples[j];
      const Sample& sb = fb.samples[j];
      if (sa.labels != sb.labels || sa.value != sb.value ||
          !(sa.hist == sb.hist))
        return false;
    }
  }
  return true;
}

}  // namespace eesmr::obs
