// Ablations over the design choices DESIGN.md calls out:
//  (1) signature scheme inside the protocol (RSA vs ECDSA vs HMAC),
//  (2) transport: k-cast ring vs fully-connected GATT unicasts,
//  (3) equivocation fast path on/off,
//  (4) blocking vs pipelined (non-blocking) variant,
//  (5) commands in bootstrap rounds on/off.
#include "bench/bench_util.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  bench::header("Ablations — EESMR design choices", "§3.5, §5.5, §5.6");

  // (1) Signature scheme: the leader-signs/replicas-verify pattern makes
  // verify cost dominate; RSA-1024 should win among asymmetric schemes.
  std::printf("[1] signature scheme (n = 10, k = 3, mJ per block):\n");
  for (crypto::SchemeId s :
       {crypto::SchemeId::kRsa1024, crypto::SchemeId::kRsa2048,
        crypto::SchemeId::kEcdsaSecp256k1, crypto::SchemeId::kEcdsaSecp192r1,
        crypto::SchemeId::kHmacSha256}) {
    ClusterConfig cfg;
    cfg.n = 10;
    cfg.f = 2;
    cfg.k = 3;
    cfg.medium = energy::Medium::kBle;
    cfg.scheme = s;
    cfg.seed = 30;
    const RunResult r = bench::run_steady(cfg, 8);
    std::printf("    %-18s %10.0f\n", crypto::scheme_info(s).name,
                r.energy_per_block_mj());
  }
  bench::note("expected: RSA-1024 cheapest asymmetric (verify 0.02 J); "
              "ECDSA pays ~100x more verification energy; HMAC cheapest "
              "overall but lacks transferable authentication (§2)");

  // (2) Transport.
  std::printf("\n[2] transport (n = 8, mJ per block):\n");
  for (std::size_t k : {0u, 3u, 5u, 7u}) {
    ClusterConfig cfg;
    cfg.n = 8;
    cfg.f = 2;
    cfg.k = k;
    cfg.medium = energy::Medium::kBle;
    cfg.seed = 31;
    const RunResult r = bench::run_steady(cfg, 8);
    std::printf("    %-22s %10.0f\n",
                k == 0 ? "full mesh (GATT)" : ("k-cast ring k=" + std::to_string(k)).c_str(),
                r.energy_per_block_mj());
  }
  bench::note("expected: k-casts win on SENDER energy (one advertisement "
              "covers k receivers, Fig 2b) and enable partially-connected "
              "deployments, but the receive-scanning cost (9.98 vs 5.3 mJ "
              "per message in the paper's calibration) makes the reliable "
              "GATT mesh cheaper in TOTAL energy at multi-packet payloads; "
              "energy grows with k either way");

  // (3) Equivocation fast path.
  std::printf("\n[3] equivocation fast path (n = 7, equivocating leader):\n");
  for (bool fast : {true, false}) {
    ClusterConfig cfg;
    cfg.n = 7;
    cfg.f = 3;
    cfg.k = 4;
    cfg.medium = energy::Medium::kBle;
    cfg.eesmr.equivocation_fast_path = fast;
    cfg.seed = 32;
    const bench::ViewChangeCost vc = bench::view_change_cost(
        cfg, {1, protocol::ByzantineMode::kEquivocate, 4}, 2, 6);
    std::printf("    fast_path=%d: VC surcharge %8.0f mJ total\n", fast,
                vc.total_mj);
  }
  bench::note("expected: the fast path saves the blame-QC round "
              "('equivocation scenario speedups', §3.5)");

  // (4) Pipelining.
  std::printf("\n[4] blocking vs pipelined (n = 6, blocks in 40 s sim):\n");
  for (std::size_t pipeline : {1u, 4u, 16u}) {
    ClusterConfig cfg;
    cfg.n = 6;
    cfg.f = 2;
    cfg.k = 3;
    cfg.eesmr.pipeline = pipeline;
    cfg.seed = 33;
    Cluster cluster(cfg);
    const RunResult r = cluster.run_for(sim::seconds(40));
    std::printf("    pipeline=%2zu: %4zu blocks, %8.0f mJ/block\n", pipeline,
                r.min_committed(), r.energy_per_block_mj());
  }
  bench::note("expected: same energy per block (identical messages), "
              "higher throughput — the non-blocking variant's trade is "
              "memory, not energy (§5.6 footnote)");

  // (5) Commands in bootstrap rounds.
  std::printf("\n[5] commands in bootstrap rounds (n = 5, crash VC):\n");
  for (bool cmds : {false, true}) {
    ClusterConfig cfg;
    cfg.n = 5;
    cfg.f = 2;
    cfg.k = 3;
    cfg.eesmr.cmds_in_bootstrap = cmds;
    cfg.faults = {{1, protocol::ByzantineMode::kCrash, 4}};
    cfg.seed = 34;
    Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(6, sim::seconds(600));
    std::printf("    cmds_in_bootstrap=%d: %zu blocks by t=%.1fs, "
                "safety=%s\n", cmds, r.min_committed(),
                sim::to_seconds(r.end_time), r.safety_ok() ? "ok" : "FAIL");
  }
  bench::note("expected: enabling round-1 commands recovers a little "
              "throughput around view changes at unchanged safety (§3.5 "
              "'Add commands in rounds 1 and 2')");

  // (6) Checkpoint batching: optimistic pre-commit, verify every c-th.
  std::printf("\n[6] checkpoint batching (n = 10, k = 3, mJ per block):\n");
  for (std::size_t interval : {0u, 2u, 4u, 8u}) {
    ClusterConfig cfg;
    cfg.n = 10;
    cfg.f = 2;
    cfg.k = 3;
    cfg.medium = energy::Medium::kBle;
    cfg.eesmr.checkpoint_interval = interval;
    cfg.seed = 35;
    const RunResult r = bench::run_steady(cfg, 8);
    std::printf("    interval=%zu%-14s %10.0f\n", interval,
                interval == 0 ? " (verify all)" : "", r.energy_per_block_mj());
  }
  bench::note("expected: verification energy amortizes across the "
              "checkpoint window ('a significant amount of energy' in the "
              "correct-leader case, §3.5)");
  return 0;
}
