// Declarative adversary description — the fault-injection half of a
// ClusterConfig. A spec names WHAT goes wrong (which links drop, which
// replicas withhold which streams, who crashes when, which Byzantine
// clients flood); the harness wires it into the network / replicas /
// scheduler at construction time, and the always-on Safety/Liveness
// checkers turn every run into a conformance verdict.
//
// Everything here is a pure value: a spec plus the run seed fully
// determines the fault schedule (drop/dup/reorder decisions come from an
// Rng derived from the seed, so identical seeds reproduce identical
// schedules at any experiment-runner thread count).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/ids.hpp"
#include "src/sim/time.hpp"

namespace eesmr::adversary {

/// Wildcard node in a fault rule's from/to match.
constexpr NodeId kAnyNode = kNoNode;
/// Wildcard stream (any energy::Stream traffic class).
constexpr int kAnyStream = -1;

struct AdversarySpec {
  /// Network-level fault rule, installed on net::Network via a
  /// NetAdversary (src/adversary/adversary.hpp). The first matching rule
  /// decides each (transmission, receiver) delivery.
  struct LinkFault {
    NodeId from = kAnyNode;  ///< link sender filter (kAnyNode = all)
    NodeId to = kAnyNode;    ///< receiver filter
    int stream = kAnyStream; ///< energy::Stream value, or kAnyStream
    double drop = 0;         ///< per-delivery drop probability
    double duplicate = 0;    ///< probability of one extra delivered copy
    double reorder = 0;      ///< probability of delaying the delivery
    /// Extra delay applied when the reorder trial fires. Kept at or
    /// below the hop bound this still respects bounded synchrony (pure
    /// reordering); above it, the rule deliberately violates Δ.
    sim::Duration reorder_delay = 0;
    /// Active window in simulated time ([from_time, until_time); an
    /// until_time of 0 means "until the end of the run").
    sim::SimTime from_time = 0;
    sim::SimTime until_time = 0;
  };
  std::vector<LinkFault> link_faults;

  /// Byzantine per-stream withholding: the named replica builds and
  /// signs its outgoing messages but suppresses those whose type maps to
  /// `stream` (selective withholding per traffic class; stream =
  /// energy::Stream::kVote is classic vote suppression). Installed as a
  /// smr::OutboundPolicy on the replica.
  struct Withhold {
    NodeId node = 0;
    int stream = kAnyStream;
    double prob = 1.0;  ///< withhold probability per outgoing message
    sim::SimTime from_time = 0;
    sim::SimTime until_time = 0;  ///< 0 = until the end of the run
  };
  std::vector<Withhold> withholds;

  /// Crash/recover schedule generalizing ClusterConfig::late_starts: the
  /// replica runs normally, goes off the air at crash_at (no reception,
  /// transmission or radio energy), and — when recover_at > 0 — comes
  /// back and catches up by chain sync or checkpoint state transfer.
  struct CrashRecover {
    NodeId node = 0;
    sim::SimTime crash_at = 0;
    sim::SimTime recover_at = 0;  ///< 0 = never recovers
  };
  std::vector<CrashRecover> crashes;

  /// Adaptive "chase the leader" crash schedule: every `period` the
  /// harness looks up the CURRENT view leader (max view over the online
  /// replicas, mapped through leader_of), takes it off the air, and
  /// restores the previous victim — at most one replica down at any
  /// instant, so the schedule stays inside an f >= 1 crash budget while
  /// the adversary adaptively follows every view change. Victims are
  /// honest (crash-only): they recover and catch up via chain sync /
  /// state transfer, so no node is excluded from correctness accounting.
  struct ChaseLeader {
    sim::Duration period = 0;     ///< 0 = disabled
    sim::SimTime from_time = 0;   ///< first victim taken at this time
    sim::SimTime until_time = 0;  ///< 0 = chase until the end of the run
  };
  ChaseLeader chase_leader;

  /// Byzantine client attached as an extra non-relay leaf after the
  /// honest clients. kGarbageFlood submits requests with fresh req_ids
  /// and corrupted signatures (each costs every replica one metered
  /// verification and is then rejected); kReplayFlood signs one valid
  /// request and re-floods those exact bytes forever (stressing the
  /// dedup/admission path: pool dedup, reply-cache replay, and the
  /// per-client watermark's free drops after GC).
  struct ByzClient {
    enum class Kind { kGarbageFlood, kReplayFlood };
    Kind kind = Kind::kGarbageFlood;
    sim::Duration interval = sim::milliseconds(50);
    std::uint64_t max_requests = 0;  ///< 0 = flood until the run ends
    std::size_t op_bytes = 16;
  };
  std::vector<ByzClient> clients;

  /// Byzantine checkpoint attacks (replica-level flags). forge_digest:
  /// the named replica corrupts the state digest on its BROADCAST
  /// checkpoint votes (its local tally stays honest, so the cluster's
  /// quorum of honest signatures still forms and the forged votes are
  /// simply non-matching minority noise). withhold_snapshots: the
  /// replica signs checkpoints honestly but never serves snapshot
  /// payloads, starving state-transfer requesters until their retry
  /// timer rotates to another certificate signer.
  struct CheckpointAttack {
    NodeId node = 0;
    bool forge_digest = false;
    bool withhold_snapshots = false;
  };
  std::vector<CheckpointAttack> checkpoint_attacks;

  /// Replicas consumed by the fault budget without a behavior change of
  /// their own (e.g. the targets of a LinkFault drop rule): excluded
  /// from the correct-node accounting like any Byzantine replica.
  std::vector<NodeId> mark_faulty;

  /// LivenessChecker bound: longest tolerated gap between advances of
  /// the honest commit frontier. 0 = observe only (RunResult records the
  /// stall but liveness_ok() never fails).
  sim::Duration stall_bound = 0;

  [[nodiscard]] bool empty() const {
    return link_faults.empty() && withholds.empty() && crashes.empty() &&
           clients.empty() && mark_faulty.empty() &&
           checkpoint_attacks.empty() && chase_leader.period == 0;
  }
};

}  // namespace eesmr::adversary
