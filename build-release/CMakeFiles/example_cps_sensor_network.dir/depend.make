# Empty dependencies file for example_cps_sensor_network.
# This may be replaced when dependencies are built.
