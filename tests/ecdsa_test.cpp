#include "src/crypto/ecdsa.hpp"

#include <gtest/gtest.h>

#include "src/sim/rng.hpp"

namespace eesmr::crypto {
namespace {

const std::vector<CurveId> kAllCurves = {
    CurveId::kSecp192r1,       CurveId::kSecp192k1, CurveId::kSecp224r1,
    CurveId::kSecp256r1,       CurveId::kSecp256k1, CurveId::kBrainpoolP160r1,
    CurveId::kBrainpoolP256r1,
};

class EcdsaTest : public ::testing::TestWithParam<CurveId> {
 protected:
  EcdsaKeyPair make_key() {
    sim::Rng rng(31337);
    return ecdsa_generate(GetParam(), rng);
  }
};

TEST_P(EcdsaTest, SignVerifyRoundTrip) {
  const EcdsaKeyPair kp = make_key();
  const Bytes msg = to_bytes(std::string("steady-state proposal"));
  const Bytes sig = ecdsa_sign(kp.priv, msg);
  EXPECT_EQ(sig.size(), 2 * curve_params(GetParam()).field_bytes());
  EXPECT_TRUE(ecdsa_verify(kp.pub, msg, sig));
}

TEST_P(EcdsaTest, TamperedMessageRejected) {
  const EcdsaKeyPair kp = make_key();
  const Bytes sig = ecdsa_sign(kp.priv, to_bytes(std::string("block A")));
  EXPECT_FALSE(ecdsa_verify(kp.pub, to_bytes(std::string("block B")), sig));
}

TEST_P(EcdsaTest, TamperedSignatureRejected) {
  const EcdsaKeyPair kp = make_key();
  const Bytes msg = to_bytes(std::string("payload"));
  Bytes sig = ecdsa_sign(kp.priv, msg);
  sig[sig.size() / 2] ^= 0x40;
  EXPECT_FALSE(ecdsa_verify(kp.pub, msg, sig));
}

TEST_P(EcdsaTest, DeterministicSignatures) {
  const EcdsaKeyPair kp = make_key();
  const Bytes msg = to_bytes(std::string("same message"));
  EXPECT_EQ(ecdsa_sign(kp.priv, msg), ecdsa_sign(kp.priv, msg));
}

TEST_P(EcdsaTest, WrongKeyRejected) {
  const EcdsaKeyPair kp = make_key();
  sim::Rng rng(777);
  const EcdsaKeyPair other = ecdsa_generate(GetParam(), rng);
  const Bytes msg = to_bytes(std::string("payload"));
  EXPECT_FALSE(ecdsa_verify(other.pub, msg, ecdsa_sign(kp.priv, msg)));
}

TEST_P(EcdsaTest, MalformedSignatureShapesRejected) {
  const EcdsaKeyPair kp = make_key();
  const Bytes msg = to_bytes(std::string("payload"));
  const std::size_t fb = curve_params(GetParam()).field_bytes();
  EXPECT_FALSE(ecdsa_verify(kp.pub, msg, Bytes{}));
  EXPECT_FALSE(ecdsa_verify(kp.pub, msg, Bytes(2 * fb, 0x00)));  // r=s=0
  EXPECT_FALSE(ecdsa_verify(kp.pub, msg, Bytes(2 * fb + 1, 0x11)));
}

INSTANTIATE_TEST_SUITE_P(AllTable2Curves, EcdsaTest,
                         ::testing::ValuesIn(kAllCurves),
                         [](const auto& info) {
                           return std::string(curve_name(info.param));
                         });

}  // namespace
}  // namespace eesmr::crypto
