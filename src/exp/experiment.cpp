#include "src/exp/experiment.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace eesmr::exp {

namespace {

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  try {
    // stoull would silently wrap "-3" to 2^64-3; digits only.
    if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument(text);
    }
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad value for " + flag + ": '" + text + "'");
  }
}

}  // namespace

Options parse_cli(int argc, char** argv, std::uint64_t default_seed) {
  Options o;
  o.seed = default_seed;
  const auto need_value = [&](int& i, const std::string& flag) {
    if (i + 1 >= argc) {
      throw std::invalid_argument("missing value for " + flag);
    }
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      o.threads = static_cast<std::size_t>(parse_u64(arg, need_value(i, arg)));
    } else if (arg == "--workers") {
      o.workers = static_cast<std::size_t>(parse_u64(arg, need_value(i, arg)));
    } else if (arg == "--smoke") {
      o.smoke = true;
    } else if (arg == "--seed") {
      o.seed = parse_u64(arg, need_value(i, arg));
    } else if (arg == "--json-out") {
      o.json_out = need_value(i, arg);
    } else if (arg == "--csv-out") {
      o.csv_out = need_value(i, arg);
    } else if (arg == "--prom-out") {
      o.prom_out = need_value(i, arg);
    } else if (arg == "--trace-out") {
      o.trace_out = need_value(i, arg);
    } else if (arg == "--trace-requests") {
      o.trace_requests =
          static_cast<std::size_t>(parse_u64(arg, need_value(i, arg)));
    } else if (arg == "--no-json") {
      o.write_json = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--threads N] [--workers N] [--smoke] [--seed S]\n"
          "          [--json-out PATH] [--csv-out PATH] [--no-json]\n"
          "          [--prom-out PATH] [--trace-out PATH]\n"
          "          [--trace-requests K]\n",
          argc > 0 ? argv[0] : "bench");
      std::exit(0);
    } else {
      o.extra.push_back(arg);
    }
  }
  return o;
}

Experiment::Experiment(std::string name, std::string paper_ref, int argc,
                       char** argv, std::uint64_t default_seed)
    : name_(std::move(name)), paper_ref_(std::move(paper_ref)) {
  try {
    opts_ = parse_cli(argc, argv, default_seed);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "[%s] ERROR: %s\n", name_.c_str(), e.what());
    std::exit(2);
  }
  std::printf("\n================================================================\n");
  std::printf("%s\n", name_.c_str());
  std::printf("reproduces: %s\n", paper_ref_.c_str());
  if (opts_.smoke) std::printf("mode: smoke (trimmed grids)\n");
  std::printf("================================================================\n");
  // Thread count is execution detail, not data: stderr only, so stdout
  // stays byte-identical across --threads values.
  std::fprintf(stderr, "[%s] threads=%zu workers=%zu seed=%llu\n",
               name_.c_str(), threads(), opts_.workers,
               static_cast<unsigned long long>(opts_.seed));
}

std::size_t Experiment::threads() const {
  if (serial_only_) return 1;
  return opts_.threads == 0 ? default_threads() : opts_.threads;
}

void Experiment::force_serial(const char* reason) {
  if (!serial_only_ && threads() > 1) {
    std::fprintf(stderr, "[%s] running single-threaded: %s\n", name_.c_str(),
                 reason);
  }
  serial_only_ = true;
}

bool Experiment::report_unknown_args() const {
  bool unknown = false;
  for (const std::string& e : opts_.extra) {
    bool known = false;
    for (const std::string& r : recognized_extra_) known |= (r == e);
    if (!known) {
      std::fprintf(stderr, "[%s] ERROR: unrecognized argument '%s'\n",
                   name_.c_str(), e.c_str());
      unknown = true;
    }
  }
  return unknown;
}

bool Experiment::flag(std::string_view name) const {
  recognized_extra_.emplace_back(name);
  for (const std::string& e : opts_.extra) {
    if (e == name) return true;
  }
  return false;
}

Report& Experiment::run(std::string section, const Grid& grid,
                        const RunFn& fn) {
  // By the first run() every bench-specific flag has been queried
  // (benches read them before building grids), so leftovers are typos:
  // abort before burning cycles on a configuration nobody asked for.
  if (report_unknown_args()) std::exit(2);

  RunnerOptions ro;
  ro.threads = threads();
  ro.workers = opts_.workers;
  ro.seed = opts_.seed;
  ro.smoke = opts_.smoke;
  ro.trace_requests = opts_.trace_requests;
  SectionArtifacts sa;
  sa.section = section;
  const bool collect = !opts_.prom_out.empty() || !opts_.trace_out.empty();
  if (collect) {
    ro.artifacts = &sa.slots;
    ro.collect_registry = !opts_.prom_out.empty();
    ro.collect_trace = !opts_.trace_out.empty();
  }
  auto report = std::make_unique<Report>();
  report->name = std::move(section);
  report->grid = grid;
  report->rows = run_matrix(grid, fn, ro);
  if (collect) artifacts_.push_back(std::move(sa));
  sections_.push_back(std::move(report));
  return *sections_.back();
}

Report& Experiment::add_section(Report report) {
  sections_.push_back(std::make_unique<Report>(std::move(report)));
  return *sections_.back();
}

void Experiment::note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
  if (!sections_.empty()) sections_.back()->notes.push_back(text);
}

int Experiment::finish() {
  // Arguments neither the shared CLI nor the bench (via flag())
  // recognized are typos: fail loudly rather than silently reporting a
  // different configuration than the caller intended. (run() already
  // aborts on these; this catches benches that never ran a grid.)
  if (report_unknown_args()) return 2;

  Json doc = Json::object();
  doc.set("bench", name_);
  doc.set("paper_ref", paper_ref_);
  doc.set("seed", opts_.seed);
  doc.set("smoke", Json(opts_.smoke));
  Json sections = Json::array();
  for (const auto& s : sections_) sections.push_back(s->to_json());
  doc.set("sections", std::move(sections));

  int rc = 0;
  if (opts_.write_json) {
    const std::string path =
        opts_.json_out.empty() ? "BENCH_" + name_ + ".json" : opts_.json_out;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << doc.pretty();
    if (!out) {
      std::fprintf(stderr, "[%s] FAILED to write %s\n", name_.c_str(),
                   path.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "[%s] metrics -> %s\n", name_.c_str(),
                   path.c_str());
    }
  }
  if (!opts_.csv_out.empty()) {
    std::ofstream csv(opts_.csv_out, std::ios::binary | std::ios::trunc);
    for (const auto& s : sections_) csv << s->to_csv();
    if (!csv) {
      std::fprintf(stderr, "[%s] FAILED to write %s\n", name_.c_str(),
                   opts_.csv_out.c_str());
      rc = 1;
    }
  }
  if (!opts_.prom_out.empty()) {
    // One exposition for the whole bench: each run's registry merged in
    // section-then-grid order under {section, run} labels, so the text
    // is a pure function of the (deterministic) run results.
    obs::Registry merged;
    for (const SectionArtifacts& sa : artifacts_) {
      for (std::size_t i = 0; i < sa.slots.size(); ++i) {
        merged.merge(sa.slots[i].registry,
                     {{"section", sa.section}, {"run", std::to_string(i)}});
      }
    }
    std::ofstream prom(opts_.prom_out, std::ios::binary | std::ios::trunc);
    prom << merged.text();
    if (!prom) {
      std::fprintf(stderr, "[%s] FAILED to write %s\n", name_.c_str(),
                   opts_.prom_out.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "[%s] metrics exposition -> %s\n", name_.c_str(),
                   opts_.prom_out.c_str());
    }
  }
  if (!opts_.trace_out.empty()) {
    // One Chrome trace document: each traced run becomes its own group
    // of processes (one per cluster epoch), pids assigned sequentially
    // in section-then-grid order.
    Json events = Json::array();
    int pid = 1;
    for (const SectionArtifacts& sa : artifacts_) {
      for (std::size_t i = 0; i < sa.slots.size(); ++i) {
        const obs::Tracer& tr = sa.slots[i].tracer;
        if (tr.empty()) continue;  // analytic run: no ghost processes
        pid = tr.append_chrome(
            events, pid, sa.section + "/run" + std::to_string(i) + " ");
      }
    }
    std::ofstream trace(opts_.trace_out, std::ios::binary | std::ios::trunc);
    trace << obs::Tracer::chrome_document(std::move(events)).pretty();
    if (!trace) {
      std::fprintf(stderr, "[%s] FAILED to write %s\n", name_.c_str(),
                   opts_.trace_out.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "[%s] trace -> %s\n", name_.c_str(),
                   opts_.trace_out.c_str());
    }
  }
  return rc;
}

}  // namespace eesmr::exp
