// Flooding router: emulates logical full connectivity over a partially
// connected hypergraph (§A.3 "we emulate logical full-connectivity using
// flooding").
//
// Each broadcast is framed as (origin, seq, dest, flags, stream,
// payload). Every router delivers a frame to its protocol at most once
// (dedup on (origin, seq)) and re-transmits it exactly once on its own
// out-edges — this *is* the paper's Line-213 "broadcast once"
// re-broadcast in partially connected networks. A frame addressed to a
// specific node is still forwarded by everyone (routing) but delivered
// only at the destination. The stream byte attributes every hop's radio
// energy — including forwarded copies — to the channel class that
// originated the frame (see energy::Stream).
//
// Byzantine hooks: `set_forwarding(false)` models nodes that withhold
// forwarding; `broadcast_on_edges` models selective (equivocating)
// transmission to a subset of neighbors.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>

#include "src/common/bytes.hpp"
#include "src/common/ids.hpp"
#include "src/common/serde.hpp"
#include "src/net/network.hpp"

namespace eesmr::net {

/// Protocol-facing delivery callback: exactly-once per (origin, seq).
class FloodClient {
 public:
  virtual ~FloodClient() = default;
  virtual void on_deliver(NodeId origin, BytesView payload) = 0;
};

class FloodRouter final : public PacketSink {
 public:
  /// Per-origin duplicate-suppression window: seqs 1..watermark have all
  /// been seen; `tail` holds the sparse seen seqs above the watermark
  /// (out-of-order arrivals, and gaps left by frames this node is not on
  /// the path of — routed unicasts share the origin's seq space).
  /// insert() folds the tail into the watermark as the prefix becomes
  /// contiguous, and force-compacts past persistent gaps once the tail
  /// exceeds kMaxTail, so dedup state is O(window), not O(history).
  /// Force-compaction can mark a never-seen seq as seen; under bounded
  /// synchrony any frame that old has long been delivered or dropped, so
  /// the window only needs to cover the in-flight reordering horizon.
  struct SeenWindow {
    std::uint64_t watermark = 0;
    std::set<std::uint64_t> tail;

    /// Largest tail kept before force-compacting the oldest gap away.
    static constexpr std::size_t kMaxTail = 512;

    /// Record `seq`; returns true when it was not seen before.
    bool insert(std::uint64_t seq);
    [[nodiscard]] std::size_t tail_size() const { return tail.size(); }
  };

  FloodRouter(Network& net, NodeId self, FloodClient* client);

  /// Flood `payload` to every node (including delivery at every correct
  /// router, but never back to self).
  void broadcast(BytesView payload,
                 energy::Stream stream = energy::Stream::kOther);

  /// Transmit `payload` once on own out-edges, with NO re-forwarding by
  /// receivers. This is the "partial vote forwarding" primitive: with
  /// k >= f in the ring topology, a node's k in-neighbors plus itself
  /// already form a quorum, so votes need not flood.
  void broadcast_local(BytesView payload,
                       energy::Stream stream = energy::Stream::kOther);

  /// Route `payload` to `dest`: intermediate routers forward only along
  /// shrinking shortest-path distance (point-to-point over the
  /// hypergraph), and only `dest` delivers.
  void send_to(NodeId dest, BytesView payload,
               energy::Stream stream = energy::Stream::kOther);

  /// Byzantine: start the flood only on a subset of own out-edges (the
  /// selective-equivocation primitive). Honest receivers keep forwarding.
  void broadcast_on_edges(const std::vector<std::size_t>& edge_sel,
                          BytesView payload,
                          energy::Stream stream = energy::Stream::kOther);

  /// Byzantine: stop forwarding other nodes' frames.
  void set_forwarding(bool enabled) { forwarding_ = enabled; }

  // PacketSink:
  void on_packet(NodeId link_sender, const SharedBytes& frame) override;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] Network& network() { return net_; }

  /// Sparse dedup entries currently held across all origins (the bounded
  /// part of the seen-window state; watermarks are O(origins)).
  [[nodiscard]] std::size_t dedup_tail_entries() const;
  [[nodiscard]] std::size_t dedup_origins() const { return seen_.size(); }

  /// Per-node wire overhead added by the router framing.
  static constexpr std::size_t kFrameOverhead = 4 + 8 + 4 + 1 + 1;

 private:
  /// Frame flags.
  static constexpr std::uint8_t kNoForward = 0x01;

  SharedBytes make_frame(NodeId dest, std::uint8_t flags,
                         energy::Stream stream, BytesView payload);

  Network& net_;
  NodeId self_;
  FloodClient* client_;
  std::uint64_t next_seq_ = 1;
  bool forwarding_ = true;
  std::unordered_map<NodeId, SeenWindow> seen_;
  /// Reused frame encoder: clear() keeps the allocation, so framing does
  /// one right-sized copy into the shared buffer instead of re-growing a
  /// fresh Writer per frame.
  Writer frame_writer_;
};

}  // namespace eesmr::net
