// Figure 2c: average energy per SMR unit for the EESMR leader vs a
// replica, as the k-cast degree k varies. n = 15, 16-byte blocks,
// BLE k-cast ring (D_out = 1, D_in = k).
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"

using namespace eesmr;
using harness::ClusterConfig;
using harness::RunResult;

int main(int argc, char** argv) {
  exp::Experiment ex("fig2c_leader_vs_replica",
                     "Fig. 2c (§5.6, n = 15, |b| = 16 bytes)", argc, argv,
                     /*default_seed=*/15);

  std::vector<std::size_t> ks = {2, 3, 4, 5, 6, 7};
  if (ex.smoke()) ks = {2, 5};
  const std::size_t blocks = ex.smoke() ? 4 : 8;
  const NodeId leader = 1;  // leader of view 1

  exp::Grid grid;
  grid.axis_of("k", ks);

  exp::Report& rep = ex.run("leader_vs_replica", grid,
                            [&](const exp::RunContext& c) {
    const std::size_t k = ks[c.at("k")];
    ClusterConfig cfg;
    cfg.n = 15;
    cfg.f = k - 1;  // the evaluation couples k = f + 1
    cfg.k = k;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    cfg.batch_size = 1;
    cfg.seed = c.seed;
    const RunResult r = exp::run_steady(c, cfg, blocks);
    const double leader_mj = r.node_energy_per_block_mj(leader);
    // Average over all non-leader correct replicas.
    double rep_mj = 0;
    int count = 0;
    for (NodeId i = 0; i < 15; ++i) {
      if (i == leader) continue;
      rep_mj += r.node_energy_per_block_mj(i);
      ++count;
    }
    rep_mj /= count;
    exp::MetricRow row;
    row.set("leader_mj_per_block", leader_mj);
    row.set("replica_mj_per_block", rep_mj);
    row.set("ratio", leader_mj / rep_mj);
    row.set("run", exp::run_result_json(r));
    return row;
  });
  rep.print_table(1);

  const double first = rep.rows.front().number("leader_mj_per_block");
  const double last = rep.rows.back().number("leader_mj_per_block");
  exp::Report growth;
  growth.name = "leader_growth";
  exp::MetricRow grow;
  grow.set("k_low", ks.front());
  grow.set("k_high", ks.back());
  grow.set("leader_growth_x", last / first);
  growth.rows.push_back(std::move(grow));
  ex.add_section(std::move(growth)).print_table(2);

  ex.note("expected shape: both curves grow ~linearly in k (k incoming "
          "edges dominate via receive/scan energy); leader slightly above "
          "the replicas (it also builds and signs proposals)");
  return ex.finish();
}
