#include "src/exp/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace eesmr::exp {

// ---------------------------------------------------------------------------
// Construction / access
// ---------------------------------------------------------------------------

void Json::set(const std::string& key, Json v) {
  for (JsonMember& m : obj_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  type_ = Type::kObject;
  obj_.emplace_back(key, std::move(v));
}

bool Json::contains(const std::string& key) const {
  for (const JsonMember& m : obj_) {
    if (m.first == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  for (const JsonMember& m : obj_) {
    if (m.first == key) return m.second;
  }
  throw std::out_of_range("Json: no member '" + key + "'");
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.num_ == b.num_;
    case Json::Type::kString:
      return a.str_ == b.str_;
    case Json::Type::kArray:
      return a.arr_ == b.arr_;
    case Json::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  // Integral values inside the exactly-representable window print as
  // integers: counters stay counters in the output.
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest round-trip representation: deterministic bytes per value.
  char buf[32];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) return "null";
  return std::string(buf, end);
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += json_number(num_);
      return;
    case Type::kString:
      write_escaped(out, str_);
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        write_escaped(out, obj_[i].first);
        out += ':';
        if (indent > 0) out += ' ';
        obj_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json document() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw JsonError("Json::parse: " + std::string(what) + " at offset " +
                    std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The engine only emits \u00xx control escapes; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0;
    const auto [end, ec] =
        std::from_chars(s_.data() + start, s_.data() + pos_, v);
    if (ec != std::errc() || end != s_.data() + pos_) fail("bad number");
    return Json(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).document(); }

}  // namespace eesmr::exp
