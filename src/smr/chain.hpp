// Hash-chained block store with ancestry queries and an orphan pool for
// chain synchronization ("when a node obtains a block and does not know
// its parent blocks, it will request them from the sender", §3.2).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smr/block.hpp"

namespace eesmr::smr {

class BlockStore {
 public:
  /// Starts containing the genesis block.
  BlockStore();

  /// Insert a block whose parent is already known. Returns false (and
  /// stores nothing) when the parent is missing — use add_orphan then.
  /// Re-inserting an existing block is a harmless no-op (returns true).
  /// Throws std::invalid_argument when the height is inconsistent with
  /// the parent.
  bool add(const Block& block);

  /// Buffer a block whose ancestry is not yet connected.
  void add_orphan(const Block& block);

  /// Insert `block` unconditionally, with no parent check — the anchor a
  /// state transfer re-roots the chain on (the block's ancestry is
  /// attested by the checkpoint certificate, not by local parents).
  void adopt_root(const Block& block);

  /// Advance the low-water mark: drop every block strictly below `root`'s
  /// height (including genesis) and every orphan at or below it. `root`
  /// must be present; it becomes the new deepest block, so ancestry
  /// queries terminate there. Throws std::invalid_argument if `root` is
  /// unknown.
  void truncate_below(const BlockHash& root);

  /// The lowest-height buffered orphan (for backward chain sync), if any.
  [[nodiscard]] std::optional<Block> deepest_orphan() const;

  /// Try to connect orphans after new blocks arrived. Returns the blocks
  /// adopted (in ancestry order).
  std::vector<Block> adopt_orphans();

  [[nodiscard]] bool contains(const BlockHash& h) const;
  [[nodiscard]] const Block* get(const BlockHash& h) const;

  /// True iff `descendant` equals `ancestor` or transitively extends it.
  [[nodiscard]] bool extends(const BlockHash& descendant,
                             const BlockHash& ancestor) const;

  /// Two blocks conflict iff neither extends the other (fork).
  [[nodiscard]] bool conflicts(const BlockHash& a, const BlockHash& b) const;

  /// The chain from `h` down to (and excluding) `until`, deepest first.
  /// Both must be known and `h` must extend `until`.
  [[nodiscard]] std::vector<Block> chain_between(const BlockHash& h,
                                                 const BlockHash& until) const;

  [[nodiscard]] std::size_t size() const { return blocks_.size(); }
  [[nodiscard]] std::size_t orphan_count() const { return orphans_.size(); }

 private:
  struct Key {
    std::string bytes;  // hash as map key
  };
  std::unordered_map<std::string, Block> blocks_;
  std::unordered_map<std::string, Block> orphans_;

  static std::string key(const BlockHash& h) {
    return std::string(h.begin(), h.end());
  }
};

}  // namespace eesmr::smr
