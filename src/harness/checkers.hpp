// Always-on run oracles: every Cluster run is also a conformance check.
//
// SafetyChecker asserts Definition 2.1 DURING the run — no two honest
// replicas ever commit different blocks at the same height — by
// absorbing each honest replica's committed log incrementally every few
// hop delays. A transient divergence that checkpoint truncation would
// hide from the end-of-run RunResult::safety_ok() scan still registers
// here. LivenessChecker tracks the longest stall of the honest commit
// frontier; compared against AdversarySpec::stall_bound it turns "the
// protocol tolerates this attack" into a measurable verdict.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/sim/time.hpp"
#include "src/smr/block.hpp"

namespace eesmr::harness {

class SafetyChecker {
 public:
  /// Absorb `log` — node `node`'s retained committed log in ascending
  /// height order. Only heights above the node's previously absorbed
  /// frontier are (re)examined, so repeated calls are O(new blocks).
  /// Returns the number of newly detected conflicting commits.
  std::uint64_t observe(NodeId node, const std::vector<smr::Block>& log);

  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] std::uint64_t heights_tracked() const {
    return canon_.size();
  }

  /// Drop canonical entries below `height` (the cluster-wide stable
  /// checkpoint frontier): every honest log is truncated there already,
  /// so no further commit can land below it.
  void prune_below(std::uint64_t height);

 private:
  /// First committed hash seen per height (the canon every later commit
  /// at that height must match).
  std::map<std::uint64_t, smr::BlockHash> canon_;
  /// Highest height absorbed per node.
  std::map<NodeId, std::uint64_t> frontier_;
  std::uint64_t violations_ = 0;
};

class LivenessChecker {
 public:
  /// Record the honest commit frontier at `now`. Call monotonically.
  /// `load_pending` is the workload-awareness input: pass false while no
  /// client has offered load waiting to commit (budgets exhausted and
  /// nothing outstanding) — the open gap up to `now` is then closed and
  /// the idle tail accrues no stall. A real stall that drains before the
  /// load runs out still registers in full, because the gap is closed
  /// *after* folding it into the maximum. Callers without workload
  /// knowledge keep the old fixed-window behaviour via the default.
  void sample(sim::SimTime now, std::uint64_t frontier,
              bool load_pending = true);

  /// Longest observed gap between frontier advances, including the
  /// still-open gap ending at `now`. With workload-aware sampling the
  /// idle tail after the offered load finished does not count.
  [[nodiscard]] sim::Duration max_stall(sim::SimTime now) const;

  [[nodiscard]] std::uint64_t frontier() const { return frontier_; }

 private:
  bool seen_ = false;
  std::uint64_t frontier_ = 0;
  sim::SimTime last_advance_ = 0;
  sim::Duration max_closed_ = 0;
};

}  // namespace eesmr::harness
