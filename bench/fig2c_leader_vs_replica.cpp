// Figure 2c: average energy per SMR unit for the EESMR leader vs a
// replica, as the k-cast degree k varies. n = 15, 16-byte blocks,
// BLE k-cast ring (D_out = 1, D_in = k).
#include "bench/bench_util.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  bench::header("Figure 2c — EESMR leader vs replica energy per SMR vs k",
                "Fig. 2c (§5.6, n = 15, |b| = 16 bytes)");

  std::printf("%2s | %12s | %12s | %8s\n", "k", "leader mJ/blk",
              "replica mJ/blk", "ratio");
  std::printf("---+--------------+----------------+---------\n");

  double first_leader = 0, last_leader = 0;
  for (std::size_t k = 2; k <= 7; ++k) {
    ClusterConfig cfg;
    cfg.n = 15;
    cfg.f = k - 1;  // the evaluation couples k = f + 1
    cfg.k = k;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    cfg.batch_size = 1;
    cfg.seed = 15;
    const RunResult r = bench::run_steady(cfg, 8);
    const NodeId leader = 1;  // leader of view 1
    const double leader_mj = r.node_energy_per_block_mj(leader);
    // Average over all non-leader correct replicas.
    double rep = 0;
    int count = 0;
    for (NodeId i = 0; i < 15; ++i) {
      if (i == leader) continue;
      rep += r.node_energy_per_block_mj(i);
      ++count;
    }
    rep /= count;
    if (k == 2) first_leader = leader_mj;
    last_leader = leader_mj;
    std::printf("%2zu | %12.1f | %14.1f | %8.3f\n", k, leader_mj, rep,
                leader_mj / rep);
  }

  bench::note("expected shape: both curves grow ~linearly in k (k incoming "
              "edges dominate via receive/scan energy); leader slightly "
              "above the replicas (it also builds and signs proposals)");
  std::printf("leader energy growth k=2 -> k=7: %.2fx (linear-in-k would "
              "be ~3x given the recv share)\n",
              last_leader / first_leader);
  return 0;
}
