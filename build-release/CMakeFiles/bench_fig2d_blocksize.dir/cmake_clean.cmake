file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2d_blocksize.dir/bench/fig2d_blocksize.cpp.o"
  "CMakeFiles/bench_fig2d_blocksize.dir/bench/fig2d_blocksize.cpp.o.d"
  "bench_fig2d_blocksize"
  "bench_fig2d_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2d_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
