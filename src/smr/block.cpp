#include "src/smr/block.hpp"

#include <stdexcept>

#include "src/common/serde.hpp"
#include "src/crypto/sha256.hpp"

namespace eesmr::smr {

Bytes Block::encode() const {
  Writer w;
  w.bytes(parent);
  w.u64(height);
  w.u64(view);
  w.u64(round);
  w.u32(proposer);
  w.u32(static_cast<std::uint32_t>(cmds.size()));
  for (const Command& c : cmds) w.bytes(c.data);
  return w.take();
}

Block Block::decode(BytesView data) {
  Reader r(data);
  Block b;
  b.parent = r.bytes();
  b.height = r.u64();
  b.view = r.u64();
  b.round = r.u64();
  b.proposer = r.u32();
  const std::uint32_t n = r.u32();
  // A hostile count must not drive allocation: each command needs at
  // least a 4-byte length prefix, so cap the reserve by what the input
  // could possibly hold (the loop then throws on the missing data).
  b.cmds.reserve(std::min<std::size_t>(n, r.remaining() / 4 + 1));
  for (std::uint32_t i = 0; i < n; ++i) b.cmds.push_back({r.bytes()});
  r.expect_done();
  return b;
}

BlockHash Block::hash() const { return crypto::sha256(encode()); }

std::size_t Block::payload_bytes() const {
  std::size_t total = 0;
  for (const Command& c : cmds) total += c.data.size();
  return total;
}

const Block& genesis_block() {
  static const Block g = [] {
    Block b;
    b.parent = Bytes(32, 0);
    return b;
  }();
  return g;
}

const BlockHash& genesis_hash() {
  static const BlockHash h = genesis_block().hash();
  return h;
}

}  // namespace eesmr::smr
