// Energy under attack: the protocol × attack × medium conformance grid
// on the experiment engine. Every cell runs the same configuration
// twice — honest and attacked, same derived seed — and reports the
// attack-overhead energy per stream at the honest replicas (the
// ψ_W − ψ_B subtraction of §4 applied to the adversary axis), plus the
// Safety/Liveness checker verdicts and the attacker's own energy bill.
#include <vector>

#include "src/adversary/adversary.hpp"
#include "src/exp/experiment.hpp"
#include "src/exp/record.hpp"
#include "src/exp/run_helpers.hpp"

using namespace eesmr;
using adversary::AttackKind;
using energy::Stream;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

namespace {

/// Counted correct protocol nodes (the denominator for per-node
/// comparisons: attacks mark their fault budget !correct, so totals
/// cover different node counts across the pair).
std::size_t counted_correct(const RunResult& r) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < r.footprints.size(); ++i) {
    if (r.correct[i] && r.counted[i]) ++n;
  }
  return n;
}

double per_node_stream_mj(const RunResult& r, Stream s) {
  const std::size_t n = counted_correct(r);
  return n == 0 ? 0.0 : r.stream_totals(s).total_mj() / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex(
      "fig_byzantine",
      "energy under attack: protocol x attack x medium grid over the "
      "adversary subsystem (§5.6 faults, extended)",
      argc, argv, /*default_seed=*/97);

  const std::size_t blocks = ex.smoke() ? 10 : 30;
  const std::vector<Protocol> protocols = {Protocol::kEesmr,
                                           Protocol::kSyncHotStuff};
  const std::vector<energy::Medium> media =
      ex.smoke() ? std::vector<energy::Medium>{energy::Medium::kBle}
                 : std::vector<energy::Medium>{energy::Medium::kBle,
                                               energy::Medium::kWifi};
  // Every tolerated attack of the conformance matrix (over-budget crash
  // is a tolerance-boundary pin for the test suite, not an energy cell).
  const std::vector<AttackKind> attacks =
      ex.smoke()
          ? std::vector<AttackKind>{AttackKind::kCrash,
                                    AttackKind::kEquivocate,
                                    AttackKind::kVoteSuppression,
                                    AttackKind::kGarbageClientFlood}
          : std::vector<AttackKind>{AttackKind::kCrash,
                                    AttackKind::kCrashRecover,
                                    AttackKind::kEquivocate,
                                    AttackKind::kEquivocateSelective,
                                    AttackKind::kWithholdProposals,
                                    AttackKind::kVoteSuppression,
                                    AttackKind::kDupReorder,
                                    AttackKind::kFaultyLinkDrop,
                                    AttackKind::kGarbageClientFlood,
                                    AttackKind::kReplayClientFlood};

  exp::Grid grid;
  {
    std::vector<std::string> protocol_labels, attack_labels, media_labels;
    for (Protocol p : protocols) protocol_labels.push_back(harness::protocol_name(p));
    for (AttackKind a : attacks) attack_labels.push_back(adversary::attack_name(a));
    for (energy::Medium m : media) {
      media_labels.push_back(m == energy::Medium::kBle ? "BLE" : "WiFi");
    }
    grid.axis("protocol", protocol_labels);
    grid.axis("attack", attack_labels);
    grid.axis("medium", media_labels);
  }

  exp::Report& rep = ex.run("attack_overhead", grid,
                            [&](const exp::RunContext& c) {
    ClusterConfig base;
    base.protocol = protocols[c.at("protocol")];
    base.n = 4;
    base.f = 1;
    base.medium = media[c.at("medium")];
    base.seed = c.seed;
    base.checkpoint_interval = 8;
    base.client_pending_cap = 8;
    base.adversary.stall_bound = sim::seconds(10);

    // Honest twin: identical configuration and seed, no attack.
    exp::prepare(c, base);
    harness::Cluster honest_cluster(base);
    const RunResult honest =
        honest_cluster.run_until_commits(blocks, sim::seconds(60));
    exp::observe(c, honest, {{"phase", "honest"}});

    ClusterConfig attacked_cfg = base;
    adversary::apply_attack(attacked_cfg, attacks[c.at("attack")]);
    harness::Cluster attacked_cluster(attacked_cfg);
    const RunResult attacked =
        attacked_cluster.run_until_commits(blocks, sim::seconds(60));
    exp::observe(c, attacked, {{"phase", "attacked"}});

    if (!attacked.safety_ok() || attacked.safety_violations > 0) {
      std::fprintf(stderr, "SAFETY VIOLATION under %s\n",
                   c.label("attack").c_str());
    }

    const std::size_t ncc_h = counted_correct(honest);
    const std::size_t ncc_a = counted_correct(attacked);
    const double honest_mj =
        ncc_h == 0 ? 0.0 : honest.total_energy_mj() / static_cast<double>(ncc_h);
    const double attacked_mj =
        ncc_a == 0 ? 0.0
                   : attacked.total_energy_mj() / static_cast<double>(ncc_a);

    exp::MetricRow row;
    row.set("safety",
            exp::Json(attacked.safety_ok() && attacked.safety_violations == 0));
    row.set("live", exp::Json(attacked.min_committed() >= blocks &&
                              attacked.liveness_ok()));
    row.set("view_changes", attacked.view_changes);
    row.set("stall_ms", sim::to_milliseconds(attacked.max_commit_stall));
    row.set("honest_mj_per_node", honest_mj);
    row.set("attacked_mj_per_node", attacked_mj);
    row.set("overhead_mj_per_node", attacked_mj - honest_mj);
    // Where the overhead lands, per channel class at an honest replica.
    for (Stream s : {Stream::kProposal, Stream::kVote, Stream::kControl,
                     Stream::kRequest, Stream::kSync}) {
      row.set(std::string("d_") + energy::stream_name(s) + "_mj",
              per_node_stream_mj(attacked, s) - per_node_stream_mj(honest, s));
    }
    row.set("adversary_mj", attacked.adversary_energy_mj());
    row.set("withheld", attacked.msgs_withheld);
    row.set("byz_requests", attacked.byz_requests_sent);
    row.set("faults_dropped", attacked.faults_dropped);
    row.set("run", exp::run_result_json(attacked));
    return row;
  });
  rep.print_table(3);

  ex.note("expected shape: crash/equivocation attacks price one view "
          "change (control-stream surcharge, larger for Sync HotStuff's "
          "certificate traffic); client floods land on the request "
          "stream as per-replica verification + reception energy; "
          "dup/reorder inflates every stream by the duplicate factor; "
          "vote suppression is free against EESMR (no votes to "
          "suppress) and visible for Sync HotStuff");
  ex.note("safety must hold in every cell and liveness in every cell "
          "here (only the over-budget crash pin in tests/adversary_test "
          "is allowed to stall) — the same grid ctest -L adversary "
          "asserts");
  return ex.finish();
}
