# Empty dependencies file for bench_fig2b_unicast_vs_multicast.
# This may be replaced when dependencies are built.
