// Dissemination-equivalence and submission-policy tests: the protocol
// must be agnostic to the per-stream dissemination primitive (the
// paper's Table-1 axis), TargetedSubset client submission must make
// progress past unresponsive replicas, and the per-stream energy
// breakdown must show targeted submission beating flood-all.
#include <gtest/gtest.h>

#include <map>

#include "src/harness/cluster.hpp"

namespace eesmr {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;
using net::DisseminationPolicy;
using energy::Stream;

/// Height-keyed cross-run chain equality: every height committed (and
/// retained) by both runs carries the identical block.
void expect_same_chain(const RunResult& a, const RunResult& b) {
  std::map<std::uint64_t, const smr::Block*> canon;
  for (std::size_t node = 0; node < a.logs.size(); ++node) {
    if (!a.correct[node]) continue;
    for (const smr::Block& blk : a.logs[node]) canon[blk.height] = &blk;
  }
  for (std::size_t node = 0; node < b.logs.size(); ++node) {
    if (!b.correct[node]) continue;
    for (const smr::Block& blk : b.logs[node]) {
      const auto it = canon.find(blk.height);
      if (it == canon.end()) continue;
      EXPECT_TRUE(*it->second == blk) << "height " << blk.height;
    }
  }
}

TEST(Dissemination, SyncHsVoteChannelSweepCommitsTheSameChain) {
  // Sync HotStuff votes every height, so the vote channel is exercised
  // continuously. LocalKcast (the default), Flood and RoutedUnicast must
  // all certify and commit the identical chain in a full mesh.
  ClusterConfig base;
  base.protocol = Protocol::kSyncHotStuff;
  base.n = 5;
  base.f = 1;
  base.k = 0;  // full mesh
  base.seed = 21;

  std::vector<RunResult> runs;
  for (const DisseminationPolicy policy :
       {DisseminationPolicy{}, DisseminationPolicy::flood(),
        DisseminationPolicy::routed_unicast()}) {
    ClusterConfig cfg = base;
    cfg.channels[Stream::kVote] = policy;
    Cluster cluster(cfg);
    runs.push_back(cluster.run_until_commits(8, sim::seconds(600)));
    ASSERT_GE(runs.back().min_committed(), 8u);
    EXPECT_TRUE(runs.back().safety_ok());
  }
  expect_same_chain(runs[0], runs[1]);
  expect_same_chain(runs[0], runs[2]);
  // Unicast votes skip the flood re-broadcast: strictly less vote
  // traffic than the flooded configuration in a mesh.
  EXPECT_LT(runs[2].stream_totals(Stream::kVote).transmissions,
            runs[1].stream_totals(Stream::kVote).transmissions);
}

TEST(Dissemination, EesmrVoteChannelSweepSurvivesAViewChange) {
  // EESMR's steady state has no votes ("voting in the head"); the vote
  // stream carries view-change certify/vote messages. Crash the first
  // leader so the view change actually runs, under both flooded and
  // routed-unicast vote/control channels.
  for (const bool unicast : {false, true}) {
    ClusterConfig cfg;
    cfg.protocol = Protocol::kEesmr;
    cfg.n = 4;
    cfg.f = 1;
    cfg.k = 0;
    cfg.seed = 5;
    cfg.faults.push_back(
        {1, protocol::ByzantineMode::kCrash, 5});  // leader of view 1
    if (unicast) {
      cfg.channels[Stream::kVote] = DisseminationPolicy::routed_unicast();
      cfg.channels[Stream::kControl] = DisseminationPolicy::routed_unicast();
    }
    Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(8, sim::seconds(600));
    EXPECT_GE(r.min_committed(), 8u) << "unicast=" << unicast;
    EXPECT_TRUE(r.safety_ok()) << "unicast=" << unicast;
    EXPECT_GE(r.view_changes, 1u) << "unicast=" << unicast;
  }
}

TEST(Dissemination, TargetedSubsetFailsOverPastFUnresponsiveReplicas) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 4;
  cfg.f = 1;
  cfg.k = 0;
  cfg.seed = 3;
  cfg.clients = 2;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 1;
  cfg.workload.max_requests = 6;
  cfg.client_submit = DisseminationPolicy::targeted_subset(1, 0);
  // Replica 0 — the first submission target of every client — never
  // comes up (f = 1 unresponsive replicas).
  cfg.late_starts.push_back({0, sim::seconds(10000)});
  Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(12, sim::seconds(1000));
  EXPECT_EQ(r.requests_accepted, 12u);
  EXPECT_TRUE(r.safety_ok());
  // Both clients had to rotate away from the dead replica. (No forward
  // assertion here: the rotation lands on replica 1, the view-1 leader,
  // which pools directly.)
  EXPECT_GE(r.request_failovers, 2u);
}

TEST(Dissemination, TargetedSubsetSubmissionUsesLessRequestEnergyThanFlood) {
  ClusterConfig base;
  base.protocol = Protocol::kEesmr;
  base.n = 7;
  base.f = 2;
  base.k = 3;  // the §5.6 k-cast ring
  base.seed = 11;
  base.clients = 2;
  base.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  base.workload.outstanding = 1;
  base.workload.max_requests = 8;

  ClusterConfig flood = base;  // default: flood-all submission
  ClusterConfig targeted = base;
  targeted.client_submit = DisseminationPolicy::targeted_subset(1, 0);

  Cluster cf(flood);
  const RunResult rf = cf.run_until_accepted(16, sim::seconds(1000));
  Cluster ct(targeted);
  const RunResult rt = ct.run_until_accepted(16, sim::seconds(1000));
  ASSERT_EQ(rf.requests_accepted, 16u);
  ASSERT_EQ(rt.requests_accepted, 16u);

  // Request-stream energy (client submission + replica relaying): the
  // rotating-subset unicast must beat flooding every request to all 7
  // replicas, in both bytes and millijoules.
  const auto req_f = rf.stream_totals_all(Stream::kRequest);
  const auto req_t = rt.stream_totals_all(Stream::kRequest);
  EXPECT_LT(req_t.total_mj(), req_f.total_mj());
  EXPECT_LT(req_t.bytes_sent, req_f.bytes_sent);
  // The contacted replica (cursor starts at replica 0) is not the
  // view-1 leader, so pooled requests were handed on to it.
  EXPECT_GE(rt.requests_forwarded, 1u);

  // The breakdown is programmatically consistent: summed stream send
  // energy equals the metered kSend category for every node.
  for (std::size_t node = 0; node < rt.meters.size(); ++node) {
    double sum = 0;
    for (const auto& s : rt.meters[node].streams()) sum += s.send_mj;
    EXPECT_NEAR(sum, rt.meters[node].millijoules(energy::Category::kSend),
                1e-9)
        << "node " << node;
  }
  // Proposal traffic exists; checkpointing is off so that stream is idle.
  EXPECT_GT(rt.stream_totals(Stream::kProposal).send_mj, 0.0);
  EXPECT_EQ(rt.stream_totals(Stream::kCheckpoint).transmissions, 0u);
}

TEST(Dissemination, LeaderHintsCutWastedSubmissionsAcrossAViewChange) {
  // TargetedSubset clients across a leader crash + view change: without
  // hints the cursor only ever moves on timeouts, so every submission
  // that lands on a non-leader costs a replica-side forward (and
  // submissions to the dead leader cost timeout failovers). With hints,
  // verified reply metadata re-aims the cursor at the current leader, so
  // post-view-change submissions reach it directly. "Wasted
  // submissions" = forwards + failovers + timeout retransmissions.
  ClusterConfig base;
  base.protocol = Protocol::kEesmr;
  base.n = 4;
  base.f = 1;
  base.k = 0;
  base.seed = 17;
  base.clients = 2;
  base.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  base.workload.outstanding = 1;
  base.workload.max_requests = 20;
  base.client_submit = DisseminationPolicy::targeted_subset(1, 0);
  // Leader of view 1 (replica 1) crashes in steady state; the cluster
  // view-changes to replica 2 and keeps ordering.
  base.faults.push_back({1, protocol::ByzantineMode::kCrash, 6});

  ClusterConfig with_hints = base;  // default: client_leader_hints = true
  ClusterConfig without = base;
  without.client_leader_hints = false;

  Cluster ch(with_hints);
  const RunResult rh = ch.run_until_accepted(40, sim::seconds(2000));
  Cluster cn(without);
  const RunResult rn = cn.run_until_accepted(40, sim::seconds(2000));

  // Both configurations make full progress through the view change.
  ASSERT_EQ(rh.requests_accepted, 40u);
  ASSERT_EQ(rn.requests_accepted, 40u);
  EXPECT_TRUE(rh.safety_ok());
  EXPECT_TRUE(rn.safety_ok());
  EXPECT_GE(rh.view_changes, 1u);
  EXPECT_GE(rn.view_changes, 1u);

  // Hints fired, and they strictly cut the wasted-submission total.
  EXPECT_GT(rh.request_hints_applied, 0u);
  const std::uint64_t wasted_hints = rh.requests_forwarded +
                                     rh.request_failovers +
                                     rh.request_retransmissions;
  const std::uint64_t wasted_blind = rn.requests_forwarded +
                                     rn.request_failovers +
                                     rn.request_retransmissions;
  EXPECT_LT(wasted_hints, wasted_blind);
  // In particular the steady stream of non-leader forwards disappears
  // once the clients aim at the leader directly.
  EXPECT_LT(rh.requests_forwarded, rn.requests_forwarded);
}

}  // namespace
}  // namespace eesmr
