// Certificate-scheme sweep: wire bytes and radio energy of O(n)
// individual-signature certificates vs O(1) aggregate certificates
// (src/crypto/agg.hpp) as the cluster grows.
//
// Under CertScheme::kIndividual a quorum certificate, a checkpoint
// certificate and a client's acceptance proof all carry q full
// signatures — the vote/checkpoint/reply streams scale with n. Under
// kAggregate each is {signer bitset, one 48-byte aggregate}: constant
// wire size at any n. This figure pins the crossover the paper's
// energy argument rests on — certificate bytes are radio bytes, and on
// BLE-class radios the certificate stream is a first-order term of the
// per-block energy bill.
//
// A late-started replica forces a state transfer so checkpoint
// certificates actually cross the wire (not just the vote stream).
#include <vector>

#include "src/exp/experiment.hpp"
#include "src/exp/run_helpers.hpp"
#include "src/harness/cluster.hpp"
#include "src/exp/record.hpp"

using namespace eesmr;
using harness::Cluster;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

namespace {

constexpr sim::Duration kJoinAt = sim::seconds(2);
constexpr std::size_t kTargetBlocks = 40;

ClusterConfig base_cfg(smr::CertScheme scheme, std::size_t n,
                       std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kSyncHotStuff;
  cfg.n = n;
  cfg.f = (n - 1) / 3;
  cfg.seed = seed;
  cfg.cert_scheme = scheme;
  cfg.medium = energy::Medium::kBle;
  cfg.batch_size = 8;
  cfg.clients = 2;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 4;
  cfg.workload.max_requests = 600;  // traffic persists past the join
  cfg.checkpoint_interval = 8;      // checkpoint certs flow regularly
  cfg.late_starts.push_back({static_cast<NodeId>(n - 1), kJoinAt});
  return cfg;
}

double cert_stream_bytes(const RunResult& r) {
  return static_cast<double>(
      r.stream_totals(energy::Stream::kVote).bytes_sent +
      r.stream_totals(energy::Stream::kCheckpoint).bytes_sent);
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex(
      "fig_certsize",
      "certificate wire size and energy: O(n) individual signatures vs "
      "O(1) aggregate {bitset, 48B} certificates across cluster sizes",
      argc, argv, /*default_seed=*/42);

  const std::vector<const char*> scheme_labels = {"individual", "aggregate"};
  const std::vector<smr::CertScheme> schemes = {smr::CertScheme::kIndividual,
                                                smr::CertScheme::kAggregate};
  std::vector<std::size_t> sizes = {4, 7, 10, 13, 16, 19};
  if (ex.smoke()) sizes = {4, 10};
  const sim::Duration deadline =
      ex.smoke() ? sim::seconds(120) : sim::seconds(300);

  // -- certificate-stream bytes and energy vs n (BLE) ------------------------
  exp::Grid grid;
  grid.axis("scheme", {scheme_labels[0], scheme_labels[1]});
  grid.axis_of("n", sizes);

  exp::Report& rep = ex.run("bytes_vs_n", grid,
                            [&](const exp::RunContext& c) {
    ClusterConfig cfg =
        base_cfg(schemes[c.at("scheme")], sizes[c.at("n")], c.seed);
    exp::prepare(c, cfg);
    Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(kTargetBlocks, deadline);
    exp::observe(c, r);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    const harness::RunSummary s = r.summarize();
    exp::MetricRow row;
    row.set("blocks", s.min_committed);
    row.set("vote_kb",
            r.stream_totals(energy::Stream::kVote).bytes_sent / 1024.0);
    row.set("ckpt_kb",
            r.stream_totals(energy::Stream::kCheckpoint).bytes_sent / 1024.0);
    row.set("cert_kb", cert_stream_bytes(r) / 1024.0);
    row.set("state_transfers", r.state_transfers);
    row.set("acceptance_certs", r.acceptance_certs);
    row.set("mj_per_block", s.energy_per_block_mj);
    row.set("total_mj", r.total_energy_mj());
    row.set("run", exp::run_result_json(r));
    return row;
  });
  // Reduction factor: individual bytes / aggregate bytes at the same n —
  // a formatting pass over the committed rows (row-major: scheme, n).
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double indiv = rep.rows[i].number("cert_kb");
    exp::MetricRow& agg = rep.rows[sizes.size() + i];
    rep.rows[i].skip("reduction_x");
    if (agg.number("cert_kb") > 0) {
      agg.set("reduction_x", indiv / agg.number("cert_kb"));
    } else {
      agg.skip("reduction_x");
    }
  }
  rep.print_table(1);
  ex.note("cert_kb = vote + checkpoint stream bytes over counted correct "
          "replicas; reduction_x on aggregate rows is the same-n "
          "individual/aggregate ratio (the paper-level claim is >= 3x at "
          "n = 10 on BLE)");

  // -- per-block energy by medium at n = 10 ----------------------------------
  const std::vector<const char*> media_labels = {"BLE", "WiFi"};
  const std::vector<energy::Medium> media = {energy::Medium::kBle,
                                             energy::Medium::kWifi};
  exp::Grid mgrid;
  mgrid.axis("scheme", {scheme_labels[0], scheme_labels[1]});
  mgrid.axis("medium", {media_labels[0], media_labels[1]});

  exp::Report& med = ex.run("energy_by_medium", mgrid,
                            [&](const exp::RunContext& c) {
    ClusterConfig cfg = base_cfg(schemes[c.at("scheme")], 10, c.seed);
    cfg.medium = media[c.at("medium")];
    exp::prepare(c, cfg);
    Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(kTargetBlocks, deadline);
    exp::observe(c, r);
    if (!r.safety_ok()) std::fprintf(stderr, "SAFETY VIOLATION\n");
    const harness::RunSummary s = r.summarize();
    exp::MetricRow row;
    row.set("blocks", s.min_committed);
    row.set("cert_kb", cert_stream_bytes(r) / 1024.0);
    row.set("mj_per_block", s.energy_per_block_mj);
    row.set("total_mj", r.total_energy_mj());
    row.set("run", exp::run_result_json(r));
    return row;
  });
  med.print_table(1);
  ex.note("the certificate saving matters most where radio Joules per "
          "byte are highest: BLE-class devices are the paper's target");
  return ex.finish();
}
