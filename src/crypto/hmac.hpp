// HMAC-SHA256 (RFC 2104), used as the paper's MAC scheme and as the
// deterministic-nonce PRF for ECDSA.
#pragma once

#include "src/common/bytes.hpp"
#include "src/crypto/sha256.hpp"

namespace eesmr::crypto {

/// HMAC-SHA256(key, msg) -> 32 bytes.
Sha256Digest hmac_sha256(BytesView key, BytesView msg);

/// Same, as an owned buffer.
Bytes hmac(BytesView key, BytesView msg);

/// Constant-time-ish comparison of two MACs (length mismatch -> false).
bool mac_equal(BytesView a, BytesView b);

}  // namespace eesmr::crypto
