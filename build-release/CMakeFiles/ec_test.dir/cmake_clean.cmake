file(REMOVE_RECURSE
  "CMakeFiles/ec_test.dir/tests/ec_test.cpp.o"
  "CMakeFiles/ec_test.dir/tests/ec_test.cpp.o.d"
  "ec_test"
  "ec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
