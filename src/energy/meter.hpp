// Per-node energy accounting, mirroring the paper's measurement
// methodology (§5.6): the meter accumulates protocol-attributable energy
// by category; idle/sleep energy is excluded (the paper subtracts it).
//
// Radio energy is additionally attributed per *stream* — the channel
// class the traffic belongs to (proposal, vote, request, ...). Streams
// are the unit of the dissemination-policy sweep: a bench can report
// where each Joule went, e.g. how much of a node's budget the client
// request flood consumed versus the proposal stream.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace eesmr::energy {

/// Where a Joule went. Categories match the paper's cost drivers.
enum class Category : std::uint8_t {
  kSend,    ///< radio transmit
  kRecv,    ///< radio receive / scanning
  kSign,    ///< digital-signature generation
  kVerify,  ///< digital-signature verification
  kHash,    ///< hashing (block ids, chaining)
  kMac,     ///< HMAC computations
  kAttest,  ///< trusted-component attestations (monotonic-counter UI)
};
constexpr std::size_t kNumCategories = 7;

const char* category_name(Category c);

/// Traffic class of a transmission: which logical channel the bytes
/// belong to. Tagged into every flood frame so forwarded copies stay
/// attributed to the stream that originated them.
enum class Stream : std::uint8_t {
  kProposal,       ///< leader proposals (incl. new-view proposals)
  kVote,           ///< votes / certify messages
  kControl,        ///< blame, view-change QCs, status, equivocation proofs
  kCheckpoint,     ///< checkpoint signatures
  kRequest,        ///< client request submission (and request forwarding)
  kReply,          ///< signed execution acknowledgments to clients
  kStateTransfer,  ///< snapshot request/response
  kSync,           ///< chain synchronization
  kOther,          ///< untyped traffic (raw router users, tests)
};
constexpr std::size_t kNumStreams = 9;

const char* stream_name(Stream s);

/// Radio traffic/energy of one stream at one node.
struct StreamStats {
  double send_mj = 0;
  double recv_mj = 0;
  std::uint64_t transmissions = 0;  ///< send operations
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  [[nodiscard]] double total_mj() const { return send_mj + recv_mj; }
  StreamStats& operator+=(const StreamStats& other);
};

/// Accumulates milliJoules and operation counts per category.
class Meter {
 public:
  void charge(Category c, double millijoules);
  void charge_send(double millijoules, std::size_t bytes,
                   Stream stream = Stream::kOther);
  void charge_recv(double millijoules, std::size_t bytes,
                   Stream stream = Stream::kOther);

  [[nodiscard]] double millijoules(Category c) const;
  [[nodiscard]] double total_millijoules() const;
  [[nodiscard]] std::uint64_t ops(Category c) const;
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_recv_; }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return ops(Category::kSend);
  }

  /// Radio traffic/energy attributed to one stream (channel class).
  [[nodiscard]] const StreamStats& stream(Stream s) const {
    return streams_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const std::array<StreamStats, kNumStreams>& streams() const {
    return streams_;
  }

  void reset();
  /// Elementwise sum (for cluster-wide totals).
  Meter& operator+=(const Meter& other);

  /// One-line human-readable summary (mJ per category).
  [[nodiscard]] std::string summary() const;

 private:
  std::array<double, kNumCategories> mj_{};
  std::array<std::uint64_t, kNumCategories> ops_{};
  std::array<StreamStats, kNumStreams> streams_{};
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_recv_ = 0;
};

}  // namespace eesmr::energy
