file(REMOVE_RECURSE
  "CMakeFiles/eesmr_test.dir/tests/eesmr_test.cpp.o"
  "CMakeFiles/eesmr_test.dir/tests/eesmr_test.cpp.o.d"
  "eesmr_test"
  "eesmr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eesmr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
