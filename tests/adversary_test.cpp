// Adversary & fault-injection conformance matrix: every protocol ×
// every attack kind at f Byzantine nodes. Safety (no conflicting honest
// commits at any height — checked in-run by the always-on SafetyChecker
// and on the final logs) must hold in EVERY cell; liveness (the honest
// commit frontier keeps advancing within the stall bound) must hold
// exactly for the attacks each protocol's documented tolerance covers.
// Identical seeds must reproduce identical fault schedules and verdicts.
//
// Also pins two documented behaviours: EESMR deep catch-up recovery
// without checkpoints (the try_accept round fast-forward re-anchors a
// deeply-lagged replica on the live round), and the boundedness of dedup
// state (flood seen-windows, reply cache) under adversarial
// duplication/reordering.
#include <gtest/gtest.h>

#include "src/adversary/adversary.hpp"

namespace eesmr {
namespace {

using adversary::AttackKind;
using harness::ClusterConfig;
using harness::Protocol;
using harness::RunResult;

constexpr std::size_t kTarget = 30;          // committed blocks per cell
constexpr sim::Duration kDeadline = sim::seconds(30);

/// Everything a cell's verdict (and its reproducibility) is judged on.
struct Cell {
  bool safety = false;
  bool live = false;
  std::uint64_t min_committed = 0;
  std::uint64_t max_committed = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
  std::uint64_t msgs_withheld = 0;
  std::uint64_t byz_requests_sent = 0;
  std::uint64_t membership_changes = 0;
  std::uint64_t membership_generation = 0;
  double honest_energy_mj = 0;
  double adversary_energy_mj = 0;
  double stall_ms = 0;
  sim::SimTime end_time = 0;

  bool operator==(const Cell&) const = default;
};

ClusterConfig cell_config(Protocol p, AttackKind a, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.protocol = p;
  // Each protocol runs at its own replication factor for the same fault
  // budget f=1: MinBFT needs only n=2f+1 thanks to the trusted counter
  // tier; everything else in the matrix runs at n=3f+1.
  cfg.n = p == Protocol::kMinBft ? 3 : 4;
  cfg.f = 1;
  cfg.seed = seed;
  // Checkpoints keep the dedup state GC'd and give crash/recover cells a
  // state-transfer recovery path.
  cfg.checkpoint_interval = 8;
  cfg.client_pending_cap = 8;
  cfg.adversary.stall_bound = sim::seconds(10);
  adversary::apply_attack(cfg, a);
  return cfg;
}

Cell run_cell(Protocol p, AttackKind a, std::uint64_t seed) {
  harness::Cluster cluster(cell_config(p, a, seed));
  const RunResult r = cluster.run_until_commits(kTarget, kDeadline);
  Cell c;
  c.safety = r.safety_ok() && r.safety_violations == 0;
  c.live = r.min_committed() >= kTarget && r.liveness_ok();
  c.min_committed = r.min_committed();
  c.max_committed = r.max_committed();
  c.view_changes = r.view_changes;
  c.faults_dropped = r.faults_dropped;
  c.faults_duplicated = r.faults_duplicated;
  c.faults_reordered = r.faults_reordered;
  c.msgs_withheld = r.msgs_withheld;
  c.byz_requests_sent = r.byz_requests_sent;
  c.membership_changes = r.membership_changes;
  c.membership_generation = r.membership_generation;
  c.honest_energy_mj = r.total_energy_mj();
  c.adversary_energy_mj = r.adversary_energy_mj();
  c.stall_ms = sim::to_milliseconds(r.max_commit_stall);
  c.end_time = r.end_time;
  return c;
}

void check_matrix(Protocol p) {
  for (AttackKind a : adversary::all_attacks()) {
    SCOPED_TRACE(std::string(harness::protocol_name(p)) + " under " +
                 adversary::attack_name(a));
    const Cell c = run_cell(p, a, /*seed=*/0xad5e);
    // Safety holds in EVERY cell, tolerated attack or not.
    EXPECT_TRUE(c.safety);
    // Liveness exactly matches the documented tolerance.
    if (adversary::expect_liveness(p, a)) {
      EXPECT_TRUE(c.live) << "min=" << c.min_committed
                          << " stall_ms=" << c.stall_ms;
    } else {
      EXPECT_FALSE(c.live) << "min=" << c.min_committed
                           << " stall_ms=" << c.stall_ms;
    }
    // The attack actually executed (its fault counters moved).
    switch (a) {
      case AttackKind::kWithholdProposals:
        EXPECT_GT(c.msgs_withheld, 0u);
        break;
      case AttackKind::kVoteSuppression:
        // Vacuous against EESMR by design: "voting in the head" means a
        // steady-state run carries no votes to suppress — exactly the
        // certificate traffic the paper eliminates. Sync HotStuff votes
        // every block, so there the filter must have fired.
        if (p == Protocol::kSyncHotStuff) {
          EXPECT_GT(c.msgs_withheld, 0u);
        }
        break;
      case AttackKind::kDupReorder:
        EXPECT_GT(c.faults_duplicated, 0u);
        EXPECT_GT(c.faults_reordered, 0u);
        break;
      case AttackKind::kFaultyLinkDrop:
        EXPECT_GT(c.faults_dropped, 0u);
        break;
      case AttackKind::kGarbageClientFlood:
      case AttackKind::kReplayClientFlood:
        EXPECT_GT(c.byz_requests_sent, 0u);
        break;
      case AttackKind::kChaseLeader:
        // The chase keeps knocking out whoever leads: the cluster must
        // have routed around it through at least one view change.
        EXPECT_GT(c.view_changes, 0u);
        break;
      case AttackKind::kMembershipChurn:
        // The handoff actually happened: the join policy committed and
        // flipped every correct replica to generation 1, with the
        // equivocators and the crashed joiner unable to stop it.
        EXPECT_GT(c.membership_changes, 0u);
        EXPECT_EQ(c.membership_generation, 1u);
        break;
      default:
        break;
    }
  }
}

TEST(AdversaryConformance, MatrixEesmr) { check_matrix(Protocol::kEesmr); }

TEST(AdversaryConformance, MatrixSyncHotStuff) {
  check_matrix(Protocol::kSyncHotStuff);
}

TEST(AdversaryConformance, MatrixPbft) { check_matrix(Protocol::kPbft); }

TEST(AdversaryConformance, MatrixMinBft) { check_matrix(Protocol::kMinBft); }

TEST(AdversaryConformance, MatrixDolevStrong) {
  for (AttackKind a : adversary::all_attacks()) {
    SCOPED_TRACE(std::string("DolevStrong under ") +
                 adversary::attack_name(a));
    const auto v = adversary::run_dolev_strong_attack(4, 1, a, 0xd01e);
    // BA safety: all honest decisions identical; BA liveness: every
    // honest node decided by round f+1 (termination is unconditional in
    // Dolev-Strong, even past the fault budget).
    EXPECT_TRUE(v.agreement);
    EXPECT_TRUE(v.terminated);
  }
}

// Identical seeds must reproduce identical fault schedules and verdicts
// (the deterministic-parallel exp engine then extends this to any
// --threads N, since every grid point runs its own scheduler).
TEST(AdversaryConformance, DeterministicSchedulesAndVerdicts) {
  for (Protocol p : {Protocol::kEesmr, Protocol::kSyncHotStuff,
                     Protocol::kPbft, Protocol::kMinBft}) {
    for (AttackKind a : adversary::all_attacks()) {
      SCOPED_TRACE(std::string(harness::protocol_name(p)) + " under " +
                   adversary::attack_name(a));
      const Cell first = run_cell(p, a, 0x5eed);
      const Cell second = run_cell(p, a, 0x5eed);
      EXPECT_TRUE(first == second);
    }
  }
  const auto d1 =
      adversary::run_dolev_strong_attack(4, 1, AttackKind::kDupReorder, 7);
  const auto d2 =
      adversary::run_dolev_strong_attack(4, 1, AttackKind::kDupReorder, 7);
  EXPECT_EQ(d1.transmissions, d2.transmissions);
  EXPECT_EQ(d1.faults_dropped, d2.faults_dropped);
  EXPECT_EQ(d1.faults_duplicated, d2.faults_duplicated);
  EXPECT_EQ(d1.faults_reordered, d2.faults_reordered);
}

// ---------------------------------------------------------------------------
// EESMR deep catch-up recovers without checkpoints (round fast-forward)
// ---------------------------------------------------------------------------

// Steady-state acceptance is round-gated (accepted_round_ + 1); a replica
// behind by many rounds used to buffer live proposals forever, with
// checkpoint state transfer the only way back (the old ROADMAP gap).
// try_accept now fast-forwards: once chain sync integrates a live
// proposal's full ancestry and it extends the lock, the replica
// re-anchors on it directly. This test used to pin the stall; it now
// asserts recovery both with and without checkpoints.
TEST(AdversaryRegression, EesmrDeepCatchupRecoversWithoutCheckpoints) {
  const auto run_recovery = [](std::uint64_t checkpoint_interval) {
    ClusterConfig cfg;
    cfg.protocol = Protocol::kEesmr;
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = 11;
    cfg.checkpoint_interval = checkpoint_interval;
    adversary::AdversarySpec::CrashRecover cr;
    cr.node = 3;  // never the view-1 leader: honest progress continues
    cr.crash_at = sim::milliseconds(300);
    cr.recover_at = sim::milliseconds(1200);
    cfg.adversary.crashes.push_back(cr);
    harness::Cluster cluster(cfg);
    const RunResult r = cluster.run_until_commits(40, sim::seconds(60));
    return std::make_pair(r, cluster.replica(3).committed_blocks());
  };

  // Without checkpoints: the recovered replica fast-forwards onto the
  // live round once chain sync fills the gap, then commits alongside
  // everyone else. Safety is unaffected.
  const auto [recovered, recovered_committed] = run_recovery(0);
  EXPECT_TRUE(recovered.safety_ok());
  EXPECT_GE(recovered.min_committed(), 40u);
  EXPECT_GT(recovered_committed, 20u)
      << "deep catch-up stalled without checkpoints: the round "
         "fast-forward in EesmrReplica::try_accept regressed";

  // With checkpoints: state transfer carries it past the gap as before.
  const auto [healthy, recovered_committed_ckpt] = run_recovery(8);
  EXPECT_TRUE(healthy.safety_ok());
  EXPECT_GT(recovered_committed_ckpt, 20u);
}

// ---------------------------------------------------------------------------
// Dedup state stays bounded under adversarial duplication/reordering
// ---------------------------------------------------------------------------

// Dup-heavy, reordering link schedules plus client retransmissions must
// not grow the flood seen-windows or the exactly-once reply cache past
// their bounds, and execution must stay exactly-once (safety + all
// requests accepted).
TEST(AdversaryDedup, DupReorderSchedulesKeepDedupStateBounded) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 23;
  cfg.checkpoint_interval = 8;
  cfg.clients = 2;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 2;
  cfg.workload.max_requests = 40;
  cfg.client_retry = sim::milliseconds(120);  // retransmits probe the
                                              // reply-cache replay path
  adversary::AdversarySpec::LinkFault lf;
  lf.duplicate = 0.6;
  lf.reorder = 0.5;
  lf.reorder_delay = cfg.hop_delay;
  cfg.adversary.link_faults.push_back(lf);

  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(80, sim::seconds(120));

  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_EQ(r.requests_accepted, 80u);
  EXPECT_GT(r.faults_duplicated, 0u);

  for (std::size_t i = 0; i < r.footprints.size(); ++i) {
    if (!r.correct[i]) continue;
    // Seen-window tails are bounded per origin by force-compaction.
    EXPECT_LE(r.footprints[i].flood_dedup_tail,
              net::FloodRouter::SeenWindow::kMaxTail * r.footprints.size())
        << "node " << i;
    // Reply cache GC'd at checkpoint-taking points: O(interval · load),
    // far below total executed commands.
    EXPECT_LE(r.footprints[i].executed_entries, 64u) << "node " << i;
  }
}

// Replay flood: one (client, req_id) re-submitted forever executes once,
// and the admission path sheds the copies without growing pool state.
TEST(AdversaryDedup, ReplayFloodExecutesOnceAndStaysBounded) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 31;
  cfg.checkpoint_interval = 8;
  cfg.clients = 1;
  cfg.workload.mode = client::WorkloadSpec::Mode::kClosedLoop;
  cfg.workload.outstanding = 1;
  cfg.workload.max_requests = 30;
  cfg.client_pending_cap = 8;
  adversary::AdversarySpec::ByzClient bc;
  bc.kind = adversary::AdversarySpec::ByzClient::Kind::kReplayFlood;
  bc.interval = sim::milliseconds(20);
  cfg.adversary.clients.push_back(bc);

  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_accepted(30, sim::seconds(120));

  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.requests_accepted, 30u);
  EXPECT_GT(r.byz_requests_sent, 10u);
  // The replayed request is ONE operation: every honest replica's
  // execution log contains it exactly once however many copies arrived.
  for (NodeId i = 0; i < 4; ++i) {
    const auto& replica = cluster.replica(i);
    std::uint64_t replay_executions = 0;
    for (const smr::Block& b : replica.log()) {
      for (const smr::Command& cmd : b.cmds) {
        const auto req = smr::ClientRequest::decode(cmd.data);
        if (req.has_value() && req->client >= 5) ++replay_executions;
      }
    }
    // Retained log only (checkpoints truncate), so <= 1; duplicates
    // would show up as > 1 at some height.
    EXPECT_LE(replay_executions, 1u) << "replica " << i;
    EXPECT_LE(r.footprints[i].mempool_pending, 16u);
  }
}

// ---------------------------------------------------------------------------
// Byzantine checkpoint attacks (the PR 5 follow-ups): forged attestation
// digests and withheld snapshots against the state-transfer path.
// ---------------------------------------------------------------------------

// A Byzantine replica broadcasts checkpoint attestations whose digest is
// corrupted (its local tally stays honest, so it cannot poison itself).
// The forged digest can never gather f more matching attestations, so no
// certificate forms over it; honest checkpoints keep stabilizing from
// the f+1 honest attestations, and a recovering replica state-transfers
// from an HONEST snapshot — its digest check rejects the forger's bytes.
TEST(AdversaryCheckpoint, ForgedDigestNeverCertifiesOrServesRecovery) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 0xf06d;
  cfg.checkpoint_interval = 8;
  cfg.clients = 1;
  cfg.workload.max_requests = 40;
  adversary::AdversarySpec::CheckpointAttack atk;
  atk.node = 1;
  atk.forge_digest = true;
  cfg.adversary.checkpoint_attacks.push_back(atk);
  // A crashed-then-recovered replica forces the state-transfer path to
  // run against the forger's attestations.
  adversary::AdversarySpec::CrashRecover cr;
  cr.node = 3;
  cr.crash_at = sim::milliseconds(400);
  cr.recover_at = sim::milliseconds(1600);
  cfg.adversary.crashes.push_back(cr);

  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(60, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GE(r.min_committed(), 60u);
  // Checkpoints still stabilized (log truncation happened) despite the
  // forged stream: the honest f+1 attestation set certifies without
  // node 1's garbage.
  std::uint64_t max_ckpts = 0;
  for (const auto& fp : r.footprints) {
    max_ckpts = std::max(max_ckpts, fp.checkpoints_taken);
  }
  EXPECT_GT(max_ckpts, 0u);
  // The recovered replica is back on the live chain.
  EXPECT_GT(cluster.replica(3).committed_blocks(), 20u);
}

// A Byzantine replica never serves snapshot requests. The requester's
// provider rotation must route around it: the recovering node completes
// state transfer from somebody else and catches up anyway.
TEST(AdversaryCheckpoint, WithheldSnapshotsRouteAroundToHonestProvider) {
  ClusterConfig cfg;
  cfg.protocol = Protocol::kEesmr;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 0x5a0b;
  cfg.checkpoint_interval = 8;
  cfg.clients = 1;
  cfg.workload.max_requests = 40;
  adversary::AdversarySpec::CheckpointAttack atk;
  atk.node = 1;
  atk.withhold_snapshots = true;
  cfg.adversary.checkpoint_attacks.push_back(atk);
  adversary::AdversarySpec::CrashRecover cr;
  cr.node = 3;
  cr.crash_at = sim::milliseconds(400);
  cr.recover_at = sim::milliseconds(1600);
  cfg.adversary.crashes.push_back(cr);

  harness::Cluster cluster(cfg);
  const RunResult r = cluster.run_until_commits(60, sim::seconds(120));
  EXPECT_TRUE(r.safety_ok());
  EXPECT_GE(r.min_committed(), 60u);
  EXPECT_GT(cluster.replica(3).committed_blocks(), 20u);
  // Both attacks are deterministic: identical seeds reproduce the run.
  harness::Cluster again(cfg);
  const RunResult r2 = again.run_until_commits(60, sim::seconds(120));
  EXPECT_EQ(r.bytes_transmitted, r2.bytes_transmitted);
  EXPECT_EQ(r.end_time, r2.end_time);
}

}  // namespace
}  // namespace eesmr
