// Figure 2e: energy consumed by the EESMR leader per view-change
// operation, for an equivocating leader and a stalling (no-progress)
// leader, vs the honest-SMR per-block cost. n = 15, k = f + 1.
//
// Methodology (ψ_V = ψ_W − ψ_B, §4): run a faulty cluster to B blocks,
// subtract the honest run's energy at the same block count, divide by
// the number of view changes. The "leader" is the incoming view-2
// leader, which pays the status collection and the two bootstrap rounds.
#include "bench/bench_util.hpp"

using namespace eesmr;
using namespace eesmr::harness;

int main() {
  bench::header("Figure 2e — EESMR view-change energy vs f (k = f+1)",
                "Fig. 2e (§5.6, n = 15, |b| = 16 bytes)");

  std::printf("%2s %2s | %14s | %14s | %14s\n", "f", "k", "equivVC mJ",
              "noprogVC mJ", "honest mJ/blk");
  std::printf("------+----------------+----------------+----------------\n");
  for (std::size_t f = 1; f <= 6; ++f) {
    ClusterConfig cfg;
    cfg.n = 15;
    cfg.f = f;
    cfg.k = f + 1;
    cfg.medium = energy::Medium::kBle;
    cfg.cmd_bytes = 16;
    cfg.seed = 17;
    const NodeId new_leader = 2;  // leader of view 2
    const std::size_t blocks = 6;

    const bench::ViewChangeCost equiv = bench::view_change_cost(
        cfg, {1, protocol::ByzantineMode::kEquivocate, 4}, new_leader,
        blocks);
    const bench::ViewChangeCost noprog = bench::view_change_cost(
        cfg, {1, protocol::ByzantineMode::kCrash, 4}, new_leader, blocks);
    const RunResult honest = bench::run_steady(cfg, blocks);

    std::printf("%2zu %2zu | %14.1f | %14.1f | %14.1f\n", f, f + 1,
                equiv.node_mj, noprog.node_mj,
                honest.node_energy_per_block_mj(new_leader));
  }

  bench::note("expected shape: the no-progress (stalling) view change is "
              "costlier than the equivocation one (equivocation proof "
              "short-circuits the blame quorum; stalling pays the blame "
              "collection and full certificate construction), and both "
              "sit above the honest per-block cost");
  return 0;
}
