// Trusted-baseline protocol (§5.1 "Comparison with trusted-baseline").
//
// Every CPS node ships its pending commands to an externally-powered
// trusted control node over an expensive medium (4G in the paper's
// example) and receives the ordered, control-signed block back. The
// control node's energy is not counted (it is mains-powered); the CPS
// nodes pay the uplink/downlink and one signature verification per
// block. Tolerates f Byzantine CPS nodes trivially (the control node is
// trusted), but every consensus unit costs 2 expensive-medium messages
// per node.
#pragma once

#include <map>
#include <vector>

#include "src/smr/replica.hpp"

namespace eesmr::baselines {

/// The control node: collects kSubmit batches, orders them into a
/// hash-chained log, and unicasts the signed block to every CPS node.
/// Deployed as node id n in an (n+1)-node star topology.
class TrustedController final : public smr::ReplicaBase {
 public:
  TrustedController(net::Network& net, smr::ReplicaConfig cfg,
                    energy::Meter* meter);

  void start() override;

  [[nodiscard]] std::uint64_t blocks_ordered() const {
    return blocks_ordered_;
  }

 protected:
  void handle(NodeId from, const smr::Msg& msg) override;

 private:
  void order_round();

  smr::BlockHash tip_;
  std::uint64_t tip_height_ = 0;
  std::vector<smr::Command> pending_;
  bool round_timer_armed_ = false;
  std::uint64_t blocks_ordered_ = 0;
};

/// A CPS node in the baseline: submits commands every `submit interval`
/// and commits whatever ordered blocks the control node signs.
class TrustedBaselineReplica final : public smr::ReplicaBase {
 public:
  /// `controller` is the control node's id (= n by convention).
  TrustedBaselineReplica(net::Network& net, smr::ReplicaConfig cfg,
                         NodeId controller, energy::Meter* meter);

  void start() override;

 protected:
  void handle(NodeId from, const smr::Msg& msg) override;

 private:
  void submit_round();

  NodeId controller_;
};

}  // namespace eesmr::baselines
