// Experiment harness: build a cluster of any protocol over any topology
// and medium, inject faults, run it, and collect the measurements the
// paper reports (per-node energy, commits, view changes, traffic).
#pragma once

#include <memory>
#include <vector>

#include "src/adversary/spec.hpp"
#include "src/baselines/minbft.hpp"
#include "src/baselines/pbft.hpp"
#include "src/baselines/sync_hotstuff.hpp"
#include "src/baselines/trusted_baseline.hpp"
#include "src/client/client.hpp"
#include "src/crypto/workers.hpp"
#include "src/eesmr/eesmr.hpp"
#include "src/harness/checkers.hpp"
#include "src/harness/metrics.hpp"

namespace eesmr::adversary {
class NetAdversary;
class WithholdFilter;
class ByzantineClient;
}  // namespace eesmr::adversary

namespace eesmr::obs {
class Tracer;
}  // namespace eesmr::obs

namespace eesmr::harness {

enum class Protocol {
  kEesmr,
  kSyncHotStuff,
  kOptSync,
  kTrustedBaseline,
  /// Classic partially-synchronous PBFT at n=3f+1 (vote quorum 2f+1).
  kPbft,
  /// MinBFT at n=2f+1: trusted monotonic counters (src/trusted) replace
  /// agreement signatures; quorum f+1.
  kMinBft,
};

const char* protocol_name(Protocol p);

struct FaultSpec {
  NodeId node = 0;
  protocol::ByzantineMode mode = protocol::ByzantineMode::kHonest;
  /// Steady-state round (EESMR) / height (Sync HotStuff) to act at.
  std::uint64_t trigger_round = 0;
};

struct ClusterConfig {
  Protocol protocol = Protocol::kEesmr;
  std::size_t n = 4;
  std::size_t f = 1;
  /// 0 = fully connected unicast mesh; otherwise the §5.6 k-cast ring.
  std::size_t k = 0;
  energy::Medium medium = energy::Medium::kBle;
  sim::Duration hop_delay = sim::milliseconds(10);
  crypto::SchemeId scheme = crypto::SchemeId::kRsa1024;
  /// Use the keyed-hash simulation keyring (sized/energy-accounted as
  /// `scheme`); set false for real RSA/ECDSA keys.
  bool simulated_keys = true;
  /// Certificate scheme for quorum certificates, checkpoint certificates
  /// and reply acceptance. kAggregate replaces O(n) signature lists with
  /// {signer bitset, one 48-byte aggregate} (simulated BLS, src/crypto/
  /// agg.hpp) — O(1) wire size at any n.
  smr::CertScheme cert_scheme = smr::CertScheme::kIndividual;
  /// Trailing replicas (ids [n - spares, n)) kept OUT of the genesis
  /// signer set: they relay and follow the chain but cannot vote, lead
  /// or attest checkpoints until a committed membership policy admits
  /// them. Excluded from commit/energy accounting (counted = false).
  /// Requires spares < n; unsupported for the trusted baseline.
  std::size_t spares = 0;
  /// Live membership reconfigurations: at `at`, the full next-generation
  /// signer set is injected as a tagged policy command into every online
  /// replica's mempool and takes effect cluster-wide at the commit
  /// boundary of the block that carries it. A zero `generation` is
  /// auto-numbered 1, 2, ... in schedule order.
  struct MembershipEvent {
    sim::Duration at = 0;
    smr::MembershipPolicy policy;
  };
  std::vector<MembershipEvent> membership_events;
  std::size_t batch_size = 1;
  std::size_t cmd_bytes = 16;
  protocol::EesmrOptions eesmr;
  baselines::SyncHsOptions synchs;
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 1;
  /// Deliver every message at exactly the hop bound (worst adversary).
  bool adversarial_delays = false;

  // -- client / workload layer -------------------------------------------------
  /// Simulated client nodes appended after the protocol nodes. When > 0,
  /// every replica gets a KvStore execution app, the mempool's synthetic
  /// filler is disabled (blocks carry real requests only), and RunResult
  /// reports request latency and goodput.
  std::size_t clients = 0;
  /// Replicas each client wires access edges to (0 = all). Clients are
  /// non-relay leaves, so partial attachment never shortcuts the replica
  /// topology.
  std::size_t client_attach = 0;
  client::WorkloadSpec workload;
  /// Client retransmission timeout (0 = never retransmit).
  sim::Duration client_retry = 0;

  // -- dissemination channels (src/net/channel.hpp) -----------------------------
  /// Per-stream dissemination policies for the replica channels.
  /// Entries left at Kind::kDefault resolve to the protocol default
  /// (Flood everywhere; Sync HotStuff votes LocalKcast). E.g. set
  /// `channels[energy::Stream::kVote] = net::DisseminationPolicy::
  /// routed_unicast()` to sweep the vote medium.
  net::ChannelPolicies channels;
  /// Client submission policy for the request channel. kDefault = flood
  /// every request to all replicas (plus client_retry retransmission).
  /// A TargetedSubset policy without an explicit timeout gets a
  /// 4Δ-derived default, and the replica request stream is switched to
  /// RoutedUnicast so contacted replicas forward to the leader.
  net::DisseminationPolicy client_submit;
  /// Replica-side verified-bytes cache (skip commit-time request
  /// signature re-verification for pool-time-verified bytes).
  bool verified_cache = true;
  /// Clients learn the current leader from verified reply metadata and
  /// aim the TargetedSubset submission cursor there (no effect under
  /// flood submission).
  bool client_leader_hints = true;
  /// Trusted baseline only: the controller orders each flooded client
  /// request once instead of once per submitting CPS node; skipped
  /// orderings / bytes are reported in RunResult.
  bool trusted_dedup = true;

  // -- checkpointing / admission control (src/checkpoint/) ---------------------
  /// Committed commands per stable checkpoint (0 = off). Enables log
  /// truncation, dedup-set GC and snapshot state transfer; every replica
  /// gets a KvStore app so snapshots carry real state.
  std::uint64_t checkpoint_interval = 0;
  /// Mempool pending-queue bound per replica (0 = unbounded).
  std::size_t mempool_capacity = 0;
  /// Per-client pooled-request cap per replica (0 = unbounded).
  std::size_t client_pending_cap = 0;
  /// Replicas that join late (crash-recovery / late-spawn scenario): the
  /// node is offline — no reception, transmission or energy — until
  /// `delay`, then starts fresh and catches up by chain sync or state
  /// transfer.
  struct LateStart {
    NodeId node = 0;
    sim::Duration delay = 0;
  };
  std::vector<LateStart> late_starts;

  // -- adversary & fault injection (src/adversary/) ----------------------------
  /// Declarative fault script: network-level link faults (drop / delay /
  /// duplicate / reorder with seed-derived deterministic schedules),
  /// Byzantine per-stream withholding, crash/recover schedules, and
  /// Byzantine clients. The Safety/Liveness checkers run on every
  /// cluster regardless; their verdicts land in RunResult.
  adversary::AdversarySpec adversary;

  // -- observability (src/obs/) -------------------------------------------------
  /// Structured event tracer: the cluster opens one epoch (one Chrome
  /// trace "process") and routes every replica's and the fault
  /// injector's events into it. Not owned; nullptr disables tracing.
  obs::Tracer* tracer = nullptr;
  /// Request-scoped causal tracing: sample this many client requests per
  /// run and stitch their lifecycle as Chrome flow events (plus
  /// per-request energy attribution in the profiler snapshot).
  std::size_t trace_requests = 0;
  /// Enable host wall-clock prof::Scope timing (non-deterministic;
  /// benches must force serial execution, like micro_crypto).
  bool host_timing = false;

  // -- parallel crypto pipeline (src/crypto/workers.hpp) ------------------------
  /// Verification worker threads for the speculative crypto pipeline.
  /// 0 = inline lazy pipeline (no threads; speculation still memoizes
  /// cross-node verifies). Any value yields byte-identical outputs: the
  /// pool moves physical execution off the sim thread, never decisions.
  std::size_t crypto_workers = 0;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);
  ~Cluster();

  void start();

  /// Run until every counted correct node committed at least
  /// `target_blocks`, or until simulated `max_time` elapses.
  RunResult run_until_commits(std::size_t target_blocks,
                              sim::Duration max_time);
  /// Run until clients accepted `target_requests` in total, or until
  /// simulated `max_time` elapses.
  RunResult run_until_accepted(std::uint64_t target_requests,
                               sim::Duration max_time);
  /// Run for a fixed amount of simulated time.
  RunResult run_for(sim::Duration time);

  /// Snapshot current metrics without running further.
  [[nodiscard]] RunResult snapshot() const;

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] smr::ReplicaBase& replica(NodeId id) {
    return *replicas_.at(id);
  }
  [[nodiscard]] protocol::EesmrReplica& eesmr(NodeId id);
  [[nodiscard]] client::Client& client(std::size_t i) {
    return *clients_.at(i);
  }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  /// Aggregate share directory (null under the individual scheme).
  [[nodiscard]] const std::shared_ptr<crypto::AggKeyring>& agg() const {
    return agg_;
  }
  /// End-to-end Δ derived from the topology (hop bound × diameter + 1).
  [[nodiscard]] sim::Duration delta() const { return delta_; }

  /// In-run conformance oracles (always on; ticked every few hop delays
  /// while the run loops and once more at snapshot time).
  [[nodiscard]] const SafetyChecker& safety_checker() const {
    return safety_;
  }
  [[nodiscard]] const LivenessChecker& liveness_checker() const {
    return liveness_;
  }
  /// The run's deterministic profiler (always on; see src/obs/prof.hpp).
  [[nodiscard]] prof::Profiler& profiler() { return prof_; }

 private:
  [[nodiscard]] std::size_t min_committed_correct() const;
  /// One step of the adaptive chase-the-leader schedule: restore the
  /// previous victim, crash the current-view leader, re-arm.
  void chase_leader_tick();
  /// Feed the safety/liveness checkers from the honest replicas.
  void tick_checkers();
  /// Whether any client (honest or Byzantine) still offers load the
  /// chain has not committed — the LivenessChecker's workload input.
  [[nodiscard]] bool load_pending() const;

  /// Install the transmit-time speculation hook on net_ (parses flood
  /// frames, registers eligible outer-signature verifies with pipeline_).
  void install_speculation_hook();

  ClusterConfig cfg_;
  sim::Scheduler sched_;
  sim::Duration delta_ = 0;
  std::vector<energy::Meter> meters_;
  std::unique_ptr<net::Network> net_;
  /// Speculative verification pipeline shared by all replicas and
  /// clients (always present; workers come from cfg_.crypto_workers).
  std::unique_ptr<crypto::VerifyPipeline> pipeline_;
  std::shared_ptr<crypto::Keyring> keyring_;
  std::shared_ptr<crypto::AggKeyring> agg_;
  std::vector<std::unique_ptr<smr::ReplicaBase>> replicas_;
  std::vector<std::unique_ptr<smr::KvStore>> apps_;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::vector<bool> correct_;
  std::vector<bool> counted_;
  std::vector<bool> late_;
  bool started_ = false;
  /// Replica currently held down by the chase-the-leader schedule.
  NodeId chase_victim_ = kNoNode;

  // Adversary wiring (src/adversary; owned here, installed on the
  // network / replicas at construction time).
  std::unique_ptr<adversary::NetAdversary> injector_;
  std::vector<std::unique_ptr<adversary::WithholdFilter>> withhold_filters_;
  std::vector<std::unique_ptr<adversary::ByzantineClient>> byz_clients_;
  SafetyChecker safety_;
  LivenessChecker liveness_;
  /// Owned per-run profiler, wired into every replica and client.
  prof::Profiler prof_;
};

}  // namespace eesmr::harness
