// Micro-benchmarks for the from-scratch cryptographic primitives: the
// host-CPU counterpart of Table 2, confirming the relative ordering the
// paper exploits (RSA verify << RSA sign, RSA verify << ECDSA verify,
// HMAC cheapest). Runs on the experiment engine like every other bench;
// the default output reports deterministic operation counts and the
// calibrated energy model, and --host-timing adds measured wall-clock
// columns (opt-in because host timing is inherently nondeterministic).
// This replaces the earlier google-benchmark harness, dropping the
// optional external dependency.
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "src/crypto/bigint.hpp"
#include "src/crypto/ecdsa.hpp"
#include "src/crypto/hmac.hpp"
#include "src/crypto/rsa.hpp"
#include "src/crypto/sha256.hpp"
#include "src/energy/cost_model.hpp"
#include "src/exp/experiment.hpp"
#include "src/sim/rng.hpp"

using namespace eesmr;
using namespace eesmr::crypto;

namespace {

struct Primitive {
  std::string name;
  double model_mj;  ///< calibrated Cortex-M4 energy (0 = not modeled)
  int iters;        ///< timing-loop iterations under --host-timing
  std::function<void(sim::Rng&)> op;
};

const Bytes& message() {
  static const Bytes msg = to_bytes(std::string(64, 'm'));
  return msg;
}

std::vector<Primitive> primitives() {
  std::vector<Primitive> ps;
  ps.push_back({"sha256_64B", energy::hash_energy_mj(64), 2000,
                [](sim::Rng&) { (void)sha256(message()); }});
  ps.push_back({"sha256_4KiB", energy::hash_energy_mj(4096), 500,
                [](sim::Rng&) {
                  // Hoisted out of the timed operation: --host-timing
                  // must measure the hash, not the allocation.
                  static const Bytes big(4096, 0x77);
                  (void)sha256(big);
                }});
  ps.push_back({"hmac_sha256", energy::mac_energy_mj(64), 1000,
                [](sim::Rng&) {
                  const Bytes key(64, 0x42);
                  (void)hmac(key, message());
                }});
  ps.push_back({"rsa1024_sign", energy::sign_energy_mj(SchemeId::kRsa1024), 3,
                [](sim::Rng& rng) {
                  static const RsaKeyPair kp = [&] {
                    sim::Rng r(1);
                    return rsa_generate(1024, r);
                  }();
                  (void)rng;
                  (void)rsa_sign(kp.priv, message());
                }});
  ps.push_back({"rsa1024_verify",
                energy::verify_energy_mj(SchemeId::kRsa1024), 50,
                [](sim::Rng& rng) {
                  static const RsaKeyPair kp = [&] {
                    sim::Rng r(1);
                    return rsa_generate(1024, r);
                  }();
                  static const Bytes sig = rsa_sign(kp.priv, message());
                  (void)rng;
                  (void)rsa_verify(kp.pub, message(), sig);
                }});
  ps.push_back({"ecdsa_p256_sign",
                energy::sign_energy_mj(SchemeId::kEcdsaSecp256r1), 3,
                [](sim::Rng& rng) {
                  static const EcdsaKeyPair kp = [&] {
                    sim::Rng r(2);
                    return ecdsa_generate(CurveId::kSecp256r1, r);
                  }();
                  (void)rng;
                  (void)ecdsa_sign(kp.priv, message());
                }});
  ps.push_back({"ecdsa_p256_verify",
                energy::verify_energy_mj(SchemeId::kEcdsaSecp256r1), 3,
                [](sim::Rng& rng) {
                  static const EcdsaKeyPair kp = [&] {
                    sim::Rng r(2);
                    return ecdsa_generate(CurveId::kSecp256r1, r);
                  }();
                  static const Bytes sig = ecdsa_sign(kp.priv, message());
                  (void)rng;
                  (void)ecdsa_verify(kp.pub, message(), sig);
                }});
  ps.push_back({"rsa1024_batch8_verify",
                energy::batch_verify_energy_mj(SchemeId::kRsa1024, 8), 6,
                [](sim::Rng& rng) {
                  static const RsaKeyPair kp = [&] {
                    sim::Rng r(1);
                    return rsa_generate(1024, r);
                  }();
                  static const Bytes sig = rsa_sign(kp.priv, message());
                  (void)rng;
                  for (int i = 0; i < 8; ++i) {
                    (void)rsa_verify(kp.pub, message(), sig);
                  }
                }});
  ps.push_back({"ecdsa_p256_batch8_verify",
                energy::batch_verify_energy_mj(SchemeId::kEcdsaSecp256r1, 8),
                1,
                [](sim::Rng& rng) {
                  static const EcdsaKeyPair kp = [&] {
                    sim::Rng r(2);
                    return ecdsa_generate(CurveId::kSecp256r1, r);
                  }();
                  static const Bytes sig = ecdsa_sign(kp.priv, message());
                  (void)rng;
                  for (int i = 0; i < 8; ++i) {
                    (void)ecdsa_verify(kp.pub, message(), sig);
                  }
                }});
  ps.push_back({"bigint_modexp_2048", 0.0, 20, [](sim::Rng& rng) {
                  static const BigInt m = [] {
                    sim::Rng r(3);
                    return BigInt::random_bits(r, 2048);
                  }();
                  static const BigInt b = [] {
                    sim::Rng r(4);
                    return BigInt::random_below(r, m);
                  }();
                  (void)rng;
                  (void)BigInt::mod_exp(b, BigInt(65537), m);
                }});
  return ps;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Experiment ex("micro_crypto",
                     "Table 2 cross-check: from-scratch crypto primitives",
                     argc, argv, /*default_seed=*/7);
  const bool host_timing = ex.flag("--host-timing");
  if (host_timing) {
    ex.force_serial("--host-timing loops must not contend for cores");
  }

  const std::vector<Primitive> prims = primitives();
  std::vector<std::string> names;
  names.reserve(prims.size());
  for (const Primitive& p : prims) names.push_back(p.name);

  exp::Grid grid;
  grid.axis("primitive", names);

  exp::Report& rep = ex.run("primitives", grid,
                            [&](const exp::RunContext& c) {
    const Primitive& p = prims[c.at("primitive")];
    exp::MetricRow row;
    if (p.model_mj > 0) {
      row.set("model_mj", p.model_mj);
    } else {
      row.skip("model_mj");
    }
    if (host_timing) {
      sim::Rng rng(c.seed);
      const int iters = ex.smoke() ? std::max(1, p.iters / 10) : p.iters;
      p.op(rng);  // warm up static keys outside the timed loop
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) p.op(rng);
      const auto end = std::chrono::steady_clock::now();
      row.set("host_ms",
              std::chrono::duration<double, std::milli>(end - start).count() /
                  iters);
      row.set("iters", iters);
    }
    return row;
  });
  rep.print_table(4);

  ex.note("model_mj is the paper's Cortex-M4 calibration (what the "
          "simulator charges); --host-timing adds this machine's "
          "wall-clock per op for the ordering cross-check");
  return ex.finish();
}
